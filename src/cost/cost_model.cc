#include "cost/cost_model.h"

namespace webdex::cost {

double CostModel::VmCost(cloud::InstanceType type, double hours,
                         int instances) const {
  return pricing_.VmHour(type) * hours * instances;
}

double CostModel::UploadCost(const DataMetrics& data) const {
  const double docs = static_cast<double>(data.num_documents);
  return pricing_.st_put * docs + pricing_.queue_request * docs;
}

double CostModel::IndexBuildCost(const DataMetrics& data,
                                 const IndexMetrics& index) const {
  const double docs = static_cast<double>(data.num_documents);
  return UploadCost(data) +
         pricing_.idx_put * index.put_ops +
         pricing_.st_get * docs +
         VmCost(index.instance_type, index.build_hours, index.instances) +
         pricing_.queue_request * 2.0 * docs;
}

double CostModel::MonthlyDataStorageCost(const DataMetrics& data) const {
  return pricing_.st_month_gb * data.size_gb;
}

double CostModel::MonthlyStorageCost(const DataMetrics& data,
                                     const IndexMetrics& index) const {
  return MonthlyDataStorageCost(data) +
         pricing_.idx_month_gb * index.total_gb();
}

double CostModel::ResultRetrievalCost(const QueryMetrics& query) const {
  return pricing_.st_get + pricing_.egress_gb * query.result_gb +
         pricing_.queue_request * 3.0;
}

double CostModel::QueryCostNoIndex(const QueryMetrics& query,
                                   const DataMetrics& data) const {
  return ResultRetrievalCost(query) +
         pricing_.st_get * static_cast<double>(data.num_documents) +
         pricing_.st_put +
         VmCost(query.instance_type, query.process_hours, query.instances) +
         pricing_.queue_request * 3.0;
}

double CostModel::QueryCostIndexed(const QueryMetrics& query) const {
  return ResultRetrievalCost(query) +
         pricing_.idx_get * query.get_ops +
         pricing_.st_get * static_cast<double>(query.docs_fetched) +
         pricing_.st_put +
         VmCost(query.instance_type, query.process_hours, query.instances) +
         pricing_.queue_request * 3.0;
}

}  // namespace webdex::cost
