#include "cost/path_cost.h"

#include <algorithm>
#include <cmath>

namespace webdex::cost {

namespace {

/// The fetch + evaluate tail shared by every path: S3 GETs for the
/// candidate documents, the VM time to parse and evaluate them, and the
/// single result write (Figure 1, step 14) every query pays regardless
/// of its candidate count — the cost floor of an empty answer.
void AddFetchTail(const CostModel& model, const FetchShape& fetch,
                  PathEstimate* estimate) {
  estimate->docs = fetch.docs;
  estimate->store_get_requests = fetch.docs;
  estimate->store_put_requests = 1;
  const double ecu = std::max(fetch.instance_ecu, 1e-9);
  estimate->vm_seconds =
      fetch.docs * fetch.avg_doc_bytes * fetch.work_per_byte / ecu / 1e6;
  estimate->usd += model.pricing().st_get * fetch.docs +
                   model.pricing().st_put +
                   fetch.vm_usd_per_hour * estimate->vm_seconds / 3600.0;
}

}  // namespace

PathEstimate EstimateLookupPath(const CostModel& model,
                                const LookupShape& lookup,
                                const FetchShape& fetch) {
  PathEstimate estimate;
  estimate.index_keys = static_cast<double>(lookup.keys);
  const int limit = std::max(lookup.batch_get_limit, 1);
  estimate.index_requests =
      lookup.requests_override > 0
          ? lookup.requests_override
          : (lookup.keys == 0 ? 0
                              : std::ceil(static_cast<double>(lookup.keys) /
                                          static_cast<double>(limit)));
  const double billed_item_bytes =
      std::max(lookup.avg_item_bytes, lookup.min_read_bytes);
  switch (lookup.billing) {
    case IndexBilling::kReadUnits: {
      // DynamoDB: 4 KB read units per item, floored per item; an empty
      // response still seeks once per API call.
      estimate.index_read_units =
          std::max(lookup.est_items, estimate.index_requests) *
          billed_item_bytes / 4096.0;
      const double unit_price = lookup.on_demand
                                    ? model.pricing().idx_ondemand_get
                                    : model.pricing().idx_get;
      estimate.usd = unit_price * estimate.index_read_units *
                     lookup.read_price_factor;
      break;
    }
    case IndexBilling::kBoxUsage: {
      // SimpleDB: box-usage machine-hours per retrieved item.
      estimate.index_read_units =
          std::max(lookup.est_items, estimate.index_requests);
      estimate.usd = model.pricing().simpledb_machine_hour *
                     model.pricing().simpledb_box_hours_per_get *
                     estimate.index_read_units * lookup.read_price_factor;
      break;
    }
  }
  AddFetchTail(model, fetch, &estimate);
  return estimate;
}

PathEstimate EstimateScanPath(const CostModel& model,
                              const FetchShape& fetch) {
  PathEstimate estimate;
  AddFetchTail(model, fetch, &estimate);
  return estimate;
}

}  // namespace webdex::cost
