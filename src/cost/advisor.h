#ifndef WEBDEX_COST_ADVISOR_H_
#define WEBDEX_COST_ADVISOR_H_

#include <string>
#include <utility>
#include <vector>

#include "cloud/cloud_env.h"
#include "common/result.h"
#include "cost/cost_model.h"
#include "index/strategy.h"

namespace webdex::cost {

/// Input to the index advisor: a representative document sample, the
/// expected full dataset scale, and the expected workload.
struct AdvisorInput {
  /// (uri, xml text) sample documents; the advisor indexes and queries
  /// them in a private simulated cloud.
  std::vector<std::pair<std::string, std::string>> sample_documents;
  /// Expected number of documents in the production dataset; per-dataset
  /// costs are scaled up linearly from the sample.
  uint64_t expected_documents = 0;
  /// Expected query workload (query texts).
  std::vector<std::string> workload;
  /// How many times per month the workload is expected to run.
  double workload_runs_per_month = 30;

  cloud::InstanceType instance_type = cloud::InstanceType::kLarge;
  int num_instances = 1;
  cloud::CloudConfig cloud;
};

/// Cost/performance estimate for one indexing strategy at the expected
/// production scale.
struct StrategyEstimate {
  index::StrategyKind kind = index::StrategyKind::kLU;
  double build_cost = 0;            // ci$(D, I), one-off
  double monthly_storage_cost = 0;  // st$m(D, I)
  double workload_cost = 0;         // one workload run
  double workload_seconds = 0;      // one workload run, response time
  /// Workload runs needed before cumulative query savings repay the
  /// index build cost (Figure 13's crossing point); <0 if never.
  double amortization_runs = 0;
  /// build/12 + storage + runs_per_month * workload cost: the figure the
  /// advisor ranks by.
  double monthly_total = 0;
};

struct AdvisorReport {
  std::vector<StrategyEstimate> estimates;  // one per strategy
  double no_index_workload_cost = 0;
  double no_index_workload_seconds = 0;
  double no_index_monthly_total = 0;
  /// The cheapest option; kUseNoIndex is reported via `use_index`.
  index::StrategyKind recommended = index::StrategyKind::kLU;
  bool recommend_indexing = true;

  std::string ToString() const;
};

/// The platform and index advisor the paper names as future work
/// (Section 9): "based on the expected dataset and workload, estimates an
/// application's performance and cost and picks the best indexing
/// strategy to use."
///
/// Method: every candidate strategy (and the no-index baseline) is run
/// for real on the document sample inside a private simulated cloud; the
/// metered dollar amounts and virtual times are then scaled linearly from
/// sample size to `expected_documents`.  Linear scaling is exact for
/// storage and indexing (Figure 7 shows indexing scales linearly) and a
/// first-order approximation for query costs.
Result<AdvisorReport> AdviseStrategy(const AdvisorInput& input);

/// Input to the brownout advisor: what a query processor knows when its
/// index lookups start failing (docs/FAULTS.md).
struct BrownoutInput {
  cloud::Pricing pricing;
  cloud::InstanceType instance_type = cloud::InstanceType::kLarge;
  /// |D|: documents a degraded full scan fetches and evaluates.
  uint64_t documents = 0;
  /// Virtual seconds the degraded scan takes (S3 transfer + parse/eval).
  double scan_seconds = 0;
  /// Index-store get units one *healthy* lookup of the query consumes.
  double lookup_get_units = 0;
  /// Virtual seconds one failed lookup attempt burns (request latency
  /// plus the backoff sleep that follows it).
  double attempt_seconds = 0;
};

/// Dollar break-even between "keep retrying the browned-out index" and
/// "answer now from a full scan".  Failed attempts bill no capacity
/// units (docs/FAULTS.md), so their cost is the rented VM time spent
/// waiting; the scan pays file-store GETs plus VM time instead.
struct BrownoutAdvice {
  double scan_cost = 0;     // $ to answer now by scanning
  double lookup_cost = 0;   // $ for the healthy indexed answer
  double attempt_cost = 0;  // $ per failed retry attempt
  /// Failed attempts after which cumulative retry spend exceeds the
  /// scan: (scan_cost - lookup_cost) / attempt_cost, floored at 0.
  /// Infinite when attempts are free (attempt_seconds == 0).
  double breakeven_attempts = 0;

  std::string ToString() const;
};

BrownoutAdvice AdviseBrownout(const BrownoutInput& input);

}  // namespace webdex::cost

#endif  // WEBDEX_COST_ADVISOR_H_
