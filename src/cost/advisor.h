#ifndef WEBDEX_COST_ADVISOR_H_
#define WEBDEX_COST_ADVISOR_H_

#include <string>
#include <utility>
#include <vector>

#include "cloud/cloud_env.h"
#include "common/result.h"
#include "cost/cost_model.h"
#include "index/strategy.h"

namespace webdex::cost {

/// Input to the index advisor: a representative document sample, the
/// expected full dataset scale, and the expected workload.
struct AdvisorInput {
  /// (uri, xml text) sample documents; the advisor indexes and queries
  /// them in a private simulated cloud.
  std::vector<std::pair<std::string, std::string>> sample_documents;
  /// Expected number of documents in the production dataset; per-dataset
  /// costs are scaled up linearly from the sample.
  uint64_t expected_documents = 0;
  /// Expected query workload (query texts).
  std::vector<std::string> workload;
  /// How many times per month the workload is expected to run.
  double workload_runs_per_month = 30;

  cloud::InstanceType instance_type = cloud::InstanceType::kLarge;
  int num_instances = 1;
  cloud::CloudConfig cloud;
};

/// Cost/performance estimate for one indexing strategy at the expected
/// production scale.
struct StrategyEstimate {
  index::StrategyKind kind = index::StrategyKind::kLU;
  double build_cost = 0;            // ci$(D, I), one-off
  double monthly_storage_cost = 0;  // st$m(D, I)
  double workload_cost = 0;         // one workload run
  double workload_seconds = 0;      // one workload run, response time
  /// Workload runs needed before cumulative query savings repay the
  /// index build cost (Figure 13's crossing point); <0 if never.
  double amortization_runs = 0;
  /// build/12 + storage + runs_per_month * workload cost: the figure the
  /// advisor ranks by.
  double monthly_total = 0;
};

struct AdvisorReport {
  std::vector<StrategyEstimate> estimates;  // one per strategy
  double no_index_workload_cost = 0;
  double no_index_workload_seconds = 0;
  double no_index_monthly_total = 0;
  /// The cheapest option; kUseNoIndex is reported via `use_index`.
  index::StrategyKind recommended = index::StrategyKind::kLU;
  bool recommend_indexing = true;

  std::string ToString() const;
};

/// The platform and index advisor the paper names as future work
/// (Section 9): "based on the expected dataset and workload, estimates an
/// application's performance and cost and picks the best indexing
/// strategy to use."
///
/// Method: every candidate strategy (and the no-index baseline) is run
/// for real on the document sample inside a private simulated cloud; the
/// metered dollar amounts and virtual times are then scaled linearly from
/// sample size to `expected_documents`.  Linear scaling is exact for
/// storage and indexing (Figure 7 shows indexing scales linearly) and a
/// first-order approximation for query costs.
Result<AdvisorReport> AdviseStrategy(const AdvisorInput& input);

}  // namespace webdex::cost

#endif  // WEBDEX_COST_ADVISOR_H_
