#ifndef WEBDEX_COST_COST_MODEL_H_
#define WEBDEX_COST_COST_MODEL_H_

#include <cstdint>

#include "cloud/pricing.h"

namespace webdex::cost {

/// Data-dependent metrics (paper Section 7.1).
struct DataMetrics {
  uint64_t num_documents = 0;  // |D|
  double size_gb = 0;          // s(D)
};

/// Data- and index-determined metrics.
struct IndexMetrics {
  /// |op(D, I)|: index-store put units consumed to store the index (see
  /// the pricing note in cloud/pricing.h for the unit's granularity).
  double put_ops = 0;
  double raw_gb = 0;       // sr(D, I)
  double overhead_gb = 0;  // ovh(D, I)
  /// tidx(D, I): first loader message retrieved -> last message deleted.
  double build_hours = 0;
  /// Instances that worked on the build (the VM term bills the fleet).
  int instances = 1;
  cloud::InstanceType instance_type = cloud::InstanceType::kLarge;

  double total_gb() const { return raw_gb + overhead_gb; }  // s(D, I)
};

/// Data-, index- and query-determined metrics.
struct QueryMetrics {
  double result_gb = 0;        // |r(q)|
  double get_ops = 0;          // |op(q, D, I)| (0 without an index)
  uint64_t docs_fetched = 0;   // |D^q_I| (|D| without an index)
  /// pt(q, D) or ptq(q, D, I, D^q_I): message retrieved -> deleted.
  double process_hours = 0;
  int instances = 1;
  cloud::InstanceType instance_type = cloud::InstanceType::kLarge;
};

/// The analytical monetary cost model of paper Section 7.3.  Every
/// formula matches the paper term for term; tests cross-check it against
/// the UsageMeter's metered bills.
class CostModel {
 public:
  explicit CostModel(const cloud::Pricing& pricing) : pricing_(pricing) {}

  const cloud::Pricing& pricing() const { return pricing_; }

  /// ud$(D) = STput$·|D| + QS$·|D|
  double UploadCost(const DataMetrics& data) const;

  /// ci$(D, I) = ud$(D) + IDXput$·|op(D,I)| + STget$·|D|
  ///           + VM$h·tidx(D,I)·instances + QS$·2·|D|
  double IndexBuildCost(const DataMetrics& data,
                        const IndexMetrics& index) const;

  /// st$m(D, I) = ST$m,GB·s(D) + IDX$m,GB·s(D, I)
  double MonthlyStorageCost(const DataMetrics& data,
                            const IndexMetrics& index) const;

  /// Data-only part of st$m (no index).
  double MonthlyDataStorageCost(const DataMetrics& data) const;

  /// rq$(q) = STget$ + egress$GB·|r(q)| + QS$·3
  double ResultRetrievalCost(const QueryMetrics& query) const;

  /// cq$(q, D) = rq$(q) + STget$·|D| + STput$ + VM$h·pt + QS$·3
  double QueryCostNoIndex(const QueryMetrics& query,
                          const DataMetrics& data) const;

  /// cq$(q, D, I, DqI) = rq$(q) + IDXget$·|op| + STget$·|DqI| + STput$
  ///                   + VM$h·ptq + QS$·3
  double QueryCostIndexed(const QueryMetrics& query) const;

  /// Per-workload-run benefit of indexing: cost without index minus cost
  /// with index, summed over the workload (Section 8.3 amortization).
  /// After n runs the cumulated net value is n·benefit − buildCost; the
  /// index has amortized once this crosses zero (Figure 13).
  double AmortizationNetValue(double benefit_per_run, double build_cost,
                              int runs) const {
    return benefit_per_run * runs - build_cost;
  }

 private:
  double VmCost(cloud::InstanceType type, double hours, int instances) const;

  cloud::Pricing pricing_;
};

}  // namespace webdex::cost

#endif  // WEBDEX_COST_COST_MODEL_H_
