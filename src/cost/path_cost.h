#ifndef WEBDEX_COST_PATH_COST_H_
#define WEBDEX_COST_PATH_COST_H_

#include <cstdint>
#include <string>

#include "cost/cost_model.h"

namespace webdex::cost {

/// What one physical access path is expected to consume, before running
/// it (docs/PLANNER.md).  Volumes are kept next to the dollar total so
/// EXPLAIN can show *why* a path is priced the way it is, and so reports
/// can compare estimated against metered requests.
struct PathEstimate {
  double index_keys = 0;        // distinct index keys fetched
  double index_requests = 0;    // index-store BatchGet API calls
  double index_read_units = 0;  // capacity units (or box-usage gets)
  double docs = 0;              // candidate documents to fetch
  double store_get_requests = 0;  // file-store GETs (== docs)
  double store_put_requests = 0;  // file-store PUTs (the result write)
  double vm_seconds = 0;          // rented compute for fetch + evaluate
  double usd = 0;                 // the decision total

  double requests() const {
    return index_requests + store_get_requests + store_put_requests;
  }
};

/// How the index store bills reads: DynamoDB charges 4 KB read capacity
/// units with a small per-item floor, SimpleDB charges box-usage
/// machine-hours per retrieved item (Section 7.2).
enum class IndexBilling { kReadUnits, kBoxUsage };

/// Size and shape of one index look-up, as derived from the planner's
/// statistics (index::PathSummary + the store's host-side accounting).
struct LookupShape {
  uint64_t keys = 0;           // distinct index keys fetched
  double est_items = 0;        // items expected across those keys
  double avg_item_bytes = 0;   // table's stored bytes / item count
  int batch_get_limit = 1;     // store's keys-per-request cap
  double min_read_bytes = 0;   // per-item read-unit floor (DynamoDB)
  IndexBilling billing = IndexBilling::kReadUnits;
  // Deployment adjustments (docs/ARCHITECTURES.md).  A sharded layout
  // batches per physical table, so the caller supplies the exact API
  // call count; > 0 replaces the single-table ceil(keys / limit).
  double requests_override = 0;
  // 0.5 under a replicated read pool (eventually-consistent reads are
  // half price), 1 otherwise.
  double read_price_factor = 1;
  // Price read units at the on-demand premium instead of idx_get.
  bool on_demand = false;
};

/// The document fetch + evaluation tail every path shares: candidate
/// documents are transferred from the file store and evaluated on the
/// renting instance (paper Figure 1, steps 12-13).
struct FetchShape {
  double docs = 0;            // candidate documents
  double avg_doc_bytes = 0;   // corpus bytes / |D|
  /// ECU-micros of CPU per fetched byte (parse + evaluate, WorkModel).
  double work_per_byte = 0;
  /// Aggregate ECUs of the executing instance (ecu_per_core x cores).
  double instance_ecu = 1;
  double vm_usd_per_hour = 0;
};

/// Prices an index-backed access path: index reads, then the fetch tail.
PathEstimate EstimateLookupPath(const CostModel& model,
                                const LookupShape& lookup,
                                const FetchShape& fetch);

/// Prices the full-scan access path: no index reads, every document
/// fetched (the PR4 degraded fallback, now just the priciest path).
PathEstimate EstimateScanPath(const CostModel& model,
                              const FetchShape& fetch);

}  // namespace webdex::cost

#endif  // WEBDEX_COST_PATH_COST_H_
