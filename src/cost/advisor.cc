#include "cost/advisor.h"

#include <algorithm>
#include <limits>

#include "common/strings.h"
#include "engine/warehouse.h"

namespace webdex::cost {
namespace {

constexpr double kGb = 1024.0 * 1024.0 * 1024.0;

struct TrialResult {
  double build_cost = 0;
  double storage_cost = 0;
  double workload_cost = 0;
  double workload_seconds = 0;
};

/// Runs one configuration (a strategy, or no index) over the sample in a
/// fresh simulated cloud and returns metered costs.
Result<TrialResult> RunTrial(const AdvisorInput& input, bool use_index,
                             index::StrategyKind kind) {
  cloud::CloudEnv env(input.cloud);
  engine::WarehouseConfig config;
  config.use_index = use_index;
  config.strategy = kind;
  config.instance_type = input.instance_type;
  config.num_instances = input.num_instances;
  engine::Warehouse warehouse(&env, config);
  WEBDEX_RETURN_IF_ERROR(warehouse.Setup());

  for (const auto& [uri, text] : input.sample_documents) {
    WEBDEX_RETURN_IF_ERROR(warehouse.SubmitDocument(uri, text));
  }

  TrialResult trial;
  if (use_index) {
    const cloud::Usage before = env.meter().Snapshot();
    WEBDEX_ASSIGN_OR_RETURN(engine::IndexingRunReport report,
                            warehouse.RunIndexers());
    (void)report;
    trial.build_cost =
        env.meter().ComputeBill(env.meter().Snapshot() - before).total();
    CostModel model(input.cloud.pricing);
    DataMetrics data;
    data.num_documents = input.sample_documents.size();
    data.size_gb = static_cast<double>(warehouse.data_bytes()) / kGb;
    IndexMetrics index_metrics;
    index_metrics.raw_gb =
        static_cast<double>(warehouse.IndexRawBytes()) / kGb;
    index_metrics.overhead_gb =
        static_cast<double>(warehouse.IndexOverheadBytes()) / kGb;
    trial.storage_cost =
        model.MonthlyStorageCost(data, index_metrics) -
        model.MonthlyDataStorageCost(data);  // index share only
  }

  const cloud::Usage before = env.meter().Snapshot();
  WEBDEX_ASSIGN_OR_RETURN(engine::QueryRunReport run,
                          warehouse.ExecuteQueries(input.workload));
  trial.workload_cost =
      env.meter().ComputeBill(env.meter().Snapshot() - before).total();
  trial.workload_seconds =
      static_cast<double>(run.makespan) / cloud::kMicrosPerSecond;
  return trial;
}

}  // namespace

Result<AdvisorReport> AdviseStrategy(const AdvisorInput& input) {
  if (input.sample_documents.empty()) {
    return Status::InvalidArgument("advisor needs at least one sample doc");
  }
  if (input.expected_documents == 0) {
    return Status::InvalidArgument("expected_documents must be > 0");
  }
  const double scale = static_cast<double>(input.expected_documents) /
                       static_cast<double>(input.sample_documents.size());

  AdvisorReport report;

  WEBDEX_ASSIGN_OR_RETURN(
      TrialResult baseline,
      RunTrial(input, /*use_index=*/false, index::StrategyKind::kLU));
  report.no_index_workload_cost = baseline.workload_cost * scale;
  report.no_index_workload_seconds = baseline.workload_seconds * scale;
  report.no_index_monthly_total =
      report.no_index_workload_cost * input.workload_runs_per_month;

  double best = report.no_index_monthly_total;
  report.recommend_indexing = false;

  for (index::StrategyKind kind : index::AllStrategyKinds()) {
    WEBDEX_ASSIGN_OR_RETURN(TrialResult trial,
                            RunTrial(input, /*use_index=*/true, kind));
    StrategyEstimate estimate;
    estimate.kind = kind;
    estimate.build_cost = trial.build_cost * scale;
    estimate.monthly_storage_cost = trial.storage_cost * scale;
    estimate.workload_cost = trial.workload_cost * scale;
    estimate.workload_seconds = trial.workload_seconds * scale;
    const double benefit_per_run =
        report.no_index_workload_cost - estimate.workload_cost;
    estimate.amortization_runs =
        benefit_per_run > 0 ? estimate.build_cost / benefit_per_run : -1;
    estimate.monthly_total =
        estimate.build_cost / 12.0 + estimate.monthly_storage_cost +
        estimate.workload_cost * input.workload_runs_per_month;
    if (estimate.monthly_total < best) {
      best = estimate.monthly_total;
      report.recommended = kind;
      report.recommend_indexing = true;
    }
    report.estimates.push_back(estimate);
  }
  return report;
}

BrownoutAdvice AdviseBrownout(const BrownoutInput& input) {
  const double vm_per_second =
      input.pricing.VmHour(input.instance_type) / 3600.0;
  BrownoutAdvice advice;
  advice.scan_cost =
      static_cast<double>(input.documents) * input.pricing.st_get +
      input.scan_seconds * vm_per_second;
  advice.lookup_cost = input.lookup_get_units * input.pricing.idx_get;
  advice.attempt_cost = input.attempt_seconds * vm_per_second;
  const double gap = advice.scan_cost - advice.lookup_cost;
  advice.breakeven_attempts =
      advice.attempt_cost > 0
          ? std::max(0.0, gap / advice.attempt_cost)
          : std::numeric_limits<double>::infinity();
  return advice;
}

std::string BrownoutAdvice::ToString() const {
  return StrFormat(
      "brownout: scan $%.7f, healthy lookup $%.7f, failed attempt "
      "$%.7f\n  break-even after %.1f failed attempts — %s\n",
      scan_cost, lookup_cost, attempt_cost, breakeven_attempts,
      breakeven_attempts < 1 ? "scan immediately"
                             : "retry, then fall back");
}

std::string AdvisorReport::ToString() const {
  std::string out;
  out += StrFormat(
      "%-8s %12s %12s %12s %12s %14s\n", "strategy", "build $", "storage "
      "$/mo", "workload $", "workload s", "amortize@runs");
  out += StrFormat("%-8s %12s %12s %12.5f %12.1f %14s\n", "none", "-", "-",
                   no_index_workload_cost, no_index_workload_seconds, "-");
  for (const auto& e : estimates) {
    out += StrFormat("%-8s %12.4f %12.4f %12.5f %12.1f %14.1f\n",
                     index::StrategyKindName(e.kind), e.build_cost,
                     e.monthly_storage_cost, e.workload_cost,
                     e.workload_seconds, e.amortization_runs);
  }
  out += StrFormat("recommendation: %s\n",
                   recommend_indexing ? index::StrategyKindName(recommended)
                                      : "no index");
  return out;
}

}  // namespace webdex::cost
