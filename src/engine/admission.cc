#include "engine/admission.h"

#include <algorithm>
#include <cmath>

namespace webdex::engine {

using cloud::Micros;

namespace {

/// Smallest wait that guarantees forward progress when a gate names an
/// exact reopen time that truncates to "now" in integer micros.
constexpr Micros kMinWait = 1;

}  // namespace

AdmissionController::TokenBucket::TokenBucket(double rate_per_second,
                                              double burst)
    : rate_(rate_per_second <= 0
                ? 0
                : rate_per_second / static_cast<double>(cloud::kMicrosPerSecond)),
      burst_(burst < 1 ? 1 : burst),
      level_(burst_) {}

Micros AdmissionController::TokenBucket::Probe(Micros now) {
  if (!active()) return 0;
  if (now > last_) {
    level_ = std::min(burst_, level_ + static_cast<double>(now - last_) * rate_);
    last_ = now;
  }
  if (level_ >= 1.0) return 0;
  const double wait = (1.0 - level_) / rate_;
  const Micros hint = static_cast<Micros>(std::ceil(wait));
  return hint < kMinWait ? kMinWait : hint;
}

void AdmissionController::TokenBucket::Commit() {
  if (active()) level_ -= 1.0;
}

AdmissionController::AdmissionController(const AdmissionConfig& config,
                                         cloud::UsageMeter* meter,
                                         common::MetricRegistry* metrics,
                                         common::Tracer* tracer)
    : config_(config),
      meter_(meter),
      metrics_(metrics),
      tracer_(tracer),
      global_bucket_(config.global_rate, config.global_burst),
      concurrency_limit_(config.initial_concurrency) {
  if (metrics_ != nullptr) {
    admitted_metric_ = metrics_->GetCounter("admission.admitted.count");
    shed_metric_ = metrics_->GetCounter("admission.shed.count");
    deferred_metric_ = metrics_->GetCounter("admission.deferred.count");
    backpressure_metric_ =
        metrics_->GetCounter("admission.backpressure.count");
    limit_gauge_ = metrics_->GetGauge("admission.concurrency_limit");
    if (config_.initial_concurrency > 0) {
      limit_gauge_->Set(static_cast<double>(concurrency_limit_));
    }
  }
}

AdmissionController::TokenBucket& AdmissionController::TenantBucket(
    const std::string& tenant) {
  auto it = tenant_buckets_.find(tenant);
  if (it == tenant_buckets_.end()) {
    it = tenant_buckets_
             .emplace(tenant, TokenBucket(config_.per_tenant_rate,
                                          config_.per_tenant_burst))
             .first;
  }
  return it->second;
}

void AdmissionController::Prune(Micros now) {
  in_flight_.erase(std::remove_if(in_flight_.begin(), in_flight_.end(),
                                  [now](const auto& iv) {
                                    return iv.second <= now;
                                  }),
                   in_flight_.end());
}

int AdmissionController::InFlightAt(Micros now) const {
  int n = 0;
  for (const auto& iv : in_flight_) {
    if (iv.second > now) ++n;
  }
  return n;
}

Micros AdmissionController::GateWait(Micros now, const std::string& tenant) {
  // Concurrency first: a full fleet makes bucket tokens moot, and the
  // probe consumes nothing so ordering cannot leak tokens.
  if (config_.initial_concurrency > 0) {
    Prune(now);
    if (!in_flight_.empty() &&
        static_cast<int>(in_flight_.size()) >= concurrency_limit_) {
      Micros earliest_end = in_flight_.front().second;
      for (const auto& iv : in_flight_) {
        earliest_end = std::min(earliest_end, iv.second);
      }
      const Micros wait = earliest_end - now;
      return wait < kMinWait ? kMinWait : wait;
    }
  }
  TokenBucket& tenant_bucket = TenantBucket(tenant);
  const Micros tenant_wait = tenant_bucket.Probe(now);
  if (tenant_wait > 0) return tenant_wait;
  const Micros global_wait = global_bucket_.Probe(now);
  if (global_wait > 0) return global_wait;
  // Every gate open: consume both tokens atomically.
  tenant_bucket.Commit();
  global_bucket_.Commit();
  return 0;
}

AdmissionDecision AdmissionController::Admit(cloud::SimAgent& agent,
                                             const std::string& tenant,
                                             uint64_t query_id) {
  AdmissionDecision decision;
  if (!config_.enabled) return decision;
  const Micros arrival = agent.now();
  const Micros deadline =
      config_.deadline_micros > 0 ? arrival + config_.deadline_micros : arrival;
  for (;;) {
    const Micros now = agent.now();
    const Micros wait = GateWait(now, tenant);
    if (wait == 0) {
      decision.waited = now - arrival;
      if (admitted_metric_ != nullptr) admitted_metric_->Add(1);
      return decision;
    }
    if (now + wait > deadline) {
      // Past the budget: shed with a typed rejection instead of letting
      // the caller discover a timeout.  The shed itself costs nothing —
      // billing stays with the SQS round trips the caller makes.
      decision.admitted = false;
      decision.status =
          Status::Overloaded("admission rejected: over capacity");
      if (meter_ != nullptr) meter_->mutable_usage().shed_queries += 1;
      if (shed_metric_ != nullptr) shed_metric_->Add(1);
      if (tracer_ != nullptr && meter_ != nullptr) {
        cloud::MeteredSpan span(tracer_, meter_, agent, "admission.shed");
        span.AddAttr("query_id", static_cast<double>(query_id));
        span.AddAttr("waited_us", static_cast<double>(agent.now() - arrival));
      }
      return decision;
    }
    // Defer: the gate names the exact virtual time it reopens (a token
    // refill or the earliest in-flight completion), so waiting that long
    // always makes progress.
    if (deferred_metric_ != nullptr) deferred_metric_->Add(1);
    agent.Advance(wait);
  }
}

void AdmissionController::OnCompleted(Micros start, Micros end,
                                      bool saw_throttle) {
  if (!config_.enabled) return;
  if (config_.initial_concurrency > 0 && end > start) {
    in_flight_.emplace_back(start, end);
  }
  if (config_.initial_concurrency <= 0) return;
  if (saw_throttle) {
    const int decreased = static_cast<int>(std::floor(
        static_cast<double>(concurrency_limit_) * config_.decrease_factor));
    concurrency_limit_ = std::max(config_.min_concurrency, decreased);
  } else {
    concurrency_limit_ = std::min(config_.max_concurrency,
                                  concurrency_limit_ + 1);
  }
  if (limit_gauge_ != nullptr) {
    limit_gauge_->Set(static_cast<double>(concurrency_limit_));
  }
}

Micros AdmissionController::IndexerBackoff(Micros now, uint64_t queue_depth,
                                           uint64_t throttled_total) {
  (void)now;
  if (!config_.enabled || config_.backpressure_queue_depth == 0) return 0;
  const bool fresh_throttles = throttled_total > last_throttled_seen_;
  last_throttled_seen_ = throttled_total;
  if (!fresh_throttles || queue_depth < config_.backpressure_queue_depth) {
    return 0;
  }
  if (backpressure_metric_ != nullptr) backpressure_metric_->Add(1);
  return config_.backpressure_pause;
}

}  // namespace webdex::engine
