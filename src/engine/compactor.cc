#include "engine/compactor.h"

#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "common/strings.h"
#include "engine/extraction_pipeline.h"

namespace webdex::engine {
namespace {

/// Items are unique per (table, hash, range) — same identity the
/// scrubber uses.
struct ItemKey {
  std::string table;
  std::string hash;
  std::string range;

  bool operator<(const ItemKey& o) const {
    return std::tie(table, hash, range) < std::tie(o.table, o.hash, o.range);
  }
};

/// The document URI a stored posting belongs to: the single attribute
/// name that is not the reserved generation stamp (index/generation.h —
/// '~' cannot begin a document URI).
const std::string* OwnerUri(const cloud::Item& item) {
  const std::string* owner = nullptr;
  for (const auto& [name, values] : item.attrs) {
    (void)values;
    if (name == index::kGenAttr) continue;
    if (owner != nullptr) return nullptr;  // layout violation
    owner = &name;
  }
  return owner;
}

/// One mutated URI's stored state, gathered from the billed scans.
struct MutatedDoc {
  index::GenerationInfo info;
  /// Postings owned by the URI across all index tables, with their
  /// generation stamps.
  std::map<ItemKey, uint64_t> postings;
  /// Meta-table rows for the URI (range keys, sorted = generation order).
  std::vector<std::string> meta_ranges;
};

}  // namespace

std::string CompactReport::ToString() const {
  std::string out = StrFormat(
      "compact: %llu mutated documents, %llu postings scanned\n"
      "  canonicalized: %zu   collected: %zu   (%llu items put, %llu "
      "deleted)\n",
      static_cast<unsigned long long>(documents_checked),
      static_cast<unsigned long long>(items_scanned),
      canonicalized_uris.size(), collected_uris.size(),
      static_cast<unsigned long long>(items_put),
      static_cast<unsigned long long>(items_deleted));
  for (const auto& uri : canonicalized_uris) {
    out += "  canonical " + uri + "\n";
  }
  for (const auto& uri : collected_uris) out += "  collected " + uri + "\n";
  if (crashed) {
    out += "  crashed mid-pass; resume cursor '" + resume_cursor + "'\n";
  }
  if (faulted) {
    out += "  faulted mid-pass (" + fault.ToString() + "); resume cursor '" +
           resume_cursor + "'\n";
  }
  return out;
}

Compactor::Compactor(cloud::CloudEnv* env, cloud::KvStore* store,
                     const index::IndexingStrategy* strategy,
                     const index::ExtractOptions& options,
                     std::string data_bucket)
    : env_(env),
      store_(store),
      strategy_(strategy),
      options_(options),
      data_bucket_(std::move(data_bucket)) {}

Result<CompactReport> Compactor::Run(
    cloud::SimAgent& agent, bool full, const std::string& start_cursor,
    const std::function<bool(const std::string&)>& should_crash) {
  CompactReport report;

  // Billed walk of the meta table: every row is one mutation layer, the
  // highest generation per URI wins (max-wins fold, same as readers).
  std::map<std::string, MutatedDoc> mutated;
  {
    WEBDEX_ASSIGN_OR_RETURN(std::vector<cloud::Item> rows,
                            store_->Scan(agent, index::kMetaTable));
    index::GenerationMap folded;
    for (const auto& row : rows) {
      index::ApplyMetaItem(row, &folded);
      mutated[row.hash_key].meta_ranges.push_back(row.range_key);
    }
    for (auto& [uri, doc] : mutated) {
      const index::GenerationInfo* info = folded.Find(uri);
      if (info != nullptr) doc.info = *info;
    }
  }
  if (mutated.empty()) return report;  // nothing mutable to fold

  // Billed walk of the index tables, keeping only postings owned by a
  // mutated URI — untouched static documents are never rewritten.
  for (const auto& table : strategy_->TableNames()) {
    WEBDEX_ASSIGN_OR_RETURN(std::vector<cloud::Item> items,
                            store_->Scan(agent, table));
    report.items_scanned += items.size();
    for (const auto& item : items) {
      const std::string* uri = OwnerUri(item);
      if (uri == nullptr) continue;  // scrubber territory, not history
      auto it = mutated.find(*uri);
      if (it == mutated.end()) continue;
      it->second.postings[ItemKey{table, item.hash_key, item.range_key}] =
          index::StampOf(item.attrs);
    }
  }

  // Per-URI fold, in sorted URI order so the resume cursor is a total
  // order over the work.  Crashes only fire at URI boundaries; per URI
  // the meta rows are deleted last, so re-doing a URI after a crash is
  // idempotent.
  const auto fold_uri = [&](const std::string& uri,
                            const MutatedDoc& doc) -> Status {
    if (doc.info.tombstoned) {
      // Dead document: unlink postings, the stored object, then the
      // tombstone itself.
      for (const auto& [key, stamp] : doc.postings) {
        (void)stamp;
        WEBDEX_RETURN_IF_ERROR(
            store_->DeleteItem(agent, key.table, key.hash, key.range));
        report.items_deleted += 1;
      }
      WEBDEX_RETURN_IF_ERROR(env_->s3().Delete(agent, data_bucket_, uri));
      for (const auto& range : doc.meta_ranges) {
        WEBDEX_RETURN_IF_ERROR(
            store_->DeleteItem(agent, index::kMetaTable, uri, range));
        report.items_deleted += 1;
      }
      report.collected_uris.push_back(uri);
    } else if (full) {
      // Alive upserted document: rewrite to the canonical generation-0
      // postings a from-scratch build of the current corpus would
      // produce (generation 0 draws the original per-URI UUID stream),
      // then drop everything else and the meta rows.
      WEBDEX_ASSIGN_OR_RETURN(std::string text,
                              env_->s3().Get(agent, data_bucket_, uri));
      index::ExtractOptions canonical = options_;
      canonical.generation = 0;
      ExtractionResult extraction = ExtractionPipeline::ExtractNow(
          uri, text, *strategy_, canonical, *store_, env_->config().seed);
      WEBDEX_RETURN_IF_ERROR(extraction.status);
      std::set<ItemKey> expected;
      for (const auto& table_items : extraction.items) {
        WEBDEX_RETURN_IF_ERROR(
            store_->BatchPut(agent, table_items.table, table_items.items));
        report.items_put += table_items.items.size();
        for (const auto& item : table_items.items) {
          expected.insert(
              ItemKey{table_items.table, item.hash_key, item.range_key});
        }
      }
      for (const auto& [key, stamp] : doc.postings) {
        (void)stamp;
        if (expected.count(key) > 0) continue;
        WEBDEX_RETURN_IF_ERROR(
            store_->DeleteItem(agent, key.table, key.hash, key.range));
        report.items_deleted += 1;
      }
      for (const auto& range : doc.meta_ranges) {
        WEBDEX_RETURN_IF_ERROR(
            store_->DeleteItem(agent, index::kMetaTable, uri, range));
        report.items_deleted += 1;
      }
      report.canonicalized_uris.push_back(uri);
    } else {
      // GC-only pass: drop postings of superseded generations and meta
      // rows below the live one; the live generation stays stamped.
      for (const auto& [key, stamp] : doc.postings) {
        if (stamp == doc.info.generation) continue;
        WEBDEX_RETURN_IF_ERROR(
            store_->DeleteItem(agent, key.table, key.hash, key.range));
        report.items_deleted += 1;
      }
      const std::string live = index::GenerationRangeKey(doc.info.generation);
      for (const auto& range : doc.meta_ranges) {
        if (range == live) continue;
        WEBDEX_RETURN_IF_ERROR(
            store_->DeleteItem(agent, index::kMetaTable, uri, range));
        report.items_deleted += 1;
      }
    }
    return Status::OK();
  };

  std::string completed = start_cursor;
  for (const auto& [uri, doc] : mutated) {
    if (!start_cursor.empty() && uri <= start_cursor) continue;
    report.documents_checked += 1;
    if (should_crash && should_crash(uri)) {
      report.crashed = true;
      report.resume_cursor = completed;
      break;
    }
    const Status step = fold_uri(uri, doc);
    if (!step.ok()) {
      // Transient exhaustion (the retry decorator gave up) cuts the
      // pass short like a crash does — the caller backs off and resumes
      // from `completed`; redoing the in-flight URI is idempotent.
      if (!step.IsRetriable()) return step;
      report.faulted = true;
      report.fault = step;
      report.resume_cursor = completed;
      break;
    }
    completed = uri;
  }

  cloud::Usage& usage = env_->meter().mutable_usage();
  usage.compact_gc_items += report.items_deleted;
  usage.compact_uris +=
      report.canonicalized_uris.size() + report.collected_uris.size();
  return report;
}

}  // namespace webdex::engine
