#ifndef WEBDEX_ENGINE_COMPACTOR_H_
#define WEBDEX_ENGINE_COMPACTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cloud/cloud_env.h"
#include "cloud/kv_store.h"
#include "common/result.h"
#include "index/generation.h"
#include "index/strategy.h"

namespace webdex::engine {

/// What one compaction pass did (docs/MUTABILITY.md).
struct CompactReport {
  /// Mutated URIs (any generation > 0 or tombstone in the meta table)
  /// visited by this pass, including ones skipped past the resume cursor
  /// on an earlier pass.
  uint64_t documents_checked = 0;
  uint64_t items_scanned = 0;
  uint64_t items_put = 0;
  uint64_t items_deleted = 0;
  /// Alive upserted URIs rewritten to canonical generation-0 postings
  /// (full mode only).
  std::vector<std::string> canonicalized_uris;
  /// Tombstoned URIs whose postings, document object and meta items were
  /// garbage-collected.
  std::vector<std::string> collected_uris;
  /// Last URI whose work fully completed before a planned crash; empty
  /// when the pass ran to completion (or crashed before finishing any).
  /// Feed it back as `start_cursor` to resume.
  std::string resume_cursor;
  /// The pass was cut short by the crash hook (CrashPoint
  /// kMidCompaction); state on the cloud side is consistent at the URI
  /// boundary recorded in `resume_cursor`.
  bool crashed = false;
  /// The pass was cut short by a transient service error that outlived
  /// the store's own retries (`fault` holds it).  Unlike a crash this
  /// can abort *mid*-URI, but every per-URI step is idempotent
  /// (replacement puts, absent-OK deletes, meta rows last), so resuming
  /// from `resume_cursor` redoes the in-flight URI safely.
  bool faulted = false;
  Status fault = Status::OK();

  std::string ToString() const;
};

/// Generational compaction of a mutable index (docs/MUTABILITY.md): the
/// maintenance job that folds the append-only mutation layers — stamped
/// upsert postings, tombstones, superseded generations — back into the
/// canonical static layout the paper's cost model prices.
///
/// Generalizes the Scrubber's audit walk: where the scrubber repairs
/// *damage* (fault-injected divergence from the expected index), the
/// compactor retires *history*.  Per tombstoned URI it deletes every
/// posting, the S3 object and the meta items; per alive upserted URI a
/// full pass re-extracts the current document at generation 0 — the same
/// deterministic UUID stream a from-scratch build uses — so the compacted
/// index is byte-identical to one built fresh from the final corpus.  A
/// non-full pass only garbage-collects superseded postings and meta rows,
/// leaving live generations stamped.
///
/// Every read and write is billed: the meta table and index tables are
/// walked with KvStore::Scan, documents are re-fetched from S3, and
/// rewrites pay BatchPut/DeleteItem — compaction is a priced maintenance
/// job, exactly like scrubbing.
///
/// Crash safety: work is ordered so that per URI the meta items are
/// deleted *last*, and the crash hook only fires at URI boundaries, so a
/// killed pass resumes from `CompactReport::resume_cursor` and converges
/// — re-doing a URI is idempotent (deterministic re-puts, absent-OK
/// deletes).
class Compactor {
 public:
  /// `store` is the index store (typically the warehouse's retrying
  /// decorator, so compaction traffic gets retries and breaker gating
  /// like any other client).
  Compactor(cloud::CloudEnv* env, cloud::KvStore* store,
            const index::IndexingStrategy* strategy,
            const index::ExtractOptions& options, std::string data_bucket);

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  /// One compaction pass on `agent`'s virtual clock.  `full` selects
  /// canonical generation-0 rewrite of alive upserted documents (versus
  /// garbage-collection only).  URIs <= `start_cursor` are skipped — pass
  /// a previous report's `resume_cursor` to resume a crashed pass.
  /// `should_crash` (may be null) is consulted with each URI before its
  /// work starts; returning true ends the pass with `crashed` set.
  /// A transient service error that survives the store's retries ends
  /// the pass with `faulted` set instead of failing it — back off and
  /// resume from the cursor; only non-retriable errors fail the call.
  Result<CompactReport> Run(
      cloud::SimAgent& agent, bool full, const std::string& start_cursor,
      const std::function<bool(const std::string&)>& should_crash);

 private:
  cloud::CloudEnv* env_;
  cloud::KvStore* store_;
  const index::IndexingStrategy* strategy_;
  index::ExtractOptions options_;
  std::string data_bucket_;
};

}  // namespace webdex::engine

#endif  // WEBDEX_ENGINE_COMPACTOR_H_
