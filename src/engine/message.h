#ifndef WEBDEX_ENGINE_MESSAGE_H_
#define WEBDEX_ENGINE_MESSAGE_H_

#include <string>

#include "common/result.h"

namespace webdex::engine {

/// Wire formats of the three SQS message kinds circulating between the
/// front end and the virtual-machine modules (paper Figure 1).  Messages
/// are plain text: a type tag line, then type-specific lines.

/// Front end -> indexing module: "a document named `uri` awaits indexing
/// in the file store" (Figure 1, step 3).
struct LoadRequest {
  std::string uri;

  std::string Serialize() const;
  static Result<LoadRequest> Parse(const std::string& text);
};

/// Front end -> query processor: "evaluate this query" (step 8).
struct QueryRequest {
  /// Front-end-assigned identifier; keys the response and the result
  /// object name.
  uint64_t id = 0;
  std::string query_text;

  std::string Serialize() const;
  static Result<QueryRequest> Parse(const std::string& text);
};

/// Query processor -> front end: "results for query `id` are in the file
/// store under `result_key`" (step 15).
struct QueryResponse {
  uint64_t id = 0;
  std::string result_key;
  uint64_t row_count = 0;

  std::string Serialize() const;
  static Result<QueryResponse> Parse(const std::string& text);
};

}  // namespace webdex::engine

#endif  // WEBDEX_ENGINE_MESSAGE_H_
