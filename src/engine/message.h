#ifndef WEBDEX_ENGINE_MESSAGE_H_
#define WEBDEX_ENGINE_MESSAGE_H_

#include <string>

#include "common/result.h"

namespace webdex::engine {

/// Wire formats of the three SQS message kinds circulating between the
/// front end and the virtual-machine modules (paper Figure 1).  Messages
/// are plain text: a type tag line, then type-specific lines.

/// What an indexing task asks the module to do with `uri`.
enum class LoadOp {
  kAdd,     // first-time indexing of a static-corpus document
  kUpsert,  // (re)index the document at a generation > 0
  kDelete,  // tombstone the document at a generation > 0
};

/// Front end -> indexing module: "a document named `uri` awaits indexing
/// in the file store" (Figure 1, step 3).  Mutations reuse the same queue
/// with distinct type tags; kAdd serializes exactly as before mutability
/// existed, so static-corpus task bodies are byte-identical.
struct LoadRequest {
  std::string uri;
  LoadOp op = LoadOp::kAdd;
  /// Generation stamp allocated by the front end (index/generation.h).
  /// Always 0 for kAdd, always > 0 for kUpsert / kDelete.
  uint64_t generation = 0;

  std::string Serialize() const;
  static Result<LoadRequest> Parse(const std::string& text);
};

/// Front end -> query processor: "evaluate this query" (step 8).
struct QueryRequest {
  /// Front-end-assigned identifier; keys the response and the result
  /// object name.
  uint64_t id = 0;
  std::string query_text;
  /// Admission-control tenant tag (docs/OVERLOAD.md); per-tenant token
  /// buckets shed hot tenants without starving cold ones.  Empty (the
  /// default) serializes exactly as before tenants existed, so untagged
  /// task bodies stay byte-identical.
  std::string tenant;

  std::string Serialize() const;
  static Result<QueryRequest> Parse(const std::string& text);
};

/// Query processor -> front end: "results for query `id` are in the file
/// store under `result_key`" (step 15).  A shed query (admission control,
/// docs/OVERLOAD.md) still responds — with `shed` set and no result
/// object — so the front end learns its fate without waiting for a
/// timeout.  shed == false serializes exactly as before shedding existed.
struct QueryResponse {
  uint64_t id = 0;
  std::string result_key;
  uint64_t row_count = 0;
  bool shed = false;

  std::string Serialize() const;
  static Result<QueryResponse> Parse(const std::string& text);
};

}  // namespace webdex::engine

#endif  // WEBDEX_ENGINE_MESSAGE_H_
