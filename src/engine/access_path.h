#ifndef WEBDEX_ENGINE_ACCESS_PATH_H_
#define WEBDEX_ENGINE_ACCESS_PATH_H_

#include <memory>
#include <string>
#include <vector>

#include "cloud/deployment.h"
#include "cloud/instance.h"
#include "cloud/kv_store.h"
#include "common/result.h"
#include "cost/path_cost.h"
#include "index/key_twig.h"
#include "index/strategy.h"
#include "index/summary.h"
#include "query/tree_pattern.h"

namespace webdex::engine {

/// Corpus- and deployment-level statistics the planner prices access
/// paths against.  `summary` may be null or empty (e.g. right after a
/// snapshot restore, before any document is re-indexed through this
/// facade); estimation then falls back to whole-corpus upper bounds and
/// the planner behaves like the paper's static default (LUP-side
/// look-ups win).
struct PlannerStats {
  const index::PathSummary* summary = nullptr;
  uint64_t documents = 0;   // |D|
  uint64_t data_bytes = 0;  // s(D) in bytes
  const cloud::WorkModel* work = nullptr;
  cloud::InstanceSpec spec{1, 1.0, 0.0};
  double vm_usd_per_hour = 0;
  /// How the index store bills reads (DynamoDB read units vs SimpleDB
  /// box usage) and its per-item billed-size floor.
  cost::IndexBilling billing = cost::IndexBilling::kReadUnits;
  double min_read_bytes = 0;
  /// Deployment shape (docs/ARCHITECTURES.md): shard routing changes the
  /// BatchGet API-call count, replicas halve the effective read price,
  /// on-demand capacity swaps the per-unit price.  Null = default layout.
  const cloud::Deployment* deployment = nullptr;
  /// Generation view pinned when the plan was built (index/generation.h):
  /// look-ups executed through this plan see each document at exactly the
  /// generation recorded here, so queries stay bit-identical while
  /// maintenance mutates the index underneath.  Null for static corpora.
  std::shared_ptr<const index::GenerationMap> generations;
};

/// What executing one access path produced: the candidate document URIs
/// for one tree pattern, plus the look-up work counters the caller
/// charges to the executing instance.
struct PathResult {
  std::vector<std::string> uris;
  index::LookupStats stats;
  /// True when the candidates are the entire corpus (ScanAccessPath):
  /// the executor then runs the degraded/no-index fetch-everything tail.
  bool scanned = false;
};

/// One physical way to produce candidate documents for a tree pattern
/// (docs/PLANNER.md): an index look-up against a concrete table, or the
/// full warehouse scan.  Paths are constructed per query by the
/// QueryPlanner, priced with EstimateCost, and at most one per pattern
/// is executed — so an un-chosen path is never billed.
class AccessPath {
 public:
  virtual ~AccessPath() = default;

  /// Stable short name used in EXPLAIN output, QueryOutcome::chosen_path
  /// and bench columns: "LU", "LUP", "LUI", "2LUPI/lup", "2LUPI/lui",
  /// "scan".
  virtual const std::string& name() const = 0;

  /// Index table this path reads — the circuit-breaker resource whose
  /// health gates the path's viability.  Empty for the scan path.
  virtual const std::string& table() const = 0;

  /// Prices the path from planner statistics and host-side store
  /// accounting only: no simulated requests, no virtual time, no billing.
  virtual cost::PathEstimate EstimateCost(
      const cost::CostModel& model) const = 0;

  /// Runs the path: index round-trips advance `agent`'s clock and are
  /// billed; CPU work is reported via PathResult::stats for the caller
  /// to charge.  A retriable failure means the backing table is browned
  /// out — the executor falls back to the scan path.
  virtual Result<PathResult> Execute(cloud::SimAgent& agent) const = 0;
};

/// Shared machinery of the three index look-up paths: the key twig, the
/// backing table, and summary-driven estimation.  Subclasses supply the
/// look-up core (index/lookup_paths.h) and the candidate-document
/// estimator.
class LookupAccessPath : public AccessPath {
 public:
  LookupAccessPath(std::string name, cloud::KvStore* store,
                   std::string table, const query::TreePattern* pattern,
                   const index::ExtractOptions& options,
                   const PlannerStats& stats);

  const std::string& name() const override { return name_; }
  const std::string& table() const override { return table_; }
  cost::PathEstimate EstimateCost(const cost::CostModel& model) const override;

 protected:
  /// Distinct index keys the look-up will BatchGet.
  virtual std::vector<std::string> LookupKeys() const = 0;
  /// Candidate documents predicted from a non-empty summary.
  virtual double EstimateDocs(const index::PathSummary& summary) const = 0;

  std::string name_;
  cloud::KvStore* store_;
  std::string table_;
  const query::TreePattern* pattern_;
  index::ExtractOptions options_;
  PlannerStats stats_;
  index::KeyTwig twig_;
};

/// The LU look-up (Section 5.1) as an access path.
class LuAccessPath final : public LookupAccessPath {
 public:
  using LookupAccessPath::LookupAccessPath;
  Result<PathResult> Execute(cloud::SimAgent& agent) const override;

 protected:
  std::vector<std::string> LookupKeys() const override;
  double EstimateDocs(const index::PathSummary& summary) const override;
};

/// The LUP path-filter look-up (Section 5.2); with table
/// "idx-2lupi-paths" it is the standalone LUP side of a 2LUPI index.
class LupAccessPath final : public LookupAccessPath {
 public:
  using LookupAccessPath::LookupAccessPath;
  Result<PathResult> Execute(cloud::SimAgent& agent) const override;

 protected:
  std::vector<std::string> LookupKeys() const override;
  double EstimateDocs(const index::PathSummary& summary) const override;
};

/// The LUI twig-join look-up (Section 5.3); with table "idx-2lupi-ids"
/// it is the standalone LUI side of a 2LUPI index (no semijoin
/// pre-filter — the planner runs one side only).
class LuiAccessPath final : public LookupAccessPath {
 public:
  using LookupAccessPath::LookupAccessPath;
  Result<PathResult> Execute(cloud::SimAgent& agent) const override;

 protected:
  std::vector<std::string> LookupKeys() const override;
  double EstimateDocs(const index::PathSummary& summary) const override;
};

/// The full warehouse scan (the PR4 degraded fallback relocated into the
/// planner): candidates are every document.  Free at look-up time —
/// all the cost is in the fetch-everything tail — and always viable, so
/// brownout handling is simply "the planner picks the only healthy
/// path".
class ScanAccessPath final : public AccessPath {
 public:
  ScanAccessPath(const std::vector<std::string>* document_uris,
                 const PlannerStats& stats);

  const std::string& name() const override { return name_; }
  const std::string& table() const override { return table_; }
  cost::PathEstimate EstimateCost(const cost::CostModel& model) const override;
  Result<PathResult> Execute(cloud::SimAgent& agent) const override;

 private:
  std::string name_ = "scan";
  std::string table_;
  const std::vector<std::string>* document_uris_;
  PlannerStats stats_;
};

/// The fetch + evaluate tail shape shared by every path of this
/// deployment, for `docs` candidate documents.
cost::FetchShape MakeFetchShape(const PlannerStats& stats, double docs);

}  // namespace webdex::engine

#endif  // WEBDEX_ENGINE_ACCESS_PATH_H_
