#include "engine/query_executor.h"

#include <cassert>
#include <set>
#include <utility>

#include "common/strings.h"
#include "engine/query_planner.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "xml/parser.h"

namespace webdex::engine {

using cloud::Instance;
using cloud::Micros;

Status QueryExecutor::LookupLegacy(Instance& instance,
                                   const query::LogicalPlan& logical,
                                   std::vector<std::string>* to_fetch,
                                   QueryOutcome* outcome) {
  Warehouse& w = *warehouse_;
  const auto& work = instance.work();
  // Index look-up (Figure 1, step 10): per tree pattern, then union.
  const cloud::Usage before = w.env_->meter().Snapshot();
  std::set<std::string> fetch_set;
  index::LookupStats stats;
  const Micros get_start = instance.now();
  Status lookup_status = Status::OK();
  // Pin the generation view once for the whole query: look-ups stay
  // bit-identical even if maintenance commits mid-evaluation.
  const std::shared_ptr<const index::GenerationMap> view =
      w.GenerationSnapshot();
  for (const auto& pattern : logical.query().patterns()) {
    auto uris = w.strategy_->LookupPattern(instance, w.index_store(), pattern,
                                           w.config_.extract, &stats,
                                           view.get());
    if (!uris.ok()) {
      lookup_status = uris.status();
      break;
    }
    outcome->docs_from_index += uris.value().size();
    fetch_set.insert(uris.value().begin(), uris.value().end());
  }
  outcome->timings.index_get = instance.now() - get_start;
  // A permanent lookup failure is a real error; a retriable one means
  // the index store is browned out (retries exhausted or its circuit
  // breaker is open) and the query degrades to a full scan below.
  if (!lookup_status.ok() && !lookup_status.IsRetriable()) {
    return lookup_status;
  }

  // Physical plan over the fetched index data (step 11): URI-set
  // merges, path matching, holistic twig joins.
  const Micros plan_start = instance.now();
  instance.ChargeParallelWork(
      work.lookup_merge_per_item * static_cast<double>(stats.uri_merge_ops) +
      work.lookup_merge_per_item * static_cast<double>(stats.items_fetched) +
      work.path_match_per_path * static_cast<double>(stats.paths_tested) +
      work.twig_per_id * static_cast<double>(stats.twig_id_ops));
  outcome->timings.plan_exec = instance.now() - plan_start;
  outcome->lookup = stats;

  const cloud::Usage delta = w.env_->meter().Snapshot() - before;
  outcome->index_get_units = delta.ddb_read_units + delta.sdb_get_requests;
  if (lookup_status.ok()) {
    outcome->chosen_path = w.strategy_->name();
    to_fetch->assign(fetch_set.begin(), fetch_set.end());
  } else {
    // Degraded read (docs/FAULTS.md): answer from the ground truth by
    // scanning every document, exactly like the no-index baseline.
    // Same rows, higher cost — availability is bought with S3 traffic
    // and VM time instead of index reads.
    outcome->chosen_path = "scan";
    outcome->degraded = true;
    outcome->docs_from_index = 0;
    outcome->scan_docs = w.document_uris_.size();
    w.env_->meter().mutable_usage().degraded_queries += 1;
    *to_fetch = w.document_uris_;
  }
  return Status::OK();
}

Status QueryExecutor::LookupPlanned(Instance& instance,
                                    const query::LogicalPlan& logical,
                                    std::vector<std::string>* to_fetch,
                                    QueryOutcome* outcome) {
  Warehouse& w = *warehouse_;
  const auto& work = instance.work();
  // Planning is host-side arithmetic over the path summary and breaker
  // health: free, instantaneous, nothing billed.
  cloud::MeteredSpan plan_span(&w.env_->tracer(), &w.env_->meter(),
                               instance, "plan");
  const QueryPlanner planner = w.MakePlanner();
  const PhysicalPlan plan =
      planner.Plan(logical, w.cost_model_, instance.now());
  outcome->chosen_path = plan.ChosenDescription();
  outcome->estimated_cost_usd = plan.EstimatedUsd();
  outcome->estimated_requests = plan.EstimatedRequests();
  outcome->planner_fallbacks = plan.planner_fallbacks;
  plan_span.AddAttr("estimated_usd", plan.EstimatedUsd());
  plan_span.End();

  const cloud::Usage before = w.env_->meter().Snapshot();
  std::set<std::string> fetch_set;
  index::LookupStats stats;
  const Micros get_start = instance.now();
  bool scanned = false;
  for (const auto& pattern_plan : plan.patterns) {
    const PlannedPath& chosen = pattern_plan.chosen_path();
    // One span per executed access path, named after the path it ran
    // ("path.lup", "path.lui", "path.scan", ...).
    cloud::MeteredSpan path_span(&w.env_->tracer(), &w.env_->meter(),
                                 instance, "path." + chosen.path->name());
    auto result = chosen.path->Execute(instance);
    if (!result.ok()) {
      path_span.AddAttr("error", 1);
      if (!result.status().IsRetriable()) return result.status();
      // Runtime brownout: the chosen look-up exhausted its retries
      // mid-query.  Degrade to the scan path — the same fallback the
      // planner would have chosen had the breaker opened before planning.
      scanned = true;
      outcome->planner_fallbacks += 1;
      break;
    }
    if (result.value().scanned) {
      scanned = true;
      break;
    }
    stats += result.value().stats;
    outcome->docs_from_index += result.value().uris.size();
    fetch_set.insert(result.value().uris.begin(), result.value().uris.end());
  }
  outcome->timings.index_get = instance.now() - get_start;

  const Micros plan_start = instance.now();
  instance.ChargeParallelWork(
      work.lookup_merge_per_item * static_cast<double>(stats.uri_merge_ops) +
      work.lookup_merge_per_item * static_cast<double>(stats.items_fetched) +
      work.path_match_per_path * static_cast<double>(stats.paths_tested) +
      work.twig_per_id * static_cast<double>(stats.twig_id_ops));
  outcome->timings.plan_exec = instance.now() - plan_start;
  outcome->lookup = stats;

  const cloud::Usage delta = w.env_->meter().Snapshot() - before;
  outcome->index_get_units = delta.ddb_read_units + delta.sdb_get_requests;
  if (scanned) {
    // Degraded semantics identical to the legacy fallback (docs/FAULTS.md).
    outcome->chosen_path = "scan";
    outcome->degraded = true;
    outcome->docs_from_index = 0;
    outcome->scan_docs = w.document_uris_.size();
    w.env_->meter().mutable_usage().degraded_queries += 1;
    *to_fetch = w.document_uris_;
  } else {
    to_fetch->assign(fetch_set.begin(), fetch_set.end());
  }
  return Status::OK();
}

Status QueryExecutor::Run(Instance& instance, const QueryRequest& request,
                          uint64_t receipt, Micros* lease_anchor,
                          QueryOutcome* outcome) {
  Warehouse& w = *warehouse_;
  const Micros task_start = instance.now();
  outcome->id = request.id;
  outcome->query_text = request.query_text;

  WEBDEX_ASSIGN_OR_RETURN(query::Query parsed,
                          query::ParseQuery(request.query_text));
  const query::LogicalPlan logical =
      query::LogicalPlan::Build(std::move(parsed));

  const auto& work = instance.work();
  const cloud::Usage task_before = w.env_->meter().Snapshot();
  std::vector<std::string> to_fetch;
  if (w.config_.use_index) {
    if (w.config_.use_planner) {
      WEBDEX_RETURN_IF_ERROR(
          LookupPlanned(instance, logical, &to_fetch, outcome));
    } else {
      WEBDEX_RETURN_IF_ERROR(
          LookupLegacy(instance, logical, &to_fetch, outcome));
    }
    w.MaybeRenewLease(instance, w.config_.query_queue, receipt, lease_anchor);
  } else {
    // No index: the query runs over the entire warehouse.
    outcome->chosen_path = "scan";
    to_fetch = w.document_uris_;
  }
  outcome->docs_fetched = to_fetch.size();

  // Transfer the candidate documents into the instance and evaluate
  // (steps 12-13), over one parallel S3 stream per core.
  const Micros eval_start = instance.now();
  cloud::MeteredSpan fetch_span(&w.env_->tracer(), &w.env_->meter(),
                                instance, "fetch");
  fetch_span.AddAttr("documents", static_cast<double>(to_fetch.size()));
  std::vector<std::shared_ptr<const xml::Document>> docs;
  if (!to_fetch.empty()) {
    WEBDEX_ASSIGN_OR_RETURN(
        std::vector<std::string> texts,
        w.RetryCall(instance, "qp.fetch", [&] {
          return w.env_->s3().BatchGet(instance, w.config_.data_bucket,
                                       to_fetch,
                                       instance.parallel_streams());
        }));
    docs.reserve(texts.size());
    double parse_work = 0;
    for (size_t i = 0; i < texts.size(); ++i) {
      // Parse CPU is charged in virtual time for every query, as the
      // real system re-parses every fetched document; the host-side DOM
      // cache below only avoids redundant *host* CPU when the same
      // immutable document is fetched by several simulated queries.
      parse_work += work.parse_per_byte * static_cast<double>(texts[i].size());
      if (auto cached = w.doc_cache_.Get(to_fetch[i]); cached != nullptr) {
        docs.push_back(std::move(cached));
        continue;
      }
      WEBDEX_ASSIGN_OR_RETURN(xml::Document doc,
                              xml::ParseDocument(to_fetch[i], texts[i]));
      auto shared = std::make_shared<const xml::Document>(std::move(doc));
      w.doc_cache_.Put(to_fetch[i], shared);
      docs.push_back(std::move(shared));
    }
    instance.ChargeParallelWork(parse_work);
  }
  fetch_span.End();
  cloud::MeteredSpan eval_span(&w.env_->tracer(), &w.env_->meter(),
                               instance, "eval");
  std::vector<const xml::Document*> doc_ptrs;
  doc_ptrs.reserve(docs.size());
  for (const auto& doc : docs) doc_ptrs.push_back(doc.get());
  (void)query::Evaluator::ConsumeWorkStats();
  outcome->result = query::Evaluator::Evaluate(logical.query(), doc_ptrs);
  // The evaluator's work counters are thread_local; they are only
  // visible — and chargeable — on the thread that evaluated.  If this
  // assertion fires, evaluation ran on a different thread than the one
  // consuming its stats (see the contract in query/evaluator.h).
  assert(query::Evaluator::HasPendingWorkStats());
  const auto eval_stats = query::Evaluator::ConsumeWorkStats();
  instance.ChargeParallelWork(
      work.eval_per_byte * static_cast<double>(eval_stats.doc_bytes_scanned) +
      work.result_per_byte * static_cast<double>(eval_stats.result_bytes));
  eval_span.End();

  w.MaybeRenewLease(instance, w.config_.query_queue, receipt, lease_anchor);

  // Store the results in the file store (step 14).
  cloud::MeteredSpan store_span(&w.env_->tracer(), &w.env_->meter(),
                                instance, "store");
  std::string result_xml = outcome->result.ToXml();
  instance.ChargeParallelWork(work.result_per_byte *
                              static_cast<double>(result_xml.size()));
  const std::string result_key =
      StrFormat("result-%llu.xml", static_cast<unsigned long long>(request.id));
  WEBDEX_RETURN_IF_ERROR(w.RetryCall(instance, "qp.store", [&] {
    return w.env_->s3().Put(instance, w.config_.results_bucket, result_key,
                            result_xml);
  }));
  store_span.End();
  outcome->timings.transfer_eval = instance.now() - eval_start;
  outcome->timings.total = instance.now() - task_start;

  // Metered reality next to the estimate: what this task actually cost
  // (requests + capacity billed during the task, plus its share of rented
  // VM time), for the estimated-vs-actual columns of the reports.
  const cloud::Usage task_delta = w.env_->meter().Snapshot() - task_before;
  const cloud::Bill task_bill = w.env_->meter().ComputeBill(task_delta);
  const double vm_usd =
      w.env_->meter().pricing().VmHour(w.config_.instance_type) *
      static_cast<double>(outcome->timings.total) / 3600e6;
  outcome->actual_cost_usd = task_bill.total() + vm_usd;
  outcome->actual_requests = static_cast<double>(
      task_delta.s3_get_requests + task_delta.s3_put_requests +
      task_delta.ddb_get_requests + task_delta.sdb_get_requests);

  // Engine-level metrics for this task, plus the planner's report card:
  // the actual/estimated cost ratio (1.0 = a perfect estimate), recorded
  // only when the estimate was exercised as priced (planner on, not
  // degraded mid-flight).
  common::MetricRegistry& registry = w.env_->metrics();
  registry.GetCounter("engine.query.count")->Add(1);
  if (outcome->degraded) {
    registry.GetCounter("engine.query.degraded.count")->Add(1);
  }
  registry.GetHistogram("engine.query.latency_us")
      ->Record(static_cast<double>(outcome->timings.total));
  if (w.config_.use_planner && w.config_.use_index && !outcome->degraded &&
      outcome->estimated_cost_usd > 0) {
    registry.GetHistogram("planner.estimate_error_ratio")
        ->Record(outcome->actual_cost_usd / outcome->estimated_cost_usd);
  }
  return Status::OK();
}

}  // namespace webdex::engine
