#ifndef WEBDEX_ENGINE_SCRUBBER_H_
#define WEBDEX_ENGINE_SCRUBBER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/cloud_env.h"
#include "cloud/kv_store.h"
#include "common/result.h"
#include "index/generation.h"
#include "index/strategy.h"

namespace webdex::engine {

/// What a scrub pass found, per document URI (docs/FAULTS.md).
struct ScrubReport {
  uint64_t documents_checked = 0;
  uint64_t items_scanned = 0;
  /// Document in the bucket, index holds none of its postings (e.g. a
  /// dead-lettered indexing task).
  std::vector<std::string> missing_uris;
  /// Document in the bucket, stored postings disagree with a fresh
  /// re-extraction (e.g. the half-written index of a mid-BatchPut crash).
  std::vector<std::string> partial_uris;
  /// Postings whose document no longer exists in the bucket.
  std::vector<std::string> orphaned_uris;
  /// Repair outcome (all zero on a report-only pass).
  uint64_t repaired_uris = 0;
  uint64_t items_put = 0;
  uint64_t items_deleted = 0;

  bool Clean() const {
    return missing_uris.empty() && partial_uris.empty() &&
           orphaned_uris.empty();
  }

  std::string ToString() const;
};

/// Walks a strategy's index tables against the document store and
/// detects the garbage a fault can leave behind — missing, half-written,
/// and orphaned postings — then optionally repairs it by idempotent
/// re-extraction of the affected URIs (deterministic per-URI UUID range
/// keys make a re-put converge byte-identically to the fault-free index;
/// see docs/PARALLELISM.md).
///
/// Every read and write is *billed*: index tables are walked with the
/// KvStore::Scan API, documents are re-fetched from S3, and repairs pay
/// BatchPut/DeleteItem — scrubbing is a priced maintenance job, not free
/// host-side tooling.
class Scrubber {
 public:
  /// `store` is the index store to audit (typically the warehouse's
  /// retrying decorator, so scrub traffic gets retries and breaker
  /// gating like any other client).
  Scrubber(cloud::CloudEnv* env, cloud::KvStore* store,
           const index::IndexingStrategy* strategy,
           const index::ExtractOptions& options, std::string data_bucket);

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// One scrub pass on `agent`'s virtual clock.  With `repair` set,
  /// re-extracts and re-puts every missing/partial URI and deletes
  /// orphaned and stale postings; repaired URIs are counted in
  /// Usage::scrub_repaired.
  ///
  /// `view` (may be null = all-static) makes the audit generation-aware
  /// (index/generation.h): a tombstoned document is skipped entirely —
  /// scrubbing must never resurrect it, and its leftovers belong to the
  /// Compactor — and an upserted document is audited at its live
  /// generation, with postings of superseded generations treated as
  /// pending history, not damage.
  Result<ScrubReport> Run(cloud::SimAgent& agent, bool repair,
                          const index::GenerationMap* view = nullptr);

 private:
  cloud::CloudEnv* env_;
  cloud::KvStore* store_;
  const index::IndexingStrategy* strategy_;
  index::ExtractOptions options_;
  std::string data_bucket_;
};

}  // namespace webdex::engine

#endif  // WEBDEX_ENGINE_SCRUBBER_H_
