#ifndef WEBDEX_ENGINE_ADMISSION_H_
#define WEBDEX_ENGINE_ADMISSION_H_

#include <map>
#include <string>
#include <vector>

#include "cloud/sim.h"
#include "cloud/trace.h"
#include "cloud/usage.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/tracer.h"

namespace webdex::engine {

/// Engine-side admission control (docs/OVERLOAD.md): token buckets plus
/// an AIMD concurrency limiter gating the query processors, and
/// throttle-keyed backpressure for the extraction pipeline.  Everything
/// runs in virtual time, so decisions are deterministic and identical
/// for every host_threads value.
struct AdmissionConfig {
  /// Master switch.  false (default) admits everything untouched, so
  /// existing runs stay bit-identical.
  bool enabled = false;

  /// Global query token bucket: sustained queries/second and burst
  /// capacity.  rate <= 0 disables the global bucket.
  double global_rate = 0;
  double global_burst = 4;

  /// Per-tenant buckets (fairness): each distinct QueryRequest::tenant
  /// gets its own bucket, so one hot tenant exhausts its own tokens
  /// while cold tenants keep being admitted.  rate <= 0 disables.
  /// Untagged queries share the "" tenant.
  double per_tenant_rate = 0;
  double per_tenant_burst = 2;

  /// AIMD concurrency limiter over queries in flight (by virtual-time
  /// interval overlap).  The limit starts at `initial_concurrency`,
  /// grows by one per cleanly admitted query, and multiplies by
  /// `decrease_factor` whenever an admitted query observed an organic
  /// throttle — the classic additive-increase / multiplicative-decrease
  /// response to congestion.  initial <= 0 disables the limiter.
  int initial_concurrency = 0;
  int min_concurrency = 1;
  int max_concurrency = 64;
  double decrease_factor = 0.5;

  /// Per-query virtual-time deadline budget: how long a query may wait
  /// (deferred on bucket refills / slot frees) before it is shed with
  /// kOverloaded instead.  <= 0 sheds immediately when any gate is
  /// closed — pure load shedding, no queueing.
  cloud::Micros deadline_micros = 2'000'000;

  /// Extraction-pipeline backpressure: when the loader queue holds at
  /// least this many messages AND the cloud reported new organic
  /// throttles since the last poll, indexer polls defer by
  /// `backpressure_pause` instead of piling more writes onto a store
  /// that is already shedding.  0 disables.
  uint64_t backpressure_queue_depth = 0;
  cloud::Micros backpressure_pause = 200'000;
};

/// What the controller decided for one query.
struct AdmissionDecision {
  bool admitted = true;
  /// Virtual time the query waited in the admission gate before being
  /// admitted (0 when it sailed through or was shed).
  cloud::Micros waited = 0;
  /// kOverloaded when shed; OK when admitted.
  Status status = Status::OK();
};

/// Gates query tasks (and paces indexer polls) for one Warehouse.  All
/// methods run on the deterministic event loop; per-instance calls are
/// serialized by the cluster's smallest-clock-first schedule, so the
/// bucket levels and the in-flight table evolve identically across
/// host_threads settings.
class AdmissionController {
 public:
  /// `meter` bills Usage::shed_queries; `metrics` / `tracer` may be null.
  AdmissionController(const AdmissionConfig& config, cloud::UsageMeter* meter,
                      common::MetricRegistry* metrics = nullptr,
                      common::Tracer* tracer = nullptr);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  bool enabled() const { return config_.enabled; }
  const AdmissionConfig& config() const { return config_; }

  /// Decides the fate of the query `agent` just received.  May Advance
  /// `agent`'s virtual clock (a deferred query waits for a token or a
  /// concurrency slot), never longer than the deadline budget.  On
  /// admit, the caller must pair with OnCompleted() when the query
  /// finishes so the in-flight table and the AIMD limit stay truthful.
  AdmissionDecision Admit(cloud::SimAgent& agent, const std::string& tenant,
                          uint64_t query_id);

  /// Reports an admitted query's virtual-time interval and whether it
  /// observed an organic throttle while running.  Throttle-free queries
  /// grow the AIMD limit by one; throttled ones multiply it down.
  void OnCompleted(cloud::Micros start, cloud::Micros end, bool saw_throttle);

  /// Extraction-pipeline backpressure: returns how long an indexer poll
  /// at `now` should defer, or 0 to proceed.  Keyed on the loader-queue
  /// depth and the cloud-wide organic-throttle counter: depth alone is
  /// healthy (that is what the queue is for); depth plus fresh
  /// throttles means the store is shedding and the fleet should pace.
  cloud::Micros IndexerBackoff(cloud::Micros now, uint64_t queue_depth,
                               uint64_t throttled_total);

  int concurrency_limit() const { return concurrency_limit_; }
  int InFlightAt(cloud::Micros now) const;

 private:
  /// Virtual-time token bucket.  Probe() refills to `now` and returns 0
  /// when a token is available (without consuming it) or the wait until
  /// one would be; Commit() consumes after a successful probe.
  class TokenBucket {
   public:
    TokenBucket(double rate_per_second, double burst);
    cloud::Micros Probe(cloud::Micros now);
    void Commit();
    bool active() const { return rate_ > 0; }

   private:
    double rate_;   // tokens per microsecond
    double burst_;
    double level_;
    cloud::Micros last_ = 0;
  };

  /// Wait until any admission gate opens for `tenant` at `now`; 0 means
  /// every gate is open *and* the bucket tokens have been consumed.
  cloud::Micros GateWait(cloud::Micros now, const std::string& tenant);

  /// Drops completed intervals that ended at or before `now`.
  void Prune(cloud::Micros now);

  TokenBucket& TenantBucket(const std::string& tenant);

  AdmissionConfig config_;
  cloud::UsageMeter* meter_;
  common::MetricRegistry* metrics_;
  common::Tracer* tracer_;
  common::Counter* admitted_metric_ = nullptr;
  common::Counter* shed_metric_ = nullptr;
  common::Counter* deferred_metric_ = nullptr;
  common::Counter* backpressure_metric_ = nullptr;
  common::Gauge* limit_gauge_ = nullptr;

  TokenBucket global_bucket_;
  std::map<std::string, TokenBucket> tenant_buckets_;

  /// Admitted query intervals still overlapping the present (unordered;
  /// pruned lazily); in-flight at t = intervals with end > t.
  std::vector<std::pair<cloud::Micros, cloud::Micros>> in_flight_;
  int concurrency_limit_ = 0;

  /// Last organic-throttle total the indexer backpressure check saw.
  uint64_t last_throttled_seen_ = 0;
};

}  // namespace webdex::engine

#endif  // WEBDEX_ENGINE_ADMISSION_H_
