#include "engine/query_planner.h"

#include <cinttypes>
#include <cstdio>
#include <limits>
#include <sstream>
#include <utility>

namespace webdex::engine {

namespace {

std::string Usd(double usd) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "$%.8f", usd);
  return buf;
}

}  // namespace

const char* PlannerForceName(PlannerForce force) {
  switch (force) {
    case PlannerForce::kAuto:
      return "auto";
    case PlannerForce::kLup:
      return "force-lup";
    case PlannerForce::kLui:
      return "force-lui";
  }
  return "?";
}

double PhysicalPlan::EstimatedUsd() const {
  double usd = 0;
  for (const auto& pattern : patterns) {
    if (pattern.chosen >= 0) usd += pattern.chosen_path().estimate.usd;
  }
  return usd;
}

double PhysicalPlan::EstimatedRequests() const {
  double requests = 0;
  for (const auto& pattern : patterns) {
    if (pattern.chosen >= 0) requests += pattern.chosen_path().estimate.requests();
  }
  return requests;
}

std::string PhysicalPlan::ChosenDescription() const {
  std::string description;
  for (const auto& pattern : patterns) {
    if (!description.empty()) description += "+";
    description +=
        pattern.chosen >= 0 ? pattern.chosen_path().path->name() : "?";
  }
  return description;
}

std::string PhysicalPlan::ToString() const {
  std::ostringstream out;
  out << "physical: strategy " << strategy << ", planner "
      << PlannerForceName(force);
  if (planner_fallbacks > 0) {
    out << ", " << planner_fallbacks << " fallback(s) to scan";
  }
  out << "\n";
  for (const auto& pattern : patterns) {
    out << "  pattern " << pattern.pattern + 1 << ": chose "
        << (pattern.chosen >= 0 ? pattern.chosen_path().path->name() : "?")
        << "\n";
    for (size_t i = 0; i < pattern.paths.size(); ++i) {
      const PlannedPath& candidate = pattern.paths[i];
      const cost::PathEstimate& est = candidate.estimate;
      char line[160];
      std::snprintf(line, sizeof(line),
                    "    %-10s est %s  keys %.0f  index-req %.0f  docs %.0f"
                    "  requests %.0f",
                    candidate.path->name().c_str(), Usd(est.usd).c_str(),
                    est.index_keys, est.index_requests, est.docs,
                    est.requests());
      out << line;
      if (static_cast<int>(i) == pattern.chosen) {
        out << "  [chosen]";
      } else if (!candidate.note.empty()) {
        out << "  (" << candidate.note << ")";
      }
      out << "\n";
    }
  }
  out << "  estimated total: " << Usd(EstimatedUsd()) << ", "
      << EstimatedRequests() << " requests\n";
  return out.str();
}

std::vector<PlannedPath> QueryPlanner::CandidatesFor(
    const query::TreePattern& pattern) const {
  std::vector<PlannedPath> candidates;
  if (!context_.use_index) return candidates;
  auto add = [&](std::unique_ptr<AccessPath> path) {
    PlannedPath planned;
    planned.path = std::move(path);
    candidates.push_back(std::move(planned));
  };
  switch (context_.strategy) {
    case index::StrategyKind::kLU:
      add(std::make_unique<LuAccessPath>("LU", context_.store, "idx-lu",
                                         &pattern, context_.options,
                                         context_.stats));
      break;
    case index::StrategyKind::kLUP:
      add(std::make_unique<LupAccessPath>("LUP", context_.store, "idx-lup",
                                          &pattern, context_.options,
                                          context_.stats));
      break;
    case index::StrategyKind::kLUI:
      add(std::make_unique<LuiAccessPath>("LUI", context_.store, "idx-lui",
                                          &pattern, context_.options,
                                          context_.stats));
      break;
    case index::StrategyKind::k2LUPI:
      // Both materialized tables are first-class alternatives; the cost
      // model decides per pattern which one runs (the other is never
      // billed).  This replaces the fixed Figure 5 semijoin pipeline of
      // the planner-off engine.
      add(std::make_unique<LupAccessPath>("2LUPI/lup", context_.store,
                                          "idx-2lupi-paths", &pattern,
                                          context_.options, context_.stats));
      add(std::make_unique<LuiAccessPath>("2LUPI/lui", context_.store,
                                          "idx-2lupi-ids", &pattern,
                                          context_.options, context_.stats));
      if (context_.force == PlannerForce::kLup) {
        candidates[1].viable = false;
        candidates[1].note = "disabled by force-lup";
      } else if (context_.force == PlannerForce::kLui) {
        candidates[0].viable = false;
        candidates[0].note = "disabled by force-lui";
      }
      break;
  }
  return candidates;
}

PhysicalPlan QueryPlanner::Plan(const query::LogicalPlan& logical,
                                const cost::CostModel& model,
                                cloud::Micros now) const {
  PhysicalPlan plan;
  plan.strategy = index::StrategyKindName(context_.strategy);
  plan.force = context_.force;
  const auto& patterns = logical.query().patterns();
  for (size_t p = 0; p < patterns.size(); ++p) {
    PatternPlan pattern_plan;
    pattern_plan.pattern = static_cast<int>(p);
    pattern_plan.paths = CandidatesFor(patterns[p]);
    const bool had_lookup_candidates = !pattern_plan.paths.empty();

    // Breaker health gates viability: a look-up against a browned-out
    // table would only burn retries before falling back anyway.  Breakers
    // track *physical* tables, so a sharded deployment checks every
    // shard backing the path's logical table — one browned-out shard
    // sinks the whole fan-out.
    for (PlannedPath& candidate : pattern_plan.paths) {
      if (!candidate.viable || context_.breaker == nullptr) continue;
      const std::vector<std::string> physical =
          context_.stats.deployment != nullptr
              ? context_.stats.deployment->PhysicalTables(
                    candidate.path->table())
              : std::vector<std::string>{candidate.path->table()};
      for (const std::string& table : physical) {
        if (!context_.breaker->WouldAllow(table, now)) {
          candidate.viable = false;
          candidate.note = "breaker open on " + table;
          break;
        }
      }
    }

    // The scan path is always present and always viable — the degraded
    // fallback of docs/FAULTS.md, now just the path of last resort.
    {
      PlannedPath scan;
      scan.path = std::make_unique<ScanAccessPath>(context_.document_uris,
                                                   context_.stats);
      pattern_plan.paths.push_back(std::move(scan));
    }

    for (PlannedPath& candidate : pattern_plan.paths) {
      candidate.estimate = candidate.path->EstimateCost(model);
    }

    // Cheapest viable look-up wins; the scan is chosen only when no
    // look-up is healthy (Table 5 semantics: a healthy index is always
    // preferred over re-shipping the corpus).
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i + 1 < pattern_plan.paths.size(); ++i) {
      PlannedPath& candidate = pattern_plan.paths[i];
      if (!candidate.viable) continue;
      if (candidate.estimate.usd < best) {
        best = candidate.estimate.usd;
        pattern_plan.chosen = static_cast<int>(i);
      }
    }
    if (pattern_plan.chosen < 0) {
      pattern_plan.chosen = static_cast<int>(pattern_plan.paths.size()) - 1;
      if (had_lookup_candidates) ++plan.planner_fallbacks;
    } else {
      pattern_plan.paths.back().note = "fallback only";
    }
    for (size_t i = 0; i + 1 < pattern_plan.paths.size(); ++i) {
      PlannedPath& candidate = pattern_plan.paths[i];
      if (static_cast<int>(i) != pattern_plan.chosen && candidate.viable &&
          candidate.note.empty()) {
        candidate.note = "rejected: costlier";
      }
    }
    plan.patterns.push_back(std::move(pattern_plan));
  }
  return plan;
}

}  // namespace webdex::engine
