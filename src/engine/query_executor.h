#ifndef WEBDEX_ENGINE_QUERY_EXECUTOR_H_
#define WEBDEX_ENGINE_QUERY_EXECUTOR_H_

#include <vector>

#include "cloud/instance.h"
#include "common/status.h"
#include "engine/warehouse.h"
#include "query/logical_plan.h"

namespace webdex::engine {

/// The execution layer of the query engine (docs/PLANNER.md): runs one
/// query task end to end on a simulated instance — parse to LogicalPlan,
/// plan to PhysicalPlan (or the legacy fixed-strategy look-up when the
/// planner is off), execute the chosen access paths, fetch + evaluate the
/// candidate documents, store the result.
///
/// Extracted from Warehouse::ProcessQuery; it operates on the warehouse's
/// private state (stores, caches, retry streams) as a friend, so the
/// observable behaviour of the planner-off path is byte-identical to the
/// pre-refactor engine.
class QueryExecutor {
 public:
  explicit QueryExecutor(Warehouse* warehouse) : warehouse_(warehouse) {}

  /// Body of one query task, after the message has been received.
  /// `receipt`/`lease_anchor` let long phases renew the message lease.
  Status Run(cloud::Instance& instance, const QueryRequest& request,
             uint64_t receipt, cloud::Micros* lease_anchor,
             QueryOutcome* outcome);

 private:
  /// Planner-off look-up: the deployed strategy's fixed pipeline, with
  /// retriable failure degrading to a full scan (pre-planner semantics,
  /// preserved verbatim for the on/off equivalence tests).
  Status LookupLegacy(cloud::Instance& instance,
                      const query::LogicalPlan& logical,
                      std::vector<std::string>* to_fetch,
                      QueryOutcome* outcome);

  /// Planner-on look-up: cost-based access-path choice per pattern, with
  /// the scan path as both the breaker-blocked and the runtime fallback.
  Status LookupPlanned(cloud::Instance& instance,
                       const query::LogicalPlan& logical,
                       std::vector<std::string>* to_fetch,
                       QueryOutcome* outcome);

  Warehouse* warehouse_;
};

}  // namespace webdex::engine

#endif  // WEBDEX_ENGINE_QUERY_EXECUTOR_H_
