#include "engine/extraction_pipeline.h"

#include "common/rng.h"
#include "xml/parser.h"

namespace webdex::engine {

ExtractionPipeline::ExtractionPipeline(common::ThreadPool* pool,
                                       const index::IndexingStrategy* strategy,
                                       const index::ExtractOptions& options,
                                       const cloud::KvStore* store,
                                       const cloud::ObjectStore* s3,
                                       std::string bucket, uint64_t base_seed)
    : pool_(pool),
      strategy_(strategy),
      options_(options),
      store_(store),
      s3_(s3),
      bucket_(std::move(bucket)),
      base_seed_(base_seed) {}

ExtractionResult ExtractionPipeline::ExtractNow(
    const std::string& uri, const std::string& xml_text,
    const index::IndexingStrategy& strategy,
    const index::ExtractOptions& options, const cloud::KvStore& store,
    uint64_t base_seed) {
  ExtractionResult out;
  auto doc = xml::ParseDocument(uri, xml_text);
  if (!doc.ok()) {
    out.status = doc.status();
    return out;
  }
  out.doc = std::make_shared<const xml::Document>(std::move(doc).value());
  // Upsert re-extractions draw from a generation-suffixed UUID stream so
  // a document's successive versions never collide on range keys; the
  // static corpus (generation 0) keeps the original per-URI stream and
  // stays byte-identical.
  Rng uuid_rng =
      options.generation > 0
          ? Rng::ForKey(base_seed,
                        uri + "@" + std::to_string(options.generation))
          : Rng::ForKey(base_seed, uri);
  // Kept on the result: the planner's PathSummary consumes it directly
  // once the warehouse commits the task, without re-extracting
  // (docs/PLANNER.md).
  out.doc_index = index::ExtractDocIndex(*out.doc, options);
  auto extracted = strategy.ExtractItems(*out.doc, out.doc_index, options,
                                         store, uuid_rng, &out.stats);
  if (!extracted.ok()) {
    out.status = extracted.status();
    return out;
  }
  out.items = std::move(extracted).value();
  return out;
}

namespace {

// Memo key for one (uri, generation) extraction; generation 0 keeps the
// bare URI so static-corpus behavior is unchanged.
std::string TaskKey(const std::string& uri, uint64_t generation) {
  return generation > 0 ? uri + "@" + std::to_string(generation) : uri;
}

}  // namespace

void ExtractionPipeline::Prefetch(const std::string& uri,
                                  uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = TaskKey(uri, generation);
  if (tasks_.count(key) > 0) return;
  tasks_.emplace(
      key,
      pool_->Submit([this, uri,
                     generation]() -> std::shared_ptr<const ExtractionResult> {
        const std::string* text = s3_->PeekObject(bucket_, uri);
        if (text == nullptr) {
          auto missing = std::make_shared<ExtractionResult>();
          missing->status = Status::NotFound("no such object: " + uri);
          return missing;
        }
        index::ExtractOptions options = options_;
        options.generation = generation;
        return std::make_shared<const ExtractionResult>(ExtractNow(
            uri, *text, *strategy_, options, *store_, base_seed_));
      }).share());
}

std::shared_ptr<const ExtractionResult> ExtractionPipeline::Take(
    const std::string& uri, uint64_t generation) {
  std::shared_future<std::shared_ptr<const ExtractionResult>> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tasks_.find(TaskKey(uri, generation));
    if (it == tasks_.end()) return nullptr;
    task = it->second;
  }
  return task.get();
}

}  // namespace webdex::engine
