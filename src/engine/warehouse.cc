#include "engine/warehouse.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "engine/query_executor.h"
#include "index/intern.h"
#include "query/parser.h"
#include "xml/parser.h"

namespace webdex::engine {

using cloud::Instance;
using cloud::Micros;
using cloud::WorkerStep;

namespace {

/// How a delivered task ended: acknowledged after success (kOk), left in
/// flight for redelivery after an unabsorbed transient failure (kAbandon),
/// or acknowledged without effect because it can never succeed (kPoison).
enum class TaskOutcome { kOk, kAbandon, kPoison };

}  // namespace

Warehouse::Warehouse(cloud::CloudEnv* env, const WarehouseConfig& config)
    : env_(env),
      config_(config),
      admission_(config.admission, &env->meter(), &env->metrics(),
                 &env->tracer()),
      strategy_(index::IndexingStrategy::Create(config.strategy)),
      cost_model_(env->meter().pricing()),
      retrying_store_(std::make_unique<cloud::RetryingKvStore>(
          config.backend == IndexBackend::kSimpleDb
              ? static_cast<cloud::KvStore*>(&env->simpledb())
              : &env->dynamodb(),
          config.retry, env->config().seed, &env->meter(),
          &env->breaker(), &env->metrics(), &env->tracer())),
      cluster_(config.num_instances, config.instance_type,
               &env->config().work) {
  // Deployment decorators (docs/ARCHITECTURES.md), constructed only when
  // the architecture asks for them so the default deployment's stack —
  // and with it every byte of its runs — is unchanged.
  cloud::Deployment& deployment = env->deployment();
  cloud::KvStore* top = retrying_store_.get();
  if (deployment.replicated()) {
    replicated_store_ = std::make_unique<cloud::ReplicatedKvStore>(
        top, &deployment, &env->meter(), &env->metrics(), &env->tracer());
    top = replicated_store_.get();
  }
  if (deployment.sharded()) {
    sharded_store_ = std::make_unique<cloud::ShardedKvStore>(
        top, &deployment, &env->meter(), &env->metrics(), &env->tracer());
  }
}

cloud::KvStore& Warehouse::index_store() {
  if (sharded_store_ != nullptr) return *sharded_store_;
  if (replicated_store_ != nullptr) return *replicated_store_;
  return *retrying_store_;
}

bool Warehouse::ShouldCrash(cloud::CrashPoint point, int instance_id,
                            const std::string& task_key) {
  if (config_.crash_plan && config_.crash_plan(point, instance_id, task_key)) {
    return true;
  }
  return env_->fault_injector().ShouldCrash(point, task_key);
}

Status Warehouse::Setup() {
  WEBDEX_RETURN_IF_ERROR(env_->s3().CreateBucket(config_.data_bucket));
  WEBDEX_RETURN_IF_ERROR(env_->s3().CreateBucket(config_.results_bucket));
  WEBDEX_RETURN_IF_ERROR(env_->sqs().CreateQueue(config_.loader_queue));
  WEBDEX_RETURN_IF_ERROR(env_->sqs().CreateQueue(config_.query_queue));
  WEBDEX_RETURN_IF_ERROR(env_->sqs().CreateQueue(config_.response_queue));
  if (!config_.dead_letter_queue.empty()) {
    WEBDEX_RETURN_IF_ERROR(env_->sqs().CreateQueue(config_.dead_letter_queue));
  }
  if (config_.use_index) {
    for (const auto& table : strategy_->TableNames()) {
      WEBDEX_RETURN_IF_ERROR(index_store().CreateTable(front_end_, table));
    }
    // Mutation meta table (index/generation.h).  Stays empty until the
    // first upsert/delete, so static-corpus dumps are byte-unchanged.
    WEBDEX_RETURN_IF_ERROR(
        index_store().CreateTable(front_end_, index::kMetaTable));
  }
  return Status::OK();
}

void Warehouse::AdoptExistingData(const Warehouse& other) {
  document_uris_ = other.document_uris_;
  registered_uris_ = other.registered_uris_;
  data_bytes_ = other.data_bytes_;
  next_query_id_ = other.next_query_id_;
  // The planner statistics travel with the data: the new fleet prices
  // access paths against the same corpus the old fleet indexed.
  path_summary_ = other.path_summary_;
  summarized_uris_ = other.summarized_uris_;
  {
    std::lock_guard<std::mutex> lock(generations_mu_);
    generations_ = other.GenerationSnapshot();
  }
  front_end_.AdvanceTo(other.front_end_.now());
}

Status Warehouse::AttachToExistingCloud() {
  // Buckets this facade needs but the snapshot may lack (e.g. a results
  // bucket that never held an object).
  for (const auto& bucket : {config_.data_bucket, config_.results_bucket}) {
    const Status created = env_->s3().CreateBucket(bucket);
    if (!created.ok() && !created.IsAlreadyExists()) return created;
  }
  WEBDEX_ASSIGN_OR_RETURN(
      std::vector<std::string> uris,
      env_->s3().List(front_end_, config_.data_bucket, ""));
  document_uris_ = std::move(uris);
  registered_uris_ =
      std::set<std::string>(document_uris_.begin(), document_uris_.end());
  data_bytes_ = env_->s3().BucketBytes(config_.data_bucket);
  if (config_.use_index) {
    auto& store = index_store();
    if (store.HasTable(index::kMetaTable)) {
      // Rebuild the generation view from the durable meta table (billed
      // scan).  A delete whose task died after the tombstone but before
      // the S3 unlink leaves the object listed above — drop such URIs
      // from the registry so a restored facade never resurrects them.
      WEBDEX_ASSIGN_OR_RETURN(std::vector<cloud::Item> rows,
                              store.Scan(front_end_, index::kMetaTable));
      auto rebuilt = std::make_shared<index::GenerationMap>();
      for (const auto& row : rows) index::ApplyMetaItem(row, rebuilt.get());
      std::vector<std::string> dead;
      for (const auto& [uri, info] : rebuilt->entries()) {
        if (info.tombstoned) dead.push_back(uri);
      }
      for (const auto& uri : dead) UnregisterDocument(uri);
      std::lock_guard<std::mutex> lock(generations_mu_);
      generations_ = std::move(rebuilt);
    } else {
      // Pre-mutability snapshot: create the meta table so mutations work.
      const Status created = store.CreateTable(front_end_, index::kMetaTable);
      if (!created.ok() && !created.IsAlreadyExists()) return created;
    }
  }
  // Queues are ephemeral (not part of snapshots): create them if absent.
  for (const auto& queue : {config_.loader_queue, config_.query_queue,
                            config_.response_queue,
                            config_.dead_letter_queue}) {
    if (queue.empty()) continue;
    const Status created = env_->sqs().CreateQueue(queue);
    if (!created.ok() && !created.IsAlreadyExists()) return created;
  }
  return Status::OK();
}

Status Warehouse::SubmitDocument(const std::string& uri,
                                 std::string xml_text) {
  if (config_.use_index && registered_uris_.count(uri) > 0) {
    // Re-submission replaces the document; only the generation machinery
    // keeps readers consistent through that, so route through it.
    return UpsertDocument(uri, std::move(xml_text));
  }
  data_bytes_ += xml_text.size();
  WEBDEX_RETURN_IF_ERROR(
      RetryCall(front_end_, "fe.put", [&] {
        return env_->s3().Put(front_end_, config_.data_bucket, uri, xml_text);
      }));
  document_uris_.push_back(uri);
  registered_uris_.insert(uri);
  if (config_.use_index) {
    LoadRequest request{uri};
    WEBDEX_RETURN_IF_ERROR(RetryCall(front_end_, "fe.load", [&] {
      return env_->sqs().Send(front_end_, config_.loader_queue,
                              request.Serialize());
    }));
  }
  return Status::OK();
}

Status Warehouse::UpsertDocument(const std::string& uri,
                                 std::string xml_text) {
  if (!config_.use_index) {
    return Status::FailedPrecondition(
        "document mutation requires an indexed warehouse");
  }
  WEBDEX_RETURN_IF_ERROR(
      RetryCall(front_end_, "fe.put", [&] {
        return env_->s3().Put(front_end_, config_.data_bucket, uri, xml_text);
      }));
  // Replacement may shrink or grow the stored object; re-read the
  // bucket's authoritative size instead of accumulating deltas.
  data_bytes_ = env_->s3().BucketBytes(config_.data_bucket);
  if (registered_uris_.insert(uri).second) document_uris_.push_back(uri);
  LoadRequest request{uri};
  request.op = LoadOp::kUpsert;
  request.generation = AllocateGeneration();
  WEBDEX_RETURN_IF_ERROR(RetryCall(front_end_, "fe.load", [&] {
    return env_->sqs().Send(front_end_, config_.loader_queue,
                            request.Serialize());
  }));
  return Status::OK();
}

Status Warehouse::DeleteDocument(const std::string& uri) {
  if (!config_.use_index) {
    return Status::FailedPrecondition(
        "document mutation requires an indexed warehouse");
  }
  if (registered_uris_.count(uri) == 0) {
    return Status::NotFound("no such document: " + uri);
  }
  LoadRequest request{uri};
  request.op = LoadOp::kDelete;
  request.generation = AllocateGeneration();
  WEBDEX_RETURN_IF_ERROR(RetryCall(front_end_, "fe.load", [&] {
    return env_->sqs().Send(front_end_, config_.loader_queue,
                            request.Serialize());
  }));
  return Status::OK();
}

uint64_t Warehouse::AllocateGeneration() {
  return ++env_->maintenance().generation_watermark;
}

std::shared_ptr<const index::GenerationMap> Warehouse::GenerationSnapshot()
    const {
  std::lock_guard<std::mutex> lock(generations_mu_);
  return generations_;
}

void Warehouse::CommitGeneration(const std::string& uri, uint64_t generation,
                                 bool tombstoned) {
  std::lock_guard<std::mutex> lock(generations_mu_);
  auto next = std::make_shared<index::GenerationMap>(*generations_);
  next->Apply(uri, generation, tombstoned);
  generations_ = std::move(next);
}

void Warehouse::EraseGeneration(const std::string& uri) {
  std::lock_guard<std::mutex> lock(generations_mu_);
  auto next = std::make_shared<index::GenerationMap>(*generations_);
  next->Erase(uri);
  generations_ = std::move(next);
}

void Warehouse::UnregisterDocument(const std::string& uri) {
  if (registered_uris_.erase(uri) == 0) return;
  document_uris_.erase(
      std::remove(document_uris_.begin(), document_uris_.end(), uri),
      document_uris_.end());
}

WorkerStep Warehouse::IndexerStep(Instance& instance,
                                  ExtractionPipeline* pipeline,
                                  IndexingRunReport* report) {
  auto& sqs = env_->sqs();
  // Extraction-pipeline backpressure (docs/OVERLOAD.md): a deep loader
  // queue plus fresh organic throttles means the index store is already
  // shedding — defer this poll so in-flight retries pace out instead of
  // piling more writes on.
  const Micros backoff = admission_.IndexerBackoff(
      instance.now(), sqs.Count(config_.loader_queue),
      env_->meter().usage().throttled_requests);
  if (backoff > 0) {
    WorkerStep step;
    step.processed = false;
    step.retry_at = instance.now() + backoff;
    return step;
  }
  auto received = sqs.Receive(instance, config_.loader_queue);
  if (!received.ok() || !received.value().has_value()) {
    WorkerStep step;
    step.processed = false;
    if (!sqs.Drained(config_.loader_queue)) {
      auto next = sqs.NextDeliverableAt(config_.loader_queue);
      step.retry_at = next.has_value() ? *next : -1;
    }
    return step;
  }
  const cloud::ReceivedMessage& msg = **received;
  // One span per delivered indexing task (redeliveries are separate
  // spans: each one bills its own requests and VM time).
  cloud::MeteredSpan task_span(&env_->tracer(), &env_->meter(), instance,
                               "index.task");
  task_span.AddAttr("delivery", msg.delivery_count);
  if (msg.delivery_count > 1) report->redeliveries += 1;
  if (config_.max_deliveries > 0 &&
      msg.delivery_count > config_.max_deliveries) {
    // Dead-letter: a task that keeps coming back is dropped so one poison
    // message cannot wedge the fleet forever.  The message is parked on
    // the dead-letter queue (tagged with its origin) for later
    // inspection or re-drive (DrainDeadLetters).
    env_->meter().mutable_usage().dead_lettered += 1;
    report->dead_lettered += 1;
    if (!config_.dead_letter_queue.empty()) {
      (void)RetryCall(instance, "ix.dlq", [&] {
        return sqs.Send(instance, config_.dead_letter_queue,
                        config_.loader_queue + "\n" + msg.body);
      });
    }
    (void)sqs.Delete(instance, config_.loader_queue, msg.receipt);
    WorkerStep step;
    step.processed = true;
    return step;
  }
  Micros lease_anchor = instance.now();

  // Phase 1: fetch, parse, extract ("extraction time" in Table 4).  The
  // simulated fetch (billed, latency-charged) always happens here on the
  // event loop; the host CPU of parse + extract may already have been
  // spent by the pipeline, in which case its memoized result is charged
  // to this instance's virtual clock exactly as if computed inline.
  const Micros extract_start = instance.now();
  cloud::MeteredSpan extract_span(&env_->tracer(), &env_->meter(), instance,
                                  "extract");
  auto request = LoadRequest::Parse(msg.body);
  // A malformed message is deleted rather than redelivered forever;
  // a transiently failing one is abandoned so its lease expires and the
  // task is redone (docs/FAULTS.md).
  TaskOutcome outcome = request.ok() ? TaskOutcome::kOk : TaskOutcome::kPoison;
  // Deletes skip the extract and upload phases entirely: the work is a
  // tombstone meta row plus an object unlink (docs/MUTABILITY.md).
  const bool is_delete =
      request.ok() && request.value().op == LoadOp::kDelete;
  std::shared_ptr<const ExtractionResult> extraction;
  if (outcome == TaskOutcome::kOk && !is_delete) {
    auto text = RetryCall(instance, "ix.fetch", [&] {
      return env_->s3().Get(instance, config_.data_bucket,
                            request.value().uri);
    });
    if (!text.ok()) {
      outcome = text.status().IsRetriable() ? TaskOutcome::kAbandon
                                            : TaskOutcome::kPoison;
    } else {
      const std::string& xml_text = text.value();
      const auto& work = instance.work();
      // Parsing and entry extraction are multi-threaded inside one
      // instance (Section 3, intra-machine parallelism).
      instance.ChargeParallelWork(work.parse_per_byte *
                                  static_cast<double>(xml_text.size()));
      if (pipeline != nullptr) {
        extraction = pipeline->Take(request.value().uri,
                                    request.value().generation);
      }
      if (extraction == nullptr || extraction->status.IsNotFound()) {
        // Not prefetched (or the speculative read missed the object):
        // run the identical extraction inline on this thread.  Upserts
        // extract at their allocated generation so the new postings are
        // stamped and drawn from the generation's own UUID stream.
        index::ExtractOptions options = config_.extract;
        options.generation = request.value().generation;
        extraction = std::make_shared<const ExtractionResult>(
            ExtractionPipeline::ExtractNow(request.value().uri, xml_text,
                                           *strategy_, options,
                                           index_store(),
                                           env_->config().seed));
      }
      if (extraction->status.ok()) {
        instance.ChargeParallelWork(
            work.extract_per_entry *
                static_cast<double>(extraction->stats.entries) +
            work.extract_per_byte *
                static_cast<double>(extraction->stats.payload_bytes));
        // Share the parsed DOM with the query phase's host-side cache.
        doc_cache_.Put(request.value().uri, extraction->doc);
      } else {
        outcome = TaskOutcome::kPoison;  // malformed document
      }
    }
  }
  extract_span.End();
  report->extraction_micros += instance.now() - extract_start;
  MaybeRenewLease(instance, config_.loader_queue, msg.receipt,
                  &lease_anchor);

  // Phase 2: upload to the index store ("uploading time").
  const Micros upload_start = instance.now();
  cloud::MeteredSpan upload_span(&env_->tracer(), &env_->meter(), instance,
                                 "upload");
  bool crashed = false;
  if (outcome == TaskOutcome::kOk && !is_delete) {
    const cloud::Usage before = env_->meter().Snapshot();
    for (const auto& batch : extraction->items) {
      instance.ChargeParallelWork(
          instance.work().kv_encode_per_byte *
          static_cast<double>(extraction->stats.payload_bytes));
      const UploadResult put =
          PutItemsPaged(instance, batch.table, batch.items, msg.body);
      if (put.crashed) {
        crashed = true;
        break;
      }
      if (!put.status.ok()) {
        outcome = put.status.IsRetriable() ? TaskOutcome::kAbandon
                                           : TaskOutcome::kPoison;
        break;
      }
    }
    if (!crashed && outcome == TaskOutcome::kOk &&
        request.value().op == LoadOp::kUpsert) {
      // Once every posting page has landed, append the generation's meta
      // row — the durable record that makes the new generation the live
      // one for rebuilt readers.  Append-only: a redelivered lower
      // generation can never clobber a higher one.
      const Status put = index_store().BatchPut(
          instance, index::kMetaTable,
          {index::MakeMetaItem(request.value().uri,
                               request.value().generation,
                               /*tombstoned=*/false)});
      if (!put.ok()) {
        outcome = put.IsRetriable() ? TaskOutcome::kAbandon
                                    : TaskOutcome::kPoison;
      }
    }
    const cloud::Usage delta = env_->meter().Snapshot() - before;
    report->index_put_units += delta.ddb_write_units + delta.sdb_put_requests;
  } else if (outcome == TaskOutcome::kOk && is_delete) {
    // Tombstone only: once it is durable no reader — live or rebuilt
    // from a snapshot — can resurrect the document, wherever the task
    // dies afterwards.  The stale postings stay behind for compaction,
    // and so does the stored object: a queued revival (an UPSERT at a
    // higher generation) may already have re-put it, so reclaiming the
    // storage is the Compactor's call — made on the *folded* generation
    // state — never this task's.
    const Status put = index_store().BatchPut(
        instance, index::kMetaTable,
        {index::MakeMetaItem(request.value().uri, request.value().generation,
                             /*tombstoned=*/true)});
    if (!put.ok()) {
      outcome = put.IsRetriable() ? TaskOutcome::kAbandon
                                  : TaskOutcome::kPoison;
    }
  }
  upload_span.End();
  report->upload_micros += instance.now() - upload_start;
  MaybeRenewLease(instance, config_.loader_queue, msg.receipt,
                  &lease_anchor);

  if (crashed) {
    // Mid-upload crash: the half-written index is left as is; re-puts on
    // redelivery replace the same (hash, range) keys, so the redone task
    // converges to identical index contents.
    WorkerStep step;
    step.processed = true;
    return step;
  }

  if (outcome == TaskOutcome::kOk && is_delete) {
    // Host-side delete commit — all idempotent under redelivery.
    CommitGeneration(request.value().uri, request.value().generation,
                     /*tombstoned=*/true);
    UnregisterDocument(request.value().uri);
    doc_cache_.Erase(request.value().uri);
    env_->meter().mutable_usage().tombstones_written += 1;
    env_->metrics().GetCounter("index.tombstone.written.count")->Add(1);
  } else if (outcome == TaskOutcome::kOk) {
    report->extract_stats.entries += extraction->stats.entries;
    report->extract_stats.items += extraction->stats.items;
    report->extract_stats.payload_bytes += extraction->stats.payload_bytes;
    report->documents += 1;
    if (request.value().op == LoadOp::kUpsert) {
      // Host-side upsert commit: publish the new generation to readers.
      // The path summary is deliberately left alone — planner statistics
      // go stale under mutation, like a real system's, and are refreshed
      // by compaction-time re-adds only via a fresh facade
      // (docs/MUTABILITY.md).
      CommitGeneration(request.value().uri, request.value().generation,
                       /*tombstoned=*/false);
    } else if (summarized_uris_.insert(request.value().uri).second) {
      // Feed the planner's corpus statistics once per document: a
      // crashed task redone on redelivery must not double-count its
      // paths.
      path_summary_.AddDocument(extraction->doc_index);
    }
  }

  // Fault injection: a crash here loses the delete; the message lease
  // expires and another instance redoes the work (Section 3).
  if (ShouldCrash(cloud::CrashPoint::kBeforeDelete, instance.id(),
                  msg.body)) {
    WorkerStep step;
    step.processed = true;
    return step;
  }
  if (outcome == TaskOutcome::kAbandon) {
    // Transient failure the retry policy could not absorb: keep the
    // message in flight; its lease expires and the task is redelivered.
    WorkerStep step;
    step.processed = true;
    return step;
  }
  // Completed and malformed tasks are both acknowledged (the latter is
  // poison-pill removal).
  (void)RetryCall(instance, "ix.ack", [&] {
    return sqs.Delete(instance, config_.loader_queue, msg.receipt);
  });
  WorkerStep step;
  step.processed = true;
  return step;
}

Warehouse::UploadResult Warehouse::PutItemsPaged(
    Instance& instance, const std::string& table,
    const std::vector<cloud::Item>& items, const std::string& task_key) {
  // Paging is externalized from the store (one API call per page) so the
  // engine can crash *between* pages, leaving a half-written index that
  // the redelivered task must converge despite.  Fault-free, the billed
  // sequence is bit-identical to the store's internal paging.
  auto& store = index_store();
  const size_t limit = static_cast<size_t>(store.BatchPutLimit());
  size_t index = 0;
  while (index < items.size()) {
    const size_t end = std::min(items.size(), index + limit);
    if (index > 0 && ShouldCrash(cloud::CrashPoint::kBetweenBatchPutPages,
                                 instance.id(), task_key)) {
      return UploadResult{Status::OK(), /*crashed=*/true};
    }
    const std::vector<cloud::Item> page(items.begin() + index,
                                        items.begin() + end);
    const Status put = store.BatchPut(instance, table, page);
    if (!put.ok()) return UploadResult{put, /*crashed=*/false};
    index = end;
  }
  return UploadResult{Status::OK(), /*crashed=*/false};
}

void Warehouse::MaybeRenewLease(Instance& instance,
                                const std::string& queue, uint64_t receipt,
                                Micros* lease_anchor) {
  // The simulated tasks are atomic, so renewal happens at the tasks'
  // natural phase boundaries; a real deployment renews from a heartbeat
  // thread — the observable protocol (extra SQS requests, extended
  // visibility) is the same.  Renewing every quarter-timeout keeps a
  // comfortable safety margin for the following phase.
  const Micros timeout = env_->config().sqs.visibility_timeout;
  if (instance.now() - *lease_anchor >= timeout / 4) {
    if (env_->sqs().RenewLease(instance, queue, receipt).ok()) {
      *lease_anchor = instance.now();
    }
  }
}

int Warehouse::ResolvedHostThreads() const {
  if (config_.host_threads > 0) return config_.host_threads;
  return common::ThreadPool::HardwareThreads();
}

Result<IndexingRunReport> Warehouse::RunIndexers() {
  if (!config_.use_index) {
    return Status::FailedPrecondition(
        "warehouse configured without an index");
  }
  IndexingRunReport report;

  // Speculative host parallelism: peek the pending loader requests and
  // start fetch-parse-extract for each document on the pool now; the
  // event loop below collects the memoized results as its virtual clocks
  // reach the corresponding deliveries.  With host_threads == 1 the
  // legacy serial path runs the identical extraction inline.
  const int host_threads = ResolvedHostThreads();
  std::unique_ptr<common::ThreadPool> pool;
  std::unique_ptr<ExtractionPipeline> pipeline;
  if (host_threads > 1) {
    pool = std::make_unique<common::ThreadPool>(host_threads);
    pipeline = std::make_unique<ExtractionPipeline>(
        pool.get(), strategy_.get(), config_.extract, &index_store(),
        &env_->s3(), config_.data_bucket, env_->config().seed);
    for (const auto& body : env_->sqs().PeekBodies(config_.loader_queue)) {
      auto request = LoadRequest::Parse(body);
      if (request.ok() && request.value().op != LoadOp::kDelete) {
        pipeline->Prefetch(request.value().uri, request.value().generation);
      }
    }
  }

  // Root span of the run: its usage delta includes the fleet's rented VM
  // time billed below, so the rolled-up cost is the whole run's bill.
  cloud::MeteredSpan run_span(&env_->tracer(), &env_->meter(), front_end_,
                              "index.run");
  cluster_.SyncClocks(front_end_.now());
  report.makespan = cluster_.RunUntilDrained(
      [this, &report, &pipeline](Instance& instance) {
        return IndexerStep(instance, pipeline.get(), &report);
      },
      front_end_.now());
  // Bill the fleet's rented time.
  for (auto& inst : cluster_.instances()) {
    env_->meter().AddVmTime(config_.instance_type,
                            inst->now() - front_end_.now());
  }
  front_end_.AdvanceTo(cluster_.MaxClock());
  run_span.AddAttr("documents", static_cast<double>(report.documents));
  run_span.AddAttr("makespan_us", static_cast<double>(report.makespan));
  // Snapshot the interner after the fleet drains: pooled extraction
  // threads are joined, so this runs on the event-loop thread as the
  // MetricRegistry contract requires.
  index::PublishInternMetrics(&env_->metrics());
  return report;
}

Status Warehouse::ProcessQuery(Instance& instance,
                               const QueryRequest& request,
                               uint64_t receipt, Micros* lease_anchor,
                               QueryOutcome* outcome) {
  QueryExecutor executor(this);
  return executor.Run(instance, request, receipt, lease_anchor, outcome);
}

QueryPlanner Warehouse::MakePlanner() {
  QueryPlanner::Context context;
  context.store = &index_store();
  context.breaker = &env_->breaker();
  context.strategy = config_.strategy;
  context.options = config_.extract;
  context.document_uris = &document_uris_;
  context.force = config_.planner_force;
  context.use_index = config_.use_index;
  context.stats.summary = &path_summary_;
  context.stats.documents = document_uris_.size();
  context.stats.data_bytes = data_bytes_;
  // Pin the generation view into the plan: every access path built from
  // it reads each document at exactly this generation.
  context.stats.generations = GenerationSnapshot();
  context.stats.work = &env_->config().work;
  context.stats.deployment = &env_->deployment();
  context.stats.spec = cloud::SpecFor(config_.instance_type);
  context.stats.vm_usd_per_hour =
      env_->meter().pricing().VmHour(config_.instance_type);
  if (config_.backend == IndexBackend::kSimpleDb) {
    context.stats.billing = cost::IndexBilling::kBoxUsage;
    context.stats.min_read_bytes = 0;
  } else {
    context.stats.billing = cost::IndexBilling::kReadUnits;
    // DynamoDB's per-item read-unit floor (DynamoDb::kMinReadBytes).
    context.stats.min_read_bytes = 128;
  }
  return QueryPlanner(std::move(context));
}

Result<std::string> Warehouse::ExplainQuery(const std::string& query_text) {
  WEBDEX_ASSIGN_OR_RETURN(query::Query parsed, query::ParseQuery(query_text));
  const query::LogicalPlan logical =
      query::LogicalPlan::Build(std::move(parsed));
  const QueryPlanner planner = MakePlanner();
  const PhysicalPlan plan =
      planner.Plan(logical, cost_model_, front_end_.now());
  return logical.ToString() + plan.ToString();
}

WorkerStep Warehouse::QueryStep(Instance& instance,
                                std::map<uint64_t, QueryOutcome>* outcomes) {
  auto& sqs = env_->sqs();
  auto received = sqs.Receive(instance, config_.query_queue);
  if (!received.ok() || !received.value().has_value()) {
    WorkerStep step;
    step.processed = false;
    if (!sqs.Drained(config_.query_queue)) {
      auto next = sqs.NextDeliverableAt(config_.query_queue);
      step.retry_at = next.has_value() ? *next : -1;
    }
    return step;
  }
  const cloud::ReceivedMessage& msg = **received;
  // One span per delivered query task, like index.task above.
  cloud::MeteredSpan task_span(&env_->tracer(), &env_->meter(), instance,
                               "query");
  task_span.AddAttr("delivery", msg.delivery_count);
  if (config_.max_deliveries > 0 &&
      msg.delivery_count > config_.max_deliveries) {
    env_->meter().mutable_usage().dead_lettered += 1;
    if (!config_.dead_letter_queue.empty()) {
      (void)RetryCall(instance, "qp.dlq", [&] {
        return sqs.Send(instance, config_.dead_letter_queue,
                        config_.query_queue + "\n" + msg.body);
      });
    }
    (void)sqs.Delete(instance, config_.query_queue, msg.receipt);
    WorkerStep step;
    step.processed = true;
    return step;
  }
  Micros lease_anchor = instance.now();

  auto request = QueryRequest::Parse(msg.body);
  TaskOutcome task = request.ok() ? TaskOutcome::kOk : TaskOutcome::kPoison;
  if (task == TaskOutcome::kOk) {
    task_span.AddAttr("query_id",
                      static_cast<double>(request.value().id));
    // Admission gate (docs/OVERLOAD.md): may defer (advancing this
    // instance's virtual clock within the deadline budget) or shed.  A
    // shed query does zero index/file-store work — only the SQS response
    // below is billed — and the front end learns its fate immediately.
    const AdmissionDecision decision = admission_.Admit(
        instance, request.value().tenant, request.value().id);
    const Micros admitted_at = instance.now();
    const uint64_t throttles_before =
        env_->meter().usage().throttled_requests;
    QueryOutcome outcome;
    Status processed = Status::OK();
    if (decision.admitted) {
      processed = ProcessQuery(instance, request.value(), msg.receipt,
                               &lease_anchor, &outcome);
      admission_.OnCompleted(
          admitted_at, instance.now(),
          env_->meter().usage().throttled_requests > throttles_before);
    } else {
      task_span.AddAttr("shed", 1);
      outcome.id = request.value().id;
      outcome.query_text = request.value().query_text;
      outcome.shed = true;
    }
    outcome.tenant = request.value().tenant;
    if (processed.ok()) {
      QueryResponse response;
      response.id = request.value().id;
      if (outcome.shed) {
        response.shed = true;
      } else {
        response.result_key = StrFormat(
            "result-%llu.xml",
            static_cast<unsigned long long>(request.value().id));
        response.row_count = outcome.result.rows.size();
      }
      cloud::MeteredSpan respond_span(&env_->tracer(), &env_->meter(),
                                      instance, "respond");
      const Status sent = RetryCall(instance, "qp.respond", [&] {
        return sqs.Send(instance, config_.response_queue,
                        response.Serialize());
      });
      respond_span.End();
      if (sent.ok()) {
        (*outcomes)[outcome.id] = std::move(outcome);
      } else {
        // The response never reached the front end: redo the whole task
        // on redelivery (a duplicate response later is harmless — the
        // front end dedups by query id).
        task = sent.IsRetriable() ? TaskOutcome::kAbandon
                                  : TaskOutcome::kPoison;
      }
    } else {
      task = processed.IsRetriable() ? TaskOutcome::kAbandon
                                     : TaskOutcome::kPoison;
    }
  }

  if (ShouldCrash(cloud::CrashPoint::kBeforeDelete, instance.id(),
                  msg.body)) {
    WorkerStep step;
    step.processed = true;
    return step;
  }
  if (task == TaskOutcome::kAbandon) {
    WorkerStep step;
    step.processed = true;
    return step;
  }
  (void)RetryCall(instance, "qp.ack", [&] {
    return sqs.Delete(instance, config_.query_queue, msg.receipt);
  });
  WorkerStep step;
  step.processed = true;
  return step;
}

Result<QueryRunReport> Warehouse::ExecuteQueries(
    const std::vector<std::string>& queries) {
  std::vector<TenantQuery> tagged;
  tagged.reserve(queries.size());
  for (const auto& text : queries) tagged.push_back(TenantQuery{"", text});
  return ExecuteQueries(tagged);
}

Result<QueryRunReport> Warehouse::ExecuteQueries(
    const std::vector<TenantQuery>& queries) {
  const cloud::Usage run_start = env_->meter().Snapshot();
  cloud::MeteredSpan run_span(&env_->tracer(), &env_->meter(), front_end_,
                              "query.run");
  run_span.AddAttr("queries", static_cast<double>(queries.size()));
  std::vector<uint64_t> ids;
  {
    cloud::MeteredSpan submit_span(&env_->tracer(), &env_->meter(),
                                   front_end_, "submit");
    for (const auto& query : queries) {
      QueryRequest request;
      request.id = next_query_id_++;
      request.query_text = query.text;
      request.tenant = query.tenant;
      ids.push_back(request.id);
      WEBDEX_RETURN_IF_ERROR(RetryCall(front_end_, "fe.query", [&] {
        return env_->sqs().Send(front_end_, config_.query_queue,
                                request.Serialize());
      }));
    }
  }

  std::map<uint64_t, QueryOutcome> outcomes;
  cluster_.SyncClocks(front_end_.now());
  const Micros makespan = cluster_.RunUntilDrained(
      [this, &outcomes](Instance& instance) {
        return QueryStep(instance, &outcomes);
      },
      front_end_.now());
  for (auto& inst : cluster_.instances()) {
    env_->meter().AddVmTime(config_.instance_type,
                            inst->now() - front_end_.now());
  }
  front_end_.AdvanceTo(cluster_.MaxClock());

  // Retrieve every response and its result object (steps 16-18); the
  // transfer out of the cloud is the billed egress ("AWSDown").  Under
  // fault injection a response may be delayed (wait for it), duplicated
  // (dedup by query id), or its delete may fail (the redelivered copy is
  // processed again — still one id).
  QueryRunReport report;
  report.makespan = makespan;
  cloud::MeteredSpan collect_span(&env_->tracer(), &env_->meter(),
                                  front_end_, "collect");
  std::set<uint64_t> responded;
  while (responded.size() < ids.size()) {
    auto received = RetryCall(front_end_, "fe.receive", [&] {
      return env_->sqs().Receive(front_end_, config_.response_queue);
    });
    if (!received.ok()) return received.status();
    if (!received.value().has_value()) {
      auto next = env_->sqs().NextDeliverableAt(config_.response_queue);
      if (!next.has_value()) {
        // The queue is drained for good: some query never produced a
        // response (e.g. its task was dead-lettered).
        return Status::IOError("missing query response");
      }
      front_end_.AdvanceTo(*next);
      continue;
    }
    WEBDEX_ASSIGN_OR_RETURN(QueryResponse response,
                            QueryResponse::Parse(received.value()->body));
    // A shed response names no result object: nothing to fetch, no
    // egress — the typed rejection is the whole answer.
    if (!response.shed) {
      WEBDEX_ASSIGN_OR_RETURN(
          std::string result_xml,
          RetryCall(front_end_, "fe.result", [&] {
            return env_->s3().Get(front_end_, config_.results_bucket,
                                  response.result_key);
          }));
      env_->meter().AddEgress(result_xml.size());
    }
    // A stale receipt (expired lease or injected duplicate) just means
    // the response comes around again; it is deduped by id above.
    (void)RetryCall(front_end_, "fe.ack", [&] {
      return env_->sqs().Delete(front_end_, config_.response_queue,
                                received.value()->receipt);
    });
    responded.insert(response.id);
  }
  collect_span.End();
  for (uint64_t id : ids) {
    auto it = outcomes.find(id);
    if (it == outcomes.end()) {
      return Status::IOError(
          StrFormat("no outcome recorded for query %llu",
                    static_cast<unsigned long long>(id)));
    }
    report.planner_fallbacks +=
        static_cast<uint64_t>(it->second.planner_fallbacks);
    if (it->second.shed) report.shed_queries += 1;
    report.outcomes.push_back(std::move(it->second));
  }
  const cloud::Usage run_delta = env_->meter().Snapshot() - run_start;
  report.degraded_queries = run_delta.degraded_queries;
  report.breaker_opens = run_delta.breaker_opens;
  return report;
}

Result<ScrubReport> Warehouse::Scrub(bool repair) {
  cloud::MeteredSpan pass_span(&env_->tracer(), &env_->meter(), front_end_,
                               "scrub.pass");
  pass_span.AddAttr("repair", repair ? 1 : 0);
  env_->metrics().GetCounter("engine.scrub.passes.count")->Add(1);
  Scrubber scrubber(env_, retrying_store_.get(), strategy_.get(),
                    config_.extract, config_.data_bucket);
  return scrubber.Run(front_end_, repair, GenerationSnapshot().get());
}

Result<CompactReport> Warehouse::Compact(bool full) {
  if (!config_.use_index) {
    return Status::FailedPrecondition(
        "compaction requires an indexed warehouse");
  }
  cloud::MeteredSpan pass_span(&env_->tracer(), &env_->meter(), front_end_,
                               "compact.pass");
  pass_span.AddAttr("full", full ? 1 : 0);
  env_->metrics().GetCounter("index.compact.passes.count")->Add(1);
  // Resume from the durable cursor: a pass killed by a planned crash —
  // even one restored from a snapshot since — continues at the URI
  // boundary it checkpointed instead of restarting.
  std::string cursor = env_->maintenance().compact_cursor;
  pass_span.AddAttr("resumed", cursor.empty() ? 0 : 1);
  Compactor compactor(env_, retrying_store_.get(), strategy_.get(),
                      config_.extract, config_.data_bucket);
  auto should_crash = [this](const std::string& uri) {
    return ShouldCrash(cloud::CrashPoint::kMidCompaction, /*instance_id=*/0,
                       uri);
  };
  // A sub-pass cut short by transient-fault exhaustion (the store's own
  // retries gave up) is backed off and resumed from its cursor:
  // compaction inherits the pipeline's at-least-once posture instead of
  // failing on the first bad fault window.  Only a planned crash or a
  // non-retriable error ends the loop early.
  constexpr int kMaxSubPasses = 8;
  CompactReport report;
  Status pass_error;
  Rng backoff_rng = Rng::ForKey(env_->config().seed, "wh:compact.backoff");
  for (int attempt = 1;; ++attempt) {
    auto sub = compactor.Run(front_end_, full, cursor, should_crash);
    if (!sub.ok()) {
      // The opening scans faulted out before any URI work.
      if (!sub.status().IsRetriable() || attempt >= kMaxSubPasses) {
        pass_error = sub.status();
        break;
      }
    } else {
      report.documents_checked += sub.value().documents_checked;
      report.items_scanned += sub.value().items_scanned;
      report.items_put += sub.value().items_put;
      report.items_deleted += sub.value().items_deleted;
      for (auto& uri : sub.value().canonicalized_uris) {
        report.canonicalized_uris.push_back(std::move(uri));
      }
      for (auto& uri : sub.value().collected_uris) {
        report.collected_uris.push_back(std::move(uri));
      }
      report.crashed = sub.value().crashed;
      report.faulted = sub.value().faulted;
      report.fault = sub.value().fault;
      report.resume_cursor = sub.value().resume_cursor;
      if (!report.faulted) break;
      if (attempt >= kMaxSubPasses) {
        pass_error = report.fault;
        break;
      }
      cursor = report.resume_cursor;
    }
    const int64_t cap = common::BackoffCapMicros(config_.retry, attempt);
    const int64_t wait =
        cap <= 0 ? 0
                 : static_cast<int64_t>(backoff_rng.NextDouble() *
                                        static_cast<double>(cap + 1));
    front_end_.Advance(static_cast<cloud::Micros>(wait));
  }
  // Even a pass that ultimately gave up commits what its sub-passes
  // completed — the cloud-side rows are already folded, so the in-memory
  // view and the cursor must follow.
  env_->maintenance().compact_cursor = (report.crashed || !pass_error.ok())
                                           ? report.resume_cursor
                                           : std::string();
  // Host-side commit: fully folded URIs leave the generation view — a
  // canonicalized document is back at generation 0, a collected one is
  // gone entirely.
  for (const auto& uri : report.canonicalized_uris) EraseGeneration(uri);
  for (const auto& uri : report.collected_uris) EraseGeneration(uri);
  // Collected tombstones reclaimed their stored objects (the delete task
  // itself never unlinks — docs/MUTABILITY.md).
  data_bytes_ = env_->s3().BucketBytes(config_.data_bucket);
  env_->metrics()
      .GetCounter("index.compact.gc_items.count")
      ->Add(report.items_deleted);
  env_->metrics()
      .GetCounter("index.compact.canonicalized.count")
      ->Add(report.canonicalized_uris.size());
  env_->metrics()
      .GetCounter("index.tombstone.collected.count")
      ->Add(report.collected_uris.size());
  WEBDEX_RETURN_IF_ERROR(pass_error);
  return report;
}

Result<uint64_t> Warehouse::DrainDeadLetters() {
  if (config_.dead_letter_queue.empty()) return uint64_t{0};
  auto& sqs = env_->sqs();
  uint64_t drained = 0;
  while (true) {
    auto received = RetryCall(front_end_, "fe.dlq", [&] {
      return sqs.Receive(front_end_, config_.dead_letter_queue);
    });
    if (!received.ok()) return received.status();
    if (!received.value().has_value()) {
      if (sqs.Drained(config_.dead_letter_queue)) break;
      auto next = sqs.NextDeliverableAt(config_.dead_letter_queue);
      if (!next.has_value()) break;
      front_end_.AdvanceTo(*next);
      continue;
    }
    const cloud::ReceivedMessage& msg = **received;
    // Messages are parked as "<origin-queue>\n<original body>".
    const size_t split = msg.body.find('\n');
    if (split != std::string::npos) {
      const std::string origin = msg.body.substr(0, split);
      WEBDEX_RETURN_IF_ERROR(RetryCall(front_end_, "fe.requeue", [&] {
        return sqs.Send(front_end_, origin, msg.body.substr(split + 1));
      }));
      drained += 1;
    }
    // An unparseable parked message is dropped for good: re-driving it
    // anywhere would only dead-letter it again.
    (void)RetryCall(front_end_, "fe.dlq.ack", [&] {
      return sqs.Delete(front_end_, config_.dead_letter_queue, msg.receipt);
    });
  }
  return drained;
}

Result<QueryOutcome> Warehouse::ExecuteQuery(const std::string& query_text) {
  WEBDEX_ASSIGN_OR_RETURN(QueryRunReport report,
                          ExecuteQueries({query_text}));
  return std::move(report.outcomes.front());
}

std::shared_ptr<const xml::Document> Warehouse::DocCache::Get(
    const std::string& uri) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(uri);
  return it == cache_.end() ? nullptr : it->second;
}

void Warehouse::DocCache::Put(const std::string& uri,
                              std::shared_ptr<const xml::Document> doc) {
  if (doc == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Assign, not emplace: an upsert must replace the cached DOM, or
  // queries would keep evaluating the superseded version from cache.
  cache_[uri] = std::move(doc);
}

void Warehouse::DocCache::Erase(const std::string& uri) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.erase(uri);
}

uint64_t Warehouse::IndexRawBytes() const {
  uint64_t total = 0;
  auto& store = const_cast<Warehouse*>(this)->index_store();
  for (const auto& table : strategy_->TableNames()) {
    total += store.StoredBytes(table);
  }
  return total;
}

uint64_t Warehouse::IndexOverheadBytes() const {
  uint64_t total = 0;
  auto& store = const_cast<Warehouse*>(this)->index_store();
  for (const auto& table : strategy_->TableNames()) {
    total += store.OverheadBytes(table);
  }
  return total;
}

}  // namespace webdex::engine
