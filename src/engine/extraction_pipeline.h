#ifndef WEBDEX_ENGINE_EXTRACTION_PIPELINE_H_
#define WEBDEX_ENGINE_EXTRACTION_PIPELINE_H_

#include <map>
#include <memory>
#include <mutex>
#include <future>
#include <string>
#include <vector>

#include "cloud/kv_store.h"
#include "cloud/object_store.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "index/strategy.h"
#include "xml/dom.h"

namespace webdex::engine {

/// Everything the pure-CPU half of one indexing task produces: the parsed
/// document, the extracted index items, and the work counters the
/// simulation charges virtual time for.  Deterministic per (seed, uri,
/// generation): UUID range keys come from an Rng stream seeded by the
/// document URI (suffixed "@<generation>" for upsert re-extractions), so
/// the same document always extracts to byte-identical items, regardless
/// of which host thread, simulated instance, or delivery attempt runs it.
struct ExtractionResult {
  Status status = Status::OK();  // parse / extract outcome
  std::shared_ptr<const xml::Document> doc;
  index::ExtractStats stats;
  std::vector<index::TableItems> items;
  /// The document's handle-keyed DocIndex — the warehouse feeds it to the
  /// planner's index::PathSummary once the task commits (deduplicated by
  /// URI across redeliveries).  Handles resolve against the global
  /// InternCore, so the result is shareable across host threads.
  index::DocIndex doc_index;
};

/// Speculative host-parallel execution of the fetch-parse-extract phase of
/// indexing tasks (paper Figure 1, steps 4-5; "extraction time" in
/// Table 4).
///
/// The discrete-event scheduler serializes *virtual* execution on the
/// host, so at scale the wall-clock of an indexing run is dominated by
/// real `xml::ParseDocument` + `ExtractItems` CPU.  That work is pure and
/// embarrassingly parallel per document, so the pipeline runs it ahead of
/// time on a ThreadPool while the event loop replays queue deliveries,
/// billing, lease renewals and fault injection exactly as before; when
/// the loop reaches a task it collects the memoized result instead of
/// recomputing it.  Virtual time is charged by the *event loop* from the
/// result's counters, so makespans, costs, and reports are bit-identical
/// to the serial path (see docs/PARALLELISM.md).
///
/// Results stay memoized for the lifetime of the pipeline (one indexing
/// run): at-least-once redeliveries after a crash re-use the same result,
/// mirroring the determinism of the per-document Rng streams.
class ExtractionPipeline {
 public:
  /// `pool` must outlive the pipeline.  `strategy`, `store` and `s3` are
  /// read from pooled threads: `s3`'s data bucket must not be mutated
  /// while the pipeline is live, and `store` is only consulted through
  /// its immutable capability queries.
  ExtractionPipeline(common::ThreadPool* pool,
                     const index::IndexingStrategy* strategy,
                     const index::ExtractOptions& options,
                     const cloud::KvStore* store,
                     const cloud::ObjectStore* s3, std::string bucket,
                     uint64_t base_seed);

  ExtractionPipeline(const ExtractionPipeline&) = delete;
  ExtractionPipeline& operator=(const ExtractionPipeline&) = delete;

  /// Schedules the speculative extraction of `uri` at `generation` unless
  /// one is already scheduled.  Called once per pending loader-queue
  /// message before the event loop starts.  Upsert tasks of the same URI
  /// at different generations memoize independently — their UUID streams
  /// (and possibly their S3 bodies) differ.
  void Prefetch(const std::string& uri, uint64_t generation = 0);

  /// Blocks until the speculative task for (`uri`, `generation`)
  /// completes and returns its memoized result; nullptr if it was never
  /// prefetched (the caller then extracts inline via ExtractNow).
  std::shared_ptr<const ExtractionResult> Take(const std::string& uri,
                                               uint64_t generation = 0);

  /// The serial path: runs the identical parse + extract on the calling
  /// thread.  Shared by the pipeline's pooled tasks and the legacy
  /// host_threads == 1 configuration, so both produce identical results.
  static ExtractionResult ExtractNow(const std::string& uri,
                                     const std::string& xml_text,
                                     const index::IndexingStrategy& strategy,
                                     const index::ExtractOptions& options,
                                     const cloud::KvStore& store,
                                     uint64_t base_seed);

 private:
  common::ThreadPool* pool_;
  const index::IndexingStrategy* strategy_;
  index::ExtractOptions options_;
  const cloud::KvStore* store_;
  const cloud::ObjectStore* s3_;
  std::string bucket_;
  uint64_t base_seed_;

  std::mutex mu_;
  std::map<std::string, std::shared_future<std::shared_ptr<const ExtractionResult>>>
      tasks_;
};

}  // namespace webdex::engine

#endif  // WEBDEX_ENGINE_EXTRACTION_PIPELINE_H_
