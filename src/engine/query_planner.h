#ifndef WEBDEX_ENGINE_QUERY_PLANNER_H_
#define WEBDEX_ENGINE_QUERY_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "cloud/circuit_breaker.h"
#include "cloud/sim.h"
#include "engine/access_path.h"
#include "index/strategy.h"
#include "query/logical_plan.h"

namespace webdex::engine {

/// Which 2LUPI side the planner may use.  kAuto lets cost estimates
/// decide per pattern; the forced modes exist for the always-LUP /
/// always-LUI baselines that Table 5 compares the planner against.
enum class PlannerForce { kAuto, kLup, kLui };

const char* PlannerForceName(PlannerForce force);

/// One candidate access path for one pattern, with its price tag and the
/// planner's verdict.  Kept (not discarded) after planning so EXPLAIN can
/// show the rejected alternatives next to the winner.
struct PlannedPath {
  std::unique_ptr<AccessPath> path;
  cost::PathEstimate estimate;
  /// False when the circuit breaker reports the path's table browned out
  /// (or a forced baseline disables it); a non-viable path is never
  /// executed and never billed.
  bool viable = true;
  std::string note;  // why rejected / blocked, for EXPLAIN
};

/// The planner's decision for one tree pattern: all candidates (index
/// look-ups first, the scan fallback last) and the index of the winner.
struct PatternPlan {
  int pattern = 0;
  std::vector<PlannedPath> paths;
  int chosen = -1;

  const PlannedPath& chosen_path() const { return paths[chosen]; }
  /// The scan candidate (always present, always last) — the runtime
  /// fallback if the chosen look-up fails retriably mid-query.
  const PlannedPath& scan_path() const { return paths.back(); }
};

/// The physical layer's output: per-pattern access-path choices plus the
/// roll-up the executor records into QueryOutcome.  Serializable as text
/// (`webdex_cli explain`).
struct PhysicalPlan {
  std::vector<PatternPlan> patterns;
  std::string strategy;           // StrategyKindName of the deployment
  PlannerForce force = PlannerForce::kAuto;
  /// Patterns whose look-up candidates were all breaker-blocked at plan
  /// time, sending the planner straight to scan.
  int planner_fallbacks = 0;

  double EstimatedUsd() const;
  double EstimatedRequests() const;
  /// "+"-joined chosen path names, e.g. "2LUPI/lup+2LUPI/lui" — the
  /// QueryOutcome::chosen_path value.
  std::string ChosenDescription() const;
  std::string ToString() const;
};

/// The cost-based planner (docs/PLANNER.md): enumerates the access paths
/// the deployed strategy's tables support, prices each with the cost
/// model, drops paths whose table the circuit breaker reports unhealthy,
/// and picks the cheapest viable look-up per pattern — or the scan when
/// nothing index-backed is healthy.
class QueryPlanner {
 public:
  struct Context {
    cloud::KvStore* store = nullptr;
    /// Health authority; null means "everything healthy".
    const cloud::CircuitBreaker* breaker = nullptr;
    index::StrategyKind strategy = index::StrategyKind::kLUP;
    index::ExtractOptions options;
    /// All document URIs, for the scan path (owned by the warehouse).
    const std::vector<std::string>* document_uris = nullptr;
    PlannerStats stats;
    PlannerForce force = PlannerForce::kAuto;
    /// When false the deployment has no index: every pattern plans as a
    /// scan (and it does not count as a fallback).
    bool use_index = true;
  };

  explicit QueryPlanner(Context context) : context_(std::move(context)) {}

  /// Plans every pattern of the logical plan against breaker health as of
  /// virtual time `now`.  Pure host-side work: nothing is billed and no
  /// virtual time passes.
  PhysicalPlan Plan(const query::LogicalPlan& logical,
                    const cost::CostModel& model, cloud::Micros now) const;

 private:
  std::vector<PlannedPath> CandidatesFor(const query::TreePattern& pattern)
      const;

  Context context_;
};

}  // namespace webdex::engine

#endif  // WEBDEX_ENGINE_QUERY_PLANNER_H_
