#ifndef WEBDEX_ENGINE_WAREHOUSE_H_
#define WEBDEX_ENGINE_WAREHOUSE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "cloud/cloud_env.h"
#include "cloud/cluster.h"
#include "cloud/fault.h"
#include "cloud/kv_store.h"
#include "cloud/replicated_kv_store.h"
#include "cloud/retrying_kv_store.h"
#include "cloud/sharded_kv_store.h"
#include "cloud/trace.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "engine/admission.h"
#include "engine/compactor.h"
#include "engine/extraction_pipeline.h"
#include "engine/message.h"
#include "engine/query_planner.h"
#include "engine/scrubber.h"
#include "index/generation.h"
#include "index/strategy.h"
#include "index/summary.h"
#include "query/evaluator.h"

namespace webdex::engine {

/// Which key-value service hosts the index (Section 8.4 compares the
/// DynamoDB deployment of this paper against the SimpleDB one of [8]).
enum class IndexBackend { kDynamoDb, kSimpleDb };

struct WarehouseConfig {
  std::string data_bucket = "webdex-data";
  std::string results_bucket = "webdex-results";
  std::string loader_queue = "loader-requests";
  std::string query_queue = "query-requests";
  std::string response_queue = "query-responses";
  /// Poison messages are forwarded here (prefixed with their origin
  /// queue) instead of being silently dropped, so an operator can
  /// inspect or re-drive them (DrainDeadLetters, `webdex dlq drain`).
  /// Empty disables forwarding; dead-lettering itself still applies.
  std::string dead_letter_queue = "dead-letter";

  index::StrategyKind strategy = index::StrategyKind::kLUP;
  index::ExtractOptions extract;
  IndexBackend backend = IndexBackend::kDynamoDb;

  /// false = no-index baseline: every query scans the whole warehouse.
  bool use_index = true;

  /// Cost-based query planning (docs/PLANNER.md): per pattern, the
  /// engine::QueryPlanner prices every access path the deployed strategy
  /// supports and runs the cheapest healthy one.  false = the deployed
  /// strategy's fixed look-up pipeline, byte-identical to the
  /// pre-planner engine (same rows either way).
  bool use_planner = true;
  /// Pins the 2LUPI side choice, for the always-LUP / always-LUI
  /// baselines the planner is benchmarked against (ignored by the other
  /// strategies).
  PlannerForce planner_force = PlannerForce::kAuto;

  cloud::InstanceType instance_type = cloud::InstanceType::kLarge;
  int num_instances = 1;

  /// Host threads for the speculative extraction pipeline that runs the
  /// parse/extract phase of indexing tasks on real cores while the
  /// deterministic event loop replays deliveries and billing.  0 = one
  /// thread per hardware core; 1 = legacy serial path (extraction inline
  /// on the event-loop thread).  Purely a wall-clock optimization: the
  /// virtual makespan, usage meter, and IndexingRunReport are
  /// bit-identical for every value (see docs/PARALLELISM.md).
  int host_threads = 0;

  /// Retry policy applied to every simulated cloud call the warehouse
  /// issues (index store, S3, SQS).  Backoff sleeps advance virtual time,
  /// so retries lengthen makespans and EC2 bills (docs/FAULTS.md).
  common::RetryPolicy retry;

  /// Admission control over the query processors and the extraction
  /// pipeline (docs/OVERLOAD.md).  Disabled by default: every query is
  /// admitted untouched and existing runs stay bit-identical.
  AdmissionConfig admission;

  /// A message delivered more than this many times is dead-lettered:
  /// acknowledged without effect and counted in
  /// IndexingRunReport::dead_lettered / Usage::dead_lettered.  <= 0
  /// disables dead-lettering.
  int max_deliveries = 8;

  /// Crash-injection hook (tests): called with (crash point, instance id,
  /// message body) at each of the engine's crash points; returning true
  /// simulates the instance crashing there, so the message lease expires
  /// and another instance redoes the task (Section 3, fault tolerance).
  /// Plan-driven crashes (CloudConfig::faults.crash) fire independently
  /// of this hook.
  std::function<bool(cloud::CrashPoint, int, const std::string&)> crash_plan;
};

/// What one indexing run (drain of the loader queue) did — the substance
/// of the paper's Table 4 and Figure 7.
struct IndexingRunReport {
  uint64_t documents = 0;
  /// Virtual time, summed over instances, spent in each phase.
  cloud::Micros extraction_micros = 0;  // S3 fetch + parse + extract
  cloud::Micros upload_micros = 0;      // key-value store writes
  /// Queue-to-queue makespan: first message retrieved (== run start,
  /// instances start polling immediately) to last message deleted.
  cloud::Micros makespan = 0;
  index::ExtractStats extract_stats;
  /// Index-store put units consumed (|op(D, I)| at pricing granularity).
  double index_put_units = 0;
  /// Fault-recovery accounting (docs/FAULTS.md).
  uint64_t redeliveries = 0;   // task deliveries with delivery_count > 1
  uint64_t dead_lettered = 0;  // poison tasks dropped after max_deliveries
};

/// Per-query timing split matching Figures 9b/9c.
struct QueryTimings {
  cloud::Micros index_get = 0;      // "Lookup - DynamoDB Get"
  cloud::Micros plan_exec = 0;      // "Lookup - Plan execution"
  cloud::Micros transfer_eval = 0;  // "S3 transfer and results extraction"
  cloud::Micros total = 0;          // message retrieved -> deleted
};

/// Everything observed while answering one query.
struct QueryOutcome {
  uint64_t id = 0;
  std::string query_text;
  query::QueryResult result;
  /// Documents fetched from the file store (|D^q_I|; |D| when no index).
  uint64_t docs_fetched = 0;
  /// Document IDs retrieved from the index, summed over the query's tree
  /// patterns (Table 5 convention for value-join queries).
  uint64_t docs_from_index = 0;
  QueryTimings timings;
  index::LookupStats lookup;
  /// Index-store get units consumed (|op(q, D, I)|).
  double index_get_units = 0;
  /// True when the index lookup exhausted its retries (or hit an open
  /// circuit breaker) and the query fell back to a full warehouse scan.
  /// The answer is bit-identical to the indexed one, only dearer
  /// (docs/FAULTS.md).
  bool degraded = false;
  /// Documents scanned by the degraded fallback (|D|; 0 when not
  /// degraded).
  uint64_t scan_docs = 0;
  /// Which access path(s) answered the query: "+"-joined per-pattern
  /// path names with the planner on (e.g. "2LUPI/lup"), the strategy
  /// name with the planner off, "scan" for degraded/no-index queries.
  std::string chosen_path;
  /// The planner's pre-execution price tag for the chosen paths (0 with
  /// the planner off).
  double estimated_cost_usd = 0;
  double estimated_requests = 0;
  /// What the task actually cost: requests + capacity metered during the
  /// task plus its rented VM time.
  double actual_cost_usd = 0;
  double actual_requests = 0;
  /// Patterns that fell back to the scan path — blocked by an open
  /// circuit breaker at plan time, or failed retriably at run time.
  int planner_fallbacks = 0;
  /// True when admission control shed the query (kOverloaded): it did no
  /// index/file-store work and `result` is empty (docs/OVERLOAD.md).
  bool shed = false;
  /// Admission tenant the query ran (or was shed) under; empty when
  /// untagged.
  std::string tenant;
};

struct QueryRunReport {
  std::vector<QueryOutcome> outcomes;  // in submission order
  cloud::Micros makespan = 0;
  /// Brownout accounting for this run (deltas of the usage meter).
  uint64_t degraded_queries = 0;
  uint64_t breaker_opens = 0;
  /// Scan fallbacks taken by the planner, summed over the outcomes.
  uint64_t planner_fallbacks = 0;
  /// Queries admission control shed with kOverloaded this run
  /// (docs/OVERLOAD.md); their outcomes carry shed == true.
  uint64_t shed_queries = 0;
};

/// A query tagged with the tenant it runs under, for the per-tenant
/// admission buckets (docs/OVERLOAD.md).
struct TenantQuery {
  std::string tenant;
  std::string text;
};

/// The complete warehouse of paper Figure 1: front end + file store +
/// index store + queues + a fleet of virtual machines running the
/// indexing and query-processing modules.
///
/// The front end is itself a SimAgent: submitting documents/queries and
/// fetching results advances its virtual clock and bills its API calls.
class Warehouse {
 public:
  Warehouse(cloud::CloudEnv* env, const WarehouseConfig& config);

  /// Creates buckets, queues and index tables.  Call once.
  Status Setup();

  /// Adopts the document registry and clock of another warehouse running
  /// over the *same* CloudEnv.  Used to re-deploy a different query fleet
  /// (instance type / count) against data, queues and index tables that
  /// already live in the simulated services — the paper's experiments
  /// swap EC2 fleets while S3 and DynamoDB keep their contents.
  void AdoptExistingData(const Warehouse& other);

  /// Rebuilds the document registry by listing the data bucket — used
  /// after restoring a cloud snapshot, when the documents and index
  /// tables already exist but this facade is new.  The LIST requests are
  /// billed to the front end like any other S3 traffic.  With
  /// use_index == true the existing index is reused (Setup() must not be
  /// called; the tables already exist).
  Status AttachToExistingCloud();

  // --- Loading (Figure 1, steps 1-3) -------------------------------------

  /// Stores the document in the file store and enqueues an indexing
  /// request.  (With use_index == false the document is still registered
  /// and stored, and the loader queue stays empty.)  Submitting a URI
  /// that is already registered routes to UpsertDocument — the corpus is
  /// mutable, re-submission means replacement (docs/MUTABILITY.md).
  Status SubmitDocument(const std::string& uri, std::string xml_text);

  // --- Mutation (docs/MUTABILITY.md) ---------------------------------------

  /// Replaces `uri`'s content: stores the new text, allocates the next
  /// generation stamp, and enqueues an UPSERT indexing task through the
  /// same fault-injected queue pipeline as loads.  The new postings are
  /// written stamped; readers keep seeing the old generation until the
  /// task commits.  Requires use_index.  Run RunIndexers() to process.
  Status UpsertDocument(const std::string& uri, std::string xml_text);

  /// Deletes `uri`: allocates a generation stamp and enqueues a DELETE
  /// task that writes a tombstone meta row — never an in-place erase.
  /// Postings *and* the stored object linger until compaction collects
  /// them, so a queued revival (a later-generation upsert) can never
  /// lose its object to an earlier delete task.  NotFound if the URI was
  /// never registered.  Requires use_index.  Run RunIndexers() to
  /// process.
  Status DeleteDocument(const std::string& uri);

  // --- Indexing (steps 4-6) ----------------------------------------------

  /// Runs the indexing-module fleet until the loader queue drains.
  Result<IndexingRunReport> RunIndexers();

  // --- Querying (steps 7-18) ----------------------------------------------

  /// Submits the queries, runs the query-processor fleet until done, then
  /// retrieves every result through the front end (charging egress).
  Result<QueryRunReport> ExecuteQueries(
      const std::vector<std::string>& queries);

  /// Tenant-tagged variant: each query runs under its tenant's admission
  /// bucket, so a hot tenant is shed while cold ones keep being served
  /// (docs/OVERLOAD.md).  With admission disabled the tags are inert.
  Result<QueryRunReport> ExecuteQueries(
      const std::vector<TenantQuery>& queries);

  /// Single-query convenience wrapper.
  Result<QueryOutcome> ExecuteQuery(const std::string& query_text);

  /// EXPLAIN: parses and plans `query_text` against the current index
  /// statistics and breaker health *without executing it* — host-side
  /// only, nothing billed, no virtual time.  Returns the logical plan
  /// followed by the physical plan with every candidate's estimate
  /// (`webdex_cli explain`).
  Result<std::string> ExplainQuery(const std::string& query_text);

  // --- Maintenance ---------------------------------------------------------

  /// One scrub pass over this warehouse's index tables on the front
  /// end's clock (billed).  With `repair`, missing/partial postings are
  /// re-extracted and stale/orphaned ones deleted (engine/scrubber.h).
  Result<ScrubReport> Scrub(bool repair);

  /// One compaction pass over the mutable index on the front end's clock
  /// (billed; engine/compactor.h).  `full` rewrites alive upserted
  /// documents to canonical generation-0 postings; otherwise only
  /// superseded generations and collected tombstones are dropped.
  /// Resumes from the cursor checkpointed in the cloud's maintenance
  /// state (snapshot v3), so a crash mid-pass — planned via CrashPoint
  /// kMidCompaction — picks up at the URI boundary after restore.
  Result<CompactReport> Compact(bool full);

  /// Re-drives every dead-lettered message back onto its origin queue
  /// and returns how many were re-driven.  Run RunIndexers() /
  /// ExecuteQueries() afterwards to process them.
  Result<uint64_t> DrainDeadLetters();

  // --- Introspection -------------------------------------------------------

  cloud::CloudEnv& env() { return *env_; }
  cloud::SimAgent& front_end() { return front_end_; }
  cloud::KvStore& index_store();
  const WarehouseConfig& config() const { return config_; }
  const std::vector<std::string>& document_uris() const {
    return document_uris_;
  }
  uint64_t data_bytes() const { return data_bytes_; }

  /// The admission controller gating this warehouse's query processors
  /// and extraction pipeline (inert unless config().admission.enabled).
  AdmissionController& admission() { return admission_; }

  /// The current generation view (index/generation.h): a consistent
  /// immutable snapshot of every mutated document's live generation and
  /// tombstone state.  Queries pin one snapshot for their whole
  /// evaluation; maintenance publishes replacements copy-on-write.  Null
  /// only before Setup/Attach (callers treat null as the all-static
  /// view).
  std::shared_ptr<const index::GenerationMap> GenerationSnapshot() const;

  /// The planner's corpus statistics, maintained incrementally as
  /// documents are indexed (each document counted once, across
  /// redeliveries).
  const index::PathSummary& path_summary() const { return path_summary_; }

  /// Raw + overhead bytes currently held by this warehouse's index
  /// tables (sr and ovh of Section 7.1).
  uint64_t IndexRawBytes() const;
  uint64_t IndexOverheadBytes() const;

 private:
  /// The execution layer operates on the warehouse's private state
  /// (stores, caches, retry streams) so the planner-off path stays
  /// byte-identical to the pre-refactor ProcessQuery.
  friend class QueryExecutor;

  class FrontEndAgent : public cloud::SimAgent {};

  struct PendingResponse {
    uint64_t id = 0;
    std::string result_key;
  };

  /// Host threads the extraction pipeline should use (resolves the
  /// host_threads == 0 default to the hardware concurrency).
  int ResolvedHostThreads() const;

  /// True if the test hook or the cloud's fault plan says the instance
  /// crashes at `point` while handling the task with body `task_key`.
  bool ShouldCrash(cloud::CrashPoint point, int instance_id,
                   const std::string& task_key);

  /// Allocates the next mutation generation from the cloud's maintenance
  /// watermark (monotone, persisted by snapshot v3).
  uint64_t AllocateGeneration();

  /// Publishes a copy-on-write update of the generation view: the
  /// host-side commit of an upsert/delete task or a compaction step.
  /// Idempotent under redelivery (GenerationMap::Apply is max-wins).
  void CommitGeneration(const std::string& uri, uint64_t generation,
                        bool tombstoned);

  /// Drops `uri` from the generation view — its index state is canonical
  /// again (fully compacted to generation 0, or collected).
  void EraseGeneration(const std::string& uri);

  /// Removes `uri` from the document registry (delete-task commit);
  /// idempotent.
  void UnregisterDocument(const std::string& uri);

  /// Runs `fn` (returning Status or Result<T>) under the configured retry
  /// policy; backoff advances `agent`'s virtual clock and jitter is drawn
  /// from a deterministic per-`site` stream.  With the tracer enabled,
  /// each attempt gets its own `attempt.<site>` span carrying the usage
  /// it metered (retried attempts show up as siblings, so a span tree
  /// prices every billed attempt, not just the one that succeeded).
  template <typename Fn>
  auto RetryCall(cloud::SimAgent& agent, const std::string& site,
                 const Fn& fn) -> decltype(fn()) {
    auto it = retry_streams_.find(site);
    if (it == retry_streams_.end()) {
      it = retry_streams_
               .emplace(site, Rng::ForKey(env_->config().seed, "wh:" + site))
               .first;
    }
    // The sleep callback fires exactly once per retry, in lockstep with
    // the `retries` counter, so bumping the mirror metric here keeps
    // `cloud.retry.retries.count` equal to Usage::retried_requests.
    common::Counter* retries_metric =
        env_->metrics().GetCounter("cloud.retry.retries.count");
    const auto sleep = [&agent, retries_metric](int64_t micros) {
      agent.Advance(static_cast<cloud::Micros>(micros));
      retries_metric->Add(1);
    };
    common::Counter* attempts_metric =
        env_->metrics().GetCounter("cloud.retry.attempts.count");
    uint64_t* retries = &env_->meter().mutable_usage().retried_requests;
    if (!env_->tracer().enabled()) {
      const auto counted = [&]() -> decltype(fn()) {
        attempts_metric->Add(1);
        return fn();
      };
      return common::CallWithRetry(config_.retry, it->second, counted, sleep,
                                   retries);
    }
    const std::string span_name = "attempt." + site;
    int attempt = 0;
    const auto traced = [&]() -> decltype(fn()) {
      attempts_metric->Add(1);
      cloud::MeteredSpan span(&env_->tracer(), &env_->meter(), agent,
                              span_name);
      span.AddAttr("attempt", ++attempt);
      auto outcome = fn();
      if (!common::StatusOf(outcome).ok()) span.AddAttr("error", 1);
      return outcome;
    };
    return common::CallWithRetry(config_.retry, it->second, traced, sleep,
                                 retries);
  }

  /// Uploads `items` to `table` one BatchPutLimit()-sized page per API
  /// call (externalizing the store's paging so the engine can crash
  /// between pages).  `crashed` means the instance died mid-upload: the
  /// caller must neither ack nor poison the task.
  struct UploadResult {
    Status status;
    bool crashed = false;
  };
  UploadResult PutItemsPaged(cloud::Instance& instance,
                             const std::string& table,
                             const std::vector<cloud::Item>& items,
                             const std::string& task_key);

  cloud::WorkerStep IndexerStep(cloud::Instance& instance,
                                ExtractionPipeline* pipeline,
                                IndexingRunReport* report);
  cloud::WorkerStep QueryStep(cloud::Instance& instance,
                              std::map<uint64_t, QueryOutcome>* outcomes);

  // Body of one query task, after the message has been received —
  // delegates to the QueryExecutor layer (engine/query_executor.h).
  // `receipt`/`lease_anchor` let long phases renew the message lease.
  Status ProcessQuery(cloud::Instance& instance, const QueryRequest& request,
                      uint64_t receipt, cloud::Micros* lease_anchor,
                      QueryOutcome* outcome);

  /// Builds the cost-based planner over this warehouse's index store,
  /// corpus statistics, pricing and breaker (engine/query_planner.h).
  QueryPlanner MakePlanner();

  // Heartbeat stand-in: renews the queue lease whenever at least a
  // quarter of the visibility timeout has passed since `*lease_anchor`
  // (Section 3 fault-tolerance protocol).  Called at the natural phase
  // boundaries of the atomic simulated tasks.
  void MaybeRenewLease(cloud::Instance& instance, const std::string& queue,
                       uint64_t receipt, cloud::Micros* lease_anchor);

  /// Host-side DOM cache (documents are immutable once loaded); purely a
  /// real-CPU optimization — virtual parse time is charged per fetch.
  /// Mutex-guarded: the indexing run warms it from results produced on
  /// pooled host threads, and a future parallel query path may read it
  /// concurrently.
  class DocCache {
   public:
    std::shared_ptr<const xml::Document> Get(const std::string& uri) const;
    void Put(const std::string& uri,
             std::shared_ptr<const xml::Document> doc);
    void Erase(const std::string& uri);

   private:
    mutable std::mutex mu_;
    std::map<std::string, std::shared_ptr<const xml::Document>> cache_;
  };

  cloud::CloudEnv* env_;
  WarehouseConfig config_;
  AdmissionController admission_;
  std::unique_ptr<index::IndexingStrategy> strategy_;
  /// Analytical pricing shared by the planner and the advisors, over this
  /// environment's price sheet.
  cost::CostModel cost_model_;
  /// Planner statistics: distinct paths/keys per document, fed by the
  /// indexing run as each task commits; `summarized_uris_` dedups across
  /// redeliveries so a re-done task never double-counts its document.
  index::PathSummary path_summary_;
  std::set<std::string> summarized_uris_;
  /// Decorator stack over the backend index store, bottom-up: retries
  /// always, then a replicated read pool when the deployment has
  /// replicas, then shard routing when it has shards
  /// (docs/ARCHITECTURES.md).  index_store() returns the top, so every
  /// index read/write inherits the whole stack; under the default
  /// deployment only the retry decorator exists, preserving the paper's
  /// layout bit-identically.
  std::unique_ptr<cloud::RetryingKvStore> retrying_store_;
  std::unique_ptr<cloud::ReplicatedKvStore> replicated_store_;
  std::unique_ptr<cloud::ShardedKvStore> sharded_store_;
  cloud::Cluster cluster_;
  FrontEndAgent front_end_;
  std::vector<std::string> document_uris_;
  /// O(1) membership mirror of document_uris_, so SubmitDocument can
  /// route re-submissions to UpsertDocument without a linear scan.
  std::set<std::string> registered_uris_;
  /// The published generation view (copy-on-write; GenerationSnapshot).
  /// The mutex guards only the pointer swap — published maps are
  /// immutable, so readers on other host threads see a consistent view.
  mutable std::mutex generations_mu_;
  std::shared_ptr<const index::GenerationMap> generations_ =
      std::make_shared<index::GenerationMap>();
  uint64_t data_bytes_ = 0;
  uint64_t next_query_id_ = 1;
  DocCache doc_cache_;
  std::map<std::string, Rng, std::less<>> retry_streams_;
};

}  // namespace webdex::engine

#endif  // WEBDEX_ENGINE_WAREHOUSE_H_
