#include "engine/message.h"

#include <cstdlib>

#include "common/strings.h"

namespace webdex::engine {
namespace {

// Splits "tag\nrest" and verifies the tag.
Result<std::string> ExpectTag(const std::string& text,
                              std::string_view tag) {
  const size_t newline = text.find('\n');
  const std::string_view head =
      newline == std::string::npos
          ? std::string_view(text)
          : std::string_view(text).substr(0, newline);
  if (head != tag) {
    return Status::InvalidArgument(
        StrFormat("expected %.*s message, got '%.*s'",
                  static_cast<int>(tag.size()), tag.data(),
                  static_cast<int>(head.size()), head.data()));
  }
  return newline == std::string::npos ? std::string()
                                      : text.substr(newline + 1);
}

}  // namespace

std::string LoadRequest::Serialize() const {
  switch (op) {
    case LoadOp::kAdd:
      return "LOAD\n" + uri;
    case LoadOp::kUpsert:
      return StrFormat("UPSERT\n%llu\n",
                       static_cast<unsigned long long>(generation)) +
             uri;
    case LoadOp::kDelete:
      return StrFormat("DELETE\n%llu\n",
                       static_cast<unsigned long long>(generation)) +
             uri;
  }
  return "LOAD\n" + uri;  // unreachable
}

namespace {

// Parses the "<generation>\n<uri>" body shared by UPSERT and DELETE.
Result<LoadRequest> ParseMutation(std::string rest, LoadOp op,
                                  std::string_view tag) {
  const size_t newline = rest.find('\n');
  if (newline == std::string::npos) {
    return Status::InvalidArgument(
        StrFormat("%.*s without generation", static_cast<int>(tag.size()),
                  tag.data()));
  }
  LoadRequest req;
  req.op = op;
  req.generation = std::strtoull(rest.substr(0, newline).c_str(), nullptr, 10);
  if (req.generation == 0) {
    return Status::InvalidArgument(
        StrFormat("%.*s with generation 0", static_cast<int>(tag.size()),
                  tag.data()));
  }
  req.uri = rest.substr(newline + 1);
  if (req.uri.empty()) {
    return Status::InvalidArgument(StrFormat(
        "%.*s without URI", static_cast<int>(tag.size()), tag.data()));
  }
  return req;
}

}  // namespace

Result<LoadRequest> LoadRequest::Parse(const std::string& text) {
  {
    auto rest = ExpectTag(text, "UPSERT");
    if (rest.ok()) {
      return ParseMutation(std::move(rest).value(), LoadOp::kUpsert, "UPSERT");
    }
  }
  {
    auto rest = ExpectTag(text, "DELETE");
    if (rest.ok()) {
      return ParseMutation(std::move(rest).value(), LoadOp::kDelete, "DELETE");
    }
  }
  WEBDEX_ASSIGN_OR_RETURN(std::string rest, ExpectTag(text, "LOAD"));
  if (rest.empty()) return Status::InvalidArgument("LOAD without URI");
  LoadRequest req;
  req.uri = std::move(rest);
  return req;
}

std::string QueryRequest::Serialize() const {
  // Tenant-tagged requests get their own tag (the query text is the
  // final, newline-containing field, so nothing can be appended after
  // it); untagged requests serialize byte-identically to the
  // pre-admission wire format.
  if (tenant.empty()) {
    return StrFormat("QUERY\n%llu\n", static_cast<unsigned long long>(id)) +
           query_text;
  }
  return StrFormat("QUERYT\n%llu\n", static_cast<unsigned long long>(id)) +
         tenant + "\n" + query_text;
}

Result<QueryRequest> QueryRequest::Parse(const std::string& text) {
  {
    auto rest = ExpectTag(text, "QUERYT");
    if (rest.ok()) {
      const std::string& body = rest.value();
      const size_t id_end = body.find('\n');
      const size_t tenant_end =
          id_end == std::string::npos ? std::string::npos
                                      : body.find('\n', id_end + 1);
      if (tenant_end == std::string::npos) {
        return Status::InvalidArgument("QUERYT without body");
      }
      QueryRequest req;
      req.id = std::strtoull(body.substr(0, id_end).c_str(), nullptr, 10);
      req.tenant = body.substr(id_end + 1, tenant_end - id_end - 1);
      req.query_text = body.substr(tenant_end + 1);
      if (req.tenant.empty()) {
        return Status::InvalidArgument("QUERYT with empty tenant");
      }
      if (req.query_text.empty()) {
        return Status::InvalidArgument("QUERYT with empty text");
      }
      return req;
    }
  }
  WEBDEX_ASSIGN_OR_RETURN(std::string rest, ExpectTag(text, "QUERY"));
  const size_t newline = rest.find('\n');
  if (newline == std::string::npos) {
    return Status::InvalidArgument("QUERY without body");
  }
  QueryRequest req;
  req.id = std::strtoull(rest.substr(0, newline).c_str(), nullptr, 10);
  req.query_text = rest.substr(newline + 1);
  if (req.query_text.empty()) {
    return Status::InvalidArgument("QUERY with empty text");
  }
  return req;
}

std::string QueryResponse::Serialize() const {
  // Shed responses carry no result object; regular ones serialize
  // byte-identically to the pre-admission wire format.
  if (shed) {
    return StrFormat("SHED\n%llu", static_cast<unsigned long long>(id));
  }
  return StrFormat("DONE\n%llu\n%llu\n",
                   static_cast<unsigned long long>(id),
                   static_cast<unsigned long long>(row_count)) +
         result_key;
}

Result<QueryResponse> QueryResponse::Parse(const std::string& text) {
  {
    auto rest = ExpectTag(text, "SHED");
    if (rest.ok()) {
      if (rest.value().empty()) {
        return Status::InvalidArgument("SHED without query id");
      }
      QueryResponse resp;
      resp.shed = true;
      resp.id = std::strtoull(rest.value().c_str(), nullptr, 10);
      return resp;
    }
  }
  WEBDEX_ASSIGN_OR_RETURN(std::string rest, ExpectTag(text, "DONE"));
  const auto lines = Split(rest, '\n');
  if (lines.size() < 3) {
    return Status::InvalidArgument("malformed DONE message");
  }
  QueryResponse resp;
  resp.id = std::strtoull(lines[0].c_str(), nullptr, 10);
  resp.row_count = std::strtoull(lines[1].c_str(), nullptr, 10);
  resp.result_key = lines[2];
  if (resp.result_key.empty()) {
    return Status::InvalidArgument("DONE without result key");
  }
  return resp;
}

}  // namespace webdex::engine
