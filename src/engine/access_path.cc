#include "engine/access_path.h"

#include <algorithm>
#include <cmath>

#include "index/key_twig.h"
#include "index/lookup_paths.h"

namespace webdex::engine {

cost::FetchShape MakeFetchShape(const PlannerStats& stats, double docs) {
  cost::FetchShape fetch;
  fetch.docs = docs;
  fetch.avg_doc_bytes =
      stats.documents == 0
          ? 0
          : static_cast<double>(stats.data_bytes) /
                static_cast<double>(stats.documents);
  if (stats.work != nullptr) {
    fetch.work_per_byte = stats.work->parse_per_byte + stats.work->eval_per_byte;
  }
  fetch.instance_ecu =
      stats.spec.ecu_per_core * static_cast<double>(stats.spec.cores);
  fetch.vm_usd_per_hour = stats.vm_usd_per_hour;
  return fetch;
}

LookupAccessPath::LookupAccessPath(std::string name, cloud::KvStore* store,
                                   std::string table,
                                   const query::TreePattern* pattern,
                                   const index::ExtractOptions& options,
                                   const PlannerStats& stats)
    : name_(std::move(name)),
      store_(store),
      table_(std::move(table)),
      pattern_(pattern),
      options_(options),
      stats_(stats),
      twig_(index::BuildKeyTwig(*pattern, options.include_words)) {}

cost::PathEstimate LookupAccessPath::EstimateCost(
    const cost::CostModel& model) const {
  const std::vector<std::string> keys = LookupKeys();

  cost::LookupShape lookup;
  lookup.keys = keys.size();
  lookup.batch_get_limit = store_->BatchGetLimit();
  lookup.min_read_bytes = stats_.min_read_bytes;
  lookup.billing = stats_.billing;
  if (const cloud::Deployment* deploy = stats_.deployment) {
    if (deploy->sharded()) {
      // Batching happens per physical table: price the exact fan-out the
      // sharded store will issue rather than one logical-table ceiling.
      std::vector<uint64_t> per_shard(
          static_cast<size_t>(deploy->spec().shards), 0);
      for (const auto& key : keys) {
        ++per_shard[static_cast<size_t>(deploy->ShardFor(key))];
      }
      const double limit =
          static_cast<double>(std::max(store_->BatchGetLimit(), 1));
      double requests = 0;
      for (uint64_t count : per_shard) {
        if (count > 0) requests += std::ceil(static_cast<double>(count) / limit);
      }
      lookup.requests_override = requests;
    }
    // Queries run against a settled index, so replica reads at half
    // price are the expected case; on-demand swaps the unit price.
    if (deploy->replicated()) lookup.read_price_factor = 0.5;
    lookup.on_demand =
        deploy->spec().capacity == cloud::CapacityMode::kOnDemand;
  }
  // Average stored item size from the store's host-side accounting (free:
  // no simulated request is issued for it).
  const uint64_t item_count = store_->ItemCount(table_);
  lookup.avg_item_bytes =
      item_count == 0 ? 0
                      : static_cast<double>(store_->StoredBytes(table_)) /
                            static_cast<double>(item_count);

  const index::PathSummary* summary = stats_.summary;
  const bool has_summary = summary != nullptr && summary->documents() > 0;
  double docs;
  if (has_summary) {
    // Items per key: roughly one per document containing the key (long ID
    // lists are chunked across items, but the chunk factor is the same for
    // every candidate path against the same corpus).
    double items = 0;
    for (const auto& key : keys) {
      items += static_cast<double>(summary->DocsWithKey(key));
    }
    lookup.est_items = items;
    docs = std::min(EstimateDocs(*summary),
                    static_cast<double>(stats_.documents));
  } else {
    // No statistics yet: assume the worst (every key is in every document
    // and nothing prunes).  All lookup paths then tie on the fetch tail
    // and differ only in index-read cost, which favours the thinner
    // LUP-side table — the paper's measured static default.
    lookup.est_items =
        static_cast<double>(keys.size()) * static_cast<double>(stats_.documents);
    docs = static_cast<double>(stats_.documents);
  }

  return cost::EstimateLookupPath(model, lookup, MakeFetchShape(stats_, docs));
}

std::vector<std::string> LuAccessPath::LookupKeys() const {
  return twig_.DistinctKeys();
}

double LuAccessPath::EstimateDocs(const index::PathSummary& summary) const {
  return static_cast<double>(summary.EstimateLuDocs(*pattern_));
}

Result<PathResult> LuAccessPath::Execute(cloud::SimAgent& agent) const {
  PathResult result;
  WEBDEX_ASSIGN_OR_RETURN(
      std::set<std::string> uris,
      index::LookupByKeys(agent, *store_, table_, twig_, &result.stats,
                          stats_.generations.get()));
  result.uris = index::SortedUris(uris);
  return result;
}

std::vector<std::string> LupAccessPath::LookupKeys() const {
  return index::PathLookupKeys(twig_);
}

double LupAccessPath::EstimateDocs(const index::PathSummary& summary) const {
  return static_cast<double>(summary.EstimateLupDocs(*pattern_));
}

Result<PathResult> LupAccessPath::Execute(cloud::SimAgent& agent) const {
  PathResult result;
  WEBDEX_ASSIGN_OR_RETURN(
      std::set<std::string> uris,
      index::LookupByPaths(agent, *store_, table_, twig_, options_,
                           &result.stats, stats_.generations.get()));
  result.uris = index::SortedUris(uris);
  return result;
}

std::vector<std::string> LuiAccessPath::LookupKeys() const {
  return twig_.DistinctKeys();
}

double LuiAccessPath::EstimateDocs(const index::PathSummary& summary) const {
  // Document-level path statistics cannot see the instance-level
  // correlation the twig join exploits, so any independence-flavoured
  // estimate predicts pruning that often is not there.  Trust the twig
  // join to out-prune the path pre-filter only when the Section 8.5
  // detector flags the pattern (common linear paths, rare co-occurrence);
  // otherwise assume path matching already captures the document-level
  // selectivity, and let the cheaper look-up win the tie.
  const double lu = static_cast<double>(summary.EstimateLuDocs(*pattern_));
  if (summary.AdviseLookup(*pattern_).lookup == index::StrategyKind::kLUI) {
    const double combined =
        std::ceil(summary.EstimateTwigJoinDocs(*pattern_));
    return std::min(lu, std::max(combined, 0.0));
  }
  const double lup = static_cast<double>(summary.EstimateLupDocs(*pattern_));
  return std::min(lu, lup);
}

Result<PathResult> LuiAccessPath::Execute(cloud::SimAgent& agent) const {
  PathResult result;
  WEBDEX_ASSIGN_OR_RETURN(
      std::set<std::string> uris,
      index::LookupByIds(agent, *store_, table_, twig_, nullptr,
                         &result.stats, stats_.generations.get()));
  result.uris = index::SortedUris(uris);
  return result;
}

ScanAccessPath::ScanAccessPath(const std::vector<std::string>* document_uris,
                               const PlannerStats& stats)
    : document_uris_(document_uris), stats_(stats) {}

cost::PathEstimate ScanAccessPath::EstimateCost(
    const cost::CostModel& model) const {
  return cost::EstimateScanPath(
      model, MakeFetchShape(stats_, static_cast<double>(stats_.documents)));
}

Result<PathResult> ScanAccessPath::Execute(cloud::SimAgent&) const {
  PathResult result;
  result.uris = *document_uris_;
  result.scanned = true;
  return result;
}

}  // namespace webdex::engine
