#include "engine/scrubber.h"

#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "common/strings.h"
#include "engine/extraction_pipeline.h"

namespace webdex::engine {
namespace {

/// Items are unique per (table, hash, range): range keys are UUIDs drawn
/// from the per-URI stream, so one key identifies one posting.
struct ItemKey {
  std::string table;
  std::string hash;
  std::string range;

  bool operator<(const ItemKey& o) const {
    return std::tie(table, hash, range) < std::tie(o.table, o.hash, o.range);
  }
  bool operator==(const ItemKey& o) const {
    return std::tie(table, hash, range) == std::tie(o.table, o.hash, o.range);
  }
};

using ItemMap = std::map<ItemKey, cloud::Attributes>;

/// The document URI a stored posting belongs to.  Layout contract
/// (index/strategy.cc BuildEntryItems): every posting carries exactly one
/// attribute beyond the reserved generation stamp, and its *name* is the
/// source document's URI ('~' cannot begin a URI, index/generation.h).
const std::string* OwnerUri(const cloud::Item& item) {
  const std::string* owner = nullptr;
  for (const auto& [name, values] : item.attrs) {
    (void)values;
    if (name == index::kGenAttr) continue;
    if (owner != nullptr) return nullptr;
    owner = &name;
  }
  return owner;
}

}  // namespace

std::string ScrubReport::ToString() const {
  std::string out = StrFormat(
      "scrub: %llu documents, %llu postings scanned\n"
      "  missing: %zu   partial: %zu   orphaned: %zu\n",
      static_cast<unsigned long long>(documents_checked),
      static_cast<unsigned long long>(items_scanned), missing_uris.size(),
      partial_uris.size(), orphaned_uris.size());
  for (const auto& uri : missing_uris) out += "  missing  " + uri + "\n";
  for (const auto& uri : partial_uris) out += "  partial  " + uri + "\n";
  for (const auto& uri : orphaned_uris) out += "  orphaned " + uri + "\n";
  if (repaired_uris > 0 || items_put > 0 || items_deleted > 0) {
    out += StrFormat(
        "  repaired %llu URIs (%llu items put, %llu deleted)\n",
        static_cast<unsigned long long>(repaired_uris),
        static_cast<unsigned long long>(items_put),
        static_cast<unsigned long long>(items_deleted));
  } else if (Clean()) {
    out += "  index is clean\n";
  }
  return out;
}

Scrubber::Scrubber(cloud::CloudEnv* env, cloud::KvStore* store,
                   const index::IndexingStrategy* strategy,
                   const index::ExtractOptions& options,
                   std::string data_bucket)
    : env_(env),
      store_(store),
      strategy_(strategy),
      options_(options),
      data_bucket_(std::move(data_bucket)) {}

Result<ScrubReport> Scrubber::Run(cloud::SimAgent& agent, bool repair,
                                  const index::GenerationMap* view) {
  ScrubReport report;

  // Billed walk of every index table, grouping postings by owning URI.
  std::map<std::string, ItemMap> stored_by_uri;
  for (const auto& table : strategy_->TableNames()) {
    WEBDEX_ASSIGN_OR_RETURN(std::vector<cloud::Item> items,
                            store_->Scan(agent, table));
    report.items_scanned += items.size();
    for (auto& item : items) {
      const std::string* uri = OwnerUri(item);
      // A posting that violates the one-attribute layout belongs to no
      // document; treat it as orphaned garbage under its own key.
      const std::string owner = uri != nullptr ? *uri : std::string();
      stored_by_uri[owner][ItemKey{table, item.hash_key, item.range_key}] =
          std::move(item.attrs);
    }
  }

  // Re-extract every document in the bucket (billed fetches) and compare
  // with what the index actually holds.
  WEBDEX_ASSIGN_OR_RETURN(std::vector<std::string> uris,
                          env_->s3().List(agent, data_bucket_, ""));
  std::set<std::string> documents(uris.begin(), uris.end());
  for (const auto& uri : uris) {
    report.documents_checked += 1;
    const index::GenerationInfo* info =
        view != nullptr ? view->Find(uri) : nullptr;
    // A tombstoned document must never be repaired back into the index —
    // its object always lingers until compaction reclaims it; both
    // belong to the Compactor.
    if (info != nullptr && info->tombstoned) continue;
    const uint64_t live_gen = info != nullptr ? info->generation : 0;
    WEBDEX_ASSIGN_OR_RETURN(std::string text,
                            env_->s3().Get(agent, data_bucket_, uri));
    // Audit the document at its live generation: the re-extraction draws
    // the generation's own UUID stream, so expected and committed items
    // agree byte for byte.
    index::ExtractOptions options = options_;
    options.generation = live_gen;
    ExtractionResult extraction = ExtractionPipeline::ExtractNow(
        uri, text, *strategy_, options, *store_, env_->config().seed);
    ItemMap expected;
    if (extraction.status.ok()) {
      for (const auto& table_items : extraction.items) {
        for (const auto& item : table_items.items) {
          expected[ItemKey{table_items.table, item.hash_key,
                           item.range_key}] = item.attrs;
        }
      }
    }
    // Unparseable (poison) documents expect no postings at all.  Only
    // postings stamped at the live generation are compared: superseded
    // generations are pending history for the Compactor, not damage.
    auto stored_it = stored_by_uri.find(uri);
    const ItemMap empty;
    const ItemMap& stored_all =
        stored_it == stored_by_uri.end() ? empty : stored_it->second;
    ItemMap stored;
    for (const auto& [key, attrs] : stored_all) {
      if (index::StampOf(attrs) == live_gen) stored[key] = attrs;
    }
    if (stored == expected) continue;
    if (stored.empty()) {
      report.missing_uris.push_back(uri);
    } else {
      report.partial_uris.push_back(uri);
    }
    if (!repair) continue;
    // Idempotent repair: re-put the full expected set (committed items
    // are replaced byte-identically thanks to the deterministic per-URI
    // UUID streams), then delete stale postings the re-extraction does
    // not produce.
    std::map<std::string, std::vector<cloud::Item>> puts;
    for (const auto& table_items : extraction.items) {
      for (const auto& item : table_items.items) {
        puts[table_items.table].push_back(item);
      }
    }
    for (auto& [table, items] : puts) {
      WEBDEX_RETURN_IF_ERROR(store_->BatchPut(agent, table, items));
      report.items_put += items.size();
    }
    for (const auto& [key, attrs] : stored) {
      (void)attrs;
      if (expected.count(key) > 0) continue;
      WEBDEX_RETURN_IF_ERROR(
          store_->DeleteItem(agent, key.table, key.hash, key.range));
      report.items_deleted += 1;
    }
    report.repaired_uris += 1;
  }

  // Postings whose document is gone from the bucket.  Tombstoned
  // documents are expected to be gone — their postings await collection
  // by the Compactor, so a scrub neither flags nor deletes them.
  for (const auto& [uri, items] : stored_by_uri) {
    if (documents.count(uri) > 0) continue;
    const index::GenerationInfo* info =
        view != nullptr ? view->Find(uri) : nullptr;
    if (info != nullptr && info->tombstoned) continue;
    report.orphaned_uris.push_back(uri);
    if (!repair) continue;
    for (const auto& [key, attrs] : items) {
      (void)attrs;
      WEBDEX_RETURN_IF_ERROR(
          store_->DeleteItem(agent, key.table, key.hash, key.range));
      report.items_deleted += 1;
    }
    report.repaired_uris += 1;
  }

  env_->meter().mutable_usage().scrub_repaired += report.repaired_uris;
  return report;
}

}  // namespace webdex::engine
