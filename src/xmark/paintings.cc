#include "xmark/paintings.h"

#include <map>

#include "common/rng.h"
#include "common/strings.h"
#include "xml/serializer.h"

namespace webdex::xmark {
namespace {

using xml::Node;
using xml::NodeKind;

struct Painter {
  const char* first;
  const char* last;
};

const Painter kPainters[] = {
    {"Eugene", "Delacroix"}, {"Edouard", "Manet"},   {"Claude", "Monet"},
    {"Berthe", "Morisot"},   {"Camille", "Pissarro"}, {"Gustave", "Courbet"},
    {"Edgar", "Degas"},      {"Paul", "Cezanne"},     {"Mary", "Cassatt"},
    {"Alfred", "Sisley"}};

// "Lion" is deliberately absent: only painting #0 ("The Lion Hunt")
// matches contains(Lion), making q3 a point query as in the paper.
const char* kSubjects[] = {"Meadow", "Harbor", "Garden", "Bridge", "River",
                           "Winter", "Dancer", "Portrait", "Cliff", "Poppy"};

const char* kKinds[] = {"Hunt", "Scene", "Study", "Morning", "Evening"};

const char* kMuseums[] = {"Louvre",  "Orsay",   "Prado",
                          "Uffizi",  "Hermitage", "Rijksmuseum",
                          "National", "Metropolitan"};

const char* Pick(Rng& rng) {
  return kSubjects[rng.NextBelow(std::size(kSubjects))];
}
const char* PickKind(Rng& rng) {
  return kKinds[rng.NextBelow(std::size(kKinds))];
}

std::string BuildPainting(int index, Rng& rng, std::map<int, int>* per_year,
                          std::string* id_out) {
  const Painter& painter =
      kPainters[static_cast<size_t>(index) % std::size(kPainters)];
  int year;
  std::string name;
  if (index == 0) {
    year = 1854;
    name = "The Lion Hunt";
  } else if (index == 1) {
    year = 1863;
    name = "Olympia";
  } else {
    year = static_cast<int>(rng.NextInRange(1840, 1900));
    name = StrFormat("The %s %s", Pick(rng), PickKind(rng));
  }
  // Paper Figure 3 ids are year-scoped counters: "1854-1", "1863-1".
  const int ordinal = ++(*per_year)[year];
  const std::string id = StrFormat("%d-%d", year, ordinal);
  *id_out = id;
  auto painting = std::make_unique<Node>(NodeKind::kElement, "painting");
  painting->AddAttribute("id", id);
  painting->AddElement("name")->AddText(name);
  Node* painter_el = painting->AddElement("painter");
  Node* pname = painter_el->AddElement("name");
  pname->AddElement("first")->AddText(painter.first);
  pname->AddElement("last")->AddText(painter.last);
  painting->AddElement("year")->AddText(StrFormat("%d", year));
  painting->AddElement("description")
      ->AddText(StrFormat("A %s oil on canvas painted in %d",
                          index % 2 == 0 ? "celebrated" : "striking", year));
  return xml::Serialize(*painting);
}

}  // namespace

std::vector<GeneratedDocument> Figure3Documents() {
  std::vector<GeneratedDocument> docs(2);
  docs[0].uri = "delacroix.xml";
  docs[0].text =
      "<painting id=\"1854-1\">"
      "<name>The Lion Hunt</name>"
      "<painter><name><first>Eugene</first><last>Delacroix</last></name>"
      "</painter></painting>";
  docs[1].uri = "manet.xml";
  docs[1].text =
      "<painting id=\"1863-1\">"
      "<name>Olympia</name>"
      "<painter><name><first>Edouard</first><last>Manet</last></name>"
      "</painter></painting>";
  return docs;
}

std::vector<GeneratedDocument> GeneratePaintings(
    const PaintingsConfig& config) {
  Rng rng(config.seed);
  std::vector<GeneratedDocument> docs;
  std::vector<std::string> painting_ids;
  std::map<int, int> per_year;
  for (int i = 0; i < config.num_paintings; ++i) {
    GeneratedDocument doc;
    std::string id;
    doc.text = BuildPainting(i, rng, &per_year, &id);
    doc.uri = StrFormat("painting-%03d.xml", i);
    painting_ids.push_back(id);
    docs.push_back(std::move(doc));
  }
  for (int m = 0; m < config.num_museums; ++m) {
    auto museum = std::make_unique<Node>(NodeKind::kElement, "museum");
    museum->AddElement("name")->AddText(
        StrFormat("%s Museum",
                  kMuseums[static_cast<size_t>(m) % std::size(kMuseums)]));
    museum->AddElement("city")->AddText(m % 2 == 0 ? "Paris" : "Genoa");
    // Each museum exposes a slice of the paintings (with overlap).
    for (size_t p = static_cast<size_t>(m); p < painting_ids.size();
         p += static_cast<size_t>(config.num_museums)) {
      museum->AddElement("painting")->AddAttribute("id", painting_ids[p]);
    }
    GeneratedDocument doc;
    doc.uri = StrFormat("museum-%02d.xml", m);
    doc.text = xml::Serialize(*museum);
    docs.push_back(std::move(doc));
  }
  return docs;
}

}  // namespace webdex::xmark
