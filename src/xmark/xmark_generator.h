#ifndef WEBDEX_XMARK_XMARK_GENERATOR_H_
#define WEBDEX_XMARK_XMARK_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "xml/dom.h"

namespace webdex::xmark {

/// Knobs of the synthetic corpus.
///
/// The paper's evaluation corpus (Section 8.1) was produced by the XMark
/// generator's split option (20,000 documents, 40 GB total), then made
/// heterogeneous: one fraction of documents had their *path structure*
/// altered (labels preserved), another fraction had normally-compulsory
/// elements turned optional.  These two mutations are what give the
/// indexing strategies different selectivities, so we reproduce both.
struct GeneratorConfig {
  /// Number of documents in the corpus.
  int num_documents = 1000;
  /// Approximate size knob: expected top-level entities (items, people,
  /// auctions) per document.  ~12 yields documents of roughly 8-10 KB;
  /// the paper's 2 MB average corresponds to ~2500.
  int entities_per_document = 12;
  /// Fraction of documents whose path structure is altered (labels kept).
  double path_mutation_fraction = 0.2;
  /// Fraction of documents rendered "more heterogeneous": elements that
  /// XMark makes compulsory are dropped at random.
  double optional_mutation_fraction = 0.2;
  /// Probability that any individual optional element is dropped inside a
  /// mutated document.
  double drop_probability = 0.45;
  /// Split mode, mirroring the XMark generator's split option the paper
  /// used (Section 8.1): each document is a *fragment* holding a single
  /// section of the auction site (a region's items, or people, or open /
  /// closed auctions, or categories) instead of a miniature full site.
  /// Fragments are what give queries document-level selectivity.
  bool split_sections = false;
  uint64_t seed = 20130318;  // EDBT 2013 opening day
};

/// One generated document, ready for upload to the file store.
struct GeneratedDocument {
  std::string uri;   // e.g. "xmark-000042.xml"
  std::string text;  // serialized XML
};

/// Generates the XMark-style auction corpus (site / regions / items /
/// people / open and closed auctions / categories), deterministically
/// from the config seed.
class XmarkGenerator {
 public:
  explicit XmarkGenerator(const GeneratorConfig& config);

  /// Generates document number `index` (0-based).  Any index can be
  /// produced independently and reproducibly.
  GeneratedDocument Generate(int index) const;

  /// Generates the whole corpus.
  std::vector<GeneratedDocument> GenerateAll() const;

  /// Builds the DOM (with structural IDs) instead of text, for tests.
  xml::Document GenerateDom(int index) const;

  const GeneratorConfig& config() const { return config_; }

  /// The closed vocabulary used for all prose; exposed so workloads can
  /// pick `contains(word)` constants with known selectivities.
  static const std::vector<std::string>& Vocabulary();

 private:
  GeneratorConfig config_;
};

}  // namespace webdex::xmark

#endif  // WEBDEX_XMARK_XMARK_GENERATOR_H_
