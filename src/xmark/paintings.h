#ifndef WEBDEX_XMARK_PAINTINGS_H_
#define WEBDEX_XMARK_PAINTINGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xmark/xmark_generator.h"

namespace webdex::xmark {

/// Generator for the paper's running example corpus (Figures 2 and 3):
/// painting documents ("delacroix.xml", "manet.xml", ...) holding
///   painting(@id, name, painter(name(first, last)), year, description)
/// and museum documents holding
///   museum(name, city, painting(@id)*)
/// whose painting/@id values join against the painting documents —
/// exactly the shape query q5 needs.
struct PaintingsConfig {
  int num_paintings = 40;
  int num_museums = 6;
  uint64_t seed = 1863;  // Olympia
};

/// Returns the two documents of the paper's Figure 3 verbatim
/// ("delacroix.xml" and "manet.xml"); handy for doc examples and tests.
std::vector<GeneratedDocument> Figure3Documents();

/// Returns a deterministic corpus per `config`.  Painting #0 is always
/// Delacroix's "The Lion Hunt" (1854) and painting #1 Manet's "Olympia"
/// (1863), so the paper's queries q1-q5 all have non-empty answers.
std::vector<GeneratedDocument> GeneratePaintings(
    const PaintingsConfig& config = {});

}  // namespace webdex::xmark

#endif  // WEBDEX_XMARK_PAINTINGS_H_
