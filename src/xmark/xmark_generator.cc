#include "xmark/xmark_generator.h"

#include <cmath>

#include "common/strings.h"
#include "xml/serializer.h"

namespace webdex::xmark {
namespace {

using xml::Node;
using xml::NodeKind;

const char* kRegions[] = {"africa",   "asia",     "australia",
                          "europe",   "namerica", "samerica"};

const char* kFirstNames[] = {
    "Edouard", "Eugene",  "Claude",  "Berthe",  "Camille", "Gustave",
    "Henri",   "Paul",    "Mary",    "Edgar",   "Pierre",  "Alfred",
    "Frederic","Vincent", "Georges", "Odilon",  "Suzanne", "Marie",
    "Jean",    "Auguste", "Rosa",    "Leon",    "Felix",   "Armand"};

const char* kLastNames[] = {
    "Manet",    "Delacroix", "Monet",   "Morisot",  "Pissarro", "Courbet",
    "Matisse",  "Cezanne",   "Cassatt", "Degas",    "Renoir",   "Sisley",
    "Bazille",  "Gogh",      "Seurat",  "Redon",    "Valadon",  "Laurencin",
    "Ingres",   "Rodin",     "Bonheur", "Bonnat",   "Vallotton","Guillaumin"};

const char* kCities[] = {"Paris",  "Genoa",  "Lyon",    "Tokyo", "Sydney",
                         "Lagos",  "Lima",   "Boston",  "Delhi", "Cairo",
                         "Turin",  "Oslo",   "Quito",   "Accra", "Kyoto"};

const char* kCountries[] = {"France", "Italy", "Japan",  "Australia",
                            "Nigeria", "Peru",  "UnitedStates", "India",
                            "Egypt",  "Norway", "Ecuador", "Ghana"};

// Closed prose vocabulary.  Ordered from common to rare; the quadratic
// skew in PickWord makes late entries genuinely rare, giving workload
// designers `contains` constants of known selectivity (e.g. "gloaming").
const char* kVocabulary[] = {
    "the",      "and",      "of",        "with",     "for",      "from",
    "auction",  "item",     "offer",     "price",    "great",    "good",
    "quality",  "ship",     "world",     "buyer",    "seller",   "market",
    "trade",    "gold",     "silver",    "wood",     "stone",    "glass",
    "canvas",   "paint",    "brush",     "color",    "light",    "shadow",
    "portrait", "landscape","river",     "garden",   "harbor",   "bridge",
    "winter",   "summer",   "spring",    "autumn",   "morning",  "evening",
    "ancient",  "modern",   "rare",      "fine",     "grand",    "small",
    "large",    "painted",  "carved",    "woven",    "printed",  "signed",
    "dated",    "framed",   "restored",  "original", "copy",     "master",
    "school",   "studio",   "gallery",   "museum",   "estate",   "private",
    "lion",     "horse",    "eagle",     "serpent",  "olive",    "laurel",
    "marble",   "bronze",   "ivory",     "amber",    "velvet",   "silk",
    "merchant", "voyage",   "caravan",   "compass",  "lantern",  "anchor",
    "scarlet",  "azure",    "emerald",   "crimson",  "ochre",    "umber",
    "sonnet",   "ballad",   "fresco",    "etching",  "gouache",  "pastel",
    "tempest",  "zephyr",   "aurora",    "eclipse",  "meridian", "solstice",
    "labyrinth","obelisk",  "citadel",   "bastion",  "rampart",  "parapet",
    "gossamer", "filigree", "arabesque", "chiaroscuro", "palimpsest",
    "gloaming", "susurrus", "petrichor", "halcyon",  "vellichor"};

constexpr size_t kVocabularySize =
    sizeof(kVocabulary) / sizeof(kVocabulary[0]);

template <size_t N>
const char* Pick(Rng& rng, const char* (&table)[N]) {
  return table[rng.NextBelow(N)];
}

// Two-tier skew: 85% of draws come from the 30 most common entries, the
// rest uniformly from the whole vocabulary.  This keeps rare words
// genuinely rare (~0.14% of draws each), so full-text predicates have
// document-level selectivity even on fragment documents.
const char* PickWord(Rng& rng) {
  if (rng.NextBool(0.85)) {
    return kVocabulary[rng.NextBelow(30)];
  }
  return kVocabulary[rng.NextBelow(kVocabularySize)];
}

std::string Sentence(Rng& rng, int min_words, int max_words) {
  const int n = static_cast<int>(rng.NextInRange(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out.push_back(' ');
    out.append(PickWord(rng));
  }
  return out;
}

std::string DateString(Rng& rng) {
  return StrFormat("%02lld/%02lld/%lld", (long long)rng.NextInRange(1, 12),
                   (long long)rng.NextInRange(1, 28),
                   (long long)rng.NextInRange(1998, 2003));
}

/// Builder for one document; holds the per-document deterministic stream
/// and the global entity-count context used for cross-document
/// references (value joins resolve across documents, Section 5.5).
class DocBuilder {
 public:
  DocBuilder(const GeneratorConfig& config, int index, Rng rng)
      : config_(config),
        index_(index),
        rng_(std::move(rng)),
        mutate_paths_(rng_.NextBool(config.path_mutation_fraction)),
        mutate_optionals_(rng_.NextBool(config.optional_mutation_fraction)) {
    total_items_ = static_cast<long long>(config.num_documents) *
                   std::max(1, config.entities_per_document / 3);
    total_people_ = total_items_;
    total_auctions_ = std::max<long long>(
        1, static_cast<long long>(config.num_documents) *
               std::max(1, config.entities_per_document / 6));
  }

  std::unique_ptr<Node> Build() {
    auto site = std::make_unique<Node>(NodeKind::kElement, "site");
    const int entities = std::max(2, config_.entities_per_document);
    if (config_.split_sections) {
      // Fragment document: one section only, like XMark's split output.
      // Weights approximate the share each section has of a full XMark
      // document.
      const size_t kind =
          rng_.NextWeighted({0.35, 0.25, 0.20, 0.15, 0.05});
      switch (kind) {
        case 0:
          BuildRegions(site.get(), entities);
          break;
        case 1:
          BuildPeople(site.get(), entities);
          break;
        case 2:
          BuildOpenAuctions(site.get(), entities);
          break;
        case 3:
          BuildClosedAuctions(site.get(), entities);
          break;
        default:
          BuildCategories(site.get(), std::max(2, entities / 2));
          break;
      }
      return site;
    }
    BuildRegions(site.get(), std::max(1, entities / 3));
    BuildPeople(site.get(), std::max(1, entities / 3));
    BuildOpenAuctions(site.get(), std::max(1, entities / 6));
    BuildClosedAuctions(site.get(), std::max(1, entities / 6));
    BuildCategories(site.get(), 2);
    return site;
  }

 private:
  // True when this (mutated-optionals) document drops an optional child.
  bool Drop() {
    return mutate_optionals_ && rng_.NextBool(config_.drop_probability);
  }

  std::string GlobalItemId(long long n) { return StrFormat("item%lld", n); }
  std::string GlobalPersonId(long long n) {
    return StrFormat("person%lld", n);
  }
  std::string GlobalAuctionId(long long n) {
    return StrFormat("open_auction%lld", n);
  }

  long long LocalOrdinal(int i, long long per_doc_share) {
    // Entities this document "owns" occupy a deterministic slice of the
    // global ID space, so references from other documents can hit them.
    return static_cast<long long>(index_) * per_doc_share + i;
  }

  void BuildRegions(Node* site, int item_count) {
    Node* regions = site->AddElement("regions");
    Node* region = regions->AddElement(Pick(rng_, kRegions));
    const long long share =
        std::max(1, config_.entities_per_document / 3);
    for (int i = 0; i < item_count; ++i) {
      Node* item = region->AddElement("item");
      item->AddAttribute("id",
                         GlobalItemId(LocalOrdinal(i, share) % total_items_));
      if (!Drop()) {
        Node* location = item->AddElement("location");
        location->AddText(Pick(rng_, kCities));
      }
      if (!Drop()) {
        item->AddElement("quantity")
            ->AddText(StrFormat("%lld", (long long)rng_.NextInRange(1, 10)));
      }
      // Path mutation: `name` nested under `description` instead of being
      // a direct child of `item` (labels preserved, path changed).
      Node* name_parent = item;
      Node* description = item->AddElement("description");
      if (mutate_paths_) name_parent = description;
      name_parent->AddElement("name")->AddText(Sentence(rng_, 2, 4));
      description->AddText(Sentence(rng_, 8, 30));
      if (!Drop()) {
        item->AddElement("payment")->AddText(Sentence(rng_, 1, 3));
      }
      if (!Drop()) {
        item->AddElement("shipping")->AddText(Sentence(rng_, 1, 4));
      }
      const int categories = static_cast<int>(rng_.NextInRange(1, 3));
      for (int c = 0; c < categories; ++c) {
        item->AddElement("incategory")
            ->AddAttribute("category",
                           StrFormat("category%lld",
                                     (long long)rng_.NextInRange(0, 99)));
      }
      if (!Drop()) {
        Node* mail_parent = item;
        if (!mutate_paths_) {
          mail_parent = item->AddElement("mailbox");
        }
        // Path mutation: mails attach directly under item.
        const int mails = static_cast<int>(rng_.NextInRange(0, 3));
        for (int m = 0; m < mails; ++m) {
          Node* mail = mail_parent->AddElement("mail");
          mail->AddElement("from")->AddText(
              StrFormat("%s %s", Pick(rng_, kFirstNames),
                        Pick(rng_, kLastNames)));
          mail->AddElement("to")->AddText(
              StrFormat("%s %s", Pick(rng_, kFirstNames),
                        Pick(rng_, kLastNames)));
          mail->AddElement("date")->AddText(DateString(rng_));
          mail->AddElement("text")->AddText(Sentence(rng_, 4, 16));
        }
      }
    }
  }

  void BuildPeople(Node* site, int person_count) {
    Node* people = site->AddElement("people");
    const long long share =
        std::max(1, config_.entities_per_document / 3);
    for (int i = 0; i < person_count; ++i) {
      Node* person = people->AddElement("person");
      person->AddAttribute(
          "id", GlobalPersonId(LocalOrdinal(i, share) % total_people_));
      Node* name = person->AddElement("name");
      name->AddText(StrFormat("%s %s", Pick(rng_, kFirstNames),
                              Pick(rng_, kLastNames)));
      person->AddElement("emailaddress")
          ->AddText(StrFormat("mailto:user%lld@auction.example",
                              (long long)rng_.NextInRange(0, 99999)));
      if (!Drop()) {
        person->AddElement("phone")->AddText(
            StrFormat("+%lld (%lld) %lld", (long long)rng_.NextInRange(1, 99),
                      (long long)rng_.NextInRange(100, 999),
                      (long long)rng_.NextInRange(1000000, 9999999)));
      }
      if (!Drop()) {
        Node* address = person->AddElement("address");
        address->AddElement("street")
            ->AddText(StrFormat("%lld %s St",
                                (long long)rng_.NextInRange(1, 99),
                                PickWord(rng_)));
        // Path mutation: city directly under person, not under address.
        Node* city_parent = mutate_paths_ ? person : address;
        city_parent->AddElement("city")->AddText(Pick(rng_, kCities));
        address->AddElement("country")->AddText(Pick(rng_, kCountries));
        address->AddElement("zipcode")
            ->AddText(StrFormat("%lld", (long long)rng_.NextInRange(10000,
                                                                    99999)));
      }
      if (!Drop()) {
        person->AddElement("homepage")
            ->AddText(StrFormat("http://example.org/~user%lld",
                                (long long)rng_.NextInRange(0, 99999)));
      }
      if (!Drop()) {
        person->AddElement("creditcard")
            ->AddText(StrFormat("%lld %lld %lld %lld",
                                (long long)rng_.NextInRange(1000, 9999),
                                (long long)rng_.NextInRange(1000, 9999),
                                (long long)rng_.NextInRange(1000, 9999),
                                (long long)rng_.NextInRange(1000, 9999)));
      }
      Node* profile = person->AddElement("profile");
      profile->AddAttribute(
          "income",
          StrFormat("%.2f", 20000 + rng_.NextDouble() * 80000));
      const int interests = static_cast<int>(rng_.NextInRange(0, 3));
      for (int c = 0; c < interests; ++c) {
        profile->AddElement("interest")->AddAttribute(
            "category",
            StrFormat("category%lld", (long long)rng_.NextInRange(0, 99)));
      }
      if (!Drop()) {
        profile->AddElement("education")->AddText(
            rng_.NextBool(0.5) ? "Graduate School" : "College");
      }
      if (!Drop()) {
        profile->AddElement("gender")->AddText(
            rng_.NextBool(0.5) ? "male" : "female");
      }
      if (!Drop()) {
        profile->AddElement("age")->AddText(
            StrFormat("%lld", (long long)rng_.NextInRange(18, 80)));
      }
      const int watches = static_cast<int>(rng_.NextInRange(0, 2));
      if (watches > 0) {
        Node* watchlist = person->AddElement("watches");
        for (int w = 0; w < watches; ++w) {
          watchlist->AddElement("watch")->AddAttribute(
              "open_auction",
              GlobalAuctionId(
                  (long long)rng_.NextBelow(
                      static_cast<uint64_t>(total_auctions_))));
        }
      }
    }
  }

  void AddAnnotation(Node* parent) {
    Node* annotation = parent->AddElement("annotation");
    annotation->AddElement("author")->AddAttribute(
        "person", GlobalPersonId((long long)rng_.NextBelow(
                      static_cast<uint64_t>(total_people_))));
    annotation->AddElement("description")->AddText(Sentence(rng_, 5, 20));
    annotation->AddElement("happiness")
        ->AddText(StrFormat("%lld", (long long)rng_.NextInRange(1, 10)));
  }

  void BuildOpenAuctions(Node* site, int count) {
    Node* auctions = site->AddElement("open_auctions");
    const long long share =
        std::max(1, config_.entities_per_document / 6);
    for (int i = 0; i < count; ++i) {
      Node* auction = auctions->AddElement("open_auction");
      auction->AddAttribute(
          "id", GlobalAuctionId(LocalOrdinal(i, share) % total_auctions_));
      auction->AddElement("initial")->AddText(
          StrFormat("%.2f", 10 + rng_.NextDouble() * 300));
      if (!Drop()) {
        auction->AddElement("reserve")
            ->AddText(StrFormat("%.2f", 50 + rng_.NextDouble() * 1000));
      }
      const int bidders = static_cast<int>(rng_.NextInRange(0, 4));
      for (int b = 0; b < bidders; ++b) {
        Node* bidder = auction->AddElement("bidder");
        bidder->AddElement("date")->AddText(DateString(rng_));
        bidder->AddElement("time")->AddText(
            StrFormat("%02lld:%02lld:%02lld",
                      (long long)rng_.NextInRange(0, 23),
                      (long long)rng_.NextInRange(0, 59),
                      (long long)rng_.NextInRange(0, 59)));
        bidder->AddElement("personref")
            ->AddAttribute("person",
                           GlobalPersonId((long long)rng_.NextBelow(
                               static_cast<uint64_t>(total_people_))));
        bidder->AddElement("increase")
            ->AddText(StrFormat("%.2f", 1 + rng_.NextDouble() * 50));
      }
      if (!Drop()) {
        auction->AddElement("current")
            ->AddText(StrFormat("%.2f", 10 + rng_.NextDouble() * 2000));
      }
      if (!Drop()) auction->AddElement("privacy")->AddText("Yes");
      // Path mutation: itemref under annotation instead of the auction.
      Node* itemref_parent = auction;
      auction->AddElement("seller")->AddAttribute(
          "person", GlobalPersonId((long long)rng_.NextBelow(
                        static_cast<uint64_t>(total_people_))));
      AddAnnotation(auction);
      if (mutate_paths_) {
        itemref_parent = auction->children().back().get();  // annotation
      }
      itemref_parent->AddElement("itemref")->AddAttribute(
          "item", GlobalItemId((long long)rng_.NextBelow(
                      static_cast<uint64_t>(total_items_))));
      auction->AddElement("quantity")
          ->AddText(StrFormat("%lld", (long long)rng_.NextInRange(1, 10)));
      auction->AddElement("type")->AddText(
          rng_.NextBool(0.5) ? "Regular" : "Featured");
      if (!Drop()) {
        Node* interval = auction->AddElement("interval");
        interval->AddElement("start")->AddText(DateString(rng_));
        interval->AddElement("end")->AddText(DateString(rng_));
      }
    }
  }

  void BuildClosedAuctions(Node* site, int count) {
    Node* auctions = site->AddElement("closed_auctions");
    for (int i = 0; i < count; ++i) {
      Node* auction = auctions->AddElement("closed_auction");
      auction->AddElement("seller")->AddAttribute(
          "person", GlobalPersonId((long long)rng_.NextBelow(
                        static_cast<uint64_t>(total_people_))));
      auction->AddElement("buyer")->AddAttribute(
          "person", GlobalPersonId((long long)rng_.NextBelow(
                        static_cast<uint64_t>(total_people_))));
      auction->AddElement("itemref")->AddAttribute(
          "item", GlobalItemId((long long)rng_.NextBelow(
                      static_cast<uint64_t>(total_items_))));
      auction->AddElement("price")->AddText(
          StrFormat("%.2f", 10 + rng_.NextDouble() * 5000));
      auction->AddElement("date")->AddText(DateString(rng_));
      auction->AddElement("quantity")
          ->AddText(StrFormat("%lld", (long long)rng_.NextInRange(1, 10)));
      auction->AddElement("type")->AddText(
          rng_.NextBool(0.5) ? "Regular" : "Featured");
      if (!Drop()) AddAnnotation(auction);
    }
  }

  void BuildCategories(Node* site, int count) {
    Node* categories = site->AddElement("categories");
    for (int i = 0; i < count; ++i) {
      Node* category = categories->AddElement("category");
      category->AddAttribute(
          "id", StrFormat("category%lld", (long long)rng_.NextInRange(0, 99)));
      category->AddElement("name")->AddText(Sentence(rng_, 1, 2));
      category->AddElement("description")->AddText(Sentence(rng_, 4, 12));
    }
  }

  const GeneratorConfig& config_;
  int index_;
  Rng rng_;
  bool mutate_paths_;
  bool mutate_optionals_;
  long long total_items_ = 1;
  long long total_people_ = 1;
  long long total_auctions_ = 1;
};

}  // namespace

XmarkGenerator::XmarkGenerator(const GeneratorConfig& config)
    : config_(config) {}

const std::vector<std::string>& XmarkGenerator::Vocabulary() {
  static const std::vector<std::string>* vocab = [] {
    auto* v = new std::vector<std::string>;
    for (const char* w : kVocabulary) v->push_back(w);
    return v;
  }();
  return *vocab;
}

xml::Document XmarkGenerator::GenerateDom(int index) const {
  Rng rng(config_.seed ^
          (static_cast<uint64_t>(index) * 0x9E3779B97F4A7C15ULL + 1));
  DocBuilder builder(config_, index, std::move(rng));
  std::unique_ptr<Node> root = builder.Build();
  std::string uri = StrFormat("xmark-%06d.xml", index);
  // Compute serialized size for the document's size metric.
  const std::string text = xml::Serialize(*root);
  xml::Document doc(std::move(uri), std::move(root), text.size());
  doc.AssignIds();
  return doc;
}

GeneratedDocument XmarkGenerator::Generate(int index) const {
  Rng rng(config_.seed ^
          (static_cast<uint64_t>(index) * 0x9E3779B97F4A7C15ULL + 1));
  DocBuilder builder(config_, index, std::move(rng));
  std::unique_ptr<Node> root = builder.Build();
  GeneratedDocument out;
  out.uri = StrFormat("xmark-%06d.xml", index);
  out.text = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  out.text += xml::Serialize(*root);
  return out;
}

std::vector<GeneratedDocument> XmarkGenerator::GenerateAll() const {
  std::vector<GeneratedDocument> docs;
  docs.reserve(static_cast<size_t>(config_.num_documents));
  for (int i = 0; i < config_.num_documents; ++i) {
    docs.push_back(Generate(i));
  }
  return docs;
}

}  // namespace webdex::xmark
