#ifndef WEBDEX_COMMON_METRICS_H_
#define WEBDEX_COMMON_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace webdex::common {

/// Checks a metric name against the documented grammar
/// (docs/OBSERVABILITY.md):
///
///   name    := segment ('.' segment)+        -- at least two segments
///   segment := [a-z0-9_]+                    -- first segment starts [a-z]
///
/// Examples: `service.s3.get.latency_us`, `planner.estimate_error_ratio`.
bool ValidMetricName(std::string_view name);

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// Last-value (or accumulated-double) metric.  `Add` exists for cumulative
/// fractional quantities such as DynamoDB capacity units.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  double value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  double value_ = 0;
};

/// Fixed log-bucketed histogram over virtual-time latencies and dollar
/// costs.  Buckets are powers of two: bucket 0 collects v <= 2^-31
/// (including zero and negatives), bucket i in [1, 63] collects
/// (2^(i-32), 2^(i-31)].  The layout is fixed, so histograms merge by
/// bucket-wise addition and every operation is deterministic — no
/// rescaling, no floating-point accumulation order dependence in the
/// bucket counts.  Exact count/sum/min/max ride along for cheap summary
/// statistics; quantiles interpolate to a bucket upper bound clamped to
/// the observed [min, max].
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Record(double v);
  /// Records `n` samples of value `v` in O(1) — what publishers of
  /// pre-aggregated distributions (e.g. the interner's probe-length
  /// counts) use to rebuild a histogram without n Record calls.
  void RecordN(double v, uint64_t n);
  void Merge(const Histogram& o);
  void Reset() { *this = Histogram(); }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / double(count_); }
  uint64_t bucket_count(int i) const { return buckets_[i]; }

  /// Quantile estimate for q in [0, 1]: the upper bound of the bucket
  /// holding the ceil(q * count)-th smallest sample, clamped to
  /// [min, max].  Error is at most one power-of-two bucket.
  double Quantile(double q) const;

  /// Bucket index for a value (0..63) and a bucket's exclusive upper
  /// bound; exposed for tests and the Prometheus exposition.
  static int BucketIndex(double v);
  static double BucketUpperBound(int i);

 private:
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Process-wide registry of named metrics with hierarchical dot-separated
/// names.  Names are validated against the grammar above at registration;
/// an invalid name or a type clash aborts — both are programming errors
/// that tools/trace_lint.py would otherwise only catch downstream.
///
/// Thread-safety: same contract as UsageMeter — registration and
/// recording happen only on the simulation event-loop thread, so the
/// registry carries no locks and serial vs host_threads=8 runs meter
/// identically.  Host-parallel extraction threads never record.
/// Registration returns stable pointers (metrics are never removed,
/// only Reset).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Read-side lookups for tooling; null / zero when unregistered.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;
  uint64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;

  /// All registered names, sorted (map order).
  std::vector<std::string> Names() const;

  /// Prometheus text exposition: dots become underscores under a
  /// `webdex_` prefix, histograms emit cumulative `_bucket{le=...}`
  /// lines plus `_sum` / `_count` (docs/OBSERVABILITY.md).
  std::string ToPrometheus() const;

  /// One deterministic JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,min,max,buckets:[[i,n],...]}}}.
  std::string ToJson() const;

  /// Zeroes every registered metric (names stay registered).
  void Reset();

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Metric {
    Type type;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric* GetOrCreate(const std::string& name, Type type);

  std::map<std::string, std::unique_ptr<Metric>> metrics_;
};

}  // namespace webdex::common

#endif  // WEBDEX_COMMON_METRICS_H_
