#ifndef WEBDEX_COMMON_RESULT_H_
#define WEBDEX_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace webdex {

/// Value-or-error return type: either holds a `T` or a non-OK `Status`.
///
/// A lightweight stand-in for `absl::StatusOr<T>`:
///
///   Result<int> Parse(std::string_view s);
///   auto r = Parse("42");
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  /// Constructs a successful result.  Intentionally implicit so functions
  /// can `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result.  `status` must not be OK: an OK status
  /// carries no value and would leave the Result unusable.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace webdex

/// Evaluates `rexpr` (a Result<T>), propagates its status on error, and
/// otherwise moves the value into `lhs`.
#define WEBDEX_ASSIGN_OR_RETURN(lhs, rexpr)        \
  WEBDEX_ASSIGN_OR_RETURN_IMPL_(                   \
      WEBDEX_CONCAT_(_webdex_result_, __LINE__), lhs, rexpr)

#define WEBDEX_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define WEBDEX_CONCAT_(a, b) WEBDEX_CONCAT_IMPL_(a, b)
#define WEBDEX_CONCAT_IMPL_(a, b) a##b

#endif  // WEBDEX_COMMON_RESULT_H_
