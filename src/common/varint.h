#ifndef WEBDEX_COMMON_VARINT_H_
#define WEBDEX_COMMON_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace webdex {

/// LEB128-style unsigned varint codec.
///
/// The LUI / 2LUPI indexing strategies store the sorted (pre, post, depth)
/// structural identifiers of every node carrying a given key as one binary
/// DynamoDB attribute value (paper Sections 5.3 and 8.4 credit this compact
/// binary encoding for much of the DynamoDB-vs-SimpleDB improvement).

/// Appends `value` varint-encoded to `*out`.
void PutVarint64(std::string* out, uint64_t value);

/// Decodes one varint starting at `*offset` in `data`, advances `*offset`.
/// Fails with Corruption on truncated or oversized input.
Result<uint64_t> GetVarint64(std::string_view data, size_t* offset);

/// Number of bytes PutVarint64 would use for `value`.
size_t VarintLength(uint64_t value);

}  // namespace webdex

#endif  // WEBDEX_COMMON_VARINT_H_
