#include "common/tracer.h"

#include <algorithm>

#include "common/strings.h"

namespace webdex::common {

void Tracer::Clear() {
  spans_.clear();
  stack_.clear();
}

uint64_t Tracer::BeginSpan(std::string_view name, int64_t now_us) {
  if (!enabled_) return 0;
  TraceSpan span;
  span.id = spans_.size() + 1;
  span.parent = current();
  span.name = std::string(name);
  span.start_us = now_us;
  span.end_us = now_us;
  spans_.push_back(std::move(span));
  stack_.push_back(spans_.back().id);
  return spans_.back().id;
}

void Tracer::AddAttr(uint64_t span, std::string_view key, double value) {
  if (span == 0 || span > spans_.size()) return;
  auto& attrs = spans_[span - 1].attrs;
  for (auto& [k, v] : attrs) {
    if (k == key) {
      v = value;
      return;
    }
  }
  attrs.emplace_back(std::string(key), value);
}

void Tracer::EndSpan(uint64_t span, int64_t now_us) {
  if (span == 0 || span > spans_.size()) return;
  // Close any inner spans left open (early returns without RAII).
  while (!stack_.empty()) {
    const uint64_t top = stack_.back();
    stack_.pop_back();
    TraceSpan& s = spans_[top - 1];
    s.end_us = now_us;
    std::sort(s.attrs.begin(), s.attrs.end());
    if (top == span) return;
  }
}

const TraceSpan* Tracer::Find(uint64_t id) const {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

std::vector<const TraceSpan*> Tracer::Roots() const {
  std::vector<const TraceSpan*> roots;
  for (const TraceSpan& s : spans_) {
    if (s.parent == 0) roots.push_back(&s);
  }
  return roots;
}

std::vector<const TraceSpan*> Tracer::Children(uint64_t id) const {
  std::vector<const TraceSpan*> children;
  for (const TraceSpan& s : spans_) {
    if (s.parent == id) children.push_back(&s);
  }
  return children;
}

double Tracer::Attr(const TraceSpan& span, std::string_view key,
                    double fallback) {
  for (const auto& [k, v] : span.attrs) {
    if (k == key) return v;
  }
  return fallback;
}

std::string Tracer::ToJsonl() const {
  std::string out;
  for (const TraceSpan& s : spans_) {
    std::string attrs;
    for (const auto& [k, v] : s.attrs) {
      if (!attrs.empty()) attrs += ",";
      attrs += StrFormat("\"%s\":%.17g", JsonEscape(k).c_str(), v);
    }
    out += StrFormat(
        "{\"id\":%llu,\"parent\":%llu,\"name\":\"%s\",\"start_us\":%lld,"
        "\"end_us\":%lld,\"attrs\":{%s}}\n",
        (unsigned long long)s.id, (unsigned long long)s.parent,
        JsonEscape(s.name).c_str(), (long long)s.start_us, (long long)s.end_us,
        attrs.c_str());
  }
  return out;
}

void Tracer::RenderTree(const TraceSpan& span, int depth,
                        std::string* out) const {
  out->append(static_cast<size_t>(2 * depth), ' ');
  *out += StrFormat("%s [%lld..%lld]", span.name.c_str(),
                    (long long)span.start_us, (long long)span.end_us);
  for (const auto& [k, v] : span.attrs) {
    *out += StrFormat(" %s=%.17g", k.c_str(), v);
  }
  *out += "\n";
  for (const TraceSpan* child : Children(span.id)) {
    RenderTree(*child, depth + 1, out);
  }
}

std::string Tracer::Canonical() const {
  std::string out;
  for (const TraceSpan* root : Roots()) RenderTree(*root, 0, &out);
  return out;
}

void Tracer::RenderCost(const TraceSpan& span, int depth,
                        std::string* out) const {
  const double total = Attr(span, "usd");
  double children_total = 0;
  const auto children = Children(span.id);
  for (const TraceSpan* child : children) {
    children_total += Attr(*child, "usd");
  }
  std::string label(static_cast<size_t>(2 * depth), ' ');
  label += span.name;
  *out += StrFormat("%-40s $%.9f  self $%.9f  %s\n", label.c_str(), total,
                    total - children_total,
                    HumanDuration(span.end_us - span.start_us).c_str());
  for (const TraceSpan* child : children) RenderCost(*child, depth + 1, out);
}

std::string Tracer::CostRollup() const {
  std::string out;
  double total = 0;
  for (const TraceSpan* root : Roots()) total += Attr(*root, "usd");
  out += StrFormat("%-40s $%.9f\n", "TOTAL", total);
  for (const TraceSpan* root : Roots()) RenderCost(*root, 0, &out);
  return out;
}

}  // namespace webdex::common
