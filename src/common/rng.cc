#include "common/rng.h"

#include <cassert>
#include <cstdio>

namespace webdex {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(s);
}

uint64_t Rng::Next() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span may wrap to 0 when covering the full 64-bit range.
  if (span == 0) return static_cast<int64_t>(Next());
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(Next()); }

Rng Rng::ForKey(uint64_t base_seed, std::string_view key) {
  // FNV-1a over the key bytes, folded with the base seed through
  // SplitMix64 so that nearby seeds / similar keys land far apart.
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  uint64_t s = base_seed ^ h;
  return Rng(SplitMix64(s));
}

std::string Rng::NextUuid() {
  uint64_t hi = Next();
  uint64_t lo = Next();
  // Set version 4 and RFC 4122 variant bits.
  hi = (hi & 0xffffffffffff0fffULL) | 0x0000000000004000ULL;
  lo = (lo & 0x3fffffffffffffffULL) | 0x8000000000000000ULL;
  char buf[37];
  std::snprintf(buf, sizeof(buf), "%08x-%04x-%04x-%04x-%012llx",
                static_cast<unsigned>(hi >> 32),
                static_cast<unsigned>((hi >> 16) & 0xffff),
                static_cast<unsigned>(hi & 0xffff),
                static_cast<unsigned>(lo >> 48),
                static_cast<unsigned long long>(lo & 0xffffffffffffULL));
  return std::string(buf);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  assert(total > 0);
  double pick = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick < 0) return i;
  }
  return weights.size() - 1;
}

}  // namespace webdex
