#ifndef WEBDEX_COMMON_RNG_H_
#define WEBDEX_COMMON_RNG_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace webdex {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64).
///
/// The entire simulation is wall-clock free: corpus generation, UUID range
/// keys and fault injection all draw from explicitly seeded `Rng` instances
/// so that every test and benchmark run is exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound).  `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform in [lo, hi] inclusive.  Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// Returns a fresh generator seeded from this one's stream; use to give
  /// sub-components independent deterministic streams.
  Rng Fork();

  /// Generator whose stream depends only on (`base_seed`, `key`) — not on
  /// how many values any other stream has drawn.  This is what makes
  /// per-document work (UUID range keys, Section 6) reproducible no
  /// matter which simulated instance, host thread, or retry processes the
  /// document: seeding by the document URI pins the stream to the
  /// document itself rather than to execution order.
  static Rng ForKey(uint64_t base_seed, std::string_view key);

  /// RFC 4122 version-4 UUID string drawn from this stream, e.g.
  /// "a3e1f2c4-9b7d-4e1a-8f26-0c9d53ab1f40".  The paper (Section 6) uses
  /// UUIDs as DynamoDB range keys so concurrent writers never collide.
  std::string NextUuid();

  /// Picks an element index weighted by `weights` (all >= 0, sum > 0).
  size_t NextWeighted(const std::vector<double>& weights);

  /// Snapshot support (cloud/snapshot.cc): the stream cursor is exactly
  /// the four xoshiro256** state words, so saving and loading them makes
  /// a restored stream continue bit-identically.
  std::array<uint64_t, 4> SaveState() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void LoadState(const std::array<uint64_t, 4>& state) {
    for (size_t i = 0; i < 4; ++i) state_[i] = state[i];
  }

 private:
  uint64_t state_[4];
};

}  // namespace webdex

#endif  // WEBDEX_COMMON_RNG_H_
