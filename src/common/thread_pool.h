#ifndef WEBDEX_COMMON_THREAD_POOL_H_
#define WEBDEX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace webdex::common {

/// Fixed-size pool of host worker threads draining a FIFO work queue.
///
/// This is *host* parallelism only: it spends real CPU cores, never
/// virtual time.  Simulated components (SimAgent clocks, the usage
/// meter, queue/store billing) must never be touched from pooled tasks;
/// see docs/PARALLELISM.md for the layering contract.
///
/// Tasks are arbitrary callables.  Submit() returns a std::future for
/// the task's result; an exception thrown by the task is captured and
/// rethrown from future::get() on the consuming thread, so worker
/// threads never terminate the process.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Enqueues `fn` and returns the future of its result.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

  /// Number of hardware threads, with a sane floor when the runtime
  /// cannot tell (hardware_concurrency() may return 0).
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace webdex::common

#endif  // WEBDEX_COMMON_THREAD_POOL_H_
