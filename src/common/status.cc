#include "common/status.h"

namespace webdex {

const char* StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kUnimplemented:
      return "Unimplemented";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace webdex
