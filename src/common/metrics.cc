#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace webdex::common {

bool ValidMetricName(std::string_view name) {
  if (name.empty() || name.front() < 'a' || name.front() > 'z') return false;
  bool saw_dot = false;
  bool segment_empty = true;
  for (char c : name) {
    if (c == '.') {
      if (segment_empty) return false;  // leading dot or ".."
      saw_dot = true;
      segment_empty = true;
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_') {
      segment_empty = false;
    } else {
      return false;
    }
  }
  return saw_dot && !segment_empty;
}

void Histogram::Record(double v) {
  buckets_[BucketIndex(v)] += 1;
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_ += 1;
  sum_ += v;
}

void Histogram::RecordN(double v, uint64_t n) {
  if (n == 0) return;
  buckets_[BucketIndex(v)] += n;
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_ += n;
  sum_ += v * double(n);
}

void Histogram::Merge(const Histogram& o) {
  if (o.count_ == 0) return;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += o.buckets_[i];
  if (count_ == 0) {
    min_ = o.min_;
    max_ = o.max_;
  } else {
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }
  count_ += o.count_;
  sum_ += o.sum_;
}

int Histogram::BucketIndex(double v) {
  if (!(v > 0.0)) return 0;  // zero, negatives, NaN
  // ilogb is exact on binary floats: v in (2^e, 2^(e+1)] maps to bucket
  // e + 32 except exact powers of two, whose ilogb is e itself; nudge
  // them down so bucket upper bounds are inclusive.
  int e = std::ilogb(v);
  if (std::exp2(double(e)) == v) e -= 1;
  return std::clamp(e + 32, 0, kNumBuckets - 1);
}

double Histogram::BucketUpperBound(int i) { return std::exp2(double(i - 31)); }

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      std::max<uint64_t>(1, uint64_t(std::ceil(q * double(count_))));
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      return std::clamp(BucketUpperBound(i), min_, max_);
    }
  }
  return max_;
}

MetricRegistry::Metric* MetricRegistry::GetOrCreate(const std::string& name,
                                                    Type type) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    if (!ValidMetricName(name)) {
      std::fprintf(stderr,
                   "metric name '%s' violates the naming grammar "
                   "(docs/OBSERVABILITY.md)\n",
                   name.c_str());
      std::abort();
    }
    auto metric = std::make_unique<Metric>();
    metric->type = type;
    if (type == Type::kHistogram) {
      metric->histogram = std::make_unique<Histogram>();
    }
    it = metrics_.emplace(name, std::move(metric)).first;
  }
  if (it->second->type != type) {
    std::fprintf(stderr, "metric '%s' re-registered with a different type\n",
                 name.c_str());
    std::abort();
  }
  return it->second.get();
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  return &GetOrCreate(name, Type::kCounter)->counter;
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  return &GetOrCreate(name, Type::kGauge)->gauge;
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  return GetOrCreate(name, Type::kHistogram)->histogram.get();
}

const Counter* MetricRegistry::FindCounter(const std::string& name) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second->type != Type::kCounter) {
    return nullptr;
  }
  return &it->second->counter;
}

const Gauge* MetricRegistry::FindGauge(const std::string& name) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second->type != Type::kGauge) return nullptr;
  return &it->second->gauge;
}

const Histogram* MetricRegistry::FindHistogram(const std::string& name) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second->type != Type::kHistogram) {
    return nullptr;
  }
  return it->second->histogram.get();
}

uint64_t MetricRegistry::CounterValue(const std::string& name) const {
  const Counter* c = FindCounter(name);
  return c == nullptr ? 0 : c->value();
}

double MetricRegistry::GaugeValue(const std::string& name) const {
  const Gauge* g = FindGauge(name);
  return g == nullptr ? 0.0 : g->value();
}

std::vector<std::string> MetricRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) names.push_back(name);
  return names;
}

namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = "webdex_";
  for (char c : name) out += (c == '.') ? '_' : c;
  return out;
}

// %.17g round-trips doubles exactly; trims to a plain integer rendering
// for whole values so counters stay readable.
std::string Num(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.17g", v);
}

}  // namespace

std::string MetricRegistry::ToPrometheus() const {
  std::string out;
  for (const auto& [name, metric] : metrics_) {
    const std::string prom = PrometheusName(name);
    switch (metric->type) {
      case Type::kCounter:
        out += StrFormat("# TYPE %s counter\n", prom.c_str());
        out += StrFormat("%s %llu\n", prom.c_str(),
                         (unsigned long long)metric->counter.value());
        break;
      case Type::kGauge:
        out += StrFormat("# TYPE %s gauge\n", prom.c_str());
        out += StrFormat("%s %s\n", prom.c_str(),
                         Num(metric->gauge.value()).c_str());
        break;
      case Type::kHistogram: {
        const Histogram& h = *metric->histogram;
        out += StrFormat("# TYPE %s histogram\n", prom.c_str());
        uint64_t cumulative = 0;
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          if (h.bucket_count(i) == 0) continue;
          cumulative += h.bucket_count(i);
          out += StrFormat("%s_bucket{le=\"%s\"} %llu\n", prom.c_str(),
                           Num(Histogram::BucketUpperBound(i)).c_str(),
                           (unsigned long long)cumulative);
        }
        out += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", prom.c_str(),
                         (unsigned long long)h.count());
        out += StrFormat("%s_sum %s\n", prom.c_str(), Num(h.sum()).c_str());
        out += StrFormat("%s_count %llu\n", prom.c_str(),
                         (unsigned long long)h.count());
        break;
      }
    }
  }
  return out;
}

std::string MetricRegistry::ToJson() const {
  std::string counters, gauges, histograms;
  for (const auto& [name, metric] : metrics_) {
    switch (metric->type) {
      case Type::kCounter:
        if (!counters.empty()) counters += ",";
        counters += StrFormat("\"%s\":%llu", name.c_str(),
                              (unsigned long long)metric->counter.value());
        break;
      case Type::kGauge:
        if (!gauges.empty()) gauges += ",";
        gauges += StrFormat("\"%s\":%s", name.c_str(),
                            Num(metric->gauge.value()).c_str());
        break;
      case Type::kHistogram: {
        const Histogram& h = *metric->histogram;
        if (!histograms.empty()) histograms += ",";
        std::string buckets;
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          if (h.bucket_count(i) == 0) continue;
          if (!buckets.empty()) buckets += ",";
          buckets += StrFormat("[%d,%llu]", i,
                               (unsigned long long)h.bucket_count(i));
        }
        histograms += StrFormat(
            "\"%s\":{\"count\":%llu,\"sum\":%s,\"min\":%s,\"max\":%s,"
            "\"buckets\":[%s]}",
            name.c_str(), (unsigned long long)h.count(), Num(h.sum()).c_str(),
            Num(h.min()).c_str(), Num(h.max()).c_str(), buckets.c_str());
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

void MetricRegistry::Reset() {
  for (auto& [name, metric] : metrics_) {
    metric->counter.Reset();
    metric->gauge.Reset();
    if (metric->histogram != nullptr) metric->histogram->Reset();
  }
}

}  // namespace webdex::common
