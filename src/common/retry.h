#ifndef WEBDEX_COMMON_RETRY_H_
#define WEBDEX_COMMON_RETRY_H_

#include <cstdint>
#include <utility>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace webdex::common {

/// Capped exponential backoff with full jitter, the standard AWS SDK
/// retry shape.  All durations are in (virtual) microseconds: inside the
/// simulation the sleep callback advances a SimAgent's clock, so every
/// retried attempt honestly lengthens makespans and EC2 rental time.
struct RetryPolicy {
  /// Total attempts including the first one; <= 1 disables retries.
  int max_attempts = 5;
  /// Upper bound of the first backoff's jitter window.
  int64_t initial_backoff_micros = 50'000;
  /// Cap on any single backoff's jitter window.
  int64_t max_backoff_micros = 5'000'000;
  /// Growth of the jitter window between attempts.
  double backoff_multiplier = 2.0;
  /// Budget for the *sum* of backoffs in one call; a retry that would
  /// exceed it is abandoned and the last error returned.  0 = unlimited.
  int64_t deadline_micros = 0;
};

/// Jitter-window cap before the retry following `attempt` (1-based).
inline int64_t BackoffCapMicros(const RetryPolicy& policy, int attempt) {
  double cap = static_cast<double>(policy.initial_backoff_micros);
  for (int i = 1; i < attempt; ++i) cap *= policy.backoff_multiplier;
  const double max = static_cast<double>(policy.max_backoff_micros);
  if (cap > max) cap = max;
  return cap < 0 ? 0 : static_cast<int64_t>(cap);
}

/// Uniform overloads so CallWithRetry works for functions returning either
/// a bare Status or a Result<T>.
inline const Status& StatusOf(const Status& status) { return status; }
template <typename T>
const Status& StatusOf(const Result<T>& result) {
  return result.status();
}

/// Invokes `fn` until it succeeds, fails permanently, or the policy is
/// exhausted; returns the last outcome.  Only `Status::IsRetriable()`
/// errors are retried.  Before each retry, a backoff drawn uniformly from
/// [0, cap] ("full jitter") is passed to `sleep(backoff_micros)`; in the
/// simulation that callback advances the calling agent's virtual clock,
/// and `rng` must be a deterministic stream (e.g. `Rng::ForKey`) so the
/// schedule is reproducible.  When the error carries a server retry-after
/// hint (`Status::retry_after_micros() > 0`, an organic throttle), the
/// sleep is exactly the hint: never shorter (the server said capacity
/// frees then, an earlier retry is a guaranteed re-throttle) and capped
/// at it (jittered oversleep would under-use the capacity the server just
/// promised).  `retries`, when non-null, is incremented once per
/// re-attempt (for the Usage fault counters).
template <typename Fn, typename Sleep>
auto CallWithRetry(const RetryPolicy& policy, Rng& rng, const Fn& fn,
                   const Sleep& sleep, uint64_t* retries = nullptr)
    -> decltype(fn()) {
  int64_t slept = 0;
  for (int attempt = 1;; ++attempt) {
    auto outcome = fn();
    const Status& status = StatusOf(outcome);
    if (status.ok() || !status.IsRetriable() ||
        attempt >= policy.max_attempts) {
      return outcome;
    }
    const int64_t cap = BackoffCapMicros(policy, attempt);
    int64_t backoff =
        cap <= 0 ? 0
                 : static_cast<int64_t>(rng.NextDouble() *
                                        static_cast<double>(cap + 1));
    const int64_t hint = status.retry_after_micros();
    if (hint > 0) backoff = hint;
    if (policy.deadline_micros > 0 &&
        slept + backoff > policy.deadline_micros) {
      return outcome;
    }
    sleep(backoff);
    slept += backoff;
    if (retries != nullptr) ++*retries;
  }
}

}  // namespace webdex::common

#endif  // WEBDEX_COMMON_RETRY_H_
