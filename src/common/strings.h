#ifndef WEBDEX_COMMON_STRINGS_H_
#define WEBDEX_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace webdex {

/// Splits `input` on the single-character `sep`.  Empty pieces are kept:
/// Split("a,,b", ',') -> {"a", "", "b"}.  Split("", ',') -> {""}.
std::vector<std::string> Split(std::string_view input, char sep);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `haystack` contains `needle` as a whole word, where words are
/// maximal runs of alphanumeric characters (case-insensitive).  This is the
/// semantics of the paper's `contains(c)` predicate.
bool ContainsWord(std::string_view haystack, std::string_view word);

/// Formats a byte count as e.g. "12.3 MB".
std::string HumanBytes(uint64_t bytes);

/// Formats microseconds as e.g. "2:11" (hh:mm) or "13.2 s" depending on
/// magnitude; used by benchmark tables.
std::string HumanDuration(int64_t micros);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Escapes a string for embedding inside a JSON string literal: quotes,
/// backslashes, and control characters become their \-escapes.  Returns
/// the escaped body only (no surrounding quotes).
std::string JsonEscape(std::string_view s);

}  // namespace webdex

#endif  // WEBDEX_COMMON_STRINGS_H_
