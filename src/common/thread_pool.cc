#include "common/thread_pool.h"

#include <algorithm>

namespace webdex::common {

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(1, num_threads);
  threads_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  wake_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      // Keep draining queued work during shutdown so every Submit()ed
      // future is eventually satisfied.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // packaged_task catches exceptions and stores them in the future.
    task();
  }
}

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 2 : static_cast<int>(n);
}

}  // namespace webdex::common
