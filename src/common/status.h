#ifndef WEBDEX_COMMON_STATUS_H_
#define WEBDEX_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace webdex {

/// Operation outcome used throughout the library instead of exceptions.
///
/// Mirrors the convention of storage-engine codebases (RocksDB, LevelDB):
/// fallible calls return a `Status` (or a `Result<T>`, see result.h), and
/// callers branch on `ok()`.  A `Status` is cheap to copy and carries an
/// error code plus a human-readable message.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kInvalidArgument,
    kIOError,
    kResourceExhausted,
    kFailedPrecondition,
    kAlreadyExists,
    kCorruption,
    kUnimplemented,
    /// A service is transiently unable to serve the request (5xx-style
    /// errors from the simulated cloud's fault injector).  Retriable.
    kUnavailable,
    /// The system itself declined the work before doing any of it: the
    /// admission controller shed the request to protect tail latency.
    /// Deliberately NOT retriable — shedding exists so the caller gets a
    /// fast, typed rejection instead of burning a retry budget against a
    /// saturated system.  Contrast kResourceExhausted, where a *service*
    /// throttled one call and a paced retry will succeed.
    kOverloaded,
  };

  /// Default-constructed status is OK.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(Code::kResourceExhausted, msg);
  }
  /// Organic server-side throttle: the service rejected the call because
  /// its backlog exceeded the configured delay bound, and suggests the
  /// caller wait `retry_after_micros` of virtual time before retrying
  /// (the Retry-After header of HTTP 429/503).  common/retry.h honors the
  /// hint: it never sleeps shorter than it and caps backoff at it.
  static Status ResourceExhausted(std::string_view msg,
                                  int64_t retry_after_micros) {
    Status s(Code::kResourceExhausted, msg);
    s.retry_after_micros_ = retry_after_micros < 0 ? 0 : retry_after_micros;
    return s;
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(Code::kFailedPrecondition, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(Code::kUnimplemented, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(Code::kUnavailable, msg);
  }
  static Status Overloaded(std::string_view msg) {
    return Status(Code::kOverloaded, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsUnimplemented() const { return code_ == Code::kUnimplemented; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsOverloaded() const { return code_ == Code::kOverloaded; }

  /// True for errors that a retry with backoff may cure: transient
  /// service unavailability and throughput throttling.  Everything else
  /// (NotFound, InvalidArgument, kOverloaded admission shedding, ...) is
  /// permanent for the issuing call and must not be retried (see
  /// common/retry.h).
  bool IsRetriable() const {
    return code_ == Code::kUnavailable || code_ == Code::kResourceExhausted;
  }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Server-suggested minimum wait before a retry, in virtual
  /// microseconds; 0 when the server offered no hint.  Carried only by
  /// organic-throttle ResourceExhausted statuses (see the two-argument
  /// factory); fault-injector errors leave it 0, so chaos schedules are
  /// byte-identical to before the hint existed.
  int64_t retry_after_micros() const { return retry_after_micros_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(Code code, std::string_view msg)
      : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
  int64_t retry_after_micros_ = 0;
};

/// Returns a stable, human-readable name for a status code ("NotFound", ...).
const char* StatusCodeName(Status::Code code);

}  // namespace webdex

/// Propagates a non-OK status to the caller.  Usable in any function that
/// itself returns a `Status`.
#define WEBDEX_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::webdex::Status _webdex_status = (expr);       \
    if (!_webdex_status.ok()) return _webdex_status; \
  } while (false)

#endif  // WEBDEX_COMMON_STATUS_H_
