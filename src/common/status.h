#ifndef WEBDEX_COMMON_STATUS_H_
#define WEBDEX_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace webdex {

/// Operation outcome used throughout the library instead of exceptions.
///
/// Mirrors the convention of storage-engine codebases (RocksDB, LevelDB):
/// fallible calls return a `Status` (or a `Result<T>`, see result.h), and
/// callers branch on `ok()`.  A `Status` is cheap to copy and carries an
/// error code plus a human-readable message.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kInvalidArgument,
    kIOError,
    kResourceExhausted,
    kFailedPrecondition,
    kAlreadyExists,
    kCorruption,
    kUnimplemented,
    /// A service is transiently unable to serve the request (5xx-style
    /// errors from the simulated cloud's fault injector).  Retriable.
    kUnavailable,
  };

  /// Default-constructed status is OK.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(Code::kResourceExhausted, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(Code::kFailedPrecondition, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(Code::kUnimplemented, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(Code::kUnavailable, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsUnimplemented() const { return code_ == Code::kUnimplemented; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  /// True for errors that a retry with backoff may cure: transient
  /// service unavailability and throughput throttling.  Everything else
  /// (NotFound, InvalidArgument, ...) is permanent and must not be
  /// retried (see common/retry.h).
  bool IsRetriable() const {
    return code_ == Code::kUnavailable || code_ == Code::kResourceExhausted;
  }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(Code code, std::string_view msg)
      : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Returns a stable, human-readable name for a status code ("NotFound", ...).
const char* StatusCodeName(Status::Code code);

}  // namespace webdex

/// Propagates a non-OK status to the caller.  Usable in any function that
/// itself returns a `Status`.
#define WEBDEX_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::webdex::Status _webdex_status = (expr);       \
    if (!_webdex_status.ok()) return _webdex_status; \
  } while (false)

#endif  // WEBDEX_COMMON_STATUS_H_
