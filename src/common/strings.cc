#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace webdex {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool ContainsWord(std::string_view haystack, std::string_view word) {
  if (word.empty()) return false;
  const std::string lowered_word = ToLower(word);
  size_t i = 0;
  const size_t n = haystack.size();
  while (i < n) {
    while (i < n && !std::isalnum(static_cast<unsigned char>(haystack[i]))) {
      ++i;
    }
    size_t j = i;
    while (j < n && std::isalnum(static_cast<unsigned char>(haystack[j]))) {
      ++j;
    }
    if (j - i == lowered_word.size()) {
      bool match = true;
      for (size_t k = 0; k < lowered_word.size(); ++k) {
        if (std::tolower(static_cast<unsigned char>(haystack[i + k])) !=
            static_cast<unsigned char>(lowered_word[k])) {
          match = false;
          break;
        }
      }
      if (match) return true;
    }
    i = j;
  }
  return false;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", (unsigned long long)bytes);
  return StrFormat("%.1f %s", v, kUnits[unit]);
}

std::string HumanDuration(int64_t micros) {
  if (micros < 0) micros = 0;
  const int64_t total_seconds = micros / 1000000;
  if (total_seconds >= 3600) {
    return StrFormat("%lld:%02lld h",
                     (long long)(total_seconds / 3600),
                     (long long)((total_seconds % 3600) / 60));
  }
  if (total_seconds >= 60) {
    return StrFormat("%lld:%02lld min", (long long)(total_seconds / 60),
                     (long long)(total_seconds % 60));
  }
  if (micros >= 1000000) {
    return StrFormat("%.1f s", static_cast<double>(micros) / 1e6);
  }
  if (micros >= 1000) {
    return StrFormat("%.1f ms", static_cast<double>(micros) / 1e3);
  }
  return StrFormat("%lld us", (long long)micros);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace webdex
