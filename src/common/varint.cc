#include "common/varint.h"

namespace webdex {

void PutVarint64(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

Result<uint64_t> GetVarint64(std::string_view data, size_t* offset) {
  uint64_t value = 0;
  int shift = 0;
  while (*offset < data.size()) {
    const uint8_t byte = static_cast<uint8_t>(data[(*offset)++]);
    if (shift == 63 && (byte & 0x7e) != 0) {
      return Status::Corruption("varint64 overflow");
    }
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift > 63) return Status::Corruption("varint64 too long");
  }
  return Status::Corruption("truncated varint64");
}

size_t VarintLength(uint64_t value) {
  size_t len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace webdex
