#ifndef WEBDEX_COMMON_TRACER_H_
#define WEBDEX_COMMON_TRACER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace webdex::common {

/// One node of a span tree.  All timestamps are *virtual* microseconds
/// from the simulation clocks — the tracer never reads the wall clock,
/// so traces are bit-identical across hosts and host-thread counts.
struct TraceSpan {
  uint64_t id = 0;      // creation ordinal, 1-based; doubles as sort key
  uint64_t parent = 0;  // 0 = root span
  std::string name;
  int64_t start_us = 0;
  int64_t end_us = 0;
  /// Numeric attributes, sorted by key once the span ends.  By
  /// convention `usd` carries the span's metered dollar cost and
  /// `usage.<field>` the cloud::Usage delta fields (see cloud/trace.h).
  std::vector<std::pair<std::string, double>> attrs;
};

/// Records trees of virtual-time spans.  Disabled by default: BeginSpan
/// returns 0 and every other call ignores span id 0, so instrumented
/// code paths cost one branch when tracing is off.
///
/// Spans nest through an explicit stack: BeginSpan parents the new span
/// to the innermost open span.  All recording happens on the simulation
/// event-loop thread (the same single-threaded contract as UsageMeter),
/// and span ids are creation ordinals, so serial and host-parallel runs
/// of the same experiment produce identical traces (tested by
/// observability_test.cc).
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Drops all recorded spans and the open-span stack.
  void Clear();

  /// Opens a span at virtual time `now_us`; returns its id (0 when
  /// disabled).
  uint64_t BeginSpan(std::string_view name, int64_t now_us);

  /// Attaches a numeric attribute; last write per key wins.
  void AddAttr(uint64_t span, std::string_view key, double value);

  /// Closes `span` at `now_us`.  Any unclosed inner spans are closed at
  /// the same instant (RAII holders make this path rare).
  void EndSpan(uint64_t span, int64_t now_us);

  /// Innermost open span id, or 0.
  uint64_t current() const { return stack_.empty() ? 0 : stack_.back(); }

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const TraceSpan* Find(uint64_t id) const;
  std::vector<const TraceSpan*> Roots() const;
  std::vector<const TraceSpan*> Children(uint64_t id) const;

  /// Attribute lookup with a default; spans store attrs sorted by key.
  static double Attr(const TraceSpan& span, std::string_view key,
                     double fallback = 0.0);

  /// One JSON object per line, in span-id order:
  /// {"id":1,"parent":0,"name":"query","start_us":0,"end_us":42,
  ///  "attrs":{"usd":1.2e-06}}
  std::string ToJsonl() const;

  /// Canonical human/diff-friendly rendering: depth-first tree, children
  /// in id order, attrs sorted.  Two runs are equivalent iff their
  /// canonical renderings are byte-identical.
  std::string Canonical() const;

  /// Flamegraph-style cost rollup over the `usd` attribute: every line
  /// shows a span's total metered dollars, the `self` share not covered
  /// by its children, and its virtual-time duration.
  std::string CostRollup() const;

 private:
  void RenderTree(const TraceSpan& span, int depth, std::string* out) const;
  void RenderCost(const TraceSpan& span, int depth, std::string* out) const;

  bool enabled_ = false;
  std::vector<TraceSpan> spans_;  // spans_[id - 1]
  std::vector<uint64_t> stack_;
};

}  // namespace webdex::common

#endif  // WEBDEX_COMMON_TRACER_H_
