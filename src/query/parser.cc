#include "query/parser.h"

#include <cctype>
#include <cstdlib>
#include <map>

#include "common/strings.h"

namespace webdex::query {
namespace {

class QueryParser {
 public:
  explicit QueryParser(std::string_view text) : text_(text) {}

  Result<Query> Parse() {
    std::vector<TreePattern> patterns;
    for (;;) {
      WEBDEX_ASSIGN_OR_RETURN(std::unique_ptr<PatternNode> root, ParseStep());
      patterns.emplace_back(std::move(root));
      SkipSpace();
      if (!Consume(';')) break;
    }
    std::vector<ValueJoin> joins;
    SkipSpace();
    if (ConsumeWord("where")) {
      for (;;) {
        WEBDEX_ASSIGN_OR_RETURN(ValueJoin join, ParseJoin(patterns));
        joins.push_back(join);
        SkipSpace();
        if (!Consume(',')) break;
      }
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing input");
    }
    // Validate join tags are exhausted (every tag used exactly twice).
    for (const auto& [tag, uses] : join_tags_) {
      if (uses.size() != 2) {
        return Status::InvalidArgument(
            StrFormat("join tag #%s must appear in exactly one 'where' "
                      "clause linking two nodes",
                      tag.c_str()));
      }
    }
    return Query(std::move(patterns), std::move(joins));
  }

 private:
  Status Error(std::string_view message) const {
    return Status::InvalidArgument(
        StrFormat("query parse error at offset %zu: %.*s", pos_,
                  static_cast<int>(message.size()), message.data()));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }
  bool Consume(char c) {
    if (!AtEnd() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }
  // Consumes `word` only if followed by a non-name character.
  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    const size_t after = pos_ + word.size();
    if (after < text_.size() && (std::isalnum(static_cast<unsigned char>(
                                     text_[after])) ||
                                 text_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }
  void SkipSpace() {
    while (!AtEnd() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    SkipSpace();
    const size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Error("expected a name");
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<std::string> ParseLiteral() {
    SkipSpace();
    if (Consume('\'')) {
      const size_t start = pos_;
      while (!AtEnd() && Peek() != '\'') ++pos_;
      if (AtEnd()) return Error("unterminated string literal");
      std::string value(text_.substr(start, pos_ - start));
      ++pos_;
      return value;
    }
    return ParseName();
  }

  Result<double> ParseNumber() {
    SkipSpace();
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                        Peek() == '.')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a number");
    return std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                       nullptr);
  }

  Result<Axis> ParseAxis(bool required, Axis fallback) {
    SkipSpace();
    if (ConsumeLiteral("//")) return Axis::kDescendant;
    if (Consume('/')) return Axis::kChild;
    if (required) return Error("expected '/' or '//'");
    return fallback;
  }

  /// step := axis? node (with '//' default at pattern roots)
  Result<std::unique_ptr<PatternNode>> ParseStep() {
    WEBDEX_ASSIGN_OR_RETURN(
        Axis axis, ParseAxis(/*required=*/false, Axis::kDescendant));
    return ParseNode(axis);
  }

  Result<std::unique_ptr<PatternNode>> ParseNode(Axis axis) {
    SkipSpace();
    auto node = std::make_unique<PatternNode>();
    node->axis = axis;
    node->is_attribute = Consume('@');
    WEBDEX_ASSIGN_OR_RETURN(node->label, ParseName());

    // Markers: :val, :cont, #tag — in any order, repeatable.
    for (;;) {
      if (ConsumeLiteral(":val")) {
        node->want_val = true;
        continue;
      }
      if (ConsumeLiteral(":cont")) {
        node->want_cont = true;
        continue;
      }
      if (Consume('#')) {
        WEBDEX_ASSIGN_OR_RETURN(node->join_tag, ParseName());
        join_tags_[node->join_tag].push_back(node.get());
        continue;
      }
      break;
    }

    // Predicate.
    SkipSpace();
    if (Consume('=')) {
      node->predicate.kind = PredicateKind::kEquals;
      WEBDEX_ASSIGN_OR_RETURN(node->predicate.constant, ParseLiteral());
    } else if (Consume('~')) {
      node->predicate.kind = PredicateKind::kContains;
      WEBDEX_ASSIGN_OR_RETURN(node->predicate.constant, ParseLiteral());
    } else {
      const size_t before = pos_;
      SkipSpace();
      if (ConsumeWord("in")) {
        SkipSpace();
        bool lo_inclusive;
        if (Consume('[')) {
          lo_inclusive = true;
        } else if (Consume('(')) {
          lo_inclusive = false;
        } else {
          return Error("expected '[' or '(' after 'in'");
        }
        node->predicate.kind = PredicateKind::kRange;
        node->predicate.lo_inclusive = lo_inclusive;
        WEBDEX_ASSIGN_OR_RETURN(node->predicate.lo, ParseNumber());
        SkipSpace();
        if (!Consume(',')) return Error("expected ',' in range");
        WEBDEX_ASSIGN_OR_RETURN(node->predicate.hi, ParseNumber());
        SkipSpace();
        if (Consume(']')) {
          node->predicate.hi_inclusive = true;
        } else if (Consume(')')) {
          node->predicate.hi_inclusive = false;
        } else {
          return Error("expected ']' or ')' closing range");
        }
        if (node->predicate.lo > node->predicate.hi) {
          return Error("range lower bound exceeds upper bound");
        }
      } else {
        pos_ = before;
      }
    }

    // Tail: optional bracketed children, then an optional linear path
    // continuation — so both //g[/v='2', /n] and //g[/v='2']/n parse
    // (the latter XPath-style form adds the path as one more child).
    SkipSpace();
    if (Consume('[')) {
      for (;;) {
        SkipSpace();
        WEBDEX_ASSIGN_OR_RETURN(Axis child_axis,
                                ParseAxis(/*required=*/true, Axis::kChild));
        WEBDEX_ASSIGN_OR_RETURN(std::unique_ptr<PatternNode> child,
                                ParseNode(child_axis));
        node->children.push_back(std::move(child));
        SkipSpace();
        if (Consume(',')) continue;
        if (Consume(']')) break;
        return Error("expected ',' or ']' in child list");
      }
    }
    if (Peek() == '/') {
      WEBDEX_ASSIGN_OR_RETURN(Axis child_axis,
                              ParseAxis(/*required=*/true, Axis::kChild));
      WEBDEX_ASSIGN_OR_RETURN(std::unique_ptr<PatternNode> child,
                              ParseNode(child_axis));
      node->children.push_back(std::move(child));
    }
    return node;
  }

  Result<ValueJoin> ParseJoin(const std::vector<TreePattern>& patterns) {
    SkipSpace();
    if (!Consume('#')) return Error("expected '#' in join");
    WEBDEX_ASSIGN_OR_RETURN(std::string left, ParseName());
    SkipSpace();
    if (!Consume('=')) return Error("expected '=' in join");
    SkipSpace();
    if (!Consume('#')) return Error("expected '#' in join");
    WEBDEX_ASSIGN_OR_RETURN(std::string right, ParseName());

    auto locate = [&](const std::string& tag,
                      int* pattern_out) -> Result<int> {
      auto it = join_tags_.find(tag);
      if (it == join_tags_.end() || it->second.empty()) {
        return Status::InvalidArgument("unknown join tag #" + tag);
      }
      const PatternNode* target = it->second.front();
      for (size_t p = 0; p < patterns.size(); ++p) {
        for (const PatternNode* node : patterns[p].nodes()) {
          if (node == target) {
            *pattern_out = static_cast<int>(p);
            return node->index;
          }
        }
      }
      return Status::InvalidArgument("join tag #" + tag +
                                     " not found in any pattern");
    };

    ValueJoin join;
    WEBDEX_ASSIGN_OR_RETURN(join.left_node, locate(left, &join.left_pattern));
    WEBDEX_ASSIGN_OR_RETURN(join.right_node,
                            locate(right, &join.right_pattern));
    // Mark both tags as used by one join (the Parse() validation expects
    // each tag referenced exactly twice overall: once in a pattern, once
    // here).
    join_tags_[left].push_back(nullptr);
    join_tags_[right].push_back(nullptr);
    return join;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::map<std::string, std::vector<const PatternNode*>> join_tags_;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  return QueryParser(text).Parse();
}

}  // namespace webdex::query
