#ifndef WEBDEX_QUERY_LOGICAL_PLAN_H_
#define WEBDEX_QUERY_LOGICAL_PLAN_H_

#include <string>
#include <vector>

#include "query/tree_pattern.h"

namespace webdex::query {

/// Structural facts about one tree pattern, derived once at planning
/// time.  These are the inputs the physical planner's cost estimation
/// keys off (branch shape, predicate load, join participation) — all
/// index-independent.
struct PatternFacts {
  int pattern = 0;       // position within the query
  int nodes = 0;         // pattern nodes
  int branches = 0;      // root-to-leaf label paths
  int outputs = 0;       // val/cont-annotated nodes
  int predicates = 0;    // non-kNone value predicates
  bool has_range = false;   // range predicates (index must ignore them)
  bool joined = false;      // participates in a value join
};

/// The logical layer of the query engine (docs/PLANNER.md): the parsed
/// Query normalized into its planner-facing shape — the tree patterns to
/// answer, the value joins connecting them, and per-pattern structural
/// annotations.  A LogicalPlan says *what* to compute; it knows nothing
/// about indexes, stores, or money.  engine::QueryPlanner turns it into
/// a PhysicalPlan of concrete access paths.
class LogicalPlan {
 public:
  /// Normalizes a parsed query (takes ownership: Query is move-only and
  /// the plan is the query's carrier through execution).
  static LogicalPlan Build(Query query);

  const Query& query() const { return query_; }
  const std::vector<PatternFacts>& patterns() const { return patterns_; }

  bool has_value_joins() const { return query_.HasValueJoins(); }

  /// Multi-line rendering (the header of EXPLAIN output).
  std::string ToString() const;

 private:
  explicit LogicalPlan(Query query);

  Query query_;
  std::vector<PatternFacts> patterns_;
};

}  // namespace webdex::query

#endif  // WEBDEX_QUERY_LOGICAL_PLAN_H_
