#ifndef WEBDEX_QUERY_EVALUATOR_H_
#define WEBDEX_QUERY_EVALUATOR_H_

#include <string>
#include <vector>

#include "query/tree_pattern.h"
#include "xml/dom.h"

namespace webdex::query {

/// One embedding of a tree pattern into a document.
struct PatternMatch {
  /// URI of the matched document.
  std::string uri;
  /// Projected outputs, one per annotated node in pattern pre-order
  /// (string value for `val`, serialized subtree for `cont`).
  std::vector<std::string> outputs;
  /// String values of the pattern's join-tagged nodes, keyed by the
  /// node's pre-order index (parallel to `join_nodes` of the evaluator).
  std::vector<std::string> join_values;
};

/// A query answer: a relation whose columns are the annotated nodes of
/// all patterns, in pattern order then node pre-order.
struct QueryResult {
  std::vector<std::vector<std::string>> rows;
  /// Per row, the URI each pattern's binding came from (one entry per
  /// pattern).  For value joins the entries usually name *different*
  /// documents (Section 5.5); Table 5's "documents with results" counts
  /// the distinct URIs appearing here.
  std::vector<std::vector<std::string>> row_uris;

  /// Distinct documents contributing to at least one row.
  size_t ContributingDocuments() const;

  /// Serialized size, the |r(q)| metric of the cost model (Section 7.1).
  uint64_t SizeBytes() const;

  /// XML rendering (what the query processor writes back to the file
  /// store): <results><row><col>...</col>...</row>...</results>.
  std::string ToXml() const;
};

/// The "standard XML query evaluator" of the architecture (Section 3,
/// step 11): evaluates tree patterns over single documents and combines
/// pattern results with value joins.  It plays the role the ViP2P
/// processor plays in the paper's implementation — the piece you "can
/// choose freely".
class Evaluator {
 public:
  /// All embeddings of `pattern` into `doc` (every homomorphism that
  /// respects labels, node kinds, edges and value predicates).
  static std::vector<PatternMatch> MatchPattern(const TreePattern& pattern,
                                                const xml::Document& doc);

  /// True if at least one embedding exists (early-exit variant).
  static bool Matches(const TreePattern& pattern, const xml::Document& doc);

  /// Evaluates a full query over a set of documents: per-pattern matches
  /// are computed per document, then combined across documents by the
  /// value joins (Section 5.5: "evaluate first each tree pattern
  /// individually; then apply the value joins on the tree pattern
  /// results").
  static QueryResult Evaluate(const Query& query,
                              const std::vector<const xml::Document*>& docs);

  /// Work-accounting hooks: number of document bytes scanned and result
  /// bytes produced since the last consume on this thread.  Consumed by
  /// the engine to charge simulated CPU time.
  ///
  /// Threading contract: the counters live in thread_local storage, so
  /// they are only visible on the thread that ran the evaluation.
  /// ConsumeWorkStats() MUST be called on the same thread as the
  /// Evaluate / MatchPattern / Matches calls it accounts for — calling
  /// it from another thread silently returns that thread's (empty)
  /// stats and the work goes uncharged.  If query evaluation is ever
  /// moved onto pooled host threads (the way indexing extraction was),
  /// each task must consume its own stats before returning and hand
  /// them to the event loop by value.  HasPendingWorkStats() lets
  /// callers assert the pairing; the engine does so after every
  /// evaluation.
  struct WorkStats {
    uint64_t doc_bytes_scanned = 0;
    uint64_t result_bytes = 0;
    uint64_t embeddings_found = 0;
  };
  static WorkStats ConsumeWorkStats();

  /// True if this thread has recorded evaluation work that has not been
  /// consumed yet.  Debug/assertion hook for the contract above: after
  /// an Evaluate call, the *producing* thread sees true until it
  /// consumes; every other thread sees its own flag (typically false).
  static bool HasPendingWorkStats();

 private:
  static WorkStats& ThreadStats();
  static bool& ThreadStatsPending();
};

}  // namespace webdex::query

#endif  // WEBDEX_QUERY_EVALUATOR_H_
