#include "query/evaluator.h"

#include <algorithm>
#include <set>

#include "xml/serializer.h"

namespace webdex::query {
namespace {

/// A partial embedding of one pattern subtree: fixed-size slot vectors
/// (one slot per annotated / join-tagged node of the whole pattern),
/// filled only for the subtree already matched.  Slots of disjoint
/// subtrees are disjoint, so merging is plain copying.
struct Partial {
  std::vector<std::string> outputs;
  std::vector<std::string> joins;
};

class PatternMatcher {
 public:
  PatternMatcher(const TreePattern& pattern, const xml::Document& doc)
      : pattern_(pattern), doc_(doc) {
    output_slot_.assign(static_cast<size_t>(pattern.size()), -1);
    join_slot_.assign(static_cast<size_t>(pattern.size()), -1);
    int out_slots = 0;
    int join_slots = 0;
    for (const PatternNode* node : pattern.nodes()) {
      if (node->HasOutput()) {
        output_slot_[static_cast<size_t>(node->index)] = out_slots++;
      }
      if (!node->join_tag.empty()) {
        join_slot_[static_cast<size_t>(node->index)] = join_slots++;
      }
    }
    num_output_slots_ = out_slots;
    num_join_slots_ = join_slots;
  }

  std::vector<PatternMatch> AllMatches(bool first_only) {
    std::vector<Partial> partials;
    const PatternNode& proot = pattern_.root();
    // The pattern root may match any document node (its incoming axis is
    // descendant-from-document-root); with an explicit child axis it must
    // match the document element itself.
    if (proot.axis == Axis::kChild) {
      MatchAt(proot, doc_.root(), &partials, first_only);
    } else {
      MatchAnywhere(proot, doc_.root(), &partials, first_only);
    }
    std::vector<PatternMatch> matches;
    matches.reserve(partials.size());
    for (auto& partial : partials) {
      PatternMatch match;
      match.uri = doc_.uri();
      match.outputs = std::move(partial.outputs);
      match.join_values = std::move(partial.joins);
      matches.push_back(std::move(match));
    }
    return matches;
  }

 private:
  static bool NodeMatches(const PatternNode& pnode, const xml::Node& dnode) {
    if (pnode.is_attribute) {
      if (!dnode.is_attribute()) return false;
    } else {
      if (!dnode.is_element()) return false;
    }
    if (pnode.label != dnode.label()) return false;
    if (pnode.predicate.kind != PredicateKind::kNone) {
      // Reuse one buffer across the scan's many predicate evaluations —
      // StringValue() would allocate a fresh string per visited node.
      thread_local std::string value;
      value.clear();
      dnode.AppendStringValue(&value);
      if (!pnode.predicate.Matches(value)) return false;
    }
    return true;
  }

  // Tries to match `pnode` at every node of the subtree rooted at `dnode`
  // (including dnode itself).
  void MatchAnywhere(const PatternNode& pnode, const xml::Node& dnode,
                     std::vector<Partial>* out, bool first_only) {
    MatchAt(pnode, dnode, out, first_only);
    if (first_only && !out->empty()) return;
    for (const auto& child : dnode.children()) {
      MatchAnywhere(pnode, *child, out, first_only);
      if (first_only && !out->empty()) return;
    }
  }

  // Appends to `out` every embedding that maps `pnode` exactly to `dnode`.
  void MatchAt(const PatternNode& pnode, const xml::Node& dnode,
               std::vector<Partial>* out, bool first_only) {
    if (!NodeMatches(pnode, dnode)) return;

    // Per-child lists of sub-embeddings.
    std::vector<std::vector<Partial>> child_partials;
    child_partials.reserve(pnode.children.size());
    for (const auto& pchild : pnode.children) {
      std::vector<Partial> candidates;
      if (pchild->axis == Axis::kChild) {
        for (const auto& dchild : dnode.children()) {
          MatchAt(*pchild, *dchild, &candidates, first_only);
          if (first_only && !candidates.empty()) break;
        }
      } else {
        for (const auto& dchild : dnode.children()) {
          MatchAnywhere(*pchild, *dchild, &candidates, first_only);
          if (first_only && !candidates.empty()) break;
        }
      }
      if (candidates.empty()) return;  // conjunctive: all children required
      child_partials.push_back(std::move(candidates));
    }

    // This node's own contribution.
    Partial self;
    self.outputs.assign(static_cast<size_t>(num_output_slots_), {});
    self.joins.assign(static_cast<size_t>(num_join_slots_), {});
    const int oslot = output_slot_[static_cast<size_t>(pnode.index)];
    if (oslot >= 0) {
      if (pnode.want_cont) {
        self.outputs[static_cast<size_t>(oslot)] = xml::Serialize(dnode);
      } else {
        self.outputs[static_cast<size_t>(oslot)] = dnode.StringValue();
      }
    }
    const int jslot = join_slot_[static_cast<size_t>(pnode.index)];
    if (jslot >= 0) {
      self.joins[static_cast<size_t>(jslot)] = dnode.StringValue();
    }

    // Cartesian product over children, merged into `self`.
    std::vector<Partial> combined{std::move(self)};
    for (auto& candidates : child_partials) {
      std::vector<Partial> next;
      next.reserve(combined.size() * candidates.size());
      for (const Partial& base : combined) {
        for (const Partial& cand : candidates) {
          Partial merged = base;
          for (size_t i = 0; i < merged.outputs.size(); ++i) {
            if (!cand.outputs[i].empty()) merged.outputs[i] = cand.outputs[i];
          }
          for (size_t i = 0; i < merged.joins.size(); ++i) {
            if (!cand.joins[i].empty()) merged.joins[i] = cand.joins[i];
          }
          next.push_back(std::move(merged));
          if (first_only) break;
        }
        if (first_only && !next.empty()) break;
      }
      combined = std::move(next);
    }
    for (auto& partial : combined) out->push_back(std::move(partial));
  }

  const TreePattern& pattern_;
  const xml::Document& doc_;
  std::vector<int> output_slot_;
  std::vector<int> join_slot_;
  int num_output_slots_ = 0;
  int num_join_slots_ = 0;
};

}  // namespace

size_t QueryResult::ContributingDocuments() const {
  std::set<std::string> uris;
  for (const auto& row : row_uris) uris.insert(row.begin(), row.end());
  return uris.size();
}

uint64_t QueryResult::SizeBytes() const {
  uint64_t total = 0;
  for (const auto& row : rows) {
    total += 16;  // row framing
    for (const auto& col : row) total += col.size() + 12;
  }
  return total;
}

std::string QueryResult::ToXml() const {
  std::string out = "<results>";
  for (const auto& row : rows) {
    out += "<row>";
    for (const auto& col : row) {
      out += "<col>";
      // `cont` columns already hold XML; `val` columns are escaped text.
      // Heuristic: serialized subtrees start with '<'.
      if (!col.empty() && col[0] == '<') {
        out += col;
      } else {
        out += xml::EscapeText(col);
      }
      out += "</col>";
    }
    out += "</row>";
  }
  out += "</results>";
  return out;
}

Evaluator::WorkStats& Evaluator::ThreadStats() {
  thread_local WorkStats stats;
  return stats;
}

bool& Evaluator::ThreadStatsPending() {
  thread_local bool pending = false;
  return pending;
}

Evaluator::WorkStats Evaluator::ConsumeWorkStats() {
  WorkStats out = ThreadStats();
  ThreadStats() = WorkStats();
  ThreadStatsPending() = false;
  return out;
}

bool Evaluator::HasPendingWorkStats() { return ThreadStatsPending(); }

std::vector<PatternMatch> Evaluator::MatchPattern(const TreePattern& pattern,
                                                  const xml::Document& doc) {
  ThreadStats().doc_bytes_scanned += doc.size_bytes();
  ThreadStatsPending() = true;
  PatternMatcher matcher(pattern, doc);
  auto matches = matcher.AllMatches(/*first_only=*/false);
  ThreadStats().embeddings_found += matches.size();
  return matches;
}

bool Evaluator::Matches(const TreePattern& pattern,
                        const xml::Document& doc) {
  ThreadStats().doc_bytes_scanned += doc.size_bytes();
  ThreadStatsPending() = true;
  PatternMatcher matcher(pattern, doc);
  return !matcher.AllMatches(/*first_only=*/true).empty();
}

QueryResult Evaluator::Evaluate(const Query& query,
                                const std::vector<const xml::Document*>& docs) {
  // Step 1: evaluate each tree pattern individually over every document.
  std::vector<std::vector<PatternMatch>> per_pattern(query.patterns().size());
  for (size_t p = 0; p < query.patterns().size(); ++p) {
    for (const xml::Document* doc : docs) {
      auto matches = MatchPattern(query.patterns()[p], *doc);
      for (auto& match : matches) {
        per_pattern[p].push_back(std::move(match));
      }
    }
  }

  // Map (pattern, node index) -> join slot for predicate evaluation.
  std::vector<std::vector<int>> join_slot(query.patterns().size());
  for (size_t p = 0; p < query.patterns().size(); ++p) {
    const TreePattern& pattern = query.patterns()[p];
    join_slot[p].assign(static_cast<size_t>(pattern.size()), -1);
    int slot = 0;
    for (const PatternNode* node : pattern.nodes()) {
      if (!node->join_tag.empty()) {
        join_slot[p][static_cast<size_t>(node->index)] = slot++;
      }
    }
  }

  // Step 2: combine the per-pattern relations with the value joins
  // (nested-loop; pattern result sets are small after index pruning).
  QueryResult result;
  std::vector<const PatternMatch*> current(query.patterns().size(), nullptr);
  std::function<void(size_t)> combine = [&](size_t p) {
    if (p == query.patterns().size()) {
      std::vector<std::string> row;
      std::vector<std::string> uris;
      for (const PatternMatch* match : current) {
        row.insert(row.end(), match->outputs.begin(), match->outputs.end());
        uris.push_back(match->uri);
      }
      result.rows.push_back(std::move(row));
      result.row_uris.push_back(std::move(uris));
      return;
    }
    for (const PatternMatch& match : per_pattern[p]) {
      current[p] = &match;
      // Check every join whose two sides are already bound.
      bool ok = true;
      for (const ValueJoin& join : query.joins()) {
        const size_t lp = static_cast<size_t>(join.left_pattern);
        const size_t rp = static_cast<size_t>(join.right_pattern);
        if (lp > p || rp > p) continue;  // a side not bound yet
        const int ls = join_slot[lp][static_cast<size_t>(join.left_node)];
        const int rs = join_slot[rp][static_cast<size_t>(join.right_node)];
        if (ls < 0 || rs < 0) continue;  // join on untagged node: ignore
        if (current[lp]->join_values[static_cast<size_t>(ls)] !=
            current[rp]->join_values[static_cast<size_t>(rs)]) {
          ok = false;
          break;
        }
      }
      if (ok) combine(p + 1);
    }
  };
  if (!query.patterns().empty()) combine(0);

  ThreadStats().result_bytes += result.SizeBytes();
  ThreadStatsPending() = true;
  return result;
}

}  // namespace webdex::query
