#include "query/xquery.h"

#include "common/strings.h"

namespace webdex::query {
namespace {

std::string VarName(size_t pattern, int node) {
  return StrFormat("$p%zun%d", pattern, node);
}

// Escapes a constant for inclusion in an XQuery string literal.
std::string QuoteLiteral(const std::string& value) {
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

void EmitBindings(const PatternNode& node, size_t pattern,
                  const std::string& parent_expr, bool* first,
                  std::string* out) {
  const std::string var = VarName(pattern, node.index);
  if (!*first) out->append(",\n    ");
  *first = false;
  out->append(var);
  out->append(" in ");
  out->append(parent_expr);
  out->append(node.axis == Axis::kChild ? "/" : "//");
  if (node.is_attribute) out->push_back('@');
  out->append(node.label);
  for (const auto& child : node.children) {
    EmitBindings(*child, pattern, var, first, out);
  }
}

void EmitPredicates(const PatternNode& node, size_t pattern,
                    std::vector<std::string>* conjuncts) {
  const std::string var = VarName(pattern, node.index);
  switch (node.predicate.kind) {
    case PredicateKind::kNone:
      break;
    case PredicateKind::kEquals:
      conjuncts->push_back(StrFormat(
          "string(%s) = %s", var.c_str(),
          QuoteLiteral(node.predicate.constant).c_str()));
      break;
    case PredicateKind::kContains:
      conjuncts->push_back(StrFormat(
          "contains(string(%s), %s)", var.c_str(),
          QuoteLiteral(node.predicate.constant).c_str()));
      break;
    case PredicateKind::kRange:
      conjuncts->push_back(StrFormat(
          "number(%s) %s %g and number(%s) %s %g", var.c_str(),
          node.predicate.lo_inclusive ? "ge" : "gt", node.predicate.lo,
          var.c_str(), node.predicate.hi_inclusive ? "le" : "lt",
          node.predicate.hi));
      break;
  }
  for (const auto& child : node.children) {
    EmitPredicates(*child, pattern, conjuncts);
  }
}

}  // namespace

std::string ToXQuery(const Query& query, const std::string& collection) {
  std::string out = "for ";
  bool first = true;
  for (size_t p = 0; p < query.patterns().size(); ++p) {
    const PatternNode& root = query.patterns()[p].root();
    // The pattern root binds against the collection; a child-axis root
    // anchors at the document element (collection()/label), a
    // descendant-axis root floats (collection()//label).
    const std::string var = VarName(p, root.index);
    if (!first) out.append(",\n    ");
    first = false;
    out.append(var);
    out.append(" in collection(");
    out.append(QuoteLiteral(collection));
    out.append(")");
    out.append(root.axis == Axis::kChild ? "/" : "//");
    if (root.is_attribute) out.push_back('@');
    out.append(root.label);
    for (const auto& child : root.children) {
      EmitBindings(*child, p, var, &first, &out);
    }
  }

  std::vector<std::string> conjuncts;
  for (size_t p = 0; p < query.patterns().size(); ++p) {
    EmitPredicates(query.patterns()[p].root(), p, &conjuncts);
  }
  for (const ValueJoin& join : query.joins()) {
    conjuncts.push_back(StrFormat(
        "string(%s) = string(%s)",
        VarName(static_cast<size_t>(join.left_pattern), join.left_node)
            .c_str(),
        VarName(static_cast<size_t>(join.right_pattern), join.right_node)
            .c_str()));
  }
  if (!conjuncts.empty()) {
    out.append("\nwhere ");
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (i > 0) out.append("\n  and ");
      out.append(conjuncts[i]);
    }
  }

  out.append("\nreturn <row>");
  for (size_t p = 0; p < query.patterns().size(); ++p) {
    for (const PatternNode* node : query.patterns()[p].output_nodes()) {
      const std::string var = VarName(p, node->index);
      if (node->want_cont) {
        out.append(StrFormat("<col>{%s}</col>", var.c_str()));
      } else {
        out.append(StrFormat("<col>{string(%s)}</col>", var.c_str()));
      }
    }
  }
  out.append("</row>");
  return out;
}

}  // namespace webdex::query
