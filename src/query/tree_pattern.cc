#include "query/tree_pattern.h"

#include <cstdlib>
#include <functional>

#include "common/strings.h"

namespace webdex::query {

bool Predicate::Matches(std::string_view value) const {
  switch (kind) {
    case PredicateKind::kNone:
      return true;
    case PredicateKind::kEquals:
      return Trim(value) == constant;
    case PredicateKind::kContains:
      return ContainsWord(value, constant);
    case PredicateKind::kRange: {
      const std::string trimmed(Trim(value));
      if (trimmed.empty()) return false;
      char* end = nullptr;
      const double v = std::strtod(trimmed.c_str(), &end);
      if (end == trimmed.c_str()) return false;  // not numeric
      const bool above_lo = lo_inclusive ? v >= lo : v > lo;
      const bool below_hi = hi_inclusive ? v <= hi : v < hi;
      return above_lo && below_hi;
    }
  }
  return false;
}

namespace {

void CollectNodes(PatternNode* node, PatternNode* parent,
                  std::vector<PatternNode*>* nodes) {
  node->parent = parent;
  node->index = static_cast<int>(nodes->size());
  nodes->push_back(node);
  for (auto& child : node->children) {
    CollectNodes(child.get(), node, nodes);
  }
}

void AppendNode(const PatternNode& node, bool render_axis, std::string* out) {
  if (render_axis) {
    out->append(node.axis == Axis::kChild ? "/" : "//");
  }
  if (node.is_attribute) out->push_back('@');
  out->append(node.label);
  if (node.want_val) out->append(":val");
  if (node.want_cont) out->append(":cont");
  if (!node.join_tag.empty()) {
    out->push_back('#');
    out->append(node.join_tag);
  }
  switch (node.predicate.kind) {
    case PredicateKind::kNone:
      break;
    case PredicateKind::kEquals:
      out->append("='");
      out->append(node.predicate.constant);
      out->push_back('\'');
      break;
    case PredicateKind::kContains:
      out->append("~'");
      out->append(node.predicate.constant);
      out->push_back('\'');
      break;
    case PredicateKind::kRange:
      out->append(StrFormat(" in%c%g,%g%c",
                            node.predicate.lo_inclusive ? '[' : '(',
                            node.predicate.lo, node.predicate.hi,
                            node.predicate.hi_inclusive ? ']' : ')'));
      break;
  }
  if (!node.children.empty()) {
    out->push_back('[');
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (i > 0) out->append(", ");
      AppendNode(*node.children[i], /*render_axis=*/true, out);
    }
    out->push_back(']');
  }
}

}  // namespace

TreePattern::TreePattern(std::unique_ptr<PatternNode> root)
    : root_(std::move(root)) {
  CollectNodes(root_.get(), nullptr, &nodes_);
  for (const PatternNode* node : nodes_) {
    if (node->HasOutput()) output_nodes_.push_back(node);
  }
}

std::vector<std::vector<const PatternNode*>> TreePattern::RootToLeafPaths()
    const {
  std::vector<std::vector<const PatternNode*>> paths;
  std::vector<const PatternNode*> current;
  // Depth-first walk collecting the path at each leaf.
  std::function<void(const PatternNode&)> walk =
      [&](const PatternNode& node) {
        current.push_back(&node);
        if (node.children.empty()) {
          paths.push_back(current);
        } else {
          for (const auto& child : node.children) walk(*child);
        }
        current.pop_back();
      };
  walk(*root_);
  return paths;
}

std::string TreePattern::ToString() const {
  std::string out;
  AppendNode(*root_, /*render_axis=*/true, &out);
  return out;
}

Query::Query(std::vector<TreePattern> patterns, std::vector<ValueJoin> joins)
    : patterns_(std::move(patterns)), joins_(std::move(joins)) {}

bool Query::HasRangePredicate() const {
  for (const auto& pattern : patterns_) {
    for (const PatternNode* node : pattern.nodes()) {
      if (node->predicate.kind == PredicateKind::kRange) return true;
    }
  }
  return false;
}

std::string Query::ToString() const {
  std::string out;
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (i > 0) out.append("; ");
    out.append(patterns_[i].ToString());
  }
  if (!joins_.empty()) {
    out.append(" where ");
    for (size_t i = 0; i < joins_.size(); ++i) {
      if (i > 0) out.append(", ");
      const ValueJoin& join = joins_[i];
      out.append(StrFormat("$%d.%d=$%d.%d", join.left_pattern,
                           join.left_node, join.right_pattern,
                           join.right_node));
    }
  }
  return out;
}

}  // namespace webdex::query
