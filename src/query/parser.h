#ifndef WEBDEX_QUERY_PARSER_H_
#define WEBDEX_QUERY_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "query/tree_pattern.h"

namespace webdex::query {

/// Parses the compact textual form of the paper's query dialect
/// (Section 4: value joins over tree patterns).  Grammar:
///
///   query     := pattern (';' pattern)* ('where' join (',' join)*)?
///   pattern   := step
///   step      := axis? node
///   axis      := '/' | '//'          (default '//' for the pattern root)
///   node      := '@'? NAME marker* predicate? tail?
///   tail      := ('[' step (',' step)* ']')? (axis node ...)?
///                -- bracketed branches, then optional XPath-style
///                -- linear continuation: //g[/v='2']/n == //g[/v='2', /n]
///   marker    := ':val' | ':cont' | '#' NAME        (join tag)
///   predicate := '=' literal                        (equality)
///              | '~' literal                        (containment)
///              | 'in' ('['|'(') number ',' number (']'|')')  (range)
///   literal   := '\'' chars '\'' | NAME | number
///
/// The paper's Figure 2 queries read:
///   q1: //painting[/name:val, //painter/name:val]
///   q2: //painting[//description:cont, /year='1854']
///   q3: //painting[/name~'Lion', //painter/name/last:val]
///   q4: //painting[/name:val, /painter/name[/last='Manet'],
///                  /year in(1854,1865]]
///   q5: //museum[/name:val, /painting/@id#x];
///       //painting[/@id#y, /painter/name[/last='Delacroix']] where #x=#y
Result<Query> ParseQuery(std::string_view text);

}  // namespace webdex::query

#endif  // WEBDEX_QUERY_PARSER_H_
