#ifndef WEBDEX_QUERY_XQUERY_H_
#define WEBDEX_QUERY_XQUERY_H_

#include <string>

#include "query/tree_pattern.h"

namespace webdex::query {

/// Renders a query of the paper's dialect as an XQuery FLWOR expression.
///
/// Paper Section 4: "The translation to XQuery syntax is pretty
/// straightforward and we omit it" — this is that translation, spelled
/// out.  Every pattern node binds one `for` variable walking the
/// child (`/`) or descendant (`//`) axis from its parent's variable;
/// value predicates and value joins become `where` conjuncts; `val`
/// annotations project `string($v)` and `cont` annotations project the
/// node itself, wrapped in a <row>/<col> result constructor matching
/// QueryResult::ToXml.
///
/// Example — the paper's q3
///   //painting[/name~'Lion', //painter/name/last:val]
/// becomes
///   for $p0n0 in collection("webdex")//painting,
///       $p0n1 in $p0n0/name,
///       $p0n2 in $p0n0//painter,
///       $p0n3 in $p0n2/name,
///       $p0n4 in $p0n3/last
///   where contains(string($p0n1), "Lion")
///   return <row><col>{string($p0n4)}</col></row>
std::string ToXQuery(const Query& query,
                     const std::string& collection = "webdex");

}  // namespace webdex::query

#endif  // WEBDEX_QUERY_XQUERY_H_
