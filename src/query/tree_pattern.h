#ifndef WEBDEX_QUERY_TREE_PATTERN_H_
#define WEBDEX_QUERY_TREE_PATTERN_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace webdex::query {

/// Edge type between a pattern node and its parent (paper Section 4:
/// single line = parent-child, double line = ancestor-descendant).
enum class Axis { kChild, kDescendant };

enum class PredicateKind {
  kNone,
  kEquals,    // = c        : string value equals constant
  kContains,  // contains(c): string value contains the word c
  kRange,     // a ? val ? b: numeric value within range
};

/// A value predicate attached to a pattern node (Section 4).
struct Predicate {
  PredicateKind kind = PredicateKind::kNone;
  /// Constant for kEquals / kContains.
  std::string constant;
  /// Bounds for kRange.
  double lo = 0;
  double hi = 0;
  bool lo_inclusive = true;
  bool hi_inclusive = true;

  /// True if `value` (a node string value) satisfies this predicate.
  /// Takes a view: kEquals and kContains compare in place; only kRange
  /// copies (strtod needs a NUL terminator).
  bool Matches(std::string_view value) const;
};

/// One node of a tree pattern.
struct PatternNode {
  /// Edge from the parent pattern node (ignored on the pattern root,
  /// which may match anywhere in a document — see axis-from-root below).
  Axis axis = Axis::kDescendant;
  /// Element tag name, or attribute name when `is_attribute`.
  std::string label;
  bool is_attribute = false;
  /// `val` annotation: project the node's string value.
  bool want_val = false;
  /// `cont` annotation: project the full subtree serialized as XML.
  bool want_cont = false;
  Predicate predicate;
  /// Non-empty when this node participates in a value join ("#tag" in the
  /// query syntax, dashed line in the paper's Figure 2).
  std::string join_tag;
  std::vector<std::unique_ptr<PatternNode>> children;

  // Derived bookkeeping (filled by TreePattern::Finalize).
  PatternNode* parent = nullptr;
  int index = -1;  // pre-order position within the pattern

  bool HasOutput() const { return want_val || want_cont; }
};

/// A single tree pattern: the unit the index look-up strategies work on.
class TreePattern {
 public:
  explicit TreePattern(std::unique_ptr<PatternNode> root);

  TreePattern(TreePattern&&) = default;
  TreePattern& operator=(TreePattern&&) = default;

  const PatternNode& root() const { return *root_; }

  /// All nodes in pre-order; stable indices match PatternNode::index.
  const std::vector<PatternNode*>& nodes() const { return nodes_; }
  int size() const { return static_cast<int>(nodes_.size()); }

  /// Nodes with val/cont annotations, in pre-order (the output schema).
  const std::vector<const PatternNode*>& output_nodes() const {
    return output_nodes_;
  }

  /// Every root-to-leaf label path of the pattern, as (axis, node)
  /// sequences — what the LUP look-up matches against stored data paths
  /// (Section 5.2).
  std::vector<std::vector<const PatternNode*>> RootToLeafPaths() const;

  /// Compact, parseable rendering (the parser's syntax).
  std::string ToString() const;

 private:
  std::unique_ptr<PatternNode> root_;
  std::vector<PatternNode*> nodes_;
  std::vector<const PatternNode*> output_nodes_;
};

/// A value join between two pattern nodes identified by (pattern index,
/// node index); the joined nodes must have equal string values
/// (Section 4, dashed lines).
struct ValueJoin {
  int left_pattern = 0;
  int left_node = 0;
  int right_pattern = 0;
  int right_node = 0;
};

/// A full query: one or more tree patterns connected by value joins.
class Query {
 public:
  Query(std::vector<TreePattern> patterns, std::vector<ValueJoin> joins);

  Query(Query&&) = default;
  Query& operator=(Query&&) = default;

  const std::vector<TreePattern>& patterns() const { return patterns_; }
  const std::vector<ValueJoin>& joins() const { return joins_; }
  bool HasValueJoins() const { return !joins_.empty(); }

  /// True if any node carries a range predicate (which index look-ups
  /// must ignore; Section 5.5).
  bool HasRangePredicate() const;

  std::string ToString() const;

 private:
  std::vector<TreePattern> patterns_;
  std::vector<ValueJoin> joins_;
};

}  // namespace webdex::query

#endif  // WEBDEX_QUERY_TREE_PATTERN_H_
