#include "query/logical_plan.h"

#include "common/strings.h"

namespace webdex::query {

LogicalPlan::LogicalPlan(Query query) : query_(std::move(query)) {
  patterns_.reserve(query_.patterns().size());
  for (size_t i = 0; i < query_.patterns().size(); ++i) {
    const TreePattern& pattern = query_.patterns()[i];
    PatternFacts facts;
    facts.pattern = static_cast<int>(i);
    facts.nodes = pattern.size();
    facts.branches = static_cast<int>(pattern.RootToLeafPaths().size());
    facts.outputs = static_cast<int>(pattern.output_nodes().size());
    for (const PatternNode* node : pattern.nodes()) {
      if (node->predicate.kind != PredicateKind::kNone) {
        facts.predicates += 1;
        if (node->predicate.kind == PredicateKind::kRange) {
          facts.has_range = true;
        }
      }
    }
    for (const ValueJoin& join : query_.joins()) {
      if (join.left_pattern == facts.pattern ||
          join.right_pattern == facts.pattern) {
        facts.joined = true;
        break;
      }
    }
    patterns_.push_back(facts);
  }
}

LogicalPlan LogicalPlan::Build(Query query) {
  return LogicalPlan(std::move(query));
}

std::string LogicalPlan::ToString() const {
  std::string out = StrFormat("logical: %zu pattern%s, %zu value join%s\n",
                              query_.patterns().size(),
                              query_.patterns().size() == 1 ? "" : "s",
                              query_.joins().size(),
                              query_.joins().size() == 1 ? "" : "s");
  for (const PatternFacts& facts : patterns_) {
    out += StrFormat(
        "  pattern %d: %s\n"
        "    nodes=%d branches=%d outputs=%d predicates=%d%s%s\n",
        facts.pattern + 1,
        query_.patterns()[facts.pattern].ToString().c_str(), facts.nodes,
        facts.branches, facts.outputs, facts.predicates,
        facts.has_range ? " range" : "", facts.joined ? " joined" : "");
  }
  return out;
}

}  // namespace webdex::query
