#include "cloud/simpledb.h"

#include <cctype>

#include "cloud/fault.h"
#include "common/strings.h"

namespace webdex::cloud {
namespace {

bool IsTextual(const std::string& value) {
  for (unsigned char c : value) {
    if (c < 0x09) return false;  // NUL and other control bytes
  }
  return true;
}

}  // namespace

SimpleDb::SimpleDb(const SimpleDbConfig& config, UsageMeter* meter,
                   FaultInjector* injector, common::MetricRegistry* metrics)
    : config_(config),
      meter_(meter),
      injector_(injector),
      batch_put_metrics_(OpMetrics::For(metrics, "service.simpledb.batch_put")),
      get_metrics_(OpMetrics::For(metrics, "service.simpledb.get")),
      scan_metrics_(OpMetrics::For(metrics, "service.simpledb.scan")),
      delete_metrics_(OpMetrics::For(metrics, "service.simpledb.delete_item")),
      create_table_metrics_(
          OpMetrics::For(metrics, "service.simpledb.create_domain")),
      throttled_metric_(
          metrics == nullptr
              ? nullptr
              : metrics->GetCounter("service.simpledb.throttled.count")),
      request_limiter_(config.requests_per_second) {}

Status SimpleDb::MaybeThrottle(SimAgent& agent, bool write, Micros op_start,
                               const OpMetrics& op) {
  if (config_.max_backlog_micros <= 0) return Status::OK();
  const Micros backlog = request_limiter_.BacklogAt(agent.now());
  if (backlog <= config_.max_backlog_micros) return Status::OK();
  const Micros hint = backlog - config_.max_backlog_micros;
  if (write) {
    meter_->mutable_usage().sdb_put_requests += 1;
  } else {
    meter_->mutable_usage().sdb_get_requests += 1;
  }
  meter_->mutable_usage().throttled_requests += 1;
  if (throttled_metric_ != nullptr) throttled_metric_->Add(1);
  agent.Advance(config_.request_latency);
  op.Record(agent, op_start, /*error=*/true);
  return Status::ResourceExhausted(
      StrFormat("request rate exceeded; retry after %lld us",
                static_cast<long long>(hint)),
      hint);
}

Status SimpleDb::CreateTable(SimAgent& agent, const std::string& table) {
  const Micros op_start = agent.now();
  if (injector_ != nullptr) {
    // Same contract as DynamoDb::CreateTable: a faulted create bills its
    // round trip, a successful one is free (keeps legacy runs identical).
    Status fault = injector_->MaybeFail(ServiceId::kSimpleDb,
                                        "sdb.createdomain:" + table,
                                        agent.now());
    if (!fault.ok()) {
      meter_->mutable_usage().sdb_put_requests += 1;
      agent.Advance(config_.request_latency);
      create_table_metrics_.Record(agent, op_start, /*error=*/true);
      return fault;
    }
  }
  auto [it, inserted] = tables_.try_emplace(table);
  (void)it;
  if (!inserted) {
    create_table_metrics_.Record(agent, op_start, /*error=*/true);
    return Status::AlreadyExists("domain exists: " + table);
  }
  create_table_metrics_.Record(agent, op_start, /*error=*/false);
  return Status::OK();
}

Status SimpleDb::RestoreTable(const std::string& table) {
  auto [it, inserted] = tables_.try_emplace(table);
  (void)it;
  if (!inserted) return Status::AlreadyExists("domain exists: " + table);
  return Status::OK();
}

bool SimpleDb::HasTable(const std::string& table) const {
  return tables_.count(table) > 0;
}

uint64_t SimpleDb::AttributeCount(const Attributes& attrs) {
  uint64_t n = 0;
  for (const auto& [name, values] : attrs) {
    (void)name;
    n += values.size();
  }
  return n;
}

Status SimpleDb::ValidateItem(const Item& item) const {
  if (item.hash_key.empty() || item.range_key.empty()) {
    return Status::InvalidArgument("empty key");
  }
  if (item.hash_key.size() + item.range_key.size() > 1024) {
    return Status::InvalidArgument("item name exceeds 1KB");
  }
  if (AttributeCount(item.attrs) > 256) {
    return Status::InvalidArgument("more than 256 attributes per item");
  }
  for (const auto& [name, values] : item.attrs) {
    if (name.size() > MaxValueBytes()) {
      return Status::InvalidArgument("attribute name exceeds 1KB");
    }
    for (const auto& v : values) {
      if (v.size() > MaxValueBytes()) {
        return Status::InvalidArgument(
            StrFormat("attribute value exceeds 1KB (%zu bytes)", v.size()));
      }
      if (!IsTextual(v)) {
        return Status::InvalidArgument(
            "SimpleDB values must be text; armour binary data first");
      }
    }
  }
  return Status::OK();
}

Status SimpleDb::BatchPut(SimAgent& agent, const std::string& table,
                          const std::vector<Item>& items,
                          std::vector<Item>* unprocessed) {
  if (unprocessed != nullptr) unprocessed->clear();
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no such domain: " + table);
  for (const auto& item : items) {
    WEBDEX_RETURN_IF_ERROR(ValidateItem(item));
  }
  Table& t = it->second;
  const int batch_limit = BatchPutLimit();
  size_t index = 0;
  while (index < items.size()) {
    const size_t batch_end =
        std::min(items.size(), index + static_cast<size_t>(batch_limit));
    const Micros page_start = agent.now();
    if (injector_ != nullptr) {
      // A failed page bills its API round trip but no box usage (the
      // data-proportional term); nothing of the page commits, and
      // everything not yet stored is reported back for re-batching.
      Status fault = injector_->MaybeFail(ServiceId::kSimpleDb,
                                          "sdb.batchput:" + table, agent.now());
      if (!fault.ok()) {
        meter_->mutable_usage().sdb_put_requests += 1;
        agent.Advance(config_.request_latency);
        batch_put_metrics_.Record(agent, page_start, /*error=*/true);
        if (unprocessed != nullptr) {
          unprocessed->insert(unprocessed->end(), items.begin() + index,
                              items.end());
        }
        return fault;
      }
    }
    Status throttled =
        MaybeThrottle(agent, /*write=*/true, page_start, batch_put_metrics_);
    if (!throttled.ok()) {
      if (unprocessed != nullptr) {
        unprocessed->insert(unprocessed->end(), items.begin() + index,
                            items.end());
      }
      return throttled;
    }
    double box_hours = 0;
    for (size_t i = index; i < batch_end; ++i) {
      const Item& item = items[i];
      auto& hash_items = t.items[item.hash_key];
      auto slot = hash_items.find(item.range_key);
      if (slot != hash_items.end()) {
        const Item old{item.hash_key, item.range_key, slot->second};
        t.stored_bytes -= old.SizeBytes();
        t.item_count -= 1;
        t.attribute_count -= AttributeCount(slot->second);
        slot->second = item.attrs;
      } else {
        hash_items.emplace(item.range_key, item.attrs);
      }
      t.stored_bytes += item.SizeBytes();
      t.item_count += 1;
      t.attribute_count += AttributeCount(item.attrs);
      box_hours += meter_->pricing().simpledb_box_hours_per_put;
      meter_->mutable_usage().sdb_put_requests += 1;
    }
    meter_->mutable_usage().sdb_box_hours += box_hours;
    agent.AdvanceTo(request_limiter_.Acquire(agent.now(), 1.0));
    agent.Advance(config_.request_latency);
    batch_put_metrics_.Record(agent, page_start, /*error=*/false);
    index = batch_end;
  }
  return Status::OK();
}

Result<std::vector<Item>> SimpleDb::Get(SimAgent& agent,
                                        const std::string& table,
                                        const std::string& hash_key) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no such domain: " + table);
  const Micros op_start = agent.now();
  if (injector_ != nullptr) {
    Status fault = injector_->MaybeFail(ServiceId::kSimpleDb,
                                        "sdb.get:" + table, agent.now());
    if (!fault.ok()) {
      meter_->mutable_usage().sdb_get_requests += 1;
      agent.Advance(config_.request_latency);
      get_metrics_.Record(agent, op_start, /*error=*/true);
      return fault;
    }
  }
  WEBDEX_RETURN_IF_ERROR(
      MaybeThrottle(agent, /*write=*/false, op_start, get_metrics_));
  std::vector<Item> out;
  auto hit = it->second.items.find(hash_key);
  if (hit != it->second.items.end()) {
    for (const auto& [range_key, attrs] : hit->second) {
      out.push_back(Item{hash_key, range_key, attrs});
    }
  }
  // SimpleDB's select paginates at 2500 attributes / 1 MB; model one extra
  // request round trip per page.
  uint64_t attr_total = 0;
  for (const auto& item : out) attr_total += AttributeCount(item.attrs);
  const uint64_t pages = attr_total == 0 ? 1 : (attr_total + 2499) / 2500;
  meter_->mutable_usage().sdb_get_requests += pages;
  meter_->mutable_usage().sdb_box_hours +=
      meter_->pricing().simpledb_box_hours_per_get *
      static_cast<double>(pages);
  for (uint64_t i = 0; i < pages; ++i) {
    agent.AdvanceTo(request_limiter_.Acquire(agent.now(), 1.0));
    agent.Advance(config_.request_latency);
  }
  get_metrics_.Record(agent, op_start, /*error=*/false);
  return out;
}

Result<std::vector<Item>> SimpleDb::BatchGet(
    SimAgent& agent, const std::string& table,
    const std::vector<std::string>& hash_keys) {
  std::vector<Item> out;
  for (const auto& key : hash_keys) {
    auto r = Get(agent, table, key);
    if (!r.ok()) return r.status();
    for (auto& item : r.value()) out.push_back(std::move(item));
  }
  return out;
}

Result<std::vector<Item>> SimpleDb::Scan(SimAgent& agent,
                                        const std::string& table) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no such domain: " + table);
  std::vector<Item> out;
  uint64_t attr_total = 0;
  for (const auto& [hash_key, ranges] : it->second.items) {
    for (const auto& [range_key, attrs] : ranges) {
      attr_total += AttributeCount(attrs);
      out.push_back(Item{hash_key, range_key, attrs});
    }
  }
  // A full select paginates at 2500 attributes, like Get.
  const uint64_t pages = attr_total == 0 ? 1 : (attr_total + 2499) / 2500;
  for (uint64_t page = 0; page < pages; ++page) {
    const Micros page_start = agent.now();
    if (injector_ != nullptr) {
      Status fault = injector_->MaybeFail(ServiceId::kSimpleDb,
                                          "sdb.scan:" + table, agent.now());
      if (!fault.ok()) {
        meter_->mutable_usage().sdb_get_requests += 1;
        agent.Advance(config_.request_latency);
        scan_metrics_.Record(agent, page_start, /*error=*/true);
        return fault;
      }
    }
    WEBDEX_RETURN_IF_ERROR(
        MaybeThrottle(agent, /*write=*/false, page_start, scan_metrics_));
    meter_->mutable_usage().sdb_get_requests += 1;
    meter_->mutable_usage().sdb_box_hours +=
        meter_->pricing().simpledb_box_hours_per_get;
    agent.AdvanceTo(request_limiter_.Acquire(agent.now(), 1.0));
    agent.Advance(config_.request_latency);
    scan_metrics_.Record(agent, page_start, /*error=*/false);
  }
  return out;
}

Status SimpleDb::DeleteItem(SimAgent& agent, const std::string& table,
                            const std::string& hash_key,
                            const std::string& range_key) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no such domain: " + table);
  const Micros op_start = agent.now();
  if (injector_ != nullptr) {
    Status fault = injector_->MaybeFail(ServiceId::kSimpleDb,
                                        "sdb.delete:" + table, agent.now());
    if (!fault.ok()) {
      meter_->mutable_usage().sdb_put_requests += 1;
      agent.Advance(config_.request_latency);
      delete_metrics_.Record(agent, op_start, /*error=*/true);
      return fault;
    }
  }
  WEBDEX_RETURN_IF_ERROR(
      MaybeThrottle(agent, /*write=*/true, op_start, delete_metrics_));
  Table& t = it->second;
  auto hit = t.items.find(hash_key);
  if (hit != t.items.end()) {
    auto slot = hit->second.find(range_key);
    if (slot != hit->second.end()) {
      const Item old{hash_key, range_key, slot->second};
      t.stored_bytes -= old.SizeBytes();
      t.item_count -= 1;
      t.attribute_count -= AttributeCount(slot->second);
      hit->second.erase(slot);
      if (hit->second.empty()) t.items.erase(hit);
    }
  }
  meter_->mutable_usage().sdb_put_requests += 1;
  meter_->mutable_usage().sdb_box_hours +=
      meter_->pricing().simpledb_box_hours_per_put;
  agent.AdvanceTo(request_limiter_.Acquire(agent.now(), 1.0));
  agent.Advance(config_.request_latency);
  delete_metrics_.Record(agent, op_start, /*error=*/false);
  return Status::OK();
}

uint64_t SimpleDb::StoredBytes(const std::string& table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.stored_bytes;
}

uint64_t SimpleDb::OverheadBytes(const std::string& table) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return 0;
  return it->second.item_count * kPerItemOverheadBytes +
         it->second.attribute_count * kPerAttributeOverheadBytes;
}

uint64_t SimpleDb::ItemCount(const std::string& table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.item_count;
}

void SimpleDb::ForEachItem(
    const std::function<void(const std::string&, const Item&)>& fn) const {
  for (const auto& [name, table] : tables_) {
    for (const auto& [hash_key, ranges] : table.items) {
      for (const auto& [range_key, attrs] : ranges) {
        fn(name, Item{hash_key, range_key, attrs});
      }
    }
  }
}

void SimpleDb::RestoreItem(const std::string& table, const Item& item) {
  Table& t = tables_[table];
  t.items[item.hash_key][item.range_key] = item.attrs;
  t.stored_bytes += item.SizeBytes();
  t.item_count += 1;
  t.attribute_count += AttributeCount(item.attrs);
}

std::vector<std::string> SimpleDb::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    (void)table;
    names.push_back(name);
  }
  return names;
}

}  // namespace webdex::cloud
