#include "cloud/pricing.h"

namespace webdex::cloud {

const char* InstanceTypeName(InstanceType t) {
  switch (t) {
    case InstanceType::kLarge:
      return "L";
    case InstanceType::kExtraLarge:
      return "XL";
  }
  return "?";
}

Pricing Pricing::GoogleCloud2012() {
  // Google Cloud Storage / High Replication Datastore / Compute Engine /
  // Task Queues, late-2012 list prices (approximate; the point of the
  // preset is the Section 3 portability argument, not price archaeology).
  Pricing p;
  p.st_month_gb = 0.085;
  p.st_put = 0.00001;
  p.st_get = 0.000001;
  p.idx_month_gb = 0.24;
  p.idx_put = 0.0000002;
  p.idx_get = 0.00000007;
  p.vm_hour_large = 0.276;   // n1-standard-2
  p.vm_hour_xlarge = 0.552;  // n1-standard-4
  p.queue_request = 0.000001;
  p.egress_gb = 0.21;
  return p;
}

Pricing Pricing::WindowsAzure2012() {
  // Azure BLOB Storage / Tables / Virtual Machines / Queues, late 2012.
  Pricing p;
  p.st_month_gb = 0.095;
  p.st_put = 0.00001;
  p.st_get = 0.000001;
  p.idx_month_gb = 0.095;  // Azure Tables billed as storage
  p.idx_put = 0.0000001;
  p.idx_get = 0.0000001;
  p.vm_hour_large = 0.32;
  p.vm_hour_xlarge = 0.64;
  p.queue_request = 0.0000001;
  p.egress_gb = 0.19;
  return p;
}

}  // namespace webdex::cloud
