#include "cloud/queue_service.h"

#include <algorithm>

#include "cloud/fault.h"

namespace webdex::cloud {

QueueService::QueueService(const QueueServiceConfig& config, UsageMeter* meter,
                           FaultInjector* injector,
                           common::MetricRegistry* metrics)
    : config_(config),
      meter_(meter),
      injector_(injector),
      send_metrics_(OpMetrics::For(metrics, "service.sqs.send")),
      receive_metrics_(OpMetrics::For(metrics, "service.sqs.receive")),
      delete_metrics_(OpMetrics::For(metrics, "service.sqs.delete")),
      renew_metrics_(OpMetrics::For(metrics, "service.sqs.renew")),
      redelivery_metric_(
          metrics == nullptr
              ? nullptr
              : metrics->GetCounter("service.sqs.redeliveries.count")) {}

Status QueueService::CreateQueue(const std::string& queue) {
  auto [it, inserted] = queues_.try_emplace(queue);
  (void)it;
  if (!inserted) return Status::AlreadyExists("queue exists: " + queue);
  return Status::OK();
}

Status QueueService::Send(SimAgent& agent, const std::string& queue,
                          std::string body) {
  auto it = queues_.find(queue);
  if (it == queues_.end()) return Status::NotFound("no such queue: " + queue);
  const Micros op_start = agent.now();
  agent.Advance(config_.request_latency);
  meter_->mutable_usage().sqs_requests += 1;
  Micros delay = 0;
  if (injector_ != nullptr) {
    Status fault =
        injector_->MaybeFail(ServiceId::kSqs, "sqs.send:" + queue, agent.now());
    if (!fault.ok()) {
      send_metrics_.Record(agent, op_start, /*error=*/true);
      return fault;  // billed, nothing enqueued
    }
    delay = injector_->DeliveryDelay(ServiceId::kSqs, "sqs.delay:" + queue);
  }
  send_metrics_.Record(agent, op_start, /*error=*/false);
  PendingMessage msg;
  msg.body = std::move(body);
  msg.visible_at = agent.now() + delay;
  it->second.push_back(std::move(msg));
  return Status::OK();
}

Result<std::optional<ReceivedMessage>> QueueService::Receive(
    SimAgent& agent, const std::string& queue) {
  auto it = queues_.find(queue);
  if (it == queues_.end()) return Status::NotFound("no such queue: " + queue);
  const Micros op_start = agent.now();
  agent.Advance(config_.request_latency);
  meter_->mutable_usage().sqs_requests += 1;
  if (injector_ != nullptr) {
    Status fault =
        injector_->MaybeFail(ServiceId::kSqs, "sqs.receive:" + queue,
                             agent.now());
    if (!fault.ok()) {
      receive_metrics_.Record(agent, op_start, /*error=*/true);
      return fault;
    }
  }
  receive_metrics_.Record(agent, op_start, /*error=*/false);
  for (auto& msg : it->second) {
    if (msg.visible_at <= agent.now()) {
      msg.visible_at = agent.now() + config_.visibility_timeout;
      msg.receipt = next_receipt_++;
      msg.delivery_count += 1;
      if (msg.delivery_count > 1) {
        meter_->mutable_usage().sqs_redeliveries += 1;
        if (redelivery_metric_ != nullptr) redelivery_metric_->Add(1);
      }
      ReceivedMessage out;
      out.body = msg.body;
      out.receipt = msg.receipt;
      out.delivery_count = msg.delivery_count;
      if (injector_ != nullptr &&
          injector_->ShouldDuplicate(ServiceId::kSqs, "sqs.dup:" + queue)) {
        // At-least-once duplicate: the message stays deliverable, so the
        // receipt just handed out is already stale — this delivery's
        // Delete will hit "receipt expired" and the work is redone.
        msg.visible_at = agent.now();
      }
      return std::optional<ReceivedMessage>(std::move(out));
    }
  }
  return std::optional<ReceivedMessage>(std::nullopt);
}

Status QueueService::Delete(SimAgent& agent, const std::string& queue,
                            uint64_t receipt) {
  auto it = queues_.find(queue);
  if (it == queues_.end()) return Status::NotFound("no such queue: " + queue);
  const Micros op_start = agent.now();
  agent.Advance(config_.request_latency);
  meter_->mutable_usage().sqs_requests += 1;
  if (injector_ != nullptr) {
    Status fault =
        injector_->MaybeFail(ServiceId::kSqs, "sqs.delete:" + queue,
                             agent.now());
    if (!fault.ok()) {
      delete_metrics_.Record(agent, op_start, /*error=*/true);
      return fault;
    }
  }
  delete_metrics_.Record(agent, op_start, /*error=*/false);
  auto& msgs = it->second;
  for (auto iter = msgs.begin(); iter != msgs.end(); ++iter) {
    if (iter->receipt == receipt && receipt != 0) {
      // A receipt is only honoured while its lease is still running; after
      // expiry the message may have been handed to another worker.
      if (iter->visible_at <= agent.now()) {
        return Status::NotFound("receipt expired");
      }
      msgs.erase(iter);
      return Status::OK();
    }
  }
  return Status::NotFound("unknown receipt");
}

Status QueueService::RenewLease(SimAgent& agent, const std::string& queue,
                                uint64_t receipt) {
  auto it = queues_.find(queue);
  if (it == queues_.end()) return Status::NotFound("no such queue: " + queue);
  const Micros op_start = agent.now();
  agent.Advance(config_.request_latency);
  meter_->mutable_usage().sqs_requests += 1;
  if (injector_ != nullptr) {
    Status fault =
        injector_->MaybeFail(ServiceId::kSqs, "sqs.renew:" + queue,
                             agent.now());
    if (!fault.ok()) {
      renew_metrics_.Record(agent, op_start, /*error=*/true);
      return fault;
    }
  }
  renew_metrics_.Record(agent, op_start, /*error=*/false);
  for (auto& msg : it->second) {
    if (msg.receipt == receipt && receipt != 0) {
      if (msg.visible_at <= agent.now()) {
        return Status::NotFound("receipt expired");
      }
      msg.visible_at = agent.now() + config_.visibility_timeout;
      return Status::OK();
    }
  }
  return Status::NotFound("unknown receipt");
}

bool QueueService::Drained(const std::string& queue) const {
  auto it = queues_.find(queue);
  return it == queues_.end() || it->second.empty();
}

std::optional<Micros> QueueService::NextDeliverableAt(
    const std::string& queue) const {
  auto it = queues_.find(queue);
  if (it == queues_.end() || it->second.empty()) return std::nullopt;
  Micros earliest = it->second.front().visible_at;
  for (const auto& msg : it->second) {
    earliest = std::min(earliest, msg.visible_at);
  }
  return earliest;
}

size_t QueueService::Count(const std::string& queue) const {
  auto it = queues_.find(queue);
  return it == queues_.end() ? 0 : it->second.size();
}

std::vector<std::string> QueueService::PeekBodies(
    const std::string& queue) const {
  std::vector<std::string> bodies;
  auto it = queues_.find(queue);
  if (it == queues_.end()) return bodies;
  bodies.reserve(it->second.size());
  for (const auto& msg : it->second) bodies.push_back(msg.body);
  return bodies;
}

}  // namespace webdex::cloud
