#ifndef WEBDEX_CLOUD_PRICING_H_
#define WEBDEX_CLOUD_PRICING_H_

#include <string>

namespace webdex::cloud {

/// Instance types used in the paper's experiments (Section 8.1):
/// large = 7.5 GB RAM, 2 virtual cores x 2 EC2 Compute Units;
/// extra-large = 15 GB RAM, 4 virtual cores x 2 ECU.
enum class InstanceType { kLarge, kExtraLarge };

const char* InstanceTypeName(InstanceType t);

/// Cloud provider price sheet; the default values are the paper's Table 3
/// (AWS Asia Pacific / Singapore, September-October 2012).
///
/// Naming follows Section 7.2 of the paper:
///   st_month_gb   ST$m,GB   file store, $/GB-month
///   st_put        STput$    file store, $/put request
///   st_get        STget$    file store, $/get request
///   idx_month_gb  IDX$m,GB  index store, $/GB-month
///   idx_put       IDXput$   index store, $/put unit (see note)
///   idx_get       IDXget$   index store, $/get unit (see note)
///   vm_hour_*     VM$h      virtual machine, $/hour
///   queue_request QS$       queue service, $/request
///   egress_gb     egress$GB data transferred out of the cloud, $/GB
///
/// Note on idx_put / idx_get granularity: the paper prices index-store
/// operations per API request.  Its measured costs (Table 6) nevertheless
/// grow with the *size* of the index entries, because DynamoDB ultimately
/// bills provisioned capacity units (1 KB write units / 4 KB read units).
/// We therefore charge idx_put per write capacity unit and idx_get per
/// read capacity unit consumed, which reproduces both the formulas of
/// Section 7.3 (one unit per small request) and the size-dependent cost
/// ordering of Table 6.
struct Pricing {
  // File store (S3).
  double st_month_gb = 0.125;
  double st_put = 0.000011;
  double st_get = 0.0000011;

  // Index store (DynamoDB).
  double idx_month_gb = 1.14;
  double idx_put = 0.00000032;
  double idx_get = 0.000000032;
  // Provisioned-throughput rental (contemporaneous Singapore sheet:
  // $0.00735/hour per 10 write units, per 50 read units).  Only billed
  // when the Autoscaler meters capacity-hours (docs/OVERLOAD.md); the
  // paper's Table 6 reproduction bills consumed units only, as above.
  double idx_write_unit_hour = 0.000735;
  double idx_read_unit_hour = 0.000147;
  // On-demand (pay-per-request) capacity: no hourly rental, a 25%
  // per-unit premium over the provisioned unit price — the trade the
  // compare-arch frontier exposes (docs/ARCHITECTURES.md).
  double idx_ondemand_put = 0.0000004;
  double idx_ondemand_get = 0.00000004;

  // Virtual machines (EC2).
  double vm_hour_large = 0.34;
  double vm_hour_xlarge = 0.68;

  // Queue service (SQS).
  double queue_request = 0.000001;

  // Data transfer out of the cloud.
  double egress_gb = 0.19;

  // Legacy index store (SimpleDB, used only by the Section 8.4
  // comparison with the authors' earlier system [8]).  SimpleDB billed
  // "box usage" machine-hours per request plus storage.
  double simpledb_machine_hour = 0.154;
  double simpledb_month_gb = 0.25;
  double simpledb_box_hours_per_put = 0.0000219;
  double simpledb_box_hours_per_get = 0.0000093;

  double VmHour(InstanceType t) const {
    return t == InstanceType::kLarge ? vm_hour_large : vm_hour_xlarge;
  }

  /// Table 3: AWS Singapore, October 2012 (the defaults).
  static Pricing AwsSingaporeOct2012() { return Pricing(); }

  /// Approximate contemporaneous price sheets for the other providers of
  /// the paper's Table 1, for the Section 3 "applicability to other cloud
  /// platforms" discussion.  Same structure, different constants.
  static Pricing GoogleCloud2012();
  static Pricing WindowsAzure2012();
};

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_PRICING_H_
