#include "cloud/object_store.h"

#include <algorithm>

#include "cloud/fault.h"
#include "common/strings.h"

namespace webdex::cloud {

ObjectStore::ObjectStore(const ObjectStoreConfig& config, UsageMeter* meter,
                         FaultInjector* injector,
                         common::MetricRegistry* metrics)
    : config_(config),
      meter_(meter),
      injector_(injector),
      put_metrics_(OpMetrics::For(metrics, "service.s3.put")),
      get_metrics_(OpMetrics::For(metrics, "service.s3.get")),
      batch_get_metrics_(OpMetrics::For(metrics, "service.s3.batch_get")),
      list_metrics_(OpMetrics::For(metrics, "service.s3.list")),
      bytes_in_metric_(metrics == nullptr
                           ? nullptr
                           : metrics->GetCounter("service.s3.bytes_in.total")),
      bytes_out_metric_(metrics == nullptr
                            ? nullptr
                            : metrics->GetCounter("service.s3.bytes_out.total")),
      request_limiter_(config.requests_per_second) {}

Status ObjectStore::CreateBucket(const std::string& bucket) {
  auto [it, inserted] = buckets_.try_emplace(bucket);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("bucket exists: " + bucket);
  }
  return Status::OK();
}

void ObjectStore::ChargeTransfer(SimAgent& agent, uint64_t bytes) {
  agent.AdvanceTo(request_limiter_.Acquire(agent.now(), 1.0));
  Micros transfer = 0;
  if (config_.bandwidth_bytes_per_sec > 0) {
    transfer = static_cast<Micros>(static_cast<double>(bytes) /
                                   config_.bandwidth_bytes_per_sec *
                                   kMicrosPerSecond);
  }
  agent.Advance(config_.request_latency + transfer);
}

Status ObjectStore::Put(SimAgent& agent, const std::string& bucket,
                        const std::string& key, std::string data) {
  auto it = buckets_.find(bucket);
  if (it == buckets_.end()) {
    return Status::NotFound("no such bucket: " + bucket);
  }
  const Micros op_start = agent.now();
  if (injector_ != nullptr) {
    // A failed attempt still takes the full round trip (the request body
    // was sent) and bills a put request, but stores nothing and does not
    // count payload bytes as ingested.
    Status fault =
        injector_->MaybeFail(ServiceId::kS3, "s3.put:" + bucket, agent.now());
    if (!fault.ok()) {
      ChargeTransfer(agent, data.size());
      meter_->mutable_usage().s3_put_requests += 1;
      put_metrics_.Record(agent, op_start, /*error=*/true);
      return fault;
    }
  }
  ChargeTransfer(agent, data.size());
  meter_->mutable_usage().s3_put_requests += 1;
  meter_->mutable_usage().s3_bytes_in += data.size();
  if (bytes_in_metric_ != nullptr) bytes_in_metric_->Add(data.size());
  put_metrics_.Record(agent, op_start, /*error=*/false);
  it->second[key] = std::move(data);
  return Status::OK();
}

Result<std::string> ObjectStore::Get(SimAgent& agent,
                                     const std::string& bucket,
                                     const std::string& key) {
  auto it = buckets_.find(bucket);
  if (it == buckets_.end()) {
    return Status::NotFound("no such bucket: " + bucket);
  }
  const Micros op_start = agent.now();
  if (injector_ != nullptr) {
    Status fault =
        injector_->MaybeFail(ServiceId::kS3, "s3.get:" + bucket, agent.now());
    if (!fault.ok()) {
      meter_->mutable_usage().s3_get_requests += 1;
      ChargeTransfer(agent, 0);
      get_metrics_.Record(agent, op_start, /*error=*/true);
      return fault;
    }
  }
  auto obj = it->second.find(key);
  // A failed lookup is still a billed request that took a round trip.
  meter_->mutable_usage().s3_get_requests += 1;
  if (obj == it->second.end()) {
    ChargeTransfer(agent, 0);
    get_metrics_.Record(agent, op_start, /*error=*/true);
    return Status::NotFound("no such object: " + bucket + "/" + key);
  }
  ChargeTransfer(agent, obj->second.size());
  meter_->mutable_usage().s3_bytes_out += obj->second.size();
  if (bytes_out_metric_ != nullptr) bytes_out_metric_->Add(obj->second.size());
  get_metrics_.Record(agent, op_start, /*error=*/false);
  return obj->second;
}

Result<std::vector<std::string>> ObjectStore::BatchGet(
    SimAgent& agent, const std::string& bucket,
    const std::vector<std::string>& keys, int parallel_streams) {
  if (parallel_streams < 1) {
    return Status::InvalidArgument("parallel_streams must be >= 1");
  }
  auto it = buckets_.find(bucket);
  if (it == buckets_.end()) {
    return Status::NotFound("no such bucket: " + bucket);
  }
  const Micros op_start = agent.now();
  if (injector_ != nullptr) {
    // Call-level fault: the whole parallel fetch aborts before any
    // transfers complete; one request round trip is billed.
    Status fault =
        injector_->MaybeFail(ServiceId::kS3, "s3.batchget:" + bucket,
                             agent.now());
    if (!fault.ok()) {
      meter_->mutable_usage().s3_get_requests += 1;
      ChargeTransfer(agent, 0);
      batch_get_metrics_.Record(agent, op_start, /*error=*/true);
      return fault;
    }
  }
  std::vector<std::string> out;
  out.reserve(keys.size());
  // Model: `parallel_streams` concurrent connections; each request incurs
  // the fixed latency plus its transfer time, and requests are spread
  // round-robin over the streams.  The agent's clock advances by the
  // busiest stream (the makespan).
  std::vector<double> stream_micros(static_cast<size_t>(parallel_streams),
                                    0.0);
  size_t next_stream = 0;
  for (const auto& key : keys) {
    auto obj = it->second.find(key);
    meter_->mutable_usage().s3_get_requests += 1;
    if (obj == it->second.end()) {
      batch_get_metrics_.Record(agent, op_start, /*error=*/true);
      return Status::NotFound("no such object: " + bucket + "/" + key);
    }
    double micros = static_cast<double>(config_.request_latency);
    if (config_.bandwidth_bytes_per_sec > 0) {
      micros += static_cast<double>(obj->second.size()) /
                config_.bandwidth_bytes_per_sec * kMicrosPerSecond;
    }
    stream_micros[next_stream] += micros;
    next_stream = (next_stream + 1) % stream_micros.size();
    meter_->mutable_usage().s3_bytes_out += obj->second.size();
    if (bytes_out_metric_ != nullptr) {
      bytes_out_metric_->Add(obj->second.size());
    }
    out.push_back(obj->second);
  }
  const double makespan =
      *std::max_element(stream_micros.begin(), stream_micros.end());
  agent.AdvanceTo(request_limiter_.Acquire(
      agent.now(), static_cast<double>(keys.size())));
  agent.Advance(static_cast<Micros>(makespan));
  batch_get_metrics_.Record(agent, op_start, /*error=*/false);
  return out;
}

Status ObjectStore::Delete(SimAgent& agent, const std::string& bucket,
                           const std::string& key) {
  auto it = buckets_.find(bucket);
  if (it == buckets_.end()) {
    return Status::NotFound("no such bucket: " + bucket);
  }
  ChargeTransfer(agent, 0);
  it->second.erase(key);
  return Status::OK();
}

bool ObjectStore::Exists(const std::string& bucket,
                         const std::string& key) const {
  auto it = buckets_.find(bucket);
  return it != buckets_.end() && it->second.count(key) > 0;
}

const std::string* ObjectStore::PeekObject(const std::string& bucket,
                                           const std::string& key) const {
  auto bucket_it = buckets_.find(bucket);
  if (bucket_it == buckets_.end()) return nullptr;
  auto object_it = bucket_it->second.find(key);
  if (object_it == bucket_it->second.end()) return nullptr;
  return &object_it->second;
}

Result<std::vector<std::string>> ObjectStore::List(
    SimAgent& agent, const std::string& bucket, const std::string& prefix) {
  auto it = buckets_.find(bucket);
  if (it == buckets_.end()) {
    return Status::NotFound("no such bucket: " + bucket);
  }
  std::vector<std::string> keys;
  for (auto iter = it->second.lower_bound(prefix);
       iter != it->second.end() && StartsWith(iter->first, prefix); ++iter) {
    keys.push_back(iter->first);
  }
  const Micros op_start = agent.now();
  const uint64_t pages = keys.empty() ? 1 : (keys.size() + 999) / 1000;
  meter_->mutable_usage().s3_get_requests += pages;
  for (uint64_t i = 0; i < pages; ++i) ChargeTransfer(agent, 0);
  list_metrics_.Record(agent, op_start, /*error=*/false);
  return keys;
}

uint64_t ObjectStore::BucketBytes(const std::string& bucket) const {
  auto it = buckets_.find(bucket);
  if (it == buckets_.end()) return 0;
  uint64_t total = 0;
  for (const auto& [key, data] : it->second) total += data.size();
  return total;
}

uint64_t ObjectStore::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [name, bucket] : buckets_) {
    (void)bucket;
    total += BucketBytes(name);
  }
  return total;
}

uint64_t ObjectStore::ObjectCount(const std::string& bucket) const {
  auto it = buckets_.find(bucket);
  return it == buckets_.end() ? 0 : it->second.size();
}

std::vector<std::string> ObjectStore::BucketNames() const {
  std::vector<std::string> names;
  names.reserve(buckets_.size());
  for (const auto& [name, objects] : buckets_) {
    (void)objects;
    names.push_back(name);
  }
  return names;
}

void ObjectStore::ForEachObject(
    const std::function<void(const std::string&, const std::string&,
                             const std::string&)>& fn) const {
  for (const auto& [bucket, objects] : buckets_) {
    for (const auto& [key, data] : objects) fn(bucket, key, data);
  }
}

void ObjectStore::RestoreObject(const std::string& bucket,
                                const std::string& key, std::string data) {
  buckets_[bucket][key] = std::move(data);
}

}  // namespace webdex::cloud
