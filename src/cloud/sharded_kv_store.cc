#include "cloud/sharded_kv_store.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace webdex::cloud {

ShardedKvStore::ShardedKvStore(KvStore* base, Deployment* deployment,
                               UsageMeter* meter,
                               common::MetricRegistry* metrics,
                               common::Tracer* tracer)
    : base_(base),
      deployment_(deployment),
      meter_(meter),
      metrics_(metrics),
      tracer_(tracer),
      route_metric_(metrics == nullptr
                        ? nullptr
                        : metrics->GetCounter("shard.route.count")),
      fanout_metric_(metrics == nullptr
                         ? nullptr
                         : metrics->GetCounter("shard.fanout.count")) {
  for (const char* p = base_->Name(); *p != '\0'; ++p) {
    service_.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
}

void ShardedKvStore::CountOp(const char* op, int shard) {
  if (metrics_ == nullptr) return;
  std::string key = std::string(op) + ".s" + std::to_string(shard);
  auto it = op_counters_.find(key);
  if (it == op_counters_.end()) {
    common::Counter* counter =
        metrics_->GetCounter("service." + service_ + "." + key + ".count");
    it = op_counters_.emplace(std::move(key), counter).first;
  }
  it->second->Add(1);
}

Status ShardedKvStore::CreateTable(SimAgent& agent,
                                   const std::string& logical) {
  for (int shard = 0; shard < deployment_->spec().shards; ++shard) {
    CountOp("create_table", shard);
    Status status =
        base_->CreateTable(agent, deployment_->PhysicalName(logical, shard));
    if (!status.ok()) return status;
  }
  return Status::OK();
}

bool ShardedKvStore::HasTable(const std::string& logical) const {
  // Shards are created together, so shard 0 witnesses the logical table.
  return base_->HasTable(deployment_->PhysicalName(logical, 0));
}

Status ShardedKvStore::BatchPut(SimAgent& agent, const std::string& logical,
                                const std::vector<Item>& items,
                                std::vector<Item>* unprocessed) {
  if (unprocessed != nullptr) unprocessed->clear();
  const int shards = deployment_->spec().shards;
  std::vector<std::vector<Item>> per_shard(static_cast<size_t>(shards));
  for (const Item& item : items) {
    per_shard[static_cast<size_t>(deployment_->ShardFor(item.hash_key))]
        .push_back(item);
  }
  if (route_metric_ != nullptr) route_metric_->Add(items.size());
  int touched = 0;
  for (const auto& group : per_shard) {
    if (!group.empty()) ++touched;
  }
  if (touched > 1 && fanout_metric_ != nullptr) fanout_metric_->Add(1);
  std::vector<Item> bounced;
  for (int shard = 0; shard < shards; ++shard) {
    auto& group = per_shard[static_cast<size_t>(shard)];
    if (group.empty()) continue;
    CountOp("batch_put", shard);
    bounced.clear();
    Status status =
        base_->BatchPut(agent, deployment_->PhysicalName(logical, shard),
                        group, unprocessed == nullptr ? nullptr : &bounced);
    if (unprocessed != nullptr) {
      unprocessed->insert(unprocessed->end(),
                          std::make_move_iterator(bounced.begin()),
                          std::make_move_iterator(bounced.end()));
    }
    if (!status.ok()) {
      // "Everything not stored" contract: the failed shard reported its
      // own survivors above; the shards never attempted contribute all
      // of their items.
      if (unprocessed != nullptr) {
        for (int rest = shard + 1; rest < shards; ++rest) {
          auto& pending = per_shard[static_cast<size_t>(rest)];
          unprocessed->insert(unprocessed->end(),
                              std::make_move_iterator(pending.begin()),
                              std::make_move_iterator(pending.end()));
        }
      }
      return status;
    }
  }
  return Status::OK();
}

Result<std::vector<Item>> ShardedKvStore::Get(SimAgent& agent,
                                              const std::string& logical,
                                              const std::string& hash_key) {
  const int shard = deployment_->ShardFor(hash_key);
  CountOp("get", shard);
  if (route_metric_ != nullptr) route_metric_->Add(1);
  return base_->Get(agent, deployment_->PhysicalName(logical, shard),
                    hash_key);
}

Result<std::vector<Item>> ShardedKvStore::BatchGet(
    SimAgent& agent, const std::string& logical,
    const std::vector<std::string>& hash_keys) {
  const int shards = deployment_->spec().shards;
  std::vector<std::vector<std::string>> per_shard(
      static_cast<size_t>(shards));
  for (const std::string& key : hash_keys) {
    per_shard[static_cast<size_t>(deployment_->ShardFor(key))].push_back(key);
  }
  if (route_metric_ != nullptr) route_metric_->Add(hash_keys.size());
  std::vector<std::vector<Item>> shard_results(static_cast<size_t>(shards));
  int touched = 0;
  for (int shard = 0; shard < shards; ++shard) {
    auto& keys = per_shard[static_cast<size_t>(shard)];
    if (keys.empty()) continue;
    ++touched;
    CountOp("batch_get", shard);
    auto result =
        base_->BatchGet(agent, deployment_->PhysicalName(logical, shard), keys);
    if (!result.status().ok()) return result.status();
    shard_results[static_cast<size_t>(shard)] = std::move(result).value();
  }
  if (touched > 1 && fanout_metric_ != nullptr) fanout_metric_->Add(1);
  // Reassemble the unsharded store's documented order — each requested
  // key's items in request order — by consuming, per shard, the
  // consecutive run of items matching the next requested key.  (Assumes
  // a key is not requested twice, which holds for the planner's deduped
  // lookup sets; duplicates would merely merge their runs.)
  std::vector<Item> out;
  std::vector<size_t> cursor(static_cast<size_t>(shards), 0);
  for (const std::string& key : hash_keys) {
    const auto shard = static_cast<size_t>(deployment_->ShardFor(key));
    auto& items = shard_results[shard];
    size_t& pos = cursor[shard];
    while (pos < items.size() && items[pos].hash_key == key) {
      out.push_back(std::move(items[pos]));
      ++pos;
    }
  }
  return out;
}

Result<std::vector<Item>> ShardedKvStore::Scan(SimAgent& agent,
                                               const std::string& logical) {
  const int shards = deployment_->spec().shards;
  MeteredSpan span(tracer_, meter_, agent, "shard.fanout");
  span.AddAttr("shards", shards);
  if (fanout_metric_ != nullptr) fanout_metric_->Add(1);
  std::vector<Item> out;
  for (int shard = 0; shard < shards; ++shard) {
    CountOp("scan", shard);
    auto result =
        base_->Scan(agent, deployment_->PhysicalName(logical, shard));
    if (!result.status().ok()) {
      span.AddAttr("error", 1);
      return result.status();
    }
    auto items = std::move(result).value();
    out.insert(out.end(), std::make_move_iterator(items.begin()),
               std::make_move_iterator(items.end()));
  }
  // Restore the unsharded store's deterministic (hash, range) key order.
  std::sort(out.begin(), out.end(), [](const Item& a, const Item& b) {
    if (a.hash_key != b.hash_key) return a.hash_key < b.hash_key;
    return a.range_key < b.range_key;
  });
  return out;
}

Status ShardedKvStore::DeleteItem(SimAgent& agent, const std::string& logical,
                                  const std::string& hash_key,
                                  const std::string& range_key) {
  const int shard = deployment_->ShardFor(hash_key);
  CountOp("delete_item", shard);
  if (route_metric_ != nullptr) route_metric_->Add(1);
  return base_->DeleteItem(agent, deployment_->PhysicalName(logical, shard),
                           hash_key, range_key);
}

uint64_t ShardedKvStore::StoredBytes(const std::string& logical) const {
  uint64_t total = 0;
  for (const std::string& physical : deployment_->PhysicalTables(logical)) {
    total += base_->StoredBytes(physical);
  }
  return total;
}

uint64_t ShardedKvStore::OverheadBytes(const std::string& logical) const {
  uint64_t total = 0;
  for (const std::string& physical : deployment_->PhysicalTables(logical)) {
    total += base_->OverheadBytes(physical);
  }
  return total;
}

uint64_t ShardedKvStore::ItemCount(const std::string& logical) const {
  uint64_t total = 0;
  for (const std::string& physical : deployment_->PhysicalTables(logical)) {
    total += base_->ItemCount(physical);
  }
  return total;
}

std::vector<std::string> ShardedKvStore::TableNames() const {
  std::set<std::string> logical;
  for (const std::string& physical : base_->TableNames()) {
    logical.insert(deployment_->LogicalName(physical));
  }
  return {logical.begin(), logical.end()};
}

void ShardedKvStore::ForEachItem(
    const std::function<void(const std::string&, const Item&)>& fn) const {
  // Fold physical tables back to logical ones and restore the unsharded
  // store's per-table (hash, range) iteration order, so logical dumps —
  // and FingerprintStore() over them — are identical across shard counts.
  std::map<std::string, std::vector<Item>> logical_tables;
  base_->ForEachItem([&](const std::string& physical, const Item& item) {
    logical_tables[deployment_->LogicalName(physical)].push_back(item);
  });
  for (auto& [logical, items] : logical_tables) {
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
      if (a.hash_key != b.hash_key) return a.hash_key < b.hash_key;
      return a.range_key < b.range_key;
    });
    for (const Item& item : items) fn(logical, item);
  }
}

void ShardedKvStore::RestoreItem(const std::string& logical,
                                 const Item& item) {
  base_->RestoreItem(
      deployment_->PhysicalName(logical, deployment_->ShardFor(item.hash_key)),
      item);
}

Status ShardedKvStore::RestoreTable(const std::string& logical) {
  for (int shard = 0; shard < deployment_->spec().shards; ++shard) {
    Status status =
        base_->RestoreTable(deployment_->PhysicalName(logical, shard));
    if (!status.ok()) return status;
  }
  return Status::OK();
}

}  // namespace webdex::cloud
