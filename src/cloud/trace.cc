#include "cloud/trace.h"

namespace webdex::cloud {

void AddUsageAttrs(common::Tracer* tracer, uint64_t span,
                   const UsageMeter& meter, const Usage& delta) {
  if (tracer == nullptr || span == 0) return;
  delta.ForEachField([&](const char* name, auto value) {
    const double v = static_cast<double>(value);
    if (v != 0) tracer->AddAttr(span, std::string("usage.") + name, v);
  });
  tracer->AddAttr(span, "usd", meter.ComputeBill(delta).total());
}

MeteredSpan::MeteredSpan(common::Tracer* tracer, UsageMeter* meter,
                         const SimAgent& agent, std::string_view name) {
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  meter_ = meter;
  agent_ = &agent;
  id_ = tracer->BeginSpan(name, agent.now());
  before_ = meter->Snapshot();
}

void MeteredSpan::End() {
  if (id_ == 0) return;
  AddUsageAttrs(tracer_, id_, *meter_, meter_->usage() - before_);
  tracer_->EndSpan(id_, agent_->now());
  id_ = 0;
}

void MeteredSpan::AddAttr(std::string_view key, double value) {
  if (id_ != 0) tracer_->AddAttr(id_, key, value);
}

OpMetrics OpMetrics::For(common::MetricRegistry* registry,
                         const std::string& prefix) {
  OpMetrics m;
  if (registry == nullptr) return m;
  m.requests = registry->GetCounter(prefix + ".requests");
  m.errors = registry->GetCounter(prefix + ".errors");
  m.latency = registry->GetHistogram(prefix + ".latency_us");
  return m;
}

void OpMetrics::Record(const SimAgent& agent, Micros start, bool error) const {
  if (requests == nullptr) return;
  requests->Add(1);
  if (error) errors->Add(1);
  latency->Record(static_cast<double>(agent.now() - start));
}

}  // namespace webdex::cloud
