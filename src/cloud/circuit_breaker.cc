#include "cloud/circuit_breaker.h"

namespace webdex::cloud {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

HealthTracker& CircuitBreaker::TrackerFor(std::string_view resource) {
  auto it = trackers_.find(resource);
  if (it == trackers_.end()) {
    it = trackers_.emplace(std::string(resource), HealthTracker()).first;
  }
  return it->second;
}

void CircuitBreaker::TraceTransition(const char* kind,
                                     std::string_view resource, Micros now) {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  std::string name = kind;
  name += ":";
  name += resource;
  tracer_->EndSpan(tracer_->BeginSpan(name, now), now);
}

Status CircuitBreaker::Allow(std::string_view resource, Micros now) {
  if (!config_.enabled) return Status::OK();
  last_now_ = now;
  HealthTracker& tracker = TrackerFor(resource);
  if (tracker.state != BreakerState::kOpen) return Status::OK();
  if (now - tracker.opened_at >= config_.cooldown) {
    // Cooldown lapsed: let real probe attempts through.
    tracker.state = BreakerState::kHalfOpen;
    tracker.consecutive_successes = 0;
    TraceTransition("breaker.half_open", resource, now);
    return Status::OK();
  }
  meter_->mutable_usage().breaker_short_circuits += 1;
  if (short_circuits_metric_ != nullptr) short_circuits_metric_->Add(1);
  std::string msg = "circuit breaker open: ";
  msg += resource;
  return Status::Unavailable(msg);
}

void CircuitBreaker::RecordSuccess(std::string_view resource) {
  if (!config_.enabled) return;
  HealthTracker& tracker = TrackerFor(resource);
  switch (tracker.state) {
    case BreakerState::kClosed:
      tracker.consecutive_failures = 0;
      break;
    case BreakerState::kHalfOpen:
      if (++tracker.consecutive_successes >= config_.success_threshold) {
        tracker = HealthTracker();  // back to a fresh closed breaker
        meter_->mutable_usage().breaker_closes += 1;
        if (closes_metric_ != nullptr) closes_metric_->Add(1);
        TraceTransition("breaker.close", resource, last_now_);
      }
      break;
    case BreakerState::kOpen:
      // A success can only follow an Allow, which would have moved the
      // breaker to half-open first; nothing to do.
      break;
  }
}

void CircuitBreaker::RecordFailure(std::string_view resource, Micros now) {
  if (!config_.enabled) return;
  last_now_ = now;
  HealthTracker& tracker = TrackerFor(resource);
  switch (tracker.state) {
    case BreakerState::kClosed:
      if (++tracker.consecutive_failures >= config_.failure_threshold) {
        tracker.state = BreakerState::kOpen;
        tracker.opened_at = now;
        meter_->mutable_usage().breaker_opens += 1;
        if (opens_metric_ != nullptr) opens_metric_->Add(1);
        TraceTransition("breaker.open", resource, now);
      }
      break;
    case BreakerState::kHalfOpen:
      // One failed probe re-opens: the service is still browning out.
      tracker.state = BreakerState::kOpen;
      tracker.opened_at = now;
      tracker.consecutive_successes = 0;
      meter_->mutable_usage().breaker_opens += 1;
      if (opens_metric_ != nullptr) opens_metric_->Add(1);
      TraceTransition("breaker.open", resource, now);
      break;
    case BreakerState::kOpen:
      break;
  }
}

BreakerState CircuitBreaker::state(std::string_view resource) const {
  auto it = trackers_.find(resource);
  return it == trackers_.end() ? BreakerState::kClosed : it->second.state;
}

bool CircuitBreaker::WouldAllow(std::string_view resource,
                                Micros now) const {
  if (!config_.enabled) return true;
  auto it = trackers_.find(resource);
  if (it == trackers_.end()) return true;
  const HealthTracker& tracker = it->second;
  if (tracker.state != BreakerState::kOpen) return true;
  return now - tracker.opened_at >= config_.cooldown;
}

std::vector<CircuitBreaker::TrackerState> CircuitBreaker::SaveTrackers()
    const {
  std::vector<TrackerState> out;
  out.reserve(trackers_.size());
  for (const auto& [resource, tracker] : trackers_) {
    out.emplace_back(resource, tracker);
  }
  return out;
}

void CircuitBreaker::RestoreTrackers(
    const std::vector<TrackerState>& trackers) {
  for (const auto& [resource, tracker] : trackers) {
    TrackerFor(resource) = tracker;
  }
}

}  // namespace webdex::cloud
