#include "cloud/replicated_kv_store.h"

#include <algorithm>

namespace webdex::cloud {

ReplicatedKvStore::ReplicatedKvStore(KvStore* base, Deployment* deployment,
                                     UsageMeter* meter,
                                     common::MetricRegistry* metrics,
                                     common::Tracer* tracer)
    : base_(base),
      deployment_(deployment),
      meter_(meter),
      tracer_(tracer),
      replica_reads_metric_(metrics == nullptr
                                ? nullptr
                                : metrics->GetCounter("replica.reads.count")),
      primary_reads_metric_(metrics == nullptr
                                ? nullptr
                                : metrics->GetCounter("replica.primary.count")),
      lag_metric_(metrics == nullptr ? nullptr
                                     : metrics->GetHistogram("replica.lag_us")) {
}

void ReplicatedKvStore::BookReplicaRead(const std::string& table,
                                        const Usage& before, Micros now) {
  // Eventually-consistent reads cost half the strongly-consistent price
  // (as DynamoDB prices them): refund half of whatever read capacity the
  // primary-path call just metered.  Request counts, latency and bytes
  // are untouched — a replica moves the same data over the same wire.
  Usage& u = meter_->mutable_usage();
  u.ddb_read_units -= 0.5 * (u.ddb_read_units - before.ddb_read_units);
  u.ddb_ondemand_read_units -=
      0.5 * (u.ddb_ondemand_read_units - before.ddb_ondemand_read_units);
  u.sdb_box_hours -= 0.5 * (u.sdb_box_hours - before.sdb_box_hours);
  u.replica_reads += 1;
  const Micros mark = deployment_->Watermark(table);
  const Micros lag = mark == 0 ? 0 : now - mark;
  if (replica_reads_metric_ != nullptr) replica_reads_metric_->Add(1);
  if (lag_metric_ != nullptr) lag_metric_->Record(static_cast<double>(lag));
}

Status ReplicatedKvStore::CreateTable(SimAgent& agent,
                                      const std::string& table) {
  return base_->CreateTable(agent, table);
}

bool ReplicatedKvStore::HasTable(const std::string& table) const {
  return base_->HasTable(table);
}

Status ReplicatedKvStore::BatchPut(SimAgent& agent, const std::string& table,
                                   const std::vector<Item>& items,
                                   std::vector<Item>* unprocessed) {
  Status status = base_->BatchPut(agent, table, items, unprocessed);
  // Even a failed round may have committed a prefix; moving the watermark
  // on every attempt is the conservative (read-your-writes-safe) choice.
  deployment_->RecordWrite(table, agent.now());
  return status;
}

Result<std::vector<Item>> ReplicatedKvStore::Get(SimAgent& agent,
                                                 const std::string& table,
                                                 const std::string& hash_key) {
  if (!Eligible(agent, table)) {
    if (primary_reads_metric_ != nullptr) primary_reads_metric_->Add(1);
    return base_->Get(agent, table, hash_key);
  }
  MeteredSpan span(tracer_, meter_, agent, "replica.read");
  span.AddAttr("replica", deployment_->ReplicaFor(table, hash_key));
  const Usage before = meter_->Snapshot();
  auto result = base_->Get(agent, table, hash_key);
  if (result.status().ok()) {
    const Micros mark = deployment_->Watermark(table);
    span.AddAttr("lag_us",
                 static_cast<double>(mark == 0 ? 0 : agent.now() - mark));
    BookReplicaRead(table, before, agent.now());
  }
  return result;
}

Result<std::vector<Item>> ReplicatedKvStore::BatchGet(
    SimAgent& agent, const std::string& table,
    const std::vector<std::string>& hash_keys) {
  if (hash_keys.empty() || !Eligible(agent, table)) {
    if (primary_reads_metric_ != nullptr) primary_reads_metric_->Add(1);
    return base_->BatchGet(agent, table, hash_keys);
  }
  MeteredSpan span(tracer_, meter_, agent, "replica.read");
  span.AddAttr("replica", deployment_->ReplicaFor(table, hash_keys.front()));
  const Usage before = meter_->Snapshot();
  auto result = base_->BatchGet(agent, table, hash_keys);
  if (result.status().ok()) {
    const Micros mark = deployment_->Watermark(table);
    span.AddAttr("lag_us",
                 static_cast<double>(mark == 0 ? 0 : agent.now() - mark));
    BookReplicaRead(table, before, agent.now());
  }
  return result;
}

Result<std::vector<Item>> ReplicatedKvStore::Scan(SimAgent& agent,
                                                  const std::string& table) {
  if (!Eligible(agent, table)) {
    if (primary_reads_metric_ != nullptr) primary_reads_metric_->Add(1);
    return base_->Scan(agent, table);
  }
  MeteredSpan span(tracer_, meter_, agent, "replica.read");
  span.AddAttr("replica", deployment_->ReplicaFor(table, std::string()));
  const Usage before = meter_->Snapshot();
  auto result = base_->Scan(agent, table);
  if (result.status().ok()) {
    const Micros mark = deployment_->Watermark(table);
    span.AddAttr("lag_us",
                 static_cast<double>(mark == 0 ? 0 : agent.now() - mark));
    BookReplicaRead(table, before, agent.now());
  }
  return result;
}

Status ReplicatedKvStore::DeleteItem(SimAgent& agent, const std::string& table,
                                     const std::string& hash_key,
                                     const std::string& range_key) {
  Status status = base_->DeleteItem(agent, table, hash_key, range_key);
  deployment_->RecordWrite(table, agent.now());
  return status;
}

}  // namespace webdex::cloud
