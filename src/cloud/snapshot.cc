#include "cloud/snapshot.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/varint.h"

namespace webdex::cloud {
namespace {

// Version 2 appends the chaos sections (FaultInjector stream cursors and
// circuit-breaker trackers) after the durable stores; version 3 appends
// the maintenance section (compaction cursor, generation watermark) after
// those; version 4 appends the autoscaler control-loop state, so a
// restored run resumes the identical capacity trajectory; version 5
// appends the deployment section (architecture spec, replication
// watermarks, on-demand burst-ceiling state) so sharded / replicated /
// on-demand runs resume bit-identically.  Older snapshots are still
// restorable — into a default-architecture environment only, since their
// physical table layout assumes the paper's single-table deployment —
// and simply leave the missing state fresh.
constexpr char kMagicV1[] = "WDXSNAP1";
constexpr char kMagicV2[] = "WDXSNAP2";
constexpr char kMagicV3[] = "WDXSNAP3";
constexpr char kMagicV4[] = "WDXSNAP4";
constexpr char kMagicV5[] = "WDXSNAP5";
constexpr size_t kMagicLen = 8;

// Doubles travel as the varint of their IEEE-754 bit pattern: exact
// round-trip, no locale/format ambiguity.
void PutDouble(std::string* out, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  PutVarint64(out, bits);
}

Result<double> GetDouble(const std::string& data, size_t* offset) {
  WEBDEX_ASSIGN_OR_RETURN(uint64_t bits, GetVarint64(data, offset));
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void PutString(std::string* out, const std::string& s) {
  PutVarint64(out, s.size());
  out->append(s);
}

Result<std::string> GetString(const std::string& data, size_t* offset) {
  WEBDEX_ASSIGN_OR_RETURN(uint64_t length, GetVarint64(data, offset));
  if (*offset + length > data.size()) {
    return Status::Corruption("truncated string in snapshot");
  }
  std::string out = data.substr(*offset, length);
  *offset += length;
  return out;
}

void SerializeKvStore(const KvStore& store, std::string* out) {
  const auto tables = store.TableNames();
  PutVarint64(out, tables.size());
  for (const auto& table : tables) PutString(out, table);
  uint64_t item_count = 0;
  store.ForEachItem([&](const std::string&, const Item&) { ++item_count; });
  PutVarint64(out, item_count);
  store.ForEachItem([&](const std::string& table, const Item& item) {
    PutString(out, table);
    PutString(out, item.hash_key);
    PutString(out, item.range_key);
    PutVarint64(out, item.attrs.size());
    for (const auto& [name, values] : item.attrs) {
      PutString(out, name);
      PutVarint64(out, values.size());
      for (const auto& value : values) PutString(out, value);
    }
  });
}

Status RestoreKvStore(const std::string& data, size_t* offset,
                      KvStore* store) {
  WEBDEX_ASSIGN_OR_RETURN(uint64_t table_count, GetVarint64(data, offset));
  for (uint64_t t = 0; t < table_count; ++t) {
    WEBDEX_ASSIGN_OR_RETURN(std::string table, GetString(data, offset));
    WEBDEX_RETURN_IF_ERROR(store->RestoreTable(table));
  }
  WEBDEX_ASSIGN_OR_RETURN(uint64_t item_count, GetVarint64(data, offset));
  for (uint64_t i = 0; i < item_count; ++i) {
    WEBDEX_ASSIGN_OR_RETURN(std::string table, GetString(data, offset));
    Item item;
    WEBDEX_ASSIGN_OR_RETURN(item.hash_key, GetString(data, offset));
    WEBDEX_ASSIGN_OR_RETURN(item.range_key, GetString(data, offset));
    WEBDEX_ASSIGN_OR_RETURN(uint64_t attr_count, GetVarint64(data, offset));
    for (uint64_t a = 0; a < attr_count; ++a) {
      WEBDEX_ASSIGN_OR_RETURN(std::string name, GetString(data, offset));
      WEBDEX_ASSIGN_OR_RETURN(uint64_t value_count,
                              GetVarint64(data, offset));
      AttributeValues values;
      for (uint64_t v = 0; v < value_count; ++v) {
        WEBDEX_ASSIGN_OR_RETURN(std::string value, GetString(data, offset));
        values.push_back(std::move(value));
      }
      item.attrs.emplace(std::move(name), std::move(values));
    }
    if (!store->HasTable(table)) {
      return Status::Corruption("snapshot item references unknown table");
    }
    store->RestoreItem(table, item);
  }
  return Status::OK();
}

}  // namespace

std::string SerializeSnapshot(CloudEnv& env) {
  std::string out(kMagicV5, kMagicLen);

  // File store section: bucket names first (so empty buckets survive),
  // then the objects.
  const auto buckets = env.s3().BucketNames();
  PutVarint64(&out, buckets.size());
  for (const auto& bucket : buckets) PutString(&out, bucket);
  uint64_t object_count = 0;
  env.s3().ForEachObject([&](const std::string&, const std::string&,
                             const std::string&) { ++object_count; });
  PutVarint64(&out, object_count);
  env.s3().ForEachObject([&](const std::string& bucket,
                             const std::string& key,
                             const std::string& data) {
    PutString(&out, bucket);
    PutString(&out, key);
    PutString(&out, data);
  });

  // Index store sections.
  SerializeKvStore(env.dynamodb(), &out);
  SerializeKvStore(env.simpledb(), &out);

  // Chaos sections: injector stream cursors, then breaker trackers, so a
  // restored run resumes the identical fault schedule mid-stream.
  const auto streams = env.fault_injector().SaveStreams();
  PutVarint64(&out, streams.size());
  for (const auto& [site, state] : streams) {
    PutString(&out, site);
    for (uint64_t word : state) PutVarint64(&out, word);
  }
  const auto trackers = env.breaker().SaveTrackers();
  PutVarint64(&out, trackers.size());
  for (const auto& [resource, tracker] : trackers) {
    PutString(&out, resource);
    PutVarint64(&out, static_cast<uint64_t>(tracker.state));
    PutVarint64(&out, static_cast<uint64_t>(tracker.consecutive_failures));
    PutVarint64(&out, static_cast<uint64_t>(tracker.consecutive_successes));
    PutVarint64(&out, static_cast<uint64_t>(tracker.opened_at));
  }

  // Maintenance section (v3): the compaction resume cursor and the
  // mutation-generation watermark are durable like the stores — a
  // crashed compaction resumes after restore, and new mutations keep
  // stamping monotonically above everything ever allocated.
  PutString(&out, env.maintenance().compact_cursor);
  PutVarint64(&out, env.maintenance().generation_watermark);

  // Autoscaler section (v4): durable control-loop state.  All zeros when
  // the autoscaler is inactive; restoring that is a no-op.
  const AutoscalerState& scaler = env.autoscaler().state();
  PutDouble(&out, scaler.write_units);
  PutDouble(&out, scaler.read_units);
  PutVarint64(&out, static_cast<uint64_t>(scaler.window_start));
  PutVarint64(&out, static_cast<uint64_t>(scaler.last_scale_up));
  PutVarint64(&out, static_cast<uint64_t>(scaler.last_scale_down));
  PutDouble(&out, scaler.window_write_units);
  PutDouble(&out, scaler.window_read_units);
  PutVarint64(&out, scaler.window_write_throttles);
  PutVarint64(&out, scaler.window_read_throttles);
  PutVarint64(&out, scaler.started);

  // Deployment section (v5): the architecture spec (so restore can refuse
  // an incompatible environment), the replication watermarks, and the
  // on-demand burst-ceiling trajectory.
  const ArchitectureSpec& arch = env.deployment().spec();
  PutVarint64(&out, static_cast<uint64_t>(arch.capacity));
  PutVarint64(&out, static_cast<uint64_t>(arch.shards));
  PutVarint64(&out, static_cast<uint64_t>(arch.replicas));
  PutVarint64(&out, static_cast<uint64_t>(arch.replication_lag));
  const auto& watermarks = env.deployment().watermarks();
  PutVarint64(&out, watermarks.size());
  for (const auto& [table, at] : watermarks) {
    PutString(&out, table);
    PutVarint64(&out, static_cast<uint64_t>(at));
  }
  const DynamoDb::OnDemandState& ondemand = env.dynamodb().ondemand_state();
  PutDouble(&out, ondemand.write_ceiling);
  PutDouble(&out, ondemand.read_ceiling);
  PutDouble(&out, ondemand.peak_write);
  PutDouble(&out, ondemand.peak_read);
  PutVarint64(&out, static_cast<uint64_t>(ondemand.window_start));
  PutDouble(&out, ondemand.window_write_units);
  PutDouble(&out, ondemand.window_read_units);
  return out;
}

namespace {

Status RestoreChaosState(const std::string& snapshot, size_t* offset,
                         CloudEnv* env) {
  WEBDEX_ASSIGN_OR_RETURN(uint64_t stream_count,
                          GetVarint64(snapshot, offset));
  std::vector<FaultInjector::StreamState> streams;
  streams.reserve(stream_count);
  for (uint64_t i = 0; i < stream_count; ++i) {
    WEBDEX_ASSIGN_OR_RETURN(std::string site, GetString(snapshot, offset));
    std::array<uint64_t, 4> state;
    for (auto& word : state) {
      WEBDEX_ASSIGN_OR_RETURN(word, GetVarint64(snapshot, offset));
    }
    streams.emplace_back(std::move(site), state);
  }
  env->fault_injector().RestoreStreams(streams);

  WEBDEX_ASSIGN_OR_RETURN(uint64_t tracker_count,
                          GetVarint64(snapshot, offset));
  std::vector<CircuitBreaker::TrackerState> trackers;
  trackers.reserve(tracker_count);
  for (uint64_t i = 0; i < tracker_count; ++i) {
    WEBDEX_ASSIGN_OR_RETURN(std::string resource,
                            GetString(snapshot, offset));
    HealthTracker tracker;
    WEBDEX_ASSIGN_OR_RETURN(uint64_t state, GetVarint64(snapshot, offset));
    if (state > static_cast<uint64_t>(BreakerState::kHalfOpen)) {
      return Status::Corruption("invalid breaker state in snapshot");
    }
    tracker.state = static_cast<BreakerState>(state);
    WEBDEX_ASSIGN_OR_RETURN(uint64_t failures, GetVarint64(snapshot, offset));
    tracker.consecutive_failures = static_cast<int>(failures);
    WEBDEX_ASSIGN_OR_RETURN(uint64_t successes,
                            GetVarint64(snapshot, offset));
    tracker.consecutive_successes = static_cast<int>(successes);
    WEBDEX_ASSIGN_OR_RETURN(uint64_t opened_at, GetVarint64(snapshot, offset));
    tracker.opened_at = static_cast<Micros>(opened_at);
    trackers.emplace_back(std::move(resource), tracker);
  }
  env->breaker().RestoreTrackers(trackers);
  return Status::OK();
}

}  // namespace

Status RestoreSnapshot(const std::string& snapshot, CloudEnv* env) {
  bool has_chaos_sections = false;
  bool has_maintenance_section = false;
  bool has_autoscaler_section = false;
  bool has_deployment_section = false;
  if (snapshot.size() >= kMagicLen &&
      snapshot.compare(0, kMagicLen, kMagicV5) == 0) {
    has_chaos_sections = true;
    has_maintenance_section = true;
    has_autoscaler_section = true;
    has_deployment_section = true;
  } else if (snapshot.size() >= kMagicLen &&
             snapshot.compare(0, kMagicLen, kMagicV4) == 0) {
    has_chaos_sections = true;
    has_maintenance_section = true;
    has_autoscaler_section = true;
  } else if (snapshot.size() >= kMagicLen &&
             snapshot.compare(0, kMagicLen, kMagicV3) == 0) {
    has_chaos_sections = true;
    has_maintenance_section = true;
  } else if (snapshot.size() >= kMagicLen &&
             snapshot.compare(0, kMagicLen, kMagicV2) == 0) {
    has_chaos_sections = true;
  } else if (snapshot.size() < kMagicLen ||
             snapshot.compare(0, kMagicLen, kMagicV1) != 0) {
    return Status::Corruption("not a webdex snapshot");
  }
  if (!env->s3().Empty() || !env->dynamodb().Empty() ||
      !env->simpledb().Empty()) {
    return Status::AlreadyExists(
        "snapshot must be restored into a fresh CloudEnv");
  }
  // Pre-v5 snapshots carry no architecture spec: their physical table
  // layout assumes the default single-table provisioned deployment.
  if (!has_deployment_section && !env->deployment().spec().IsDefault()) {
    return Status::InvalidArgument(
        "pre-v5 snapshot requires the default architecture, environment is " +
        env->deployment().spec().Name());
  }
  size_t offset = kMagicLen;
  WEBDEX_ASSIGN_OR_RETURN(uint64_t bucket_count,
                          GetVarint64(snapshot, &offset));
  for (uint64_t i = 0; i < bucket_count; ++i) {
    WEBDEX_ASSIGN_OR_RETURN(std::string bucket, GetString(snapshot, &offset));
    env->s3().RestoreBucket(bucket);
  }
  WEBDEX_ASSIGN_OR_RETURN(uint64_t object_count,
                          GetVarint64(snapshot, &offset));
  for (uint64_t i = 0; i < object_count; ++i) {
    WEBDEX_ASSIGN_OR_RETURN(std::string bucket, GetString(snapshot, &offset));
    WEBDEX_ASSIGN_OR_RETURN(std::string key, GetString(snapshot, &offset));
    WEBDEX_ASSIGN_OR_RETURN(std::string data, GetString(snapshot, &offset));
    env->s3().RestoreObject(bucket, key, std::move(data));
  }
  WEBDEX_RETURN_IF_ERROR(RestoreKvStore(snapshot, &offset, &env->dynamodb()));
  WEBDEX_RETURN_IF_ERROR(RestoreKvStore(snapshot, &offset, &env->simpledb()));
  if (has_chaos_sections) {
    WEBDEX_RETURN_IF_ERROR(RestoreChaosState(snapshot, &offset, env));
  }
  if (has_maintenance_section) {
    WEBDEX_ASSIGN_OR_RETURN(env->maintenance().compact_cursor,
                            GetString(snapshot, &offset));
    WEBDEX_ASSIGN_OR_RETURN(env->maintenance().generation_watermark,
                            GetVarint64(snapshot, &offset));
  }
  if (has_autoscaler_section) {
    AutoscalerState scaler;
    WEBDEX_ASSIGN_OR_RETURN(scaler.write_units, GetDouble(snapshot, &offset));
    WEBDEX_ASSIGN_OR_RETURN(scaler.read_units, GetDouble(snapshot, &offset));
    WEBDEX_ASSIGN_OR_RETURN(uint64_t window_start,
                            GetVarint64(snapshot, &offset));
    scaler.window_start = static_cast<Micros>(window_start);
    WEBDEX_ASSIGN_OR_RETURN(uint64_t last_up, GetVarint64(snapshot, &offset));
    scaler.last_scale_up = static_cast<Micros>(last_up);
    WEBDEX_ASSIGN_OR_RETURN(uint64_t last_down,
                            GetVarint64(snapshot, &offset));
    scaler.last_scale_down = static_cast<Micros>(last_down);
    WEBDEX_ASSIGN_OR_RETURN(scaler.window_write_units,
                            GetDouble(snapshot, &offset));
    WEBDEX_ASSIGN_OR_RETURN(scaler.window_read_units,
                            GetDouble(snapshot, &offset));
    WEBDEX_ASSIGN_OR_RETURN(scaler.window_write_throttles,
                            GetVarint64(snapshot, &offset));
    WEBDEX_ASSIGN_OR_RETURN(scaler.window_read_throttles,
                            GetVarint64(snapshot, &offset));
    WEBDEX_ASSIGN_OR_RETURN(scaler.started, GetVarint64(snapshot, &offset));
    env->autoscaler().Restore(scaler);
  }
  if (has_deployment_section) {
    ArchitectureSpec arch;
    WEBDEX_ASSIGN_OR_RETURN(uint64_t capacity, GetVarint64(snapshot, &offset));
    if (capacity > static_cast<uint64_t>(CapacityMode::kOnDemand)) {
      return Status::Corruption("invalid capacity mode in snapshot");
    }
    arch.capacity = static_cast<CapacityMode>(capacity);
    WEBDEX_ASSIGN_OR_RETURN(uint64_t shards, GetVarint64(snapshot, &offset));
    arch.shards = static_cast<int>(shards);
    WEBDEX_ASSIGN_OR_RETURN(uint64_t replicas, GetVarint64(snapshot, &offset));
    arch.replicas = static_cast<int>(replicas);
    WEBDEX_ASSIGN_OR_RETURN(uint64_t lag, GetVarint64(snapshot, &offset));
    arch.replication_lag = static_cast<Micros>(lag);
    // Restoring into a different deployment shape would scatter items
    // across the wrong physical tables; demand an exact match.
    if (!(arch == env->deployment().spec())) {
      return Status::InvalidArgument(
          "snapshot architecture " + arch.Name() +
          " does not match environment " + env->deployment().spec().Name());
    }
    WEBDEX_ASSIGN_OR_RETURN(uint64_t watermark_count,
                            GetVarint64(snapshot, &offset));
    for (uint64_t i = 0; i < watermark_count; ++i) {
      WEBDEX_ASSIGN_OR_RETURN(std::string table, GetString(snapshot, &offset));
      WEBDEX_ASSIGN_OR_RETURN(uint64_t at, GetVarint64(snapshot, &offset));
      env->deployment().RestoreWatermark(table, static_cast<Micros>(at));
    }
    DynamoDb::OnDemandState ondemand;
    WEBDEX_ASSIGN_OR_RETURN(ondemand.write_ceiling,
                            GetDouble(snapshot, &offset));
    WEBDEX_ASSIGN_OR_RETURN(ondemand.read_ceiling,
                            GetDouble(snapshot, &offset));
    WEBDEX_ASSIGN_OR_RETURN(ondemand.peak_write, GetDouble(snapshot, &offset));
    WEBDEX_ASSIGN_OR_RETURN(ondemand.peak_read, GetDouble(snapshot, &offset));
    WEBDEX_ASSIGN_OR_RETURN(uint64_t window_start,
                            GetVarint64(snapshot, &offset));
    ondemand.window_start = static_cast<Micros>(window_start);
    WEBDEX_ASSIGN_OR_RETURN(ondemand.window_write_units,
                            GetDouble(snapshot, &offset));
    WEBDEX_ASSIGN_OR_RETURN(ondemand.window_read_units,
                            GetDouble(snapshot, &offset));
    if (arch.capacity == CapacityMode::kOnDemand) {
      env->dynamodb().RestoreOnDemand(ondemand);
    }
  }
  if (offset != snapshot.size()) {
    return Status::Corruption("trailing bytes in snapshot");
  }
  return Status::OK();
}

Status SaveSnapshotFile(CloudEnv& env, const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IOError("cannot open " + path + " for writing");
  const std::string snapshot = SerializeSnapshot(env);
  file.write(snapshot.data(), static_cast<std::streamsize>(snapshot.size()));
  file.flush();
  if (!file) return Status::IOError("failed writing " + path);
  return Status::OK();
}

Status LoadSnapshotFile(const std::string& path, CloudEnv* env) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open " + path);
  std::ostringstream contents;
  contents << file.rdbuf();
  return RestoreSnapshot(std::move(contents).str(), env);
}

}  // namespace webdex::cloud
