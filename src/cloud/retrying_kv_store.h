#ifndef WEBDEX_CLOUD_RETRYING_KV_STORE_H_
#define WEBDEX_CLOUD_RETRYING_KV_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "cloud/circuit_breaker.h"
#include "cloud/kv_store.h"
#include "cloud/trace.h"
#include "cloud/usage.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/tracer.h"

namespace webdex::cloud {

/// KvStore decorator that gives every caller the AWS-SDK retry behaviour:
/// transient errors (kUnavailable / kResourceExhausted) are re-attempted
/// under capped exponential backoff with full jitter, and BatchPut
/// unprocessed-items suffixes are re-batched until they drain or the
/// policy is exhausted (docs/FAULTS.md).
///
/// Backoff sleeps advance the calling agent's virtual clock, so retries
/// honestly lengthen makespans and EC2 bills.  Jitter is drawn from
/// deterministic per-(operation, table) `Rng::ForKey` streams, keeping
/// schedules independent of host-thread interleaving.
///
/// When a `CircuitBreaker` is attached, every attempt is gated per table:
/// an open breaker fails the attempt fast with an *unbilled* kUnavailable
/// (no request reaches the store), while the backoff between attempts
/// still advances virtual time — which is exactly what lets the breaker's
/// cooldown lapse and half-open probes go through mid-retry-loop.  Only
/// retriable outcomes count against a table's health; a NotFound proves
/// the service is up.
///
/// The capability queries forward straight to the wrapped store (they are
/// pure), so the decorator is safe to hand to the host-parallel extraction
/// pipeline wherever the raw store was.
class RetryingKvStore final : public KvStore {
 public:
  /// `breaker` may be null (no breaker gating).  `metrics` mirrors
  /// attempt/retry counts under `cloud.retry.*`; `tracer` (when enabled)
  /// records one `attempt.<op>` span per attempt, each carrying its own
  /// metered Usage delta.  Both may be null.
  RetryingKvStore(KvStore* base, const common::RetryPolicy& policy,
                  uint64_t seed, UsageMeter* meter,
                  CircuitBreaker* breaker = nullptr,
                  common::MetricRegistry* metrics = nullptr,
                  common::Tracer* tracer = nullptr);

  RetryingKvStore(const RetryingKvStore&) = delete;
  RetryingKvStore& operator=(const RetryingKvStore&) = delete;

  /// Routed through CallWithRetry like the data-plane verbs: transient
  /// create faults are retried under the breaker-gated backoff schedule
  /// instead of bypassing the whole resilience stack (the pre-refactor
  /// bug this fixes).  AlreadyExists is terminal, not retriable.
  Status CreateTable(SimAgent& agent, const std::string& table) override;
  bool HasTable(const std::string& table) const override;
  /// Retries transient page errors and re-batches unprocessed items.  If
  /// items still remain after max_attempts rounds, returns kUnavailable
  /// with the survivors in `*unprocessed` (when non-null) so the caller
  /// can decide between abandoning the task and dead-lettering it.
  Status BatchPut(SimAgent& agent, const std::string& table,
                  const std::vector<Item>& items,
                  std::vector<Item>* unprocessed = nullptr) override;
  Result<std::vector<Item>> Get(SimAgent& agent, const std::string& table,
                                const std::string& hash_key) override;
  Result<std::vector<Item>> BatchGet(
      SimAgent& agent, const std::string& table,
      const std::vector<std::string>& hash_keys) override;
  Result<std::vector<Item>> Scan(SimAgent& agent,
                                const std::string& table) override;
  Status DeleteItem(SimAgent& agent, const std::string& table,
                    const std::string& hash_key,
                    const std::string& range_key) override;

  const char* Name() const override { return base_->Name(); }
  uint64_t MaxItemBytes() const override { return base_->MaxItemBytes(); }
  uint64_t MaxValueBytes() const override { return base_->MaxValueBytes(); }
  bool SupportsBinaryValues() const override {
    return base_->SupportsBinaryValues();
  }
  int BatchPutLimit() const override { return base_->BatchPutLimit(); }
  int BatchGetLimit() const override { return base_->BatchGetLimit(); }
  uint64_t MaxValuesPerItem() const override {
    return base_->MaxValuesPerItem();
  }

  uint64_t StoredBytes(const std::string& table) const override {
    return base_->StoredBytes(table);
  }
  uint64_t OverheadBytes(const std::string& table) const override {
    return base_->OverheadBytes(table);
  }
  uint64_t ItemCount(const std::string& table) const override {
    return base_->ItemCount(table);
  }
  std::vector<std::string> TableNames() const override {
    return base_->TableNames();
  }
  void ForEachItem(
      const std::function<void(const std::string&, const Item&)>& fn)
      const override {
    base_->ForEachItem(fn);
  }
  void RestoreItem(const std::string& table, const Item& item) override {
    base_->RestoreItem(table, item);
  }
  Status RestoreTable(const std::string& table) override {
    return base_->RestoreTable(table);
  }
  bool Empty() const override { return base_->Empty(); }

  const common::RetryPolicy& policy() const { return policy_; }
  CircuitBreaker* breaker() const { return breaker_; }

 private:
  Rng& StreamFor(const std::string& site);
  uint64_t* RetryCounter();
  /// Breaker gate before an attempt on `table`; OK when no breaker.
  Status Gate(SimAgent& agent, const std::string& table);
  /// Report an allowed attempt's outcome to the breaker.
  void Record(SimAgent& agent, const std::string& table,
              const Status& status);

  KvStore* base_;
  common::RetryPolicy policy_;
  uint64_t seed_;
  UsageMeter* meter_;
  CircuitBreaker* breaker_;
  common::Tracer* tracer_ = nullptr;
  common::Counter* attempts_metric_ = nullptr;
  common::Counter* retries_metric_ = nullptr;
  std::map<std::string, Rng, std::less<>> streams_;
};

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_RETRYING_KV_STORE_H_
