#include "cloud/usage.h"

#include "common/strings.h"

namespace webdex::cloud {

Usage& Usage::operator+=(const Usage& o) {
#define WEBDEX_USAGE_ADD(field) field += o.field;
  WEBDEX_USAGE_FIELDS(WEBDEX_USAGE_ADD)
#undef WEBDEX_USAGE_ADD
  return *this;
}

Usage Usage::operator-(const Usage& o) const {
  Usage d;
#define WEBDEX_USAGE_SUB(field) d.field = field - o.field;
  WEBDEX_USAGE_FIELDS(WEBDEX_USAGE_SUB)
#undef WEBDEX_USAGE_SUB
  return d;
}

Bill Bill::operator-(const Bill& o) const {
  Bill d;
  d.s3 = s3 - o.s3;
  d.dynamodb = dynamodb - o.dynamodb;
  d.simpledb = simpledb - o.simpledb;
  d.ec2 = ec2 - o.ec2;
  d.sqs = sqs - o.sqs;
  d.egress = egress - o.egress;
  return d;
}

Bill& Bill::operator+=(const Bill& o) {
  s3 += o.s3;
  dynamodb += o.dynamodb;
  simpledb += o.simpledb;
  ec2 += o.ec2;
  sqs += o.sqs;
  egress += o.egress;
  return *this;
}

std::string Bill::ToString() const {
  std::string out;
  out += StrFormat("  S3 (requests)     $%.5f\n", s3);
  out += StrFormat("  DynamoDB          $%.5f\n", dynamodb);
  if (simpledb > 0) out += StrFormat("  SimpleDB          $%.5f\n", simpledb);
  out += StrFormat("  EC2               $%.5f\n", ec2);
  out += StrFormat("  SQS               $%.5f\n", sqs);
  out += StrFormat("  AWSDown (egress)  $%.5f\n", egress);
  out += StrFormat("  TOTAL             $%.5f\n", total());
  return out;
}

void UsageMeter::AddVmTime(InstanceType type, Micros busy) {
  if (type == InstanceType::kLarge) {
    usage_.vm_micros_large += busy;
  } else {
    usage_.vm_micros_xlarge += busy;
  }
}

Bill UsageMeter::ComputeBill(const Usage& u) const {
  constexpr double kGb = 1024.0 * 1024.0 * 1024.0;
  Bill b;
  b.s3 = pricing_.st_put * static_cast<double>(u.s3_put_requests) +
         pricing_.st_get * static_cast<double>(u.s3_get_requests);
  b.dynamodb = pricing_.idx_put * u.ddb_write_units +
               pricing_.idx_get * u.ddb_read_units +
               pricing_.idx_write_unit_hour * u.ddb_write_capacity_hours +
               pricing_.idx_read_unit_hour * u.ddb_read_capacity_hours +
               pricing_.idx_ondemand_put * u.ddb_ondemand_write_units +
               pricing_.idx_ondemand_get * u.ddb_ondemand_read_units;
  b.simpledb = pricing_.simpledb_machine_hour * u.sdb_box_hours;
  b.ec2 = pricing_.vm_hour_large * MicrosToHours(u.vm_micros_large) +
          pricing_.vm_hour_xlarge * MicrosToHours(u.vm_micros_xlarge);
  b.sqs = pricing_.queue_request * static_cast<double>(u.sqs_requests);
  b.egress = pricing_.egress_gb * static_cast<double>(u.egress_bytes) / kGb;
  return b;
}

}  // namespace webdex::cloud
