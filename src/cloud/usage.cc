#include "cloud/usage.h"

#include "common/strings.h"

namespace webdex::cloud {

Usage& Usage::operator+=(const Usage& o) {
  s3_put_requests += o.s3_put_requests;
  s3_get_requests += o.s3_get_requests;
  s3_bytes_in += o.s3_bytes_in;
  s3_bytes_out += o.s3_bytes_out;
  ddb_put_requests += o.ddb_put_requests;
  ddb_get_requests += o.ddb_get_requests;
  ddb_items_written += o.ddb_items_written;
  ddb_write_units += o.ddb_write_units;
  ddb_read_units += o.ddb_read_units;
  sdb_put_requests += o.sdb_put_requests;
  sdb_get_requests += o.sdb_get_requests;
  sdb_box_hours += o.sdb_box_hours;
  sqs_requests += o.sqs_requests;
  faulted_requests += o.faulted_requests;
  retried_requests += o.retried_requests;
  sqs_redeliveries += o.sqs_redeliveries;
  dead_lettered += o.dead_lettered;
  breaker_opens += o.breaker_opens;
  breaker_closes += o.breaker_closes;
  breaker_short_circuits += o.breaker_short_circuits;
  degraded_queries += o.degraded_queries;
  scrub_repaired += o.scrub_repaired;
  vm_micros_large += o.vm_micros_large;
  vm_micros_xlarge += o.vm_micros_xlarge;
  egress_bytes += o.egress_bytes;
  return *this;
}

Usage Usage::operator-(const Usage& o) const {
  Usage d;
  d.s3_put_requests = s3_put_requests - o.s3_put_requests;
  d.s3_get_requests = s3_get_requests - o.s3_get_requests;
  d.s3_bytes_in = s3_bytes_in - o.s3_bytes_in;
  d.s3_bytes_out = s3_bytes_out - o.s3_bytes_out;
  d.ddb_put_requests = ddb_put_requests - o.ddb_put_requests;
  d.ddb_get_requests = ddb_get_requests - o.ddb_get_requests;
  d.ddb_items_written = ddb_items_written - o.ddb_items_written;
  d.ddb_write_units = ddb_write_units - o.ddb_write_units;
  d.ddb_read_units = ddb_read_units - o.ddb_read_units;
  d.sdb_put_requests = sdb_put_requests - o.sdb_put_requests;
  d.sdb_get_requests = sdb_get_requests - o.sdb_get_requests;
  d.sdb_box_hours = sdb_box_hours - o.sdb_box_hours;
  d.sqs_requests = sqs_requests - o.sqs_requests;
  d.faulted_requests = faulted_requests - o.faulted_requests;
  d.retried_requests = retried_requests - o.retried_requests;
  d.sqs_redeliveries = sqs_redeliveries - o.sqs_redeliveries;
  d.dead_lettered = dead_lettered - o.dead_lettered;
  d.breaker_opens = breaker_opens - o.breaker_opens;
  d.breaker_closes = breaker_closes - o.breaker_closes;
  d.breaker_short_circuits = breaker_short_circuits - o.breaker_short_circuits;
  d.degraded_queries = degraded_queries - o.degraded_queries;
  d.scrub_repaired = scrub_repaired - o.scrub_repaired;
  d.vm_micros_large = vm_micros_large - o.vm_micros_large;
  d.vm_micros_xlarge = vm_micros_xlarge - o.vm_micros_xlarge;
  d.egress_bytes = egress_bytes - o.egress_bytes;
  return d;
}

Bill Bill::operator-(const Bill& o) const {
  Bill d;
  d.s3 = s3 - o.s3;
  d.dynamodb = dynamodb - o.dynamodb;
  d.simpledb = simpledb - o.simpledb;
  d.ec2 = ec2 - o.ec2;
  d.sqs = sqs - o.sqs;
  d.egress = egress - o.egress;
  return d;
}

Bill& Bill::operator+=(const Bill& o) {
  s3 += o.s3;
  dynamodb += o.dynamodb;
  simpledb += o.simpledb;
  ec2 += o.ec2;
  sqs += o.sqs;
  egress += o.egress;
  return *this;
}

std::string Bill::ToString() const {
  std::string out;
  out += StrFormat("  S3 (requests)     $%.5f\n", s3);
  out += StrFormat("  DynamoDB          $%.5f\n", dynamodb);
  if (simpledb > 0) out += StrFormat("  SimpleDB          $%.5f\n", simpledb);
  out += StrFormat("  EC2               $%.5f\n", ec2);
  out += StrFormat("  SQS               $%.5f\n", sqs);
  out += StrFormat("  AWSDown (egress)  $%.5f\n", egress);
  out += StrFormat("  TOTAL             $%.5f\n", total());
  return out;
}

void UsageMeter::AddVmTime(InstanceType type, Micros busy) {
  if (type == InstanceType::kLarge) {
    usage_.vm_micros_large += busy;
  } else {
    usage_.vm_micros_xlarge += busy;
  }
}

Bill UsageMeter::ComputeBill(const Usage& u) const {
  constexpr double kGb = 1024.0 * 1024.0 * 1024.0;
  Bill b;
  b.s3 = pricing_.st_put * static_cast<double>(u.s3_put_requests) +
         pricing_.st_get * static_cast<double>(u.s3_get_requests);
  b.dynamodb = pricing_.idx_put * u.ddb_write_units +
               pricing_.idx_get * u.ddb_read_units;
  b.simpledb = pricing_.simpledb_machine_hour * u.sdb_box_hours;
  b.ec2 = pricing_.vm_hour_large * MicrosToHours(u.vm_micros_large) +
          pricing_.vm_hour_xlarge * MicrosToHours(u.vm_micros_xlarge);
  b.sqs = pricing_.queue_request * static_cast<double>(u.sqs_requests);
  b.egress = pricing_.egress_gb * static_cast<double>(u.egress_bytes) / kGb;
  return b;
}

}  // namespace webdex::cloud
