#ifndef WEBDEX_CLOUD_SHARDED_KV_STORE_H_
#define WEBDEX_CLOUD_SHARDED_KV_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "cloud/deployment.h"
#include "cloud/kv_store.h"
#include "cloud/trace.h"
#include "cloud/usage.h"
#include "common/metrics.h"
#include "common/tracer.h"

namespace webdex::cloud {

/// KvStore decorator that hash-partitions every logical index table
/// across `Deployment::spec().shards` physical tables
/// (docs/ARCHITECTURES.md).  Callers keep speaking logical table names;
/// the decorator routes each key to `PhysicalName(logical, ShardFor(key))`
/// and fans table-wide operations (Scan, CreateTable, storage accounting)
/// out over every physical table.
///
/// Because shards multiply the provisioned-capacity pool (CloudEnv scales
/// the per-table DynamoDB rates by the shard count), a sharded deployment
/// absorbs write bursts that throttle the single-table layout — the
/// Table 4-style makespan win compare-arch measures.
///
/// Contract preservation is what keeps architectures equivalent:
///   * BatchGet reassembles per-shard results into the documented
///     "concatenated in key order" order of the unsharded store;
///   * Scan merges shard pages and re-sorts by (hash, range) key;
///   * ForEachItem folds physical tables back to logical names and sorts,
///     so FingerprintStore() matches across shard counts;
///   * on a transient BatchPut error, `*unprocessed` aggregates the
///     bounced items of the failed shard plus every not-yet-attempted
///     shard, preserving the "everything not stored" contract.
///
/// Sits at the *top* of the decorator stack (above replication and
/// retries), so retry jitter streams, breaker resources and fault sites
/// are all keyed by physical table names — shard 3 of idx-lup can brown
/// out while its siblings stay healthy.
class ShardedKvStore final : public KvStore {
 public:
  /// `deployment` must outlive the store and have shards > 1.
  /// `metrics` and `tracer` may be null.
  ShardedKvStore(KvStore* base, Deployment* deployment, UsageMeter* meter,
                 common::MetricRegistry* metrics = nullptr,
                 common::Tracer* tracer = nullptr);

  ShardedKvStore(const ShardedKvStore&) = delete;
  ShardedKvStore& operator=(const ShardedKvStore&) = delete;

  /// Creates every physical shard of `logical` (first error wins).
  Status CreateTable(SimAgent& agent, const std::string& logical) override;
  bool HasTable(const std::string& logical) const override;
  Status BatchPut(SimAgent& agent, const std::string& logical,
                  const std::vector<Item>& items,
                  std::vector<Item>* unprocessed = nullptr) override;
  Result<std::vector<Item>> Get(SimAgent& agent, const std::string& logical,
                                const std::string& hash_key) override;
  Result<std::vector<Item>> BatchGet(
      SimAgent& agent, const std::string& logical,
      const std::vector<std::string>& hash_keys) override;
  Result<std::vector<Item>> Scan(SimAgent& agent,
                                 const std::string& logical) override;
  Status DeleteItem(SimAgent& agent, const std::string& logical,
                    const std::string& hash_key,
                    const std::string& range_key) override;

  const char* Name() const override { return base_->Name(); }
  uint64_t MaxItemBytes() const override { return base_->MaxItemBytes(); }
  uint64_t MaxValueBytes() const override { return base_->MaxValueBytes(); }
  bool SupportsBinaryValues() const override {
    return base_->SupportsBinaryValues();
  }
  int BatchPutLimit() const override { return base_->BatchPutLimit(); }
  int BatchGetLimit() const override { return base_->BatchGetLimit(); }
  uint64_t MaxValuesPerItem() const override {
    return base_->MaxValuesPerItem();
  }

  /// Storage accounting sums over the logical table's physical shards.
  uint64_t StoredBytes(const std::string& logical) const override;
  uint64_t OverheadBytes(const std::string& logical) const override;
  uint64_t ItemCount(const std::string& logical) const override;
  /// Logical table names (each reported once however many shards back it).
  std::vector<std::string> TableNames() const override;
  /// Yields logical tables with each table's items in (hash, range) key
  /// order, exactly as an unsharded store would — the property behind
  /// cross-architecture fingerprint equality.
  void ForEachItem(
      const std::function<void(const std::string&, const Item&)>& fn)
      const override;
  void RestoreItem(const std::string& logical, const Item& item) override;
  Status RestoreTable(const std::string& logical) override;
  bool Empty() const override { return base_->Empty(); }

 private:
  /// Per-physical-shard op counter `service.<svc>.<op>.s<shard>.count`.
  void CountOp(const char* op, int shard);

  KvStore* base_;
  Deployment* deployment_;
  UsageMeter* meter_;
  common::MetricRegistry* metrics_ = nullptr;
  common::Tracer* tracer_ = nullptr;
  common::Counter* route_metric_ = nullptr;
  common::Counter* fanout_metric_ = nullptr;
  /// Lowercased base service name, e.g. "dynamodb" — metric prefix part.
  std::string service_;
  std::map<std::string, common::Counter*> op_counters_;
};

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_SHARDED_KV_STORE_H_
