#ifndef WEBDEX_CLOUD_CIRCUIT_BREAKER_H_
#define WEBDEX_CLOUD_CIRCUIT_BREAKER_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "cloud/sim.h"
#include "cloud/usage.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/tracer.h"

namespace webdex::cloud {

/// Tunables of the per-resource circuit breakers (docs/FAULTS.md).  The
/// defaults are safe to leave enabled: a breaker only opens after
/// `failure_threshold` *consecutive* retriable failures, which a
/// fault-free run never produces.
struct CircuitBreakerConfig {
  bool enabled = true;
  /// Consecutive retriable failures that trip a closed breaker open.
  int failure_threshold = 5;
  /// Consecutive half-open probe successes that close it again.
  int success_threshold = 2;
  /// Virtual time an open breaker waits before letting probes through.
  Micros cooldown = 30 * kMicrosPerSecond;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

/// Health of a single resource (one index table, say): the consecutive
/// failure/success runs plus the breaker state machine position.  Plain
/// data so cloud/snapshot.cc can round-trip it.
struct HealthTracker {
  BreakerState state = BreakerState::kClosed;
  int consecutive_failures = 0;
  int consecutive_successes = 0;
  /// When the breaker last opened (valid while state == kOpen).
  Micros opened_at = 0;
};

/// Per-resource circuit breakers over the cloud clients, the standard
/// brownout defence: after a run of consecutive retriable failures the
/// breaker *opens* and fails calls fast — unbilled, since no request is
/// ever sent — until a virtual-time cooldown lapses; then it goes
/// *half-open*, letting real probe attempts through, and *closes* after
/// enough succeed (or re-opens on the first probe failure).  Every
/// transition is counted in Usage, so brownouts are visible in bills and
/// bench rows.
///
/// Determinism: state changes happen on the event-loop thread and depend
/// only on the (deterministic) sequence of call outcomes and virtual
/// clocks, so serial and host-parallel runs trip breakers identically.
class CircuitBreaker {
 public:
  /// One saved per-resource tracker (cloud/snapshot.cc).
  using TrackerState = std::pair<std::string, HealthTracker>;

  /// `metrics` mirrors transition counts under `cloud.breaker.*`;
  /// `tracer` records a zero-duration span per transition
  /// (`breaker.open:<resource>` etc.).  Both may be null.
  CircuitBreaker(const CircuitBreakerConfig& config, UsageMeter* meter,
                 common::MetricRegistry* metrics = nullptr,
                 common::Tracer* tracer = nullptr)
      : config_(config),
        meter_(meter),
        tracer_(tracer),
        opens_metric_(metrics == nullptr
                          ? nullptr
                          : metrics->GetCounter("cloud.breaker.opens.count")),
        closes_metric_(metrics == nullptr
                           ? nullptr
                           : metrics->GetCounter("cloud.breaker.closes.count")),
        short_circuits_metric_(
            metrics == nullptr
                ? nullptr
                : metrics->GetCounter("cloud.breaker.short_circuits.count")) {}

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  const CircuitBreakerConfig& config() const { return config_; }

  /// Gate an attempt against `resource` at virtual time `now`.  Returns
  /// OK when the attempt may proceed (closed, or half-open probe), or an
  /// unbilled kUnavailable when the breaker is open and still cooling
  /// down (counted in Usage::breaker_short_circuits).
  Status Allow(std::string_view resource, Micros now);

  /// Report the outcome of an allowed attempt.  Only retriable failures
  /// (kUnavailable / kResourceExhausted) count against health; permanent
  /// errors say nothing about the service being up.
  void RecordSuccess(std::string_view resource);
  void RecordFailure(std::string_view resource, Micros now);

  /// Current state for reports and `webdex stats` (closed for resources
  /// never seen).
  BreakerState state(std::string_view resource) const;

  /// Non-mutating health probe for planners: would an attempt against
  /// `resource` at virtual time `now` be let through?  True when the
  /// breaker is closed or half-open, and also when it is open but the
  /// cooldown has lapsed (the next Allow would move it to half-open) —
  /// so callers that plan around an open breaker still re-try the
  /// resource once it is probe-eligible, instead of shunning it forever.
  /// Unlike Allow, no state changes and no Usage counters.
  bool WouldAllow(std::string_view resource, Micros now) const;

  /// Snapshot support: the per-resource trackers in resource order.
  std::vector<TrackerState> SaveTrackers() const;
  void RestoreTrackers(const std::vector<TrackerState>& trackers);

 private:
  HealthTracker& TrackerFor(std::string_view resource);
  /// Records a state transition as a zero-duration span at `now`.
  void TraceTransition(const char* kind, std::string_view resource,
                       Micros now);

  CircuitBreakerConfig config_;
  UsageMeter* meter_;
  common::Tracer* tracer_ = nullptr;
  common::Counter* opens_metric_ = nullptr;
  common::Counter* closes_metric_ = nullptr;
  common::Counter* short_circuits_metric_ = nullptr;
  /// Virtual time of the last Allow/RecordFailure; RecordSuccess has no
  /// timestamp parameter, so its half-open -> closed transition span is
  /// stamped with this (the success it reports was observed then).
  Micros last_now_ = 0;
  std::map<std::string, HealthTracker, std::less<>> trackers_;
};

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_CIRCUIT_BREAKER_H_
