#include "cloud/retrying_kv_store.h"

namespace webdex::cloud {

RetryingKvStore::RetryingKvStore(KvStore* base,
                                 const common::RetryPolicy& policy,
                                 uint64_t seed, UsageMeter* meter,
                                 CircuitBreaker* breaker,
                                 common::MetricRegistry* metrics,
                                 common::Tracer* tracer)
    : base_(base),
      policy_(policy),
      seed_(seed),
      meter_(meter),
      breaker_(breaker),
      tracer_(tracer),
      attempts_metric_(metrics == nullptr ? nullptr
                                          : metrics->GetCounter(
                                                "cloud.retry.attempts.count")),
      retries_metric_(metrics == nullptr ? nullptr
                                         : metrics->GetCounter(
                                               "cloud.retry.retries.count")) {}

Rng& RetryingKvStore::StreamFor(const std::string& site) {
  auto it = streams_.find(site);
  if (it == streams_.end()) {
    it = streams_.emplace(site, Rng::ForKey(seed_, site)).first;
  }
  return it->second;
}

uint64_t* RetryingKvStore::RetryCounter() {
  return meter_ == nullptr ? nullptr
                           : &meter_->mutable_usage().retried_requests;
}

Status RetryingKvStore::Gate(SimAgent& agent, const std::string& table) {
  if (breaker_ == nullptr) return Status::OK();
  return breaker_->Allow(table, agent.now());
}

void RetryingKvStore::Record(SimAgent& agent, const std::string& table,
                             const Status& status) {
  if (breaker_ == nullptr) return;
  if (status.ok() || !status.IsRetriable()) {
    breaker_->RecordSuccess(table);
  } else {
    breaker_->RecordFailure(table, agent.now());
  }
}

Status RetryingKvStore::CreateTable(SimAgent& agent,
                                    const std::string& table) {
  Rng& rng = StreamFor("retry:createtable:" + table);
  int attempt = 0;
  return common::CallWithRetry(
      policy_, rng,
      [&]() -> Status {
        MeteredSpan span(tracer_, meter_, agent, "attempt.create_table");
        span.AddAttr("attempt", ++attempt);
        if (attempts_metric_ != nullptr) attempts_metric_->Add(1);
        Status gate = Gate(agent, table);
        if (!gate.ok()) {
          span.AddAttr("error", 1);
          return gate;
        }
        Status status = base_->CreateTable(agent, table);
        Record(agent, table, status);
        if (!status.ok()) span.AddAttr("error", 1);
        return status;
      },
      [&](int64_t micros) {
        agent.Advance(static_cast<Micros>(micros));
        if (retries_metric_ != nullptr) retries_metric_->Add(1);
      },
      RetryCounter());
}

bool RetryingKvStore::HasTable(const std::string& table) const {
  return base_->HasTable(table);
}

Status RetryingKvStore::BatchPut(SimAgent& agent, const std::string& table,
                                 const std::vector<Item>& items,
                                 std::vector<Item>* unprocessed) {
  if (unprocessed != nullptr) unprocessed->clear();
  Rng& rng = StreamFor("retry:batchput:" + table);
  // Each round re-submits only what has not committed yet: re-batched
  // unprocessed items after a partial success, or the uncommitted suffix
  // after a transient page error.  Re-puts of committed items are
  // harmless anyway (replacement semantics, UUID range keys) — this just
  // avoids paying their write units twice.
  std::vector<Item> pending = items;
  std::vector<Item> leftover;
  int64_t slept = 0;
  for (int attempt = 1;; ++attempt) {
    Status status;
    {
      // One span per retry-loop round, breaker short-circuits included;
      // its metered delta is empty when no request reached the store.
      MeteredSpan span(tracer_, meter_, agent, "attempt.batch_put");
      span.AddAttr("attempt", attempt);
      if (attempts_metric_ != nullptr) attempts_metric_->Add(1);
      status = Gate(agent, table);
      if (status.ok()) {
        status = base_->BatchPut(agent, table, pending, &leftover);
        Record(agent, table, status);
      } else {
        // Breaker short-circuit: nothing was attempted or billed; the
        // backoff below still advances virtual time toward the cooldown.
        leftover = pending;
      }
      if (!status.ok()) span.AddAttr("error", 1);
    }
    if (status.ok() && leftover.empty()) return Status::OK();
    if (!status.ok() && !status.IsRetriable()) {
      if (unprocessed != nullptr) *unprocessed = std::move(leftover);
      return status;
    }
    if (attempt >= policy_.max_attempts) {
      if (unprocessed != nullptr) *unprocessed = std::move(leftover);
      return status.ok() ? Status::Unavailable(
                               "unprocessed items remain after re-batching: " +
                               table)
                         : status;
    }
    const int64_t cap = common::BackoffCapMicros(policy_, attempt);
    int64_t backoff =
        cap <= 0 ? 0
                 : static_cast<int64_t>(rng.NextDouble() *
                                        static_cast<double>(cap + 1));
    // An organic throttle names the exact virtual time capacity frees up;
    // sleep precisely that (same contract as common::CallWithRetry).
    const int64_t hint = status.retry_after_micros();
    if (hint > 0) backoff = hint;
    if (policy_.deadline_micros > 0 &&
        slept + backoff > policy_.deadline_micros) {
      if (unprocessed != nullptr) *unprocessed = std::move(leftover);
      return status.ok() ? Status::Unavailable(
                               "retry deadline exceeded re-batching: " + table)
                         : status;
    }
    agent.Advance(static_cast<Micros>(backoff));
    slept += backoff;
    if (uint64_t* counter = RetryCounter()) ++*counter;
    if (retries_metric_ != nullptr) retries_metric_->Add(1);
    pending = std::move(leftover);
    leftover.clear();
  }
}

Result<std::vector<Item>> RetryingKvStore::Get(SimAgent& agent,
                                               const std::string& table,
                                               const std::string& hash_key) {
  Rng& rng = StreamFor("retry:get:" + table);
  int attempt = 0;
  return common::CallWithRetry(
      policy_, rng,
      [&]() -> Result<std::vector<Item>> {
        MeteredSpan span(tracer_, meter_, agent, "attempt.get");
        span.AddAttr("attempt", ++attempt);
        if (attempts_metric_ != nullptr) attempts_metric_->Add(1);
        Status gate = Gate(agent, table);
        if (!gate.ok()) {
          span.AddAttr("error", 1);
          return gate;
        }
        auto result = base_->Get(agent, table, hash_key);
        Record(agent, table, result.status());
        if (!result.status().ok()) span.AddAttr("error", 1);
        return result;
      },
      [&](int64_t micros) {
        agent.Advance(static_cast<Micros>(micros));
        if (retries_metric_ != nullptr) retries_metric_->Add(1);
      },
      RetryCounter());
}

Result<std::vector<Item>> RetryingKvStore::BatchGet(
    SimAgent& agent, const std::string& table,
    const std::vector<std::string>& hash_keys) {
  Rng& rng = StreamFor("retry:batchget:" + table);
  int attempt = 0;
  return common::CallWithRetry(
      policy_, rng,
      [&]() -> Result<std::vector<Item>> {
        MeteredSpan span(tracer_, meter_, agent, "attempt.batch_get");
        span.AddAttr("attempt", ++attempt);
        if (attempts_metric_ != nullptr) attempts_metric_->Add(1);
        Status gate = Gate(agent, table);
        if (!gate.ok()) {
          span.AddAttr("error", 1);
          return gate;
        }
        auto result = base_->BatchGet(agent, table, hash_keys);
        Record(agent, table, result.status());
        if (!result.status().ok()) span.AddAttr("error", 1);
        return result;
      },
      [&](int64_t micros) {
        agent.Advance(static_cast<Micros>(micros));
        if (retries_metric_ != nullptr) retries_metric_->Add(1);
      },
      RetryCounter());
}

Result<std::vector<Item>> RetryingKvStore::Scan(SimAgent& agent,
                                               const std::string& table) {
  Rng& rng = StreamFor("retry:scan:" + table);
  int attempt = 0;
  return common::CallWithRetry(
      policy_, rng,
      [&]() -> Result<std::vector<Item>> {
        MeteredSpan span(tracer_, meter_, agent, "attempt.scan");
        span.AddAttr("attempt", ++attempt);
        if (attempts_metric_ != nullptr) attempts_metric_->Add(1);
        Status gate = Gate(agent, table);
        if (!gate.ok()) {
          span.AddAttr("error", 1);
          return gate;
        }
        auto result = base_->Scan(agent, table);
        Record(agent, table, result.status());
        if (!result.status().ok()) span.AddAttr("error", 1);
        return result;
      },
      [&](int64_t micros) {
        agent.Advance(static_cast<Micros>(micros));
        if (retries_metric_ != nullptr) retries_metric_->Add(1);
      },
      RetryCounter());
}

Status RetryingKvStore::DeleteItem(SimAgent& agent, const std::string& table,
                                   const std::string& hash_key,
                                   const std::string& range_key) {
  Rng& rng = StreamFor("retry:delete:" + table);
  int attempt = 0;
  return common::CallWithRetry(
      policy_, rng,
      [&]() -> Status {
        MeteredSpan span(tracer_, meter_, agent, "attempt.delete_item");
        span.AddAttr("attempt", ++attempt);
        if (attempts_metric_ != nullptr) attempts_metric_->Add(1);
        Status gate = Gate(agent, table);
        if (!gate.ok()) {
          span.AddAttr("error", 1);
          return gate;
        }
        Status status = base_->DeleteItem(agent, table, hash_key, range_key);
        Record(agent, table, status);
        if (!status.ok()) span.AddAttr("error", 1);
        return status;
      },
      [&](int64_t micros) {
        agent.Advance(static_cast<Micros>(micros));
        if (retries_metric_ != nullptr) retries_metric_->Add(1);
      },
      RetryCounter());
}

}  // namespace webdex::cloud
