#ifndef WEBDEX_CLOUD_TRACE_H_
#define WEBDEX_CLOUD_TRACE_H_

#include <string>
#include <string_view>

#include "cloud/sim.h"
#include "cloud/usage.h"
#include "common/metrics.h"
#include "common/tracer.h"

namespace webdex::cloud {

/// Attaches a Usage delta to a span: one `usage.<field>` attribute per
/// non-zero field plus the conventional `usd` attribute holding the
/// delta's metered bill, which common::Tracer::CostRollup prices
/// subtrees with.
void AddUsageAttrs(common::Tracer* tracer, uint64_t span,
                   const UsageMeter& meter, const Usage& delta);

/// RAII span over virtual time *and* metered usage.  Snapshots the meter
/// at construction and attributes the delta (plus its dollar bill) when
/// the span ends.  Because the event loop meters single-threadedly, a
/// parent span's delta is exactly the sum of its children's deltas plus
/// whatever it metered itself — the invariant behind the cost-rollup
/// acceptance check in observability_test.cc.
///
/// With the tracer disabled (the default) construction is one branch and
/// no snapshot is taken.
class MeteredSpan {
 public:
  MeteredSpan(common::Tracer* tracer, UsageMeter* meter,
              const SimAgent& agent, std::string_view name);
  ~MeteredSpan() { End(); }
  MeteredSpan(const MeteredSpan&) = delete;
  MeteredSpan& operator=(const MeteredSpan&) = delete;

  /// Idempotent early close (the destructor calls it too).
  void End();

  void AddAttr(std::string_view key, double value);
  uint64_t id() const { return id_; }

 private:
  common::Tracer* tracer_ = nullptr;
  UsageMeter* meter_ = nullptr;
  const SimAgent* agent_ = nullptr;
  uint64_t id_ = 0;
  Usage before_;
};

/// Per-operation service metrics: `<prefix>.requests`, `<prefix>.errors`
/// and `<prefix>.latency_us` (virtual time observed by the calling
/// agent, rate-limiter waits included).  Services resolve these once at
/// construction; `For` with a null registry yields a no-op recorder.
struct OpMetrics {
  common::Counter* requests = nullptr;
  common::Counter* errors = nullptr;
  common::Histogram* latency = nullptr;

  static OpMetrics For(common::MetricRegistry* registry,
                       const std::string& prefix);

  /// Records one operation that started at agent time `start`.
  void Record(const SimAgent& agent, Micros start, bool error) const;
};

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_TRACE_H_
