#ifndef WEBDEX_CLOUD_USAGE_H_
#define WEBDEX_CLOUD_USAGE_H_

#include <cstdint>
#include <string>

#include "cloud/pricing.h"
#include "cloud/sim.h"

namespace webdex::cloud {

/// Every field of Usage, in declaration order.  operator+= / operator-,
/// the ForEachField visitors, the `usage.<field>` metric mirror
/// (CloudEnv::PublishUsageMetrics) and the `usage.<field>` span
/// attributes (cloud/trace.h) are all generated from this list, so a new
/// counter added here automatically flows through arithmetic, stats,
/// metrics and traces — usage_test.cc verifies the list covers the whole
/// struct so a field added below without a matching X(...) entry fails.
#define WEBDEX_USAGE_FIELDS(X) \
  X(s3_put_requests)           \
  X(s3_get_requests)           \
  X(s3_bytes_in)               \
  X(s3_bytes_out)              \
  X(ddb_put_requests)          \
  X(ddb_get_requests)          \
  X(ddb_items_written)         \
  X(ddb_write_units)           \
  X(ddb_read_units)            \
  X(sdb_put_requests)          \
  X(sdb_get_requests)          \
  X(sdb_box_hours)             \
  X(sqs_requests)              \
  X(faulted_requests)          \
  X(retried_requests)          \
  X(sqs_redeliveries)          \
  X(dead_lettered)             \
  X(breaker_opens)             \
  X(breaker_closes)            \
  X(breaker_short_circuits)    \
  X(degraded_queries)          \
  X(scrub_repaired)            \
  X(tombstones_written)        \
  X(compact_gc_items)          \
  X(compact_uris)              \
  X(throttled_requests)        \
  X(shed_queries)              \
  X(scale_events)              \
  X(ddb_write_capacity_hours)  \
  X(ddb_read_capacity_hours)   \
  X(vm_micros_large)           \
  X(vm_micros_xlarge)          \
  X(egress_bytes)              \
  X(ondemand_requests)         \
  X(replica_reads)             \
  X(ddb_ondemand_write_units)  \
  X(ddb_ondemand_read_units)

/// Raw consumption counters for every simulated cloud service.
///
/// Every simulated API call increments these, so the dollar amounts the
/// provider would have charged are *metered*, not estimated.  The
/// analytical model of Section 7 lives separately in cost/cost_model.h;
/// tests cross-check the two.
struct Usage {
  // File store (S3).
  uint64_t s3_put_requests = 0;
  uint64_t s3_get_requests = 0;
  uint64_t s3_bytes_in = 0;   // uploaded payload bytes
  uint64_t s3_bytes_out = 0;  // downloaded payload bytes

  // Index store (DynamoDB).
  uint64_t ddb_put_requests = 0;   // API calls (a batch counts once)
  uint64_t ddb_get_requests = 0;   // API calls
  uint64_t ddb_items_written = 0;  // individual items
  // Capacity units are fractional: size-proportional with a small
  // per-item floor (see DynamoDb::WriteUnits for the calibration note).
  double ddb_write_units = 0;  // 1 KB write capacity units
  double ddb_read_units = 0;   // 4 KB read capacity units

  // Legacy index store (SimpleDB).
  uint64_t sdb_put_requests = 0;
  uint64_t sdb_get_requests = 0;
  double sdb_box_hours = 0.0;

  // Queue service (SQS): send + receive + delete + lease renewals.
  uint64_t sqs_requests = 0;

  // Fault-injection and recovery accounting (docs/FAULTS.md).  Faulted
  // attempts are billed through the ordinary per-service counters above;
  // these extra counters make the fault overhead itself observable in
  // reports, stats and bench rows.
  uint64_t faulted_requests = 0;  // attempts failed by the chaos layer
  uint64_t retried_requests = 0;  // re-attempts issued by retry helpers
  uint64_t sqs_redeliveries = 0;  // deliveries with delivery_count > 1
  uint64_t dead_lettered = 0;     // messages dropped after max deliveries

  // Brownout accounting (circuit breakers, degraded reads, scrubbing).
  uint64_t breaker_opens = 0;           // closed/half-open -> open
  uint64_t breaker_closes = 0;          // half-open -> closed
  uint64_t breaker_short_circuits = 0;  // calls failed fast, unbilled
  uint64_t degraded_queries = 0;        // answered via full scan fallback
  uint64_t scrub_repaired = 0;          // URIs repaired by the Scrubber

  // Mutable-corpus maintenance accounting (docs/MUTABILITY.md).
  uint64_t tombstones_written = 0;  // delete tasks committed
  uint64_t compact_gc_items = 0;    // stale/tombstoned items collected
  uint64_t compact_uris = 0;        // URIs canonicalized or collected

  // Overload accounting (docs/OVERLOAD.md).  Throttled/shed attempts are
  // billed (or deliberately not billed) through the per-service counters
  // above; these make the overload behaviour itself observable.
  uint64_t throttled_requests = 0;  // organic 429s from backlog bounds
  uint64_t shed_queries = 0;        // queries rejected by admission control
  uint64_t scale_events = 0;        // autoscaler capacity adjustments
  // Provisioned-capacity rental, metered by the Autoscaler when capacity
  // billing is enabled (0 otherwise, keeping request-only bills intact).
  double ddb_write_capacity_hours = 0;  // write-capacity-unit-hours
  double ddb_read_capacity_hours = 0;   // read-capacity-unit-hours

  // Virtual machines: rented time per type.
  Micros vm_micros_large = 0;
  Micros vm_micros_xlarge = 0;

  // Data transferred out of the cloud (query results to the user).
  uint64_t egress_bytes = 0;

  // Deployment-shape accounting (docs/ARCHITECTURES.md).  All zero under
  // the default provisioned single-table architecture.
  uint64_t ondemand_requests = 0;  // API requests billed at on-demand rates
  uint64_t replica_reads = 0;      // reads served by a read replica
  // On-demand capacity units, metered apart from the provisioned ones so
  // the two price sheets never mix in one bill.
  double ddb_ondemand_write_units = 0;
  double ddb_ondemand_read_units = 0;

  Usage& operator+=(const Usage& o);
  Usage operator-(const Usage& o) const;

  /// Calls fn("field_name", field_value) for every field, in declaration
  /// order.  `fn` must be generic: values are uint64_t, double or Micros.
  template <typename Fn>
  void ForEachField(Fn&& fn) const {
#define WEBDEX_USAGE_VISIT(field) fn(#field, field);
    WEBDEX_USAGE_FIELDS(WEBDEX_USAGE_VISIT)
#undef WEBDEX_USAGE_VISIT
  }

  /// Mutable variant: fn("field_name", &field).
  template <typename Fn>
  void ForEachField(Fn&& fn) {
#define WEBDEX_USAGE_VISIT(field) fn(#field, &field);
    WEBDEX_USAGE_FIELDS(WEBDEX_USAGE_VISIT)
#undef WEBDEX_USAGE_VISIT
  }

  /// Number of fields in WEBDEX_USAGE_FIELDS; every field is 8 bytes
  /// (uint64_t / double / Micros), so usage_test.cc asserts
  /// kFieldCount * 8 == sizeof(Usage) to catch a field missing from the
  /// list.
  static constexpr int kFieldCount = 0
#define WEBDEX_USAGE_COUNT(field) +1
      WEBDEX_USAGE_FIELDS(WEBDEX_USAGE_COUNT)
#undef WEBDEX_USAGE_COUNT
      ;
};

/// One line item per cloud service, in dollars, as in the paper's Table 6
/// and Figure 12 breakdowns.
struct Bill {
  double s3 = 0;        // file store requests
  double dynamodb = 0;  // index store capacity units
  double simpledb = 0;  // legacy index store box usage
  double ec2 = 0;       // instance-hours
  double sqs = 0;       // queue requests
  double egress = 0;    // paper's "AWSDown"

  double total() const {
    return s3 + dynamodb + simpledb + ec2 + sqs + egress;
  }

  Bill operator-(const Bill& o) const;
  Bill& operator+=(const Bill& o);

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Accumulates Usage and converts it to money under a Pricing sheet.
class UsageMeter {
 public:
  explicit UsageMeter(Pricing pricing) : pricing_(pricing) {}

  const Pricing& pricing() const { return pricing_; }
  const Usage& usage() const { return usage_; }
  Usage& mutable_usage() { return usage_; }

  void AddVmTime(InstanceType type, Micros busy);
  void AddEgress(uint64_t bytes) { usage_.egress_bytes += bytes; }

  /// The total bill for everything metered so far.
  Bill ComputeBill() const { return ComputeBill(usage_); }

  /// The bill for a usage delta (e.g. one experiment phase).
  Bill ComputeBill(const Usage& u) const;

  /// Snapshot for later diffing: `usage() - snapshot`.
  Usage Snapshot() const { return usage_; }

  void Reset() { usage_ = Usage(); }

 private:
  Pricing pricing_;
  Usage usage_;
};

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_USAGE_H_
