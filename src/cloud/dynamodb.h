#ifndef WEBDEX_CLOUD_DYNAMODB_H_
#define WEBDEX_CLOUD_DYNAMODB_H_

#include <map>
#include <string>
#include <vector>

#include "cloud/kv_store.h"
#include "cloud/sim.h"
#include "cloud/trace.h"
#include "cloud/usage.h"
#include "common/metrics.h"

namespace webdex::cloud {

struct DynamoDbConfig {
  /// Per-API-request round trip.
  Micros request_latency = 3'000;
  /// Provisioned write capacity (1 KB write units / second) shared by all
  /// clients — the indexing bottleneck observed in the paper (Section 8.2
  /// "DynamoDB was the bottleneck while indexing").  <= 0 disables.
  double write_units_per_second = 400;
  /// Provisioned read capacity (4 KB read units / second).
  double read_units_per_second = 250;
  /// Organic-throttle delay bound: a request that would queue behind more
  /// than this much committed work is rejected with kResourceExhausted
  /// and a Retry-After hint instead of waiting (docs/OVERLOAD.md).
  /// <= 0 (default) queues without bound — the pre-overload behaviour,
  /// and what keeps existing runs bit-identical.
  Micros max_backlog_micros = 0;
  /// Pay-per-request capacity (docs/ARCHITECTURES.md).  Units are billed
  /// to Usage::ddb_ondemand_* at Pricing::idx_ondemand_* rates instead
  /// of the provisioned counters; the limiters act as the on-demand
  /// burst ceiling, starting at the configured rates (CloudEnv doubles
  /// the baseline) and doubling past each sustained one-second peak.
  bool on_demand = false;
};

/// Simulated Amazon DynamoDB (paper Section 6): tables of items of at most
/// 64 KB, composite hash + range primary keys, multi-valued attributes,
/// binary values, get / batchGet(100) / put / batchPut(25), and
/// provisioned-capacity throttling.
///
/// Storage overhead: AWS bills 100 bytes of index overhead per item on top
/// of raw item size; this is the ovh(D, I) term visible in Figure 8.
class FaultInjector;
class Autoscaler;

class DynamoDb final : public KvStore {
 public:
  /// `injector` may be null (no fault injection); `metrics` may be null
  /// (no per-op `service.dynamodb.*` metrics).
  DynamoDb(const DynamoDbConfig& config, UsageMeter* meter,
           FaultInjector* injector = nullptr,
           common::MetricRegistry* metrics = nullptr);

  DynamoDb(const DynamoDb&) = delete;
  DynamoDb& operator=(const DynamoDb&) = delete;

  Status CreateTable(SimAgent& agent, const std::string& table) override;
  bool HasTable(const std::string& table) const override;
  Status BatchPut(SimAgent& agent, const std::string& table,
                  const std::vector<Item>& items,
                  std::vector<Item>* unprocessed = nullptr) override;
  Result<std::vector<Item>> Get(SimAgent& agent, const std::string& table,
                                const std::string& hash_key) override;
  Result<std::vector<Item>> BatchGet(
      SimAgent& agent, const std::string& table,
      const std::vector<std::string>& hash_keys) override;
  Result<std::vector<Item>> Scan(SimAgent& agent,
                                const std::string& table) override;
  Status DeleteItem(SimAgent& agent, const std::string& table,
                    const std::string& hash_key,
                    const std::string& range_key) override;

  const char* Name() const override { return "DynamoDB"; }
  uint64_t MaxItemBytes() const override { return 64 * 1024; }
  uint64_t MaxValueBytes() const override { return 64 * 1024; }
  bool SupportsBinaryValues() const override { return true; }
  int BatchPutLimit() const override { return 25; }
  int BatchGetLimit() const override { return 100; }
  uint64_t MaxValuesPerItem() const override { return 1 << 20; }

  uint64_t StoredBytes(const std::string& table) const override;
  uint64_t OverheadBytes(const std::string& table) const override;
  uint64_t ItemCount(const std::string& table) const override;
  std::vector<std::string> TableNames() const override;
  void ForEachItem(
      const std::function<void(const std::string&, const Item&)>& fn)
      const override;
  void RestoreItem(const std::string& table, const Item& item) override;
  Status RestoreTable(const std::string& table) override;
  bool Empty() const override { return tables_.empty(); }

  /// Per-item storage overhead billed by the store.
  static constexpr uint64_t kItemOverheadBytes = 100;

  /// Durable on-demand burst-ceiling state (snapshot v5).  All zero when
  /// `on_demand` is off.
  struct OnDemandState {
    double write_ceiling = 0;  // current limiter rates (units/second)
    double read_ceiling = 0;
    double peak_write = 0;  // highest sustained one-second consumption
    double peak_read = 0;
    Micros window_start = 0;
    double window_write_units = 0;
    double window_read_units = 0;
  };
  const OnDemandState& ondemand_state() const { return ondemand_; }
  /// Restores the burst-ceiling trajectory (snapshot v5) and re-times
  /// the limiters to the restored ceilings.
  void RestoreOnDemand(const OnDemandState& state);

  /// Attaches the reactive autoscaler (cloud/autoscaler.h); may be null.
  /// The store feeds it consumption and throttle observations and lets
  /// it re-provision capacity at evaluation boundaries.
  void set_autoscaler(Autoscaler* autoscaler) { autoscaler_ = autoscaler; }

  /// Re-provisions both fluid limiters at virtual time `at`, preserving
  /// busy-period accounting (RateLimiter::SetRate).  Called by the
  /// autoscaler; also usable directly by tests.
  void SetProvisionedCapacity(double write_units_per_second,
                              double read_units_per_second, Micros at);
  double write_units_per_second() const {
    return config_.write_units_per_second;
  }
  double read_units_per_second() const {
    return config_.read_units_per_second;
  }

 private:
  struct Table {
    // hash key -> range key -> attributes.
    std::map<std::string, std::map<std::string, Attributes>> items;
    uint64_t stored_bytes = 0;
    uint64_t item_count = 0;
  };

  /// Write capacity units for an item.
  ///
  /// Calibration note: AWS quantizes write units to 1 KB *per item*.  At
  /// the paper's scale (2 MB documents) per-key index payloads routinely
  /// exceed 1 KB, so capacity consumption — and therefore both upload
  /// time and Table 6's costs — is effectively proportional to index
  /// *bytes*, which is exactly what the paper measured (costs ordered
  /// LU < LUI < LUP < 2LUPI like the index sizes).  To preserve that
  /// size-proportional behaviour at laptop-scale document sizes, the
  /// simulation uses fractional units, max(bytes, kMinWriteBytes)/1024,
  /// instead of hard per-item ceilings; the small floor models per-item
  /// request overhead.
  static double WriteUnits(const Item& item);
  /// Read capacity units for an item: max(bytes, kMinReadBytes)/4096,
  /// fractional (same calibration rationale; AWS quantum is 4 KB).
  static double ReadUnits(uint64_t item_bytes);

 public:
  static constexpr double kMinWriteBytes = 64;
  static constexpr double kMinReadBytes = 128;

 private:

  Status ValidateItem(const Item& item) const;

  /// On-demand control loop: at each elapsed one-second window, folds the
  /// window's consumption into the sustained peak and raises (never
  /// lowers) the burst ceiling to twice that peak — AWS's "double your
  /// previous peak" adaptive capacity, in virtual time.
  void OnDemandTick(Micros now);
  /// Feeds the current on-demand window; routes the units to the
  /// on-demand usage counters when on-demand, provisioned ones otherwise.
  void MeterWriteUnits(double units);
  void MeterReadUnits(double units);

  /// Organic throttle gate: when the delay bound is configured and the
  /// limiter's backlog at `agent.now()` exceeds it, bills the rejected
  /// API request (round trip, no capacity), records the error on `op`,
  /// and returns kResourceExhausted carrying the Retry-After hint.
  /// Returns OK (and touches nothing) otherwise.  Also drives the
  /// attached autoscaler's control loop.
  Status MaybeThrottle(SimAgent& agent, const RateLimiter& limiter,
                       bool write, Micros op_start, const OpMetrics& op);

  DynamoDbConfig config_;
  UsageMeter* meter_;
  FaultInjector* injector_;
  Autoscaler* autoscaler_ = nullptr;
  OpMetrics batch_put_metrics_;
  OpMetrics get_metrics_;
  OpMetrics batch_get_metrics_;
  OpMetrics scan_metrics_;
  OpMetrics delete_metrics_;
  OpMetrics create_table_metrics_;
  common::Gauge* write_units_metric_ = nullptr;
  common::Gauge* read_units_metric_ = nullptr;
  common::Counter* throttled_metric_ = nullptr;
  RateLimiter write_limiter_;
  RateLimiter read_limiter_;
  OnDemandState ondemand_;
  std::map<std::string, Table> tables_;
};

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_DYNAMODB_H_
