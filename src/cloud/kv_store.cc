#include "cloud/kv_store.h"

namespace webdex::cloud {

uint64_t Item::SizeBytes() const {
  uint64_t size = hash_key.size() + range_key.size();
  for (const auto& [name, values] : attrs) {
    size += name.size();
    for (const auto& v : values) size += v.size();
  }
  return size;
}

uint64_t KvStore::TotalStoredBytes() const {
  uint64_t total = 0;
  for (const auto& t : TableNames()) total += StoredBytes(t);
  return total;
}

uint64_t KvStore::TotalOverheadBytes() const {
  uint64_t total = 0;
  for (const auto& t : TableNames()) total += OverheadBytes(t);
  return total;
}

}  // namespace webdex::cloud
