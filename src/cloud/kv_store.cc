#include "cloud/kv_store.h"

#include "cloud/deployment.h"

namespace webdex::cloud {

uint64_t Item::SizeBytes() const {
  uint64_t size = hash_key.size() + range_key.size();
  for (const auto& [name, values] : attrs) {
    size += name.size();
    for (const auto& v : values) size += v.size();
  }
  return size;
}

uint64_t KvStore::TotalStoredBytes() const {
  uint64_t total = 0;
  for (const auto& t : TableNames()) total += StoredBytes(t);
  return total;
}

uint64_t KvStore::TotalOverheadBytes() const {
  uint64_t total = 0;
  for (const auto& t : TableNames()) total += OverheadBytes(t);
  return total;
}

uint64_t FingerprintStore(const KvStore& store) {
  std::string dump;
  const auto append = [&dump](const std::string& field) {
    dump += std::to_string(field.size());
    dump += ':';
    dump += field;
  };
  store.ForEachItem([&](const std::string& table, const Item& item) {
    append(table);
    append(item.hash_key);
    append(item.range_key);
    dump += std::to_string(item.attrs.size());
    dump += ';';
    for (const auto& [name, values] : item.attrs) {
      append(name);
      dump += std::to_string(values.size());
      dump += ';';
      for (const auto& value : values) append(value);
    }
  });
  return Fnv1a64(dump);
}

}  // namespace webdex::cloud
