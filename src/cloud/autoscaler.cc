#include "cloud/autoscaler.h"

#include <algorithm>

#include "cloud/dynamodb.h"

namespace webdex::cloud {

namespace {
constexpr double kChangeEpsilon = 1e-9;

double Clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}
}  // namespace

Autoscaler::Autoscaler(const AutoscalerConfig& config, DynamoDb* dynamodb,
                       UsageMeter* meter, common::MetricRegistry* metrics,
                       common::Tracer* tracer)
    : config_(config),
      dynamodb_(dynamodb),
      meter_(meter),
      tracer_(tracer),
      write_units_gauge_(metrics == nullptr
                             ? nullptr
                             : metrics->GetGauge("autoscale.write_units")),
      read_units_gauge_(metrics == nullptr
                            ? nullptr
                            : metrics->GetGauge("autoscale.read_units")),
      scale_ups_(metrics == nullptr
                     ? nullptr
                     : metrics->GetCounter("autoscale.scale_ups.count")),
      scale_downs_(metrics == nullptr
                       ? nullptr
                       : metrics->GetCounter("autoscale.scale_downs.count")) {}

void Autoscaler::EnsureStarted(Micros now) {
  if (state_.started != 0) return;
  state_.started = 1;
  // Windows are aligned to the interval grid so the trajectory depends
  // only on virtual time, not on which call happened to arrive first.
  const Micros interval = config_.evaluation_interval;
  state_.window_start = interval <= 0 ? now : (now / interval) * interval;
  if (state_.write_units <= 0) {
    state_.write_units = dynamodb_->write_units_per_second();
    state_.read_units = dynamodb_->read_units_per_second();
  }
  if (config_.enabled) {
    // Pull the starting point into the configured bounds.
    state_.write_units = Clamp(state_.write_units, config_.min_write_units,
                               config_.max_write_units);
    state_.read_units = Clamp(state_.read_units, config_.min_read_units,
                              config_.max_read_units);
    ApplyCapacity(state_.window_start);
  }
  if (write_units_gauge_ != nullptr) {
    write_units_gauge_->Set(state_.write_units);
  }
  if (read_units_gauge_ != nullptr) read_units_gauge_->Set(state_.read_units);
}

void Autoscaler::BillWindow(Micros from, Micros to) {
  if (to <= from || meter_ == nullptr) return;
  const double hours = MicrosToHours(to - from);
  meter_->mutable_usage().ddb_write_capacity_hours +=
      state_.write_units * hours;
  meter_->mutable_usage().ddb_read_capacity_hours += state_.read_units * hours;
}

void Autoscaler::ApplyCapacity(Micros at) {
  dynamodb_->SetProvisionedCapacity(state_.write_units, state_.read_units, at);
}

void Autoscaler::Tick(Micros now) {
  if (!active()) return;
  EnsureStarted(now);
  const Micros interval = config_.evaluation_interval;
  if (interval <= 0) return;
  while (now >= state_.window_start + interval) {
    EvaluateWindow(state_.window_start + interval);
  }
}

void Autoscaler::FinishBilling(Micros now) {
  if (!active()) return;
  EnsureStarted(now);
  Tick(now);
  BillWindow(state_.window_start, now);
  if (now > state_.window_start) state_.window_start = now;
}

void Autoscaler::EvaluateWindow(Micros boundary) {
  const Micros window_start = state_.window_start;
  BillWindow(window_start, boundary);
  const double window_seconds =
      static_cast<double>(boundary - window_start) /
      static_cast<double>(kMicrosPerSecond);

  if (config_.enabled && window_seconds > 0) {
    const double consumed_w = state_.window_write_units / window_seconds;
    const double consumed_r = state_.window_read_units / window_seconds;
    const double util_w =
        state_.write_units <= 0 ? 0 : consumed_w / state_.write_units;
    const double util_r =
        state_.read_units <= 0 ? 0 : consumed_r / state_.read_units;
    const double target = config_.target_utilization;

    double desired_w = state_.write_units;
    if (state_.window_write_throttles > 0) {
      // A saturated limiter admits at most its own capacity, so
      // consumption under-reports demand; boost multiplicatively.
      desired_w = std::max(consumed_w / target,
                           state_.write_units * config_.throttle_boost);
    } else if (util_w > target) {
      desired_w = consumed_w / target;
    } else if (util_w < target * config_.scale_down_headroom) {
      desired_w = std::max(consumed_w / target,
                           state_.write_units * config_.scale_down_step);
    }
    desired_w =
        Clamp(desired_w, config_.min_write_units, config_.max_write_units);

    double desired_r = state_.read_units;
    if (state_.window_read_throttles > 0) {
      desired_r = std::max(consumed_r / target,
                           state_.read_units * config_.throttle_boost);
    } else if (util_r > target) {
      desired_r = consumed_r / target;
    } else if (util_r < target * config_.scale_down_headroom) {
      desired_r = std::max(consumed_r / target,
                           state_.read_units * config_.scale_down_step);
    }
    desired_r =
        Clamp(desired_r, config_.min_read_units, config_.max_read_units);

    const bool up = desired_w > state_.write_units + kChangeEpsilon ||
                    desired_r > state_.read_units + kChangeEpsilon;
    const bool down = !up && (desired_w < state_.write_units - kChangeEpsilon ||
                              desired_r < state_.read_units - kChangeEpsilon);
    bool apply = false;
    if (up) {
      apply = state_.last_scale_up == 0 ||
              boundary - state_.last_scale_up >= config_.scale_up_cooldown;
    } else if (down) {
      const Micros last_change =
          std::max(state_.last_scale_up, state_.last_scale_down);
      apply = last_change == 0
                  ? boundary >= config_.scale_down_cooldown
                  : boundary - last_change >= config_.scale_down_cooldown;
    }
    if (apply) {
      clock_.ResetClock(boundary);
      MeteredSpan span(tracer_, meter_, clock_, "autoscale.scale");
      span.AddAttr("write_units_before", state_.write_units);
      span.AddAttr("read_units_before", state_.read_units);
      state_.write_units = desired_w;
      state_.read_units = desired_r;
      ApplyCapacity(boundary);
      span.AddAttr("write_units", state_.write_units);
      span.AddAttr("read_units", state_.read_units);
      span.AddAttr("up", up ? 1 : 0);
      if (meter_ != nullptr) meter_->mutable_usage().scale_events += 1;
      if (up) {
        state_.last_scale_up = boundary;
        if (scale_ups_ != nullptr) scale_ups_->Add(1);
      } else {
        state_.last_scale_down = boundary;
        if (scale_downs_ != nullptr) scale_downs_->Add(1);
      }
      if (write_units_gauge_ != nullptr) {
        write_units_gauge_->Set(state_.write_units);
      }
      if (read_units_gauge_ != nullptr) {
        read_units_gauge_->Set(state_.read_units);
      }
    }
  }

  state_.window_start = boundary;
  state_.window_write_units = 0;
  state_.window_read_units = 0;
  state_.window_write_throttles = 0;
  state_.window_read_throttles = 0;
}

void Autoscaler::Restore(const AutoscalerState& state) {
  state_ = state;
  if (active() && state_.started != 0 && state_.write_units > 0) {
    ApplyCapacity(state_.window_start);
    if (write_units_gauge_ != nullptr) {
      write_units_gauge_->Set(state_.write_units);
    }
    if (read_units_gauge_ != nullptr) {
      read_units_gauge_->Set(state_.read_units);
    }
  }
}

}  // namespace webdex::cloud
