#include "cloud/instance.h"

namespace webdex::cloud {

InstanceSpec SpecFor(InstanceType type) {
  switch (type) {
    case InstanceType::kLarge:
      // 7.5 GB RAM, 2 virtual cores with 2 ECU each (Section 8.1).
      return InstanceSpec{2, 2.0, 7.5};
    case InstanceType::kExtraLarge:
      // 15 GB RAM, 4 virtual cores with 2 ECU each.
      return InstanceSpec{4, 2.0, 15.0};
  }
  return InstanceSpec{1, 1.0, 1.0};
}

Instance::Instance(int id, InstanceType type, const WorkModel* work)
    : id_(id), type_(type), spec_(SpecFor(type)), work_(work) {}

void Instance::ChargeSerialWork(double ecu_micros) {
  if (ecu_micros <= 0) return;
  Advance(static_cast<Micros>(ecu_micros / spec_.ecu_per_core));
}

void Instance::ChargeParallelWork(double ecu_micros) {
  if (ecu_micros <= 0) return;
  Advance(static_cast<Micros>(ecu_micros /
                              (spec_.ecu_per_core * spec_.cores)));
}

}  // namespace webdex::cloud
