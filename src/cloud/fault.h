#ifndef WEBDEX_CLOUD_FAULT_H_
#define WEBDEX_CLOUD_FAULT_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cloud/sim.h"
#include "cloud/usage.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"

namespace webdex::cloud {

/// Where the engine may simulate a worker crash (generalizing the old
/// crash-before-delete test hook; see docs/FAULTS.md).
enum class CrashPoint {
  /// After a task is fully processed but before its queue message is
  /// deleted: the classic lost-ack, the lease expires and the task is
  /// redone elsewhere (paper Section 3).
  kBeforeDelete,
  /// Between two pages of an index-store BatchPut: the crash leaves a
  /// half-written index that a redelivery must converge despite.
  kBetweenBatchPutPages,
  /// Between two documents of a compaction pass: the pass dies with its
  /// cursor checkpointed at the last completed URI, and a resumed pass
  /// must converge from there (engine/compactor.h, docs/MUTABILITY.md).
  kMidCompaction,
};

const char* CrashPointName(CrashPoint point);

/// The fault-injectable simulated services.  Used to select a
/// ServiceFaults profile from the plan and to scope OutageWindows.
enum class ServiceId {
  kS3,
  kDynamoDb,
  kSimpleDb,
  kSqs,
};

const char* ServiceIdName(ServiceId service);

/// Fault profile of one simulated service.  Probabilities are per API
/// attempt; fields irrelevant to a service are simply ignored (e.g. only
/// DynamoDB consults unprocessed_probability, only SQS the duplicate and
/// delay knobs).
struct ServiceFaults {
  /// Probability that an attempt fails outright with a transient error.
  double error_probability = 0;
  /// Fraction of those errors reported as throttling
  /// (kResourceExhausted); the rest are 5xx-style kUnavailable.
  double throttle_share = 0.5;
  /// DynamoDB batch writes: probability that a page succeeds but returns
  /// an unprocessed-items suffix the client must re-batch.
  double unprocessed_probability = 0;
  /// SQS receive: probability a delivery stays immediately deliverable
  /// again (at-least-once duplicate; the first receipt turns stale).
  double duplicate_probability = 0;
  /// SQS send: probability the message only becomes visible after a
  /// uniform delay in (0, max_delay].
  double delay_probability = 0;
  Micros max_delay = 0;

  bool Any() const {
    return error_probability > 0 || unprocessed_probability > 0 ||
           duplicate_probability > 0 || delay_probability > 0;
  }
};

/// Probabilities of the plan-driven crash points, evaluated per task (the
/// stream is keyed by the queue-message body, so a given task crashes at
/// the same points no matter which instance or delivery runs it).
struct CrashFaults {
  double before_delete_probability = 0;
  double between_batch_put_pages_probability = 0;
  double mid_compaction_probability = 0;

  bool Any() const {
    return before_delete_probability > 0 ||
           between_batch_put_pages_probability > 0 ||
           mid_compaction_probability > 0;
  }
};

/// A sustained outage: one service failing (hard, by default) over a
/// half-open virtual-time interval [start, end).  Unlike the per-attempt
/// transient knobs above, an outage persists past any retry budget — the
/// brownout that forces circuit breakers open and queries onto the
/// degraded scan path (docs/FAULTS.md).
struct OutageWindow {
  ServiceId service = ServiceId::kDynamoDb;
  Micros start = 0;
  Micros end = 0;
  /// Probability an attempt inside the window fails (default: all do).
  double error_probability = 1.0;
  /// Share of those failures reported as throttling (kResourceExhausted);
  /// the rest are kUnavailable.  Extremes skip the coin flip so a hard
  /// outage never advances the site's random stream.
  double throttle_share = 1.0;

  bool Active(Micros now) const { return now >= start && now < end; }
};

/// The complete chaos schedule of a simulated cloud.  Default-constructed
/// plans inject nothing, keeping every existing run bit-identical.
struct FaultPlan {
  /// Mixed with CloudConfig::seed: two runs with the same cloud seed but
  /// different plan seeds see different fault schedules.
  uint64_t seed = 1;
  ServiceFaults s3;
  ServiceFaults dynamodb;
  ServiceFaults simpledb;
  ServiceFaults sqs;
  CrashFaults crash;
  std::vector<OutageWindow> outages;

  const ServiceFaults& Faults(ServiceId service) const;

  bool Any() const {
    return s3.Any() || dynamodb.Any() || simpledb.Any() || sqs.Any() ||
           crash.Any() || !outages.empty();
  }
};

/// Deterministic transient-fault source shared by the simulated services.
///
/// Determinism contract: every decision is drawn from an `Rng::ForKey`
/// stream pinned to a *site key* (operation + resource, e.g.
/// "ddb.batchput:LU-table"), never from execution order of unrelated
/// calls.  Sustained outages additionally consult the caller's virtual
/// clock, which is itself deterministic.  All injection happens on the
/// event-loop thread (pooled host threads never touch simulated
/// services), so the fault schedule — and therefore bills and makespans —
/// is identical for host_threads == 1 and host_threads == N, and
/// independent of host-thread interleaving.
///
/// Billing contract: the injector only decides; the calling service bills
/// the failed attempt exactly like a successful request round trip
/// (request counters + latency) minus any data-proportional effects
/// (bytes, capacity units) — matching AWS, where throttled requests
/// consume no capacity but retried attempts still cost requests and time.
class FaultInjector {
 public:
  /// One saved per-site stream cursor (cloud/snapshot.cc).
  using StreamState = std::pair<std::string, std::array<uint64_t, 4>>;

  /// `metrics` may be null; when given, injected faults are mirrored to
  /// the `cloud.faults.injected.count` counter.
  FaultInjector(const FaultPlan& plan, uint64_t base_seed, UsageMeter* meter,
                common::MetricRegistry* metrics = nullptr);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return enabled_; }

  /// Returns a transient error (kUnavailable or kResourceExhausted) with
  /// probability `error_probability` of the service's profile — or of an
  /// OutageWindow active at `now`, which takes precedence — OK otherwise.
  /// Increments Usage::faulted_requests when it fires.
  Status MaybeFail(ServiceId service, std::string_view site, Micros now);

  /// DynamoDB partial batch failure: how many trailing items of a
  /// `page_size`-item page come back unprocessed (0 = whole page stored).
  size_t UnprocessedCount(ServiceId service, std::string_view site,
                          size_t page_size);

  /// SQS at-least-once duplicate: leave the message deliverable although
  /// it was just handed out.
  bool ShouldDuplicate(ServiceId service, std::string_view site);

  /// SQS delayed delivery: extra visibility delay for a sent message.
  Micros DeliveryDelay(ServiceId service, std::string_view site);

  /// Plan-driven crash decision for the engine's crash points, keyed by
  /// the task's queue-message body.
  bool ShouldCrash(CrashPoint point, std::string_view task_key);

  /// Snapshot support: the per-site stream cursors in site-key order.
  /// Restoring them makes a resumed run draw the identical continuation
  /// of every fault schedule (cloud/snapshot.cc, docs/FAULTS.md).
  std::vector<StreamState> SaveStreams() const;
  void RestoreStreams(const std::vector<StreamState>& streams);

 private:
  Rng& StreamFor(std::string_view site);

  /// Bumps Usage::faulted_requests and its metric mirror together.
  void CountFault();

  FaultPlan plan_;
  uint64_t base_seed_;
  UsageMeter* meter_;
  common::Counter* faults_metric_ = nullptr;
  bool enabled_;
  std::map<std::string, Rng, std::less<>> streams_;
};

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_FAULT_H_
