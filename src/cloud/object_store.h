#ifndef WEBDEX_CLOUD_OBJECT_STORE_H_
#define WEBDEX_CLOUD_OBJECT_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cloud/sim.h"
#include "cloud/trace.h"
#include "cloud/usage.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"

namespace webdex::cloud {

/// Latency/bandwidth model for the file store.
struct ObjectStoreConfig {
  /// Fixed per-request latency (connection + first byte).
  Micros request_latency = 12'000;
  /// Per-connection transfer bandwidth.
  double bandwidth_bytes_per_sec = 25.0 * 1024 * 1024;
  /// Global request rate limit; <= 0 means effectively unlimited, which
  /// matches S3's behaviour at the paper's scale.
  double requests_per_second = 0;
};

/// Simulated Amazon S3: a durable store of named objects grouped into
/// buckets (paper Section 6).  The warehouse keeps every XML document and
/// every query-result file here.
///
/// Simulation contract: every call takes the calling `SimAgent` and
/// advances its virtual clock by the modeled request latency plus transfer
/// time; every call increments the shared `UsageMeter` with exactly the
/// requests S3 would have billed.
class FaultInjector;

class ObjectStore {
 public:
  /// `injector` may be null (no fault injection), e.g. in unit tests that
  /// construct the store directly; `metrics` may be null (no per-op
  /// `service.s3.*` metrics — billing through `meter` is unaffected).
  ObjectStore(const ObjectStoreConfig& config, UsageMeter* meter,
              FaultInjector* injector = nullptr,
              common::MetricRegistry* metrics = nullptr);

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// Creates a bucket; fails with AlreadyExists if present.  Free of
  /// charge (bucket creation is not a billed data operation).
  Status CreateBucket(const std::string& bucket);

  /// Stores (or replaces) an object.
  Status Put(SimAgent& agent, const std::string& bucket,
             const std::string& key, std::string data);

  /// Retrieves an object's content.
  Result<std::string> Get(SimAgent& agent, const std::string& bucket,
                          const std::string& key);

  /// Retrieves many objects over `parallel_streams` concurrent
  /// connections (modeling the multi-threaded transfer the paper's query
  /// processor uses to pull matched documents into EC2).  Latency charged
  /// to the agent is the makespan of the parallel transfer; each object
  /// is billed as one get request.  Fails on the first missing key.
  Result<std::vector<std::string>> BatchGet(
      SimAgent& agent, const std::string& bucket,
      const std::vector<std::string>& keys, int parallel_streams);

  /// Deletes an object (no-op if absent; delete requests are free in S3).
  Status Delete(SimAgent& agent, const std::string& bucket,
                const std::string& key);

  /// True if the object exists (metadata-only, not billed, no latency;
  /// used by tests and assertions, not by the simulated application).
  bool Exists(const std::string& bucket, const std::string& key) const;

  /// Keys in a bucket with the given prefix, lexicographically ordered.
  /// Billed and charged like one get request per 1000 keys (S3 LIST).
  Result<std::vector<std::string>> List(SimAgent& agent,
                                        const std::string& bucket,
                                        const std::string& prefix);

  /// Total payload bytes currently stored in `bucket` (0 if absent).
  uint64_t BucketBytes(const std::string& bucket) const;

  /// Total payload bytes across all buckets.
  uint64_t TotalBytes() const;

  uint64_t ObjectCount(const std::string& bucket) const;

  // --- Host-side tooling (snapshots; not billed, no virtual latency) ----
  /// Direct reference to an object's payload, or nullptr if absent.  Used
  /// by the host-parallel extraction pipeline to read documents without
  /// billing (the simulated GET is still issued — and billed — by the
  /// instance when the event loop reaches the task).  Safe to call from
  /// several host threads concurrently as long as no simulated agent is
  /// mutating the bucket, which holds during an indexing run: loader
  /// tasks only read the data bucket.
  const std::string* PeekObject(const std::string& bucket,
                                const std::string& key) const;
  /// Iterates every (bucket, key, payload) in deterministic order.
  void ForEachObject(
      const std::function<void(const std::string&, const std::string&,
                               const std::string&)>& fn) const;
  /// Restores one object, creating its bucket if needed.
  void RestoreObject(const std::string& bucket, const std::string& key,
                     std::string data);
  bool Empty() const { return buckets_.empty(); }
  /// All bucket names (including empty buckets), sorted.
  std::vector<std::string> BucketNames() const;
  /// Creates a bucket if absent (snapshot restore path).
  void RestoreBucket(const std::string& bucket) { buckets_[bucket]; }

 private:
  // Advances `agent` past the rate limiter and fixed latency plus the
  // transfer time for `bytes`.
  void ChargeTransfer(SimAgent& agent, uint64_t bytes);

  ObjectStoreConfig config_;
  UsageMeter* meter_;
  FaultInjector* injector_;
  // Per-operation service metrics (docs/OBSERVABILITY.md); no-ops when
  // the store was built without a registry.
  OpMetrics put_metrics_;
  OpMetrics get_metrics_;
  OpMetrics batch_get_metrics_;
  OpMetrics list_metrics_;
  common::Counter* bytes_in_metric_ = nullptr;
  common::Counter* bytes_out_metric_ = nullptr;
  RateLimiter request_limiter_;
  // bucket -> key -> object payload.
  std::map<std::string, std::map<std::string, std::string>> buckets_;
};

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_OBJECT_STORE_H_
