#ifndef WEBDEX_CLOUD_DEPLOYMENT_H_
#define WEBDEX_CLOUD_DEPLOYMENT_H_

#include <map>
#include <string>
#include <vector>

#include "cloud/sim.h"
#include "common/status.h"

namespace webdex::cloud {

/// How index-store capacity is purchased (docs/ARCHITECTURES.md).
enum class CapacityMode {
  /// The paper's deployment: provisioned read/write units, organic
  /// throttling against the fluid limiters, optional autoscaler.
  kProvisioned,
  /// Pay-per-request: no provisioned rental, a burst ceiling that starts
  /// at twice the configured baseline and doubles past each sustained
  /// peak, and a per-unit price premium (Pricing::idx_ondemand_*).
  kOnDemand,
};

const char* CapacityModeName(CapacityMode mode);

/// The deployment shape of the simulated warehouse, selected in
/// CloudConfig.  The default spec reproduces the paper's single-table
/// provisioned deployment bit-identically; every other spec must yield
/// the same logical index contents and query rows, differing only in
/// Usage, latency and dollars (architecture_test.cc).
struct ArchitectureSpec {
  CapacityMode capacity = CapacityMode::kProvisioned;
  /// Physical tables each logical index table is hash-partitioned
  /// across.  1 = the paper's layout (physical names == logical names).
  int shards = 1;
  /// Read replicas per physical table.  0 = primary-only.  Replicas
  /// serve eventually-consistent reads at half the read price once the
  /// replication lag has elapsed since the table's last write; fresher
  /// reads fall back to the primary (read-your-writes).
  int replicas = 0;
  /// Virtual-time replication lag before a write is visible on replicas.
  Micros replication_lag = 500'000;

  bool IsDefault() const {
    return capacity == CapacityMode::kProvisioned && shards <= 1 &&
           replicas <= 0;
  }

  /// Compact spec name used by compare-arch and bench rows, e.g.
  /// "prov-s4-r2" or "ondemand-s1-r0".
  std::string Name() const;

  /// Bounds check (shards in [1, 64], replicas in [0, 8], lag >= 0).
  Status Validate() const;

  bool operator==(const ArchitectureSpec& o) const {
    return capacity == o.capacity && shards == o.shards &&
           replicas == o.replicas && replication_lag == o.replication_lag;
  }
};

/// Owns how the logical index maps onto physical stores: shard routing
/// and physical table naming, plus the per-physical-table write
/// watermarks the replicated read pool prices consistency against.
///
/// Lives in CloudEnv next to the stores; the ShardedKvStore /
/// ReplicatedKvStore decorators and the planner all consult the same
/// instance, and snapshot v5 persists the watermarks through it.
///
/// Thread-safety: routing queries (ShardFor/PhysicalName/...) are pure
/// functions of immutable configuration and safe from any thread; the
/// watermark map follows the event-loop-only contract of UsageMeter.
class Deployment {
 public:
  explicit Deployment(const ArchitectureSpec& spec);

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  const ArchitectureSpec& spec() const { return spec_; }
  bool sharded() const { return spec_.shards > 1; }
  bool replicated() const { return spec_.replicas > 0; }

  /// Shard index for a hash key: FNV-1a of the key modulo the shard
  /// count.  Always 0 when unsharded.
  int ShardFor(const std::string& hash_key) const;

  /// Physical table backing shard `shard` of `logical`.  Identity when
  /// shards == 1 so the default deployment's table names — and with them
  /// fault sites, breaker resources and retry jitter streams — are
  /// byte-for-byte unchanged.
  std::string PhysicalName(const std::string& logical, int shard) const;

  /// Folds a physical table name back to its logical table.
  std::string LogicalName(const std::string& physical) const;

  /// Every physical table backing `logical`, in shard order.
  std::vector<std::string> PhysicalTables(const std::string& logical) const;

  /// Deterministic replica choice for a read: FNV-1a of table + first
  /// requested key modulo the replica count.
  int ReplicaFor(const std::string& table, const std::string& first_key) const;

  // --- Replication watermarks (virtual time of the last write) ---------
  /// 0 when the table has never been written.
  Micros Watermark(const std::string& physical_table) const;
  /// Moves the table's watermark forward to `at` (never backward).
  void RecordWrite(const std::string& physical_table, Micros at);
  /// True when a read at `now` may be served by a replica: the last
  /// write has had `replication_lag` to propagate.
  bool ReplicaReadable(const std::string& physical_table, Micros now) const;

  /// Snapshot support (cloud/snapshot.cc, format v5).
  const std::map<std::string, Micros>& watermarks() const {
    return watermarks_;
  }
  void RestoreWatermark(const std::string& physical_table, Micros at) {
    watermarks_[physical_table] = at;
  }

 private:
  ArchitectureSpec spec_;
  std::map<std::string, Micros> watermarks_;
};

/// FNV-1a 64-bit hash, the deterministic routing/fingerprint hash shared
/// by shard routing and the logical dump fingerprints.
uint64_t Fnv1a64(const std::string& bytes);

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_DEPLOYMENT_H_
