#ifndef WEBDEX_CLOUD_REPLICATED_KV_STORE_H_
#define WEBDEX_CLOUD_REPLICATED_KV_STORE_H_

#include <string>
#include <vector>

#include "cloud/deployment.h"
#include "cloud/kv_store.h"
#include "cloud/trace.h"
#include "cloud/usage.h"
#include "common/metrics.h"
#include "common/tracer.h"

namespace webdex::cloud {

/// KvStore decorator that models a pool of read replicas per physical
/// table (docs/ARCHITECTURES.md).  Writes go to the primary and advance
/// the table's replication watermark in the shared Deployment; reads are
/// served eventually-consistently from a deterministically chosen replica
/// at half the read price once the replication lag has elapsed since the
/// table's last write, and fall back to the primary (read-your-writes,
/// full price) while the watermark is still fresh.
///
/// Replica reads return the exact same bytes as primary reads — only the
/// Usage (and hence dollars) differ, which is what keeps every
/// architecture's query rows bit-identical (architecture_test.cc).  The
/// half price mirrors DynamoDB's eventually-consistent read pricing.
///
/// Sits *below* ShardedKvStore (it prices physical tables) and *above*
/// RetryingKvStore in the stack, so the retry loop and breaker still see
/// the same table names and jitter streams as an unreplicated run.
class ReplicatedKvStore final : public KvStore {
 public:
  /// `deployment` must outlive the store and have replicas > 0.
  /// `metrics` and `tracer` may be null.
  ReplicatedKvStore(KvStore* base, Deployment* deployment, UsageMeter* meter,
                    common::MetricRegistry* metrics = nullptr,
                    common::Tracer* tracer = nullptr);

  ReplicatedKvStore(const ReplicatedKvStore&) = delete;
  ReplicatedKvStore& operator=(const ReplicatedKvStore&) = delete;

  Status CreateTable(SimAgent& agent, const std::string& table) override;
  bool HasTable(const std::string& table) const override;
  Status BatchPut(SimAgent& agent, const std::string& table,
                  const std::vector<Item>& items,
                  std::vector<Item>* unprocessed = nullptr) override;
  Result<std::vector<Item>> Get(SimAgent& agent, const std::string& table,
                                const std::string& hash_key) override;
  Result<std::vector<Item>> BatchGet(
      SimAgent& agent, const std::string& table,
      const std::vector<std::string>& hash_keys) override;
  Result<std::vector<Item>> Scan(SimAgent& agent,
                                 const std::string& table) override;
  Status DeleteItem(SimAgent& agent, const std::string& table,
                    const std::string& hash_key,
                    const std::string& range_key) override;

  const char* Name() const override { return base_->Name(); }
  uint64_t MaxItemBytes() const override { return base_->MaxItemBytes(); }
  uint64_t MaxValueBytes() const override { return base_->MaxValueBytes(); }
  bool SupportsBinaryValues() const override {
    return base_->SupportsBinaryValues();
  }
  int BatchPutLimit() const override { return base_->BatchPutLimit(); }
  int BatchGetLimit() const override { return base_->BatchGetLimit(); }
  uint64_t MaxValuesPerItem() const override {
    return base_->MaxValuesPerItem();
  }

  uint64_t StoredBytes(const std::string& table) const override {
    return base_->StoredBytes(table);
  }
  uint64_t OverheadBytes(const std::string& table) const override {
    return base_->OverheadBytes(table);
  }
  uint64_t ItemCount(const std::string& table) const override {
    return base_->ItemCount(table);
  }
  std::vector<std::string> TableNames() const override {
    return base_->TableNames();
  }
  void ForEachItem(
      const std::function<void(const std::string&, const Item&)>& fn)
      const override {
    base_->ForEachItem(fn);
  }
  void RestoreItem(const std::string& table, const Item& item) override {
    base_->RestoreItem(table, item);
  }
  Status RestoreTable(const std::string& table) override {
    return base_->RestoreTable(table);
  }
  bool Empty() const override { return base_->Empty(); }

 private:
  /// True when the read that starts now may be served by a replica.
  bool Eligible(const SimAgent& agent, const std::string& table) const {
    return deployment_->ReplicaReadable(table, agent.now());
  }
  /// Books a successful replica read: refunds half the read-unit delta
  /// since `before`, counts it, and records the staleness histogram.
  void BookReplicaRead(const std::string& table, const Usage& before,
                       Micros now);

  KvStore* base_;
  Deployment* deployment_;
  UsageMeter* meter_;
  common::Tracer* tracer_ = nullptr;
  common::Counter* replica_reads_metric_ = nullptr;
  common::Counter* primary_reads_metric_ = nullptr;
  common::Histogram* lag_metric_ = nullptr;
};

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_REPLICATED_KV_STORE_H_
