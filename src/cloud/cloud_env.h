#ifndef WEBDEX_CLOUD_CLOUD_ENV_H_
#define WEBDEX_CLOUD_CLOUD_ENV_H_

#include <memory>
#include <string>

#include "cloud/autoscaler.h"
#include "cloud/circuit_breaker.h"
#include "cloud/dynamodb.h"
#include "cloud/fault.h"
#include "cloud/instance.h"
#include "cloud/object_store.h"
#include "cloud/pricing.h"
#include "cloud/queue_service.h"
#include "cloud/simpledb.h"
#include "cloud/usage.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/tracer.h"

namespace webdex::cloud {

/// Durable maintenance bookkeeping that travels with the cloud state
/// (snapshot v3, cloud/snapshot.h): where an interrupted compaction pass
/// left off, and the high-water mark of allocated mutation generations.
/// Both survive a planned crash + restore, so a resumed pass continues
/// instead of restarting and new mutations keep stamping monotonically.
struct MaintenanceState {
  /// Last document URI a compaction pass fully completed; empty = no
  /// pass in flight (fresh start or clean completion).
  std::string compact_cursor;
  /// Highest mutation generation ever allocated (0 = static corpus).
  uint64_t generation_watermark = 0;
};

/// All tunables of the simulated cloud in one place.
struct CloudConfig {
  Pricing pricing = Pricing::AwsSingaporeOct2012();
  uint64_t seed = 42;
  ObjectStoreConfig s3;
  DynamoDbConfig dynamodb;
  SimpleDbConfig simpledb;
  QueueServiceConfig sqs;
  WorkModel work;
  /// Deterministic chaos schedule (docs/FAULTS.md).  The default plan
  /// injects nothing and reproduces fault-free runs bit-identically.
  FaultPlan faults;
  /// Per-resource circuit breakers over the cloud clients.  Enabled by
  /// default: fault-free runs never produce the consecutive failures
  /// that trip one, so they stay bit-identical.
  CircuitBreakerConfig breaker;
  /// Reactive DynamoDB capacity autoscaler (docs/OVERLOAD.md).  Disabled
  /// by default: capacity never moves and no capacity-hours are billed.
  AutoscalerConfig autoscale;
};

/// The simulated cloud region: one S3, one DynamoDB, one SimpleDB, one
/// SQS, a shared usage meter, and a deterministic random stream.  All
/// simulated components of a single experiment share one CloudEnv.
class CloudEnv {
 public:
  explicit CloudEnv(const CloudConfig& config = CloudConfig())
      : config_(config),
        meter_(config.pricing),
        injector_(config.faults, config.seed, &meter_, &metrics_),
        breaker_(config.breaker, &meter_, &metrics_, &tracer_),
        s3_(config.s3, &meter_, &injector_, &metrics_),
        dynamodb_(config.dynamodb, &meter_, &injector_, &metrics_),
        simpledb_(config.simpledb, &meter_, &injector_, &metrics_),
        sqs_(config.sqs, &meter_, &injector_, &metrics_),
        autoscaler_(config.autoscale, &dynamodb_, &meter_, &metrics_,
                    &tracer_),
        rng_(config.seed) {
    if (autoscaler_.active()) dynamodb_.set_autoscaler(&autoscaler_);
  }

  CloudEnv(const CloudEnv&) = delete;
  CloudEnv& operator=(const CloudEnv&) = delete;

  const CloudConfig& config() const { return config_; }
  UsageMeter& meter() { return meter_; }
  ObjectStore& s3() { return s3_; }
  DynamoDb& dynamodb() { return dynamodb_; }
  SimpleDb& simpledb() { return simpledb_; }
  QueueService& sqs() { return sqs_; }
  Rng& rng() { return rng_; }
  FaultInjector& fault_injector() { return injector_; }
  CircuitBreaker& breaker() { return breaker_; }
  Autoscaler& autoscaler() { return autoscaler_; }
  common::MetricRegistry& metrics() { return metrics_; }
  common::Tracer& tracer() { return tracer_; }
  MaintenanceState& maintenance() { return maintenance_; }
  const MaintenanceState& maintenance() const { return maintenance_; }

  /// Mirrors every Usage field into a `usage.<field>` gauge so readers
  /// that only speak the registry (webdex stats, bench rows, Prometheus
  /// scrapes) see the same numbers the billing meter holds.  Usage stays
  /// the source of truth; call this before reading the gauges.
  void PublishUsageMetrics() {
    meter_.usage().ForEachField([this](const char* name, auto value) {
      metrics_.GetGauge(std::string("usage.") + name)
          ->Set(static_cast<double>(value));
    });
  }

 private:
  CloudConfig config_;
  UsageMeter meter_;
  /// Declared before the services so their ctors may resolve metric
  /// handles; same single-event-loop-thread contract as `meter_`.
  common::MetricRegistry metrics_;
  common::Tracer tracer_;
  FaultInjector injector_;
  CircuitBreaker breaker_;
  ObjectStore s3_;
  DynamoDb dynamodb_;
  SimpleDb simpledb_;
  QueueService sqs_;
  /// After dynamodb_: re-provisions its limiters and observes its
  /// consumption (set_autoscaler back-pointer wired in the ctor body).
  Autoscaler autoscaler_;
  Rng rng_;
  MaintenanceState maintenance_;
};

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_CLOUD_ENV_H_
