#ifndef WEBDEX_CLOUD_CLOUD_ENV_H_
#define WEBDEX_CLOUD_CLOUD_ENV_H_

#include <memory>
#include <string>

#include "cloud/autoscaler.h"
#include "cloud/circuit_breaker.h"
#include "cloud/deployment.h"
#include "cloud/dynamodb.h"
#include "cloud/fault.h"
#include "cloud/instance.h"
#include "cloud/object_store.h"
#include "cloud/pricing.h"
#include "cloud/queue_service.h"
#include "cloud/simpledb.h"
#include "cloud/usage.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/tracer.h"

namespace webdex::cloud {

/// Durable maintenance bookkeeping that travels with the cloud state
/// (snapshot v3, cloud/snapshot.h): where an interrupted compaction pass
/// left off, and the high-water mark of allocated mutation generations.
/// Both survive a planned crash + restore, so a resumed pass continues
/// instead of restarting and new mutations keep stamping monotonically.
struct MaintenanceState {
  /// Last document URI a compaction pass fully completed; empty = no
  /// pass in flight (fresh start or clean completion).
  std::string compact_cursor;
  /// Highest mutation generation ever allocated (0 = static corpus).
  uint64_t generation_watermark = 0;
};

/// All tunables of the simulated cloud in one place.
struct CloudConfig {
  Pricing pricing = Pricing::AwsSingaporeOct2012();
  uint64_t seed = 42;
  ObjectStoreConfig s3;
  DynamoDbConfig dynamodb;
  SimpleDbConfig simpledb;
  QueueServiceConfig sqs;
  WorkModel work;
  /// Deterministic chaos schedule (docs/FAULTS.md).  The default plan
  /// injects nothing and reproduces fault-free runs bit-identically.
  FaultPlan faults;
  /// Per-resource circuit breakers over the cloud clients.  Enabled by
  /// default: fault-free runs never produce the consecutive failures
  /// that trip one, so they stay bit-identical.
  CircuitBreakerConfig breaker;
  /// Reactive DynamoDB capacity autoscaler (docs/OVERLOAD.md).  Disabled
  /// by default: capacity never moves and no capacity-hours are billed.
  AutoscalerConfig autoscale;
  /// Deployment shape: capacity mode, shard count, read replicas
  /// (docs/ARCHITECTURES.md).  The default spec is the paper's layout and
  /// reproduces existing runs bit-identically.
  ArchitectureSpec arch;
};

/// The simulated cloud region: one S3, one DynamoDB, one SimpleDB, one
/// SQS, a shared usage meter, and a deterministic random stream.  All
/// simulated components of a single experiment share one CloudEnv.
class CloudEnv {
 public:
  explicit CloudEnv(const CloudConfig& config = CloudConfig())
      : config_(config),
        deployment_(config.arch),
        meter_(config.pricing),
        injector_(config.faults, config.seed, &meter_, &metrics_),
        breaker_(config.breaker, &meter_, &metrics_, &tracer_),
        s3_(config.s3, &meter_, &injector_, &metrics_),
        dynamodb_(EffectiveDynamoConfig(config), &meter_, &injector_,
                  &metrics_),
        simpledb_(config.simpledb, &meter_, &injector_, &metrics_),
        sqs_(config.sqs, &meter_, &injector_, &metrics_),
        autoscaler_(EffectiveAutoscale(config), &dynamodb_, &meter_,
                    &metrics_, &tracer_),
        rng_(config.seed) {
    if (autoscaler_.active()) dynamodb_.set_autoscaler(&autoscaler_);
  }

  /// The per-table DynamoDB capacity implied by the deployment shape: a
  /// sharded deployment provisions each logical table's rates on every
  /// shard (so the pool scales with the shard count), replicas multiply
  /// the read pool, and on-demand mode swaps provisioned rental for
  /// per-request billing behind a burst ceiling that starts at twice the
  /// configured baseline.  The default spec returns `config.dynamodb`
  /// unchanged.
  static DynamoDbConfig EffectiveDynamoConfig(const CloudConfig& config) {
    DynamoDbConfig ddb = config.dynamodb;
    const ArchitectureSpec& arch = config.arch;
    const int shards = arch.shards < 1 ? 1 : arch.shards;
    const int replicas = arch.replicas < 0 ? 0 : arch.replicas;
    if (ddb.write_units_per_second > 0) {
      ddb.write_units_per_second *= shards;
    }
    if (ddb.read_units_per_second > 0) {
      ddb.read_units_per_second *= shards * (1 + replicas);
    }
    if (arch.capacity == CapacityMode::kOnDemand) {
      ddb.on_demand = true;
      if (ddb.write_units_per_second > 0) ddb.write_units_per_second *= 2;
      if (ddb.read_units_per_second > 0) ddb.read_units_per_second *= 2;
    }
    return ddb;
  }

  /// On-demand capacity has no provisioned rates to move, so the
  /// autoscaler is force-disabled under it (the burst ceiling plays its
  /// role); otherwise the configured policy passes through.
  static AutoscalerConfig EffectiveAutoscale(const CloudConfig& config) {
    AutoscalerConfig autoscale = config.autoscale;
    if (config.arch.capacity == CapacityMode::kOnDemand) {
      autoscale.enabled = false;
      autoscale.bill_capacity = false;
    }
    return autoscale;
  }

  CloudEnv(const CloudEnv&) = delete;
  CloudEnv& operator=(const CloudEnv&) = delete;

  const CloudConfig& config() const { return config_; }
  Deployment& deployment() { return deployment_; }
  const Deployment& deployment() const { return deployment_; }
  UsageMeter& meter() { return meter_; }
  ObjectStore& s3() { return s3_; }
  DynamoDb& dynamodb() { return dynamodb_; }
  SimpleDb& simpledb() { return simpledb_; }
  QueueService& sqs() { return sqs_; }
  Rng& rng() { return rng_; }
  FaultInjector& fault_injector() { return injector_; }
  CircuitBreaker& breaker() { return breaker_; }
  Autoscaler& autoscaler() { return autoscaler_; }
  common::MetricRegistry& metrics() { return metrics_; }
  common::Tracer& tracer() { return tracer_; }
  MaintenanceState& maintenance() { return maintenance_; }
  const MaintenanceState& maintenance() const { return maintenance_; }

  /// Mirrors every Usage field into a `usage.<field>` gauge so readers
  /// that only speak the registry (webdex stats, bench rows, Prometheus
  /// scrapes) see the same numbers the billing meter holds.  Usage stays
  /// the source of truth; call this before reading the gauges.
  void PublishUsageMetrics() {
    meter_.usage().ForEachField([this](const char* name, auto value) {
      metrics_.GetGauge(std::string("usage.") + name)
          ->Set(static_cast<double>(value));
    });
    const ArchitectureSpec& arch = deployment_.spec();
    metrics_.GetGauge("deploy.shards")->Set(arch.shards);
    metrics_.GetGauge("deploy.replicas")->Set(arch.replicas);
    metrics_.GetGauge("deploy.ondemand")
        ->Set(arch.capacity == CapacityMode::kOnDemand ? 1 : 0);
    metrics_.GetGauge("deploy.replication_lag_us")
        ->Set(static_cast<double>(arch.replication_lag));
  }

 private:
  CloudConfig config_;
  /// Shard routing, physical naming and replication watermarks shared by
  /// the decorator stores, the planner and snapshot v5.
  Deployment deployment_;
  UsageMeter meter_;
  /// Declared before the services so their ctors may resolve metric
  /// handles; same single-event-loop-thread contract as `meter_`.
  common::MetricRegistry metrics_;
  common::Tracer tracer_;
  FaultInjector injector_;
  CircuitBreaker breaker_;
  ObjectStore s3_;
  DynamoDb dynamodb_;
  SimpleDb simpledb_;
  QueueService sqs_;
  /// After dynamodb_: re-provisions its limiters and observes its
  /// consumption (set_autoscaler back-pointer wired in the ctor body).
  Autoscaler autoscaler_;
  Rng rng_;
  MaintenanceState maintenance_;
};

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_CLOUD_ENV_H_
