#include "cloud/dynamodb.h"

#include "cloud/autoscaler.h"
#include "cloud/fault.h"
#include "common/strings.h"

namespace webdex::cloud {

DynamoDb::DynamoDb(const DynamoDbConfig& config, UsageMeter* meter,
                   FaultInjector* injector, common::MetricRegistry* metrics)
    : config_(config),
      meter_(meter),
      injector_(injector),
      batch_put_metrics_(OpMetrics::For(metrics, "service.dynamodb.batch_put")),
      get_metrics_(OpMetrics::For(metrics, "service.dynamodb.get")),
      batch_get_metrics_(OpMetrics::For(metrics, "service.dynamodb.batch_get")),
      scan_metrics_(OpMetrics::For(metrics, "service.dynamodb.scan")),
      delete_metrics_(OpMetrics::For(metrics, "service.dynamodb.delete_item")),
      create_table_metrics_(
          OpMetrics::For(metrics, "service.dynamodb.create_table")),
      write_units_metric_(
          metrics == nullptr
              ? nullptr
              : metrics->GetGauge("service.dynamodb.write_units.total")),
      read_units_metric_(
          metrics == nullptr
              ? nullptr
              : metrics->GetGauge("service.dynamodb.read_units.total")),
      throttled_metric_(
          metrics == nullptr
              ? nullptr
              : metrics->GetCounter("service.dynamodb.throttled.count")),
      write_limiter_(config.write_units_per_second),
      read_limiter_(config.read_units_per_second) {
  if (config_.on_demand) {
    ondemand_.write_ceiling = config_.write_units_per_second;
    ondemand_.read_ceiling = config_.read_units_per_second;
  }
}

Status DynamoDb::CreateTable(SimAgent& agent, const std::string& table) {
  const Micros op_start = agent.now();
  if (injector_ != nullptr) {
    // A faulted create bills its API round trip like every other faulted
    // control call; a successful create is free and instantaneous
    // (AWS control plane), which keeps fault-free runs bit-identical.
    Status fault = injector_->MaybeFail(ServiceId::kDynamoDb,
                                        "ddb.createtable:" + table,
                                        agent.now());
    if (!fault.ok()) {
      meter_->mutable_usage().ddb_put_requests += 1;
      agent.Advance(config_.request_latency);
      create_table_metrics_.Record(agent, op_start, /*error=*/true);
      return fault;
    }
  }
  auto [it, inserted] = tables_.try_emplace(table);
  (void)it;
  if (!inserted) {
    create_table_metrics_.Record(agent, op_start, /*error=*/true);
    return Status::AlreadyExists("table exists: " + table);
  }
  create_table_metrics_.Record(agent, op_start, /*error=*/false);
  return Status::OK();
}

Status DynamoDb::RestoreTable(const std::string& table) {
  auto [it, inserted] = tables_.try_emplace(table);
  (void)it;
  if (!inserted) return Status::AlreadyExists("table exists: " + table);
  return Status::OK();
}

bool DynamoDb::HasTable(const std::string& table) const {
  return tables_.count(table) > 0;
}

double DynamoDb::WriteUnits(const Item& item) {
  const double size = static_cast<double>(item.SizeBytes());
  return (size < kMinWriteBytes ? kMinWriteBytes : size) / 1024.0;
}

double DynamoDb::ReadUnits(uint64_t item_bytes) {
  const double size = static_cast<double>(item_bytes);
  return (size < kMinReadBytes ? kMinReadBytes : size) / 4096.0;
}

void DynamoDb::SetProvisionedCapacity(double write_units_per_second,
                                      double read_units_per_second,
                                      Micros at) {
  config_.write_units_per_second = write_units_per_second;
  config_.read_units_per_second = read_units_per_second;
  write_limiter_.SetRate(write_units_per_second, at);
  read_limiter_.SetRate(read_units_per_second, at);
}

void DynamoDb::OnDemandTick(Micros now) {
  if (!config_.on_demand) return;
  constexpr Micros kWindow = kMicrosPerSecond;
  while (now >= ondemand_.window_start + kWindow) {
    const Micros boundary = ondemand_.window_start + kWindow;
    // One window's consumption over one second IS the sustained rate.
    if (ondemand_.window_write_units > ondemand_.peak_write) {
      ondemand_.peak_write = ondemand_.window_write_units;
    }
    if (ondemand_.window_read_units > ondemand_.peak_read) {
      ondemand_.peak_read = ondemand_.window_read_units;
    }
    const double write_target = 2.0 * ondemand_.peak_write;
    const double read_target = 2.0 * ondemand_.peak_read;
    if (write_target > ondemand_.write_ceiling) {
      ondemand_.write_ceiling = write_target;
      config_.write_units_per_second = write_target;
      write_limiter_.SetRate(write_target, boundary);
    }
    if (read_target > ondemand_.read_ceiling) {
      ondemand_.read_ceiling = read_target;
      config_.read_units_per_second = read_target;
      read_limiter_.SetRate(read_target, boundary);
    }
    ondemand_.window_write_units = 0;
    ondemand_.window_read_units = 0;
    ondemand_.window_start = boundary;
    // After one settled window the remaining gap is all-idle; jump to
    // the last full boundary instead of iterating second by second.
    if (now >= ondemand_.window_start + 2 * kWindow) {
      ondemand_.window_start =
          now - ((now - ondemand_.window_start) % kWindow) - kWindow;
    }
  }
}

void DynamoDb::MeterWriteUnits(double units) {
  if (config_.on_demand) {
    meter_->mutable_usage().ddb_ondemand_write_units += units;
    meter_->mutable_usage().ondemand_requests += 1;
    ondemand_.window_write_units += units;
  } else {
    meter_->mutable_usage().ddb_write_units += units;
  }
  if (write_units_metric_ != nullptr) write_units_metric_->Add(units);
  if (autoscaler_ != nullptr) autoscaler_->ObserveWrite(units);
}

void DynamoDb::MeterReadUnits(double units) {
  if (config_.on_demand) {
    meter_->mutable_usage().ddb_ondemand_read_units += units;
    meter_->mutable_usage().ondemand_requests += 1;
    ondemand_.window_read_units += units;
  } else {
    meter_->mutable_usage().ddb_read_units += units;
  }
  if (read_units_metric_ != nullptr) read_units_metric_->Add(units);
  if (autoscaler_ != nullptr) autoscaler_->ObserveRead(units);
}

void DynamoDb::RestoreOnDemand(const OnDemandState& state) {
  ondemand_ = state;
  if (!config_.on_demand) return;
  if (state.write_ceiling > 0) {
    config_.write_units_per_second = state.write_ceiling;
    write_limiter_.SetRate(state.write_ceiling, state.window_start);
  }
  if (state.read_ceiling > 0) {
    config_.read_units_per_second = state.read_ceiling;
    read_limiter_.SetRate(state.read_ceiling, state.window_start);
  }
}

Status DynamoDb::MaybeThrottle(SimAgent& agent, const RateLimiter& limiter,
                               bool write, Micros op_start,
                               const OpMetrics& op) {
  // The control loop advances on every billed call, throttled or not, so
  // capacity can change at a window boundary *before* this request is
  // judged against the (possibly new) backlog.
  if (autoscaler_ != nullptr) autoscaler_->Tick(agent.now());
  OnDemandTick(agent.now());
  if (config_.max_backlog_micros <= 0) return Status::OK();
  const Micros backlog = limiter.BacklogAt(agent.now());
  if (backlog <= config_.max_backlog_micros) return Status::OK();
  // Like an injected fault, a throttle bills the API request and its
  // round trip but consumes no capacity — AWS rejects before doing the
  // work.  The hint names the virtual time at which the backlog, absent
  // new arrivals, drains back to the bound: retrying exactly then gets
  // admitted, retrying earlier is a guaranteed re-throttle.
  const Micros hint = backlog - config_.max_backlog_micros;
  if (write) {
    meter_->mutable_usage().ddb_put_requests += 1;
  } else {
    meter_->mutable_usage().ddb_get_requests += 1;
  }
  meter_->mutable_usage().throttled_requests += 1;
  if (throttled_metric_ != nullptr) throttled_metric_->Add(1);
  if (autoscaler_ != nullptr) autoscaler_->ObserveThrottle(write);
  agent.Advance(config_.request_latency);
  op.Record(agent, op_start, /*error=*/true);
  return Status::ResourceExhausted(
      StrFormat("provisioned throughput exceeded; retry after %lld us",
                static_cast<long long>(hint)),
      hint);
}

Status DynamoDb::ValidateItem(const Item& item) const {
  if (item.hash_key.empty()) {
    return Status::InvalidArgument("empty hash key");
  }
  if (item.range_key.empty()) {
    return Status::InvalidArgument("empty range key");
  }
  if (item.hash_key.size() > 2048) {
    return Status::InvalidArgument("hash key exceeds 2KB");
  }
  if (item.range_key.size() > 1024) {
    return Status::InvalidArgument("range key exceeds 1KB");
  }
  if (item.SizeBytes() > MaxItemBytes()) {
    return Status::InvalidArgument(
        StrFormat("item exceeds 64KB (%llu bytes) for hash key %s",
                  static_cast<unsigned long long>(item.SizeBytes()),
                  item.hash_key.c_str()));
  }
  return Status::OK();
}

Status DynamoDb::BatchPut(SimAgent& agent, const std::string& table,
                          const std::vector<Item>& items,
                          std::vector<Item>* unprocessed) {
  if (unprocessed != nullptr) unprocessed->clear();
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no such table: " + table);
  for (const auto& item : items) {
    WEBDEX_RETURN_IF_ERROR(ValidateItem(item));
  }
  Table& t = it->second;
  const int batch_limit = BatchPutLimit();
  size_t index = 0;
  while (index < items.size()) {
    const size_t batch_end =
        std::min(items.size(), index + static_cast<size_t>(batch_limit));
    const Micros page_start = agent.now();
    if (injector_ != nullptr) {
      // A page-level transient error bills the API request and its round
      // trip but consumes no write capacity (AWS throttles before
      // writing); everything not yet stored is reported back.
      Status fault = injector_->MaybeFail(ServiceId::kDynamoDb,
                                          "ddb.batchput:" + table, agent.now());
      if (!fault.ok()) {
        meter_->mutable_usage().ddb_put_requests += 1;
        agent.Advance(config_.request_latency);
        batch_put_metrics_.Record(agent, page_start, /*error=*/true);
        if (unprocessed != nullptr) {
          unprocessed->insert(unprocessed->end(), items.begin() + index,
                              items.end());
        }
        return fault;
      }
    }
    Status throttled = MaybeThrottle(agent, write_limiter_, /*write=*/true,
                                     page_start, batch_put_metrics_);
    if (!throttled.ok()) {
      if (unprocessed != nullptr) {
        unprocessed->insert(unprocessed->end(), items.begin() + index,
                            items.end());
      }
      return throttled;
    }
    size_t commit_end = batch_end;
    if (injector_ != nullptr && unprocessed != nullptr) {
      // Partial batch failure: the page "succeeds" but a trailing subset
      // comes back as UnprocessedItems the caller must re-batch.  Only
      // injected when the caller can observe it.
      const size_t bounced =
          injector_->UnprocessedCount(ServiceId::kDynamoDb,
                                      "ddb.unprocessed:" + table,
                                      batch_end - index);
      commit_end = batch_end - bounced;
    }
    double batch_units = 0;
    for (size_t i = index; i < commit_end; ++i) {
      const Item& item = items[i];
      auto& hash_items = t.items[item.hash_key];
      auto slot = hash_items.find(item.range_key);
      if (slot != hash_items.end()) {
        // Replacement semantics: the new item completely replaces the old
        // one (Section 6), so subtract the old incarnation's size.
        const Item old{item.hash_key, item.range_key, slot->second};
        t.stored_bytes -= old.SizeBytes();
        t.item_count -= 1;
        slot->second = item.attrs;
      } else {
        hash_items.emplace(item.range_key, item.attrs);
      }
      t.stored_bytes += item.SizeBytes();
      t.item_count += 1;
      batch_units += WriteUnits(item);
      meter_->mutable_usage().ddb_items_written += 1;
    }
    meter_->mutable_usage().ddb_put_requests += 1;
    MeterWriteUnits(batch_units);
    agent.AdvanceTo(write_limiter_.Acquire(agent.now(), batch_units));
    agent.Advance(config_.request_latency);
    batch_put_metrics_.Record(agent, page_start, /*error=*/false);
    if (commit_end < batch_end) {
      unprocessed->insert(unprocessed->end(), items.begin() + commit_end,
                          items.begin() + batch_end);
    }
    index = batch_end;
  }
  return Status::OK();
}

Result<std::vector<Item>> DynamoDb::Get(SimAgent& agent,
                                        const std::string& table,
                                        const std::string& hash_key) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no such table: " + table);
  const Micros op_start = agent.now();
  if (injector_ != nullptr) {
    Status fault =
        injector_->MaybeFail(ServiceId::kDynamoDb, "ddb.get:" + table,
                             agent.now());
    if (!fault.ok()) {
      meter_->mutable_usage().ddb_get_requests += 1;
      agent.Advance(config_.request_latency);
      get_metrics_.Record(agent, op_start, /*error=*/true);
      return fault;
    }
  }
  WEBDEX_RETURN_IF_ERROR(MaybeThrottle(agent, read_limiter_, /*write=*/false,
                                       op_start, get_metrics_));
  std::vector<Item> out;
  auto hit = it->second.items.find(hash_key);
  if (hit != it->second.items.end()) {
    for (const auto& [range_key, attrs] : hit->second) {
      out.push_back(Item{hash_key, range_key, attrs});
    }
  }
  double units = 0;
  for (const auto& item : out) {
    units += ReadUnits(item.SizeBytes());
  }
  if (units == 0) units = ReadUnits(0);  // a miss still does a seek
  meter_->mutable_usage().ddb_get_requests += 1;
  MeterReadUnits(units);
  agent.AdvanceTo(read_limiter_.Acquire(agent.now(), units));
  agent.Advance(config_.request_latency);
  get_metrics_.Record(agent, op_start, /*error=*/false);
  return out;
}

Result<std::vector<Item>> DynamoDb::BatchGet(
    SimAgent& agent, const std::string& table,
    const std::vector<std::string>& hash_keys) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no such table: " + table);
  std::vector<Item> out;
  const int batch_limit = BatchGetLimit();
  size_t index = 0;
  while (index < hash_keys.size()) {
    const size_t batch_end = std::min(
        hash_keys.size(), index + static_cast<size_t>(batch_limit));
    const Micros page_start = agent.now();
    if (injector_ != nullptr) {
      Status fault = injector_->MaybeFail(ServiceId::kDynamoDb,
                                          "ddb.batchget:" + table, agent.now());
      if (!fault.ok()) {
        meter_->mutable_usage().ddb_get_requests += 1;
        agent.Advance(config_.request_latency);
        batch_get_metrics_.Record(agent, page_start, /*error=*/true);
        return fault;
      }
    }
    WEBDEX_RETURN_IF_ERROR(MaybeThrottle(agent, read_limiter_,
                                         /*write=*/false, page_start,
                                         batch_get_metrics_));
    double units = 0;
    for (size_t i = index; i < batch_end; ++i) {
      auto hit = it->second.items.find(hash_keys[i]);
      if (hit == it->second.items.end()) continue;
      for (const auto& [range_key, attrs] : hit->second) {
        Item item{hash_keys[i], range_key, attrs};
        units += ReadUnits(item.SizeBytes());
        out.push_back(std::move(item));
      }
    }
    if (units == 0) units = ReadUnits(0);
    meter_->mutable_usage().ddb_get_requests += 1;
    MeterReadUnits(units);
    agent.AdvanceTo(read_limiter_.Acquire(agent.now(), units));
    agent.Advance(config_.request_latency);
    batch_get_metrics_.Record(agent, page_start, /*error=*/false);
    index = batch_end;
  }
  return out;
}

Result<std::vector<Item>> DynamoDb::Scan(SimAgent& agent,
                                        const std::string& table) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no such table: " + table);
  std::vector<Item> out;
  for (const auto& [hash_key, ranges] : it->second.items) {
    for (const auto& [range_key, attrs] : ranges) {
      out.push_back(Item{hash_key, range_key, attrs});
    }
  }
  // Page through at the 1 MB scan limit; every page is a billed request
  // that consumes read capacity for the bytes it returns.
  constexpr uint64_t kScanPageBytes = 1024 * 1024;
  size_t index = 0;
  do {
    const Micros page_start = agent.now();
    if (injector_ != nullptr) {
      Status fault = injector_->MaybeFail(ServiceId::kDynamoDb,
                                          "ddb.scan:" + table, agent.now());
      if (!fault.ok()) {
        meter_->mutable_usage().ddb_get_requests += 1;
        agent.Advance(config_.request_latency);
        scan_metrics_.Record(agent, page_start, /*error=*/true);
        return fault;
      }
    }
    WEBDEX_RETURN_IF_ERROR(MaybeThrottle(agent, read_limiter_,
                                         /*write=*/false, page_start,
                                         scan_metrics_));
    uint64_t page_bytes = 0;
    double units = 0;
    while (index < out.size() && page_bytes < kScanPageBytes) {
      const uint64_t bytes = out[index].SizeBytes();
      page_bytes += bytes;
      units += ReadUnits(bytes);
      ++index;
    }
    if (units == 0) units = ReadUnits(0);  // an empty table still seeks
    meter_->mutable_usage().ddb_get_requests += 1;
    MeterReadUnits(units);
    agent.AdvanceTo(read_limiter_.Acquire(agent.now(), units));
    agent.Advance(config_.request_latency);
    scan_metrics_.Record(agent, page_start, /*error=*/false);
  } while (index < out.size());
  return out;
}

Status DynamoDb::DeleteItem(SimAgent& agent, const std::string& table,
                            const std::string& hash_key,
                            const std::string& range_key) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no such table: " + table);
  const Micros op_start = agent.now();
  if (injector_ != nullptr) {
    Status fault = injector_->MaybeFail(ServiceId::kDynamoDb,
                                        "ddb.delete:" + table, agent.now());
    if (!fault.ok()) {
      meter_->mutable_usage().ddb_put_requests += 1;
      agent.Advance(config_.request_latency);
      delete_metrics_.Record(agent, op_start, /*error=*/true);
      return fault;
    }
  }
  WEBDEX_RETURN_IF_ERROR(MaybeThrottle(agent, write_limiter_, /*write=*/true,
                                       op_start, delete_metrics_));
  Table& t = it->second;
  // Deletes consume write capacity sized by the deleted item (AWS);
  // deleting an absent key still pays the minimum.
  double units = kMinWriteBytes / 1024.0;
  auto hit = t.items.find(hash_key);
  if (hit != t.items.end()) {
    auto slot = hit->second.find(range_key);
    if (slot != hit->second.end()) {
      const Item old{hash_key, range_key, slot->second};
      units = WriteUnits(old);
      t.stored_bytes -= old.SizeBytes();
      t.item_count -= 1;
      hit->second.erase(slot);
      if (hit->second.empty()) t.items.erase(hit);
    }
  }
  meter_->mutable_usage().ddb_put_requests += 1;
  MeterWriteUnits(units);
  agent.AdvanceTo(write_limiter_.Acquire(agent.now(), units));
  agent.Advance(config_.request_latency);
  delete_metrics_.Record(agent, op_start, /*error=*/false);
  return Status::OK();
}

uint64_t DynamoDb::StoredBytes(const std::string& table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.stored_bytes;
}

uint64_t DynamoDb::OverheadBytes(const std::string& table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.item_count * kItemOverheadBytes;
}

uint64_t DynamoDb::ItemCount(const std::string& table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.item_count;
}

void DynamoDb::ForEachItem(
    const std::function<void(const std::string&, const Item&)>& fn) const {
  for (const auto& [name, table] : tables_) {
    for (const auto& [hash_key, ranges] : table.items) {
      for (const auto& [range_key, attrs] : ranges) {
        fn(name, Item{hash_key, range_key, attrs});
      }
    }
  }
}

void DynamoDb::RestoreItem(const std::string& table, const Item& item) {
  Table& t = tables_[table];
  t.items[item.hash_key][item.range_key] = item.attrs;
  t.stored_bytes += item.SizeBytes();
  t.item_count += 1;
}

std::vector<std::string> DynamoDb::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    (void)table;
    names.push_back(name);
  }
  return names;
}

}  // namespace webdex::cloud
