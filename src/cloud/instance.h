#ifndef WEBDEX_CLOUD_INSTANCE_H_
#define WEBDEX_CLOUD_INSTANCE_H_

#include <string>

#include "cloud/pricing.h"
#include "cloud/sim.h"

namespace webdex::cloud {

/// CPU cost model: ECU-microseconds per unit of work, where one EC2
/// Compute Unit (ECU) is "the CPU capacity of a 1.0-1.2 GHz 2007 Xeon
/// processor" (paper Section 8.1).  Constants are calibrated to
/// throughputs plausible for Java XML processing on such a core; they set
/// the absolute scale of the reproduced times, while all *relative*
/// behaviour (which strategy wins, crossovers) comes from real operation
/// counts measured while executing the actual algorithms on real data.
struct WorkModel {
  /// XML parsing + structural-ID assignment: ~1 MB/s per ECU core.
  /// Calibrated against the paper's Table 4: its 8 large instances
  /// extracted index entries from 40 GB in ~24 min of per-machine time,
  /// i.e. ~3.5 MB/s per 2-core/4-ECU instance (Java DOM processing on
  /// 2007-class cores).
  double parse_per_byte = 1.0;
  /// Index entry extraction bookkeeping, per entry emitted.
  double extract_per_entry = 5.0;
  /// Serializing entry payloads (paths, ID blobs), per byte.
  double extract_per_byte = 0.05;
  /// Marshalling items into key-value store API calls, per byte.
  double kv_encode_per_byte = 0.02;
  /// Merging/intersecting URI sets during look-up, per element touched.
  double lookup_merge_per_item = 0.5;
  /// Matching one stored data path against a query path.
  double path_match_per_path = 0.5;
  /// Holistic twig join, per structural-ID advance/comparison.
  double twig_per_id = 0.1;
  /// Full tree-pattern evaluation on a fetched document, per byte
  /// (~0.5 MB/s per ECU core; pattern matching is slower than parsing).
  double eval_per_byte = 2.0;
  /// Serializing query results, per byte.
  double result_per_byte = 0.02;
};

/// Hardware description of an instance type (paper Section 8.1).
struct InstanceSpec {
  int cores;
  double ecu_per_core;
  double ram_gb;
};

InstanceSpec SpecFor(InstanceType type);

/// One simulated EC2 virtual machine.  Carries its own virtual clock
/// (SimAgent); CPU work is charged through the work model, with
/// multi-core speedup for work the paper's implementation multi-threads
/// (Section 3: "intra-machine parallelism is supported by multi-threading
/// our code").
class Instance : public SimAgent {
 public:
  Instance(int id, InstanceType type, const WorkModel* work);

  int id() const { return id_; }
  InstanceType type() const { return type_; }
  const InstanceSpec& spec() const { return spec_; }
  const WorkModel& work() const { return *work_; }

  /// Number of parallel S3 connections / worker threads this instance
  /// runs: one per core.
  int parallel_streams() const { return spec_.cores; }

  /// Charges single-threaded CPU work of `ecu_micros` (time the work
  /// would take on one 1-ECU core): clock advances by
  /// ecu_micros / ecu_per_core.
  void ChargeSerialWork(double ecu_micros);

  /// Charges embarrassingly parallel CPU work: clock advances by
  /// ecu_micros / (ecu_per_core * cores).
  void ChargeParallelWork(double ecu_micros);

  /// Cumulative virtual time this instance spent processing tasks
  /// (service waits included — the VM is rented either way).
  Micros busy_micros() const { return busy_micros_; }
  void AddBusy(Micros d) { busy_micros_ += d; }
  void ResetBusy() { busy_micros_ = 0; }

 private:
  int id_;
  InstanceType type_;
  InstanceSpec spec_;
  const WorkModel* work_;
  Micros busy_micros_ = 0;
};

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_INSTANCE_H_
