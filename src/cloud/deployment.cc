#include "cloud/deployment.h"

#include <algorithm>

#include "common/strings.h"

namespace webdex::cloud {

const char* CapacityModeName(CapacityMode mode) {
  switch (mode) {
    case CapacityMode::kProvisioned:
      return "provisioned";
    case CapacityMode::kOnDemand:
      return "ondemand";
  }
  return "unknown";
}

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string ArchitectureSpec::Name() const {
  return StrFormat("%s-s%d-r%d",
                   capacity == CapacityMode::kOnDemand ? "ondemand" : "prov",
                   shards, replicas);
}

Status ArchitectureSpec::Validate() const {
  if (shards < 1 || shards > 64) {
    return Status::InvalidArgument(
        StrFormat("shards must be in [1, 64], got %d", shards));
  }
  if (replicas < 0 || replicas > 8) {
    return Status::InvalidArgument(
        StrFormat("replicas must be in [0, 8], got %d", replicas));
  }
  if (replication_lag < 0) {
    return Status::InvalidArgument("replication_lag must be >= 0");
  }
  return Status::OK();
}

Deployment::Deployment(const ArchitectureSpec& spec) : spec_(spec) {
  // The env cannot surface a Status from its constructor, so an
  // out-of-range spec is clamped here; the CLI and benches validate
  // before construction and report the error instead.
  spec_.shards = std::max(1, std::min(64, spec_.shards));
  spec_.replicas = std::max(0, std::min(8, spec_.replicas));
  spec_.replication_lag = std::max<Micros>(0, spec_.replication_lag);
}

int Deployment::ShardFor(const std::string& hash_key) const {
  if (spec_.shards <= 1) return 0;
  return static_cast<int>(Fnv1a64(hash_key) %
                          static_cast<uint64_t>(spec_.shards));
}

std::string Deployment::PhysicalName(const std::string& logical,
                                     int shard) const {
  if (spec_.shards <= 1) return logical;
  return StrFormat("%s.s%d", logical.c_str(), shard);
}

std::string Deployment::LogicalName(const std::string& physical) const {
  if (spec_.shards <= 1) return physical;
  const size_t dot = physical.rfind(".s");
  if (dot == std::string::npos) return physical;
  // Only strip a well-formed ".s<digits>" suffix within the shard range.
  const std::string suffix = physical.substr(dot + 2);
  if (suffix.empty() || suffix.size() > 2) return physical;
  int shard = 0;
  for (char c : suffix) {
    if (c < '0' || c > '9') return physical;
    shard = shard * 10 + (c - '0');
  }
  if (shard >= spec_.shards) return physical;
  return physical.substr(0, dot);
}

std::vector<std::string> Deployment::PhysicalTables(
    const std::string& logical) const {
  std::vector<std::string> tables;
  tables.reserve(static_cast<size_t>(spec_.shards));
  for (int shard = 0; shard < spec_.shards; ++shard) {
    tables.push_back(PhysicalName(logical, shard));
  }
  return tables;
}

int Deployment::ReplicaFor(const std::string& table,
                           const std::string& first_key) const {
  if (spec_.replicas <= 0) return 0;
  return static_cast<int>(Fnv1a64(table + "\x1f" + first_key) %
                          static_cast<uint64_t>(spec_.replicas));
}

Micros Deployment::Watermark(const std::string& physical_table) const {
  auto it = watermarks_.find(physical_table);
  return it == watermarks_.end() ? 0 : it->second;
}

void Deployment::RecordWrite(const std::string& physical_table, Micros at) {
  Micros& mark = watermarks_[physical_table];
  if (at > mark) mark = at;
}

bool Deployment::ReplicaReadable(const std::string& physical_table,
                                 Micros now) const {
  if (spec_.replicas <= 0) return false;
  const Micros mark = Watermark(physical_table);
  return mark == 0 || now >= mark + spec_.replication_lag;
}

}  // namespace webdex::cloud
