#ifndef WEBDEX_CLOUD_SIM_H_
#define WEBDEX_CLOUD_SIM_H_

#include <cstdint>

namespace webdex::cloud {

/// Simulated time, in microseconds of virtual cloud time.
///
/// The whole platform is a discrete-event simulation: nothing reads the
/// wall clock.  Virtual time is what reproduces the paper's response-time
/// and makespan figures; real elapsed time of a benchmark binary is just
/// how long the simulation takes to execute.
using Micros = int64_t;

constexpr Micros kMicrosPerSecond = 1'000'000;
constexpr Micros kMicrosPerHour = 3'600'000'000LL;

/// Converts virtual micros to fractional hours (for $/hour billing).
inline double MicrosToHours(Micros m) {
  return static_cast<double>(m) / static_cast<double>(kMicrosPerHour);
}

/// An entity with its own virtual-time clock: an EC2 instance, or the
/// application front end.  Simulated service calls advance the calling
/// agent's clock by the modeled latency of the call.
class SimAgent {
 public:
  virtual ~SimAgent() = default;

  Micros now() const { return now_; }

  /// Moves the clock forward by `d` (>= 0) micros.
  void Advance(Micros d) {
    if (d > 0) now_ += d;
  }

  /// Moves the clock forward to `t` if `t` is in this agent's future.
  void AdvanceTo(Micros t) {
    if (t > now_) now_ = t;
  }

  /// Resets the clock (used when reusing an agent across experiments).
  void ResetClock(Micros t = 0) { now_ = t; }

 private:
  Micros now_ = 0;
};

/// Shared-capacity model for a cloud service: a fluid server that can
/// process `units_per_second` of work in aggregate across all clients.
///
/// This is what makes DynamoDB's provisioned throughput a *shared*
/// bottleneck across simulated EC2 instances (paper Section 8.2: "many
/// strong instances sending indexing requests in parallel come close to
/// saturating DynamoDB's capacity").
///
/// Model: a request of `units` arriving at `arrival` completes no earlier
/// than (a) its own service time after arrival, and (b) the time by which
/// the server's cumulative committed work fits under the capacity line.
/// The cumulative bound is deliberately *order-insensitive*: the
/// discrete-event scheduler (cluster.h) replays agents task-by-task, so
/// requests reach the limiter out of virtual-time order, and a strict
/// FCFS queue would spuriously serialize one agent's requests behind
/// another agent's idle time.  The fluid bound is exact when the service
/// is saturated (the regime the paper's Figure 10 cares about) and never
/// delays anyone in the unsaturated regime.
class RateLimiter {
 public:
  /// `units_per_second` <= 0 means unlimited capacity.
  explicit RateLimiter(double units_per_second)
      : micros_per_unit_(units_per_second <= 0
                             ? 0.0
                             : kMicrosPerSecond / units_per_second) {}

  /// Reserves `units` of capacity for a request arriving at `arrival`;
  /// returns the virtual time at which the request's service completes.
  ///
  /// Busy-period accounting: committed work accumulates from the period's
  /// `anchor_`; a request arriving after the period has drained starts a
  /// fresh period, and an out-of-order *earlier* arrival extends the
  /// period backwards (conservatively inheriting its committed work).
  Micros Acquire(Micros arrival, double units) {
    if (micros_per_unit_ <= 0.0) return arrival;
    const double service = units * micros_per_unit_;
    if (static_cast<double>(arrival) >
        static_cast<double>(anchor_) + committed_micros_) {
      // Previous period drained before this arrival: idle gap.
      anchor_ = arrival;
      committed_micros_ = 0;
    } else if (arrival < anchor_) {
      anchor_ = arrival;
    }
    committed_micros_ += service;
    const Micros capacity_bound =
        anchor_ + static_cast<Micros>(committed_micros_);
    const Micros service_bound = arrival + static_cast<Micros>(service);
    return service_bound > capacity_bound ? service_bound : capacity_bound;
  }

  /// Virtual time by which all committed work fits under the capacity
  /// line (the saturation frontier).
  Micros next_free() const {
    return anchor_ + static_cast<Micros>(committed_micros_);
  }

  /// Queueing delay a zero-size probe arriving at `arrival` would see:
  /// how far the saturation frontier lies beyond the arrival.  Read-only —
  /// commits nothing — so a server can decide to throttle *before*
  /// reserving capacity (an organic 429 must not consume the throughput
  /// it is protecting).  0 in the unsaturated regime.
  Micros BacklogAt(Micros arrival) const {
    if (micros_per_unit_ <= 0.0) return 0;
    const double frontier =
        static_cast<double>(anchor_) + committed_micros_;
    if (static_cast<double>(arrival) >= frontier) return 0;
    return static_cast<Micros>(frontier - static_cast<double>(arrival));
  }

  /// Changes capacity at virtual time `at` (an autoscaler re-provisioning
  /// the table).  Work already scheduled before `at` keeps its timing; the
  /// backlog beyond `at` is re-timed at the new rate, so a scale-up drains
  /// a queue faster from the change point on — deterministically, since
  /// `at` comes from the (virtual-time) control loop, not the host clock.
  void SetRate(double units_per_second, Micros at) {
    const double new_mpu = units_per_second <= 0
                               ? 0.0
                               : kMicrosPerSecond / units_per_second;
    const double frontier =
        static_cast<double>(anchor_) + committed_micros_;
    if (micros_per_unit_ > 0.0 && new_mpu > 0.0 &&
        frontier > static_cast<double>(at)) {
      const double backlog_units =
          (frontier - static_cast<double>(at)) / micros_per_unit_;
      anchor_ = at;
      committed_micros_ = backlog_units * new_mpu;
    }
    micros_per_unit_ = new_mpu;
  }

  /// Provisioned capacity in units/second; 0 means unlimited.
  double units_per_second() const {
    return micros_per_unit_ <= 0.0 ? 0.0
                                   : kMicrosPerSecond / micros_per_unit_;
  }

  void Reset() {
    anchor_ = 0;
    committed_micros_ = 0;
  }

 private:
  double micros_per_unit_;
  Micros anchor_ = 0;
  double committed_micros_ = 0;
};

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_SIM_H_
