#include "cloud/fault.h"

#include <string>

namespace webdex::cloud {
namespace {

/// SplitMix64 finalizer: decorrelates the plan seed from the cloud seed
/// before Rng::ForKey mixes in the site key.
uint64_t MixSeeds(uint64_t a, uint64_t b) {
  uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* CrashPointName(CrashPoint point) {
  switch (point) {
    case CrashPoint::kBeforeDelete:
      return "before-delete";
    case CrashPoint::kBetweenBatchPutPages:
      return "between-batchput-pages";
    case CrashPoint::kMidCompaction:
      return "mid-compaction";
  }
  return "unknown";
}

const char* ServiceIdName(ServiceId service) {
  switch (service) {
    case ServiceId::kS3:
      return "s3";
    case ServiceId::kDynamoDb:
      return "dynamodb";
    case ServiceId::kSimpleDb:
      return "simpledb";
    case ServiceId::kSqs:
      return "sqs";
  }
  return "unknown";
}

const ServiceFaults& FaultPlan::Faults(ServiceId service) const {
  switch (service) {
    case ServiceId::kS3:
      return s3;
    case ServiceId::kDynamoDb:
      return dynamodb;
    case ServiceId::kSimpleDb:
      return simpledb;
    case ServiceId::kSqs:
      return sqs;
  }
  return s3;
}

FaultInjector::FaultInjector(const FaultPlan& plan, uint64_t base_seed,
                             UsageMeter* meter,
                             common::MetricRegistry* metrics)
    : plan_(plan),
      base_seed_(MixSeeds(base_seed, plan.seed)),
      meter_(meter),
      faults_metric_(metrics == nullptr ? nullptr
                                        : metrics->GetCounter(
                                              "cloud.faults.injected.count")),
      enabled_(plan.Any()) {}

void FaultInjector::CountFault() {
  meter_->mutable_usage().faulted_requests += 1;
  if (faults_metric_ != nullptr) faults_metric_->Add(1);
}

Rng& FaultInjector::StreamFor(std::string_view site) {
  auto it = streams_.find(site);
  if (it == streams_.end()) {
    it = streams_
             .emplace(std::string(site), Rng::ForKey(base_seed_, site))
             .first;
  }
  return it->second;
}

std::vector<FaultInjector::StreamState> FaultInjector::SaveStreams() const {
  std::vector<StreamState> out;
  out.reserve(streams_.size());
  for (const auto& [site, rng] : streams_) {
    out.emplace_back(site, rng.SaveState());
  }
  return out;
}

void FaultInjector::RestoreStreams(const std::vector<StreamState>& streams) {
  for (const auto& [site, state] : streams) {
    StreamFor(site).LoadState(state);
  }
}

Status FaultInjector::MaybeFail(ServiceId service, std::string_view site,
                                Micros now) {
  if (!enabled_) return Status::OK();
  // A sustained outage covering `now` overrides the per-attempt profile.
  for (const auto& outage : plan_.outages) {
    if (outage.service != service || !outage.Active(now)) continue;
    const bool fails = outage.error_probability >= 1.0 ||
                       (outage.error_probability > 0 &&
                        StreamFor(site).NextBool(outage.error_probability));
    if (!fails) continue;
    CountFault();
    std::string msg = "sustained outage at ";
    msg += site;
    const bool throttled =
        outage.throttle_share >= 1.0 ||
        (outage.throttle_share > 0 &&
         StreamFor(site).NextBool(outage.throttle_share));
    if (throttled) return Status::ResourceExhausted(msg);
    return Status::Unavailable(msg);
  }
  const ServiceFaults& faults = plan_.Faults(service);
  if (faults.error_probability <= 0) return Status::OK();
  Rng& rng = StreamFor(site);
  if (!rng.NextBool(faults.error_probability)) return Status::OK();
  CountFault();
  std::string msg = "injected fault at ";
  msg += site;
  if (rng.NextBool(faults.throttle_share)) {
    return Status::ResourceExhausted(msg);
  }
  return Status::Unavailable(msg);
}

size_t FaultInjector::UnprocessedCount(ServiceId service,
                                       std::string_view site,
                                       size_t page_size) {
  if (!enabled_ || page_size == 0) return 0;
  const ServiceFaults& faults = plan_.Faults(service);
  if (faults.unprocessed_probability <= 0) return 0;
  Rng& rng = StreamFor(site);
  if (!rng.NextBool(faults.unprocessed_probability)) return 0;
  CountFault();
  // 1 .. page_size items bounce (a whole-page bounce is AWS's behaviour
  // under sustained throttling).
  return 1 + static_cast<size_t>(
                 rng.NextBelow(static_cast<uint64_t>(page_size)));
}

bool FaultInjector::ShouldDuplicate(ServiceId service, std::string_view site) {
  if (!enabled_) return false;
  const ServiceFaults& faults = plan_.Faults(service);
  if (faults.duplicate_probability <= 0) return false;
  Rng& rng = StreamFor(site);
  if (!rng.NextBool(faults.duplicate_probability)) return false;
  CountFault();
  return true;
}

Micros FaultInjector::DeliveryDelay(ServiceId service, std::string_view site) {
  if (!enabled_) return 0;
  const ServiceFaults& faults = plan_.Faults(service);
  if (faults.delay_probability <= 0 || faults.max_delay <= 0) return 0;
  Rng& rng = StreamFor(site);
  if (!rng.NextBool(faults.delay_probability)) return 0;
  return 1 + static_cast<Micros>(
                 rng.NextBelow(static_cast<uint64_t>(faults.max_delay)));
}

bool FaultInjector::ShouldCrash(CrashPoint point, std::string_view task_key) {
  if (!enabled_ || !plan_.crash.Any()) return false;
  double probability = 0;
  switch (point) {
    case CrashPoint::kBeforeDelete:
      probability = plan_.crash.before_delete_probability;
      break;
    case CrashPoint::kBetweenBatchPutPages:
      probability = plan_.crash.between_batch_put_pages_probability;
      break;
    case CrashPoint::kMidCompaction:
      probability = plan_.crash.mid_compaction_probability;
      break;
  }
  if (probability <= 0) return false;
  std::string site = "crash:";
  site += CrashPointName(point);
  site += ':';
  site += task_key;
  return StreamFor(site).NextBool(probability);
}

}  // namespace webdex::cloud
