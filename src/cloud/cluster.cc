#include "cloud/cluster.h"

#include <algorithm>

namespace webdex::cloud {

Cluster::Cluster(int count, InstanceType type, const WorkModel* work)
    : type_(type) {
  instances_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    instances_.push_back(std::make_unique<Instance>(i, type, work));
  }
}

void Cluster::SyncClocks(Micros t) {
  for (auto& inst : instances_) {
    inst->ResetClock(t);
    inst->ResetBusy();
  }
}

Micros Cluster::MaxClock() const {
  Micros latest = 0;
  for (const auto& inst : instances_) {
    latest = std::max(latest, inst->now());
  }
  return latest;
}

Micros Cluster::RunUntilDrained(const Worker& worker, Micros start_time) {
  std::vector<bool> done(instances_.size(), false);
  size_t remaining = instances_.size();
  while (remaining > 0) {
    // Pick the live instance with the smallest local clock.
    Instance* next = nullptr;
    size_t next_index = 0;
    for (size_t i = 0; i < instances_.size(); ++i) {
      if (done[i]) continue;
      if (next == nullptr || instances_[i]->now() < next->now()) {
        next = instances_[i].get();
        next_index = i;
      }
    }
    const Micros before = next->now();
    const WorkerStep step = worker(*next);
    next->AddBusy(next->now() - before);
    if (step.processed) continue;
    if (step.retry_at < 0) {
      done[next_index] = true;
      --remaining;
    } else {
      // Nothing deliverable yet: idle until the next message can appear.
      // Guarantee progress even if retry_at is not in the future.
      next->AdvanceTo(std::max(step.retry_at, next->now() + 1));
    }
  }
  const Micros end = MaxClock();
  return end > start_time ? end - start_time : 0;
}

}  // namespace webdex::cloud
