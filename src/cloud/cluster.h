#ifndef WEBDEX_CLOUD_CLUSTER_H_
#define WEBDEX_CLOUD_CLUSTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "cloud/instance.h"
#include "cloud/pricing.h"
#include "cloud/sim.h"

namespace webdex::cloud {

/// Outcome of asking a worker to pull and process one task.
struct WorkerStep {
  /// True if a message was received and processed.
  bool processed = false;
  /// When `processed` is false: virtual time at which the worker should
  /// poll again (a message exists but is currently in flight elsewhere).
  /// Negative means the queue is drained and the worker can shut down.
  Micros retry_at = -1;
};

/// A fleet of simulated EC2 instances draining work from a queue.
///
/// Discrete-event scheduling: at each step the instance with the smallest
/// local virtual clock runs one task to completion.  This serializes real
/// execution (we run on one host core) while computing the same makespan a
/// genuinely parallel fleet would observe, including contention on shared
/// services (see RateLimiter in sim.h for the FCFS approximation note).
class Cluster {
 public:
  /// `worker(instance)` should attempt to receive one message from its
  /// queue and fully process it.
  using Worker = std::function<WorkerStep(Instance&)>;

  Cluster(int count, InstanceType type, const WorkModel* work);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  std::vector<std::unique_ptr<Instance>>& instances() { return instances_; }
  Instance& instance(size_t i) { return *instances_[i]; }
  size_t size() const { return instances_.size(); }
  InstanceType type() const { return type_; }

  /// Sets every instance's clock to `t` (e.g. the virtual time at which
  /// the front end finished enqueueing work) and clears busy counters.
  void SyncClocks(Micros t);

  /// Runs `worker` across the fleet until every instance reports a
  /// drained queue.  Returns the makespan: the latest instance finish
  /// time minus `start_time`.  Each instance's busy_micros() accumulates
  /// its own processing time for billing.
  Micros RunUntilDrained(const Worker& worker, Micros start_time);

  /// Latest local time across instances.
  Micros MaxClock() const;

 private:
  InstanceType type_;
  std::vector<std::unique_ptr<Instance>> instances_;
};

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_CLUSTER_H_
