#ifndef WEBDEX_CLOUD_SIMPLEDB_H_
#define WEBDEX_CLOUD_SIMPLEDB_H_

#include <map>
#include <string>
#include <vector>

#include "cloud/kv_store.h"
#include "cloud/sim.h"
#include "cloud/trace.h"
#include "cloud/usage.h"
#include "common/metrics.h"

namespace webdex::cloud {

struct SimpleDbConfig {
  /// Per-API-request round trip; SimpleDB was markedly slower than
  /// DynamoDB (paper Section 8.4).
  Micros request_latency = 40'000;
  /// Global request rate; SimpleDB throttled far earlier than DynamoDB's
  /// provisioned capacity.
  double requests_per_second = 300;
  /// Organic-throttle delay bound on the request rate cap, as in
  /// DynamoDbConfig::max_backlog_micros.  <= 0 (default) queues without
  /// bound, keeping existing runs bit-identical.
  Micros max_backlog_micros = 0;
};

/// Simulated Amazon SimpleDB, the key-value store used by the authors'
/// earlier system [8] and kept here as the Section 8.4 comparison
/// baseline.  The limitations that motivated the move to DynamoDB are
/// modeled faithfully:
///   * attribute values are UTF-8 text of at most 1 KB — no binary blobs,
///     so node-ID lists must be hex-armoured and chunked;
///   * at most 256 attributes per item, 1 KB per attribute name;
///   * lower request throughput and higher latency;
///   * "box usage" machine-hour billing per request.
class FaultInjector;

class SimpleDb final : public KvStore {
 public:
  /// `injector` may be null (no fault injection); `metrics` may be null
  /// (no per-op `service.simpledb.*` metrics).
  SimpleDb(const SimpleDbConfig& config, UsageMeter* meter,
           FaultInjector* injector = nullptr,
           common::MetricRegistry* metrics = nullptr);

  SimpleDb(const SimpleDb&) = delete;
  SimpleDb& operator=(const SimpleDb&) = delete;

  Status CreateTable(SimAgent& agent, const std::string& table) override;
  bool HasTable(const std::string& table) const override;
  Status BatchPut(SimAgent& agent, const std::string& table,
                  const std::vector<Item>& items,
                  std::vector<Item>* unprocessed = nullptr) override;
  Result<std::vector<Item>> Get(SimAgent& agent, const std::string& table,
                                const std::string& hash_key) override;
  Result<std::vector<Item>> BatchGet(
      SimAgent& agent, const std::string& table,
      const std::vector<std::string>& hash_keys) override;
  Result<std::vector<Item>> Scan(SimAgent& agent,
                                const std::string& table) override;
  Status DeleteItem(SimAgent& agent, const std::string& table,
                    const std::string& hash_key,
                    const std::string& range_key) override;

  const char* Name() const override { return "SimpleDB"; }
  uint64_t MaxItemBytes() const override { return 256 * 1024; }
  uint64_t MaxValueBytes() const override { return 1024; }
  bool SupportsBinaryValues() const override { return false; }
  int BatchPutLimit() const override { return 25; }
  int BatchGetLimit() const override { return 20; }
  uint64_t MaxValuesPerItem() const override { return 255; }

  uint64_t StoredBytes(const std::string& table) const override;
  uint64_t OverheadBytes(const std::string& table) const override;
  uint64_t ItemCount(const std::string& table) const override;
  std::vector<std::string> TableNames() const override;
  void ForEachItem(
      const std::function<void(const std::string&, const Item&)>& fn)
      const override;
  void RestoreItem(const std::string& table, const Item& item) override;
  Status RestoreTable(const std::string& table) override;
  bool Empty() const override { return tables_.empty(); }

  /// SimpleDB billed 45 bytes of storage overhead per item name and per
  /// attribute name-value pair.
  static constexpr uint64_t kPerItemOverheadBytes = 45;
  static constexpr uint64_t kPerAttributeOverheadBytes = 45;

 private:
  struct Table {
    std::map<std::string, std::map<std::string, Attributes>> items;
    uint64_t stored_bytes = 0;
    uint64_t item_count = 0;
    uint64_t attribute_count = 0;
  };

  Status ValidateItem(const Item& item) const;
  static uint64_t AttributeCount(const Attributes& attrs);

  /// Organic throttle over the request-rate cap; same contract as
  /// DynamoDb::MaybeThrottle (bills the rejected request's round trip,
  /// no box usage, returns kResourceExhausted + Retry-After hint).
  Status MaybeThrottle(SimAgent& agent, bool write, Micros op_start,
                       const OpMetrics& op);

  SimpleDbConfig config_;
  UsageMeter* meter_;
  FaultInjector* injector_;
  OpMetrics batch_put_metrics_;
  OpMetrics get_metrics_;
  OpMetrics scan_metrics_;
  OpMetrics delete_metrics_;
  OpMetrics create_table_metrics_;
  common::Counter* throttled_metric_ = nullptr;
  RateLimiter request_limiter_;
  std::map<std::string, Table> tables_;
};

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_SIMPLEDB_H_
