#ifndef WEBDEX_CLOUD_KV_STORE_H_
#define WEBDEX_CLOUD_KV_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cloud/sim.h"
#include "common/result.h"
#include "common/status.h"

namespace webdex::cloud {

/// Attribute set of a key-value item: each attribute has a name and one or
/// more values (paper Figure 6: table -> item -> attribute -> name/values).
using AttributeValues = std::vector<std::string>;
using Attributes = std::map<std::string, AttributeValues>;

/// One stored item.  The primary key is composite: a hash key (the index
/// key computed by key(n), Section 5) and a range key (a client-generated
/// UUID, Section 6, so that concurrent loaders never overwrite each
/// other's items).
struct Item {
  std::string hash_key;
  std::string range_key;
  Attributes attrs;

  /// Billable size: keys plus attribute names and values, in bytes.
  uint64_t SizeBytes() const;
};

/// Abstract key-value index store, implemented by the DynamoDB and
/// SimpleDB simulations.  The indexing strategies are written against this
/// interface so the paper's Section 8.4 store comparison swaps backends
/// without touching index code.
class KvStore {
 public:
  virtual ~KvStore() = default;

  /// Creates `table`.  A billed control-plane call: fault-injectable and
  /// routed through retries/breakers by the RetryingKvStore decorator; a
  /// faulted attempt bills its API round trip (successful creates are
  /// free and instantaneous, matching AWS and keeping pre-existing runs
  /// bit-identical).
  virtual Status CreateTable(SimAgent& agent, const std::string& table) = 0;
  virtual bool HasTable(const std::string& table) const = 0;

  /// Inserts `items` (any count; internally issued as batched API calls
  /// of at most BatchPutLimit() items).  An item with an existing
  /// (hash, range) key is completely replaced, as in DynamoDB.
  /// Validation errors (oversized item/value, binary data in a text-only
  /// store) fail the whole call without partial effects.
  ///
  /// Partial-failure contract (docs/FAULTS.md): when `unprocessed` is
  /// non-null, a store under fault injection may return OK having stored
  /// only a prefix, with the bounced items appended to `*unprocessed` for
  /// the caller to re-batch (DynamoDB's UnprocessedItems).  On a transient
  /// error status, `*unprocessed` holds every item not yet stored.  When
  /// `unprocessed` is null the caller cannot observe partial success, so
  /// stores must not inject it.  `*unprocessed` is cleared on entry.
  virtual Status BatchPut(SimAgent& agent, const std::string& table,
                          const std::vector<Item>& items,
                          std::vector<Item>* unprocessed = nullptr) = 0;

  /// Returns all items whose hash key equals `hash_key` (the get(T,k)
  /// operation of Section 6).  Empty vector if none.
  virtual Result<std::vector<Item>> Get(SimAgent& agent,
                                        const std::string& table,
                                        const std::string& hash_key) = 0;

  /// Executes up to BatchGetLimit() gets per API request.  Results are
  /// concatenated in key order.
  virtual Result<std::vector<Item>> BatchGet(
      SimAgent& agent, const std::string& table,
      const std::vector<std::string>& hash_keys) = 0;

  /// Reads every item of `table` in deterministic (hash, range) key
  /// order — the *billed* full-table walk (DynamoDB's Scan, SimpleDB's
  /// paginated select) that the Scrubber uses, as opposed to the free
  /// host-side ForEachItem below.  Paginated internally; each page costs
  /// a request, its latency, and data-proportional read capacity.
  virtual Result<std::vector<Item>> Scan(SimAgent& agent,
                                        const std::string& table) = 0;

  /// Deletes the item with the given composite key.  Deleting an absent
  /// item succeeds (as in DynamoDB) but still bills the request.
  virtual Status DeleteItem(SimAgent& agent, const std::string& table,
                            const std::string& hash_key,
                            const std::string& range_key) = 0;

  // --- Store capability model -------------------------------------------
  // Thread-safety contract: the capability queries below are consulted by
  // IndexingStrategy::ExtractItems while sizing items, which the engine's
  // host-parallel extraction pipeline runs on pooled threads concurrently
  // with simulated traffic on the event-loop thread.  Implementations
  // must therefore answer them from immutable configuration only — no
  // billing, no virtual latency, no mutable state (the DynamoDB and
  // SimpleDB simulations return compile-time constants).
  virtual const char* Name() const = 0;
  virtual uint64_t MaxItemBytes() const = 0;
  virtual uint64_t MaxValueBytes() const = 0;
  /// False means values must be printable text (SimpleDB), so binary
  /// payloads like varint-encoded node-ID lists must be armoured (hex),
  /// doubling their size — the key difference behind Tables 7 and 8.
  virtual bool SupportsBinaryValues() const = 0;
  virtual int BatchPutLimit() const = 0;
  virtual int BatchGetLimit() const = 0;
  /// Maximum attribute values a single item may carry (SimpleDB: 256
  /// attributes per item; DynamoDB: bounded only by item size).
  virtual uint64_t MaxValuesPerItem() const = 0;

  // --- Storage accounting (for Figure 8 and st$m) ------------------------
  /// Raw user bytes stored in `table` — sr(D, I) in Section 7.1.
  virtual uint64_t StoredBytes(const std::string& table) const = 0;
  /// Store-internal overhead for `table` — ovh(D, I) in Section 7.1.
  virtual uint64_t OverheadBytes(const std::string& table) const = 0;
  virtual uint64_t ItemCount(const std::string& table) const = 0;

  /// Sums over all tables.
  uint64_t TotalStoredBytes() const;
  uint64_t TotalOverheadBytes() const;
  virtual std::vector<std::string> TableNames() const = 0;

  // --- Host-side tooling (snapshots; not billed, no virtual latency) ----
  /// Iterates every item of every table in deterministic order.
  virtual void ForEachItem(
      const std::function<void(const std::string&, const Item&)>& fn)
      const = 0;
  /// Restores one item, creating its table if needed (accounting
  /// updated, nothing billed).
  virtual void RestoreItem(const std::string& table, const Item& item) = 0;
  /// Recreates a table host-side — the unbilled, fault-free counterpart
  /// of CreateTable that snapshot restore uses (cloud/snapshot.cc).
  virtual Status RestoreTable(const std::string& table) = 0;
  virtual bool Empty() const = 0;
};

/// FNV-1a 64 fingerprint of a canonical length-prefixed dump of every
/// (table, item) the store yields via ForEachItem, in iteration order.
/// Two stores fingerprint equal iff they hold the same logical contents;
/// the sharded decorator folds physical tables back to logical ones in
/// its ForEachItem, so fingerprints are comparable across architectures
/// (docs/ARCHITECTURES.md, architecture_test.cc).
uint64_t FingerprintStore(const KvStore& store);

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_KV_STORE_H_
