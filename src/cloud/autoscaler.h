#ifndef WEBDEX_CLOUD_AUTOSCALER_H_
#define WEBDEX_CLOUD_AUTOSCALER_H_

#include <cstdint>

#include "cloud/sim.h"
#include "cloud/trace.h"
#include "cloud/usage.h"
#include "common/metrics.h"
#include "common/tracer.h"

namespace webdex::cloud {

class DynamoDb;

/// Reactive capacity autoscaler configuration (docs/OVERLOAD.md).
///
/// Both knobs default off so every existing run is bit-identical: no
/// capacity-hours are metered and provisioned throughput never moves.
struct AutoscalerConfig {
  /// Runs the target-utilization control law (implies `bill_capacity`).
  bool enabled = false;
  /// Meters provisioned capacity-unit-hours through Pricing without
  /// moving capacity — the honest baseline a static over-provisioned
  /// deployment pays, so frontier benches compare like with like.
  bool bill_capacity = false;

  /// Capacity bounds the control law may move between.  Initial capacity
  /// is whatever DynamoDbConfig provisioned (clamped into the bounds on
  /// the first evaluation).
  double min_write_units = 100;
  double max_write_units = 3200;
  double min_read_units = 50;
  double max_read_units = 2000;

  /// Control law: provision so that consumed/provisioned ~= target.
  double target_utilization = 0.7;
  /// A throttled window proves demand exceeds what consumption can
  /// measure (a saturated limiter admits at most its own capacity), so
  /// scale up to at least current * throttle_boost — doubling climbs
  /// out of a deep knee in a handful of windows where consumed/target
  /// alone would creep at 1/target per window.
  double throttle_boost = 2.0;
  /// Scale down only when utilization falls below target * headroom.
  double scale_down_headroom = 0.5;
  /// Each scale-down step keeps at least this fraction of current
  /// capacity (slow decay; scale-up jumps straight to consumed/target).
  double scale_down_step = 0.7;

  /// Control-loop cadence in virtual time.
  Micros evaluation_interval = 10 * kMicrosPerSecond;
  /// Scale-up fast, scale-down slow (AWS Application Auto Scaling shape).
  Micros scale_up_cooldown = 10 * kMicrosPerSecond;
  Micros scale_down_cooldown = 120 * kMicrosPerSecond;
};

/// Durable control-loop state, persisted in snapshot v4 so a restored
/// run resumes the same capacity trajectory deterministically.
struct AutoscalerState {
  double write_units = 0;  // 0 = not yet initialized from the store
  double read_units = 0;
  Micros window_start = 0;
  Micros last_scale_up = 0;
  Micros last_scale_down = 0;
  double window_write_units = 0;
  double window_read_units = 0;
  uint64_t window_write_throttles = 0;
  uint64_t window_read_throttles = 0;
  uint64_t started = 0;  // bool; uint64 for stable serialization
};

/// Watches DynamoDB consumption and organic throttles and re-provisions
/// read/write capacity between configured bounds — entirely in virtual
/// time, driven by the timestamps of the (deterministically ordered)
/// service calls themselves, so serial and host-parallel runs produce
/// byte-identical capacity trajectories.
///
/// The control loop settles fixed evaluation windows: each completed
/// window bills its capacity-unit-hours through the meter (Pricing
/// idx_*_unit_hour), then applies the target-utilization law per
/// dimension.  A throttle or utilization above target scales up to
/// consumed/target immediately (subject to the short up-cooldown); deep
/// idleness decays capacity by at most `scale_down_step` per window
/// (subject to the long down-cooldown).  Every applied change emits an
/// `autoscale.scale` span, bumps `usage.scale_events`, and re-times the
/// store's fluid limiters from the window boundary on.
class Autoscaler {
 public:
  /// `dynamodb` must outlive the autoscaler; `metrics`/`tracer` may be
  /// null (no observability surface).
  Autoscaler(const AutoscalerConfig& config, DynamoDb* dynamodb,
             UsageMeter* meter, common::MetricRegistry* metrics = nullptr,
             common::Tracer* tracer = nullptr);

  Autoscaler(const Autoscaler&) = delete;
  Autoscaler& operator=(const Autoscaler&) = delete;

  /// True when the autoscaler does anything at all (control or billing).
  bool active() const { return config_.enabled || config_.bill_capacity; }

  /// Hooks called by DynamoDb on every billed operation.  `Tick` runs
  /// the control loop across any evaluation windows `now` has crossed;
  /// the Observe* hooks feed the current window.  Out-of-order
  /// timestamps (the discrete-event scheduler replays agents
  /// task-by-task) are handled by only ever moving the window forward.
  void Tick(Micros now);
  void ObserveWrite(double units) {
    if (active()) state_.window_write_units += units;
  }
  void ObserveRead(double units) {
    if (active()) state_.window_read_units += units;
  }
  void ObserveThrottle(bool write) {
    if (!active()) return;
    if (write) {
      state_.window_write_throttles += 1;
    } else {
      state_.window_read_throttles += 1;
    }
  }

  /// Settles capacity-hour billing through `now` (pro-rata for the final
  /// partial window) without evaluating the control law.  Call at the
  /// end of an experiment so static and autoscaled runs bill the same
  /// wall of virtual time.
  void FinishBilling(Micros now);

  const AutoscalerConfig& config() const { return config_; }
  const AutoscalerState& state() const { return state_; }
  /// Restores durable state (snapshot v4).  When the autoscaler is
  /// active and the state carries capacities, they are re-applied to the
  /// store's limiters at the restored window boundary.
  void Restore(const AutoscalerState& state);

  double write_units() const { return state_.write_units; }
  double read_units() const { return state_.read_units; }

 private:
  void EnsureStarted(Micros now);
  /// Settles exactly one window ending at `boundary`.
  void EvaluateWindow(Micros boundary);
  void BillWindow(Micros from, Micros to);
  void ApplyCapacity(Micros at);

  AutoscalerConfig config_;
  DynamoDb* dynamodb_;
  UsageMeter* meter_;
  common::Tracer* tracer_;
  common::Gauge* write_units_gauge_ = nullptr;
  common::Gauge* read_units_gauge_ = nullptr;
  common::Counter* scale_ups_ = nullptr;
  common::Counter* scale_downs_ = nullptr;
  /// Private clock pinned to window boundaries so scale-event spans
  /// carry the boundary's virtual time.
  SimAgent clock_;
  AutoscalerState state_;
};

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_AUTOSCALER_H_
