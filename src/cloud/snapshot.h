#ifndef WEBDEX_CLOUD_SNAPSHOT_H_
#define WEBDEX_CLOUD_SNAPSHOT_H_

#include <string>

#include "cloud/cloud_env.h"
#include "common/status.h"

namespace webdex::cloud {

/// Persistence for the simulated region's *durable* state: every S3
/// bucket/object and every DynamoDB / SimpleDB table/item, in a
/// versioned binary format (varint-framed, corruption-checked).
///
/// Rationale: real S3/DynamoDB state survives while EC2 fleets come and
/// go; snapshots give the simulator the same property across process
/// runs, so a corpus indexed once in `webdex_cli` can be reopened later
/// ("save"/"restore").  Version 2 additionally rounds-trips the chaos
/// state — FaultInjector stream cursors and circuit-breaker trackers —
/// so a resumed faulted run draws the identical continuation of its
/// fault schedule (docs/FAULTS.md).  Ephemeral state — virtual clocks,
/// queue contents, usage meters — is intentionally *not* saved: it
/// belongs to the fleet/session, not to the durable stores.

/// Serializes the durable state of `env` into a byte string.
std::string SerializeSnapshot(CloudEnv& env);

/// Restores a serialized snapshot into `env`, which must be freshly
/// constructed (no buckets or tables).  Fails with Corruption on any
/// malformed input and with AlreadyExists if `env` is not empty.
Status RestoreSnapshot(const std::string& snapshot, CloudEnv* env);

/// File-based convenience wrappers.
Status SaveSnapshotFile(CloudEnv& env, const std::string& path);
Status LoadSnapshotFile(const std::string& path, CloudEnv* env);

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_SNAPSHOT_H_
