#ifndef WEBDEX_CLOUD_QUEUE_SERVICE_H_
#define WEBDEX_CLOUD_QUEUE_SERVICE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cloud/sim.h"
#include "cloud/trace.h"
#include "cloud/usage.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"

namespace webdex::cloud {

/// A message delivered by `QueueService::Receive`.
struct ReceivedMessage {
  std::string body;
  /// Receipt handle identifying this *delivery*; pass it to Delete or
  /// RenewLease.  A later redelivery of the same message carries a fresh
  /// receipt and invalidates this one.
  uint64_t receipt = 0;
  /// How many times this message has been delivered (1 on the first
  /// delivery).  Greater than 1 signals a redelivery after a worker crash
  /// or an expired lease, which is how the paper's architecture obtains
  /// fault tolerance (Section 3).
  int delivery_count = 0;
};

struct QueueServiceConfig {
  Micros request_latency = 4'000;
  /// How long a received message stays invisible before the service
  /// assumes the worker died and makes it deliverable again.
  Micros visibility_timeout = 120 * kMicrosPerSecond;
};

/// Simulated Amazon SQS: named queues with at-least-once delivery and
/// visibility timeouts.  The warehouse uses three queues (Section 3):
/// loader requests, query requests and query responses.
///
/// Every billed API call (send, receive — including empty receives —
/// delete, lease renewal) advances the caller's virtual clock and
/// increments the usage meter, because SQS charges per request (QS$ in
/// Table 3).
class FaultInjector;

class QueueService {
 public:
  /// `injector` may be null (no fault injection); `metrics` may be null
  /// (no per-op `service.sqs.*` metrics).
  QueueService(const QueueServiceConfig& config, UsageMeter* meter,
               FaultInjector* injector = nullptr,
               common::MetricRegistry* metrics = nullptr);

  QueueService(const QueueService&) = delete;
  QueueService& operator=(const QueueService&) = delete;

  Status CreateQueue(const std::string& queue);

  /// Enqueues a message; it becomes immediately visible.
  Status Send(SimAgent& agent, const std::string& queue, std::string body);

  /// Delivers the oldest message visible at the agent's current virtual
  /// time, starting its visibility timeout; returns nullopt (still billed)
  /// if nothing is deliverable right now.
  Result<std::optional<ReceivedMessage>> Receive(SimAgent& agent,
                                                 const std::string& queue);

  /// Acknowledges (permanently removes) a delivered message.  Fails with
  /// NotFound if the receipt is stale — i.e. the lease expired and the
  /// message was redelivered to someone else, exactly SQS's behaviour.
  Status Delete(SimAgent& agent, const std::string& queue, uint64_t receipt);

  /// Extends the visibility timeout of an in-flight message from the
  /// agent's current time.
  Status RenewLease(SimAgent& agent, const std::string& queue,
                    uint64_t receipt);

  /// True when the queue holds no messages at all (neither visible nor
  /// in flight).  Metadata-only: not billed, used by the scheduler.
  bool Drained(const std::string& queue) const;

  /// Earliest virtual time at which some message will be deliverable, or
  /// nullopt if the queue is drained.  Metadata-only (scheduler use).
  std::optional<Micros> NextDeliverableAt(const std::string& queue) const;

  /// Number of undeleted messages (visible + in flight).  Metadata-only.
  size_t Count(const std::string& queue) const;

  /// Bodies of every undeleted message (visible and in flight), oldest
  /// first.  Metadata-only, not billed: host-side tooling used by the
  /// extraction pipeline to speculate on upcoming work without touching
  /// the at-least-once delivery protocol.
  std::vector<std::string> PeekBodies(const std::string& queue) const;

 private:
  struct PendingMessage {
    std::string body;
    Micros visible_at = 0;   // deliverable when agent time >= visible_at
    uint64_t receipt = 0;    // receipt of the current delivery, 0 if none
    int delivery_count = 0;
  };

  QueueServiceConfig config_;
  UsageMeter* meter_;
  FaultInjector* injector_;
  OpMetrics send_metrics_;
  OpMetrics receive_metrics_;
  OpMetrics delete_metrics_;
  OpMetrics renew_metrics_;
  common::Counter* redelivery_metric_ = nullptr;
  uint64_t next_receipt_ = 1;
  std::map<std::string, std::deque<PendingMessage>> queues_;
};

}  // namespace webdex::cloud

#endif  // WEBDEX_CLOUD_QUEUE_SERVICE_H_
