#include "xml/parser.h"

#include <cctype>

#include "common/strings.h"

namespace webdex::xml {
namespace {

class Parser {
 public:
  Parser(std::string_view text, const ParserOptions& options)
      : text_(text), options_(options) {}

  Result<std::unique_ptr<Node>> Parse() {
    SkipProlog();
    WEBDEX_ASSIGN_OR_RETURN(std::unique_ptr<Node> root, ParseElement());
    SkipMisc();
    if (pos_ != text_.size()) {
      return Error("trailing content after document element");
    }
    return root;
  }

 private:
  Status Error(std::string_view message) const {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return Status::Corruption(
        StrFormat("XML parse error at line %zu: %.*s", line,
                  static_cast<int>(message.size()), message.data()));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Consume(char c) {
    if (!AtEnd() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }
  void SkipSpace() {
    while (!AtEnd() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected name");
    const size_t start = pos_;
    ++pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  // Decodes &amp; &lt; &gt; &apos; &quot; and &#...; references in-place
  // while accumulating into `out`.
  Status AppendDecoded(std::string_view raw, std::string* out) {
    size_t i = 0;
    while (i < raw.size()) {
      const char c = raw[i];
      if (c != '&') {
        out->push_back(c);
        ++i;
        continue;
      }
      const size_t semi = raw.find(';', i + 1);
      if (semi == std::string_view::npos) {
        return Error("unterminated entity reference");
      }
      const std::string_view name = raw.substr(i + 1, semi - i - 1);
      if (name == "amp") {
        out->push_back('&');
      } else if (name == "lt") {
        out->push_back('<');
      } else if (name == "gt") {
        out->push_back('>');
      } else if (name == "apos") {
        out->push_back('\'');
      } else if (name == "quot") {
        out->push_back('"');
      } else if (!name.empty() && name[0] == '#') {
        long code = 0;
        if (name.size() > 1 && (name[1] == 'x' || name[1] == 'X')) {
          code = std::strtol(std::string(name.substr(2)).c_str(), nullptr, 16);
        } else {
          code = std::strtol(std::string(name.substr(1)).c_str(), nullptr, 10);
        }
        // Encode as UTF-8.
        if (code <= 0) return Error("bad character reference");
        if (code < 0x80) {
          out->push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (code >> 6)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
          out->push_back(static_cast<char>(0xE0 | (code >> 12)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xF0 | (code >> 18)));
          out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
      } else {
        return Error("unknown entity reference");
      }
      i = semi + 1;
    }
    return Status::OK();
  }

  void SkipProlog() {
    SkipSpace();
    // XML declaration.
    if (ConsumeLiteral("<?xml")) {
      const size_t end = text_.find("?>", pos_);
      pos_ = end == std::string_view::npos ? text_.size() : end + 2;
    }
    SkipMisc();
  }

  // Skips whitespace, comments and processing instructions between
  // markup.  Returns false on malformed comment (flagged later).
  void SkipMisc() {
    for (;;) {
      SkipSpace();
      if (ConsumeLiteral("<!--")) {
        const size_t end = text_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? text_.size() : end + 3;
        continue;
      }
      if (text_.substr(pos_, 2) == "<?") {
        const size_t end = text_.find("?>", pos_);
        pos_ = end == std::string_view::npos ? text_.size() : end + 2;
        continue;
      }
      if (ConsumeLiteral("<!DOCTYPE")) {
        // Skip to the matching '>' (no internal subset support; '[' fails).
        while (!AtEnd() && Peek() != '>' && Peek() != '[') ++pos_;
        if (!AtEnd() && Peek() == '[') {
          // Internal subsets may define entities we will not expand;
          // refuse rather than mis-parse.  Recorded as position for error.
          doctype_subset_ = true;
          return;
        }
        Consume('>');
        continue;
      }
      return;
    }
  }

  Result<std::unique_ptr<Node>> ParseElement() {
    if (doctype_subset_) {
      return Error("DOCTYPE internal subsets are not supported");
    }
    if (++depth_ > options_.max_depth) {
      return Error("element nesting exceeds the configured max_depth");
    }
    const DepthGuard guard(&depth_);
    if (!Consume('<')) return Error("expected '<'");
    WEBDEX_ASSIGN_OR_RETURN(std::string name, ParseName());
    auto element = std::make_unique<Node>(NodeKind::kElement, name);

    // Attributes.
    for (;;) {
      SkipSpace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Consume('>')) break;
      if (ConsumeLiteral("/>")) return element;  // empty element
      WEBDEX_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipSpace();
      if (!Consume('=')) return Error("expected '=' in attribute");
      SkipSpace();
      char quote = 0;
      if (Consume('"')) {
        quote = '"';
      } else if (Consume('\'')) {
        quote = '\'';
      } else {
        return Error("expected quoted attribute value");
      }
      const size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated attribute value");
      std::string value;
      WEBDEX_RETURN_IF_ERROR(
          AppendDecoded(text_.substr(start, pos_ - start), &value));
      ++pos_;  // closing quote
      element->AddAttribute(std::move(attr_name), std::move(value));
    }

    // Content.
    std::string pending_text;
    auto flush_text = [&]() {
      if (pending_text.empty()) return;
      if (!options_.skip_whitespace_text ||
          !Trim(pending_text).empty()) {
        element->AddText(std::move(pending_text));
      }
      pending_text.clear();
    };

    for (;;) {
      if (AtEnd()) return Error("unterminated element: " + name);
      if (Peek() == '<') {
        if (ConsumeLiteral("</")) {
          flush_text();
          WEBDEX_ASSIGN_OR_RETURN(std::string close_name, ParseName());
          if (close_name != name) {
            return Error("mismatched end tag: expected </" + name + ">");
          }
          SkipSpace();
          if (!Consume('>')) return Error("malformed end tag");
          return element;
        }
        if (ConsumeLiteral("<!--")) {
          const size_t end = text_.find("-->", pos_);
          if (end == std::string_view::npos) {
            return Error("unterminated comment");
          }
          pos_ = end + 3;
          continue;
        }
        if (ConsumeLiteral("<![CDATA[")) {
          const size_t end = text_.find("]]>", pos_);
          if (end == std::string_view::npos) return Error("unterminated CDATA");
          pending_text.append(text_.substr(pos_, end - pos_));
          pos_ = end + 3;
          continue;
        }
        if (text_.substr(pos_, 2) == "<?") {
          const size_t end = text_.find("?>", pos_);
          if (end == std::string_view::npos) return Error("unterminated PI");
          pos_ = end + 2;
          continue;
        }
        flush_text();
        WEBDEX_ASSIGN_OR_RETURN(std::unique_ptr<Node> child, ParseElement());
        element->AddChild(std::move(child));
        continue;
      }
      const size_t start = pos_;
      while (!AtEnd() && Peek() != '<') ++pos_;
      WEBDEX_RETURN_IF_ERROR(
          AppendDecoded(text_.substr(start, pos_ - start), &pending_text));
    }
  }

  // Decrements the live depth when a ParseElement frame unwinds.
  class DepthGuard {
   public:
    explicit DepthGuard(int* depth) : depth_(depth) {}
    ~DepthGuard() { --*depth_; }

   private:
    int* depth_;
  };

  std::string_view text_;
  ParserOptions options_;
  size_t pos_ = 0;
  int depth_ = 0;
  bool doctype_subset_ = false;
};

}  // namespace

Result<Document> ParseDocument(std::string uri, std::string_view text,
                               const ParserOptions& options) {
  Parser parser(text, options);
  auto root = parser.Parse();
  if (!root.ok()) return root.status();
  Document doc(std::move(uri), std::move(root).value(), text.size());
  doc.AssignIds();
  return doc;
}

}  // namespace webdex::xml
