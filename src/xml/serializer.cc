#include "xml/serializer.h"

namespace webdex::xml {
namespace {

void SerializeNode(const Node& node, const SerializerOptions& options,
                   int depth, std::string* out) {
  if (node.is_text()) {
    out->append(EscapeText(node.value()));
    return;
  }
  if (node.is_attribute()) {
    // Attributes are emitted by their parent element; a bare attribute
    // serializes as name="value" (used when an attribute itself is the
    // query result).
    out->append(node.label());
    out->append("=\"");
    out->append(EscapeText(node.value()));
    out->push_back('"');
    return;
  }
  const std::string pad =
      options.indent ? std::string(static_cast<size_t>(depth) * 2, ' ') : "";
  if (options.indent && depth > 0) out->push_back('\n');
  out->append(pad);
  out->push_back('<');
  out->append(node.label());
  bool has_content = false;
  for (const auto& child : node.children()) {
    if (child->is_attribute()) {
      out->push_back(' ');
      out->append(child->label());
      out->append("=\"");
      out->append(EscapeText(child->value()));
      out->push_back('"');
    } else {
      has_content = true;
    }
  }
  if (!has_content) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  bool wrote_child_element = false;
  for (const auto& child : node.children()) {
    if (child->is_attribute()) continue;
    if (child->is_text()) {
      out->append(EscapeText(child->value()));
    } else {
      SerializeNode(*child, options, depth + 1, out);
      wrote_child_element = true;
    }
  }
  if (options.indent && wrote_child_element) {
    out->push_back('\n');
    out->append(pad);
  }
  out->append("</");
  out->append(node.label());
  out->push_back('>');
}

}  // namespace

std::string EscapeText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out.append("&amp;");
        break;
      case '<':
        out.append("&lt;");
        break;
      case '>':
        out.append("&gt;");
        break;
      case '"':
        out.append("&quot;");
        break;
      case '\'':
        out.append("&apos;");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string Serialize(const Node& node, const SerializerOptions& options) {
  std::string out;
  SerializeNode(node, options, 0, &out);
  return out;
}

std::string Serialize(const Document& doc, const SerializerOptions& options) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  if (options.indent) out.push_back('\n');
  SerializeNode(doc.root(), options, 0, &out);
  return out;
}

}  // namespace webdex::xml
