#ifndef WEBDEX_XML_PARSER_H_
#define WEBDEX_XML_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "xml/dom.h"

namespace webdex::xml {

struct ParserOptions {
  /// Drop text nodes that are pure whitespace (indentation); the paper's
  /// corpus semantics never depend on them.
  bool skip_whitespace_text = true;
  /// Maximum element nesting depth.  The parser (and most downstream
  /// tree walks) recurse per level, so unbounded depth is a stack-bomb
  /// vector; deeper documents are rejected with Corruption.
  int max_depth = 512;
};

/// Parses an XML document from text.
///
/// A from-scratch, dependency-free parser covering the features the
/// warehouse's documents actually use: elements, attributes, character
/// data, CDATA sections, comments, processing instructions, the XML
/// declaration, and the five predefined entities plus numeric character
/// references.  Not supported (rejected, never silently mis-parsed):
/// DOCTYPE with internal subsets defining entities.
///
/// On success the returned document has structural (pre, post, depth)
/// identifiers already assigned.
Result<Document> ParseDocument(std::string uri, std::string_view text,
                               const ParserOptions& options = {});

}  // namespace webdex::xml

#endif  // WEBDEX_XML_PARSER_H_
