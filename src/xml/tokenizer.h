#ifndef WEBDEX_XML_TOKENIZER_H_
#define WEBDEX_XML_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace webdex::xml {

/// Splits character data into full-text index words: maximal runs of
/// alphanumeric characters, lowercased.  This is the word granularity of
/// the `w‖word` keys (paper Section 5) and of the `contains(c)` predicate
/// (Section 4), which are deliberately consistent with each other so a
/// containment look-up can be answered from the word index.
std::vector<std::string> TokenizeWords(std::string_view text);

/// Lowercases and validates a single word (what a query constant must be
/// reduced to before index look-up).  Multi-word constants tokenize into
/// several look-ups.
std::string NormalizeWord(std::string_view word);

}  // namespace webdex::xml

#endif  // WEBDEX_XML_TOKENIZER_H_
