#ifndef WEBDEX_XML_TOKENIZER_H_
#define WEBDEX_XML_TOKENIZER_H_

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

namespace webdex::xml {

/// Splits character data into full-text index words: maximal runs of
/// alphanumeric characters, lowercased.  This is the word granularity of
/// the `w‖word` keys (paper Section 5) and of the `contains(c)` predicate
/// (Section 4), which are deliberately consistent with each other so a
/// containment look-up can be answered from the word index.
std::vector<std::string> TokenizeWords(std::string_view text);

/// Streaming form of TokenizeWords for the extraction hot path: calls
/// `fn(word)` per word with a view into a reused thread-local buffer —
/// valid only for the duration of the call, no per-word heap allocation.
template <typename Fn>
void ForEachWord(std::string_view text, Fn&& fn) {
  thread_local std::string buffer;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    while (i < n && !std::isalnum(static_cast<unsigned char>(text[i]))) ++i;
    const size_t start = i;
    while (i < n && std::isalnum(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) {
      buffer.clear();
      for (size_t k = start; k < i; ++k) {
        buffer.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(text[k]))));
      }
      fn(std::string_view(buffer));
    }
  }
}

/// Lowercases and validates a single word (what a query constant must be
/// reduced to before index look-up).  Multi-word constants tokenize into
/// several look-ups.
std::string NormalizeWord(std::string_view word);

}  // namespace webdex::xml

#endif  // WEBDEX_XML_TOKENIZER_H_
