#ifndef WEBDEX_XML_DOM_H_
#define WEBDEX_XML_DOM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace webdex::xml {

/// Structural node identifier: the (pre, post, depth) scheme of
/// Al-Khalifa et al. [3], used by the LUI / 2LUPI strategies (paper
/// Section 5).  For nodes n1, n2 of the same document:
///   * n1 is an ancestor of n2  iff  n1.pre < n2.pre and n1.post > n2.post
///   * additionally n1 is n2's parent  iff  n1.depth + 1 == n2.depth
struct NodeId {
  uint32_t pre = 0;
  uint32_t post = 0;
  uint32_t depth = 0;

  bool IsAncestorOf(const NodeId& other) const {
    return pre < other.pre && post > other.post;
  }
  bool IsParentOf(const NodeId& other) const {
    return IsAncestorOf(other) && depth + 1 == other.depth;
  }

  friend bool operator==(const NodeId&, const NodeId&) = default;
  /// Document order == pre order.
  friend auto operator<=>(const NodeId& a, const NodeId& b) {
    return a.pre <=> b.pre;
  }

  std::string ToString() const;  // "(pre, post, depth)"
};

enum class NodeKind {
  kElement,
  kAttribute,  // label = attribute name, value = attribute value
  kText,       // value = character data
};

/// A node of the in-memory document tree.  Owned by its parent; the root
/// is owned by the Document.
class Node {
 public:
  Node(NodeKind kind, std::string label) : kind_(kind), label_(std::move(label)) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind() const { return kind_; }
  bool is_element() const { return kind_ == NodeKind::kElement; }
  bool is_attribute() const { return kind_ == NodeKind::kAttribute; }
  bool is_text() const { return kind_ == NodeKind::kText; }

  /// Element tag name or attribute name; empty for text nodes.
  const std::string& label() const { return label_; }

  /// Attribute value or text content; empty for elements.
  const std::string& value() const { return value_; }
  void set_value(std::string v) { value_ = std::move(v); }

  const NodeId& id() const { return id_; }
  void set_id(NodeId id) { id_ = id; }

  Node* parent() const { return parent_; }

  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }

  /// Appends a child and returns a borrowed pointer to it.
  Node* AddChild(std::unique_ptr<Node> child);

  /// Convenience builders (used heavily by generators and tests).
  Node* AddElement(std::string label);
  Node* AddAttribute(std::string name, std::string value);
  Node* AddText(std::string text);

  /// The *string value* of this node per the paper's `val` annotation:
  /// the concatenation of all text descendants (or the attribute value).
  std::string StringValue() const;

  /// Appends the string value into `out` (for callers reusing a buffer
  /// across many nodes, e.g. per-predicate evaluation).
  void AppendStringValue(std::string* out) const { AppendTextTo(out); }

  /// Number of nodes in this subtree (self included).
  size_t SubtreeSize() const;

 private:
  void AppendTextTo(std::string* out) const;

  NodeKind kind_;
  std::string label_;
  std::string value_;
  NodeId id_;
  Node* parent_ = nullptr;
  std::vector<std::unique_ptr<Node>> children_;
};

/// A parsed XML document: URI (its S3 object name), root element, and the
/// serialized size used by the cost model's data metrics (Section 7.1).
class Document {
 public:
  Document(std::string uri, std::unique_ptr<Node> root, size_t size_bytes)
      : uri_(std::move(uri)), root_(std::move(root)), size_bytes_(size_bytes) {}

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  const std::string& uri() const { return uri_; }
  const Node& root() const { return *root_; }
  Node* mutable_root() { return root_.get(); }
  size_t size_bytes() const { return size_bytes_; }

  /// Re-assigns (pre, post, depth) identifiers over the whole tree in
  /// document order (elements and attributes get IDs; text nodes too, so
  /// word occurrences have positions).  Called by the parser; call again
  /// after structural mutation.
  void AssignIds();

 private:
  std::string uri_;
  std::unique_ptr<Node> root_;
  size_t size_bytes_;
};

/// Runs `fn(node)` over the subtree rooted at `node` in document order.
void ForEachNode(const Node& node, const std::function<void(const Node&)>& fn);

}  // namespace webdex::xml

#endif  // WEBDEX_XML_DOM_H_
