#ifndef WEBDEX_XML_SERIALIZER_H_
#define WEBDEX_XML_SERIALIZER_H_

#include <string>

#include "xml/dom.h"

namespace webdex::xml {

struct SerializerOptions {
  /// Pretty-print with two-space indentation; compact otherwise.
  bool indent = false;
};

/// Serializes the subtree rooted at `node` back to XML text.  Entities
/// are re-escaped, so Parse(Serialize(t)) == t (modulo whitespace).
/// This implements the paper's `cont` result granularity: "the full XML
/// subtree rooted at this node".
std::string Serialize(const Node& node, const SerializerOptions& options = {});

/// Serializes a whole document (adds the XML declaration).
std::string Serialize(const Document& doc,
                      const SerializerOptions& options = {});

/// Escapes &, <, >, ", ' for use in text or attribute content.
std::string EscapeText(const std::string& text);

}  // namespace webdex::xml

#endif  // WEBDEX_XML_SERIALIZER_H_
