#include "xml/tokenizer.h"

#include <cctype>

namespace webdex::xml {

std::vector<std::string> TokenizeWords(std::string_view text) {
  std::vector<std::string> words;
  ForEachWord(text,
              [&words](std::string_view word) { words.emplace_back(word); });
  return words;
}

std::string NormalizeWord(std::string_view word) {
  std::string out;
  out.reserve(word.size());
  for (char c : word) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    }
  }
  return out;
}

}  // namespace webdex::xml
