#include "xml/tokenizer.h"

#include <cctype>

namespace webdex::xml {

std::vector<std::string> TokenizeWords(std::string_view text) {
  std::vector<std::string> words;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    while (i < n && !std::isalnum(static_cast<unsigned char>(text[i]))) ++i;
    const size_t start = i;
    while (i < n && std::isalnum(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) {
      std::string word;
      word.reserve(i - start);
      for (size_t k = start; k < i; ++k) {
        word.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(text[k]))));
      }
      words.push_back(std::move(word));
    }
  }
  return words;
}

std::string NormalizeWord(std::string_view word) {
  std::string out;
  out.reserve(word.size());
  for (char c : word) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    }
  }
  return out;
}

}  // namespace webdex::xml
