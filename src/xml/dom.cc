#include "xml/dom.h"

#include "common/strings.h"

namespace webdex::xml {

std::string NodeId::ToString() const {
  return StrFormat("(%u, %u, %u)", pre, post, depth);
}

Node* Node::AddChild(std::unique_ptr<Node> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

Node* Node::AddElement(std::string label) {
  return AddChild(std::make_unique<Node>(NodeKind::kElement, std::move(label)));
}

Node* Node::AddAttribute(std::string name, std::string value) {
  auto attr = std::make_unique<Node>(NodeKind::kAttribute, std::move(name));
  attr->set_value(std::move(value));
  return AddChild(std::move(attr));
}

Node* Node::AddText(std::string text) {
  auto node = std::make_unique<Node>(NodeKind::kText, "");
  node->set_value(std::move(text));
  return AddChild(std::move(node));
}

void Node::AppendTextTo(std::string* out) const {
  if (is_text() || is_attribute()) {
    out->append(value_);
    return;
  }
  for (const auto& child : children_) {
    if (!child->is_attribute()) child->AppendTextTo(out);
  }
}

std::string Node::StringValue() const {
  std::string out;
  AppendTextTo(&out);
  return out;
}

size_t Node::SubtreeSize() const {
  size_t n = 1;
  for (const auto& child : children_) n += child->SubtreeSize();
  return n;
}

namespace {

void AssignIdsRecursive(Node* node, uint32_t depth, uint32_t* pre,
                        uint32_t* post) {
  NodeId id;
  id.pre = (*pre)++;
  id.depth = depth;
  for (auto& child : node->children()) {
    AssignIdsRecursive(child.get(), depth + 1, pre, post);
  }
  id.post = (*post)++;
  node->set_id(id);
}

}  // namespace

void Document::AssignIds() {
  uint32_t pre = 1;
  uint32_t post = 1;
  AssignIdsRecursive(root_.get(), 1, &pre, &post);
}

void ForEachNode(const Node& node,
                 const std::function<void(const Node&)>& fn) {
  fn(node);
  for (const auto& child : node.children()) ForEachNode(*child, fn);
}

}  // namespace webdex::xml
