#ifndef WEBDEX_INDEX_TWIG_JOIN_H_
#define WEBDEX_INDEX_TWIG_JOIN_H_

#include <cstdint>
#include <map>
#include <vector>

#include "index/key_twig.h"
#include "xml/dom.h"

namespace webdex::index {

struct TwigJoinStats {
  /// Structural-ID comparisons / advances performed (work accounting).
  uint64_t id_ops = 0;
};

/// Per-twig-node candidate lists for one document: the structural IDs the
/// index returned for each twig node's key, sorted by pre.  A missing or
/// empty list means the document cannot match.  Lists are borrowed, not
/// copied — the per-candidate join in LookupByIds binds the same decoded
/// vectors for every document it probes, so inputs carry pointers into
/// caller-owned storage that must outlive the join.
using TwigInputs = std::map<const TwigNode*, const std::vector<xml::NodeId>*>;

/// Holistic structural twig matching over sorted (pre, post, depth)
/// streams, in the spirit of the holistic twig join of Bruno, Koudas &
/// Srivastava [7] that the paper's LUI / 2LUPI look-ups use (Sections
/// 5.3-5.4).
///
/// Bottom-up pass: a candidate ID *satisfies* a twig node if, for every
/// twig child, some satisfying child ID stands in the required structural
/// relation (child / descendant / self).  Because each input list is
/// sorted by pre, the descendants of a candidate occupy one contiguous
/// run of the child list (pre in (p.pre, ...) while post < p.post), found
/// by binary search and bounded scan — no per-document sort is needed,
/// which is exactly why LUI keeps IDs sorted at indexing time.
///
/// Returns true if the document contains at least one full embedding of
/// the twig (the look-up only needs document selection, not tuples).
bool TwigMatch(const KeyTwig& twig, const TwigInputs& inputs,
               TwigJoinStats* stats);

/// Computes the satisfying IDs of the twig root (exposed for tests and
/// for callers that want match positions).
std::vector<xml::NodeId> TwigSatisfyingRootIds(const KeyTwig& twig,
                                               const TwigInputs& inputs,
                                               TwigJoinStats* stats);

}  // namespace webdex::index

#endif  // WEBDEX_INDEX_TWIG_JOIN_H_
