#ifndef WEBDEX_INDEX_STRATEGY_H_
#define WEBDEX_INDEX_STRATEGY_H_

#include <memory>
#include <string>
#include <vector>

#include "cloud/kv_store.h"
#include "common/result.h"
#include "common/rng.h"
#include "index/entry.h"
#include "index/generation.h"
#include "query/tree_pattern.h"
#include "xml/dom.h"

namespace webdex::index {

/// The four indexing strategies of paper Section 5 (Table 2).
enum class StrategyKind {
  kLU,     // Label-URI
  kLUP,    // Label-URI-Path
  kLUI,    // Label-URI-ID
  k2LUPI,  // both LUP and LUI materialized
};

const char* StrategyKindName(StrategyKind kind);
const std::vector<StrategyKind>& AllStrategyKinds();

/// Work/volume counters produced while extracting one document's index.
struct ExtractStats {
  uint64_t entries = 0;        // distinct keys in the document
  uint64_t items = 0;          // key-value items produced
  uint64_t payload_bytes = 0;  // attribute name + value bytes
};

/// Work/volume counters produced by one pattern look-up.
struct LookupStats {
  uint64_t keys_looked_up = 0;
  uint64_t items_fetched = 0;
  uint64_t bytes_fetched = 0;
  uint64_t uri_merge_ops = 0;   // URI-set intersection elements touched
  uint64_t paths_tested = 0;    // stored data paths matched (LUP / 2LUPI)
  uint64_t twig_id_ops = 0;     // twig-join ID operations (LUI / 2LUPI)

  LookupStats& operator+=(const LookupStats& o);
};

/// Items destined for one key-value table.
struct TableItems {
  std::string table;
  std::vector<cloud::Item> items;
};

/// An indexing strategy: how documents are turned into key-value items
/// (Table 2's indexing function I) and how a tree pattern is answered
/// from the stored items (the per-strategy look-up of Section 5).
///
/// Strategies are stateless; the same instance may serve any number of
/// stores and documents.  They adapt to the target store's capabilities
/// (binary support, value/item size limits) at item-building time, which
/// is what differentiates the DynamoDB and SimpleDB deployments compared
/// in Section 8.4.
class IndexingStrategy {
 public:
  virtual ~IndexingStrategy() = default;

  static std::unique_ptr<IndexingStrategy> Create(StrategyKind kind);

  virtual StrategyKind kind() const = 0;
  const char* name() const { return StrategyKindName(kind()); }

  /// Key-value tables this strategy stores its index in (2LUPI uses two,
  /// everything else one — Section 6).  Call store.CreateTable for each.
  virtual std::vector<std::string> TableNames() const = 0;

  /// Translates one parsed document into store items.  `uuid_rng` feeds
  /// the client-generated UUID range keys (Section 6).  Items are sized
  /// to the store's limits: oversized ID lists are chunked across items,
  /// and binary payloads are hex-armoured for text-only stores.
  ///
  /// Computes the document's DocIndex internally; callers that need the
  /// DocIndex for their own bookkeeping (e.g. the extraction pipeline
  /// feeding the planner's PathSummary) should compute it once and use
  /// the overload below, which skips the recomputation.
  Result<std::vector<TableItems>> ExtractItems(const xml::Document& doc,
                                               const ExtractOptions& options,
                                               const cloud::KvStore& store,
                                               Rng& uuid_rng,
                                               ExtractStats* stats) const {
    return ExtractItems(doc, ExtractDocIndex(doc, options), options, store,
                        uuid_rng, stats);
  }

  /// Same, from a precomputed `doc_index` (must be
  /// ExtractDocIndex(doc, options) for the same document and options).
  virtual Result<std::vector<TableItems>> ExtractItems(
      const xml::Document& doc, const DocIndex& doc_index,
      const ExtractOptions& options, const cloud::KvStore& store,
      Rng& uuid_rng, ExtractStats* stats) const = 0;

  /// Answers the look-up task for one tree pattern (Section 5): returns
  /// the sorted URIs of documents that may contain matches.  Index-store
  /// round trips advance `agent`'s virtual clock; CPU work performed on
  /// the fetched data is reported through `stats` so the caller can
  /// charge it to the right simulated machine.
  /// `options` must match the options the index was built with: when
  /// the index holds no word keys, word-based pruning is skipped.
  ///
  /// `view` pins the generation each document is read at
  /// (index/generation.h): postings of superseded generations and
  /// tombstoned documents are invisible.  nullptr means the static
  /// default view (everything visible at generation 0) — byte-identical
  /// to the pre-mutability look-up.
  virtual Result<std::vector<std::string>> LookupPattern(
      cloud::SimAgent& agent, cloud::KvStore& store,
      const query::TreePattern& pattern, const ExtractOptions& options,
      LookupStats* stats, const GenerationMap* view = nullptr) const = 0;
};

}  // namespace webdex::index

#endif  // WEBDEX_INDEX_STRATEGY_H_
