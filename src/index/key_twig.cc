#include "index/key_twig.h"

#include <functional>

#include "index/keys.h"
#include "xml/tokenizer.h"

namespace webdex::index {
namespace {

using query::Axis;
using query::PatternNode;
using query::PredicateKind;

TwigAxis Translate(Axis axis) {
  return axis == Axis::kChild ? TwigAxis::kChild : TwigAxis::kDescendant;
}

std::unique_ptr<TwigNode> BuildNode(const PatternNode& pnode,
                                    TwigAxis axis, bool words) {
  auto tnode = std::make_unique<TwigNode>();
  tnode->axis = axis;
  tnode->pattern_node = pnode.index;

  const auto& pred = pnode.predicate;
  if (pnode.is_attribute) {
    if (pred.kind == PredicateKind::kEquals) {
      // The valued attribute key answers @name = c exactly.
      tnode->key = AttributeValueKey(pnode.label, pred.constant);
    } else {
      tnode->key = AttributeNameKey(pnode.label);
      if (words && pred.kind == PredicateKind::kContains) {
        const std::string word = xml::NormalizeWord(pred.constant);
        if (!word.empty()) {
          auto wnode = std::make_unique<TwigNode>();
          wnode->axis = TwigAxis::kSelf;  // words share the attribute's ID
          wnode->key = WordKey(word);
          tnode->children.push_back(std::move(wnode));
        }
      }
    }
  } else {
    tnode->key = ElementKey(pnode.label);
    if (words && pred.kind == PredicateKind::kEquals) {
      // Every word of the constant must occur under the element.  The
      // text carrying a direct value is a child in ID space, but deeper
      // mixed content is possible, so use descendant edges: never a
      // false negative, and the local evaluator removes any leftovers.
      for (const auto& word : xml::TokenizeWords(pred.constant)) {
        auto wnode = std::make_unique<TwigNode>();
        wnode->axis = TwigAxis::kDescendant;
        wnode->key = WordKey(word);
        tnode->children.push_back(std::move(wnode));
      }
    } else if (words && pred.kind == PredicateKind::kContains) {
      const std::string word = xml::NormalizeWord(pred.constant);
      if (!word.empty()) {
        auto wnode = std::make_unique<TwigNode>();
        wnode->axis = TwigAxis::kDescendant;
        wnode->key = WordKey(word);
        tnode->children.push_back(std::move(wnode));
      }
    }
    // kRange: intentionally nothing (Section 5.5).
  }

  for (const auto& child : pnode.children) {
    tnode->children.push_back(
        BuildNode(*child, Translate(child->axis), words));
  }
  return tnode;
}

}  // namespace

KeyTwig BuildKeyTwig(const query::TreePattern& pattern,
                     bool include_predicate_words) {
  KeyTwig twig;
  twig.root = BuildNode(pattern.root(), Translate(pattern.root().axis),
                        include_predicate_words);
  return twig;
}

std::vector<const TwigNode*> KeyTwig::Nodes() const {
  std::vector<const TwigNode*> nodes;
  std::function<void(const TwigNode&)> walk = [&](const TwigNode& node) {
    nodes.push_back(&node);
    for (const auto& child : node.children) walk(*child);
  };
  if (root) walk(*root);
  return nodes;
}

std::vector<std::string> KeyTwig::DistinctKeys() const {
  std::vector<std::string> keys;
  for (const TwigNode* node : Nodes()) {
    bool seen = false;
    for (const auto& key : keys) {
      if (key == node->key) {
        seen = true;
        break;
      }
    }
    if (!seen) keys.push_back(node->key);
  }
  return keys;
}

std::vector<std::vector<const TwigNode*>> KeyTwig::RootToLeafPaths() const {
  std::vector<std::vector<const TwigNode*>> paths;
  std::vector<const TwigNode*> current;
  std::function<void(const TwigNode&)> walk = [&](const TwigNode& node) {
    current.push_back(&node);
    if (node.children.empty()) {
      paths.push_back(current);
    } else {
      for (const auto& child : node.children) walk(*child);
    }
    current.pop_back();
  };
  if (root) walk(*root);
  return paths;
}

}  // namespace webdex::index
