#ifndef WEBDEX_INDEX_LOOKUP_PATHS_H_
#define WEBDEX_INDEX_LOOKUP_PATHS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cloud/kv_store.h"
#include "common/result.h"
#include "index/entry.h"
#include "index/key_twig.h"
#include "index/strategy.h"

namespace webdex::index {

/// The three index look-up cores of Section 5, factored out of the
/// strategies so the query planner's physical access paths
/// (engine/access_path.h) can run either side of a 2LUPI index on its
/// own.  The strategies' LookupPattern methods delegate here with the
/// tables of Table 2, so planner-off execution is byte-identical to the
/// pre-planner code.
///
/// All three advance `agent`'s virtual clock through the store calls and
/// report CPU work via `stats`; the caller charges it to the simulated
/// machine that ran the look-up.

/// Merged view of everything the index holds for a set of keys:
/// key -> URI -> concatenated attribute values.
using FetchedEntries =
    std::map<std::string, std::map<std::string, std::vector<std::string>>>;

/// BatchGets `keys` from `table` and merges the returned items per
/// (key, URI) — the shared fetch front end of every look-up, and the one
/// place generation visibility is enforced (index/generation.h): the
/// reserved kGenAttr stamp is never merged as an owner URI, and with a
/// non-null `view` only postings of each document's pinned generation
/// survive the merge.  nullptr = the static view (everything visible at
/// generation 0), byte-identical to the pre-mutability fetch.
Result<FetchedEntries> FetchEntries(cloud::SimAgent& agent,
                                    cloud::KvStore& store,
                                    const std::string& table,
                                    const std::vector<std::string>& keys,
                                    LookupStats* stats,
                                    const GenerationMap* view = nullptr);

/// Intersects URI sets across all `keys` of `entries` (the LU merge).
std::set<std::string> IntersectUris(const FetchedEntries& entries,
                                    const std::vector<std::string>& keys,
                                    LookupStats* stats);

/// The LU look-up core: fetch every twig key and intersect the URI sets
/// (Section 5.1).
Result<std::set<std::string>> LookupByKeys(
    cloud::SimAgent& agent, cloud::KvStore& store, const std::string& table,
    const KeyTwig& twig, LookupStats* stats,
    const GenerationMap* view = nullptr);

/// The LUP look-up core (also 2LUPI's first phase): intersects, over all
/// query paths, the URIs having a matching stored data path
/// (Section 5.2).
Result<std::set<std::string>> LookupByPaths(
    cloud::SimAgent& agent, cloud::KvStore& store, const std::string& table,
    const KeyTwig& twig, const ExtractOptions& options, LookupStats* stats,
    const GenerationMap* view = nullptr);

/// The LUI look-up core (also 2LUPI's second phase): decodes per-URI ID
/// lists and runs the holistic twig join (Section 5.3).  When
/// `restrict_to` is non-null, URIs outside it are skipped — the 2LUPI
/// semijoin reduction of Figure 5.
Result<std::set<std::string>> LookupByIds(
    cloud::SimAgent& agent, cloud::KvStore& store, const std::string& table,
    const KeyTwig& twig, const std::set<std::string>* restrict_to,
    LookupStats* stats, const GenerationMap* view = nullptr);

/// The distinct index keys a LookupByPaths call fetches (the LookupKey of
/// every query path, deduplicated in first-appearance order).  Exposed so
/// cost estimation can size the BatchGet without running it.
std::vector<std::string> PathLookupKeys(const KeyTwig& twig);

std::vector<std::string> SortedUris(const std::set<std::string>& uris);

}  // namespace webdex::index

#endif  // WEBDEX_INDEX_LOOKUP_PATHS_H_
