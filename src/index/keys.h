#ifndef WEBDEX_INDEX_KEYS_H_
#define WEBDEX_INDEX_KEYS_H_

#include <string>
#include <string_view>
#include <vector>

namespace webdex::index {

/// The key(n) encoding of paper Section 5.  With e, a, w constant tokens
/// and ‖ concatenation:
///
///   key(n) = e‖label          if n is an XML element
///            a‖name           if n is an XML attribute (name key)
///            a‖name␣value     if n is an XML attribute (valued key)
///            w‖val            if n is a word
///
/// An attribute yields *two* keys — one for its name and one that also
/// carries its value — "these help speed up specific kinds of queries"
/// (point look-ups on @name = value).

inline constexpr char kElementPrefix = 'e';
inline constexpr char kAttributePrefix = 'a';
inline constexpr char kWordPrefix = 'w';

std::string ElementKey(std::string_view label);
std::string AttributeNameKey(std::string_view name);
std::string AttributeValueKey(std::string_view name, std::string_view value);
/// `word` must already be normalized (xml::NormalizeWord).
std::string WordKey(std::string_view word);

/// Renders a key as one component of a stored label path
/// ("/epainting/ename").  '/' and '%' inside keys (possible in attribute
/// values) are percent-escaped so that splitting a stored path on '/'
/// always recovers the original components.
std::string PathComponent(std::string_view key);

/// Appends the escaped component directly to `out` — the hot-path form
/// of PathComponent, free of the intermediate return string.
void AppendPathComponent(std::string* out, std::string_view key);

/// Splits a stored label path into its unescaped key components.
std::vector<std::string> SplitPath(std::string_view path);

/// Allocation-light splitter: components are returned as views into
/// `path` where no unescaping was needed, and into `*scratch` otherwise.
/// `*scratch` is cleared and sized up front so the views stay valid until
/// the next call with the same scratch buffer; `path` must outlive the
/// returned views.  `out` is cleared and reused.
void SplitPathInto(std::string_view path, std::string* scratch,
                   std::vector<std::string_view>* out);

}  // namespace webdex::index

#endif  // WEBDEX_INDEX_KEYS_H_
