#include "index/summary.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "index/key_twig.h"
#include "index/keys.h"

namespace webdex::index {

void PathSummary::AddDocument(const DocIndex& index) {
  documents_ += 1;
  const PathDict& dict = core_->paths();
  for (const auto& entry : index.entries()) {
    Bump(&docs_per_key_, entry.key);
    const PathHandle* paths = index.paths(entry);
    for (uint32_t i = 0; i < entry.path_count; ++i) {
      const PathHandle path = paths[i];
      if (path >= docs_per_path_.size()) {
        docs_per_path_.resize(path + 1, 0);
      }
      if (docs_per_path_[path] == 0) {
        distinct_paths_ += 1;
        const KeyHandle last = dict.LastKey(path);
        if (last >= paths_by_last_key_.size()) {
          paths_by_last_key_.resize(last + 1);
        }
        paths_by_last_key_[last].push_back(path);
      }
      docs_per_path_[path] += 1;
    }
  }
}

uint64_t PathSummary::DocsWithKey(const std::string& key) const {
  const KeyHandle handle = core_->keys().Find(key);
  if (handle == kNoHandle) return 0;
  return CountAt(docs_per_key_, handle);
}

uint64_t PathSummary::DocsMatchingPath(const QueryPath& path) const {
  const KeyHandle last = core_->keys().Find(path.LookupKey());
  if (last == kNoHandle || last >= paths_by_last_key_.size()) return 0;
  const HandleQueryPath resolved = ResolveQueryPath(path, core_->keys());
  if (!resolved.viable) return 0;
  // Distinct data paths are disjoint *path* shapes but one document may
  // carry several; summing their document counts is an upper bound,
  // capped at the corpus size.
  uint64_t total = 0;
  std::vector<KeyHandle> components;
  for (const PathHandle data_path : paths_by_last_key_[last]) {
    core_->paths().Components(data_path, &components);
    if (PathMatches(resolved, components)) {
      total += docs_per_path_[data_path];
    }
  }
  return std::min(total, documents_);
}

uint64_t PathSummary::EstimateLuDocs(
    const query::TreePattern& pattern) const {
  const KeyTwig twig = BuildKeyTwig(pattern);
  uint64_t estimate = documents_;
  for (const auto& key : twig.DistinctKeys()) {
    estimate = std::min(estimate, DocsWithKey(key));
  }
  return estimate;
}

uint64_t PathSummary::EstimateLupDocs(
    const query::TreePattern& pattern) const {
  const KeyTwig twig = BuildKeyTwig(pattern);
  uint64_t estimate = documents_;
  for (const auto& path : BuildQueryPaths(twig)) {
    estimate = std::min(estimate, DocsMatchingPath(path));
  }
  return estimate;
}

double PathSummary::EstimateIndependentCombination(
    const query::TreePattern& pattern) const {
  if (documents_ == 0) return 0;
  const KeyTwig twig = BuildKeyTwig(pattern);
  double expected = static_cast<double>(documents_);
  for (const auto& path : BuildQueryPaths(twig)) {
    expected *= static_cast<double>(DocsMatchingPath(path)) /
                static_cast<double>(documents_);
  }
  return expected;
}

double PathSummary::EstimateTwigJoinDocs(
    const query::TreePattern& pattern) const {
  if (documents_ == 0) return 0;
  const KeyTwig twig = BuildKeyTwig(pattern);
  std::vector<double> fractions;
  for (const auto& path : BuildQueryPaths(twig)) {
    fractions.push_back(static_cast<double>(DocsMatchingPath(path)) /
                        static_cast<double>(documents_));
  }
  std::sort(fractions.begin(), fractions.end());
  double expected = static_cast<double>(documents_);
  double exponent = 1.0;
  for (double fraction : fractions) {
    expected *= std::pow(fraction, exponent);
    exponent /= 2;
  }
  return expected;
}

PathSummary::Advice PathSummary::AdviseLookup(
    const query::TreePattern& pattern) const {
  Advice advice;
  const KeyTwig twig = BuildKeyTwig(pattern);
  const auto query_paths = BuildQueryPaths(twig);
  if (query_paths.size() < 2) {
    advice.lookup = StrategyKind::kLUP;
    advice.reason = "single-branch pattern: LUP path matching is exact";
    return advice;
  }
  const uint64_t lup = EstimateLupDocs(pattern);
  const double combined = EstimateIndependentCombination(pattern);
  const double lup_fraction =
      documents_ == 0 ? 0
                      : static_cast<double>(lup) /
                            static_cast<double>(documents_);
  // Section 8.5: LUI wins when every linear branch is common (the LUP
  // pre-filter keeps many documents) yet the branches rarely co-occur
  // (only the structural join prunes them).
  if (lup_fraction > 0.15 && combined < 0.75 * static_cast<double>(lup)) {
    advice.lookup = StrategyKind::kLUI;
    advice.reason = StrFormat(
        "multi-branch pattern: linear paths each match ~%.0f%% of "
        "documents but are expected to co-occur in only ~%.1f%%; the "
        "holistic twig join prunes what path matching cannot",
        lup_fraction * 100.0,
        documents_ == 0 ? 0 : combined * 100.0 / documents_);
    return advice;
  }
  advice.lookup = StrategyKind::kLUP;
  advice.reason = StrFormat(
      "path matching already narrows to ~%.1f%% of documents",
      lup_fraction * 100.0);
  return advice;
}

}  // namespace webdex::index
