#include "index/summary.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "index/key_twig.h"
#include "index/keys.h"

namespace webdex::index {

void PathSummary::AddDocument(const DocIndex& index) {
  std::map<std::string, std::vector<std::string>> key_paths;
  for (const auto& [key, entry] : index) {
    key_paths.emplace(key, entry.paths);
  }
  AddDocument(key_paths);
}

void PathSummary::AddDocument(
    const std::map<std::string, std::vector<std::string>>& key_paths) {
  documents_ += 1;
  for (const auto& [key, paths] : key_paths) {
    docs_per_key_[key] += 1;
    for (const auto& path : paths) {
      auto [it, inserted] = docs_per_path_.try_emplace(path, 0);
      it->second += 1;
      if (inserted) {
        const auto components = SplitPath(path);
        if (!components.empty()) {
          paths_by_last_key_[components.back()].push_back(path);
        }
      }
    }
  }
}

uint64_t PathSummary::DocsWithKey(const std::string& key) const {
  auto it = docs_per_key_.find(key);
  return it == docs_per_key_.end() ? 0 : it->second;
}

uint64_t PathSummary::DocsMatchingPath(const QueryPath& path) const {
  auto it = paths_by_last_key_.find(path.LookupKey());
  if (it == paths_by_last_key_.end()) return 0;
  // Distinct data paths are disjoint *path* shapes but one document may
  // carry several; summing their document counts is an upper bound,
  // capped at the corpus size.
  uint64_t total = 0;
  for (const auto& data_path : it->second) {
    if (PathMatches(path, data_path)) {
      total += docs_per_path_.at(data_path);
    }
  }
  return std::min(total, documents_);
}

uint64_t PathSummary::EstimateLuDocs(
    const query::TreePattern& pattern) const {
  const KeyTwig twig = BuildKeyTwig(pattern);
  uint64_t estimate = documents_;
  for (const auto& key : twig.DistinctKeys()) {
    estimate = std::min(estimate, DocsWithKey(key));
  }
  return estimate;
}

uint64_t PathSummary::EstimateLupDocs(
    const query::TreePattern& pattern) const {
  const KeyTwig twig = BuildKeyTwig(pattern);
  uint64_t estimate = documents_;
  for (const auto& path : BuildQueryPaths(twig)) {
    estimate = std::min(estimate, DocsMatchingPath(path));
  }
  return estimate;
}

double PathSummary::EstimateIndependentCombination(
    const query::TreePattern& pattern) const {
  if (documents_ == 0) return 0;
  const KeyTwig twig = BuildKeyTwig(pattern);
  double expected = static_cast<double>(documents_);
  for (const auto& path : BuildQueryPaths(twig)) {
    expected *= static_cast<double>(DocsMatchingPath(path)) /
                static_cast<double>(documents_);
  }
  return expected;
}

double PathSummary::EstimateTwigJoinDocs(
    const query::TreePattern& pattern) const {
  if (documents_ == 0) return 0;
  const KeyTwig twig = BuildKeyTwig(pattern);
  std::vector<double> fractions;
  for (const auto& path : BuildQueryPaths(twig)) {
    fractions.push_back(static_cast<double>(DocsMatchingPath(path)) /
                        static_cast<double>(documents_));
  }
  std::sort(fractions.begin(), fractions.end());
  double expected = static_cast<double>(documents_);
  double exponent = 1.0;
  for (double fraction : fractions) {
    expected *= std::pow(fraction, exponent);
    exponent /= 2;
  }
  return expected;
}

PathSummary::Advice PathSummary::AdviseLookup(
    const query::TreePattern& pattern) const {
  Advice advice;
  const KeyTwig twig = BuildKeyTwig(pattern);
  const auto query_paths = BuildQueryPaths(twig);
  if (query_paths.size() < 2) {
    advice.lookup = StrategyKind::kLUP;
    advice.reason = "single-branch pattern: LUP path matching is exact";
    return advice;
  }
  const uint64_t lup = EstimateLupDocs(pattern);
  const double combined = EstimateIndependentCombination(pattern);
  const double lup_fraction =
      documents_ == 0 ? 0
                      : static_cast<double>(lup) /
                            static_cast<double>(documents_);
  // Section 8.5: LUI wins when every linear branch is common (the LUP
  // pre-filter keeps many documents) yet the branches rarely co-occur
  // (only the structural join prunes them).
  if (lup_fraction > 0.15 && combined < 0.75 * static_cast<double>(lup)) {
    advice.lookup = StrategyKind::kLUI;
    advice.reason = StrFormat(
        "multi-branch pattern: linear paths each match ~%.0f%% of "
        "documents but are expected to co-occur in only ~%.1f%%; the "
        "holistic twig join prunes what path matching cannot",
        lup_fraction * 100.0,
        documents_ == 0 ? 0 : combined * 100.0 / documents_);
    return advice;
  }
  advice.lookup = StrategyKind::kLUP;
  advice.reason = StrFormat(
      "path matching already narrows to ~%.1f%% of documents",
      lup_fraction * 100.0);
  return advice;
}

}  // namespace webdex::index
