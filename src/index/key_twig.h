#ifndef WEBDEX_INDEX_KEY_TWIG_H_
#define WEBDEX_INDEX_KEY_TWIG_H_

#include <memory>
#include <string>
#include <vector>

#include "query/tree_pattern.h"

namespace webdex::index {

/// Edge type between key-twig nodes.  kSelf links an attribute to the
/// words of its own value (they share one structural ID, because an
/// attribute is a leaf in (pre, post, depth) space).
enum class TwigAxis { kChild, kDescendant, kSelf };

/// A node of the *key twig*: the tree pattern translated to index keys.
///
/// The translation implements the look-up front half shared by all
/// strategies (Section 5):
///   * element pattern node            -> e‖label key
///   * attribute node, no = predicate  -> a‖name key
///   * attribute node with = c         -> a‖name c valued key (exact)
///   * element with = c                -> extra child word-key nodes, one
///                                        per word of c (child axis: the
///                                        value's text is a child)
///   * any node with contains(c)       -> extra descendant word-key node
///     (attribute contains -> self-axis word node, see TwigAxis::kSelf)
///   * range predicates contribute nothing (Section 5.5: look up without
///     the range, evaluate the full query afterwards)
struct TwigNode {
  TwigAxis axis = TwigAxis::kDescendant;  // edge from parent
  std::string key;
  std::vector<std::unique_ptr<TwigNode>> children;
  /// Index of the originating pattern node, or -1 for synthesized
  /// predicate word nodes.
  int pattern_node = -1;
};

struct KeyTwig {
  std::unique_ptr<TwigNode> root;

  /// All nodes, pre-order.
  std::vector<const TwigNode*> Nodes() const;
  /// Distinct keys of all nodes.
  std::vector<std::string> DistinctKeys() const;
  /// Root-to-leaf paths (sequences of nodes), for the LUP look-up.
  std::vector<std::vector<const TwigNode*>> RootToLeafPaths() const;
};

/// Translates one tree pattern into its key twig.  When
/// `include_predicate_words` is false (the index was built without w‖·
/// keys, see ExtractOptions), no word nodes are synthesized: predicates
/// are then enforced only by the local evaluator, trading look-up
/// precision for a smaller index (paper Figure 8's no-words variant).
KeyTwig BuildKeyTwig(const query::TreePattern& pattern,
                     bool include_predicate_words = true);

}  // namespace webdex::index

#endif  // WEBDEX_INDEX_KEY_TWIG_H_
