#include "index/keys.h"

namespace webdex::index {

std::string ElementKey(std::string_view label) {
  std::string key;
  key.reserve(label.size() + 1);
  key.push_back(kElementPrefix);
  key.append(label);
  return key;
}

std::string AttributeNameKey(std::string_view name) {
  std::string key;
  key.reserve(name.size() + 1);
  key.push_back(kAttributePrefix);
  key.append(name);
  return key;
}

std::string AttributeValueKey(std::string_view name,
                              std::string_view value) {
  std::string key;
  key.reserve(name.size() + value.size() + 2);
  key.push_back(kAttributePrefix);
  key.append(name);
  key.push_back(' ');
  key.append(value);
  return key;
}

std::string WordKey(std::string_view word) {
  std::string key;
  key.reserve(word.size() + 1);
  key.push_back(kWordPrefix);
  key.append(word);
  return key;
}

std::string PathComponent(std::string_view key) {
  std::string out;
  out.reserve(key.size());
  for (char c : key) {
    if (c == '/') {
      out.append("%2F");
    } else if (c == '%') {
      out.append("%25");
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::vector<std::string> SplitPath(std::string_view path) {
  std::vector<std::string> components;
  size_t start = path.empty() || path[0] != '/' ? 0 : 1;
  while (start <= path.size()) {
    size_t end = path.find('/', start);
    if (end == std::string_view::npos) end = path.size();
    std::string_view raw = path.substr(start, end - start);
    std::string component;
    component.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] == '%' && i + 2 < raw.size()) {
        if (raw.substr(i, 3) == "%2F") {
          component.push_back('/');
          i += 2;
          continue;
        }
        if (raw.substr(i, 3) == "%25") {
          component.push_back('%');
          i += 2;
          continue;
        }
      }
      component.push_back(raw[i]);
    }
    components.push_back(std::move(component));
    if (end == path.size()) break;
    start = end + 1;
  }
  return components;
}

}  // namespace webdex::index
