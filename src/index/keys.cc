#include "index/keys.h"

namespace webdex::index {

std::string ElementKey(std::string_view label) {
  std::string key;
  key.reserve(label.size() + 1);
  key.push_back(kElementPrefix);
  key.append(label);
  return key;
}

std::string AttributeNameKey(std::string_view name) {
  std::string key;
  key.reserve(name.size() + 1);
  key.push_back(kAttributePrefix);
  key.append(name);
  return key;
}

std::string AttributeValueKey(std::string_view name,
                              std::string_view value) {
  std::string key;
  key.reserve(name.size() + value.size() + 2);
  key.push_back(kAttributePrefix);
  key.append(name);
  key.push_back(' ');
  key.append(value);
  return key;
}

std::string WordKey(std::string_view word) {
  std::string key;
  key.reserve(word.size() + 1);
  key.push_back(kWordPrefix);
  key.append(word);
  return key;
}

void AppendPathComponent(std::string* out, std::string_view key) {
  for (char c : key) {
    if (c == '/') {
      out->append("%2F");
    } else if (c == '%') {
      out->append("%25");
    } else {
      out->push_back(c);
    }
  }
}

std::string PathComponent(std::string_view key) {
  std::string out;
  out.reserve(key.size());
  AppendPathComponent(&out, key);
  return out;
}

void SplitPathInto(std::string_view path, std::string* scratch,
                   std::vector<std::string_view>* out) {
  out->clear();
  scratch->clear();
  // Unescaped bytes land in the scratch buffer; reserving up front keeps
  // its data pointer stable, so earlier views survive later appends.
  scratch->reserve(path.size());
  size_t start = path.empty() || path[0] != '/' ? 0 : 1;
  while (start <= path.size()) {
    size_t end = path.find('/', start);
    if (end == std::string_view::npos) end = path.size();
    std::string_view raw = path.substr(start, end - start);
    if (raw.find('%') == std::string_view::npos) {
      out->push_back(raw);  // common case: view straight into `path`
    } else {
      const size_t scratch_start = scratch->size();
      for (size_t i = 0; i < raw.size(); ++i) {
        if (raw[i] == '%' && i + 2 < raw.size()) {
          if (raw.substr(i, 3) == "%2F") {
            scratch->push_back('/');
            i += 2;
            continue;
          }
          if (raw.substr(i, 3) == "%25") {
            scratch->push_back('%');
            i += 2;
            continue;
          }
        }
        scratch->push_back(raw[i]);
      }
      out->push_back(std::string_view(*scratch).substr(scratch_start));
    }
    if (end == path.size()) break;
    start = end + 1;
  }
}

std::vector<std::string> SplitPath(std::string_view path) {
  std::string scratch;
  std::vector<std::string_view> views;
  SplitPathInto(path, &scratch, &views);
  return {views.begin(), views.end()};
}

}  // namespace webdex::index
