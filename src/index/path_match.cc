#include "index/path_match.h"

#include "index/keys.h"

namespace webdex::index {

std::string QueryPath::ToString() const {
  std::string out;
  for (const auto& step : steps) {
    out.append(step.axis == TwigAxis::kChild ? "/" : "//");
    out.append(step.key);
  }
  return out;
}

std::vector<QueryPath> BuildQueryPaths(const KeyTwig& twig) {
  std::vector<QueryPath> paths;
  for (const auto& twig_path : twig.RootToLeafPaths()) {
    QueryPath path;
    for (const TwigNode* node : twig_path) {
      QueryPathStep step;
      // Attribute-value words share their attribute's position; in the
      // stored data path they appear as one extra child component.
      step.axis =
          node->axis == TwigAxis::kSelf ? TwigAxis::kChild : node->axis;
      step.key = node->key;
      path.steps.push_back(std::move(step));
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

namespace {

// Recursive match of query steps [qi..) against data components [dj..),
// where query step qi must map to some data component >= dj subject to
// its axis, and the final query step must map to the final component.
// Templated over the component type: strings, views, interned handles.
template <typename Component>
bool MatchFrom(const QueryPath& query, size_t qi, const Component* data,
               size_t size, size_t dj) {
  if (qi == query.steps.size()) {
    // All query steps consumed; require the last one to have matched the
    // last data component (checked by the caller's alignment below).
    return dj == size;
  }
  const QueryPathStep& step = query.steps[qi];
  if (step.axis == TwigAxis::kChild) {
    if (dj >= size || data[dj] != step.key) return false;
    return MatchFrom(query, qi + 1, data, size, dj + 1);
  }
  // Descendant axis: the step may match any component at position >= dj.
  for (size_t k = dj; k < size; ++k) {
    if (data[k] == step.key && MatchFrom(query, qi + 1, data, size, k + 1)) {
      return true;
    }
  }
  return false;
}

template <typename Component>
bool PathMatchesImpl(const QueryPath& query, const Component* data,
                     size_t size) {
  if (query.steps.empty()) return false;
  if (size == 0) return false;
  // Data paths always end with the looked-up key: quick reject otherwise.
  if (data[size - 1] != query.LookupKey()) return false;
  return MatchFrom(query, 0, data, size, 0);
}

bool HandleMatchFrom(const HandleQueryPath& query, size_t qi,
                     const std::vector<KeyHandle>& data, size_t dj) {
  if (qi == query.keys.size()) return dj == data.size();
  if (query.axes[qi] == TwigAxis::kChild) {
    if (dj >= data.size() || data[dj] != query.keys[qi]) return false;
    return HandleMatchFrom(query, qi + 1, data, dj + 1);
  }
  for (size_t k = dj; k < data.size(); ++k) {
    if (data[k] == query.keys[qi] &&
        HandleMatchFrom(query, qi + 1, data, k + 1)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool PathMatches(const QueryPath& query,
                 const std::vector<std::string>& data_components) {
  return PathMatchesImpl(query, data_components.data(),
                         data_components.size());
}

bool PathMatches(const QueryPath& query,
                 const std::vector<std::string_view>& data_components) {
  return PathMatchesImpl(query, data_components.data(),
                         data_components.size());
}

bool PathMatches(const QueryPath& query,
                 const std::string_view* data_components, size_t count) {
  return PathMatchesImpl(query, data_components, count);
}

bool PathMatches(const QueryPath& query, std::string_view data_path) {
  thread_local std::string scratch;
  thread_local std::vector<std::string_view> components;
  SplitPathInto(data_path, &scratch, &components);
  return PathMatchesImpl(query, components.data(), components.size());
}

HandleQueryPath ResolveQueryPath(const QueryPath& query,
                                 const StringInterner& interner) {
  HandleQueryPath resolved;
  resolved.viable = !query.steps.empty();
  resolved.axes.reserve(query.steps.size());
  resolved.keys.reserve(query.steps.size());
  for (const QueryPathStep& step : query.steps) {
    const KeyHandle handle = interner.Find(step.key);
    if (handle == kNoHandle) resolved.viable = false;
    resolved.axes.push_back(step.axis);
    resolved.keys.push_back(handle);
  }
  return resolved;
}

bool PathMatches(const HandleQueryPath& query,
                 const std::vector<KeyHandle>& data_components) {
  if (!query.viable || query.keys.empty()) return false;
  if (data_components.empty()) return false;
  if (data_components.back() != query.keys.back()) return false;
  return HandleMatchFrom(query, 0, data_components, 0);
}

}  // namespace webdex::index
