#include "index/path_match.h"

#include "index/keys.h"

namespace webdex::index {

std::string QueryPath::ToString() const {
  std::string out;
  for (const auto& step : steps) {
    out.append(step.axis == TwigAxis::kChild ? "/" : "//");
    out.append(step.key);
  }
  return out;
}

std::vector<QueryPath> BuildQueryPaths(const KeyTwig& twig) {
  std::vector<QueryPath> paths;
  for (const auto& twig_path : twig.RootToLeafPaths()) {
    QueryPath path;
    for (const TwigNode* node : twig_path) {
      QueryPathStep step;
      // Attribute-value words share their attribute's position; in the
      // stored data path they appear as one extra child component.
      step.axis =
          node->axis == TwigAxis::kSelf ? TwigAxis::kChild : node->axis;
      step.key = node->key;
      path.steps.push_back(std::move(step));
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

namespace {

// Recursive match of query steps [qi..) against data components [dj..),
// where query step qi must map to some data component >= dj subject to
// its axis, and the final query step must map to the final component.
bool MatchFrom(const QueryPath& query, size_t qi,
               const std::vector<std::string>& data, size_t dj) {
  if (qi == query.steps.size()) {
    // All query steps consumed; require the last one to have matched the
    // last data component (checked by the caller's alignment below).
    return dj == data.size();
  }
  const QueryPathStep& step = query.steps[qi];
  if (step.axis == TwigAxis::kChild) {
    if (dj >= data.size() || data[dj] != step.key) return false;
    return MatchFrom(query, qi + 1, data, dj + 1);
  }
  // Descendant axis: the step may match any component at position >= dj.
  for (size_t k = dj; k < data.size(); ++k) {
    if (data[k] == step.key && MatchFrom(query, qi + 1, data, k + 1)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool PathMatches(const QueryPath& query,
                 const std::vector<std::string>& data_components) {
  if (query.steps.empty()) return false;
  if (data_components.empty()) return false;
  // Data paths always end with the looked-up key: quick reject otherwise.
  if (data_components.back() != query.LookupKey()) return false;
  return MatchFrom(query, 0, data_components, 0);
}

bool PathMatches(const QueryPath& query, std::string_view data_path) {
  return PathMatches(query, SplitPath(data_path));
}

}  // namespace webdex::index
