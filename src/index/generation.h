#ifndef WEBDEX_INDEX_GENERATION_H_
#define WEBDEX_INDEX_GENERATION_H_

#include <cstdint>
#include <map>
#include <string>

#include "cloud/kv_store.h"
#include "common/result.h"

namespace webdex::index {

/// Versioned index generations for the mutable corpus
/// (docs/MUTABILITY.md).  Every posting written by an upsert carries a
/// monotone generation stamp as an extra reserved attribute; deletes
/// write tombstones into a meta table instead of erasing in place.  A
/// reader holding a GenerationMap sees exactly one generation per
/// document, so queries stay bit-identical while superseded postings
/// linger until the Compactor garbage-collects them.
///
/// Generation 0 is the static corpus: postings carry *no* stamp
/// attribute and the meta table holds *no* item, so a build with zero
/// mutations is byte-identical to the pre-mutability index (pinned by
/// tests/dump_golden_test.cc against the committed goldens).

/// Reserved attribute name carrying a posting's generation stamp
/// (decimal).  '~' sorts after every URI character the corpus uses and
/// cannot begin a document URI, so the owner-URI attribute of a posting
/// is always the one attribute that is not reserved.
inline constexpr char kGenAttr[] = "~g";
/// Reserved meta-item attribute marking a tombstone.
inline constexpr char kTombstoneAttr[] = "~x";
/// Table holding one append-only meta item per (document, generation)
/// mutation.  Created empty by Warehouse::Setup, so static deployments
/// dump identically with or without it.
inline constexpr char kMetaTable[] = "idx-meta";

/// What a reader needs to know about one mutated document: the single
/// visible generation, and whether the document is deleted.
struct GenerationInfo {
  uint64_t generation = 0;
  bool tombstoned = false;
};

/// Host-side view of the mutated slice of the corpus: URI -> current
/// generation.  Documents never mutated are absent and visible at
/// generation 0.  Copy-on-write: the warehouse publishes immutable
/// snapshots of this map, and every query pins the snapshot current at
/// submission, so maintenance running later cannot change its answer.
class GenerationMap {
 public:
  /// Merges one observed (generation, tombstoned) pair, keeping the
  /// highest generation.  Max-wins makes replays and out-of-order task
  /// commits converge to the same map regardless of delivery order.
  void Apply(const std::string& uri, uint64_t generation, bool tombstoned);

  /// True when a posting stamped `stamp` for `uri` belongs to the
  /// generation this view exposes.  Unmutated documents (absent here)
  /// are visible exactly at stamp 0.
  bool Visible(const std::string& uri, uint64_t stamp) const;

  /// The entry for `uri`, or nullptr when the document was never mutated
  /// (equivalently: was canonicalized back to generation 0).
  const GenerationInfo* Find(const std::string& uri) const;

  /// Forgets `uri` — the Compactor rewrote it at generation 0 (or fully
  /// collected its tombstone), so the default visibility rule applies
  /// again.
  void Erase(const std::string& uri);

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  uint64_t TombstoneCount() const;
  const std::map<std::string, GenerationInfo>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, GenerationInfo> entries_;
};

/// Zero-padded decimal range key for a meta item, so range keys of one
/// URI sort in generation order and "current generation" is the maximum.
std::string GenerationRangeKey(uint64_t generation);

/// The append-only meta item recording that `uri` reached `generation`
/// (hash = URI, range = zero-padded generation).  Append-only on
/// purpose: a redelivered lower-generation task re-puts *its own* item
/// and can never clobber a later one.
cloud::Item MakeMetaItem(const std::string& uri, uint64_t generation,
                         bool tombstoned);

/// Parses the decimal generation stamp of a posting's kGenAttr value.
Result<uint64_t> ParseGenerationStamp(const std::string& value);

/// Reads a posting's stamp out of its attribute set (0 when unstamped).
uint64_t StampOf(const cloud::Attributes& attrs);

/// Folds one scanned meta item into `map` (max-wins).  Items that are
/// not meta-shaped are ignored.
void ApplyMetaItem(const cloud::Item& item, GenerationMap* map);

}  // namespace webdex::index

#endif  // WEBDEX_INDEX_GENERATION_H_
