#ifndef WEBDEX_INDEX_INTERN_H_
#define WEBDEX_INDEX_INTERN_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"

namespace webdex::index {

/// Arena-backed string interning for the native index core
/// (docs/PERFORMANCE.md).  The extraction hot path touches every key and
/// label path of every document many times; interning maps each distinct
/// string to a stable 32-bit handle exactly once, after which the pipeline
/// compares, hashes, sorts and copies integers instead of heap strings.
///
/// Layout (in the spirit of radb's string_index): each shard keeps an
/// open-addressed bucket array of handle slots, a directory of
/// geometrically growing header blocks `{data, hash, len}`, and an
/// append-only chunked byte arena holding the key bytes.  Nothing is ever
/// moved or freed, so handles — and the `string_view`s Resolve returns —
/// stay valid for the interner's lifetime.

/// Stable identifier of an interned string.  Never reused, never
/// invalidated.  kNoHandle doubles as "absent" (Find miss) and as the
/// root parent in PathDict.
using KeyHandle = uint32_t;
using PathHandle = uint32_t;
inline constexpr uint32_t kNoHandle = 0xFFFFFFFFu;

/// Point-in-time interner health, aggregated over shards.  Probe-length
/// counts are clamped at kProbeSlots-1 (a probe of >= 15 steps lands in
/// the last slot).
struct InternStats {
  static constexpr int kProbeSlots = 16;
  uint64_t keys = 0;       // distinct interned strings
  uint64_t bytes = 0;      // key bytes held in the arenas
  uint64_t lookups = 0;    // Intern() calls (hits + misses)
  std::array<uint64_t, kProbeSlots> probe_len{};  // probe-length histogram
};

/// Sharded open-addressed interner.  Intern/Find lock one shard; Resolve
/// is lock-free (the caller holding a handle implies a happens-before
/// edge with the insert that produced it — see docs/PERFORMANCE.md).
class StringInterner {
 public:
  static constexpr uint32_t kShards = 16;

  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Returns the handle of `s`, interning it on first sight.  The bytes
  /// are copied into the shard arena; `s` need not outlive the call.
  KeyHandle Intern(std::string_view s);

  /// Handle of `s` if already interned, kNoHandle otherwise.
  KeyHandle Find(std::string_view s) const;

  /// The interned bytes behind `handle`; valid for the interner's
  /// lifetime.  `handle` must have come from this interner.
  std::string_view Resolve(KeyHandle handle) const {
    const Shard& shard = shards_[handle & (kShards - 1)];
    const Header& h = shard.HeaderAt(handle / kShards);
    return {h.data, h.len};
  }

  /// Precomputed hash of the interned bytes (same function Intern uses).
  uint64_t ResolveHash(KeyHandle handle) const {
    const Shard& shard = shards_[handle & (kShards - 1)];
    return shard.HeaderAt(handle / kShards).hash;
  }

  /// Distinct strings interned so far (locks every shard).
  uint64_t size() const;

  InternStats Stats() const;

  static uint64_t HashBytes(std::string_view s);

 private:
  struct Header {
    const char* data;
    uint64_t hash;
    uint32_t len;
  };

  /// Header blocks grow geometrically: block b holds kBlockBase << b
  /// headers, so a 64-slot directory covers every possible local index
  /// while appends never move existing headers.
  static constexpr uint32_t kBlockBaseLog2 = 12;
  static constexpr uint32_t kBlockBase = 1u << kBlockBaseLog2;
  static constexpr uint32_t kBlockSlots = 20;
  static constexpr size_t kArenaChunkBytes = 1u << 16;

  struct Shard {
    mutable std::mutex mu;
    /// Open-addressed table of local_index+1 (0 = empty); size is a
    /// power of two.
    std::vector<uint32_t> buckets;
    uint32_t count = 0;
    /// Directory of header blocks; slots are release-published so
    /// lock-free Resolve may chase them with acquire loads.
    std::array<std::atomic<Header*>, kBlockSlots> blocks{};
    std::vector<std::unique_ptr<char[]>> chunks;
    size_t chunk_used = kArenaChunkBytes;  // forces first allocation
    // Stats, maintained under mu.
    uint64_t byte_count = 0;
    uint64_t lookups = 0;
    std::array<uint64_t, InternStats::kProbeSlots> probe_len{};

    ~Shard() {
      // Destruction is externally synchronized (no concurrent readers
      // can outlive the interner that hands out the handles).
      for (auto& slot : blocks) delete[] slot.load(std::memory_order_relaxed);
    }

    Header& HeaderSlot(uint32_t local);
    const Header& HeaderAt(uint32_t local) const {
      const uint32_t block = BlockOf(local);
      return blocks[block].load(std::memory_order_acquire)
          [local - FirstLocalOf(block)];
    }
    const char* CopyToArena(std::string_view s);
    void Grow();
  };

  static uint32_t BlockOf(uint32_t local) {
    // Block b starts at local kBlockBase*(2^b - 1).
    return 31 - static_cast<uint32_t>(
                    __builtin_clz((local >> kBlockBaseLog2) + 1));
  }
  static uint32_t FirstLocalOf(uint32_t block) {
    return kBlockBase * ((1u << block) - 1);
  }

  static uint32_t ShardOf(uint64_t hash) {
    // Top bits pick the shard so the in-shard bucket index (low bits)
    // stays decorrelated.
    return static_cast<uint32_t>(hash >> 60) & (kShards - 1);
  }

  std::array<Shard, kShards> shards_;
};

/// Interns full root-to-node label paths as linked (parent, component)
/// pairs — a trie over PathHandles.  Extend is O(1) amortized per node
/// visited during extraction; the full escaped path string (exactly what
/// the pre-interning code built per occurrence) is assembled once on
/// first sight and cached in the arena, so Resolve is a pointer load.
class PathDict {
 public:
  /// `keys` must outlive the dict; component handles are interpreted
  /// against it.
  explicit PathDict(StringInterner* keys) : keys_(keys) {}
  PathDict(const PathDict&) = delete;
  PathDict& operator=(const PathDict&) = delete;

  /// Handle of `parent`/`component` (parent == kNoHandle means a
  /// root-level component).  The cached string is
  /// parent-string + "/" + percent-escaped component (index::PathComponent
  /// escaping), matching the stored-path format byte for byte.
  PathHandle Extend(PathHandle parent, KeyHandle component);

  /// The cached full path string ("/esite/eregions/eitem/ename").
  std::string_view Resolve(PathHandle handle) const {
    const Node& n = shards_[handle & (kShards - 1)].NodeAt(handle / kShards);
    return {n.str, n.len};
  }

  PathHandle Parent(PathHandle handle) const {
    return shards_[handle & (kShards - 1)].NodeAt(handle / kShards).parent;
  }
  KeyHandle LastKey(PathHandle handle) const {
    return shards_[handle & (kShards - 1)].NodeAt(handle / kShards).component;
  }
  uint32_t Depth(PathHandle handle) const {
    return shards_[handle & (kShards - 1)].NodeAt(handle / kShards).depth;
  }

  /// Root-to-node component key handles, in path order.
  void Components(PathHandle handle, std::vector<KeyHandle>* out) const;

  uint64_t size() const;
  uint64_t bytes() const;

 private:
  static constexpr uint32_t kShards = StringInterner::kShards;
  static constexpr uint32_t kBlockBaseLog2 = 12;
  static constexpr uint32_t kBlockBase = 1u << kBlockBaseLog2;
  static constexpr uint32_t kBlockSlots = 20;
  static constexpr size_t kArenaChunkBytes = 1u << 16;

  struct Node {
    const char* str;   // cached full escaped path
    PathHandle parent;
    KeyHandle component;
    uint32_t len;
    uint32_t depth;
  };

  struct Shard {
    mutable std::mutex mu;
    std::vector<uint32_t> buckets;  // local_index+1, keyed by (parent, comp)
    uint32_t count = 0;
    std::array<std::atomic<Node*>, kBlockSlots> blocks{};
    std::vector<std::unique_ptr<char[]>> chunks;
    size_t chunk_used = kArenaChunkBytes;
    uint64_t byte_count = 0;

    ~Shard() {
      for (auto& slot : blocks) delete[] slot.load(std::memory_order_relaxed);
    }

    Node& NodeSlot(uint32_t local);
    const Node& NodeAt(uint32_t local) const {
      const uint32_t block = BlockOf(local);
      return blocks[block].load(std::memory_order_acquire)
          [local - FirstLocalOf(block)];
    }
    char* AllocArena(size_t n);
    void Grow();
  };

  static uint32_t BlockOf(uint32_t local) {
    return 31 - static_cast<uint32_t>(
                    __builtin_clz((local >> kBlockBaseLog2) + 1));
  }
  static uint32_t FirstLocalOf(uint32_t block) {
    return kBlockBase * ((1u << block) - 1);
  }

  StringInterner* keys_;
  std::array<Shard, kShards> shards_;
};

/// The process-wide interning core the extraction pipeline runs on: one
/// key interner plus the path dictionary over it.  A single global
/// instance is shared by every document, thread and CloudEnv — handles
/// are only ever compared through their resolved strings when ordering
/// matters, so insertion order (which host thread got there first) never
/// leaks into serialized bytes (the determinism contract of
/// docs/PARALLELISM.md).
class InternCore {
 public:
  InternCore() : paths_(&keys_) {}
  InternCore(const InternCore&) = delete;
  InternCore& operator=(const InternCore&) = delete;

  StringInterner& keys() { return keys_; }
  const StringInterner& keys() const { return keys_; }
  PathDict& paths() { return paths_; }
  const PathDict& paths() const { return paths_; }

  static InternCore& Global();

 private:
  StringInterner keys_;
  PathDict paths_;
};

/// Prefix-composing intern helpers for the key(n) encodings of Section 5
/// ("e"+label, "a"+name, "a"+name+" "+value, "w"+word) — assemble the key
/// in a reused thread-local scratch buffer and intern it without a heap
/// allocation per call.
KeyHandle InternElementKey(StringInterner& interner, std::string_view label);
KeyHandle InternAttributeNameKey(StringInterner& interner,
                                 std::string_view name);
KeyHandle InternAttributeValueKey(StringInterner& interner,
                                  std::string_view name,
                                  std::string_view value);
KeyHandle InternWordKey(StringInterner& interner, std::string_view word);

/// Mirrors the global interner's health into `registry` —
/// `index.intern.keys` / `.bytes` / `.paths` / `.path_bytes` /
/// `.lookups` gauges plus the `index.intern.probe_len` histogram
/// (rebuilt, like PublishUsageMetrics rebuilds the usage gauges).  Must
/// be called from the event-loop thread; the interner itself never
/// touches the registry (MetricRegistry's single-thread contract).
void PublishInternMetrics(common::MetricRegistry* registry);

/// Same, reading an explicit core (tests).
void PublishInternMetrics(common::MetricRegistry* registry,
                          const InternCore& core);

}  // namespace webdex::index

#endif  // WEBDEX_INDEX_INTERN_H_
