#ifndef WEBDEX_INDEX_ENTRY_H_
#define WEBDEX_INDEX_ENTRY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "index/intern.h"
#include "xml/dom.h"

namespace webdex::index {

/// All index data extracted from one document, keyed by interned handles
/// and backed by flat slabs (the native index core — docs/PERFORMANCE.md).
///
/// The legacy representation was `std::map<std::string, NodeEntry>` with
/// per-key `vector<string>` paths: every occurrence hashed, compared and
/// copied heap strings.  Here each entry is three integers' worth of
/// bookkeeping — an interned key handle plus [begin, count) ranges into
/// two document-wide slabs: structural IDs (`ids`) and interned path
/// handles (`paths`).  Key and path *strings* live once in the shared
/// InternCore arena.
///
/// Entries iterate sorted by resolved key string, each entry's IDs sorted
/// by pre-order and deduplicated, each entry's paths sorted by resolved
/// path string and deduplicated — exactly the legacy map's iteration
/// contract, so serialization (and the stored dump bytes) are unchanged.
class DocIndex {
 public:
  struct Entry {
    KeyHandle key = kNoHandle;
    uint32_t id_begin = 0;
    uint32_t id_count = 0;
    uint32_t path_begin = 0;
    uint32_t path_count = 0;
  };

  DocIndex() : core_(&InternCore::Global()) {}
  explicit DocIndex(const InternCore* core) : core_(core) {}

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const InternCore& core() const { return *core_; }

  /// Sorted by resolved key string.
  const std::vector<Entry>& entries() const { return entries_; }

  std::string_view key(const Entry& e) const {
    return core_->keys().Resolve(e.key);
  }
  /// The entry's sorted, deduplicated structural IDs.
  const xml::NodeId* ids(const Entry& e) const {
    return ids_.data() + e.id_begin;
  }
  /// The entry's path handles, sorted by resolved string, deduplicated.
  const PathHandle* paths(const Entry& e) const {
    return paths_.data() + e.path_begin;
  }
  std::string_view path(PathHandle handle) const {
    return core_->paths().Resolve(handle);
  }

  /// Binary search by key string; nullptr when absent.
  const Entry* Find(std::string_view key) const;
  bool Contains(std::string_view key) const { return Find(key) != nullptr; }

  /// Materializing conveniences for tests and non-hot-path callers.
  std::vector<xml::NodeId> IdVector(const Entry& e) const {
    return {ids(e), ids(e) + e.id_count};
  }
  std::vector<std::string> PathVector(const Entry& e) const;

 private:
  friend DocIndex ExtractDocIndexInto(const xml::Document&,
                                      const struct ExtractOptions&,
                                      InternCore*);

  const InternCore* core_;
  std::vector<Entry> entries_;
  std::vector<xml::NodeId> ids_;
  std::vector<PathHandle> paths_;
};

struct ExtractOptions {
  /// Emit w‖word keys for text and attribute-value words.  Figure 8
  /// contrasts the strategies with and without full-text indexing.
  bool include_words = true;
  /// Store LUP / 2LUPI path sets front-coded (see EncodePaths) instead of
  /// as one attribute value per path.  This is the paper's Section 8.5
  /// suggestion — "further compression of the paths in the LUP index
  /// could probably make it even more competitive" — implemented.
  /// Look-ups must be configured identically to the build.
  bool compress_paths = false;
  /// Generation stamp for the postings this extraction produces
  /// (index/generation.h).  0 — the static corpus — emits no stamp
  /// attribute, keeping the stored bytes identical to the pre-mutability
  /// index; upserts extract at their allocated generation > 0 and every
  /// posting carries a kGenAttr stamp.
  uint64_t generation = 0;
};

/// Walks a parsed document and builds its DocIndex: element keys,
/// attribute name + valued keys, and word keys.  Word occurrences carry
/// the structural ID of their text node (a child of the enclosing
/// element); attribute-value words carry the attribute's own ID.
/// Interns into the global InternCore; safe to call from any host thread.
DocIndex ExtractDocIndex(const xml::Document& doc,
                         const ExtractOptions& options = {});

/// Same, interning into an explicit core (tests, isolation).
DocIndex ExtractDocIndexInto(const xml::Document& doc,
                             const ExtractOptions& options, InternCore* core);

/// Statistics of an extraction, for work accounting and the |op(D, I)|
/// metric of Section 7.1.
struct DocIndexStats {
  uint64_t keys = 0;
  uint64_t ids = 0;
  uint64_t path_bytes = 0;
};
DocIndexStats ComputeStats(const DocIndex& index);

// --- Structural-ID payload codec -----------------------------------------
//
// LUI / 2LUPI store a document's sorted IDs for a key as one binary
// attribute value: varint-encoded (pre, post, depth) triples (Sections
// 5.3, 8.2: "we exploit the fact that DynamoDB allows storing arbitrary
// binary objects ... compressed (encoded) sets of IDs in a single value").

/// Appends the encoding of `ids` (must be sorted by pre) to a fresh blob.
std::string EncodeIds(const std::vector<xml::NodeId>& ids);

/// Appends one ID's encoding to `blob` — the chunking loop's primitive.
void AppendEncodedId(std::string* blob, const xml::NodeId& id);

/// Decodes a blob; fails with Corruption on malformed input.
Result<std::vector<xml::NodeId>> DecodeIds(std::string_view blob);

/// Hex armouring for stores that only accept text values (SimpleDB):
/// doubles the size, which is precisely the storage/cost penalty the
/// paper measured against its earlier SimpleDB-based system (Table 7).
std::string HexArmour(std::string_view binary);
Result<std::string> HexDearmour(std::string_view text);

// --- Path-set codec (Section 8.5 extension) --------------------------------
//
// Front coding over the *sorted* path list: each path is stored as
// varint(shared-prefix length with its predecessor) + varint(suffix
// length) + suffix bytes.  Label paths of one key share long prefixes
// ("/esite/eregions/eitem/..."), so this typically shrinks LUP payloads
// by 2-4x.

/// Encodes `paths` (must be sorted) as one front-coded blob.
std::string EncodePaths(const std::vector<std::string>& paths);

/// Same, over views (the slab-serialization hot path).
std::string EncodePathViews(const std::vector<std::string_view>& paths);

/// Decodes a front-coded blob back into the sorted path list.
Result<std::vector<std::string>> DecodePaths(std::string_view blob);

}  // namespace webdex::index

#endif  // WEBDEX_INDEX_ENTRY_H_
