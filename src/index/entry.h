#ifndef WEBDEX_INDEX_ENTRY_H_
#define WEBDEX_INDEX_ENTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"

namespace webdex::index {

/// Everything one document contributes to the index under one key: the
/// sorted structural identifiers of the key's occurrences (LUI payload)
/// and the distinct root-to-node label paths (LUP payload).
struct NodeEntry {
  /// Sorted by pre component — kept sorted at extraction time so the
  /// holistic twig join's inputs need no sort (paper Section 5.3).
  std::vector<xml::NodeId> ids;
  /// Distinct paths like "/esite/eregions/eitem/ename", sorted.
  std::vector<std::string> paths;
};

/// All index data extracted from one document: key -> entry.
using DocIndex = std::map<std::string, NodeEntry>;

struct ExtractOptions {
  /// Emit w‖word keys for text and attribute-value words.  Figure 8
  /// contrasts the strategies with and without full-text indexing.
  bool include_words = true;
  /// Store LUP / 2LUPI path sets front-coded (see EncodePaths) instead of
  /// as one attribute value per path.  This is the paper's Section 8.5
  /// suggestion — "further compression of the paths in the LUP index
  /// could probably make it even more competitive" — implemented.
  /// Look-ups must be configured identically to the build.
  bool compress_paths = false;
};

/// Walks a parsed document and builds its DocIndex: element keys,
/// attribute name + valued keys, and word keys.  Word occurrences carry
/// the structural ID of their text node (a child of the enclosing
/// element); attribute-value words carry the attribute's own ID.
DocIndex ExtractDocIndex(const xml::Document& doc,
                         const ExtractOptions& options = {});

/// Statistics of an extraction, for work accounting and the |op(D, I)|
/// metric of Section 7.1.
struct DocIndexStats {
  uint64_t keys = 0;
  uint64_t ids = 0;
  uint64_t path_bytes = 0;
};
DocIndexStats ComputeStats(const DocIndex& index);

// --- Structural-ID payload codec -----------------------------------------
//
// LUI / 2LUPI store a document's sorted IDs for a key as one binary
// attribute value: varint-encoded (pre, post, depth) triples (Sections
// 5.3, 8.2: "we exploit the fact that DynamoDB allows storing arbitrary
// binary objects ... compressed (encoded) sets of IDs in a single value").

/// Appends the encoding of `ids` (must be sorted by pre) to a fresh blob.
std::string EncodeIds(const std::vector<xml::NodeId>& ids);

/// Decodes a blob; fails with Corruption on malformed input.
Result<std::vector<xml::NodeId>> DecodeIds(std::string_view blob);

/// Hex armouring for stores that only accept text values (SimpleDB):
/// doubles the size, which is precisely the storage/cost penalty the
/// paper measured against its earlier SimpleDB-based system (Table 7).
std::string HexArmour(std::string_view binary);
Result<std::string> HexDearmour(std::string_view text);

// --- Path-set codec (Section 8.5 extension) --------------------------------
//
// Front coding over the *sorted* path list: each path is stored as
// varint(shared-prefix length with its predecessor) + varint(suffix
// length) + suffix bytes.  Label paths of one key share long prefixes
// ("/esite/eregions/eitem/..."), so this typically shrinks LUP payloads
// by 2-4x.

/// Encodes `paths` (must be sorted) as one front-coded blob.
std::string EncodePaths(const std::vector<std::string>& paths);

/// Decodes a front-coded blob back into the sorted path list.
Result<std::vector<std::string>> DecodePaths(std::string_view blob);

}  // namespace webdex::index

#endif  // WEBDEX_INDEX_ENTRY_H_
