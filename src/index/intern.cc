#include "index/intern.h"

#include <algorithm>
#include <cassert>

#include "index/keys.h"

namespace webdex::index {

// FNV-1a, the same simple deterministic hash the codebase's Rng family
// builds on; good enough dispersion for short index keys and endian- and
// platform-stable so goldens hold everywhere.
uint64_t StringInterner::HashBytes(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  // Finalize so that low and high bits are both usable (shard = high
  // bits, bucket = low bits).
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

StringInterner::Header& StringInterner::Shard::HeaderSlot(uint32_t local) {
  const uint32_t block = BlockOf(local);
  Header* base = blocks[block].load(std::memory_order_relaxed);
  if (base == nullptr) {
    base = new Header[size_t{kBlockBase} << block];
    blocks[block].store(base, std::memory_order_release);
  }
  return base[local - FirstLocalOf(block)];
}

const char* StringInterner::Shard::CopyToArena(std::string_view s) {
  char* data;
  if (s.size() > kArenaChunkBytes) {
    // Oversized string gets a dedicated chunk; the current bump chunk —
    // if any — stays usable at the back.
    chunks.push_back(std::make_unique<char[]>(s.size()));
    data = chunks.back().get();
    if (chunks.size() >= 2) {
      std::swap(chunks[chunks.size() - 1], chunks[chunks.size() - 2]);
    } else {
      chunk_used = kArenaChunkBytes;  // no bump chunk yet: force one next
    }
  } else {
    if (chunks.empty() || s.size() > kArenaChunkBytes - chunk_used) {
      chunks.push_back(std::make_unique<char[]>(kArenaChunkBytes));
      chunk_used = 0;
    }
    data = chunks.back().get() + chunk_used;
    chunk_used += s.size();
  }
  std::memcpy(data, s.data(), s.size());
  return data;
}

void StringInterner::Shard::Grow() {
  const size_t new_size = buckets.empty() ? 1024 : buckets.size() * 2;
  std::vector<uint32_t> next(new_size, 0);
  const size_t mask = new_size - 1;
  for (uint32_t slot : buckets) {
    if (slot == 0) continue;
    const Header& h = HeaderAt(slot - 1);
    size_t i = h.hash & mask;
    while (next[i] != 0) i = (i + 1) & mask;
    next[i] = slot;
  }
  buckets = std::move(next);
}

KeyHandle StringInterner::Intern(std::string_view s) {
  const uint64_t hash = HashBytes(s);
  const uint32_t shard_idx = ShardOf(hash);
  Shard& shard = shards_[shard_idx];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.lookups += 1;
  if (shard.buckets.empty() ||
      (shard.count + 1) * 4 > shard.buckets.size() * 3) {
    shard.Grow();
  }
  const size_t mask = shard.buckets.size() - 1;
  size_t i = hash & mask;
  uint32_t probes = 0;
  while (true) {
    const uint32_t slot = shard.buckets[i];
    if (slot == 0) break;
    const Header& h = shard.HeaderAt(slot - 1);
    if (h.hash == hash && h.len == s.size() &&
        std::memcmp(h.data, s.data(), s.size()) == 0) {
      shard.probe_len[std::min<uint32_t>(probes,
                                         InternStats::kProbeSlots - 1)] += 1;
      return (slot - 1) * kShards + shard_idx;
    }
    i = (i + 1) & mask;
    probes += 1;
  }
  shard.probe_len[std::min<uint32_t>(probes, InternStats::kProbeSlots - 1)] +=
      1;
  const uint32_t local = shard.count;
  Header& h = shard.HeaderSlot(local);
  h.data = shard.CopyToArena(s);
  h.hash = hash;
  h.len = static_cast<uint32_t>(s.size());
  shard.count += 1;
  shard.byte_count += s.size();
  shard.buckets[i] = local + 1;
  return local * kShards + shard_idx;
}

KeyHandle StringInterner::Find(std::string_view s) const {
  const uint64_t hash = HashBytes(s);
  const uint32_t shard_idx = ShardOf(hash);
  const Shard& shard = shards_[shard_idx];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.buckets.empty()) return kNoHandle;
  const size_t mask = shard.buckets.size() - 1;
  size_t i = hash & mask;
  while (true) {
    const uint32_t slot = shard.buckets[i];
    if (slot == 0) return kNoHandle;
    const Header& h = shard.HeaderAt(slot - 1);
    if (h.hash == hash && h.len == s.size() &&
        std::memcmp(h.data, s.data(), s.size()) == 0) {
      return (slot - 1) * kShards + shard_idx;
    }
    i = (i + 1) & mask;
  }
}

uint64_t StringInterner::size() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.count;
  }
  return total;
}

InternStats StringInterner::Stats() const {
  InternStats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.keys += shard.count;
    stats.bytes += shard.byte_count;
    stats.lookups += shard.lookups;
    for (int i = 0; i < InternStats::kProbeSlots; ++i) {
      stats.probe_len[i] += shard.probe_len[i];
    }
  }
  return stats;
}

// --- PathDict --------------------------------------------------------------

PathDict::Node& PathDict::Shard::NodeSlot(uint32_t local) {
  const uint32_t block = BlockOf(local);
  Node* base = blocks[block].load(std::memory_order_relaxed);
  if (base == nullptr) {
    base = new Node[size_t{kBlockBase} << block];
    blocks[block].store(base, std::memory_order_release);
  }
  return base[local - FirstLocalOf(block)];
}

char* PathDict::Shard::AllocArena(size_t n) {
  if (n > kArenaChunkBytes) {
    chunks.push_back(std::make_unique<char[]>(n));
    char* data = chunks.back().get();
    if (chunks.size() >= 2) {
      std::swap(chunks[chunks.size() - 1], chunks[chunks.size() - 2]);
    } else {
      chunk_used = kArenaChunkBytes;
    }
    return data;  // dedicated chunk; the bump chunk stays usable
  }
  if (chunks.empty() || n > kArenaChunkBytes - chunk_used) {
    chunks.push_back(std::make_unique<char[]>(kArenaChunkBytes));
    chunk_used = 0;
  }
  char* data = chunks.back().get() + chunk_used;
  chunk_used += n;
  return data;
}

void PathDict::Shard::Grow() {
  const size_t new_size = buckets.empty() ? 1024 : buckets.size() * 2;
  std::vector<uint32_t> next(new_size, 0);
  const size_t mask = new_size - 1;
  for (uint32_t slot : buckets) {
    if (slot == 0) continue;
    const Node& n = NodeAt(slot - 1);
    // Rehash from the packed pair exactly as Extend does.
    const uint64_t key =
        (uint64_t{n.parent} << 32) | uint64_t{n.component};
    const uint64_t h = StringInterner::HashBytes(
        {reinterpret_cast<const char*>(&key), sizeof(key)});
    size_t i = h & mask;
    while (next[i] != 0) i = (i + 1) & mask;
    next[i] = slot;
  }
  buckets = std::move(next);
}

PathHandle PathDict::Extend(PathHandle parent, KeyHandle component) {
  const uint64_t key = (uint64_t{parent} << 32) | uint64_t{component};
  const uint64_t hash = StringInterner::HashBytes(
      {reinterpret_cast<const char*>(&key), sizeof(key)});
  const uint32_t shard_idx =
      static_cast<uint32_t>(hash >> 60) & (kShards - 1);
  Shard& shard = shards_[shard_idx];

  // Assemble the escaped full path outside the lock on first sight; the
  // common case (already interned) never needs it.  Parent resolution is
  // lock-free, so no cross-shard lock order exists.
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.buckets.empty() ||
      (shard.count + 1) * 4 > shard.buckets.size() * 3) {
    shard.Grow();
  }
  const size_t mask = shard.buckets.size() - 1;
  size_t i = hash & mask;
  while (true) {
    const uint32_t slot = shard.buckets[i];
    if (slot == 0) break;
    const Node& n = shard.NodeAt(slot - 1);
    if (n.parent == parent && n.component == component) {
      return (slot - 1) * kShards + shard_idx;
    }
    i = (i + 1) & mask;
  }

  // Miss: build parent + "/" + escaped(component) into the shard arena.
  thread_local std::string scratch;
  scratch.clear();
  if (parent != kNoHandle) {
    const std::string_view parent_str = Resolve(parent);
    scratch.append(parent_str.data(), parent_str.size());
  }
  scratch.push_back('/');
  AppendPathComponent(&scratch, keys_->Resolve(component));

  const uint32_t local = shard.count;
  Node& n = shard.NodeSlot(local);
  char* data = shard.AllocArena(scratch.size());
  std::memcpy(data, scratch.data(), scratch.size());
  n.str = data;
  n.parent = parent;
  n.component = component;
  n.len = static_cast<uint32_t>(scratch.size());
  n.depth = parent == kNoHandle ? 1 : Depth(parent) + 1;
  shard.count += 1;
  shard.byte_count += scratch.size();
  shard.buckets[i] = local + 1;
  return local * kShards + shard_idx;
}

void PathDict::Components(PathHandle handle,
                          std::vector<KeyHandle>* out) const {
  out->clear();
  for (PathHandle h = handle; h != kNoHandle; h = Parent(h)) {
    out->push_back(LastKey(h));
  }
  std::reverse(out->begin(), out->end());
}

uint64_t PathDict::size() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.count;
  }
  return total;
}

uint64_t PathDict::bytes() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.byte_count;
  }
  return total;
}

// --- InternCore ------------------------------------------------------------

InternCore& InternCore::Global() {
  static InternCore* core = new InternCore();
  return *core;
}

namespace {

KeyHandle InternPrefixed(StringInterner& interner, char prefix,
                         std::string_view body) {
  thread_local std::string scratch;
  scratch.clear();
  scratch.reserve(body.size() + 1);
  scratch.push_back(prefix);
  scratch.append(body);
  return interner.Intern(scratch);
}

}  // namespace

KeyHandle InternElementKey(StringInterner& interner, std::string_view label) {
  return InternPrefixed(interner, kElementPrefix, label);
}

KeyHandle InternAttributeNameKey(StringInterner& interner,
                                 std::string_view name) {
  return InternPrefixed(interner, kAttributePrefix, name);
}

KeyHandle InternAttributeValueKey(StringInterner& interner,
                                  std::string_view name,
                                  std::string_view value) {
  thread_local std::string scratch;
  scratch.clear();
  scratch.reserve(name.size() + value.size() + 2);
  scratch.push_back(kAttributePrefix);
  scratch.append(name);
  scratch.push_back(' ');
  scratch.append(value);
  return interner.Intern(scratch);
}

KeyHandle InternWordKey(StringInterner& interner, std::string_view word) {
  return InternPrefixed(interner, kWordPrefix, word);
}

// --- Metrics ---------------------------------------------------------------

void PublishInternMetrics(common::MetricRegistry* registry,
                          const InternCore& core) {
  const InternStats stats = core.keys().Stats();
  registry->GetGauge("index.intern.keys")
      ->Set(static_cast<double>(stats.keys));
  registry->GetGauge("index.intern.bytes")
      ->Set(static_cast<double>(stats.bytes));
  registry->GetGauge("index.intern.lookups")
      ->Set(static_cast<double>(stats.lookups));
  registry->GetGauge("index.intern.paths")
      ->Set(static_cast<double>(core.paths().size()));
  registry->GetGauge("index.intern.path_bytes")
      ->Set(static_cast<double>(core.paths().bytes()));
  common::Histogram* probes =
      registry->GetHistogram("index.intern.probe_len");
  probes->Reset();
  for (int i = 0; i < InternStats::kProbeSlots; ++i) {
    probes->RecordN(static_cast<double>(i), stats.probe_len[i]);
  }
}

void PublishInternMetrics(common::MetricRegistry* registry) {
  PublishInternMetrics(registry, InternCore::Global());
}

}  // namespace webdex::index
