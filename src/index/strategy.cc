#include "index/strategy.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"
#include "index/key_twig.h"
#include "index/keys.h"
#include "index/path_match.h"
#include "index/twig_join.h"

namespace webdex::index {

const char* StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kLU:
      return "LU";
    case StrategyKind::kLUP:
      return "LUP";
    case StrategyKind::kLUI:
      return "LUI";
    case StrategyKind::k2LUPI:
      return "2LUPI";
  }
  return "?";
}

const std::vector<StrategyKind>& AllStrategyKinds() {
  static const std::vector<StrategyKind>* kinds =
      new std::vector<StrategyKind>{StrategyKind::kLU, StrategyKind::kLUP,
                                    StrategyKind::kLUI,
                                    StrategyKind::k2LUPI};
  return *kinds;
}

LookupStats& LookupStats::operator+=(const LookupStats& o) {
  keys_looked_up += o.keys_looked_up;
  items_fetched += o.items_fetched;
  bytes_fetched += o.bytes_fetched;
  uri_merge_ops += o.uri_merge_ops;
  paths_tested += o.paths_tested;
  twig_id_ops += o.twig_id_ops;
  return *this;
}

namespace {

using cloud::Item;
using cloud::KvStore;

// ---------------------------------------------------------------------------
// Item building (shared by all strategies)
// ---------------------------------------------------------------------------

/// Packs the (key, URI, values) entry into as few items as the store's
/// limits allow.  Every item gets a fresh client-side UUID range key so
/// concurrent loaders can write the same hash key without clobbering each
/// other (Section 6).
Result<std::vector<Item>> BuildEntryItems(const KvStore& store, Rng& rng,
                                          const std::string& key,
                                          const std::string& uri,
                                          const std::vector<std::string>& values) {
  std::vector<Item> items;
  const uint64_t fixed = key.size() + 36 /*uuid*/ + uri.size();
  const uint64_t max_item = store.MaxItemBytes();
  if (fixed + 64 > max_item) {
    return Status::InvalidArgument("index key too large for store: " + key);
  }
  Item current{key, rng.NextUuid(), {}};
  uint64_t current_bytes = fixed;
  uint64_t current_values = 0;
  auto flush = [&]() {
    if (current_values > 0) {
      items.push_back(std::move(current));
      current = Item{key, rng.NextUuid(), {}};
      current_bytes = fixed;
      current_values = 0;
    }
  };
  for (const std::string& value : values) {
    if (value.size() > store.MaxValueBytes()) {
      return Status::InvalidArgument(
          StrFormat("value of %zu bytes exceeds the store's %llu-byte "
                    "value limit (key %s)",
                    value.size(),
                    static_cast<unsigned long long>(store.MaxValueBytes()),
                    key.c_str()));
    }
    if (current_values + 1 > store.MaxValuesPerItem() ||
        current_bytes + value.size() > max_item) {
      flush();
    }
    current.attrs[uri].push_back(value);
    current_bytes += value.size();
    current_values += 1;
  }
  flush();
  return items;
}

/// Splits a document's sorted ID list into encoded blobs that respect the
/// store's value-size limit (with hex armouring for text-only stores).
std::vector<std::string> EncodeIdChunks(const KvStore& store,
                                        const std::vector<xml::NodeId>& ids) {
  const bool binary = store.SupportsBinaryValues();
  // Hex armouring doubles the encoded size.
  const uint64_t limit =
      binary ? store.MaxValueBytes() : store.MaxValueBytes() / 2;
  std::vector<std::string> chunks;
  std::string blob;
  for (const auto& id : ids) {
    std::string encoded = EncodeIds({id});
    if (!blob.empty() && blob.size() + encoded.size() > limit) {
      chunks.push_back(binary ? blob : HexArmour(blob));
      blob.clear();
    }
    blob += encoded;
  }
  if (!blob.empty()) chunks.push_back(binary ? blob : HexArmour(blob));
  return chunks;
}

/// Front-codes a sorted path list into blobs that respect the store's
/// value-size limit (Section 8.5 extension).  Each chunk restarts the
/// front coding so chunks decode independently.
std::vector<std::string> EncodePathChunks(
    const KvStore& store, const std::vector<std::string>& paths) {
  const bool binary = store.SupportsBinaryValues();
  const uint64_t limit =
      binary ? store.MaxValueBytes() : store.MaxValueBytes() / 2;
  std::vector<std::string> chunks;
  std::vector<std::string> group;
  uint64_t group_bytes = 0;
  auto flush = [&]() {
    if (group.empty()) return;
    const std::string blob = EncodePaths(group);
    chunks.push_back(binary ? blob : HexArmour(blob));
    group.clear();
    group_bytes = 0;
  };
  for (const auto& path : paths) {
    // Worst case the path is stored in full plus two varints.
    if (!group.empty() && group_bytes + path.size() + 10 > limit) flush();
    group_bytes += path.size() + 10;
    group.push_back(path);
  }
  flush();
  return chunks;
}

// ---------------------------------------------------------------------------
// Fetch + merge (shared look-up front end)
// ---------------------------------------------------------------------------

/// Merged view of everything the index holds for a set of keys:
/// key -> URI -> concatenated attribute values.
using FetchedEntries =
    std::map<std::string, std::map<std::string, std::vector<std::string>>>;

Result<FetchedEntries> FetchEntries(cloud::SimAgent& agent, KvStore& store,
                                    const std::string& table,
                                    const std::vector<std::string>& keys,
                                    LookupStats* stats) {
  FetchedEntries merged;
  auto fetched = store.BatchGet(agent, table, keys);
  if (!fetched.ok()) return fetched.status();
  stats->keys_looked_up += keys.size();
  for (const Item& item : fetched.value()) {
    stats->items_fetched += 1;
    stats->bytes_fetched += item.SizeBytes();
    auto& per_uri = merged[item.hash_key];
    for (const auto& [uri, values] : item.attrs) {
      auto& dst = per_uri[uri];
      dst.insert(dst.end(), values.begin(), values.end());
    }
  }
  return merged;
}

std::vector<std::string> SortedUris(const std::set<std::string>& uris) {
  return {uris.begin(), uris.end()};
}

/// Intersects URI sets across all `keys` of `entries` (the LU merge).
std::set<std::string> IntersectUris(const FetchedEntries& entries,
                                    const std::vector<std::string>& keys,
                                    LookupStats* stats) {
  std::set<std::string> result;
  bool first = true;
  for (const std::string& key : keys) {
    auto it = entries.find(key);
    if (it == entries.end()) return {};
    std::set<std::string> uris;
    for (const auto& [uri, values] : it->second) {
      (void)values;
      uris.insert(uri);
    }
    stats->uri_merge_ops += uris.size();
    if (first) {
      result = std::move(uris);
      first = false;
    } else {
      std::set<std::string> next;
      std::set_intersection(result.begin(), result.end(), uris.begin(),
                            uris.end(), std::inserter(next, next.begin()));
      result = std::move(next);
    }
    if (result.empty()) return {};
  }
  return result;
}

/// The LUP look-up core (also 2LUPI's first phase): intersects, over all
/// query paths, the URIs having a matching stored data path.
Result<std::set<std::string>> LookupByPaths(cloud::SimAgent& agent,
                                            KvStore& store,
                                            const std::string& table,
                                            const KeyTwig& twig,
                                            const ExtractOptions& options,
                                            LookupStats* stats) {
  const std::vector<QueryPath> query_paths = BuildQueryPaths(twig);
  std::vector<std::string> lookup_keys;
  for (const auto& path : query_paths) {
    if (std::find(lookup_keys.begin(), lookup_keys.end(),
                  path.LookupKey()) == lookup_keys.end()) {
      lookup_keys.push_back(path.LookupKey());
    }
  }
  WEBDEX_ASSIGN_OR_RETURN(
      FetchedEntries entries,
      FetchEntries(agent, store, table, lookup_keys, stats));

  std::set<std::string> result;
  bool first = true;
  for (const QueryPath& query_path : query_paths) {
    auto it = entries.find(query_path.LookupKey());
    if (it == entries.end()) return std::set<std::string>{};
    std::set<std::string> uris;
    for (const auto& [uri, values] : it->second) {
      // Values are either plain paths or front-coded path blobs,
      // depending on how the index was built.
      bool matched = false;
      for (const std::string& value : values) {
        if (matched) break;
        if (options.compress_paths) {
          std::string raw = value;
          if (!store.SupportsBinaryValues()) {
            WEBDEX_ASSIGN_OR_RETURN(raw, HexDearmour(value));
          }
          WEBDEX_ASSIGN_OR_RETURN(std::vector<std::string> data_paths,
                                  DecodePaths(raw));
          for (const std::string& data_path : data_paths) {
            stats->paths_tested += 1;
            if (PathMatches(query_path, data_path)) {
              matched = true;
              break;
            }
          }
        } else {
          stats->paths_tested += 1;
          if (PathMatches(query_path, value)) matched = true;
        }
      }
      if (matched) uris.insert(uri);
    }
    stats->uri_merge_ops += uris.size();
    if (first) {
      result = std::move(uris);
      first = false;
    } else {
      std::set<std::string> next;
      std::set_intersection(result.begin(), result.end(), uris.begin(),
                            uris.end(), std::inserter(next, next.begin()));
      result = std::move(next);
    }
    if (result.empty()) return std::set<std::string>{};
  }
  return result;
}

/// The LUI look-up core (also 2LUPI's second phase): decodes per-URI ID
/// lists and runs the holistic twig join.  When `restrict_to` is
/// non-null, URIs outside it are skipped — the 2LUPI semijoin reduction
/// of Figure 5.
Result<std::set<std::string>> LookupByIds(
    cloud::SimAgent& agent, KvStore& store, const std::string& table,
    const KeyTwig& twig, const std::set<std::string>* restrict_to,
    LookupStats* stats) {
  const std::vector<std::string> keys = twig.DistinctKeys();
  WEBDEX_ASSIGN_OR_RETURN(FetchedEntries entries,
                          FetchEntries(agent, store, table, keys, stats));

  // Candidate URIs: those present for every key (any absent key ->
  // document cannot embed the twig), further reduced by `restrict_to`.
  std::set<std::string> candidates = IntersectUris(entries, keys, stats);
  if (restrict_to != nullptr) {
    std::set<std::string> reduced;
    std::set_intersection(candidates.begin(), candidates.end(),
                          restrict_to->begin(), restrict_to->end(),
                          std::inserter(reduced, reduced.begin()));
    stats->uri_merge_ops += candidates.size();
    candidates = std::move(reduced);
  }

  // Decode ID lists per (key, URI).
  const bool binary = store.SupportsBinaryValues();
  std::map<std::string, std::map<std::string, std::vector<xml::NodeId>>>
      ids_by_key_uri;
  for (const std::string& key : keys) {
    auto entry_it = entries.find(key);
    if (entry_it == entries.end()) return std::set<std::string>{};
    for (const auto& [uri, blobs] : entry_it->second) {
      if (candidates.count(uri) == 0) continue;
      std::vector<xml::NodeId> ids;
      for (const std::string& blob : blobs) {
        std::string raw = blob;
        if (!binary) {
          WEBDEX_ASSIGN_OR_RETURN(raw, HexDearmour(blob));
        }
        WEBDEX_ASSIGN_OR_RETURN(std::vector<xml::NodeId> chunk,
                                DecodeIds(raw));
        ids.insert(ids.end(), chunk.begin(), chunk.end());
      }
      // Single blobs are already sorted by pre (kept sorted at indexing
      // time, Section 5.3); chunked entries may arrive in any range-key
      // order, so restore the order chunk-wise.
      if (blobs.size() > 1) {
        std::sort(ids.begin(), ids.end());
        stats->twig_id_ops += ids.size();
      }
      ids_by_key_uri[key][uri] = std::move(ids);
    }
  }

  // Holistic twig join per candidate document.
  const std::vector<const TwigNode*> twig_nodes = twig.Nodes();
  std::set<std::string> result;
  for (const std::string& uri : candidates) {
    TwigInputs inputs;
    bool complete = true;
    for (const TwigNode* node : twig_nodes) {
      auto key_it = ids_by_key_uri.find(node->key);
      if (key_it == ids_by_key_uri.end()) {
        complete = false;
        break;
      }
      auto uri_it = key_it->second.find(uri);
      if (uri_it == key_it->second.end() || uri_it->second.empty()) {
        complete = false;
        break;
      }
      inputs[node] = uri_it->second;
    }
    if (!complete) continue;
    TwigJoinStats twig_stats;
    const bool matched = TwigMatch(twig, inputs, &twig_stats);
    stats->twig_id_ops += twig_stats.id_ops;
    if (matched) result.insert(uri);
  }
  return result;
}

// ---------------------------------------------------------------------------
// The four strategies
// ---------------------------------------------------------------------------

class LuStrategy final : public IndexingStrategy {
 public:
  StrategyKind kind() const override { return StrategyKind::kLU; }
  std::vector<std::string> TableNames() const override { return {"idx-lu"}; }

  Result<std::vector<TableItems>> ExtractItems(
      const xml::Document& doc, const ExtractOptions& options,
      const KvStore& store, Rng& uuid_rng,
      ExtractStats* stats) const override {
    const DocIndex index = ExtractDocIndex(doc, options);
    TableItems out{"idx-lu", {}};
    for (const auto& [key, entry] : index) {
      (void)entry;
      // I_LU(d) = {(key(n), (URI(d), epsilon))} — Table 2.
      WEBDEX_ASSIGN_OR_RETURN(
          std::vector<Item> items,
          BuildEntryItems(store, uuid_rng, key, doc.uri(), {""}));
      for (auto& item : items) {
        stats->payload_bytes += item.SizeBytes();
        out.items.push_back(std::move(item));
      }
      stats->entries += 1;
    }
    stats->items += out.items.size();
    std::vector<TableItems> result;
    result.push_back(std::move(out));
    return result;
  }

  Result<std::vector<std::string>> LookupPattern(
      cloud::SimAgent& agent, KvStore& store,
      const query::TreePattern& pattern, const ExtractOptions& options,
      LookupStats* stats) const override {
    const KeyTwig twig = BuildKeyTwig(pattern, options.include_words);
    const std::vector<std::string> keys = twig.DistinctKeys();
    WEBDEX_ASSIGN_OR_RETURN(
        FetchedEntries entries,
        FetchEntries(agent, store, "idx-lu", keys, stats));
    return SortedUris(IntersectUris(entries, keys, stats));
  }
};

class LupStrategy final : public IndexingStrategy {
 public:
  StrategyKind kind() const override { return StrategyKind::kLUP; }
  std::vector<std::string> TableNames() const override {
    return {"idx-lup"};
  }

  Result<std::vector<TableItems>> ExtractItems(
      const xml::Document& doc, const ExtractOptions& options,
      const KvStore& store, Rng& uuid_rng,
      ExtractStats* stats) const override {
    const DocIndex index = ExtractDocIndex(doc, options);
    TableItems out{"idx-lup", {}};
    for (const auto& [key, entry] : index) {
      // I_LUP(d) = {(key(n), (URI(d), {inPath_1(n) ... inPath_y(n)}))};
      // optionally front-coded (Section 8.5 extension).
      WEBDEX_ASSIGN_OR_RETURN(
          std::vector<Item> items,
          BuildEntryItems(store, uuid_rng, key, doc.uri(),
                          options.compress_paths
                              ? EncodePathChunks(store, entry.paths)
                              : entry.paths));
      for (auto& item : items) {
        stats->payload_bytes += item.SizeBytes();
        out.items.push_back(std::move(item));
      }
      stats->entries += 1;
    }
    stats->items += out.items.size();
    std::vector<TableItems> result;
    result.push_back(std::move(out));
    return result;
  }

  Result<std::vector<std::string>> LookupPattern(
      cloud::SimAgent& agent, KvStore& store,
      const query::TreePattern& pattern, const ExtractOptions& options,
      LookupStats* stats) const override {
    const KeyTwig twig = BuildKeyTwig(pattern, options.include_words);
    WEBDEX_ASSIGN_OR_RETURN(
        std::set<std::string> uris,
        LookupByPaths(agent, store, "idx-lup", twig, options, stats));
    return SortedUris(uris);
  }
};

class LuiStrategy final : public IndexingStrategy {
 public:
  StrategyKind kind() const override { return StrategyKind::kLUI; }
  std::vector<std::string> TableNames() const override {
    return {"idx-lui"};
  }

  Result<std::vector<TableItems>> ExtractItems(
      const xml::Document& doc, const ExtractOptions& options,
      const KvStore& store, Rng& uuid_rng,
      ExtractStats* stats) const override {
    const DocIndex index = ExtractDocIndex(doc, options);
    TableItems out{"idx-lui", {}};
    for (const auto& [key, entry] : index) {
      // I_LUI(d) = {(key(n), (URI(d), id_1(n)‖id_2(n)‖...‖id_z(n)))} with
      // IDs pre-sorted so the twig join needs no sort (Section 5.3).
      WEBDEX_ASSIGN_OR_RETURN(
          std::vector<Item> items,
          BuildEntryItems(store, uuid_rng, key, doc.uri(),
                          EncodeIdChunks(store, entry.ids)));
      for (auto& item : items) {
        stats->payload_bytes += item.SizeBytes();
        out.items.push_back(std::move(item));
      }
      stats->entries += 1;
    }
    stats->items += out.items.size();
    std::vector<TableItems> result;
    result.push_back(std::move(out));
    return result;
  }

  Result<std::vector<std::string>> LookupPattern(
      cloud::SimAgent& agent, KvStore& store,
      const query::TreePattern& pattern, const ExtractOptions& options,
      LookupStats* stats) const override {
    const KeyTwig twig = BuildKeyTwig(pattern, options.include_words);
    WEBDEX_ASSIGN_OR_RETURN(
        std::set<std::string> uris,
        LookupByIds(agent, store, "idx-lui", twig, nullptr, stats));
    return SortedUris(uris);
  }
};

class TwoLupiStrategy final : public IndexingStrategy {
 public:
  StrategyKind kind() const override { return StrategyKind::k2LUPI; }
  std::vector<std::string> TableNames() const override {
    return {"idx-2lupi-paths", "idx-2lupi-ids"};
  }

  Result<std::vector<TableItems>> ExtractItems(
      const xml::Document& doc, const ExtractOptions& options,
      const KvStore& store, Rng& uuid_rng,
      ExtractStats* stats) const override {
    const DocIndex index = ExtractDocIndex(doc, options);
    TableItems paths_out{"idx-2lupi-paths", {}};
    TableItems ids_out{"idx-2lupi-ids", {}};
    for (const auto& [key, entry] : index) {
      WEBDEX_ASSIGN_OR_RETURN(
          std::vector<Item> path_items,
          BuildEntryItems(store, uuid_rng, key, doc.uri(),
                          options.compress_paths
                              ? EncodePathChunks(store, entry.paths)
                              : entry.paths));
      for (auto& item : path_items) {
        stats->payload_bytes += item.SizeBytes();
        paths_out.items.push_back(std::move(item));
      }
      WEBDEX_ASSIGN_OR_RETURN(
          std::vector<Item> id_items,
          BuildEntryItems(store, uuid_rng, key, doc.uri(),
                          EncodeIdChunks(store, entry.ids)));
      for (auto& item : id_items) {
        stats->payload_bytes += item.SizeBytes();
        ids_out.items.push_back(std::move(item));
      }
      stats->entries += 1;
    }
    stats->items += paths_out.items.size() + ids_out.items.size();
    std::vector<TableItems> result;
    result.push_back(std::move(paths_out));
    result.push_back(std::move(ids_out));
    return result;
  }

  Result<std::vector<std::string>> LookupPattern(
      cloud::SimAgent& agent, KvStore& store,
      const query::TreePattern& pattern, const ExtractOptions& options,
      LookupStats* stats) const override {
    const KeyTwig twig = BuildKeyTwig(pattern, options.include_words);
    // Phase 1 (Figure 5, left): path look-up -> R1(URI).
    WEBDEX_ASSIGN_OR_RETURN(
        std::set<std::string> r1,
        LookupByPaths(agent, store, "idx-2lupi-paths", twig, options,
                      stats));
    if (r1.empty()) return std::vector<std::string>{};
    // Phase 2: ID look-up semijoin-reduced by R1, then holistic twig join.
    WEBDEX_ASSIGN_OR_RETURN(
        std::set<std::string> uris,
        LookupByIds(agent, store, "idx-2lupi-ids", twig, &r1, stats));
    return SortedUris(uris);
  }
};

}  // namespace

std::unique_ptr<IndexingStrategy> IndexingStrategy::Create(
    StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kLU:
      return std::make_unique<LuStrategy>();
    case StrategyKind::kLUP:
      return std::make_unique<LupStrategy>();
    case StrategyKind::kLUI:
      return std::make_unique<LuiStrategy>();
    case StrategyKind::k2LUPI:
      return std::make_unique<TwoLupiStrategy>();
  }
  return nullptr;
}

}  // namespace webdex::index
