#include "index/strategy.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"
#include "index/generation.h"
#include "index/key_twig.h"
#include "index/lookup_paths.h"
#include "index/keys.h"
#include "index/path_match.h"
#include "index/twig_join.h"

namespace webdex::index {

const char* StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kLU:
      return "LU";
    case StrategyKind::kLUP:
      return "LUP";
    case StrategyKind::kLUI:
      return "LUI";
    case StrategyKind::k2LUPI:
      return "2LUPI";
  }
  return "?";
}

const std::vector<StrategyKind>& AllStrategyKinds() {
  static const std::vector<StrategyKind>* kinds =
      new std::vector<StrategyKind>{StrategyKind::kLU, StrategyKind::kLUP,
                                    StrategyKind::kLUI,
                                    StrategyKind::k2LUPI};
  return *kinds;
}

LookupStats& LookupStats::operator+=(const LookupStats& o) {
  keys_looked_up += o.keys_looked_up;
  items_fetched += o.items_fetched;
  bytes_fetched += o.bytes_fetched;
  uri_merge_ops += o.uri_merge_ops;
  paths_tested += o.paths_tested;
  twig_id_ops += o.twig_id_ops;
  return *this;
}

namespace {

using cloud::Item;
using cloud::KvStore;

// ---------------------------------------------------------------------------
// Item building (shared by all strategies)
// ---------------------------------------------------------------------------

/// Packs the (key, URI, values) entry into as few items as the store's
/// limits allow.  Every item gets a fresh client-side UUID range key so
/// concurrent loaders can write the same hash key without clobbering each
/// other (Section 6).  `key` and `values` are views into the DocIndex
/// slabs / intern arenas; bytes are copied only once, into the items.
///
/// A generation > 0 (an upsert — index/generation.h) stamps every built
/// item with a kGenAttr attribute; its bytes are part of `fixed` so the
/// packing respects MaxItemBytes with the stamp included.  Generation 0
/// emits exactly the pre-mutability item layout.
Result<std::vector<Item>> BuildEntryItems(
    const KvStore& store, Rng& rng, std::string_view key,
    const std::string& uri, uint64_t generation,
    const std::vector<std::string_view>& values) {
  std::vector<Item> items;
  const std::string stamp =
      generation > 0
          ? StrFormat("%llu", static_cast<unsigned long long>(generation))
          : std::string();
  const uint64_t stamp_bytes =
      generation > 0 ? sizeof(kGenAttr) - 1 + stamp.size() : 0;
  const uint64_t fixed = key.size() + 36 /*uuid*/ + uri.size() + stamp_bytes;
  const uint64_t max_item = store.MaxItemBytes();
  if (fixed + 64 > max_item) {
    return Status::InvalidArgument("index key too large for store: " +
                                   std::string(key));
  }
  auto fresh = [&]() {
    Item item{std::string(key), rng.NextUuid(), {}};
    if (generation > 0) item.attrs[kGenAttr] = {stamp};
    return item;
  };
  Item current = fresh();
  uint64_t current_bytes = fixed;
  uint64_t current_values = 0;
  auto flush = [&]() {
    if (current_values > 0) {
      items.push_back(std::move(current));
      current = fresh();
      current_bytes = fixed;
      current_values = 0;
    }
  };
  for (const std::string_view value : values) {
    if (value.size() > store.MaxValueBytes()) {
      return Status::InvalidArgument(
          StrFormat("value of %zu bytes exceeds the store's %llu-byte "
                    "value limit (key %s)",
                    value.size(),
                    static_cast<unsigned long long>(store.MaxValueBytes()),
                    std::string(key).c_str()));
    }
    if (current_values + 1 > store.MaxValuesPerItem() ||
        current_bytes + value.size() > max_item) {
      flush();
    }
    current.attrs[uri].emplace_back(value);
    current_bytes += value.size();
    current_values += 1;
  }
  flush();
  return items;
}

/// Splits a document's sorted ID list into encoded blobs that respect the
/// store's value-size limit (with hex armouring for text-only stores).
std::vector<std::string> EncodeIdChunks(const KvStore& store,
                                        const xml::NodeId* ids,
                                        uint32_t count) {
  const bool binary = store.SupportsBinaryValues();
  // Hex armouring doubles the encoded size.
  const uint64_t limit =
      binary ? store.MaxValueBytes() : store.MaxValueBytes() / 2;
  std::vector<std::string> chunks;
  std::string blob;
  std::string one;
  for (uint32_t i = 0; i < count; ++i) {
    one.clear();
    AppendEncodedId(&one, ids[i]);
    if (!blob.empty() && blob.size() + one.size() > limit) {
      chunks.push_back(binary ? blob : HexArmour(blob));
      blob.clear();
    }
    blob += one;
  }
  if (!blob.empty()) chunks.push_back(binary ? blob : HexArmour(blob));
  return chunks;
}

/// Front-codes a sorted path list into blobs that respect the store's
/// value-size limit (Section 8.5 extension).  Each chunk restarts the
/// front coding so chunks decode independently.
std::vector<std::string> EncodePathChunks(
    const KvStore& store, const std::vector<std::string_view>& paths) {
  const bool binary = store.SupportsBinaryValues();
  const uint64_t limit =
      binary ? store.MaxValueBytes() : store.MaxValueBytes() / 2;
  std::vector<std::string> chunks;
  std::vector<std::string_view> group;
  uint64_t group_bytes = 0;
  auto flush = [&]() {
    if (group.empty()) return;
    const std::string blob = EncodePathViews(group);
    chunks.push_back(binary ? blob : HexArmour(blob));
    group.clear();
    group_bytes = 0;
  };
  for (const std::string_view path : paths) {
    // Worst case the path is stored in full plus two varints.
    if (!group.empty() && group_bytes + path.size() + 10 > limit) flush();
    group_bytes += path.size() + 10;
    group.push_back(path);
  }
  flush();
  return chunks;
}

/// Resolves one entry's path handles into views (reusing `*out`).
void EntryPathViews(const DocIndex& index, const DocIndex::Entry& entry,
                    std::vector<std::string_view>* out) {
  out->clear();
  out->reserve(entry.path_count);
  const PathHandle* handles = index.paths(entry);
  for (uint32_t i = 0; i < entry.path_count; ++i) {
    out->push_back(index.path(handles[i]));
  }
}

// ---------------------------------------------------------------------------
// The four strategies
// ---------------------------------------------------------------------------

class LuStrategy final : public IndexingStrategy {
 public:
  StrategyKind kind() const override { return StrategyKind::kLU; }
  std::vector<std::string> TableNames() const override { return {"idx-lu"}; }

  Result<std::vector<TableItems>> ExtractItems(
      const xml::Document& doc, const DocIndex& index,
      const ExtractOptions& options, const KvStore& store, Rng& uuid_rng,
      ExtractStats* stats) const override {
    TableItems out{"idx-lu", {}};
    const std::vector<std::string_view> empty_value{""};
    for (const auto& entry : index.entries()) {
      // I_LU(d) = {(key(n), (URI(d), epsilon))} — Table 2.
      WEBDEX_ASSIGN_OR_RETURN(
          std::vector<Item> items,
          BuildEntryItems(store, uuid_rng, index.key(entry), doc.uri(),
                          options.generation, empty_value));
      for (auto& item : items) {
        stats->payload_bytes += item.SizeBytes();
        out.items.push_back(std::move(item));
      }
      stats->entries += 1;
    }
    stats->items += out.items.size();
    std::vector<TableItems> result;
    result.push_back(std::move(out));
    return result;
  }

  Result<std::vector<std::string>> LookupPattern(
      cloud::SimAgent& agent, KvStore& store,
      const query::TreePattern& pattern, const ExtractOptions& options,
      LookupStats* stats, const GenerationMap* view) const override {
    const KeyTwig twig = BuildKeyTwig(pattern, options.include_words);
    const std::vector<std::string> keys = twig.DistinctKeys();
    WEBDEX_ASSIGN_OR_RETURN(
        FetchedEntries entries,
        FetchEntries(agent, store, "idx-lu", keys, stats, view));
    return SortedUris(IntersectUris(entries, keys, stats));
  }
};

class LupStrategy final : public IndexingStrategy {
 public:
  StrategyKind kind() const override { return StrategyKind::kLUP; }
  std::vector<std::string> TableNames() const override {
    return {"idx-lup"};
  }

  Result<std::vector<TableItems>> ExtractItems(
      const xml::Document& doc, const DocIndex& index,
      const ExtractOptions& options, const KvStore& store, Rng& uuid_rng,
      ExtractStats* stats) const override {
    TableItems out{"idx-lup", {}};
    std::vector<std::string_view> path_views;
    std::vector<std::string> encoded;
    std::vector<std::string_view> encoded_views;
    for (const auto& entry : index.entries()) {
      // I_LUP(d) = {(key(n), (URI(d), {inPath_1(n) ... inPath_y(n)}))};
      // optionally front-coded (Section 8.5 extension).
      EntryPathViews(index, entry, &path_views);
      if (options.compress_paths) {
        encoded = EncodePathChunks(store, path_views);
        encoded_views.assign(encoded.begin(), encoded.end());
      }
      WEBDEX_ASSIGN_OR_RETURN(
          std::vector<Item> items,
          BuildEntryItems(store, uuid_rng, index.key(entry), doc.uri(),
                          options.generation,
                          options.compress_paths ? encoded_views
                                                 : path_views));
      for (auto& item : items) {
        stats->payload_bytes += item.SizeBytes();
        out.items.push_back(std::move(item));
      }
      stats->entries += 1;
    }
    stats->items += out.items.size();
    std::vector<TableItems> result;
    result.push_back(std::move(out));
    return result;
  }

  Result<std::vector<std::string>> LookupPattern(
      cloud::SimAgent& agent, KvStore& store,
      const query::TreePattern& pattern, const ExtractOptions& options,
      LookupStats* stats, const GenerationMap* view) const override {
    const KeyTwig twig = BuildKeyTwig(pattern, options.include_words);
    WEBDEX_ASSIGN_OR_RETURN(
        std::set<std::string> uris,
        LookupByPaths(agent, store, "idx-lup", twig, options, stats,
                      view));
    return SortedUris(uris);
  }
};

class LuiStrategy final : public IndexingStrategy {
 public:
  StrategyKind kind() const override { return StrategyKind::kLUI; }
  std::vector<std::string> TableNames() const override {
    return {"idx-lui"};
  }

  Result<std::vector<TableItems>> ExtractItems(
      const xml::Document& doc, const DocIndex& index,
      const ExtractOptions& options, const KvStore& store, Rng& uuid_rng,
      ExtractStats* stats) const override {
    TableItems out{"idx-lui", {}};
    std::vector<std::string> encoded;
    std::vector<std::string_view> encoded_views;
    for (const auto& entry : index.entries()) {
      // I_LUI(d) = {(key(n), (URI(d), id_1(n)‖id_2(n)‖...‖id_z(n)))} with
      // IDs pre-sorted so the twig join needs no sort (Section 5.3).
      encoded = EncodeIdChunks(store, index.ids(entry), entry.id_count);
      encoded_views.assign(encoded.begin(), encoded.end());
      WEBDEX_ASSIGN_OR_RETURN(
          std::vector<Item> items,
          BuildEntryItems(store, uuid_rng, index.key(entry), doc.uri(),
                          options.generation, encoded_views));
      for (auto& item : items) {
        stats->payload_bytes += item.SizeBytes();
        out.items.push_back(std::move(item));
      }
      stats->entries += 1;
    }
    stats->items += out.items.size();
    std::vector<TableItems> result;
    result.push_back(std::move(out));
    return result;
  }

  Result<std::vector<std::string>> LookupPattern(
      cloud::SimAgent& agent, KvStore& store,
      const query::TreePattern& pattern, const ExtractOptions& options,
      LookupStats* stats, const GenerationMap* view) const override {
    const KeyTwig twig = BuildKeyTwig(pattern, options.include_words);
    WEBDEX_ASSIGN_OR_RETURN(
        std::set<std::string> uris,
        LookupByIds(agent, store, "idx-lui", twig, nullptr, stats, view));
    return SortedUris(uris);
  }
};

class TwoLupiStrategy final : public IndexingStrategy {
 public:
  StrategyKind kind() const override { return StrategyKind::k2LUPI; }
  std::vector<std::string> TableNames() const override {
    return {"idx-2lupi-paths", "idx-2lupi-ids"};
  }

  Result<std::vector<TableItems>> ExtractItems(
      const xml::Document& doc, const DocIndex& index,
      const ExtractOptions& options, const KvStore& store, Rng& uuid_rng,
      ExtractStats* stats) const override {
    TableItems paths_out{"idx-2lupi-paths", {}};
    TableItems ids_out{"idx-2lupi-ids", {}};
    std::vector<std::string_view> path_views;
    std::vector<std::string> encoded;
    std::vector<std::string_view> encoded_views;
    for (const auto& entry : index.entries()) {
      EntryPathViews(index, entry, &path_views);
      if (options.compress_paths) {
        encoded = EncodePathChunks(store, path_views);
        encoded_views.assign(encoded.begin(), encoded.end());
      }
      WEBDEX_ASSIGN_OR_RETURN(
          std::vector<Item> path_items,
          BuildEntryItems(store, uuid_rng, index.key(entry), doc.uri(),
                          options.generation,
                          options.compress_paths ? encoded_views
                                                 : path_views));
      for (auto& item : path_items) {
        stats->payload_bytes += item.SizeBytes();
        paths_out.items.push_back(std::move(item));
      }
      encoded = EncodeIdChunks(store, index.ids(entry), entry.id_count);
      encoded_views.assign(encoded.begin(), encoded.end());
      WEBDEX_ASSIGN_OR_RETURN(
          std::vector<Item> id_items,
          BuildEntryItems(store, uuid_rng, index.key(entry), doc.uri(),
                          options.generation, encoded_views));
      for (auto& item : id_items) {
        stats->payload_bytes += item.SizeBytes();
        ids_out.items.push_back(std::move(item));
      }
      stats->entries += 1;
    }
    stats->items += paths_out.items.size() + ids_out.items.size();
    std::vector<TableItems> result;
    result.push_back(std::move(paths_out));
    result.push_back(std::move(ids_out));
    return result;
  }

  Result<std::vector<std::string>> LookupPattern(
      cloud::SimAgent& agent, KvStore& store,
      const query::TreePattern& pattern, const ExtractOptions& options,
      LookupStats* stats, const GenerationMap* view) const override {
    const KeyTwig twig = BuildKeyTwig(pattern, options.include_words);
    // Phase 1 (Figure 5, left): path look-up -> R1(URI).
    WEBDEX_ASSIGN_OR_RETURN(
        std::set<std::string> r1,
        LookupByPaths(agent, store, "idx-2lupi-paths", twig, options,
                      stats, view));
    if (r1.empty()) return std::vector<std::string>{};
    // Phase 2: ID look-up semijoin-reduced by R1, then holistic twig join.
    WEBDEX_ASSIGN_OR_RETURN(
        std::set<std::string> uris,
        LookupByIds(agent, store, "idx-2lupi-ids", twig, &r1, stats,
                    view));
    return SortedUris(uris);
  }
};

}  // namespace

std::unique_ptr<IndexingStrategy> IndexingStrategy::Create(
    StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kLU:
      return std::make_unique<LuStrategy>();
    case StrategyKind::kLUP:
      return std::make_unique<LupStrategy>();
    case StrategyKind::kLUI:
      return std::make_unique<LuiStrategy>();
    case StrategyKind::k2LUPI:
      return std::make_unique<TwoLupiStrategy>();
  }
  return nullptr;
}

}  // namespace webdex::index
