#ifndef WEBDEX_INDEX_SUMMARY_H_
#define WEBDEX_INDEX_SUMMARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/entry.h"
#include "index/intern.h"
#include "index/path_match.h"
#include "index/strategy.h"
#include "query/tree_pattern.h"

namespace webdex::index {

/// DataGuide-style corpus summary: every distinct root-to-node label
/// path and every index key, with the number of documents containing
/// each.  This is the "data summaries and some statistical information"
/// of paper Section 8.5, with which the cases where LUI / 2LUPI look-ups
/// beat LUP "can be statically detected".
///
/// Counters are flat vectors indexed by interned handle (the native
/// index core, docs/PERFORMANCE.md): accounting a document is a handful
/// of vector bumps per entry instead of string-keyed map inserts, and
/// the summary stays tiny — distinct handles, not per-document entries.
/// Copyable (Warehouse::AdoptExistingData clones it); the InternCore it
/// indexes into is process-wide and immortal.
class PathSummary {
 public:
  PathSummary() : core_(&InternCore::Global()) {}
  /// Tests may pin a private core; it must outlive the summary.
  explicit PathSummary(const InternCore* core) : core_(core) {}

  /// Accounts one document's extracted index (each distinct path/key of
  /// the document counts once).  `index` must have been extracted into
  /// this summary's core.
  void AddDocument(const DocIndex& index);

  uint64_t documents() const { return documents_; }
  uint64_t distinct_paths() const { return distinct_paths_; }

  /// Documents containing at least one occurrence of `key` (0 if never
  /// seen).
  uint64_t DocsWithKey(const std::string& key) const;

  /// Documents containing a data path matching the query path — an
  /// upper-bound estimate of one linear branch's selectivity.
  uint64_t DocsMatchingPath(const QueryPath& path) const;

  /// Estimated documents an LU look-up would retrieve for the pattern
  /// (upper bound: the rarest key's document count).
  uint64_t EstimateLuDocs(const query::TreePattern& pattern) const;

  /// Estimated documents an LUP look-up would retrieve (upper bound:
  /// the rarest query path's document count).
  uint64_t EstimateLupDocs(const query::TreePattern& pattern) const;

  /// Expected documents under branch independence: |D| x prod_i (docs
  /// matching branch i / |D|).  When this is far below the LUP estimate,
  /// the branches co-occur rarely and only a structural join can prune.
  double EstimateIndependentCombination(
      const query::TreePattern& pattern) const;

  /// Damped-independence estimate of the documents surviving the
  /// holistic twig join (the LUI/2LUPI candidate set).  The naive
  /// independence product multiplies per-branch fractions that are in
  /// practice strongly correlated (the documents carrying a pattern's
  /// rarest branch usually carry the others too), which under-estimates
  /// by orders of magnitude and makes an ID-side look-up appear free.
  /// Exponential backoff — full weight on the most selective branch,
  /// square root on the next, fourth root on the third, ... — is the
  /// standard damping for conjuncts of unknown correlation; the query
  /// planner uses this estimate, while AdviseLookup keeps the raw
  /// product as the paper's Section 8.5 detector.
  double EstimateTwigJoinDocs(const query::TreePattern& pattern) const;

  struct Advice {
    /// kLUP or kLUI — which look-up the statistics favour for this
    /// pattern (2LUPI behaves like LUI with extra pre-filtering).
    StrategyKind lookup = StrategyKind::kLUP;
    std::string reason;
  };

  /// The paper's Section 8.5 criterion, made executable: favour LUI when
  /// the pattern is multi-branched, its individual linear paths are
  /// common, and their expected co-occurrence is far rarer — i.e. "most
  /// of the documents only match linear paths of the query".  Favour LUP
  /// otherwise (the paper's measured default winner).
  Advice AdviseLookup(const query::TreePattern& pattern) const;

 private:
  uint64_t CountAt(const std::vector<uint64_t>& counts, uint32_t handle) const {
    return handle < counts.size() ? counts[handle] : 0;
  }
  void Bump(std::vector<uint64_t>* counts, uint32_t handle) {
    if (handle >= counts->size()) counts->resize(handle + 1, 0);
    (*counts)[handle] += 1;
  }

  const InternCore* core_;
  uint64_t documents_ = 0;
  uint64_t distinct_paths_ = 0;
  /// Indexed by KeyHandle / PathHandle.
  std::vector<uint64_t> docs_per_key_;
  std::vector<uint64_t> docs_per_path_;
  /// lookup key (last path component) -> distinct data paths ending in
  /// it, for DocsMatchingPath without a full scan.
  std::vector<std::vector<PathHandle>> paths_by_last_key_;
};

}  // namespace webdex::index

#endif  // WEBDEX_INDEX_SUMMARY_H_
