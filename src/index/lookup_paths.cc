#include "index/lookup_paths.h"

#include <algorithm>

#include "index/keys.h"
#include "index/path_match.h"
#include "index/twig_join.h"

namespace webdex::index {

using cloud::Item;
using cloud::KvStore;

Result<FetchedEntries> FetchEntries(cloud::SimAgent& agent, KvStore& store,
                                    const std::string& table,
                                    const std::vector<std::string>& keys,
                                    LookupStats* stats,
                                    const GenerationMap* view) {
  FetchedEntries merged;
  auto fetched = store.BatchGet(agent, table, keys);
  if (!fetched.ok()) return fetched.status();
  stats->keys_looked_up += keys.size();
  for (const Item& item : fetched.value()) {
    // Fetched items are billed whether or not the generation filter
    // keeps them — superseded postings cost reads until compacted.
    stats->items_fetched += 1;
    stats->bytes_fetched += item.SizeBytes();
    const uint64_t stamp = StampOf(item.attrs);
    for (const auto& [uri, values] : item.attrs) {
      if (uri == kGenAttr) continue;  // reserved stamp, not an owner URI
      if (view != nullptr && !view->Visible(uri, stamp)) continue;
      auto& dst = merged[item.hash_key][uri];
      dst.insert(dst.end(), values.begin(), values.end());
    }
  }
  return merged;
}

std::vector<std::string> SortedUris(const std::set<std::string>& uris) {
  return {uris.begin(), uris.end()};
}

std::set<std::string> IntersectUris(const FetchedEntries& entries,
                                    const std::vector<std::string>& keys,
                                    LookupStats* stats) {
  std::set<std::string> result;
  bool first = true;
  for (const std::string& key : keys) {
    auto it = entries.find(key);
    if (it == entries.end()) return {};
    std::set<std::string> uris;
    for (const auto& [uri, values] : it->second) {
      (void)values;
      uris.insert(uri);
    }
    stats->uri_merge_ops += uris.size();
    if (first) {
      result = std::move(uris);
      first = false;
    } else {
      std::set<std::string> next;
      std::set_intersection(result.begin(), result.end(), uris.begin(),
                            uris.end(), std::inserter(next, next.begin()));
      result = std::move(next);
    }
    if (result.empty()) return {};
  }
  return result;
}

Result<std::set<std::string>> LookupByKeys(cloud::SimAgent& agent,
                                           KvStore& store,
                                           const std::string& table,
                                           const KeyTwig& twig,
                                           LookupStats* stats,
                                           const GenerationMap* view) {
  const std::vector<std::string> keys = twig.DistinctKeys();
  WEBDEX_ASSIGN_OR_RETURN(
      FetchedEntries entries,
      FetchEntries(agent, store, table, keys, stats, view));
  return IntersectUris(entries, keys, stats);
}

std::vector<std::string> PathLookupKeys(const KeyTwig& twig) {
  const std::vector<QueryPath> query_paths = BuildQueryPaths(twig);
  std::vector<std::string> lookup_keys;
  for (const auto& path : query_paths) {
    if (std::find(lookup_keys.begin(), lookup_keys.end(),
                  path.LookupKey()) == lookup_keys.end()) {
      lookup_keys.push_back(path.LookupKey());
    }
  }
  return lookup_keys;
}

namespace {

/// Splits `path` appending into a shared component buffer; `storage` must
/// have been reserved for every path it will ever hold (unescaping only
/// shrinks), so earlier views never dangle.
void SplitPathAppend(std::string_view path, std::string* storage,
                     std::vector<std::string_view>* out) {
  size_t start = path.empty() || path[0] != '/' ? 0 : 1;
  while (start <= path.size()) {
    size_t end = path.find('/', start);
    if (end == std::string_view::npos) end = path.size();
    std::string_view raw = path.substr(start, end - start);
    if (raw.find('%') == std::string_view::npos) {
      out->push_back(raw);
    } else {
      const size_t storage_start = storage->size();
      for (size_t i = 0; i < raw.size(); ++i) {
        if (raw[i] == '%' && i + 2 < raw.size()) {
          if (raw.substr(i, 3) == "%2F") {
            storage->push_back('/');
            i += 2;
            continue;
          }
          if (raw.substr(i, 3) == "%25") {
            storage->push_back('%');
            i += 2;
            continue;
          }
        }
        storage->push_back(raw[i]);
      }
      out->push_back(std::string_view(*storage).substr(storage_start));
    }
    if (end == path.size()) break;
    start = end + 1;
  }
}

/// One stored attribute value, decoded and split at most once even when
/// several query paths share the same lookup key.  Decoding stays lazy —
/// a value the legacy loop never reached (early match) is still never
/// decoded, so error behavior on corrupt trailing values is unchanged.
struct SplitValue {
  bool ready = false;
  std::vector<std::string> owned;  // decoded paths (front-coded values)
  std::string component_storage;   // unescaped component bytes
  std::vector<std::string_view> components;  // all paths' components, flat
  /// Each data path as [begin, count) into `components`.
  std::vector<std::pair<uint32_t, uint32_t>> paths;

  Status Decode(const std::string& value, bool compressed, bool binary) {
    ready = true;
    std::string_view raw = value;
    std::string dearmoured;
    if (compressed) {
      if (!binary) {
        WEBDEX_ASSIGN_OR_RETURN(dearmoured, HexDearmour(value));
        raw = dearmoured;
      }
      WEBDEX_ASSIGN_OR_RETURN(owned, DecodePaths(raw));
    }
    size_t total_bytes = 0;
    if (compressed) {
      for (const std::string& p : owned) total_bytes += p.size();
    } else {
      total_bytes = value.size();
    }
    component_storage.reserve(total_bytes);
    auto add = [this](std::string_view path) {
      const uint32_t begin = static_cast<uint32_t>(components.size());
      SplitPathAppend(path, &component_storage, &components);
      paths.emplace_back(begin,
                         static_cast<uint32_t>(components.size()) - begin);
    };
    if (compressed) {
      for (const std::string& p : owned) add(p);
    } else {
      add(value);
    }
    return Status::OK();
  }
};

}  // namespace

Result<std::set<std::string>> LookupByPaths(cloud::SimAgent& agent,
                                            KvStore& store,
                                            const std::string& table,
                                            const KeyTwig& twig,
                                            const ExtractOptions& options,
                                            LookupStats* stats,
                                            const GenerationMap* view) {
  const std::vector<QueryPath> query_paths = BuildQueryPaths(twig);
  const std::vector<std::string> lookup_keys = PathLookupKeys(twig);
  WEBDEX_ASSIGN_OR_RETURN(
      FetchedEntries entries,
      FetchEntries(agent, store, table, lookup_keys, stats, view));

  // Decode-and-split cache, keyed by each (key, URI)'s stable value
  // vector.  Distinct query paths sharing a lookup key re-test the same
  // stored paths; pre-splitting each value once replaces the legacy
  // re-split-per-test inner loop.
  const bool binary = store.SupportsBinaryValues();
  std::map<const std::vector<std::string>*, std::vector<SplitValue>> cache;

  std::set<std::string> result;
  bool first = true;
  for (const QueryPath& query_path : query_paths) {
    auto it = entries.find(query_path.LookupKey());
    if (it == entries.end()) return std::set<std::string>{};
    std::set<std::string> uris;
    for (const auto& [uri, values] : it->second) {
      // Values are either plain paths or front-coded path blobs,
      // depending on how the index was built.
      std::vector<SplitValue>& split_values = cache[&values];
      if (split_values.empty()) split_values.resize(values.size());
      bool matched = false;
      for (size_t v = 0; v < values.size(); ++v) {
        if (matched) break;
        SplitValue& split = split_values[v];
        if (!split.ready) {
          WEBDEX_RETURN_IF_ERROR(
              split.Decode(values[v], options.compress_paths, binary));
        }
        for (const auto& [begin, count] : split.paths) {
          stats->paths_tested += 1;
          if (PathMatches(query_path, split.components.data() + begin,
                          count)) {
            matched = true;
            break;
          }
        }
      }
      if (matched) uris.insert(uri);
    }
    stats->uri_merge_ops += uris.size();
    if (first) {
      result = std::move(uris);
      first = false;
    } else {
      std::set<std::string> next;
      std::set_intersection(result.begin(), result.end(), uris.begin(),
                            uris.end(), std::inserter(next, next.begin()));
      result = std::move(next);
    }
    if (result.empty()) return std::set<std::string>{};
  }
  return result;
}

Result<std::set<std::string>> LookupByIds(
    cloud::SimAgent& agent, KvStore& store, const std::string& table,
    const KeyTwig& twig, const std::set<std::string>* restrict_to,
    LookupStats* stats, const GenerationMap* view) {
  const std::vector<std::string> keys = twig.DistinctKeys();
  WEBDEX_ASSIGN_OR_RETURN(
      FetchedEntries entries,
      FetchEntries(agent, store, table, keys, stats, view));

  // Candidate URIs: those present for every key (any absent key ->
  // document cannot embed the twig), further reduced by `restrict_to`.
  std::set<std::string> candidates = IntersectUris(entries, keys, stats);
  if (restrict_to != nullptr) {
    std::set<std::string> reduced;
    std::set_intersection(candidates.begin(), candidates.end(),
                          restrict_to->begin(), restrict_to->end(),
                          std::inserter(reduced, reduced.begin()));
    stats->uri_merge_ops += candidates.size();
    candidates = std::move(reduced);
  }

  // Decode ID lists per (key, URI).  Keys and URIs are borrowed as views
  // into `keys` / the fetched entries (both outlive the join), so this
  // stage allocates only the decoded ID vectors themselves.
  const bool binary = store.SupportsBinaryValues();
  std::map<std::string_view,
           std::map<std::string_view, std::vector<xml::NodeId>>>
      ids_by_key_uri;
  for (const std::string& key : keys) {
    auto entry_it = entries.find(key);
    if (entry_it == entries.end()) return std::set<std::string>{};
    for (const auto& [uri, blobs] : entry_it->second) {
      if (candidates.count(uri) == 0) continue;
      std::vector<xml::NodeId> ids;
      for (const std::string& blob : blobs) {
        std::string raw = blob;
        if (!binary) {
          WEBDEX_ASSIGN_OR_RETURN(raw, HexDearmour(blob));
        }
        WEBDEX_ASSIGN_OR_RETURN(std::vector<xml::NodeId> chunk,
                                DecodeIds(raw));
        ids.insert(ids.end(), chunk.begin(), chunk.end());
      }
      // Single blobs are already sorted by pre (kept sorted at indexing
      // time, Section 5.3); chunked entries may arrive in any range-key
      // order, so restore the order chunk-wise.
      if (blobs.size() > 1) {
        std::sort(ids.begin(), ids.end());
        stats->twig_id_ops += ids.size();
      }
      ids_by_key_uri[key][uri] = std::move(ids);
    }
  }

  // Holistic twig join per candidate document.  Inputs borrow the decoded
  // vectors — no per-candidate ID copies.
  const std::vector<const TwigNode*> twig_nodes = twig.Nodes();
  std::set<std::string> result;
  for (const std::string& uri : candidates) {
    TwigInputs inputs;
    bool complete = true;
    for (const TwigNode* node : twig_nodes) {
      auto key_it = ids_by_key_uri.find(std::string_view(node->key));
      if (key_it == ids_by_key_uri.end()) {
        complete = false;
        break;
      }
      auto uri_it = key_it->second.find(std::string_view(uri));
      if (uri_it == key_it->second.end() || uri_it->second.empty()) {
        complete = false;
        break;
      }
      inputs[node] = &uri_it->second;
    }
    if (!complete) continue;
    TwigJoinStats twig_stats;
    const bool matched = TwigMatch(twig, inputs, &twig_stats);
    stats->twig_id_ops += twig_stats.id_ops;
    if (matched) result.insert(uri);
  }
  return result;
}

}  // namespace webdex::index
