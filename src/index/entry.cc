#include "index/entry.h"

#include <algorithm>

#include "common/varint.h"
#include "index/keys.h"
#include "xml/tokenizer.h"

namespace webdex::index {
namespace {

/// One key occurrence recorded during the walk; `entry` is filled by the
/// grouping pass.
struct Occurrence {
  KeyHandle key;
  PathHandle path;
  xml::NodeId id;
  uint32_t entry;
};

/// Per-thread reusable extraction state: the occurrence buffer plus a
/// tiny open-addressed KeyHandle -> dense-entry-index table.  Everything
/// is cleared per document but keeps its capacity, so steady-state
/// extraction allocates nothing.
struct ExtractScratch {
  std::vector<Occurrence> occurrences;
  /// Packed slots: high 32 bits = key+1 (0 = empty), low 32 = entry idx.
  std::vector<uint64_t> table;
  uint32_t distinct = 0;
  std::vector<uint32_t> id_cursor;
  std::vector<uint32_t> path_cursor;

  void Reset() {
    occurrences.clear();
    distinct = 0;  // GrowTable re-zeroes the slots before use
  }

  static size_t SlotOf(KeyHandle key, size_t mask) {
    // Fibonacci hashing spreads consecutive handles.
    return (uint64_t{key} * 11400714819323198485ull >> 33) & mask;
  }

  void GrowTable(size_t at_least) {
    size_t size = 1024;
    while (size < at_least * 2) size *= 2;
    if (size <= table.size()) {
      std::fill(table.begin(), table.end(), 0);
      return;
    }
    table.assign(size, 0);
  }

  uint32_t EntryOf(KeyHandle key) {
    const size_t mask = table.size() - 1;
    size_t i = SlotOf(key, mask);
    while (true) {
      const uint64_t slot = table[i];
      if (slot == 0) {
        table[i] = (uint64_t{key} + 1) << 32 | distinct;
        return distinct++;
      }
      if ((slot >> 32) == uint64_t{key} + 1) {
        return static_cast<uint32_t>(slot);
      }
      i = (i + 1) & mask;
    }
  }
};

ExtractScratch& ScratchForThread() {
  thread_local ExtractScratch scratch;
  return scratch;
}

struct WalkContext {
  StringInterner* keys;
  PathDict* paths;
  const ExtractOptions* options;
  std::vector<Occurrence>* occurrences;

  void Add(KeyHandle key, const xml::NodeId& id, PathHandle path) {
    occurrences->push_back(Occurrence{key, path, id, 0});
  }
};

void Walk(const xml::Node& node, PathHandle parent_path, WalkContext& ctx) {
  switch (node.kind()) {
    case xml::NodeKind::kElement: {
      const KeyHandle key = InternElementKey(*ctx.keys, node.label());
      const PathHandle path = ctx.paths->Extend(parent_path, key);
      ctx.Add(key, node.id(), path);
      for (const auto& child : node.children()) {
        Walk(*child, path, ctx);
      }
      break;
    }
    case xml::NodeKind::kAttribute: {
      // Two keys per attribute: a‖name and a‖name value (Section 5).
      const KeyHandle name_key =
          InternAttributeNameKey(*ctx.keys, node.label());
      const PathHandle name_path = ctx.paths->Extend(parent_path, name_key);
      ctx.Add(name_key, node.id(), name_path);
      const KeyHandle value_key =
          InternAttributeValueKey(*ctx.keys, node.label(), node.value());
      ctx.Add(value_key, node.id(),
              ctx.paths->Extend(parent_path, value_key));
      if (ctx.options->include_words) {
        // Attribute-value words share the attribute's structural ID (an
        // attribute is a leaf, so its value has no separate position);
        // the key twig connects them with a self edge.
        xml::ForEachWord(node.value(), [&](std::string_view word) {
          const KeyHandle word_key = InternWordKey(*ctx.keys, word);
          ctx.Add(word_key, node.id(),
                  ctx.paths->Extend(name_path, word_key));
        });
      }
      break;
    }
    case xml::NodeKind::kText: {
      if (!ctx.options->include_words) break;
      xml::ForEachWord(node.value(), [&](std::string_view word) {
        const KeyHandle word_key = InternWordKey(*ctx.keys, word);
        // Word occurrences carry the text node's ID: a child of the
        // enclosing element in (pre, post, depth) space.
        ctx.Add(word_key, node.id(),
                ctx.paths->Extend(parent_path, word_key));
      });
      break;
    }
  }
}

}  // namespace

const DocIndex::Entry* DocIndex::Find(std::string_view key) const {
  const StringInterner& keys = core_->keys();
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [&keys](const Entry& e, std::string_view k) {
        return keys.Resolve(e.key) < k;
      });
  if (it == entries_.end() || keys.Resolve(it->key) != key) return nullptr;
  return &*it;
}

std::vector<std::string> DocIndex::PathVector(const Entry& e) const {
  std::vector<std::string> out;
  out.reserve(e.path_count);
  for (uint32_t i = 0; i < e.path_count; ++i) {
    out.emplace_back(path(paths(e)[i]));
  }
  return out;
}

DocIndex ExtractDocIndexInto(const xml::Document& doc,
                             const ExtractOptions& options, InternCore* core) {
  DocIndex index(core);
  ExtractScratch& scratch = ScratchForThread();
  scratch.Reset();

  WalkContext ctx{&core->keys(), &core->paths(), &options,
                  &scratch.occurrences};
  Walk(doc.root(), kNoHandle, ctx);

  // Group occurrences by key: assign each a dense entry index, count, and
  // scatter IDs / paths into the two slabs.
  scratch.GrowTable(scratch.occurrences.size());
  for (Occurrence& occ : scratch.occurrences) {
    occ.entry = scratch.EntryOf(occ.key);
  }
  const uint32_t distinct = scratch.distinct;
  index.entries_.assign(distinct, DocIndex::Entry{});
  for (const Occurrence& occ : scratch.occurrences) {
    DocIndex::Entry& e = index.entries_[occ.entry];
    e.key = occ.key;
    e.id_count += 1;
    e.path_count += 1;
  }
  uint32_t id_offset = 0;
  uint32_t path_offset = 0;
  for (DocIndex::Entry& e : index.entries_) {
    e.id_begin = id_offset;
    e.path_begin = path_offset;
    id_offset += e.id_count;
    path_offset += e.path_count;
  }
  index.ids_.resize(id_offset);
  index.paths_.resize(path_offset);
  scratch.id_cursor.assign(distinct, 0);
  scratch.path_cursor.assign(distinct, 0);
  for (const Occurrence& occ : scratch.occurrences) {
    const DocIndex::Entry& e = index.entries_[occ.entry];
    index.ids_[e.id_begin + scratch.id_cursor[occ.entry]++] = occ.id;
    index.paths_[e.path_begin + scratch.path_cursor[occ.entry]++] = occ.path;
  }

  // Per entry: IDs arrive in document order already (pre-order walk), but
  // repeated words within one text node produce duplicates worth
  // removing; paths order by their resolved strings — the legacy map's
  // sorted-vector contract, and what keeps serialization byte-identical.
  const PathDict& dict = core->paths();
  for (DocIndex::Entry& e : index.entries_) {
    auto id_begin = index.ids_.begin() + e.id_begin;
    auto id_end = id_begin + e.id_count;
    if (!std::is_sorted(id_begin, id_end)) std::sort(id_begin, id_end);
    e.id_count = static_cast<uint32_t>(
        std::distance(id_begin, std::unique(id_begin, id_end)));

    auto path_begin = index.paths_.begin() + e.path_begin;
    auto path_end = path_begin + e.path_count;
    std::sort(path_begin, path_end, [&dict](PathHandle a, PathHandle b) {
      return a != b && dict.Resolve(a) < dict.Resolve(b);
    });
    e.path_count = static_cast<uint32_t>(
        std::distance(path_begin, std::unique(path_begin, path_end)));
  }

  // Entries iterate in resolved-key-string order (the legacy std::map
  // contract); handle values — which depend on which thread interned a
  // key first — never influence the order.
  const StringInterner& keys = core->keys();
  std::sort(index.entries_.begin(), index.entries_.end(),
            [&keys](const DocIndex::Entry& a, const DocIndex::Entry& b) {
              return a.key != b.key &&
                     keys.Resolve(a.key) < keys.Resolve(b.key);
            });
  return index;
}

DocIndex ExtractDocIndex(const xml::Document& doc,
                         const ExtractOptions& options) {
  return ExtractDocIndexInto(doc, options, &InternCore::Global());
}

DocIndexStats ComputeStats(const DocIndex& index) {
  DocIndexStats stats;
  for (const auto& entry : index.entries()) {
    stats.keys += 1;
    stats.ids += entry.id_count;
    for (uint32_t i = 0; i < entry.path_count; ++i) {
      stats.path_bytes += index.path(index.paths(entry)[i]).size();
    }
  }
  return stats;
}

void AppendEncodedId(std::string* blob, const xml::NodeId& id) {
  PutVarint64(blob, id.pre);
  PutVarint64(blob, id.post);
  PutVarint64(blob, id.depth);
}

std::string EncodeIds(const std::vector<xml::NodeId>& ids) {
  std::string blob;
  blob.reserve(ids.size() * 4);
  for (const auto& id : ids) {
    AppendEncodedId(&blob, id);
  }
  return blob;
}

Result<std::vector<xml::NodeId>> DecodeIds(std::string_view blob) {
  std::vector<xml::NodeId> ids;
  size_t offset = 0;
  while (offset < blob.size()) {
    xml::NodeId id;
    WEBDEX_ASSIGN_OR_RETURN(uint64_t pre, GetVarint64(blob, &offset));
    WEBDEX_ASSIGN_OR_RETURN(uint64_t post, GetVarint64(blob, &offset));
    WEBDEX_ASSIGN_OR_RETURN(uint64_t depth, GetVarint64(blob, &offset));
    id.pre = static_cast<uint32_t>(pre);
    id.post = static_cast<uint32_t>(post);
    id.depth = static_cast<uint32_t>(depth);
    ids.push_back(id);
  }
  return ids;
}

namespace {

template <typename PathList>
std::string EncodePathsImpl(const PathList& paths) {
  std::string blob;
  std::string_view previous;
  bool have_previous = false;
  for (const auto& path : paths) {
    const std::string_view current(path);
    size_t shared = 0;
    if (have_previous) {
      const size_t limit = std::min(previous.size(), current.size());
      while (shared < limit && previous[shared] == current[shared]) {
        ++shared;
      }
    }
    PutVarint64(&blob, shared);
    PutVarint64(&blob, current.size() - shared);
    blob.append(current.data() + shared, current.size() - shared);
    previous = current;
    have_previous = true;
  }
  return blob;
}

}  // namespace

std::string EncodePaths(const std::vector<std::string>& paths) {
  return EncodePathsImpl(paths);
}

std::string EncodePathViews(const std::vector<std::string_view>& paths) {
  return EncodePathsImpl(paths);
}

Result<std::vector<std::string>> DecodePaths(std::string_view blob) {
  std::vector<std::string> paths;
  size_t offset = 0;
  std::string previous;
  while (offset < blob.size()) {
    WEBDEX_ASSIGN_OR_RETURN(uint64_t shared, GetVarint64(blob, &offset));
    WEBDEX_ASSIGN_OR_RETURN(uint64_t suffix, GetVarint64(blob, &offset));
    if (shared > previous.size()) {
      return Status::Corruption("front-coded prefix exceeds predecessor");
    }
    if (offset + suffix > blob.size()) {
      return Status::Corruption("truncated front-coded path");
    }
    std::string path = previous.substr(0, shared);
    path.append(blob.substr(offset, suffix));
    offset += suffix;
    previous = path;
    paths.push_back(std::move(path));
  }
  return paths;
}

std::string HexArmour(std::string_view binary) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(binary.size() * 2);
  for (unsigned char c : binary) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xF]);
  }
  return out;
}

Result<std::string> HexDearmour(std::string_view text) {
  if (text.size() % 2 != 0) {
    return Status::Corruption("odd-length hex blob");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(text.size() / 2);
  for (size_t i = 0; i < text.size(); i += 2) {
    const int hi = nibble(text[i]);
    const int lo = nibble(text[i + 1]);
    if (hi < 0 || lo < 0) return Status::Corruption("bad hex digit");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace webdex::index
