#include "index/entry.h"

#include <algorithm>

#include "common/varint.h"
#include "index/keys.h"
#include "xml/tokenizer.h"

namespace webdex::index {
namespace {

void AddOccurrence(DocIndex* index, const std::string& key,
                   const xml::NodeId& id, const std::string& path) {
  NodeEntry& entry = (*index)[key];
  entry.ids.push_back(id);
  entry.paths.push_back(path);
}

void Walk(const xml::Node& node, const std::string& parent_path,
          const ExtractOptions& options, DocIndex* index) {
  switch (node.kind()) {
    case xml::NodeKind::kElement: {
      const std::string key = ElementKey(node.label());
      const std::string path = parent_path + "/" + PathComponent(key);
      AddOccurrence(index, key, node.id(), path);
      for (const auto& child : node.children()) {
        Walk(*child, path, options, index);
      }
      break;
    }
    case xml::NodeKind::kAttribute: {
      // Two keys per attribute: a‖name and a‖name value (Section 5).
      const std::string name_key = AttributeNameKey(node.label());
      const std::string name_path =
          parent_path + "/" + PathComponent(name_key);
      AddOccurrence(index, name_key, node.id(), name_path);
      const std::string value_key =
          AttributeValueKey(node.label(), node.value());
      AddOccurrence(index, value_key, node.id(),
                    parent_path + "/" + PathComponent(value_key));
      if (options.include_words) {
        // Attribute-value words share the attribute's structural ID (an
        // attribute is a leaf, so its value has no separate position);
        // the key twig connects them with a self edge.
        for (const auto& word : xml::TokenizeWords(node.value())) {
          const std::string word_key = WordKey(word);
          AddOccurrence(index, word_key, node.id(),
                        name_path + "/" + PathComponent(word_key));
        }
      }
      break;
    }
    case xml::NodeKind::kText: {
      if (!options.include_words) break;
      for (const auto& word : xml::TokenizeWords(node.value())) {
        const std::string word_key = WordKey(word);
        // Word occurrences carry the text node's ID: a child of the
        // enclosing element in (pre, post, depth) space.
        AddOccurrence(index, word_key, node.id(),
                      parent_path + "/" + PathComponent(word_key));
      }
      break;
    }
  }
}

}  // namespace

DocIndex ExtractDocIndex(const xml::Document& doc,
                         const ExtractOptions& options) {
  DocIndex index;
  Walk(doc.root(), "", options, &index);
  for (auto& [key, entry] : index) {
    (void)key;
    // IDs arrive in document order already (pre-order walk), but repeated
    // words within one text node produce duplicates worth removing.
    std::sort(entry.ids.begin(), entry.ids.end());
    entry.ids.erase(std::unique(entry.ids.begin(), entry.ids.end()),
                    entry.ids.end());
    std::sort(entry.paths.begin(), entry.paths.end());
    entry.paths.erase(std::unique(entry.paths.begin(), entry.paths.end()),
                      entry.paths.end());
  }
  return index;
}

DocIndexStats ComputeStats(const DocIndex& index) {
  DocIndexStats stats;
  for (const auto& [key, entry] : index) {
    (void)key;
    stats.keys += 1;
    stats.ids += entry.ids.size();
    for (const auto& path : entry.paths) stats.path_bytes += path.size();
  }
  return stats;
}

std::string EncodeIds(const std::vector<xml::NodeId>& ids) {
  std::string blob;
  blob.reserve(ids.size() * 4);
  for (const auto& id : ids) {
    PutVarint64(&blob, id.pre);
    PutVarint64(&blob, id.post);
    PutVarint64(&blob, id.depth);
  }
  return blob;
}

Result<std::vector<xml::NodeId>> DecodeIds(std::string_view blob) {
  std::vector<xml::NodeId> ids;
  size_t offset = 0;
  while (offset < blob.size()) {
    xml::NodeId id;
    WEBDEX_ASSIGN_OR_RETURN(uint64_t pre, GetVarint64(blob, &offset));
    WEBDEX_ASSIGN_OR_RETURN(uint64_t post, GetVarint64(blob, &offset));
    WEBDEX_ASSIGN_OR_RETURN(uint64_t depth, GetVarint64(blob, &offset));
    id.pre = static_cast<uint32_t>(pre);
    id.post = static_cast<uint32_t>(post);
    id.depth = static_cast<uint32_t>(depth);
    ids.push_back(id);
  }
  return ids;
}

std::string EncodePaths(const std::vector<std::string>& paths) {
  std::string blob;
  const std::string* previous = nullptr;
  for (const auto& path : paths) {
    size_t shared = 0;
    if (previous != nullptr) {
      const size_t limit = std::min(previous->size(), path.size());
      while (shared < limit && (*previous)[shared] == path[shared]) {
        ++shared;
      }
    }
    PutVarint64(&blob, shared);
    PutVarint64(&blob, path.size() - shared);
    blob.append(path, shared, path.size() - shared);
    previous = &path;
  }
  return blob;
}

Result<std::vector<std::string>> DecodePaths(std::string_view blob) {
  std::vector<std::string> paths;
  size_t offset = 0;
  std::string previous;
  while (offset < blob.size()) {
    WEBDEX_ASSIGN_OR_RETURN(uint64_t shared, GetVarint64(blob, &offset));
    WEBDEX_ASSIGN_OR_RETURN(uint64_t suffix, GetVarint64(blob, &offset));
    if (shared > previous.size()) {
      return Status::Corruption("front-coded prefix exceeds predecessor");
    }
    if (offset + suffix > blob.size()) {
      return Status::Corruption("truncated front-coded path");
    }
    std::string path = previous.substr(0, shared);
    path.append(blob.substr(offset, suffix));
    offset += suffix;
    previous = path;
    paths.push_back(std::move(path));
  }
  return paths;
}

std::string HexArmour(std::string_view binary) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(binary.size() * 2);
  for (unsigned char c : binary) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xF]);
  }
  return out;
}

Result<std::string> HexDearmour(std::string_view text) {
  if (text.size() % 2 != 0) {
    return Status::Corruption("odd-length hex blob");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(text.size() / 2);
  for (size_t i = 0; i < text.size(); i += 2) {
    const int hi = nibble(text[i]);
    const int lo = nibble(text[i + 1]);
    if (hi < 0 || lo < 0) return Status::Corruption("bad hex digit");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace webdex::index
