#ifndef WEBDEX_INDEX_PATH_MATCH_H_
#define WEBDEX_INDEX_PATH_MATCH_H_

#include <string>
#include <string_view>
#include <vector>

#include "index/key_twig.h"

namespace webdex::index {

/// One component of a query path: the axis leading into it plus the key.
struct QueryPathStep {
  TwigAxis axis = TwigAxis::kDescendant;
  std::string key;
};

/// A root-to-leaf query path `(/|//)a1(/|//)a2 ... aj` (Section 5.2).
struct QueryPath {
  std::vector<QueryPathStep> steps;

  /// Key to look up in the LUP index: key(aj), the last step.
  const std::string& LookupKey() const { return steps.back().key; }

  std::string ToString() const;
};

/// Builds the query paths of a pattern, via its key twig: one query path
/// per root-to-leaf twig path.  Self-axis steps (attribute-value words)
/// are emitted as child steps, matching how extraction records their data
/// paths.
std::vector<QueryPath> BuildQueryPaths(const KeyTwig& twig);

/// True if the stored data path (e.g. "/esite/eitem/ename") matches the
/// query path.  Semantics: the first step anchors at the document root
/// when its axis is kChild, anywhere otherwise; child steps must be
/// consecutive; the last query step must be the *last* data component
/// (data paths for key k always end with k).
bool PathMatches(const QueryPath& query, std::string_view data_path);

/// Same, over pre-split unescaped components (avoids re-splitting when a
/// caller checks one data path against many query paths).
bool PathMatches(const QueryPath& query,
                 const std::vector<std::string>& data_components);

}  // namespace webdex::index

#endif  // WEBDEX_INDEX_PATH_MATCH_H_
