#ifndef WEBDEX_INDEX_PATH_MATCH_H_
#define WEBDEX_INDEX_PATH_MATCH_H_

#include <string>
#include <string_view>
#include <vector>

#include "index/intern.h"
#include "index/key_twig.h"

namespace webdex::index {

/// One component of a query path: the axis leading into it plus the key.
struct QueryPathStep {
  TwigAxis axis = TwigAxis::kDescendant;
  std::string key;
};

/// A root-to-leaf query path `(/|//)a1(/|//)a2 ... aj` (Section 5.2).
struct QueryPath {
  std::vector<QueryPathStep> steps;

  /// Key to look up in the LUP index: key(aj), the last step.
  const std::string& LookupKey() const { return steps.back().key; }

  std::string ToString() const;
};

/// Builds the query paths of a pattern, via its key twig: one query path
/// per root-to-leaf twig path.  Self-axis steps (attribute-value words)
/// are emitted as child steps, matching how extraction records their data
/// paths.
std::vector<QueryPath> BuildQueryPaths(const KeyTwig& twig);

/// True if the stored data path (e.g. "/esite/eitem/ename") matches the
/// query path.  Semantics: the first step anchors at the document root
/// when its axis is kChild, anywhere otherwise; child steps must be
/// consecutive; the last query step must be the *last* data component
/// (data paths for key k always end with k).
bool PathMatches(const QueryPath& query, std::string_view data_path);

/// Same, over pre-split unescaped components (avoids re-splitting when a
/// caller checks one data path against many query paths).
bool PathMatches(const QueryPath& query,
                 const std::vector<std::string>& data_components);

/// Same, over views (what index::SplitPathInto produces — the look-up
/// hot path splits each stored value once and tests it against every
/// query path).
bool PathMatches(const QueryPath& query,
                 const std::vector<std::string_view>& data_components);

/// Slice form for callers keeping many pre-split paths in one flat
/// component buffer (index::LookupByPaths' per-value cache).
bool PathMatches(const QueryPath& query,
                 const std::string_view* data_components, size_t count);

/// A query path with step keys pre-resolved against a StringInterner, so
/// matching interned data paths compares integers.  A step key the
/// interner has never seen makes the whole path non-viable: no stored
/// data path can contain it.
struct HandleQueryPath {
  std::vector<TwigAxis> axes;
  std::vector<KeyHandle> keys;
  bool viable = false;
};

HandleQueryPath ResolveQueryPath(const QueryPath& query,
                                 const StringInterner& interner);

/// Matches against a data path's root-to-node component handles
/// (PathDict::Components order).
bool PathMatches(const HandleQueryPath& query,
                 const std::vector<KeyHandle>& data_components);

}  // namespace webdex::index

#endif  // WEBDEX_INDEX_PATH_MATCH_H_
