#include "index/generation.h"

#include "common/strings.h"

namespace webdex::index {

void GenerationMap::Apply(const std::string& uri, uint64_t generation,
                          bool tombstoned) {
  GenerationInfo& info = entries_[uri];
  if (generation < info.generation) return;
  if (generation == info.generation && !tombstoned) return;
  info.generation = generation;
  info.tombstoned = tombstoned;
}

bool GenerationMap::Visible(const std::string& uri, uint64_t stamp) const {
  auto it = entries_.find(uri);
  if (it == entries_.end()) return stamp == 0;
  return !it->second.tombstoned && stamp == it->second.generation;
}

const GenerationInfo* GenerationMap::Find(const std::string& uri) const {
  auto it = entries_.find(uri);
  return it == entries_.end() ? nullptr : &it->second;
}

void GenerationMap::Erase(const std::string& uri) { entries_.erase(uri); }

uint64_t GenerationMap::TombstoneCount() const {
  uint64_t count = 0;
  for (const auto& [uri, info] : entries_) {
    if (info.tombstoned) count += 1;
  }
  return count;
}

std::string GenerationRangeKey(uint64_t generation) {
  return StrFormat("%020llu", static_cast<unsigned long long>(generation));
}

cloud::Item MakeMetaItem(const std::string& uri, uint64_t generation,
                         bool tombstoned) {
  cloud::Item item;
  item.hash_key = uri;
  item.range_key = GenerationRangeKey(generation);
  item.attrs[kGenAttr] = {
      StrFormat("%llu", static_cast<unsigned long long>(generation))};
  if (tombstoned) item.attrs[kTombstoneAttr] = {"1"};
  return item;
}

Result<uint64_t> ParseGenerationStamp(const std::string& value) {
  if (value.empty()) {
    return Status::InvalidArgument("empty generation stamp");
  }
  uint64_t stamp = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("malformed generation stamp: " + value);
    }
    stamp = stamp * 10 + static_cast<uint64_t>(c - '0');
  }
  return stamp;
}

uint64_t StampOf(const cloud::Attributes& attrs) {
  auto it = attrs.find(kGenAttr);
  if (it == attrs.end() || it->second.empty()) return 0;
  auto stamp = ParseGenerationStamp(it->second.front());
  return stamp.ok() ? stamp.value() : 0;
}

void ApplyMetaItem(const cloud::Item& item, GenerationMap* map) {
  auto gen_it = item.attrs.find(kGenAttr);
  if (gen_it == item.attrs.end() || gen_it->second.empty()) return;
  auto stamp = ParseGenerationStamp(gen_it->second.front());
  if (!stamp.ok()) return;
  map->Apply(item.hash_key, stamp.value(),
             item.attrs.count(kTombstoneAttr) > 0);
}

}  // namespace webdex::index
