#include "index/twig_join.h"

#include <algorithm>

namespace webdex::index {
namespace {

using xml::NodeId;

// Satisfying IDs for the subtree rooted at `node`, bottom-up.
std::vector<NodeId> Satisfy(const TwigNode& node, const TwigInputs& inputs,
                            TwigJoinStats* stats) {
  auto it = inputs.find(&node);
  if (it == inputs.end() || it->second == nullptr || it->second->empty()) {
    return {};
  }
  const std::vector<NodeId>& own = *it->second;

  // Leaves satisfy unconditionally.
  if (node.children.empty()) return own;

  // Children's satisfying sets first; any empty set kills the subtree.
  std::vector<std::vector<NodeId>> child_sat;
  child_sat.reserve(node.children.size());
  for (const auto& child : node.children) {
    child_sat.push_back(Satisfy(*child, inputs, stats));
    if (child_sat.back().empty()) return {};
  }

  std::vector<NodeId> result;
  for (const NodeId& p : own) {
    bool all_children_ok = true;
    for (size_t c = 0; c < node.children.size(); ++c) {
      const TwigAxis axis = node.children[c]->axis;
      const std::vector<NodeId>& candidates = child_sat[c];
      bool found = false;
      if (axis == TwigAxis::kSelf) {
        // Word of an attribute value: identical structural position.
        stats->id_ops += 1;
        found = std::binary_search(
            candidates.begin(), candidates.end(), p,
            [](const NodeId& a, const NodeId& b) { return a.pre < b.pre; });
      } else {
        // Descendants of p form a contiguous run in the pre-sorted list:
        // it starts at the first ID with pre > p.pre and ends before the
        // first ID with post > p.post.
        auto lo = std::upper_bound(
            candidates.begin(), candidates.end(), p,
            [](const NodeId& a, const NodeId& b) { return a.pre < b.pre; });
        for (auto iter = lo; iter != candidates.end(); ++iter) {
          stats->id_ops += 1;
          if (iter->post > p.post) break;  // past the subtree
          if (axis == TwigAxis::kChild) {
            if (iter->depth == p.depth + 1) {
              found = true;
              break;
            }
          } else {  // kDescendant
            found = true;
            break;
          }
        }
      }
      if (!found) {
        all_children_ok = false;
        break;
      }
    }
    if (all_children_ok) result.push_back(p);
    stats->id_ops += 1;
  }
  return result;
}

}  // namespace

std::vector<NodeId> TwigSatisfyingRootIds(const KeyTwig& twig,
                                          const TwigInputs& inputs,
                                          TwigJoinStats* stats) {
  TwigJoinStats local;
  auto result = Satisfy(*twig.root, inputs, stats != nullptr ? stats : &local);
  return result;
}

bool TwigMatch(const KeyTwig& twig, const TwigInputs& inputs,
               TwigJoinStats* stats) {
  return !TwigSatisfyingRootIds(twig, inputs, stats).empty();
}

}  // namespace webdex::index
