#include <gtest/gtest.h>

#include "index/key_twig.h"
#include "query/parser.h"

namespace webdex::index {
namespace {

query::Query Parse(std::string_view text) {
  auto q = query::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

TEST(KeyTwigTest, ElementNodesGetElementKeys) {
  const auto query = Parse("//painting[/name, //painter/name]");
  const KeyTwig twig = BuildKeyTwig(query.patterns()[0]);
  EXPECT_EQ(twig.root->key, "epainting");
  ASSERT_EQ(twig.root->children.size(), 2u);
  EXPECT_EQ(twig.root->children[0]->key, "ename");
  EXPECT_EQ(twig.root->children[0]->axis, TwigAxis::kChild);
  EXPECT_EQ(twig.root->children[1]->key, "epainter");
  EXPECT_EQ(twig.root->children[1]->axis, TwigAxis::kDescendant);
}

TEST(KeyTwigTest, AttributeEqualityUsesValuedKey) {
  const auto query = Parse("//painting/@id='1863-1'");
  const KeyTwig twig = BuildKeyTwig(query.patterns()[0]);
  ASSERT_EQ(twig.root->children.size(), 1u);
  EXPECT_EQ(twig.root->children[0]->key, "aid 1863-1");
  EXPECT_TRUE(twig.root->children[0]->children.empty());
}

TEST(KeyTwigTest, AttributeWithoutPredicateUsesNameKey) {
  const auto query = Parse("//painting/@id");
  const KeyTwig twig = BuildKeyTwig(query.patterns()[0]);
  EXPECT_EQ(twig.root->children[0]->key, "aid");
}

TEST(KeyTwigTest, ElementEqualitySynthesizesWordChildren) {
  const auto query = Parse("//painter/name/last='Van Gogh'");
  const KeyTwig twig = BuildKeyTwig(query.patterns()[0]);
  const TwigNode* last = twig.root->children[0]->children[0].get();
  ASSERT_EQ(last->children.size(), 2u);  // "van" and "gogh"
  EXPECT_EQ(last->children[0]->key, "wvan");
  EXPECT_EQ(last->children[1]->key, "wgogh");
  EXPECT_EQ(last->children[0]->axis, TwigAxis::kDescendant);
  EXPECT_EQ(last->children[0]->pattern_node, -1);  // synthesized
}

TEST(KeyTwigTest, ContainmentSynthesizesOneWordNode) {
  const auto query = Parse("//item/description~'Gold!'");
  const KeyTwig twig = BuildKeyTwig(query.patterns()[0]);
  const TwigNode* description = twig.root->children[0].get();
  ASSERT_EQ(description->children.size(), 1u);
  EXPECT_EQ(description->children[0]->key, "wgold");  // normalized
}

TEST(KeyTwigTest, AttributeContainmentUsesSelfAxis) {
  const auto query = Parse("//item/@id~'47'");
  const KeyTwig twig = BuildKeyTwig(query.patterns()[0]);
  const TwigNode* attr = twig.root->children[0].get();
  EXPECT_EQ(attr->key, "aid");
  ASSERT_EQ(attr->children.size(), 1u);
  EXPECT_EQ(attr->children[0]->axis, TwigAxis::kSelf);
  EXPECT_EQ(attr->children[0]->key, "w47");
}

TEST(KeyTwigTest, RangePredicateContributesNothing) {
  const auto query = Parse("//year in(1854,1865]");
  const KeyTwig twig = BuildKeyTwig(query.patterns()[0]);
  EXPECT_EQ(twig.root->key, "eyear");
  EXPECT_TRUE(twig.root->children.empty());
}

TEST(KeyTwigTest, NoWordsModeSkipsPredicateNodes) {
  const auto query = Parse("//painting[/year='1854', /name~'Lion']");
  const KeyTwig with_words = BuildKeyTwig(query.patterns()[0], true);
  const KeyTwig without = BuildKeyTwig(query.patterns()[0], false);
  EXPECT_GT(with_words.Nodes().size(), without.Nodes().size());
  // The structural skeleton is identical.
  EXPECT_EQ(without.Nodes().size(), 3u);  // painting, year, name
  // Valued attribute keys are NOT full-text keys and must survive.
  const auto attr_query = Parse("//painting/@id='1863-1'");
  const KeyTwig attr_twig = BuildKeyTwig(attr_query.patterns()[0], false);
  EXPECT_EQ(attr_twig.root->children[0]->key, "aid 1863-1");
}

TEST(KeyTwigTest, DistinctKeysDeduplicates) {
  const auto query = Parse("//name[/name, //name]");
  const KeyTwig twig = BuildKeyTwig(query.patterns()[0]);
  EXPECT_EQ(twig.Nodes().size(), 3u);
  EXPECT_EQ(twig.DistinctKeys(), std::vector<std::string>{"ename"});
}

TEST(KeyTwigTest, RootToLeafPathsEnumerateBranches) {
  const auto query = Parse("//a[/b/c, //d]");
  const KeyTwig twig = BuildKeyTwig(query.patterns()[0]);
  const auto paths = twig.RootToLeafPaths();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].back()->key, "ec");
  EXPECT_EQ(paths[1].back()->key, "ed");
  EXPECT_EQ(paths[0].front()->key, "ea");
}

TEST(KeyTwigTest, PatternNodeIndicesPreserved) {
  const auto query = Parse("//a[/b, /c='x']");
  const KeyTwig twig = BuildKeyTwig(query.patterns()[0]);
  EXPECT_EQ(twig.root->pattern_node, 0);
  EXPECT_EQ(twig.root->children[0]->pattern_node, 1);
  EXPECT_EQ(twig.root->children[1]->pattern_node, 2);
}

}  // namespace
}  // namespace webdex::index
