// Architecture-equivalence contract of the pluggable deployment layer
// (docs/ARCHITECTURES.md): every deployment shape — provisioned or
// on-demand capacity, 1..N shards per logical table, 0..R read replicas —
// must produce the byte-identical logical index dump and query rows of
// the paper's default single-table deployment.  Only Usage, latency and
// dollars may differ.  The contract must survive chaos (a faulted
// sharded+replicated run converges to its own fault-free state), host
// parallelism, and a snapshot v5 crash/restore cycle.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud_env.h"
#include "cloud/deployment.h"
#include "cloud/retrying_kv_store.h"
#include "cloud/snapshot.h"
#include "engine/warehouse.h"
#include "xmark/paintings.h"
#include "xmark/xmark_generator.h"

namespace webdex::engine {
namespace {

using cloud::ArchitectureSpec;
using cloud::CapacityMode;
using index::StrategyKind;

class Agent : public cloud::SimAgent {};

std::vector<xmark::GeneratedDocument> Corpus() {
  auto docs = xmark::GeneratePaintings();
  xmark::GeneratorConfig config;
  config.num_documents = 6;
  config.entities_per_document = 5;
  for (auto& doc : xmark::XmarkGenerator(config).GenerateAll()) {
    docs.push_back(std::move(doc));
  }
  return docs;
}

const char* kQuery = "//painting[/name~'Lion', //painter/name/last:val]";

ArchitectureSpec Arch(CapacityMode capacity, int shards, int replicas) {
  ArchitectureSpec arch;
  arch.capacity = capacity;
  arch.shards = shards;
  arch.replicas = replicas;
  return arch;
}

/// Everything two architectures must agree on (state, rows) or may
/// legitimately differ in (usage, dollars, makespan).
struct ArchFingerprint {
  uint64_t index_fingerprint = 0;
  std::vector<std::string> logical_dump;
  std::vector<std::vector<std::string>> rows;
  IndexingRunReport report;
  cloud::Usage usage;
  double dollars = 0;
};

struct RunOptions {
  IndexBackend backend = IndexBackend::kDynamoDb;
  cloud::FaultPlan faults;
  int host_threads = 1;
  int query_rounds = 1;
};

ArchFingerprint RunArch(const ArchitectureSpec& arch,
                        const RunOptions& options = RunOptions()) {
  cloud::CloudConfig cloud_config;
  cloud_config.arch = arch;
  cloud_config.faults = options.faults;
  auto env = std::make_unique<cloud::CloudEnv>(cloud_config);
  WarehouseConfig config;
  config.strategy = StrategyKind::kLUP;
  config.backend = options.backend;
  config.num_instances = 2;
  config.host_threads = options.host_threads;
  Warehouse warehouse(env.get(), config);
  EXPECT_TRUE(warehouse.Setup().ok());
  for (const auto& doc : Corpus()) {
    EXPECT_TRUE(warehouse.SubmitDocument(doc.uri, doc.text).ok());
  }
  ArchFingerprint out;
  auto report = warehouse.RunIndexers();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report.ok()) out.report = report.value();
  out.index_fingerprint = cloud::FingerprintStore(warehouse.index_store());
  warehouse.index_store().ForEachItem(
      [&out](const std::string& table, const cloud::Item& item) {
        std::string line = table + "|" + item.hash_key + "|" + item.range_key;
        for (const auto& [name, values] : item.attrs) {
          line += "|" + name + "=";
          for (const auto& value : values) line += value + ",";
        }
        out.logical_dump.push_back(std::move(line));
      });
  for (int round = 0; round < options.query_rounds; ++round) {
    auto outcome = warehouse.ExecuteQuery(kQuery);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (outcome.ok()) out.rows = outcome.value().result.rows;
  }
  out.usage = env->meter().usage();
  out.dollars = env->meter().ComputeBill().total();
  return out;
}

// ---------------------------------------------------------------------------
// Deployment routing primitives.

TEST(DeploymentTest, DefaultSpecKeepsPhysicalNamesIdentical) {
  cloud::Deployment deployment((ArchitectureSpec()));
  EXPECT_FALSE(deployment.sharded());
  EXPECT_FALSE(deployment.replicated());
  EXPECT_EQ(deployment.PhysicalName("idx-lup", 0), "idx-lup");
  EXPECT_EQ(deployment.ShardFor("any-key"), 0);
  EXPECT_EQ(deployment.PhysicalTables("idx-lup"),
            std::vector<std::string>{"idx-lup"});
  EXPECT_TRUE(deployment.spec().IsDefault());
  EXPECT_EQ(deployment.spec().Name(), "prov-s1-r0");
}

TEST(DeploymentTest, ShardNamingRoundTrips) {
  cloud::Deployment deployment(Arch(CapacityMode::kProvisioned, 4, 2));
  EXPECT_EQ(deployment.spec().Name(), "prov-s4-r2");
  for (int shard = 0; shard < 4; ++shard) {
    const std::string physical = deployment.PhysicalName("idx-lup", shard);
    EXPECT_EQ(deployment.LogicalName(physical), "idx-lup") << physical;
  }
  EXPECT_EQ(deployment.PhysicalName("idx-lup", 0), "idx-lup.s0");
  // A name that merely looks suffixed folds only when the shard index is
  // in range for this deployment.
  EXPECT_EQ(deployment.LogicalName("idx-lup.s9"), "idx-lup.s9");
  // Routing is deterministic and covers every shard on a modest key set.
  std::vector<bool> hit(4, false);
  for (int i = 0; i < 64; ++i) {
    const int shard = deployment.ShardFor("key-" + std::to_string(i));
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    EXPECT_EQ(shard, deployment.ShardFor("key-" + std::to_string(i)));
    hit[static_cast<size_t>(shard)] = true;
  }
  for (int shard = 0; shard < 4; ++shard) EXPECT_TRUE(hit[shard]);
}

TEST(DeploymentTest, SpecValidationBounds) {
  EXPECT_TRUE(ArchitectureSpec().Validate().ok());
  EXPECT_TRUE(Arch(CapacityMode::kOnDemand, 64, 8).Validate().ok());
  EXPECT_FALSE(Arch(CapacityMode::kProvisioned, 0, 0).Validate().ok());
  EXPECT_FALSE(Arch(CapacityMode::kProvisioned, 65, 0).Validate().ok());
  EXPECT_FALSE(Arch(CapacityMode::kProvisioned, 1, 9).Validate().ok());
  ArchitectureSpec negative_lag;
  negative_lag.replication_lag = -1;
  EXPECT_FALSE(negative_lag.Validate().ok());
}

TEST(DeploymentTest, ReplicaReadableFollowsWatermark) {
  ArchitectureSpec arch = Arch(CapacityMode::kProvisioned, 1, 2);
  arch.replication_lag = 1000;
  cloud::Deployment deployment(arch);
  // Never-written tables are trivially caught up.
  EXPECT_TRUE(deployment.ReplicaReadable("idx-lup", 0));
  deployment.RecordWrite("idx-lup", 5000);
  EXPECT_FALSE(deployment.ReplicaReadable("idx-lup", 5500));
  EXPECT_TRUE(deployment.ReplicaReadable("idx-lup", 6000));
  // Watermarks never move backward.
  deployment.RecordWrite("idx-lup", 4000);
  EXPECT_EQ(deployment.Watermark("idx-lup"), 5000);
  // Replica choice is deterministic and in range.
  const int replica = deployment.ReplicaFor("idx-lup", "k");
  EXPECT_GE(replica, 0);
  EXPECT_LT(replica, 2);
  EXPECT_EQ(replica, deployment.ReplicaFor("idx-lup", "k"));
}

// ---------------------------------------------------------------------------
// The headline equivalence: every architecture ends in the same logical
// index and answers the query identically.

class ArchitectureTest : public ::testing::TestWithParam<IndexBackend> {};

TEST_P(ArchitectureTest, AllArchitecturesConvergeToSameLogicalState) {
  const RunOptions options{GetParam(), cloud::FaultPlan(), 1, 1};
  const ArchFingerprint baseline = RunArch(ArchitectureSpec(), options);
  ASSERT_FALSE(baseline.rows.empty());
  EXPECT_EQ(baseline.rows[0][0], "Delacroix");
  ASSERT_FALSE(baseline.logical_dump.empty());

  const std::vector<ArchitectureSpec> architectures = {
      Arch(CapacityMode::kProvisioned, 4, 0),
      Arch(CapacityMode::kProvisioned, 7, 0),
      Arch(CapacityMode::kProvisioned, 1, 2),
      Arch(CapacityMode::kProvisioned, 4, 2),
      Arch(CapacityMode::kOnDemand, 1, 0),
      Arch(CapacityMode::kOnDemand, 4, 2),
  };
  for (const ArchitectureSpec& arch : architectures) {
    const ArchFingerprint run = RunArch(arch, options);
    EXPECT_EQ(run.index_fingerprint, baseline.index_fingerprint)
        << arch.Name();
    EXPECT_EQ(run.logical_dump, baseline.logical_dump) << arch.Name();
    EXPECT_EQ(run.rows, baseline.rows) << arch.Name();
    EXPECT_EQ(run.report.documents, baseline.report.documents) << arch.Name();
  }
}

INSTANTIATE_TEST_SUITE_P(BothBackends, ArchitectureTest,
                         ::testing::Values(IndexBackend::kDynamoDb,
                                           IndexBackend::kSimpleDb),
                         [](const ::testing::TestParamInfo<IndexBackend>&
                                info) {
                           return info.param == IndexBackend::kSimpleDb
                                      ? "SimpleDb"
                                      : "DynamoDb";
                         });

// Replicated reads actually fire and are cheaper than primary reads:
// same rows, fewer read dollars than the unreplicated run.
TEST(ArchitectureTest, ReplicaReadsAreBilledAtHalfPrice) {
  RunOptions options;
  options.query_rounds = 3;
  const ArchFingerprint primary = RunArch(ArchitectureSpec(), options);
  // Short lag so the post-indexing queries find the replicas caught up;
  // the equivalence suite above covers the default 500 ms lag.
  ArchitectureSpec arch = Arch(CapacityMode::kProvisioned, 1, 2);
  arch.replication_lag = 1000;
  const ArchFingerprint replicated = RunArch(arch, options);
  EXPECT_EQ(replicated.rows, primary.rows);
  EXPECT_GT(replicated.usage.replica_reads, 0u);
  EXPECT_EQ(primary.usage.replica_reads, 0u);
  // Same read requests, strictly fewer billed read units.
  EXPECT_EQ(replicated.usage.ddb_get_requests, primary.usage.ddb_get_requests);
  EXPECT_LT(replicated.usage.ddb_read_units, primary.usage.ddb_read_units);
}

// On-demand capacity bills to the pay-per-request counters at a premium
// instead of the provisioned ones, and disables the autoscaler.
TEST(ArchitectureTest, OnDemandBillsPerRequest) {
  cloud::CloudConfig config;
  config.arch = Arch(CapacityMode::kOnDemand, 1, 0);
  config.autoscale.enabled = true;  // force-disabled under on-demand
  cloud::CloudEnv env(config);
  EXPECT_FALSE(env.autoscaler().active());

  Agent agent;
  ASSERT_TRUE(env.dynamodb().CreateTable(agent, "t").ok());
  cloud::Item item{"k", "r", {{"v", {std::string(2048, 'x')}}}};
  ASSERT_TRUE(env.dynamodb().BatchPut(agent, "t", {item}).ok());
  ASSERT_TRUE(env.dynamodb().Get(agent, "t", "k").ok());

  const cloud::Usage& usage = env.meter().usage();
  EXPECT_GT(usage.ondemand_requests, 0u);
  EXPECT_GT(usage.ddb_ondemand_write_units, 0.0);
  EXPECT_GT(usage.ddb_ondemand_read_units, 0.0);
  EXPECT_EQ(usage.ddb_write_units, 0.0);
  EXPECT_EQ(usage.ddb_read_units, 0.0);
  // The premium prices the same units above the provisioned rate.
  const cloud::Pricing& pricing = env.meter().pricing();
  EXPECT_GT(pricing.idx_ondemand_put, pricing.idx_put);
  EXPECT_GT(pricing.idx_ondemand_get, pricing.idx_get);
}

// ---------------------------------------------------------------------------
// Chaos and host-parallelism hold per architecture.

cloud::FaultPlan ArchChaosPlan() {
  cloud::FaultPlan plan;
  plan.seed = 11;
  plan.dynamodb.error_probability = 0.05;
  plan.dynamodb.throttle_share = 0.7;
  plan.dynamodb.unprocessed_probability = 0.1;
  plan.s3.error_probability = 0.03;
  plan.s3.throttle_share = 0.3;
  return plan;
}

TEST(ArchitectureTest, FaultedShardedReplicatedRunConverges) {
  const ArchitectureSpec arch = Arch(CapacityMode::kProvisioned, 4, 2);
  const ArchFingerprint clean = RunArch(arch);
  RunOptions faulted_options;
  faulted_options.faults = ArchChaosPlan();
  const ArchFingerprint faulted = RunArch(arch, faulted_options);
  EXPECT_GT(faulted.usage.faulted_requests, 0u);
  EXPECT_GT(faulted.usage.retried_requests, 0u);
  EXPECT_EQ(faulted.index_fingerprint, clean.index_fingerprint);
  EXPECT_EQ(faulted.logical_dump, clean.logical_dump);
  EXPECT_EQ(faulted.rows, clean.rows);
  EXPECT_GE(faulted.dollars, clean.dollars);
}

TEST(ArchitectureTest, SerialAndParallelShardedRunsAreBitIdentical) {
  const ArchitectureSpec arch = Arch(CapacityMode::kProvisioned, 4, 2);
  RunOptions serial_options;
  serial_options.faults = ArchChaosPlan();
  serial_options.host_threads = 1;
  RunOptions parallel_options = serial_options;
  parallel_options.host_threads = 8;
  const ArchFingerprint serial = RunArch(arch, serial_options);
  const ArchFingerprint parallel = RunArch(arch, parallel_options);
  EXPECT_EQ(serial.logical_dump, parallel.logical_dump);
  EXPECT_EQ(serial.rows, parallel.rows);
  EXPECT_DOUBLE_EQ(serial.dollars, parallel.dollars);
  EXPECT_EQ(serial.report.makespan, parallel.report.makespan);
  EXPECT_EQ(serial.usage.ddb_put_requests, parallel.usage.ddb_put_requests);
  EXPECT_EQ(serial.usage.replica_reads, parallel.usage.replica_reads);
}

// ---------------------------------------------------------------------------
// Satellite fix: CreateTable is routed through retry + fault + breaker.

TEST(ArchitectureTest, CreateTableRetriesTransientFaultsAndBillsThem) {
  cloud::CloudConfig config;
  config.faults.dynamodb.error_probability = 0.6;
  config.faults.dynamodb.throttle_share = 1.0;  // retriable throttles
  cloud::CloudEnv env(config);
  common::RetryPolicy policy;
  policy.max_attempts = 12;  // enough headroom to outlast the fault rate
  // No breaker: at this fault rate it would open and fast-fail the
  // retries; what is under test is the retry + billing path itself.
  cloud::RetryingKvStore store(&env.dynamodb(), policy, config.seed,
                               &env.meter(), /*breaker=*/nullptr,
                               &env.metrics(), &env.tracer());
  Agent agent;
  uint64_t faulted = 0;
  // Several independent fault sites: at this rate at least one create is
  // deterministically faulted before succeeding.
  for (const char* table : {"idx-lu", "idx-lup", "idx-lui", "idx-meta"}) {
    ASSERT_TRUE(store.CreateTable(agent, table).ok()) << table;
  }
  faulted = env.meter().usage().faulted_requests;
  EXPECT_GT(faulted, 0u);
  EXPECT_GT(env.meter().usage().retried_requests, 0u);
  // Faulted attempts bill their API round trip; the successful create
  // itself stays free.
  EXPECT_EQ(env.meter().usage().ddb_put_requests, faulted);
  // Backoff sleeps and faulted round trips advanced virtual time.
  EXPECT_GT(agent.now(), 0);
}

TEST(ArchitectureTest, FaultFreeCreateTableIsFreeAndInstant) {
  cloud::CloudEnv env;
  cloud::RetryingKvStore store(&env.dynamodb(), common::RetryPolicy(),
                               env.config().seed, &env.meter(),
                               &env.breaker(), &env.metrics(), &env.tracer());
  Agent agent;
  ASSERT_TRUE(store.CreateTable(agent, "t").ok());
  EXPECT_EQ(agent.now(), 0);
  EXPECT_EQ(env.meter().usage().ddb_put_requests, 0u);
  EXPECT_TRUE(store.CreateTable(agent, "t").IsAlreadyExists());
}

// ---------------------------------------------------------------------------
// Snapshot v5: deployment state is durable, restore validates the shape.

TEST(ArchitectureTest, SnapshotV5RoundTripsShardedReplicatedState) {
  const ArchitectureSpec arch = Arch(CapacityMode::kProvisioned, 4, 2);
  cloud::CloudConfig cloud_config;
  cloud_config.arch = arch;
  auto env = std::make_unique<cloud::CloudEnv>(cloud_config);
  WarehouseConfig config;
  config.strategy = StrategyKind::kLUP;
  Warehouse warehouse(env.get(), config);
  ASSERT_TRUE(warehouse.Setup().ok());
  for (const auto& doc : Corpus()) {
    ASSERT_TRUE(warehouse.SubmitDocument(doc.uri, doc.text).ok());
  }
  ASSERT_TRUE(warehouse.RunIndexers().ok());
  const uint64_t fingerprint =
      cloud::FingerprintStore(warehouse.index_store());
  auto rows = warehouse.ExecuteQuery(kQuery);
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(env->deployment().watermarks().empty());

  const std::string snapshot = SerializeSnapshot(*env);
  EXPECT_EQ(snapshot.substr(0, 8), "WDXSNAP5");

  cloud::CloudConfig restored_config;
  restored_config.arch = arch;
  auto restored_env = std::make_unique<cloud::CloudEnv>(restored_config);
  ASSERT_TRUE(RestoreSnapshot(snapshot, restored_env.get()).ok());
  EXPECT_EQ(restored_env->deployment().watermarks(),
            env->deployment().watermarks());
  Warehouse restored(restored_env.get(), config);
  ASSERT_TRUE(restored.AttachToExistingCloud().ok());
  EXPECT_EQ(cloud::FingerprintStore(restored.index_store()), fingerprint);
  auto restored_rows = restored.ExecuteQuery(kQuery);
  ASSERT_TRUE(restored_rows.ok());
  EXPECT_EQ(restored_rows.value().result.rows, rows.value().result.rows);
}

TEST(ArchitectureTest, SnapshotRestoreRejectsArchitectureMismatch) {
  // v5 image of a sharded environment cannot restore into the default
  // one, and vice versa.
  cloud::CloudConfig sharded_config;
  sharded_config.arch = Arch(CapacityMode::kProvisioned, 4, 0);
  cloud::CloudEnv sharded(sharded_config);
  const std::string sharded_image = SerializeSnapshot(sharded);
  cloud::CloudEnv fresh_default;
  const Status into_default =
      RestoreSnapshot(sharded_image, &fresh_default);
  EXPECT_TRUE(into_default.IsInvalidArgument())
      << into_default.ToString();

  cloud::CloudEnv default_env;
  const std::string default_image = SerializeSnapshot(default_env);
  cloud::CloudConfig other_config;
  other_config.arch = Arch(CapacityMode::kOnDemand, 1, 0);
  cloud::CloudEnv fresh_ondemand(other_config);
  EXPECT_TRUE(
      RestoreSnapshot(default_image, &fresh_ondemand).IsInvalidArgument());

  // Pre-v5 legacy images carry no spec and assume the default layout.
  const std::string v1 = std::string("WDXSNAP1") + std::string(6, '\0');
  cloud::CloudEnv legacy_default;
  EXPECT_TRUE(RestoreSnapshot(v1, &legacy_default).ok());
  cloud::CloudConfig sharded_config2;
  sharded_config2.arch = Arch(CapacityMode::kProvisioned, 4, 0);
  cloud::CloudEnv legacy_sharded(sharded_config2);
  EXPECT_TRUE(RestoreSnapshot(v1, &legacy_sharded).IsInvalidArgument());
}

TEST(ArchitectureTest, SnapshotV5RoundTripsOnDemandCeilings) {
  cloud::CloudConfig config;
  config.arch = Arch(CapacityMode::kOnDemand, 1, 0);
  config.dynamodb.write_units_per_second = 50;
  config.dynamodb.read_units_per_second = 50;
  cloud::CloudEnv env(config);
  Agent agent;
  ASSERT_TRUE(env.dynamodb().CreateTable(agent, "t").ok());
  cloud::Item item{"k", "r", {{"v", {std::string(4096, 'x')}}}};
  // Push sustained traffic through several one-second windows so the
  // burst ceiling moves above its starting point.
  for (int round = 0; round < 400; ++round) {
    ASSERT_TRUE(env.dynamodb().BatchPut(agent, "t", {item}).ok());
  }
  const auto& state = env.dynamodb().ondemand_state();
  ASSERT_GT(state.peak_write, 0.0);

  cloud::CloudConfig restored_config = config;
  cloud::CloudEnv restored(restored_config);
  ASSERT_TRUE(RestoreSnapshot(SerializeSnapshot(env), &restored).ok());
  const auto& back = restored.dynamodb().ondemand_state();
  EXPECT_DOUBLE_EQ(back.write_ceiling, state.write_ceiling);
  EXPECT_DOUBLE_EQ(back.read_ceiling, state.read_ceiling);
  EXPECT_DOUBLE_EQ(back.peak_write, state.peak_write);
  EXPECT_DOUBLE_EQ(back.peak_read, state.peak_read);
  EXPECT_EQ(back.window_start, state.window_start);
  EXPECT_DOUBLE_EQ(back.window_write_units, state.window_write_units);
  EXPECT_DOUBLE_EQ(back.window_read_units, state.window_read_units);
}

}  // namespace
}  // namespace webdex::engine
