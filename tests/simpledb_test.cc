#include <gtest/gtest.h>

#include "cloud/simpledb.h"

namespace webdex::cloud {
namespace {

class TestAgent : public SimAgent {};

Item MakeItem(std::string hash, std::string range,
              std::map<std::string, std::vector<std::string>> attrs) {
  return Item{std::move(hash), std::move(range), std::move(attrs)};
}

class SimpleDbTest : public ::testing::Test {
 protected:
  SimpleDbTest() : meter_(Pricing()), db_(Config(), &meter_) {
    EXPECT_TRUE(db_.CreateTable(agent_, "d").ok());
  }

  static SimpleDbConfig Config() {
    SimpleDbConfig config;
    config.request_latency = 30'000;
    config.requests_per_second = 100;
    return config;
  }

  UsageMeter meter_;
  SimpleDb db_;
  TestAgent agent_;
};

TEST_F(SimpleDbTest, PutGetRoundTrip) {
  ASSERT_TRUE(
      db_.BatchPut(agent_, "d", {MakeItem("k", "r", {{"doc", {"path"}}})})
          .ok());
  auto items = db_.Get(agent_, "d", "k");
  ASSERT_TRUE(items.ok());
  ASSERT_EQ(items.value().size(), 1u);
  EXPECT_EQ(items.value()[0].attrs.at("doc")[0], "path");
}

TEST_F(SimpleDbTest, RejectsBinaryValues) {
  std::string binary("\x00\x01", 2);
  auto status =
      db_.BatchPut(agent_, "d", {MakeItem("k", "r", {{"doc", {binary}}})});
  EXPECT_TRUE(status.IsInvalidArgument());
}

TEST_F(SimpleDbTest, RejectsValuesOverOneKilobyte) {
  std::string big(1025, 'x');
  EXPECT_TRUE(
      db_.BatchPut(agent_, "d", {MakeItem("k", "r", {{"doc", {big}}})})
          .IsInvalidArgument());
  std::string exactly(1024, 'x');
  EXPECT_TRUE(
      db_.BatchPut(agent_, "d", {MakeItem("k", "r", {{"doc", {exactly}}})})
          .ok());
}

TEST_F(SimpleDbTest, RejectsTooManyAttributes) {
  std::vector<std::string> values(257, "v");
  EXPECT_TRUE(
      db_.BatchPut(agent_, "d", {MakeItem("k", "r", {{"doc", values}})})
          .IsInvalidArgument());
}

TEST_F(SimpleDbTest, BillsBoxUsageHours) {
  ASSERT_TRUE(
      db_.BatchPut(agent_, "d", {MakeItem("k", "r", {{"doc", {"v"}}})}).ok());
  ASSERT_TRUE(db_.Get(agent_, "d", "k").ok());
  const Pricing pricing;
  EXPECT_DOUBLE_EQ(meter_.usage().sdb_box_hours,
                   pricing.simpledb_box_hours_per_put +
                       pricing.simpledb_box_hours_per_get);
  EXPECT_GT(meter_.ComputeBill().simpledb, 0.0);
}

TEST_F(SimpleDbTest, SlowerThanDynamoPerRequest) {
  ASSERT_TRUE(
      db_.BatchPut(agent_, "d", {MakeItem("k", "r", {{"doc", {"v"}}})}).ok());
  EXPECT_GE(agent_.now(), 30'000);  // one 30 ms round trip at least
}

TEST_F(SimpleDbTest, OverheadPerItemAndAttribute) {
  ASSERT_TRUE(db_.BatchPut(agent_, "d",
                           {MakeItem("k", "r", {{"doc", {"a", "b"}}})})
                  .ok());
  EXPECT_EQ(db_.OverheadBytes("d"), SimpleDb::kPerItemOverheadBytes +
                                        2 * SimpleDb::kPerAttributeOverheadBytes);
}

TEST_F(SimpleDbTest, ReplacementUpdatesAccounting) {
  ASSERT_TRUE(db_.BatchPut(agent_, "d",
                           {MakeItem("k", "r", {{"doc", {"aaaa", "bb"}}})})
                  .ok());
  ASSERT_TRUE(
      db_.BatchPut(agent_, "d", {MakeItem("k", "r", {{"doc", {"c"}}})}).ok());
  EXPECT_EQ(db_.ItemCount("d"), 1u);
  const Item current = MakeItem("k", "r", {{"doc", {"c"}}});
  EXPECT_EQ(db_.StoredBytes("d"), current.SizeBytes());
  EXPECT_EQ(db_.OverheadBytes("d"), SimpleDb::kPerItemOverheadBytes +
                                        SimpleDb::kPerAttributeOverheadBytes);
}

TEST_F(SimpleDbTest, CapabilityModel) {
  EXPECT_FALSE(db_.SupportsBinaryValues());
  EXPECT_EQ(db_.MaxValueBytes(), 1024u);
  EXPECT_EQ(db_.MaxValuesPerItem(), 255u);
  EXPECT_STREQ(db_.Name(), "SimpleDB");
}

}  // namespace
}  // namespace webdex::cloud
