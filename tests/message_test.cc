#include <gtest/gtest.h>

#include "engine/message.h"

namespace webdex::engine {
namespace {

TEST(LoadRequestTest, RoundTrip) {
  LoadRequest request{"xmark-000042.xml"};
  auto parsed = LoadRequest::Parse(request.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().uri, "xmark-000042.xml");
}

TEST(LoadRequestTest, UriMayContainSpaces) {
  LoadRequest request{"my docs/le déjeuner.xml"};
  auto parsed = LoadRequest::Parse(request.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().uri, "my docs/le déjeuner.xml");
}

TEST(LoadRequestTest, RejectsWrongTagAndEmptyUri) {
  EXPECT_TRUE(LoadRequest::Parse("QUERY\n1\nx").status().IsInvalidArgument());
  EXPECT_TRUE(LoadRequest::Parse("LOAD").status().IsInvalidArgument());
  EXPECT_TRUE(LoadRequest::Parse("LOAD\n").status().IsInvalidArgument());
  EXPECT_TRUE(LoadRequest::Parse("").status().IsInvalidArgument());
}

TEST(LoadRequestTest, AddSerializationIsByteStable) {
  // The mutation protocol must not disturb the original wire format:
  // redelivered pre-mutability messages still parse, and a kAdd request
  // serializes exactly as before.
  LoadRequest request{"xmark-000042.xml"};
  EXPECT_EQ(request.op, LoadOp::kAdd);
  EXPECT_EQ(request.Serialize(), "LOAD\nxmark-000042.xml");
  auto parsed = LoadRequest::Parse("LOAD\nxmark-000042.xml");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().op, LoadOp::kAdd);
  EXPECT_EQ(parsed.value().generation, 0u);
}

TEST(LoadRequestTest, UpsertRoundTrip) {
  LoadRequest request{"a b/doc.xml"};
  request.op = LoadOp::kUpsert;
  request.generation = 41;
  EXPECT_EQ(request.Serialize(), "UPSERT\n41\na b/doc.xml");
  auto parsed = LoadRequest::Parse(request.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().op, LoadOp::kUpsert);
  EXPECT_EQ(parsed.value().generation, 41u);
  EXPECT_EQ(parsed.value().uri, "a b/doc.xml");
}

TEST(LoadRequestTest, DeleteRoundTrip) {
  LoadRequest request{"doc.xml"};
  request.op = LoadOp::kDelete;
  request.generation = 7;
  auto parsed = LoadRequest::Parse(request.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().op, LoadOp::kDelete);
  EXPECT_EQ(parsed.value().generation, 7u);
  EXPECT_EQ(parsed.value().uri, "doc.xml");
}

TEST(LoadRequestTest, RejectsMalformedMutations) {
  // Mutations require a positive generation line and a URI: generation 0
  // is reserved for the static corpus and never travels on the wire.
  EXPECT_TRUE(LoadRequest::Parse("UPSERT\n1").status().IsInvalidArgument());
  EXPECT_TRUE(LoadRequest::Parse("UPSERT\n0\nx").status().IsInvalidArgument());
  EXPECT_TRUE(LoadRequest::Parse("UPSERT\n1\n").status().IsInvalidArgument());
  EXPECT_TRUE(
      LoadRequest::Parse("UPSERT\nabc\nx").status().IsInvalidArgument());
  EXPECT_TRUE(LoadRequest::Parse("DELETE\n1").status().IsInvalidArgument());
  EXPECT_TRUE(LoadRequest::Parse("DELETE\n0\nx").status().IsInvalidArgument());
  EXPECT_TRUE(LoadRequest::Parse("DELETE").status().IsInvalidArgument());
}

TEST(QueryRequestTest, RoundTripPreservesMultilineQueries) {
  QueryRequest request;
  request.id = 77;
  request.query_text = "//a[/b,\n  /c]";  // queries may contain newlines
  auto parsed = QueryRequest::Parse(request.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().id, 77u);
  EXPECT_EQ(parsed.value().query_text, "//a[/b,\n  /c]");
}

TEST(QueryRequestTest, RejectsMalformed) {
  EXPECT_TRUE(QueryRequest::Parse("QUERY").status().IsInvalidArgument());
  EXPECT_TRUE(QueryRequest::Parse("QUERY\n12").status().IsInvalidArgument());
  EXPECT_TRUE(
      QueryRequest::Parse("QUERY\n12\n").status().IsInvalidArgument());
  EXPECT_TRUE(QueryRequest::Parse("LOAD\nx").status().IsInvalidArgument());
}

TEST(QueryResponseTest, RoundTrip) {
  QueryResponse response;
  response.id = 12;
  response.result_key = "result-12.xml";
  response.row_count = 349;
  auto parsed = QueryResponse::Parse(response.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().id, 12u);
  EXPECT_EQ(parsed.value().result_key, "result-12.xml");
  EXPECT_EQ(parsed.value().row_count, 349u);
}

TEST(QueryResponseTest, RejectsMalformed) {
  EXPECT_TRUE(QueryResponse::Parse("DONE\n1").status().IsInvalidArgument());
  EXPECT_TRUE(
      QueryResponse::Parse("DONE\n1\n2\n").status().IsInvalidArgument());
  EXPECT_TRUE(QueryResponse::Parse("nope").status().IsInvalidArgument());
}

}  // namespace
}  // namespace webdex::engine
