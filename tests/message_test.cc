#include <gtest/gtest.h>

#include "engine/message.h"

namespace webdex::engine {
namespace {

TEST(LoadRequestTest, RoundTrip) {
  LoadRequest request{"xmark-000042.xml"};
  auto parsed = LoadRequest::Parse(request.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().uri, "xmark-000042.xml");
}

TEST(LoadRequestTest, UriMayContainSpaces) {
  LoadRequest request{"my docs/le déjeuner.xml"};
  auto parsed = LoadRequest::Parse(request.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().uri, "my docs/le déjeuner.xml");
}

TEST(LoadRequestTest, RejectsWrongTagAndEmptyUri) {
  EXPECT_TRUE(LoadRequest::Parse("QUERY\n1\nx").status().IsInvalidArgument());
  EXPECT_TRUE(LoadRequest::Parse("LOAD").status().IsInvalidArgument());
  EXPECT_TRUE(LoadRequest::Parse("LOAD\n").status().IsInvalidArgument());
  EXPECT_TRUE(LoadRequest::Parse("").status().IsInvalidArgument());
}

TEST(QueryRequestTest, RoundTripPreservesMultilineQueries) {
  QueryRequest request;
  request.id = 77;
  request.query_text = "//a[/b,\n  /c]";  // queries may contain newlines
  auto parsed = QueryRequest::Parse(request.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().id, 77u);
  EXPECT_EQ(parsed.value().query_text, "//a[/b,\n  /c]");
}

TEST(QueryRequestTest, RejectsMalformed) {
  EXPECT_TRUE(QueryRequest::Parse("QUERY").status().IsInvalidArgument());
  EXPECT_TRUE(QueryRequest::Parse("QUERY\n12").status().IsInvalidArgument());
  EXPECT_TRUE(
      QueryRequest::Parse("QUERY\n12\n").status().IsInvalidArgument());
  EXPECT_TRUE(QueryRequest::Parse("LOAD\nx").status().IsInvalidArgument());
}

TEST(QueryResponseTest, RoundTrip) {
  QueryResponse response;
  response.id = 12;
  response.result_key = "result-12.xml";
  response.row_count = 349;
  auto parsed = QueryResponse::Parse(response.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().id, 12u);
  EXPECT_EQ(parsed.value().result_key, "result-12.xml");
  EXPECT_EQ(parsed.value().row_count, 349u);
}

TEST(QueryResponseTest, RejectsMalformed) {
  EXPECT_TRUE(QueryResponse::Parse("DONE\n1").status().IsInvalidArgument());
  EXPECT_TRUE(
      QueryResponse::Parse("DONE\n1\n2\n").status().IsInvalidArgument());
  EXPECT_TRUE(QueryResponse::Parse("nope").status().IsInvalidArgument());
}

}  // namespace
}  // namespace webdex::engine
