#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/strings.h"
#include "index/entry.h"
#include "index/intern.h"
#include "index/keys.h"
#include "xmark/xmark_generator.h"
#include "xml/parser.h"

namespace webdex::index {
namespace {

// --- StringInterner ----------------------------------------------------------

TEST(InternTest, InternResolveRoundTrip) {
  StringInterner interner;
  const KeyHandle a = interner.Intern("epainting");
  const KeyHandle b = interner.Intern("aid 1854-1");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Resolve(a), "epainting");
  EXPECT_EQ(interner.Resolve(b), "aid 1854-1");
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternTest, SameStringSameHandle) {
  StringInterner interner;
  const KeyHandle first = interner.Intern("ename");
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(interner.Intern("ename"), first);
  }
  EXPECT_EQ(interner.size(), 1u);
}

TEST(InternTest, FindOnlyHitsInternedStrings) {
  StringInterner interner;
  EXPECT_EQ(interner.Find("missing"), kNoHandle);
  const KeyHandle h = interner.Intern("present");
  EXPECT_EQ(interner.Find("present"), h);
  EXPECT_EQ(interner.Find("missing"), kNoHandle);
  EXPECT_EQ(interner.Find(""), kNoHandle);
}

TEST(InternTest, EmptyStringInternable) {
  StringInterner interner;
  const KeyHandle h = interner.Intern("");
  EXPECT_EQ(interner.Resolve(h), "");
  EXPECT_EQ(interner.Find(""), h);
}

TEST(InternTest, ResolveHashMatchesHashBytes) {
  StringInterner interner;
  const KeyHandle h = interner.Intern("wlion");
  EXPECT_EQ(interner.ResolveHash(h), StringInterner::HashBytes("wlion"));
}

// Collision-heavy fill: enough distinct keys to force several bucket-table
// growths in every shard, with adversarially similar spellings.
TEST(InternTest, CollisionHeavyFillKeepsEveryKey) {
  StringInterner interner;
  std::map<std::string, KeyHandle> expected;
  for (int i = 0; i < 50000; ++i) {
    const std::string key =
        StrFormat("ekey%07u", static_cast<unsigned>(i) * 2654435761u % 9999999u);
    const KeyHandle h = interner.Intern(key);
    auto [it, inserted] = expected.emplace(key, h);
    if (!inserted) EXPECT_EQ(it->second, h) << key;
  }
  EXPECT_EQ(interner.size(), expected.size());
  for (const auto& [key, handle] : expected) {
    EXPECT_EQ(interner.Find(key), handle) << key;
    EXPECT_EQ(interner.Resolve(handle), key);
  }
}

// Handle stability: views resolved early must survive arbitrary growth
// (arena chunks fill, header blocks extend, bucket tables rehash).
TEST(InternTest, HandlesAndViewsStableAcrossGrowth) {
  StringInterner interner;
  std::vector<std::pair<KeyHandle, std::string_view>> early;
  for (int i = 0; i < 64; ++i) {
    const std::string key = StrFormat("estable%d", i);
    const KeyHandle h = interner.Intern(key);
    early.emplace_back(h, interner.Resolve(h));
  }
  // ~3 MB of arena growth across every shard.
  for (int i = 0; i < 30000; ++i) {
    interner.Intern(StrFormat("w%d-%08x", i, i * 40503u));
  }
  for (int i = 0; i < 64; ++i) {
    const std::string key = StrFormat("estable%d", i);
    EXPECT_EQ(interner.Find(key), early[static_cast<size_t>(i)].first);
    // The exact view taken before growth still points at live bytes.
    EXPECT_EQ(early[static_cast<size_t>(i)].second, key);
  }
}

// Arena growth edge cases: strings larger than one arena chunk get a
// dedicated allocation, interleaved with small strings on both sides.
TEST(InternTest, OversizedStringsGetDedicatedChunks) {
  StringInterner interner;
  const std::string big_first(1 << 17, 'a');  // 128 KB > 64 KB chunk
  const KeyHandle h0 = interner.Intern(big_first);
  const KeyHandle h1 = interner.Intern("esmall");
  const std::string big_second(1 << 16, 'b');  // exactly one chunk
  const KeyHandle h2 = interner.Intern(big_second);
  const KeyHandle h3 = interner.Intern("wtiny");
  EXPECT_EQ(interner.Resolve(h0), big_first);
  EXPECT_EQ(interner.Resolve(h1), "esmall");
  EXPECT_EQ(interner.Resolve(h2), big_second);
  EXPECT_EQ(interner.Resolve(h3), "wtiny");
  const InternStats stats = interner.Stats();
  EXPECT_EQ(stats.keys, 4u);
  EXPECT_EQ(stats.bytes,
            big_first.size() + big_second.size() + 6 + 5);
}

TEST(InternTest, StatsCountLookupsAndProbes) {
  StringInterner interner;
  for (int i = 0; i < 100; ++i) {
    interner.Intern(StrFormat("e%d", i % 10));
  }
  const InternStats stats = interner.Stats();
  EXPECT_EQ(stats.keys, 10u);
  EXPECT_EQ(stats.lookups, 100u);
  uint64_t probes = 0;
  for (uint64_t n : stats.probe_len) probes += n;
  EXPECT_EQ(probes, 100u);
}

// Concurrent interning of overlapping key sets: every thread must agree
// on the handle of every key (run under TSan in sanitizer CI).
TEST(InternTest, ConcurrentInterningAgreesOnHandles) {
  StringInterner interner;
  constexpr int kThreads = 8;
  constexpr int kKeys = 4000;
  std::vector<std::vector<KeyHandle>> handles(
      kThreads, std::vector<KeyHandle>(kKeys, kNoHandle));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &interner, &handles] {
      for (int i = 0; i < kKeys; ++i) {
        // Each thread covers the whole key space from a different start,
        // so insert races and pure hits both occur.
        const int key = (i + t * (kKeys / 8)) % kKeys;
        const KeyHandle h = interner.Intern(StrFormat("eshared%d", key));
        handles[static_cast<size_t>(t)][static_cast<size_t>(key)] = h;
        // Resolve is lock-free; exercise it concurrently with inserts.
        EXPECT_EQ(interner.Resolve(h), StrFormat("eshared%d", key));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(interner.size(), static_cast<uint64_t>(kKeys));
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(handles[static_cast<size_t>(t)], handles[0]) << "thread " << t;
  }
}

// --- key(n) helpers ----------------------------------------------------------

TEST(InternTest, PrefixedKeyHelpersMatchLegacyEncodings) {
  StringInterner interner;
  EXPECT_EQ(interner.Resolve(InternElementKey(interner, "painting")),
            ElementKey("painting"));
  EXPECT_EQ(interner.Resolve(InternAttributeNameKey(interner, "id")),
            AttributeNameKey("id"));
  EXPECT_EQ(
      interner.Resolve(InternAttributeValueKey(interner, "id", "1863-1")),
      AttributeValueKey("id", "1863-1"));
  EXPECT_EQ(interner.Resolve(InternWordKey(interner, "olympia")),
            WordKey("olympia"));
}

// --- PathDict ----------------------------------------------------------------

TEST(PathDictTest, ExtendBuildsEscapedPathStrings) {
  InternCore core;
  StringInterner& keys = core.keys();
  PathDict& paths = core.paths();
  const KeyHandle site = keys.Intern("esite");
  const KeyHandle item = keys.Intern("eitem");
  const PathHandle p1 = paths.Extend(kNoHandle, site);
  const PathHandle p2 = paths.Extend(p1, item);
  EXPECT_EQ(paths.Resolve(p1), "/esite");
  EXPECT_EQ(paths.Resolve(p2), "/esite/eitem");
  EXPECT_EQ(paths.Parent(p2), p1);
  EXPECT_EQ(paths.Parent(p1), kNoHandle);
  EXPECT_EQ(paths.LastKey(p2), item);
  EXPECT_EQ(paths.Depth(p1), 1u);
  EXPECT_EQ(paths.Depth(p2), 2u);
}

TEST(PathDictTest, SameEdgeSameHandle) {
  InternCore core;
  const KeyHandle site = core.keys().Intern("esite");
  const KeyHandle item = core.keys().Intern("eitem");
  const PathHandle p1 = core.paths().Extend(kNoHandle, site);
  EXPECT_EQ(core.paths().Extend(kNoHandle, site), p1);
  const PathHandle p2 = core.paths().Extend(p1, item);
  EXPECT_EQ(core.paths().Extend(p1, item), p2);
  EXPECT_EQ(core.paths().size(), 2u);
}

TEST(PathDictTest, ComponentsEscapingRoundTrips) {
  InternCore core;
  // A key containing both escape triggers ('/' and '%').
  const KeyHandle weird = core.keys().Intern("aid a/b%c");
  const KeyHandle plain = core.keys().Intern("ename");
  const PathHandle p =
      core.paths().Extend(core.paths().Extend(kNoHandle, plain), weird);
  EXPECT_EQ(core.paths().Resolve(p), "/ename/aid a%2Fb%25c");
  // SplitPath undoes the escaping back to the raw component keys.
  const auto split = SplitPath(std::string(core.paths().Resolve(p)));
  ASSERT_EQ(split.size(), 2u);
  EXPECT_EQ(split[0], "ename");
  EXPECT_EQ(split[1], "aid a/b%c");
  // Components returns the raw key handles in path order.
  std::vector<KeyHandle> components;
  core.paths().Components(p, &components);
  EXPECT_EQ(components, (std::vector<KeyHandle>{plain, weird}));
}

TEST(PathDictTest, DeepChainsAndManySiblings) {
  InternCore core;
  // Deep chain.
  PathHandle parent = kNoHandle;
  std::string expected;
  for (int depth = 0; depth < 200; ++depth) {
    const std::string label = StrFormat("ed%d", depth);
    parent = core.paths().Extend(parent, core.keys().Intern(label));
    expected += "/" + label;
    EXPECT_EQ(core.paths().Depth(parent), static_cast<uint32_t>(depth + 1));
  }
  EXPECT_EQ(core.paths().Resolve(parent), expected);
  // Fan-out of siblings under one parent, forcing bucket growth.
  std::set<PathHandle> siblings;
  for (int i = 0; i < 5000; ++i) {
    siblings.insert(
        core.paths().Extend(parent, core.keys().Intern(StrFormat("ws%d", i))));
  }
  EXPECT_EQ(siblings.size(), 5000u);
}

// --- Property: extraction interns exactly its emitted keys and paths ---------

TEST(InternPropertyTest, ExtractDocIndexRoundTripsAllKeysAndPaths) {
  xmark::GeneratorConfig config;
  config.num_documents = 10;
  config.entities_per_document = 12;
  xmark::XmarkGenerator generator(config);
  InternCore core;
  for (int i = 0; i < config.num_documents; ++i) {
    const xml::Document doc = generator.GenerateDom(i);
    const DocIndex index = ExtractDocIndexInto(doc, ExtractOptions(), &core);
    ASSERT_GT(index.size(), 0u);
    std::string previous_key;
    for (const auto& entry : index.entries()) {
      const std::string key(index.key(entry));
      // Entries are sorted by resolved key string, like the old std::map.
      EXPECT_LT(previous_key, key);
      previous_key = key;
      // Every key resolves back to itself through the interner.
      const KeyHandle h = core.keys().Find(key);
      ASSERT_NE(h, kNoHandle) << key;
      EXPECT_EQ(core.keys().Resolve(h), key);
      // Every path ends with this entry's key and survives a
      // resolve -> split -> re-extend round trip.
      ASSERT_GT(entry.id_count, 0u);
      for (const std::string& path : index.PathVector(entry)) {
        const auto components = SplitPath(path);
        ASSERT_FALSE(components.empty()) << path;
        EXPECT_EQ(components.back(), key) << path;
        PathHandle rebuilt = kNoHandle;
        for (const std::string& component : components) {
          const KeyHandle ch = core.keys().Find(component);
          ASSERT_NE(ch, kNoHandle) << component;
          rebuilt = core.paths().Extend(rebuilt, ch);
        }
        EXPECT_EQ(core.paths().Resolve(rebuilt), path);
      }
    }
  }
}

// --- Histogram::RecordN ------------------------------------------------------

TEST(HistogramRecordNTest, BulkRecordMatchesRepeatedRecord) {
  common::Histogram bulk;
  common::Histogram repeated;
  bulk.RecordN(3.0, 5);
  bulk.RecordN(100.0, 2);
  bulk.RecordN(42.0, 0);  // no-op
  for (int i = 0; i < 5; ++i) repeated.Record(3.0);
  for (int i = 0; i < 2; ++i) repeated.Record(100.0);
  EXPECT_EQ(bulk.count(), repeated.count());
  EXPECT_EQ(bulk.sum(), repeated.sum());
  EXPECT_EQ(bulk.min(), repeated.min());
  EXPECT_EQ(bulk.max(), repeated.max());
  for (int i = 0; i < common::Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(bulk.bucket_count(i), repeated.bucket_count(i)) << i;
  }
}

// --- Metric publication ------------------------------------------------------

TEST(InternMetricsTest, PublishMirrorsCoreIntoRegistry) {
  InternCore core;
  core.paths().Extend(kNoHandle, core.keys().Intern("esite"));
  core.keys().Intern("ename");
  common::MetricRegistry registry;
  PublishInternMetrics(&registry, core);
  EXPECT_EQ(registry.GaugeValue("index.intern.keys"), 2.0);
  EXPECT_EQ(registry.GaugeValue("index.intern.paths"), 1.0);
  EXPECT_GT(registry.GaugeValue("index.intern.bytes"), 0.0);
  EXPECT_GT(registry.GaugeValue("index.intern.path_bytes"), 0.0);
  const common::Histogram* probes =
      registry.FindHistogram("index.intern.probe_len");
  ASSERT_NE(probes, nullptr);
  EXPECT_EQ(probes->count(), 2u);  // two Intern lookups
  // Republishing rebuilds rather than double-counts.
  PublishInternMetrics(&registry, core);
  EXPECT_EQ(registry.FindHistogram("index.intern.probe_len")->count(), 2u);
}

}  // namespace
}  // namespace webdex::index
