#include <gtest/gtest.h>

#include "query/evaluator.h"
#include "query/parser.h"
#include "xmark/paintings.h"
#include "xml/parser.h"

namespace webdex::query {
namespace {

xml::Document Doc(const std::string& uri, const std::string& text) {
  auto doc = xml::ParseDocument(uri, text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(doc).value();
}

Query Q(std::string_view text) {
  auto q = ParseQuery(text);
  if (!q.ok()) {
    ADD_FAILURE() << text << " -> " << q.status().ToString();
    return Query({}, {});
  }
  return std::move(q).value();
}

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() {
    for (const auto& generated : xmark::Figure3Documents()) {
      docs_.push_back(Doc(generated.uri, generated.text));
    }
    for (const auto& doc : docs_) doc_ptrs_.push_back(&doc);
  }

  std::vector<xml::Document> docs_;
  std::vector<const xml::Document*> doc_ptrs_;
};

TEST_F(EvaluatorTest, Q1PairsNameWithPainterName) {
  // q1 of Figure 2 over the Figure 3 documents.
  const QueryResult result = Evaluator::Evaluate(
      Q("//painting[/name:val, //painter/name:val]"), doc_ptrs_);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0],
            (std::vector<std::string>{"The Lion Hunt", "EugeneDelacroix"}));
  EXPECT_EQ(result.rows[1],
            (std::vector<std::string>{"Olympia", "EdouardManet"}));
}

TEST_F(EvaluatorTest, ContainsPredicateSelectsLionHunt) {
  const QueryResult result = Evaluator::Evaluate(
      Q("//painting[/name~'Lion', //painter/name/last:val]"), doc_ptrs_);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0], "Delacroix");
}

TEST_F(EvaluatorTest, AttributeEquality) {
  const QueryResult result = Evaluator::Evaluate(
      Q("//painting[/@id='1863-1', /name:val]"), doc_ptrs_);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0], "Olympia");
}

TEST_F(EvaluatorTest, ContOutputsSerializedSubtree) {
  const QueryResult result =
      Evaluator::Evaluate(Q("//painter/name:cont"), doc_ptrs_);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0][0],
            "<name><first>Eugene</first><last>Delacroix</last></name>");
}

TEST_F(EvaluatorTest, DescendantVsChildAxis) {
  const xml::Document doc = Doc("d", "<a><b><c>x</c></b></a>");
  EXPECT_TRUE(Evaluator::Matches(Q("//a[//c]").patterns()[0], doc));
  EXPECT_FALSE(Evaluator::Matches(Q("//a[/c]").patterns()[0], doc));
  EXPECT_TRUE(Evaluator::Matches(Q("//a[/b[/c]]").patterns()[0], doc));
}

TEST_F(EvaluatorTest, RootChildAxisAnchorsAtDocumentRoot) {
  const xml::Document doc = Doc("d", "<a><a>x</a></a>");
  // '/a' matches only the document element; '//a' matches both.
  const auto anchored = Evaluator::MatchPattern(
      Q("/a:val").patterns()[0], doc);
  EXPECT_EQ(anchored.size(), 1u);
  const auto floating = Evaluator::MatchPattern(
      Q("//a:val").patterns()[0], doc);
  EXPECT_EQ(floating.size(), 2u);
}

TEST_F(EvaluatorTest, AllEmbeddingsEnumerated) {
  const xml::Document doc =
      Doc("d", "<r><a><b>1</b><b>2</b></a><a><b>3</b></a></r>");
  const auto matches =
      Evaluator::MatchPattern(Q("//a[/b:val]").patterns()[0], doc);
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].outputs[0], "1");
  EXPECT_EQ(matches[1].outputs[0], "2");
  EXPECT_EQ(matches[2].outputs[0], "3");
}

TEST_F(EvaluatorTest, MultiBranchCartesianProduct) {
  const xml::Document doc =
      Doc("d", "<r><a>1</a><a>2</a><b>x</b><b>y</b></r>");
  const auto matches = Evaluator::MatchPattern(
      Q("//r[/a:val, /b:val]").patterns()[0], doc);
  EXPECT_EQ(matches.size(), 4u);  // 2 a's x 2 b's
}

TEST_F(EvaluatorTest, RangePredicateOnNumericText) {
  const xml::Document doc = Doc(
      "d", "<r><p><y>1850</y></p><p><y>1860</y></p><p><y>1870</y></p></r>");
  const auto matches = Evaluator::MatchPattern(
      Q("//p[/y:val in(1854,1865]]").patterns()[0], doc);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].outputs[0], "1860");
}

TEST_F(EvaluatorTest, ValueJoinAcrossDocuments) {
  // q5 of Figure 2 against a generated paintings corpus.
  std::vector<xml::Document> docs;
  for (const auto& generated : xmark::GeneratePaintings()) {
    docs.push_back(Doc(generated.uri, generated.text));
  }
  std::vector<const xml::Document*> ptrs;
  for (const auto& doc : docs) ptrs.push_back(&doc);

  const QueryResult result = Evaluator::Evaluate(
      Q("//museum[/name:val, /painting/@id#x]; "
        "//painting[/@id#y, /painter/name[/last='Delacroix']] where #x=#y"),
      ptrs);
  ASSERT_FALSE(result.rows.empty());
  // Every returned museum must list a Delacroix painting id; painting #0
  // ("The Lion Hunt", id 1854-1) belongs to museum 0.
  bool found_louvre = false;
  for (const auto& row : result.rows) {
    ASSERT_EQ(row.size(), 1u);
    if (row[0] == "Louvre Museum") found_louvre = true;
  }
  EXPECT_TRUE(found_louvre);
}

TEST_F(EvaluatorTest, JoinMismatchYieldsNoRows) {
  const QueryResult result = Evaluator::Evaluate(
      Q("//painting[/@id#a]; //painter[/name/last#b] where #a=#b"),
      doc_ptrs_);
  EXPECT_TRUE(result.rows.empty());
}

TEST_F(EvaluatorTest, NoMatchesYieldEmptyResult) {
  const QueryResult result =
      Evaluator::Evaluate(Q("//sculpture"), doc_ptrs_);
  EXPECT_TRUE(result.rows.empty());
  EXPECT_EQ(result.SizeBytes(), 0u);
}

TEST_F(EvaluatorTest, ResultXmlSerialization) {
  QueryResult result;
  result.rows = {{"a & b", "<name>x</name>"}};
  const std::string xml = result.ToXml();
  EXPECT_EQ(xml,
            "<results><row><col>a &amp; b</col><col><name>x</name></col>"
            "</row></results>");
  EXPECT_GT(result.SizeBytes(), 0u);
}

TEST_F(EvaluatorTest, AttributePatternRootMatchesAttributes) {
  const xml::Document doc = Doc("d", "<a id=\"7\"><b id=\"8\"/></a>");
  const auto matches =
      Evaluator::MatchPattern(Q("//@id:val").patterns()[0], doc);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].outputs[0], "7");
  EXPECT_EQ(matches[1].outputs[0], "8");
}

TEST_F(EvaluatorTest, ContOnAttributeSerializesNameValue) {
  const xml::Document doc = Doc("d", "<a id=\"7\"/>");
  const auto matches =
      Evaluator::MatchPattern(Q("//a/@id:cont").patterns()[0], doc);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].outputs[0], "id=\"7\"");
}

TEST_F(EvaluatorTest, MixedContentStringValue) {
  const xml::Document doc =
      Doc("d", "<p>one <b>two</b> three</p>");
  const auto matches =
      Evaluator::MatchPattern(Q("//p:val").patterns()[0], doc);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].outputs[0], "one two three");
}

TEST_F(EvaluatorTest, ContributingDocumentsCountsJoinSides) {
  std::vector<xml::Document> docs;
  docs.push_back(Doc("left", "<a><k>1</k></a>"));
  docs.push_back(Doc("right", "<b><k>1</k></b>"));
  docs.push_back(Doc("noise", "<b><k>2</k></b>"));
  std::vector<const xml::Document*> ptrs;
  for (const auto& doc : docs) ptrs.push_back(&doc);
  const QueryResult result = Evaluator::Evaluate(
      Q("//a/k#x; //b/k#y where #x=#y"), ptrs);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.ContributingDocuments(), 2u);
  ASSERT_EQ(result.row_uris.size(), 1u);
  EXPECT_EQ(result.row_uris[0],
            (std::vector<std::string>{"left", "right"}));
}

TEST_F(EvaluatorTest, PredicateOnInternalNode) {
  const xml::Document doc =
      Doc("d", "<r><g><n>x</n><v>1</v></g><g><n>y</n><v>2</v></g></r>");
  const auto matches = Evaluator::MatchPattern(
      Q("//g[/v='2']/n:val").patterns()[0], doc);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].outputs[0], "y");
}

TEST_F(EvaluatorTest, WorkStatsAccumulateAndReset) {
  (void)Evaluator::ConsumeWorkStats();
  (void)Evaluator::Evaluate(Q("//painting[/name:val]"), doc_ptrs_);
  const auto stats = Evaluator::ConsumeWorkStats();
  EXPECT_GT(stats.doc_bytes_scanned, 0u);
  EXPECT_EQ(stats.embeddings_found, 2u);
  const auto after = Evaluator::ConsumeWorkStats();
  EXPECT_EQ(after.doc_bytes_scanned, 0u);
}

}  // namespace
}  // namespace webdex::query
