#include <gtest/gtest.h>

#include "cloud/cluster.h"

namespace webdex::cloud {
namespace {

const WorkModel kWork;

TEST(InstanceTest, SpecsMatchPaperSection81) {
  const InstanceSpec large = SpecFor(InstanceType::kLarge);
  EXPECT_EQ(large.cores, 2);
  EXPECT_DOUBLE_EQ(large.ecu_per_core, 2.0);
  EXPECT_DOUBLE_EQ(large.ram_gb, 7.5);
  const InstanceSpec xlarge = SpecFor(InstanceType::kExtraLarge);
  EXPECT_EQ(xlarge.cores, 4);
  EXPECT_DOUBLE_EQ(xlarge.ecu_per_core, 2.0);
  EXPECT_DOUBLE_EQ(xlarge.ram_gb, 15.0);
}

TEST(InstanceTest, SerialWorkScalesWithEcuOnly) {
  Instance large(0, InstanceType::kLarge, &kWork);
  Instance xlarge(1, InstanceType::kExtraLarge, &kWork);
  large.ChargeSerialWork(1000);
  xlarge.ChargeSerialWork(1000);
  // Same per-core speed: serial work takes the same time on both.
  EXPECT_EQ(large.now(), xlarge.now());
  EXPECT_EQ(large.now(), 500);  // 1000 ECU-us at 2 ECU/core
}

TEST(InstanceTest, ParallelWorkScalesWithCores) {
  Instance large(0, InstanceType::kLarge, &kWork);
  Instance xlarge(1, InstanceType::kExtraLarge, &kWork);
  large.ChargeParallelWork(8000);
  xlarge.ChargeParallelWork(8000);
  EXPECT_EQ(large.now(), 2000);   // 8000 / (2 ECU x 2 cores)
  EXPECT_EQ(xlarge.now(), 1000);  // 8000 / (2 ECU x 4 cores)
}

TEST(InstanceTest, NegativeWorkIgnored) {
  Instance inst(0, InstanceType::kLarge, &kWork);
  inst.ChargeSerialWork(-100);
  inst.ChargeParallelWork(-100);
  EXPECT_EQ(inst.now(), 0);
}

TEST(ClusterTest, RunsTasksOnLeastLoadedInstance) {
  Cluster cluster(2, InstanceType::kLarge, &kWork);
  // Tasks of decreasing durations; greedy min-time scheduling should
  // balance them across the two instances.
  std::vector<Micros> durations{100, 80, 60, 40, 20, 10};
  size_t next = 0;
  const Micros makespan = cluster.RunUntilDrained(
      [&](Instance& instance) -> WorkerStep {
        if (next >= durations.size()) return WorkerStep{false, -1};
        instance.Advance(durations[next++]);
        return WorkerStep{true, 0};
      },
      0);
  // Optimal-ish packing: {100, 40, 20} vs {80, 60, 10} -> makespan 160.
  EXPECT_EQ(makespan, 160);
}

TEST(ClusterTest, SingleInstanceSerializesEverything) {
  Cluster cluster(1, InstanceType::kLarge, &kWork);
  int remaining = 5;
  const Micros makespan = cluster.RunUntilDrained(
      [&](Instance& instance) -> WorkerStep {
        if (remaining == 0) return WorkerStep{false, -1};
        --remaining;
        instance.Advance(100);
        return WorkerStep{true, 0};
      },
      0);
  EXPECT_EQ(makespan, 500);
}

TEST(ClusterTest, EightInstancesBeatOne) {
  auto run = [](int n) {
    Cluster cluster(n, InstanceType::kLarge, &kWork);
    int remaining = 64;
    return cluster.RunUntilDrained(
        [&](Instance& instance) -> WorkerStep {
          if (remaining == 0) return WorkerStep{false, -1};
          --remaining;
          instance.Advance(1000);
          return WorkerStep{true, 0};
        },
        0);
  };
  EXPECT_EQ(run(1), 64'000);
  EXPECT_EQ(run(8), 8'000);
}

TEST(ClusterTest, RetryAtIdlesUntilGivenTime) {
  Cluster cluster(1, InstanceType::kLarge, &kWork);
  int phase = 0;
  const Micros makespan = cluster.RunUntilDrained(
      [&](Instance& instance) -> WorkerStep {
        if (phase == 0) {
          ++phase;
          return WorkerStep{false, 5'000};  // message due at t = 5 ms
        }
        if (phase == 1) {
          EXPECT_GE(instance.now(), 5'000);
          ++phase;
          instance.Advance(100);
          return WorkerStep{true, 0};
        }
        return WorkerStep{false, -1};
      },
      0);
  EXPECT_EQ(makespan, 5'100);
}

TEST(ClusterTest, SyncClocksResetsEverything) {
  Cluster cluster(3, InstanceType::kExtraLarge, &kWork);
  cluster.instance(0).Advance(123);
  cluster.instance(0).AddBusy(50);
  cluster.SyncClocks(1000);
  for (size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster.instance(i).now(), 1000);
    EXPECT_EQ(cluster.instance(i).busy_micros(), 0);
  }
  EXPECT_EQ(cluster.MaxClock(), 1000);
}

TEST(ClusterTest, BusyMicrosAccumulatePerTask) {
  Cluster cluster(1, InstanceType::kLarge, &kWork);
  int remaining = 3;
  cluster.RunUntilDrained(
      [&](Instance& instance) -> WorkerStep {
        if (remaining == 0) return WorkerStep{false, -1};
        --remaining;
        instance.Advance(200);
        return WorkerStep{true, 0};
      },
      0);
  EXPECT_EQ(cluster.instance(0).busy_micros(), 600);
}

}  // namespace
}  // namespace webdex::cloud
