#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"
#include "xmark/xmark_generator.h"

namespace webdex::xml {
namespace {

Result<Document> Parse(std::string_view text) {
  return ParseDocument("test.xml", text);
}

TEST(XmlParserTest, MinimalDocument) {
  auto doc = Parse("<a/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root().label(), "a");
  EXPECT_TRUE(doc.value().root().children().empty());
  EXPECT_EQ(doc.value().uri(), "test.xml");
  EXPECT_EQ(doc.value().size_bytes(), 4u);
}

TEST(XmlParserTest, NestedElementsAndText) {
  auto doc = Parse("<a><b>hello</b><c>world</c></a>");
  ASSERT_TRUE(doc.ok());
  const Node& root = doc.value().root();
  ASSERT_EQ(root.children().size(), 2u);
  EXPECT_EQ(root.children()[0]->label(), "b");
  EXPECT_EQ(root.children()[0]->StringValue(), "hello");
  EXPECT_EQ(root.StringValue(), "helloworld");
}

TEST(XmlParserTest, AttributesBecomeAttributeNodes) {
  auto doc = Parse("<painting id=\"1854-1\" style='oil'/>");
  ASSERT_TRUE(doc.ok());
  const Node& root = doc.value().root();
  ASSERT_EQ(root.children().size(), 2u);
  EXPECT_TRUE(root.children()[0]->is_attribute());
  EXPECT_EQ(root.children()[0]->label(), "id");
  EXPECT_EQ(root.children()[0]->value(), "1854-1");
  EXPECT_EQ(root.children()[1]->value(), "oil");
}

TEST(XmlParserTest, XmlDeclarationAndComments) {
  auto doc = Parse(
      "<?xml version=\"1.0\"?><!-- top --><a><!-- inner -->x</a><!-- end "
      "-->");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root().StringValue(), "x");
}

TEST(XmlParserTest, CdataPreservedVerbatim) {
  auto doc = Parse("<a><![CDATA[5 < 6 & more]]></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root().StringValue(), "5 < 6 & more");
}

TEST(XmlParserTest, PredefinedEntities) {
  auto doc = Parse("<a attr=\"&quot;q&quot;\">&lt;&amp;&gt;&apos;</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root().StringValue(), "<&>'");
  EXPECT_EQ(doc.value().root().children()[0]->value(), "\"q\"");
}

TEST(XmlParserTest, NumericCharacterReferences) {
  auto doc = Parse("<a>&#65;&#x42;&#233;</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root().StringValue(), "AB\xC3\xA9");
}

TEST(XmlParserTest, WhitespaceTextSkippedByDefault) {
  auto doc = Parse("<a>\n  <b>x</b>\n</a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc.value().root().children().size(), 1u);
}

TEST(XmlParserTest, WhitespaceTextKeptOnRequest) {
  ParserOptions options;
  options.skip_whitespace_text = false;
  auto doc = ParseDocument("t.xml", "<a> <b>x</b> </a>", options);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root().children().size(), 3u);
}

TEST(XmlParserTest, ProcessingInstructionsSkipped) {
  auto doc = Parse("<a><?php echo ?>x</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root().StringValue(), "x");
}

TEST(XmlParserTest, MismatchedTagFails) {
  EXPECT_TRUE(Parse("<a><b></a></b>").status().IsCorruption());
}

TEST(XmlParserTest, UnterminatedElementFails) {
  EXPECT_TRUE(Parse("<a><b>").status().IsCorruption());
}

TEST(XmlParserTest, TrailingContentFails) {
  EXPECT_TRUE(Parse("<a/><b/>").status().IsCorruption());
}

TEST(XmlParserTest, UnknownEntityFails) {
  EXPECT_TRUE(Parse("<a>&nope;</a>").status().IsCorruption());
}

TEST(XmlParserTest, DoctypeInternalSubsetRejected) {
  EXPECT_TRUE(
      Parse("<!DOCTYPE a [<!ENTITY x \"y\">]><a>&x;</a>").status()
          .IsCorruption());
}

TEST(XmlParserTest, SimpleDoctypeSkipped) {
  auto doc = Parse("<!DOCTYPE html><a>x</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root().StringValue(), "x");
}

TEST(XmlParserTest, ErrorMessagesCarryLineNumbers) {
  auto doc = Parse("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("line 3"), std::string::npos)
      << doc.status().ToString();
}

TEST(XmlParserTest, SerializeParseRoundTrip) {
  const std::string original =
      "<painting id=\"1863-1\"><name>Olympia &amp; more</name>"
      "<painter><name><first>Edouard</first><last>Manet</last></name>"
      "</painter></painting>";
  auto doc = Parse(original);
  ASSERT_TRUE(doc.ok());
  const std::string serialized = Serialize(doc.value().root());
  EXPECT_EQ(serialized, original);
  auto reparsed = Parse(serialized);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(Serialize(reparsed.value().root()), original);
}

TEST(XmlParserTest, SerializerEscapesSpecials) {
  auto doc = Parse("<a x=\"&lt;&quot;\">a &amp; b</a>");
  ASSERT_TRUE(doc.ok());
  const std::string out = Serialize(doc.value().root());
  EXPECT_EQ(out, "<a x=\"&lt;&quot;\">a &amp; b</a>");
}

TEST(XmlParserTest, IndentedSerialization) {
  auto doc = Parse("<a><b><c/></b></a>");
  ASSERT_TRUE(doc.ok());
  SerializerOptions options;
  options.indent = true;
  const std::string out = Serialize(doc.value().root(), options);
  EXPECT_NE(out.find("\n  <b>"), std::string::npos);
}

TEST(XmlParserTest, DepthLimitRejectsStackBombs) {
  // 600 levels of nesting against the default 512-level limit.
  std::string bomb, close;
  for (int i = 0; i < 600; ++i) {
    bomb += "<a>";
    close += "</a>";
  }
  auto doc = Parse(bomb + close);
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("max_depth"), std::string::npos);

  // A custom limit admits deeper trees.
  ParserOptions options;
  options.max_depth = 1000;
  EXPECT_TRUE(ParseDocument("deep", bomb + close, options).ok());

  // Depth counts the live chain, not total elements: many shallow
  // siblings are fine.
  std::string wide = "<r>";
  for (int i = 0; i < 2000; ++i) wide += "<a/>";
  wide += "</r>";
  EXPECT_TRUE(Parse(wide).ok());
}

// Property: every generated XMark document parses, and re-serializing the
// parse is a fixed point.
class XmarkRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(XmarkRoundTrip, GeneratedDocumentParses) {
  xmark::GeneratorConfig config;
  config.num_documents = 50;
  xmark::XmarkGenerator generator(config);
  const auto generated = generator.Generate(GetParam());
  auto doc = ParseDocument(generated.uri, generated.text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value().root().label(), "site");
  const std::string once = Serialize(doc.value().root());
  auto reparsed = ParseDocument(generated.uri, once);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(Serialize(reparsed.value().root()), once);
}

INSTANTIATE_TEST_SUITE_P(FirstDocs, XmarkRoundTrip,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace webdex::xml
