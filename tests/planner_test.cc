// Layered query engine (docs/PLANNER.md): the cost-based planner's
// 2LUPI side choice, bit-identical equivalence of planner-on/off
// execution (healthy and browned out), estimate accuracy against the
// metered bill, and the EXPLAIN rendering.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud_env.h"
#include "common/rng.h"
#include "engine/warehouse.h"
#include "index/strategy.h"
#include "xmark/xmark_generator.h"

namespace webdex::engine {
namespace {

using cloud::Micros;
using index::StrategyKind;

// Fragment XMark documents (split sections) as in the Table 5 bench:
// path mutations and optional elements give the planner real LUP-vs-LUI
// discrimination.
xmark::GeneratorConfig Corpus(int documents, int entities) {
  xmark::GeneratorConfig config;
  config.split_sections = true;
  config.num_documents = documents;
  config.entities_per_document = entities;
  return config;
}

// A single-path query: LUP path matching is exact, so the planner must
// keep the cheaper paths-side look-up.
const char* kPathSelective = "//item[/description/name:val]";
// A branching twig whose linear paths are common but rarely co-occur
// (Section 8.5): only the ids-side holistic join prunes it.
const char* kBranchingTwig =
    "//item[/name:val, /mailbox/mail/from:val, /description~'lantern']";

struct Deployed {
  std::unique_ptr<cloud::CloudEnv> env;
  std::unique_ptr<Warehouse> warehouse;
  StrategyKind kind = StrategyKind::kLU;
  Micros index_end = 0;
};

Deployed Deploy(const xmark::GeneratorConfig& corpus, StrategyKind kind,
                bool use_planner = true,
                PlannerForce force = PlannerForce::kAuto,
                const cloud::CloudConfig& cloud_config = cloud::CloudConfig()) {
  Deployed d;
  d.kind = kind;
  d.env = std::make_unique<cloud::CloudEnv>(cloud_config);
  WarehouseConfig config;
  config.strategy = kind;
  config.use_planner = use_planner;
  config.planner_force = force;
  d.warehouse = std::make_unique<Warehouse>(d.env.get(), config);
  EXPECT_TRUE(d.warehouse->Setup().ok());
  xmark::XmarkGenerator generator(corpus);
  for (int i = 0; i < corpus.num_documents; ++i) {
    auto doc = generator.Generate(i);
    EXPECT_TRUE(
        d.warehouse->SubmitDocument(doc.uri, std::move(doc.text)).ok());
  }
  auto report = d.warehouse->RunIndexers();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  d.index_end = d.warehouse->front_end().now();
  return d;
}

/// A second warehouse facade over the same simulated cloud (documents
/// and index tables persist), with a different planner configuration.
std::unique_ptr<Warehouse> Facade(const Deployed& d, bool use_planner,
                                  PlannerForce force) {
  WarehouseConfig config;
  config.strategy = d.kind;
  config.use_planner = use_planner;
  config.planner_force = force;
  auto facade = std::make_unique<Warehouse>(d.env.get(), config);
  facade->AdoptExistingData(*d.warehouse);
  return facade;
}

// --- 2LUPI: the planner exploits both tables --------------------------------

TEST(TwoLupiPlannerTest, PathSelectiveQueryChoosesLupSide) {
  Deployed d = Deploy(Corpus(36, 24), StrategyKind::k2LUPI);
  auto outcome = d.warehouse->ExecuteQuery(kPathSelective);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().chosen_path, "2LUPI/lup");

  auto explain = d.warehouse->ExplainQuery(kPathSelective);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain.value().find("chose 2LUPI/lup"), std::string::npos)
      << explain.value();
}

TEST(TwoLupiPlannerTest, BranchingTwigChoosesLuiSide) {
  Deployed d = Deploy(Corpus(36, 24), StrategyKind::k2LUPI);
  auto outcome = d.warehouse->ExecuteQuery(kBranchingTwig);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().chosen_path, "2LUPI/lui");

  auto explain = d.warehouse->ExplainQuery(kBranchingTwig);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain.value().find("chose 2LUPI/lui"), std::string::npos)
      << explain.value();
  // The rejected alternative is printed with its estimate.
  EXPECT_NE(explain.value().find("rejected: costlier"), std::string::npos)
      << explain.value();
}

// The losing side of the 2LUPI index is never billed: the winning
// side's look-up consumes exactly the index units a forced run on that
// side consumes, and the rows are identical everywhere.
TEST(TwoLupiPlannerTest, LosingSideIsNeverBilled) {
  Deployed d = Deploy(Corpus(36, 24), StrategyKind::k2LUPI);
  auto lup = Facade(d, true, PlannerForce::kLup);
  auto lui = Facade(d, true, PlannerForce::kLui);
  auto legacy = Facade(d, false, PlannerForce::kAuto);

  for (const char* query : {kPathSelective, kBranchingTwig}) {
    auto chosen = d.warehouse->ExecuteQuery(query);
    auto forced_lup = lup->ExecuteQuery(query);
    auto forced_lui = lui->ExecuteQuery(query);
    auto semijoin = legacy->ExecuteQuery(query);
    ASSERT_TRUE(chosen.ok() && forced_lup.ok() && forced_lui.ok() &&
                semijoin.ok());
    EXPECT_EQ(forced_lup.value().chosen_path, "2LUPI/lup");
    EXPECT_EQ(forced_lui.value().chosen_path, "2LUPI/lui");
    // The planner's run bills exactly the chosen side's look-up units —
    // nothing from the loser's table.
    const QueryOutcome& same_side =
        chosen.value().chosen_path == "2LUPI/lup" ? forced_lup.value()
                                                  : forced_lui.value();
    const QueryOutcome& other_side =
        chosen.value().chosen_path == "2LUPI/lup" ? forced_lui.value()
                                                  : forced_lup.value();
    EXPECT_EQ(chosen.value().index_get_units, same_side.index_get_units)
        << query;
    EXPECT_NE(chosen.value().index_get_units, other_side.index_get_units)
        << query;
    // Bit-identical rows regardless of side, and identical to the
    // legacy Figure 5 semijoin.
    EXPECT_EQ(chosen.value().result.rows, forced_lup.value().result.rows);
    EXPECT_EQ(chosen.value().result.rows, forced_lui.value().result.rows);
    EXPECT_EQ(chosen.value().result.rows, semijoin.value().result.rows);
  }
}

// --- Planner on/off x outage on/off: bit-identical rows ---------------------

constexpr Micros kForever = 3600 * cloud::kMicrosPerSecond;

/// Labels that occur in the XMark corpus plus a few that never do, so
/// some random patterns are unsatisfiable.
const char* kLabels[] = {"item", "name", "person", "address", "city",
                         "open_auction", "seller", "mailbox", "mail",
                         "description", "initial", "nothere"};

std::string RandomPattern(Rng& rng) {
  std::string out = "//";
  out += kLabels[rng.NextBelow(std::size(kLabels))];
  const int branches = 1 + static_cast<int>(rng.NextBelow(3));
  out += "[";
  for (int b = 0; b < branches; ++b) {
    if (b > 0) out += ", ";
    out += rng.NextBool(0.5) ? "/" : "//";
    out += kLabels[rng.NextBelow(std::size(kLabels))];
    if (rng.NextBool(0.3)) {
      out += "/";
      out += kLabels[rng.NextBelow(std::size(kLabels))];
    }
    if (b == 0) out += ":val";
  }
  out += "]";
  return out;
}

std::vector<std::string> SweepWorkload(uint64_t seed) {
  std::vector<std::string> queries = {
      kPathSelective, kBranchingTwig,
      // A value join across fragment documents.
      "//open_auction[/seller/@person#s, /initial:val]; "
      "//people/person[/@id#p, /name:val] where #s=#p"};
  Rng rng(seed);
  for (int i = 0; i < 3; ++i) queries.push_back(RandomPattern(rng));
  return queries;
}

class PlannerSweepTest : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(PlannerSweepTest, RowsBitIdenticalAcrossPlannerAndOutage) {
  const auto corpus = Corpus(12, 8);
  const auto workload = SweepWorkload(20260805);

  // Healthy deployment; the planner toggle is a facade over the same
  // cloud, so both runs answer from the very same index bytes.
  Deployed healthy = Deploy(corpus, GetParam(), /*use_planner=*/true);
  auto healthy_legacy = Facade(healthy, false, PlannerForce::kAuto);

  // Browned-out deployments: a sustained index-store outage covering
  // the whole query phase (indexing is deterministic, so the healthy
  // run's index_end pins where the query phase starts).
  cloud::CloudConfig outage_config;
  cloud::OutageWindow window;
  window.service = cloud::ServiceId::kDynamoDb;
  window.start = healthy.index_end;
  window.end = healthy.index_end + kForever;
  outage_config.faults.outages.push_back(window);
  Deployed outage_planned = Deploy(corpus, GetParam(), true,
                                   PlannerForce::kAuto, outage_config);
  Deployed outage_legacy = Deploy(corpus, GetParam(), false,
                                  PlannerForce::kAuto, outage_config);

  auto planned = healthy.warehouse->ExecuteQueries(workload);
  auto legacy = healthy_legacy->ExecuteQueries(workload);
  auto browned_planned = outage_planned.warehouse->ExecuteQueries(workload);
  auto browned_legacy = outage_legacy.warehouse->ExecuteQueries(workload);
  ASSERT_TRUE(planned.ok() && legacy.ok() && browned_planned.ok() &&
              browned_legacy.ok());

  ASSERT_EQ(planned.value().outcomes.size(), workload.size());
  for (size_t q = 0; q < workload.size(); ++q) {
    const auto& rows = planned.value().outcomes[q].result.rows;
    EXPECT_EQ(rows, legacy.value().outcomes[q].result.rows)
        << workload[q] << " (planner off)";
    EXPECT_EQ(rows, browned_planned.value().outcomes[q].result.rows)
        << workload[q] << " (planner on, outage)";
    EXPECT_EQ(rows, browned_legacy.value().outcomes[q].result.rows)
        << workload[q] << " (planner off, outage)";
    EXPECT_TRUE(browned_planned.value().outcomes[q].degraded);
  }
  // Under the outage the planner never burns attempts against an open
  // breaker, and every query records at least one fallback to the scan
  // path (value-join queries fall back once per tree pattern).
  EXPECT_EQ(outage_planned.env->meter().usage().breaker_short_circuits, 0u);
  EXPECT_GE(browned_planned.value().planner_fallbacks, workload.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, PlannerSweepTest,
    ::testing::ValuesIn(index::AllStrategyKinds()),
    [](const ::testing::TestParamInfo<StrategyKind>& info) {
      return std::string(index::StrategyKindName(info.param));
    });

// --- Estimates vs the metered bill ------------------------------------------

// On the fault-free path the planner's estimate must be within a fixed
// factor of the metered per-query cost — both are dominated by the
// fetch tail, and the estimate's document counts come from summary
// statistics, not an oracle.
TEST(PlannerEstimateTest, EstimateWithinFixedFactorOfBilledCost) {
  constexpr double kFactor = 32.0;
  for (StrategyKind kind : index::AllStrategyKinds()) {
    Deployed d = Deploy(Corpus(36, 24), kind);
    for (const auto& query : SweepWorkload(7)) {
      auto outcome = d.warehouse->ExecuteQuery(query);
      ASSERT_TRUE(outcome.ok()) << query;
      const double est = outcome.value().estimated_cost_usd;
      const double actual = outcome.value().actual_cost_usd;
      EXPECT_GT(est, 0.0) << query;
      EXPECT_GT(actual, 0.0) << query;
      EXPECT_LE(actual, est * kFactor)
          << index::StrategyKindName(kind) << " " << query;
      EXPECT_LE(est, actual * kFactor)
          << index::StrategyKindName(kind) << " " << query;
    }
  }
}

// --- EXPLAIN golden output --------------------------------------------------

// The exact rendering `webdex_cli explain` prints: logical plan, every
// candidate with its estimate, the chosen path, rejected alternatives,
// and the estimated totals.  Everything upstream is deterministic
// (virtual time, seeded corpus), so the text is pinned verbatim.
TEST(ExplainTest, GoldenOutput) {
  Deployed d = Deploy(Corpus(12, 8), StrategyKind::k2LUPI);
  auto explain = d.warehouse->ExplainQuery(kBranchingTwig);
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_EQ(explain.value(),
            "logical: 1 pattern, 0 value joins\n"
            "  pattern 1: //item[/name:val, /mailbox[/mail[/from:val]], "
            "/description~'lantern']\n"
            "    nodes=6 branches=3 outputs=2 predicates=1\n"
            "physical: strategy 2LUPI, planner auto\n"
            "  pattern 1: chose 2LUPI/lup\n"
            "    2LUPI/lup  est $0.00001388  keys 3  index-req 1  docs 2"
            "  requests 4  [chosen]\n"
            "    2LUPI/lui  est $0.00001391  keys 7  index-req 1  docs 2"
            "  requests 4  (rejected: costlier)\n"
            "    scan       est $0.00002814  keys 0  index-req 0  docs 12"
            "  requests 13  (fallback only)\n"
            "  estimated total: $0.00001388, 4 requests\n");
}

}  // namespace
}  // namespace webdex::engine
