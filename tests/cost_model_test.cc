#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "engine/warehouse.h"
#include "xmark/paintings.h"

namespace webdex::cost {
namespace {

using cloud::InstanceType;
using cloud::Pricing;

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest() : model_(Pricing::AwsSingaporeOct2012()) {}
  CostModel model_;
  Pricing pricing_;
};

TEST_F(CostModelTest, Table3PricesAreTheDefaults) {
  EXPECT_DOUBLE_EQ(pricing_.st_month_gb, 0.125);
  EXPECT_DOUBLE_EQ(pricing_.st_put, 0.000011);
  EXPECT_DOUBLE_EQ(pricing_.st_get, 0.0000011);
  EXPECT_DOUBLE_EQ(pricing_.idx_month_gb, 1.14);
  EXPECT_DOUBLE_EQ(pricing_.idx_put, 0.00000032);
  EXPECT_DOUBLE_EQ(pricing_.idx_get, 0.000000032);
  EXPECT_DOUBLE_EQ(pricing_.vm_hour_large, 0.34);
  EXPECT_DOUBLE_EQ(pricing_.vm_hour_xlarge, 0.68);
  EXPECT_DOUBLE_EQ(pricing_.queue_request, 0.000001);
  EXPECT_DOUBLE_EQ(pricing_.egress_gb, 0.19);
}

TEST_F(CostModelTest, UploadCostFormula) {
  // ud$(D) = STput$ x |D| + QS$ x |D|
  DataMetrics data;
  data.num_documents = 20000;
  EXPECT_DOUBLE_EQ(model_.UploadCost(data),
                   0.000011 * 20000 + 0.000001 * 20000);
}

TEST_F(CostModelTest, IndexBuildCostFormula) {
  DataMetrics data;
  data.num_documents = 1000;
  IndexMetrics index;
  index.put_ops = 500000;
  index.build_hours = 2.0;
  index.instances = 8;
  index.instance_type = InstanceType::kLarge;
  const double expected = model_.UploadCost(data) +
                          0.00000032 * 500000 +  // IDXput$ x |op|
                          0.0000011 * 1000 +     // STget$ x |D|
                          0.34 * 2.0 * 8 +       // VM$h x tidx x fleet
                          0.000001 * 2 * 1000;   // QS$ x 2|D|
  EXPECT_DOUBLE_EQ(model_.IndexBuildCost(data, index), expected);
}

TEST_F(CostModelTest, MonthlyStorageFormula) {
  DataMetrics data;
  data.size_gb = 40;
  IndexMetrics index;
  index.raw_gb = 30;
  index.overhead_gb = 5;
  // st$m = ST$m,GB x s(D) + IDX$m,GB x (sr + ovh)
  EXPECT_DOUBLE_EQ(model_.MonthlyStorageCost(data, index),
                   0.125 * 40 + 1.14 * 35);
  EXPECT_DOUBLE_EQ(model_.MonthlyDataStorageCost(data), 0.125 * 40);
}

TEST_F(CostModelTest, ResultRetrievalFormula) {
  QueryMetrics query;
  query.result_gb = 0.5;
  EXPECT_DOUBLE_EQ(model_.ResultRetrievalCost(query),
                   0.0000011 + 0.19 * 0.5 + 0.000001 * 3);
}

TEST_F(CostModelTest, QueryCostNoIndexFormula) {
  QueryMetrics query;
  query.result_gb = 0.001;
  query.process_hours = 0.25;
  query.instance_type = InstanceType::kExtraLarge;
  DataMetrics data;
  data.num_documents = 20000;
  const double expected = model_.ResultRetrievalCost(query) +
                          0.0000011 * 20000 + 0.000011 +
                          0.68 * 0.25 + 0.000001 * 3;
  EXPECT_DOUBLE_EQ(model_.QueryCostNoIndex(query, data), expected);
}

TEST_F(CostModelTest, QueryCostIndexedFormula) {
  QueryMetrics query;
  query.result_gb = 0.001;
  query.get_ops = 1200;
  query.docs_fetched = 349;
  query.process_hours = 0.01;
  query.instance_type = InstanceType::kLarge;
  const double expected = model_.ResultRetrievalCost(query) +
                          0.000000032 * 1200 + 0.0000011 * 349 + 0.000011 +
                          0.34 * 0.01 + 0.000001 * 3;
  EXPECT_DOUBLE_EQ(model_.QueryCostIndexed(query), expected);
}

TEST_F(CostModelTest, IndexedQueriesCheaperAtScale) {
  // The headline claim: with realistic selectivity the indexed query is
  // an order of magnitude cheaper.
  DataMetrics data;
  data.num_documents = 20000;
  QueryMetrics no_index;
  no_index.result_gb = 0.0001;
  no_index.process_hours = 1.0;  // full scan
  QueryMetrics indexed = no_index;
  indexed.get_ops = 2000;
  indexed.docs_fetched = 400;
  indexed.process_hours = 0.02;  // 2% of the documents
  const double before = model_.QueryCostNoIndex(no_index, data);
  const double after = model_.QueryCostIndexed(indexed);
  EXPECT_GT(before, 10 * after);
}

TEST_F(CostModelTest, AmortizationCrossesZero) {
  // Figure 13: cumulated benefit crosses the build cost after
  // build/benefit runs.
  const double build = 26.64;   // LU, Table 6
  const double benefit = 6.0;   // per workload run
  EXPECT_LT(model_.AmortizationNetValue(benefit, build, 4), 0);
  EXPECT_GT(model_.AmortizationNetValue(benefit, build, 5), 0);
}

TEST_F(CostModelTest, AlternativePriceSheetsDiffer) {
  const Pricing google = Pricing::GoogleCloud2012();
  const Pricing azure = Pricing::WindowsAzure2012();
  EXPECT_NE(google.idx_month_gb, pricing_.idx_month_gb);
  EXPECT_NE(azure.vm_hour_large, pricing_.vm_hour_large);
  EXPECT_GT(google.VmHour(InstanceType::kExtraLarge),
            google.VmHour(InstanceType::kLarge));
}

// --- Model vs. metered cross-check ------------------------------------------
//
// The analytical model (Section 7.3) and the usage meter are independent
// implementations; on a real run they must agree about the dominant
// terms.

TEST(CostCrossCheckTest, ModelTracksMeteredIndexingBill) {
  cloud::CloudEnv env;
  engine::WarehouseConfig config;
  config.strategy = index::StrategyKind::kLUP;
  config.num_instances = 2;
  engine::Warehouse warehouse(&env, config);
  ASSERT_TRUE(warehouse.Setup().ok());
  const auto corpus = xmark::GeneratePaintings();
  for (const auto& doc : corpus) {
    ASSERT_TRUE(warehouse.SubmitDocument(doc.uri, doc.text).ok());
  }
  const cloud::Usage upload_snapshot = env.meter().Snapshot();
  auto report = warehouse.RunIndexers();
  ASSERT_TRUE(report.ok());

  CostModel model(env.meter().pricing());
  DataMetrics data;
  data.num_documents = corpus.size();

  // Metered DynamoDB spend == IDXput$ x put units, exactly.
  const cloud::Usage delta = env.meter().Snapshot() - upload_snapshot;
  const cloud::Bill bill = env.meter().ComputeBill(delta);
  EXPECT_NEAR(bill.dynamodb,
              env.meter().pricing().idx_put *
                  static_cast<double>(report.value().index_put_units),
              1e-12);

  // Full model formula vs metered total for the same phase: identical
  // service terms, EC2 billed from the same makespan.
  IndexMetrics index;
  index.put_ops = report.value().index_put_units;
  index.build_hours = cloud::MicrosToHours(report.value().makespan);
  index.instances = 2;
  index.instance_type = cloud::InstanceType::kLarge;
  const double modeled =
      model.IndexBuildCost(data, index) - model.UploadCost(data);
  // The metered bill bills actual instance clocks, the model bills
  // makespan x fleet; the two agree within the idle-tail slack.
  EXPECT_NEAR(bill.total(), modeled, modeled * 0.35 + 0.01);
}

}  // namespace
}  // namespace webdex::cost
