#include <gtest/gtest.h>

#include <set>

#include "xmark/paintings.h"
#include "xmark/xmark_generator.h"
#include "xml/parser.h"

namespace webdex::xmark {
namespace {

TEST(XmarkGeneratorTest, DeterministicForSameConfig) {
  GeneratorConfig config;
  config.num_documents = 10;
  XmarkGenerator a(config), b(config);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.Generate(i).text, b.Generate(i).text);
    EXPECT_EQ(a.Generate(i).uri, b.Generate(i).uri);
  }
}

TEST(XmarkGeneratorTest, SeedChangesContent) {
  GeneratorConfig config;
  config.num_documents = 4;
  GeneratorConfig other = config;
  other.seed = config.seed + 1;
  EXPECT_NE(XmarkGenerator(config).Generate(0).text,
            XmarkGenerator(other).Generate(0).text);
}

TEST(XmarkGeneratorTest, UrisAreUniqueAndStable) {
  GeneratorConfig config;
  config.num_documents = 30;
  XmarkGenerator generator(config);
  std::set<std::string> uris;
  for (const auto& doc : generator.GenerateAll()) {
    EXPECT_TRUE(uris.insert(doc.uri).second) << doc.uri;
  }
  EXPECT_EQ(uris.size(), 30u);
  EXPECT_EQ(generator.Generate(7).uri, "xmark-000007.xml");
}

TEST(XmarkGeneratorTest, DocumentsCarryAuctionSchema) {
  GeneratorConfig config;
  config.num_documents = 5;
  config.path_mutation_fraction = 0;
  config.optional_mutation_fraction = 0;
  XmarkGenerator generator(config);
  const auto doc = generator.Generate(0);
  for (const char* label :
       {"<site>", "<regions>", "<people>", "<open_auctions>",
        "<closed_auctions>", "<categories>", "<item ", "<person ",
        "<seller ", "<itemref "}) {
    EXPECT_NE(doc.text.find(label), std::string::npos) << label;
  }
}

TEST(XmarkGeneratorTest, PathMutationChangesStructureNotLabels) {
  GeneratorConfig plain;
  plain.num_documents = 200;
  plain.path_mutation_fraction = 0;
  plain.optional_mutation_fraction = 0;
  GeneratorConfig mutated = plain;
  mutated.path_mutation_fraction = 1.0;

  // With mutation on, item names live under description.
  const std::string mutated_text = XmarkGenerator(mutated).Generate(0).text;
  EXPECT_NE(mutated_text.find("<description><name>"), std::string::npos);
  EXPECT_EQ(XmarkGenerator(plain).Generate(0).text.find(
                "<description><name>"),
            std::string::npos);
  // No mailbox wrapper in mutated documents, yet mails may still occur.
  EXPECT_EQ(mutated_text.find("<mailbox>"), std::string::npos);
}

TEST(XmarkGeneratorTest, OptionalMutationDropsElements) {
  GeneratorConfig config;
  config.num_documents = 40;
  config.path_mutation_fraction = 0;
  config.optional_mutation_fraction = 1.0;
  config.drop_probability = 1.0;
  XmarkGenerator generator(config);
  const std::string text = generator.Generate(0).text;
  // With certain dropping, optional elements disappear entirely.
  EXPECT_EQ(text.find("<reserve>"), std::string::npos);
  EXPECT_EQ(text.find("<homepage>"), std::string::npos);
  // Compulsory structure survives.
  EXPECT_NE(text.find("<name>"), std::string::npos);
  EXPECT_NE(text.find("<seller"), std::string::npos);
}

TEST(XmarkGeneratorTest, SizeScalesWithEntityKnob) {
  GeneratorConfig small;
  small.num_documents = 4;
  small.entities_per_document = 6;
  GeneratorConfig big = small;
  big.entities_per_document = 60;
  size_t small_bytes = 0, big_bytes = 0;
  for (int i = 0; i < 4; ++i) {
    small_bytes += XmarkGenerator(small).Generate(i).text.size();
    big_bytes += XmarkGenerator(big).Generate(i).text.size();
  }
  EXPECT_GT(big_bytes, 5 * small_bytes);
}

TEST(XmarkGeneratorTest, VocabularyExposedAndUsed) {
  const auto& vocab = XmarkGenerator::Vocabulary();
  ASSERT_GT(vocab.size(), 100u);
  EXPECT_EQ(vocab.front(), "the");
}

TEST(XmarkGeneratorTest, SplitModeProducesSingleSectionFragments) {
  GeneratorConfig config;
  config.num_documents = 60;
  config.split_sections = true;
  XmarkGenerator generator(config);
  const char* sections[] = {"<regions>", "<people>", "<open_auctions>",
                            "<closed_auctions>", "<categories>"};
  int seen[5] = {0, 0, 0, 0, 0};
  for (int i = 0; i < config.num_documents; ++i) {
    const auto doc = generator.Generate(i);
    int present = 0;
    for (int s = 0; s < 5; ++s) {
      if (doc.text.find(sections[s]) != std::string::npos) {
        ++present;
        ++seen[s];
      }
    }
    EXPECT_EQ(present, 1) << doc.uri << " must hold exactly one section";
  }
  // The common sections all occur somewhere in a 60-document corpus.
  EXPECT_GT(seen[0], 0);  // regions
  EXPECT_GT(seen[1], 0);  // people
  EXPECT_GT(seen[2], 0);  // open auctions
  EXPECT_GT(seen[3], 0);  // closed auctions
}

TEST(XmarkGeneratorTest, SplitModeStillParsesAndMutates) {
  GeneratorConfig config;
  config.num_documents = 30;
  config.split_sections = true;
  config.path_mutation_fraction = 1.0;
  XmarkGenerator generator(config);
  for (int i = 0; i < config.num_documents; ++i) {
    const auto doc = generator.Generate(i);
    ASSERT_TRUE(xml::ParseDocument(doc.uri, doc.text).ok()) << doc.uri;
    // Region fragments never carry a mailbox wrapper when path-mutated.
    EXPECT_EQ(doc.text.find("<mailbox>"), std::string::npos);
  }
}

TEST(XmarkGeneratorTest, SplitAndFullModesDiffer) {
  GeneratorConfig split;
  split.num_documents = 5;
  split.split_sections = true;
  GeneratorConfig full = split;
  full.split_sections = false;
  EXPECT_NE(XmarkGenerator(split).Generate(0).text,
            XmarkGenerator(full).Generate(0).text);
}

// --- Paintings corpus --------------------------------------------------------

TEST(PaintingsTest, Figure3DocumentsMatchPaper) {
  const auto docs = Figure3Documents();
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_EQ(docs[0].uri, "delacroix.xml");
  auto parsed = xml::ParseDocument(docs[0].uri, docs[0].text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().root().label(), "painting");
  EXPECT_EQ(parsed.value().root().children()[0]->value(), "1854-1");
  EXPECT_NE(docs[1].text.find("Olympia"), std::string::npos);
}

TEST(PaintingsTest, CorpusHasAnchorPaintingsAndMuseums) {
  PaintingsConfig config;
  config.num_paintings = 12;
  config.num_museums = 3;
  const auto docs = GeneratePaintings(config);
  ASSERT_EQ(docs.size(), 15u);
  EXPECT_NE(docs[0].text.find("The Lion Hunt"), std::string::npos);
  EXPECT_NE(docs[0].text.find("Delacroix"), std::string::npos);
  EXPECT_NE(docs[1].text.find("Olympia"), std::string::npos);
  EXPECT_NE(docs[12].text.find("<museum>"), std::string::npos);
  for (const auto& doc : docs) {
    EXPECT_TRUE(xml::ParseDocument(doc.uri, doc.text).ok()) << doc.uri;
  }
}

TEST(PaintingsTest, MuseumsReferencePaintingIds) {
  const auto docs = GeneratePaintings();
  // Museum 0 lists painting ids that occur in painting documents.
  const std::string& museum = docs[docs.size() - 6].text;
  EXPECT_NE(museum.find("painting id=\"1854-1\""), std::string::npos)
      << museum;
}

}  // namespace
}  // namespace webdex::xmark
