// Brownout tolerance (docs/FAULTS.md): under a sustained index-store
// outage, circuit breakers open and every query falls back to a full
// warehouse scan — answering bit-identically to the healthy run, at a
// strictly higher metered cost.  Once the outage lifts and the breaker's
// virtual-time cooldown lapses, half-open probes close it again and
// queries return to the indexed path.  All of it deterministic: serial
// and host-parallel brownout runs are bit-identical.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cloud/circuit_breaker.h"
#include "cloud/cloud_env.h"
#include "engine/warehouse.h"
#include "xmark/paintings.h"

namespace webdex::engine {
namespace {

using cloud::BreakerState;
using cloud::Micros;
using index::StrategyKind;

const char* kQuery = "//painting[/name~'Lion', //painter/name/last:val]";

std::vector<std::string> Workload() {
  return {kQuery, "//painting[/year:val, /museum]", kQuery};
}

struct BrownoutRun {
  QueryRunReport report;
  double total_dollars = 0;
  double query_dollars = 0;
  cloud::Usage usage;
  Micros index_end = 0;  // front-end clock after indexing
};

/// Indexes the paintings corpus fault-free, then runs the workload with
/// a sustained index-store outage covering [index_end + outage_start,
/// index_end + outage_end) — (0, 0) means no outage.  `index_end` is
/// deterministic, so it is measured by a dry run inside.
BrownoutRun RunBrownout(StrategyKind strategy, IndexBackend backend,
                        Micros outage_start, Micros outage_end,
                        int host_threads) {
  // Pass 1: fault-free, to learn when the query phase begins.
  Micros index_end = 0;
  {
    cloud::CloudEnv env;
    WarehouseConfig config;
    config.strategy = strategy;
    config.backend = backend;
    config.host_threads = host_threads;
    Warehouse warehouse(&env, config);
    EXPECT_TRUE(warehouse.Setup().ok());
    for (const auto& doc : xmark::GeneratePaintings()) {
      EXPECT_TRUE(warehouse.SubmitDocument(doc.uri, doc.text).ok());
    }
    auto report = warehouse.RunIndexers();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    index_end = warehouse.front_end().now();
  }

  // Pass 2: indexing is deterministic, so it finishes at the same
  // instant and the outage window hits only the queries.
  cloud::CloudConfig cloud_config;
  if (outage_end > outage_start) {
    cloud::OutageWindow window;
    window.service = backend == IndexBackend::kSimpleDb
                         ? cloud::ServiceId::kSimpleDb
                         : cloud::ServiceId::kDynamoDb;
    window.start = index_end + outage_start;
    window.end = index_end + outage_end;
    cloud_config.faults.outages.push_back(window);
  }
  auto env = std::make_unique<cloud::CloudEnv>(cloud_config);
  WarehouseConfig config;
  config.strategy = strategy;
  config.backend = backend;
  config.host_threads = host_threads;
  Warehouse warehouse(env.get(), config);
  EXPECT_TRUE(warehouse.Setup().ok());
  for (const auto& doc : xmark::GeneratePaintings()) {
    EXPECT_TRUE(warehouse.SubmitDocument(doc.uri, doc.text).ok());
  }
  auto indexing = warehouse.RunIndexers();
  EXPECT_TRUE(indexing.ok()) << indexing.status().ToString();
  EXPECT_EQ(warehouse.front_end().now(), index_end);

  BrownoutRun out;
  out.index_end = index_end;
  const cloud::Usage before = env->meter().Snapshot();
  auto report = warehouse.ExecuteQueries(Workload());
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report.ok()) out.report = std::move(report).value();
  out.query_dollars =
      env->meter().ComputeBill(env->meter().Snapshot() - before).total();
  out.total_dollars = env->meter().ComputeBill().total();
  out.usage = env->meter().usage();
  return out;
}

constexpr Micros kForever = 3600 * cloud::kMicrosPerSecond;

class DegradedTest : public ::testing::TestWithParam<StrategyKind> {};

// The headline: a sustained outage covering the whole query phase forces
// every query onto the scan fallback; answers are bit-identical to the
// healthy run and strictly dearer.
TEST_P(DegradedTest, SustainedOutageDegradesEveryQueryBitIdentically) {
  const BrownoutRun healthy =
      RunBrownout(GetParam(), IndexBackend::kDynamoDb, 0, 0, 1);
  const BrownoutRun browned =
      RunBrownout(GetParam(), IndexBackend::kDynamoDb, 0, kForever, 1);

  // The healthy run answered from the index, breakers untouched.
  ASSERT_EQ(healthy.report.outcomes.size(), Workload().size());
  for (const auto& outcome : healthy.report.outcomes) {
    EXPECT_FALSE(outcome.degraded);
    EXPECT_EQ(outcome.scan_docs, 0u);
  }
  EXPECT_EQ(healthy.usage.breaker_opens, 0u);
  EXPECT_EQ(healthy.usage.breaker_short_circuits, 0u);
  EXPECT_EQ(healthy.usage.degraded_queries, 0u);

  // The browned-out run answered every query, all via the fallback.
  ASSERT_EQ(browned.report.outcomes.size(), Workload().size());
  for (size_t q = 0; q < Workload().size(); ++q) {
    const QueryOutcome& degraded = browned.report.outcomes[q];
    EXPECT_TRUE(degraded.degraded) << "query " << q;
    EXPECT_EQ(degraded.scan_docs, xmark::GeneratePaintings().size());
    EXPECT_EQ(degraded.docs_from_index, 0u);
    // Bit-identical answers.
    EXPECT_EQ(degraded.result.rows, healthy.report.outcomes[q].result.rows);
  }
  EXPECT_EQ(browned.report.degraded_queries, Workload().size());
  EXPECT_GE(browned.report.breaker_opens, 1u);
  // The planner consults breaker health before issuing look-ups
  // (docs/PLANNER.md): after the first query's failed look-up opens the
  // breaker, later queries plan straight to the scan path instead of
  // burning short-circuited attempts against the open breaker.  Every
  // query records its fallback.
  EXPECT_EQ(browned.usage.breaker_short_circuits, 0u);
  EXPECT_EQ(browned.report.planner_fallbacks, Workload().size());
  // Availability was paid for: strictly more dollars, longer makespan.
  EXPECT_GT(browned.query_dollars, healthy.query_dollars);
  EXPECT_GT(browned.report.makespan, healthy.report.makespan);
}

// The brownout schedule is deterministic: serial and host-parallel runs
// agree bit-for-bit on answers, counters and bills.
TEST_P(DegradedTest, SerialAndParallelBrownoutRunsAreBitIdentical) {
  const BrownoutRun serial =
      RunBrownout(GetParam(), IndexBackend::kDynamoDb, 0, kForever, 1);
  const BrownoutRun parallel =
      RunBrownout(GetParam(), IndexBackend::kDynamoDb, 0, kForever, 8);
  ASSERT_EQ(serial.report.outcomes.size(), parallel.report.outcomes.size());
  for (size_t q = 0; q < serial.report.outcomes.size(); ++q) {
    EXPECT_EQ(serial.report.outcomes[q].result.rows,
              parallel.report.outcomes[q].result.rows);
    EXPECT_EQ(serial.report.outcomes[q].degraded,
              parallel.report.outcomes[q].degraded);
  }
  EXPECT_EQ(serial.report.makespan, parallel.report.makespan);
  EXPECT_DOUBLE_EQ(serial.total_dollars, parallel.total_dollars);
  EXPECT_EQ(serial.usage.breaker_opens, parallel.usage.breaker_opens);
  EXPECT_EQ(serial.usage.breaker_short_circuits,
            parallel.usage.breaker_short_circuits);
  EXPECT_EQ(serial.usage.degraded_queries, parallel.usage.degraded_queries);
  EXPECT_EQ(serial.usage.faulted_requests, parallel.usage.faulted_requests);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, DegradedTest,
    ::testing::ValuesIn(index::AllStrategyKinds()),
    [](const ::testing::TestParamInfo<StrategyKind>& info) {
      return std::string(index::StrategyKindName(info.param));
    });

// The legacy SimpleDB deployment browns out and recovers the same way.
TEST(DegradedSimpleDbTest, SustainedOutageDegradesQueries) {
  const BrownoutRun healthy =
      RunBrownout(StrategyKind::kLUP, IndexBackend::kSimpleDb, 0, 0, 1);
  const BrownoutRun browned =
      RunBrownout(StrategyKind::kLUP, IndexBackend::kSimpleDb, 0, kForever, 1);
  ASSERT_EQ(browned.report.outcomes.size(), Workload().size());
  for (size_t q = 0; q < Workload().size(); ++q) {
    EXPECT_TRUE(browned.report.outcomes[q].degraded);
    EXPECT_EQ(browned.report.outcomes[q].result.rows,
              healthy.report.outcomes[q].result.rows);
  }
  EXPECT_GE(browned.report.breaker_opens, 1u);
  EXPECT_GT(browned.query_dollars, healthy.query_dollars);
}

// A finite outage: queries inside it degrade; once it lifts and the
// cooldown lapses, half-open probes close the breaker and later queries
// answer from the index again.
TEST(BreakerRecoveryTest, BreakerClosesAfterOutageLifts) {
  const Micros outage = 120 * cloud::kMicrosPerSecond;
  cloud::CloudConfig cloud_config;
  // Learn the indexing end time from a dry run.
  Micros index_end = 0;
  {
    cloud::CloudEnv env;
    WarehouseConfig config;
    config.strategy = StrategyKind::kLUP;
    Warehouse warehouse(&env, config);
    ASSERT_TRUE(warehouse.Setup().ok());
    for (const auto& doc : xmark::GeneratePaintings()) {
      ASSERT_TRUE(warehouse.SubmitDocument(doc.uri, doc.text).ok());
    }
    ASSERT_TRUE(warehouse.RunIndexers().ok());
    index_end = warehouse.front_end().now();
  }
  cloud::OutageWindow window;
  window.service = cloud::ServiceId::kDynamoDb;
  window.start = index_end;
  window.end = index_end + outage;
  cloud_config.faults.outages.push_back(window);

  cloud::CloudEnv env(cloud_config);
  WarehouseConfig config;
  config.strategy = StrategyKind::kLUP;
  Warehouse warehouse(&env, config);
  ASSERT_TRUE(warehouse.Setup().ok());
  for (const auto& doc : xmark::GeneratePaintings()) {
    ASSERT_TRUE(warehouse.SubmitDocument(doc.uri, doc.text).ok());
  }
  ASSERT_TRUE(warehouse.RunIndexers().ok());

  // During the outage: degraded, breaker opens.
  auto during = warehouse.ExecuteQuery(kQuery);
  ASSERT_TRUE(during.ok()) << during.status().ToString();
  EXPECT_TRUE(during.value().degraded);
  EXPECT_GE(env.meter().usage().breaker_opens, 1u);

  // Still inside the outage but past the cooldown: the half-open probe
  // fails against the dead service and the breaker re-opens.
  const uint64_t opens_before = env.meter().usage().breaker_opens;
  warehouse.front_end().AdvanceTo(
      index_end + outage / 2 + env.config().breaker.cooldown);
  auto still_down = warehouse.ExecuteQuery(kQuery);
  ASSERT_TRUE(still_down.ok()) << still_down.status().ToString();
  EXPECT_TRUE(still_down.value().degraded);
  EXPECT_GT(env.meter().usage().breaker_opens, opens_before);

  // After the outage and another cooldown: probes succeed and the query
  // answers from the index again (half-open lets real traffic through).
  warehouse.front_end().AdvanceTo(index_end + outage +
                                  env.config().breaker.cooldown);
  auto after = warehouse.ExecuteQuery(kQuery);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after.value().degraded);
  EXPECT_EQ(after.value().result.rows, during.value().result.rows);

  // Once success_threshold probe calls have accumulated, the breaker is
  // closed for good.
  auto settled = warehouse.ExecuteQuery(kQuery);
  ASSERT_TRUE(settled.ok()) << settled.status().ToString();
  EXPECT_FALSE(settled.value().degraded);
  EXPECT_GE(env.meter().usage().breaker_closes, 1u);
}

// Direct state-machine checks of the breaker itself.
TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresAndCoolsDown) {
  cloud::CircuitBreakerConfig config;
  cloud::UsageMeter meter{cloud::Pricing()};
  cloud::CircuitBreaker breaker(config, &meter);

  const Micros t0 = 1000;
  for (int i = 0; i < config.failure_threshold - 1; ++i) {
    breaker.RecordFailure("t", t0);
    EXPECT_EQ(breaker.state("t"), BreakerState::kClosed);
  }
  breaker.RecordFailure("t", t0);
  EXPECT_EQ(breaker.state("t"), BreakerState::kOpen);
  EXPECT_EQ(meter.usage().breaker_opens, 1u);

  // While cooling down: short-circuits, unbilled but counted.
  EXPECT_TRUE(breaker.Allow("t", t0 + 1).IsUnavailable());
  EXPECT_EQ(meter.usage().breaker_short_circuits, 1u);
  // Another resource is unaffected.
  EXPECT_TRUE(breaker.Allow("other", t0 + 1).ok());

  // After the cooldown: half-open, probes allowed.
  EXPECT_TRUE(breaker.Allow("t", t0 + config.cooldown).ok());
  EXPECT_EQ(breaker.state("t"), BreakerState::kHalfOpen);
  // One probe failure slams it shut again.
  breaker.RecordFailure("t", t0 + config.cooldown);
  EXPECT_EQ(breaker.state("t"), BreakerState::kOpen);
  EXPECT_EQ(meter.usage().breaker_opens, 2u);

  // Second cooldown, then enough successes close it for good.
  const Micros t1 = t0 + 2 * config.cooldown;
  EXPECT_TRUE(breaker.Allow("t", t1).ok());
  for (int i = 0; i < config.success_threshold; ++i) {
    breaker.RecordSuccess("t");
  }
  EXPECT_EQ(breaker.state("t"), BreakerState::kClosed);
  EXPECT_EQ(meter.usage().breaker_closes, 1u);
  EXPECT_TRUE(breaker.Allow("t", t1).ok());
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureRun) {
  cloud::CircuitBreakerConfig config;
  cloud::UsageMeter meter{cloud::Pricing()};
  cloud::CircuitBreaker breaker(config, &meter);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < config.failure_threshold - 1; ++i) {
      breaker.RecordFailure("t", 0);
    }
    breaker.RecordSuccess("t");  // never 5 in a row
  }
  EXPECT_EQ(breaker.state("t"), BreakerState::kClosed);
  EXPECT_EQ(meter.usage().breaker_opens, 0u);
}

TEST(CircuitBreakerTest, DisabledBreakerNeverTrips) {
  cloud::CircuitBreakerConfig config;
  config.enabled = false;
  cloud::UsageMeter meter{cloud::Pricing()};
  cloud::CircuitBreaker breaker(config, &meter);
  for (int i = 0; i < 100; ++i) breaker.RecordFailure("t", 0);
  EXPECT_TRUE(breaker.Allow("t", 0).ok());
  EXPECT_EQ(meter.usage().breaker_opens, 0u);
}

}  // namespace
}  // namespace webdex::engine
