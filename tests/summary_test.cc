#include <gtest/gtest.h>

#include "index/summary.h"
#include "query/parser.h"
#include "xmark/xmark_generator.h"
#include "xml/parser.h"

namespace webdex::index {
namespace {

query::Query Parse(std::string_view text) {
  auto q = query::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

void Add(PathSummary* summary, const std::string& xml) {
  static int counter = 0;
  auto doc = xml::ParseDocument("doc" + std::to_string(counter++), xml);
  ASSERT_TRUE(doc.ok());
  summary->AddDocument(ExtractDocIndex(doc.value()));
}

TEST(PathSummaryTest, CountsDocumentsPerKeyAndPath) {
  PathSummary summary;
  Add(&summary, "<a><b>x</b></a>");
  Add(&summary, "<a><b>y</b><b>z</b></a>");  // b twice, counts once
  Add(&summary, "<a><c>x</c></a>");
  EXPECT_EQ(summary.documents(), 3u);
  EXPECT_EQ(summary.DocsWithKey("eb"), 2u);
  EXPECT_EQ(summary.DocsWithKey("ec"), 1u);
  EXPECT_EQ(summary.DocsWithKey("ea"), 3u);
  EXPECT_EQ(summary.DocsWithKey("enope"), 0u);
}

TEST(PathSummaryTest, PathEstimatesRespectStructure) {
  PathSummary summary;
  Add(&summary, "<a><b><c>x</c></b></a>");
  Add(&summary, "<a><c>x</c></a>");
  QueryPath direct;
  direct.steps = {{TwigAxis::kDescendant, "ea"}, {TwigAxis::kChild, "ec"}};
  EXPECT_EQ(summary.DocsMatchingPath(direct), 1u);  // only the flat doc
  QueryPath anywhere;
  anywhere.steps = {{TwigAxis::kDescendant, "ea"},
                    {TwigAxis::kDescendant, "ec"}};
  EXPECT_EQ(summary.DocsMatchingPath(anywhere), 2u);
}

TEST(PathSummaryTest, LuAndLupEstimatesAreUpperBoundsOfEachOther) {
  PathSummary summary;
  Add(&summary, "<a><b>x</b></a>");
  Add(&summary, "<r><b>y</b></r>");
  const auto query = Parse("//a/b");
  // LU only knows 'ea' and 'eb' occur: both docs have 'eb', one has 'ea'.
  EXPECT_EQ(summary.EstimateLuDocs(query.patterns()[0]), 1u);
  EXPECT_EQ(summary.EstimateLupDocs(query.patterns()[0]), 1u);
  const auto loose = Parse("//b");
  EXPECT_EQ(summary.EstimateLuDocs(loose.patterns()[0]), 2u);
}

TEST(PathSummaryTest, AdvisesLupForLinearPatterns) {
  PathSummary summary;
  Add(&summary, "<a><b>x</b></a>");
  const auto query = Parse("//a/b");
  const auto advice = summary.AdviseLookup(query.patterns()[0]);
  EXPECT_EQ(advice.lookup, StrategyKind::kLUP);
  EXPECT_FALSE(advice.reason.empty());
}

TEST(PathSummaryTest, AdvisesLuiWhenBranchesNeverCoOccur) {
  // Half the corpus has a[b], half a[c]; both linear paths are common
  // but never together — paper Section 8.5's LUI case.
  PathSummary summary;
  for (int i = 0; i < 10; ++i) Add(&summary, "<a><b>x</b></a>");
  for (int i = 0; i < 10; ++i) Add(&summary, "<a><c>x</c></a>");
  const auto query = Parse("//a[/b, /c]");
  const auto advice = summary.AdviseLookup(query.patterns()[0]);
  EXPECT_EQ(advice.lookup, StrategyKind::kLUI) << advice.reason;
  EXPECT_NE(advice.reason.find("twig join"), std::string::npos);
}

TEST(PathSummaryTest, AdvisesLupWhenBranchesCoOccur) {
  // Every document matches both branches: path matching is as good as
  // the twig join, so the cheaper LUP look-up wins.
  PathSummary summary;
  for (int i = 0; i < 20; ++i) Add(&summary, "<a><b>x</b><c>y</c></a>");
  const auto query = Parse("//a[/b, /c]");
  const auto advice = summary.AdviseLookup(query.patterns()[0]);
  EXPECT_EQ(advice.lookup, StrategyKind::kLUP) << advice.reason;
}

TEST(PathSummaryTest, SelectivePatternsAdviseLup) {
  // Branches individually rare: LUP's pre-filter already prunes hard.
  PathSummary summary;
  Add(&summary, "<a><b>x</b><c>y</c></a>");
  for (int i = 0; i < 40; ++i) Add(&summary, "<a><d>z</d></a>");
  const auto query = Parse("//a[/b, /c]");
  const auto advice = summary.AdviseLookup(query.patterns()[0]);
  EXPECT_EQ(advice.lookup, StrategyKind::kLUP) << advice.reason;
}

TEST(PathSummaryTest, WorksOverXmarkCorpus) {
  xmark::GeneratorConfig config;
  config.num_documents = 30;
  config.entities_per_document = 8;
  xmark::XmarkGenerator generator(config);
  PathSummary summary;
  for (int i = 0; i < config.num_documents; ++i) {
    summary.AddDocument(ExtractDocIndex(generator.GenerateDom(i)));
  }
  EXPECT_EQ(summary.documents(), 30u);
  EXPECT_GT(summary.distinct_paths(), 50u);
  // Sanity: estimates never exceed the corpus.
  for (const char* text :
       {"//item[/name, /payment]", "//person//city", "//open_auction"}) {
    const auto query = Parse(text);
    EXPECT_LE(summary.EstimateLuDocs(query.patterns()[0]), 30u);
    EXPECT_LE(summary.EstimateLupDocs(query.patterns()[0]), 30u) << text;
  }
}

}  // namespace
}  // namespace webdex::index
