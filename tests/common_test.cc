#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/varint.h"

namespace webdex {
namespace {

// --- Status ----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllConstructorsMapToPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
}

TEST(StatusTest, UnavailableIsRetriable) {
  Status s = Status::Unavailable("injected fault at s3.put:docs");
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_TRUE(s.IsRetriable());
  EXPECT_EQ(s.ToString(), "Unavailable: injected fault at s3.put:docs");
  // Throttling is the other transient: also retriable.
  EXPECT_TRUE(Status::ResourceExhausted("throttled").IsRetriable());
  // Permanent failures are not.
  EXPECT_FALSE(Status::NotFound("x").IsRetriable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetriable());
  EXPECT_FALSE(Status::OK().IsRetriable());
}

// Admission shedding is typed and deliberately NOT retriable: retrying a
// shed query against a saturated system is the opposite of shedding.
TEST(StatusTest, OverloadedIsTypedAndNotRetriable) {
  Status s = Status::Overloaded("admission rejected: over capacity");
  EXPECT_TRUE(s.IsOverloaded());
  EXPECT_FALSE(s.IsRetriable());
  EXPECT_EQ(s.ToString(), "Overloaded: admission rejected: over capacity");
  EXPECT_EQ(s.retry_after_micros(), 0);
}

TEST(StatusTest, ResourceExhaustedCarriesRetryAfterHint) {
  // The plain constructor carries no hint (injected throttles).
  EXPECT_EQ(Status::ResourceExhausted("throttled").retry_after_micros(), 0);
  // The organic-throttle form carries the server's Retry-After.
  Status hinted = Status::ResourceExhausted("backlog over bound", 12'345);
  EXPECT_TRUE(hinted.IsResourceExhausted());
  EXPECT_TRUE(hinted.IsRetriable());
  EXPECT_EQ(hinted.retry_after_micros(), 12'345);
  // A server cannot promise the past: negative hints clamp to zero.
  EXPECT_EQ(Status::ResourceExhausted("x", -5).retry_after_micros(), 0);
}

Status Passthrough(const Status& s) {
  WEBDEX_RETURN_IF_ERROR(s);
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Passthrough(Status::OK()).ok());
  EXPECT_TRUE(Passthrough(Status::IOError("boom")).IsIOError());
}

// --- Result ------------------------------------------------------------------

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> Doubled(int v) {
  WEBDEX_ASSIGN_OR_RETURN(int x, ParsePositive(v));
  return x * 2;
}

TEST(ResultTest, HoldsValue) {
  auto r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  auto r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// --- Retry -------------------------------------------------------------------

TEST(RetryTest, SucceedsWithoutRetryOnFirstOk) {
  Rng rng(1);
  int calls = 0;
  int64_t slept = 0;
  uint64_t retries = 0;
  auto status = common::CallWithRetry(
      common::RetryPolicy(), rng,
      [&] {
        ++calls;
        return Status::OK();
      },
      [&](int64_t micros) { slept += micros; }, &retries);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(slept, 0);
  EXPECT_EQ(retries, 0u);
}

TEST(RetryTest, RetriesTransientUntilSuccess) {
  Rng rng(1);
  int calls = 0;
  uint64_t retries = 0;
  int64_t slept = 0;
  auto result = common::CallWithRetry(
      common::RetryPolicy(), rng,
      [&]() -> Result<int> {
        if (++calls < 3) return Status::Unavailable("flaky");
        return 42;
      },
      [&](int64_t micros) { slept += micros; }, &retries);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
  EXPECT_GT(slept, 0);  // the backoffs were actually slept
}

TEST(RetryTest, PermanentErrorIsNotRetried) {
  Rng rng(1);
  int calls = 0;
  auto status = common::CallWithRetry(
      common::RetryPolicy(), rng,
      [&] {
        ++calls;
        return Status::NotFound("gone");
      },
      [](int64_t) {});
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, AttemptCapReturnsLastError) {
  common::RetryPolicy policy;
  policy.max_attempts = 3;
  Rng rng(1);
  int calls = 0;
  auto status = common::CallWithRetry(
      policy, rng,
      [&] {
        ++calls;
        return Status::ResourceExhausted("throttled");
      },
      [](int64_t) {});
  EXPECT_TRUE(status.IsResourceExhausted());
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, DeadlineAbandonsBeforeAttemptCap) {
  common::RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_micros = 1'000'000;
  policy.backoff_multiplier = 1.0;
  policy.deadline_micros = 1;  // any non-zero backoff exceeds this
  Rng rng(1);
  int calls = 0;
  int64_t slept = 0;
  auto status = common::CallWithRetry(
      policy, rng,
      [&] {
        ++calls;
        return Status::Unavailable("down");
      },
      [&](int64_t micros) { slept += micros; });
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_LT(calls, 100);
  EXPECT_LE(slept, policy.deadline_micros);
}

TEST(RetryTest, BackoffCapGrowsGeometricallyThenSaturates) {
  common::RetryPolicy policy;
  policy.initial_backoff_micros = 100;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_micros = 350;
  EXPECT_EQ(common::BackoffCapMicros(policy, 1), 100);
  EXPECT_EQ(common::BackoffCapMicros(policy, 2), 200);
  EXPECT_EQ(common::BackoffCapMicros(policy, 3), 350);  // capped
  EXPECT_EQ(common::BackoffCapMicros(policy, 9), 350);
}

TEST(RetryTest, JitterScheduleIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    Rng rng = Rng::ForKey(seed, "retry:test");
    std::vector<int64_t> backoffs;
    int calls = 0;
    (void)common::CallWithRetry(
        common::RetryPolicy(), rng,
        [&] {
          ++calls;
          return Status::Unavailable("down");
        },
        [&](int64_t micros) { backoffs.push_back(micros); });
    return backoffs;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

// An organic throttle's Retry-After hint overrides the jitter draw in
// both directions: the sleep is never shorter (an earlier retry is a
// guaranteed re-throttle) and never longer (oversleeping wastes the
// capacity the server just promised).  Every retry sleeps the hint,
// exactly.
TEST(RetryTest, ServerRetryAfterHintIsSleptExactly) {
  Rng rng(1);
  common::RetryPolicy policy;
  policy.initial_backoff_micros = 1;          // jitter would undersleep
  policy.max_backoff_micros = 100'000'000;    // ...or oversleep wildly
  int calls = 0;
  std::vector<int64_t> sleeps;
  auto status = common::CallWithRetry(
      policy, rng,
      [&] {
        if (++calls < 4) {
          return Status::ResourceExhausted("backlog over bound", 7'000);
        }
        return Status::OK();
      },
      [&](int64_t micros) { sleeps.push_back(micros); });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(sleeps, (std::vector<int64_t>{7'000, 7'000, 7'000}));
}

// Hinted sleeps still count against the policy's sleep deadline: a hint
// pointing past the budget abandons the call with the throttle error.
TEST(RetryTest, RetryAfterHintRespectsDeadlineBudget) {
  Rng rng(1);
  common::RetryPolicy policy;
  policy.deadline_micros = 5'000;
  int calls = 0;
  auto status = common::CallWithRetry(
      policy, rng,
      [&] {
        ++calls;
        return Status::ResourceExhausted("backlog over bound", 7'000);
      },
      [](int64_t) {});
  EXPECT_TRUE(status.IsResourceExhausted());
  EXPECT_EQ(status.retry_after_micros(), 7'000);
  EXPECT_EQ(calls, 1);
}

// --- Strings -----------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, JoinRoundTripsSplit) {
  const std::vector<std::string> pieces{"x", "y", "z"};
  EXPECT_EQ(Split(Join(pieces, "|"), '|'), pieces);
}

TEST(StringsTest, TrimAndCase) {
  EXPECT_EQ(Trim("  a b \t\n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(ToLower("MiXeD42"), "mixed42");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("painting", "paint"));
  EXPECT_FALSE(StartsWith("paint", "painting"));
  EXPECT_TRUE(EndsWith("delacroix.xml", ".xml"));
  EXPECT_FALSE(EndsWith(".xml", "delacroix.xml"));
}

TEST(StringsTest, ContainsWordIsWholeWordCaseInsensitive) {
  EXPECT_TRUE(ContainsWord("The Lion Hunt", "Lion"));
  EXPECT_TRUE(ContainsWord("The Lion Hunt", "lion"));
  EXPECT_FALSE(ContainsWord("The Lionheart", "lion"));
  EXPECT_FALSE(ContainsWord("The Lion Hunt", "io"));
  EXPECT_TRUE(ContainsWord("year:1854!", "1854"));
  EXPECT_FALSE(ContainsWord("", "x"));
  EXPECT_FALSE(ContainsWord("x", ""));
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(40ull * 1024 * 1024 * 1024), "40.0 GB");
}

TEST(StringsTest, HumanDuration) {
  EXPECT_EQ(HumanDuration(500), "500 us");
  EXPECT_EQ(HumanDuration(2500), "2.5 ms");
  EXPECT_EQ(HumanDuration(1500000), "1.5 s");
  EXPECT_EQ(HumanDuration(90 * 1000000LL), "1:30 min");
  EXPECT_EQ(HumanDuration(7860ll * 1000000), "2:11 h");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

// --- Varint ------------------------------------------------------------------

TEST(VarintTest, KnownEncodings) {
  std::string buf;
  PutVarint64(&buf, 0);
  PutVarint64(&buf, 127);
  PutVarint64(&buf, 128);
  EXPECT_EQ(buf.size(), 1 + 1 + 2);
  size_t offset = 0;
  EXPECT_EQ(GetVarint64(buf, &offset).value(), 0u);
  EXPECT_EQ(GetVarint64(buf, &offset).value(), 127u);
  EXPECT_EQ(GetVarint64(buf, &offset).value(), 128u);
  EXPECT_EQ(offset, buf.size());
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.resize(buf.size() - 1);
  size_t offset = 0;
  EXPECT_TRUE(GetVarint64(buf, &offset).status().IsCorruption());
}

TEST(VarintTest, LengthMatchesEncoding) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 1ull << 21,
                     1ull << 42, ~0ull}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), VarintLength(v)) << v;
  }
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, EncodesAndDecodes) {
  std::string buf;
  PutVarint64(&buf, GetParam());
  size_t offset = 0;
  auto decoded = GetVarint64(buf, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), GetParam());
  EXPECT_EQ(offset, buf.size());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 2ull, 127ull, 128ull, 255ull, 256ull,
                      16383ull, 16384ull, 1ull << 28, (1ull << 28) - 1,
                      1ull << 35, 1ull << 56, ~0ull, ~0ull - 1));

TEST(VarintTest, RandomStreamRoundTrips) {
  Rng rng(99);
  std::vector<uint64_t> values;
  std::string buf;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Next() >> (rng.Next() % 64);
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  size_t offset = 0;
  for (uint64_t expected : values) {
    auto v = GetVarint64(buf, &offset);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), expected);
  }
  EXPECT_EQ(offset, buf.size());
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(13);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, UuidFormat) {
  Rng rng(5);
  const std::string uuid = rng.NextUuid();
  ASSERT_EQ(uuid.size(), 36u);
  EXPECT_EQ(uuid[8], '-');
  EXPECT_EQ(uuid[13], '-');
  EXPECT_EQ(uuid[14], '4');  // version 4
  EXPECT_EQ(uuid[18], '-');
  EXPECT_EQ(uuid[23], '-');
  EXPECT_TRUE(uuid[19] == '8' || uuid[19] == '9' || uuid[19] == 'a' ||
              uuid[19] == 'b');  // RFC 4122 variant
}

TEST(RngTest, UuidsDistinct) {
  Rng rng(5);
  std::set<std::string> uuids;
  for (int i = 0; i < 1000; ++i) uuids.insert(rng.NextUuid());
  EXPECT_EQ(uuids.size(), 1000u);
}

TEST(RngTest, ForkIndependentStream) {
  Rng a(42);
  Rng fork = a.Fork();
  Rng b(42);
  b.Next();  // fork consumed one draw from a
  EXPECT_EQ(a.Next(), b.Next());
  (void)fork;
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextWeighted({0.0, 1.0, 0.0}), 1u);
  }
}

}  // namespace
}  // namespace webdex
