#include <gtest/gtest.h>

#include "query/parser.h"
#include "query/xquery.h"

namespace webdex::query {
namespace {

std::string Translate(std::string_view text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return ToXQuery(q.value());
}

TEST(XQueryTest, SingleNodePattern) {
  const std::string xq = Translate("//painting:val");
  EXPECT_NE(xq.find("for $p0n0 in collection(\"webdex\")//painting"),
            std::string::npos)
      << xq;
  EXPECT_NE(xq.find("return <row><col>{string($p0n0)}</col></row>"),
            std::string::npos)
      << xq;
  EXPECT_EQ(xq.find("where"), std::string::npos);
}

TEST(XQueryTest, ChildAxisRootAnchorsAtDocumentElement) {
  const std::string xq = Translate("/site");
  EXPECT_NE(xq.find("collection(\"webdex\")/site"), std::string::npos);
}

TEST(XQueryTest, PaperQ1BindsEveryNode) {
  const std::string xq =
      Translate("//painting[/name:val, //painter/name:val]");
  EXPECT_NE(xq.find("$p0n1 in $p0n0/name"), std::string::npos) << xq;
  EXPECT_NE(xq.find("$p0n2 in $p0n0//painter"), std::string::npos) << xq;
  EXPECT_NE(xq.find("$p0n3 in $p0n2/name"), std::string::npos) << xq;
  EXPECT_NE(xq.find("<col>{string($p0n1)}</col>"
                    "<col>{string($p0n3)}</col>"),
            std::string::npos)
      << xq;
}

TEST(XQueryTest, PredicatesBecomeWhereConjuncts) {
  const std::string xq = Translate(
      "//painting[/year='1854', /name~'Lion', "
      "/price in(10,20]]");
  EXPECT_NE(xq.find("where string($p0n1) = \"1854\""), std::string::npos)
      << xq;
  EXPECT_NE(xq.find("and contains(string($p0n2), \"Lion\")"),
            std::string::npos)
      << xq;
  EXPECT_NE(xq.find("and number($p0n3) gt 10 and number($p0n3) le 20"),
            std::string::npos)
      << xq;
}

TEST(XQueryTest, AttributesUseAtSign) {
  const std::string xq = Translate("//item[/@id:val]");
  EXPECT_NE(xq.find("$p0n1 in $p0n0/@id"), std::string::npos) << xq;
}

TEST(XQueryTest, ContProjectsTheNodeItself) {
  const std::string xq = Translate("//painting/description:cont");
  EXPECT_NE(xq.find("<col>{$p0n1}</col>"), std::string::npos) << xq;
  EXPECT_EQ(xq.find("{string($p0n1)}"), std::string::npos) << xq;
}

TEST(XQueryTest, ValueJoinBecomesStringEquality) {
  const std::string xq = Translate(
      "//museum[/painting/@id#x]; //painting[/@id#y] where #x=#y");
  EXPECT_NE(xq.find("$p1n0 in collection(\"webdex\")//painting"),
            std::string::npos)
      << xq;
  EXPECT_NE(xq.find("string($p0n2) = string($p1n1)"), std::string::npos)
      << xq;
}

TEST(XQueryTest, CustomCollectionName) {
  auto q = ParseQuery("//a");
  ASSERT_TRUE(q.ok());
  const std::string xq = ToXQuery(q.value(), "prod-corpus");
  EXPECT_NE(xq.find("collection(\"prod-corpus\")//a"), std::string::npos);
}

TEST(XQueryTest, QuotesEscapedInLiterals) {
  auto q = ParseQuery("//a='x'");
  ASSERT_TRUE(q.ok());
  // Force a constant containing a double quote via the AST directly.
  // (The text syntax cannot express one; the translator must still
  // escape it.)
  Query query = std::move(q).value();
  const_cast<PatternNode*>(query.patterns()[0].nodes()[0])
      ->predicate.constant = "say \"hi\"";
  const std::string xq = ToXQuery(query);
  EXPECT_NE(xq.find("\"say \"\"hi\"\"\""), std::string::npos) << xq;
}

TEST(XQueryTest, PaperExampleFromHeaderComment) {
  const std::string xq =
      Translate("//painting[/name~'Lion', //painter/name/last:val]");
  EXPECT_NE(xq.find("contains(string($p0n1), \"Lion\")"),
            std::string::npos)
      << xq;
  EXPECT_NE(xq.find("<row><col>{string($p0n4)}</col></row>"),
            std::string::npos)
      << xq;
}

}  // namespace
}  // namespace webdex::query
