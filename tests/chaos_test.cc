// Chaos-equivalence contract of the deterministic fault-injection layer
// (docs/FAULTS.md): under a seeded FaultPlan — transient S3/DynamoDB/SQS
// errors, unprocessed-item suffixes, duplicate and delayed deliveries,
// and plan-driven crashes — every indexing strategy must converge to the
// byte-identical index tables and query answers of a fault-free run,
// while costing at least as many simulated dollars and at least as much
// virtual makespan.  The fault schedule itself must be a pure function of
// the seeds: serial (host_threads == 1) and host-parallel (8) chaos runs
// are bit-identical.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "cloud/cloud_env.h"
#include "engine/warehouse.h"
#include "xmark/paintings.h"
#include "xmark/xmark_generator.h"

namespace webdex::engine {
namespace {

using index::StrategyKind;

std::vector<xmark::GeneratedDocument> Corpus() {
  auto docs = xmark::GeneratePaintings();
  xmark::GeneratorConfig config;
  config.num_documents = 8;
  config.entities_per_document = 6;
  for (auto& doc : xmark::XmarkGenerator(config).GenerateAll()) {
    docs.push_back(std::move(doc));
  }
  return docs;
}

const char* kQuery = "//painting[/name~'Lion', //painter/name/last:val]";

/// The moderately hostile cloud the suite runs under: every service
/// faulting a few percent of attempts, DynamoDB bouncing batch suffixes,
/// SQS duplicating and delaying deliveries, instances crashing at both
/// engine crash points.
cloud::FaultPlan ChaosPlan() {
  cloud::FaultPlan plan;
  plan.seed = 7;
  plan.s3.error_probability = 0.05;
  plan.s3.throttle_share = 0.3;
  plan.dynamodb.error_probability = 0.05;
  plan.dynamodb.throttle_share = 0.7;
  plan.dynamodb.unprocessed_probability = 0.15;
  plan.simpledb.error_probability = 0.05;
  plan.simpledb.throttle_share = 0.5;
  plan.sqs.error_probability = 0.04;
  plan.sqs.duplicate_probability = 0.06;
  plan.sqs.delay_probability = 0.2;
  plan.sqs.max_delay = 2 * cloud::kMicrosPerSecond;
  plan.crash.before_delete_probability = 0.04;
  plan.crash.between_batch_put_pages_probability = 0.04;
  return plan;
}

/// Everything a fault-free and a faulted run must agree on (state) or be
/// ordered on (cost), plus the fault counters themselves.
struct ChaosFingerprint {
  IndexingRunReport report;
  std::vector<std::string> table_dump;
  std::vector<std::vector<std::string>> rows;  // answers of kQuery
  double dollars = 0;
  cloud::Usage usage;
};

ChaosFingerprint RunChaos(StrategyKind strategy, const cloud::FaultPlan& plan,
                     int host_threads,
                     IndexBackend backend = IndexBackend::kDynamoDb) {
  cloud::CloudConfig cloud_config;
  cloud_config.faults = plan;
  auto env = std::make_unique<cloud::CloudEnv>(cloud_config);
  WarehouseConfig config;
  config.strategy = strategy;
  config.backend = backend;
  config.num_instances = 2;
  config.host_threads = host_threads;
  Warehouse warehouse(env.get(), config);
  EXPECT_TRUE(warehouse.Setup().ok());
  for (const auto& doc : Corpus()) {
    EXPECT_TRUE(warehouse.SubmitDocument(doc.uri, doc.text).ok());
  }
  ChaosFingerprint out;
  auto report = warehouse.RunIndexers();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report.ok()) out.report = report.value();
  warehouse.index_store().ForEachItem(
      [&out](const std::string& table, const cloud::Item& item) {
        std::string line = table + "|" + item.hash_key + "|" + item.range_key;
        for (const auto& [name, values] : item.attrs) {
          line += "|" + name + "=";
          for (const auto& value : values) line += value + ",";
        }
        out.table_dump.push_back(std::move(line));
      });
  auto outcome = warehouse.ExecuteQuery(kQuery);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  if (outcome.ok()) out.rows = outcome.value().result.rows;
  out.dollars = env->meter().ComputeBill().total();
  out.usage = env->meter().usage();
  return out;
}

/// (strategy, index backend): chaos equivalence must hold on the legacy
/// SimpleDB deployment exactly as on DynamoDB.
class ChaosTest
    : public ::testing::TestWithParam<std::tuple<StrategyKind, IndexBackend>> {
 protected:
  StrategyKind strategy() const { return std::get<0>(GetParam()); }
  IndexBackend backend() const { return std::get<1>(GetParam()); }
};

// The headline equivalence: a faulted run ends in the same index and
// answers the query identically, never cheaper or faster than fault-free.
TEST_P(ChaosTest, FaultedRunConvergesToFaultFreeState) {
  const ChaosFingerprint clean =
      RunChaos(strategy(), cloud::FaultPlan(), 1, backend());
  const ChaosFingerprint faulted =
      RunChaos(strategy(), ChaosPlan(), 1, backend());
  // The plan actually bit: faults fired and retries happened.
  EXPECT_GT(faulted.usage.faulted_requests, 0u);
  EXPECT_GT(faulted.usage.retried_requests, 0u);
  // State converged bit-identically...
  EXPECT_EQ(clean.table_dump, faulted.table_dump);
  ASSERT_FALSE(faulted.rows.empty());
  EXPECT_EQ(clean.rows, faulted.rows);
  EXPECT_EQ(faulted.rows[0][0], "Delacroix");
  // ...and recovery was paid for, never profited from.
  EXPECT_GE(faulted.dollars, clean.dollars);
  EXPECT_GE(faulted.report.makespan, clean.report.makespan);
  // No task was dropped: the poison counter stays at zero under a plan
  // of transient-only faults.
  EXPECT_EQ(faulted.report.dead_lettered, 0u);
  EXPECT_EQ(faulted.usage.dead_lettered, 0u);
}

// The fault schedule is a pure function of the seeds, not of host-thread
// interleaving: chaos runs are bit-identical serial vs. host-parallel.
TEST_P(ChaosTest, SerialAndParallelChaosRunsAreBitIdentical) {
  const ChaosFingerprint serial =
      RunChaos(strategy(), ChaosPlan(), 1, backend());
  const ChaosFingerprint parallel =
      RunChaos(strategy(), ChaosPlan(), 8, backend());
  EXPECT_EQ(serial.table_dump, parallel.table_dump);
  EXPECT_EQ(serial.rows, parallel.rows);
  EXPECT_DOUBLE_EQ(serial.dollars, parallel.dollars);
  EXPECT_EQ(serial.report.documents, parallel.report.documents);
  EXPECT_EQ(serial.report.makespan, parallel.report.makespan);
  EXPECT_EQ(serial.report.extraction_micros,
            parallel.report.extraction_micros);
  EXPECT_EQ(serial.report.upload_micros, parallel.report.upload_micros);
  EXPECT_EQ(serial.report.redeliveries, parallel.report.redeliveries);
  EXPECT_EQ(serial.report.dead_lettered, parallel.report.dead_lettered);
  EXPECT_EQ(serial.usage.faulted_requests, parallel.usage.faulted_requests);
  EXPECT_EQ(serial.usage.retried_requests, parallel.usage.retried_requests);
  EXPECT_EQ(serial.usage.sqs_redeliveries, parallel.usage.sqs_redeliveries);
  EXPECT_EQ(serial.usage.sqs_requests, parallel.usage.sqs_requests);
  EXPECT_EQ(serial.usage.ddb_put_requests, parallel.usage.ddb_put_requests);
  EXPECT_EQ(serial.usage.sdb_put_requests, parallel.usage.sdb_put_requests);
  EXPECT_EQ(serial.usage.sdb_get_requests, parallel.usage.sdb_get_requests);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAndBackends, ChaosTest,
    ::testing::Combine(
        ::testing::ValuesIn(index::AllStrategyKinds()),
        ::testing::Values(IndexBackend::kDynamoDb, IndexBackend::kSimpleDb)),
    [](const ::testing::TestParamInfo<std::tuple<StrategyKind, IndexBackend>>&
           info) {
      return std::string(index::StrategyKindName(std::get<0>(info.param))) +
             (std::get<1>(info.param) == IndexBackend::kSimpleDb
                  ? "_SimpleDb"
                  : "_DynamoDb");
    });

// The default (empty) plan is the identity: no counter moves, so every
// pre-chaos report and bill is reproduced bit-identically.
TEST(ChaosTest, EmptyPlanInjectsNothing) {
  const ChaosFingerprint clean = RunChaos(StrategyKind::kLUP, cloud::FaultPlan(), 1);
  EXPECT_EQ(clean.usage.faulted_requests, 0u);
  EXPECT_EQ(clean.usage.retried_requests, 0u);
  EXPECT_EQ(clean.usage.sqs_redeliveries, 0u);
  EXPECT_EQ(clean.usage.dead_lettered, 0u);
  EXPECT_EQ(clean.report.redeliveries, 0u);
  EXPECT_EQ(clean.report.dead_lettered, 0u);
  EXPECT_EQ(clean.report.documents, Corpus().size());
}

// Two different plan seeds produce two different fault schedules against
// the same cloud seed (the knob tests ask for).
TEST(ChaosTest, PlanSeedSelectsTheSchedule) {
  cloud::FaultPlan a = ChaosPlan();
  cloud::FaultPlan b = ChaosPlan();
  b.seed = 8;
  const ChaosFingerprint run_a = RunChaos(StrategyKind::kLU, a, 1);
  const ChaosFingerprint run_b = RunChaos(StrategyKind::kLU, b, 1);
  // Same converged state...
  EXPECT_EQ(run_a.table_dump, run_b.table_dump);
  EXPECT_EQ(run_a.rows, run_b.rows);
  // ...via different histories.
  EXPECT_NE(run_a.usage.faulted_requests, run_b.usage.faulted_requests);
}

// Satellite: a crash *between* two DynamoDB BatchPut pages leaves a
// half-written index; the redelivered task re-puts the same (hash, range)
// keys, so the table contents converge to the crash-free run's.
TEST(ChaosTest, MidBatchPutCrashConvergesOnRedelivery) {
  int crashes_remaining = 2;
  int boundaries_seen = 0;
  WarehouseConfig config;
  config.strategy = StrategyKind::k2LUPI;
  config.num_instances = 2;

  auto run = [&](bool with_crashes) {
    cloud::CloudConfig cloud_config;  // no service faults: crashes only
    auto env = std::make_unique<cloud::CloudEnv>(cloud_config);
    WarehouseConfig wh = config;
    if (with_crashes) {
      wh.crash_plan = [&](cloud::CrashPoint point, int, const std::string&) {
        if (point != cloud::CrashPoint::kBetweenBatchPutPages) return false;
        ++boundaries_seen;
        if (crashes_remaining > 0) {
          --crashes_remaining;
          return true;
        }
        return false;
      };
    }
    Warehouse warehouse(env.get(), wh);
    EXPECT_TRUE(warehouse.Setup().ok());
    for (const auto& doc : Corpus()) {
      EXPECT_TRUE(warehouse.SubmitDocument(doc.uri, doc.text).ok());
    }
    auto report = warehouse.RunIndexers();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    std::vector<std::string> dump;
    warehouse.index_store().ForEachItem(
        [&dump](const std::string& table, const cloud::Item& item) {
          dump.push_back(table + "|" + item.hash_key + "|" + item.range_key);
        });
    return std::make_pair(std::move(dump),
                          report.ok() ? report.value() : IndexingRunReport{});
  };

  const auto clean = run(/*with_crashes=*/false);
  const auto crashed = run(/*with_crashes=*/true);
  // The corpus actually produces multi-page uploads and both crashes
  // fired mid-upload.
  EXPECT_GT(boundaries_seen, 0);
  EXPECT_EQ(crashes_remaining, 0);
  // The two lost tasks were redelivered and the index converged.
  EXPECT_GE(crashed.second.redeliveries, 2u);
  EXPECT_EQ(clean.first, crashed.first);
  EXPECT_EQ(clean.second.documents, crashed.second.documents);
}

}  // namespace
}  // namespace webdex::engine
