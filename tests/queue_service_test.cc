#include <gtest/gtest.h>

#include "cloud/fault.h"
#include "cloud/queue_service.h"

namespace webdex::cloud {
namespace {

class TestAgent : public SimAgent {};

QueueServiceConfig TestConfig() {
  QueueServiceConfig config;
  config.request_latency = 1'000;
  config.visibility_timeout = 60 * kMicrosPerSecond;
  return config;
}

class QueueServiceTest : public ::testing::Test {
 protected:
  QueueServiceTest() : meter_(Pricing()), sqs_(TestConfig(), &meter_) {
    EXPECT_TRUE(sqs_.CreateQueue("q").ok());
  }

  UsageMeter meter_;
  QueueService sqs_;
  TestAgent agent_;
};

TEST_F(QueueServiceTest, SendReceiveDelete) {
  ASSERT_TRUE(sqs_.Send(agent_, "q", "hello").ok());
  auto msg = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(msg.ok());
  ASSERT_TRUE(msg.value().has_value());
  EXPECT_EQ(msg.value()->body, "hello");
  EXPECT_EQ(msg.value()->delivery_count, 1);
  ASSERT_TRUE(sqs_.Delete(agent_, "q", msg.value()->receipt).ok());
  EXPECT_TRUE(sqs_.Drained("q"));
}

TEST_F(QueueServiceTest, ReceiveFromEmptyQueueReturnsNulloptButBills) {
  auto msg = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(msg.ok());
  EXPECT_FALSE(msg.value().has_value());
  EXPECT_EQ(meter_.usage().sqs_requests, 1u);
}

TEST_F(QueueServiceTest, UnknownQueueFails) {
  EXPECT_TRUE(sqs_.Send(agent_, "nope", "x").IsNotFound());
  EXPECT_TRUE(sqs_.Receive(agent_, "nope").status().IsNotFound());
}

TEST_F(QueueServiceTest, InFlightMessageIsInvisible) {
  ASSERT_TRUE(sqs_.Send(agent_, "q", "only").ok());
  auto first = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(first.value().has_value());
  auto second = sqs_.Receive(agent_, "q");
  EXPECT_FALSE(second.value().has_value());
  EXPECT_FALSE(sqs_.Drained("q"));
}

TEST_F(QueueServiceTest, ExpiredLeaseRedelivers) {
  ASSERT_TRUE(sqs_.Send(agent_, "q", "task").ok());
  auto first = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(first.value().has_value());
  // Simulated worker crash: no delete, time passes beyond the timeout.
  agent_.Advance(61 * kMicrosPerSecond);
  auto second = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(second.value().has_value());
  EXPECT_EQ(second.value()->body, "task");
  EXPECT_EQ(second.value()->delivery_count, 2);
  // The stale first receipt can no longer acknowledge the message.
  EXPECT_TRUE(sqs_.Delete(agent_, "q", first.value()->receipt).IsNotFound());
  EXPECT_TRUE(sqs_.Delete(agent_, "q", second.value()->receipt).ok());
}

TEST_F(QueueServiceTest, RenewLeaseExtendsVisibility) {
  ASSERT_TRUE(sqs_.Send(agent_, "q", "task").ok());
  auto msg = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(msg.value().has_value());
  agent_.Advance(50 * kMicrosPerSecond);
  ASSERT_TRUE(sqs_.RenewLease(agent_, "q", msg.value()->receipt).ok());
  agent_.Advance(50 * kMicrosPerSecond);  // 100 s total, lease renewed at 50
  auto other = sqs_.Receive(agent_, "q");
  EXPECT_FALSE(other.value().has_value());  // still leased
  EXPECT_TRUE(sqs_.Delete(agent_, "q", msg.value()->receipt).ok());
}

TEST_F(QueueServiceTest, RenewAfterExpiryFails) {
  ASSERT_TRUE(sqs_.Send(agent_, "q", "task").ok());
  auto msg = sqs_.Receive(agent_, "q");
  agent_.Advance(61 * kMicrosPerSecond);
  EXPECT_TRUE(sqs_.RenewLease(agent_, "q", msg.value()->receipt).IsNotFound());
}

TEST_F(QueueServiceTest, FifoAmongVisibleMessages) {
  ASSERT_TRUE(sqs_.Send(agent_, "q", "a").ok());
  ASSERT_TRUE(sqs_.Send(agent_, "q", "b").ok());
  auto first = sqs_.Receive(agent_, "q");
  auto second = sqs_.Receive(agent_, "q");
  EXPECT_EQ(first.value()->body, "a");
  EXPECT_EQ(second.value()->body, "b");
}

TEST_F(QueueServiceTest, NextDeliverableAtReportsLease) {
  EXPECT_FALSE(sqs_.NextDeliverableAt("q").has_value());
  ASSERT_TRUE(sqs_.Send(agent_, "q", "x").ok());
  auto visible = sqs_.NextDeliverableAt("q");
  ASSERT_TRUE(visible.has_value());
  EXPECT_LE(*visible, agent_.now());
  auto msg = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(msg.value().has_value());
  visible = sqs_.NextDeliverableAt("q");
  ASSERT_TRUE(visible.has_value());
  EXPECT_EQ(*visible, agent_.now() + 60 * kMicrosPerSecond);
}

TEST_F(QueueServiceTest, CountTracksUndeleted) {
  EXPECT_EQ(sqs_.Count("q"), 0u);
  ASSERT_TRUE(sqs_.Send(agent_, "q", "a").ok());
  ASSERT_TRUE(sqs_.Send(agent_, "q", "b").ok());
  EXPECT_EQ(sqs_.Count("q"), 2u);
  auto msg = sqs_.Receive(agent_, "q");
  EXPECT_EQ(sqs_.Count("q"), 2u);  // in flight still counts
  ASSERT_TRUE(sqs_.Delete(agent_, "q", msg.value()->receipt).ok());
  EXPECT_EQ(sqs_.Count("q"), 1u);
}

TEST_F(QueueServiceTest, DeliveryCountAndStaleReceiptsAcrossExpiries) {
  ASSERT_TRUE(sqs_.Send(agent_, "q", "task").ok());
  auto first = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(first.value().has_value());
  EXPECT_EQ(first.value()->delivery_count, 1);
  agent_.Advance(61 * kMicrosPerSecond);
  auto second = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(second.value().has_value());
  EXPECT_EQ(second.value()->delivery_count, 2);
  agent_.Advance(61 * kMicrosPerSecond);
  auto third = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(third.value().has_value());
  EXPECT_EQ(third.value()->delivery_count, 3);
  // Each redelivery after the first is counted by the meter...
  EXPECT_EQ(meter_.usage().sqs_redeliveries, 2u);
  // ...and invalidates every earlier receipt for delete *and* renew.
  EXPECT_TRUE(sqs_.Delete(agent_, "q", first.value()->receipt).IsNotFound());
  EXPECT_TRUE(
      sqs_.RenewLease(agent_, "q", second.value()->receipt).IsNotFound());
  EXPECT_TRUE(sqs_.RenewLease(agent_, "q", third.value()->receipt).ok());
  EXPECT_TRUE(sqs_.Delete(agent_, "q", third.value()->receipt).ok());
  EXPECT_TRUE(sqs_.Drained("q"));
}

TEST_F(QueueServiceTest, NextDeliverableAtTracksRenewedLease) {
  ASSERT_TRUE(sqs_.Send(agent_, "q", "x").ok());
  auto msg = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(msg.value().has_value());
  agent_.Advance(10 * kMicrosPerSecond);
  ASSERT_TRUE(sqs_.RenewLease(agent_, "q", msg.value()->receipt).ok());
  // The in-flight message becomes deliverable a full timeout after the
  // renewal, not after the original receive.
  auto visible = sqs_.NextDeliverableAt("q");
  ASSERT_TRUE(visible.has_value());
  EXPECT_EQ(*visible, agent_.now() + 60 * kMicrosPerSecond);
}

/// Fixture wiring a FaultInjector into the queue, for the chaos knobs.
class FaultedQueueTest : public ::testing::Test {
 protected:
  explicit FaultedQueueTest(FaultPlan plan = FaultPlan())
      : meter_(Pricing()),
        injector_(plan, /*base_seed=*/42, &meter_),
        sqs_(TestConfig(), &meter_, &injector_) {
    EXPECT_TRUE(sqs_.CreateQueue("q").ok());
  }

  UsageMeter meter_;
  FaultInjector injector_;
  QueueService sqs_;
  TestAgent agent_;
};

FaultPlan AllErrorsPlan() {
  FaultPlan plan;
  plan.sqs.error_probability = 1.0;
  plan.sqs.throttle_share = 0.0;  // always kUnavailable
  return plan;
}

class ErroringQueueTest : public FaultedQueueTest {
 protected:
  ErroringQueueTest() : FaultedQueueTest(AllErrorsPlan()) {}
};

TEST_F(ErroringQueueTest, InjectedErrorsAreRetriableAndBilled) {
  auto status = sqs_.Send(agent_, "q", "x");
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_TRUE(status.IsRetriable());
  // The failed attempt still bills a request and its latency, but the
  // message was not enqueued.
  EXPECT_EQ(meter_.usage().sqs_requests, 1u);
  EXPECT_EQ(meter_.usage().faulted_requests, 1u);
  EXPECT_EQ(agent_.now(), 1'000);
  EXPECT_TRUE(sqs_.Drained("q"));
  EXPECT_TRUE(sqs_.Receive(agent_, "q").status().IsUnavailable());
  EXPECT_EQ(meter_.usage().faulted_requests, 2u);
}

FaultPlan AllDuplicatesPlan() {
  FaultPlan plan;
  plan.sqs.duplicate_probability = 1.0;
  return plan;
}

class DuplicatingQueueTest : public FaultedQueueTest {
 protected:
  DuplicatingQueueTest() : FaultedQueueTest(AllDuplicatesPlan()) {}
};

TEST_F(DuplicatingQueueTest, DuplicateDeliveryStalesTheReceipt) {
  ASSERT_TRUE(sqs_.Send(agent_, "q", "task").ok());
  auto first = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(first.value().has_value());
  // The duplicate injection left the message deliverable: the receipt just
  // handed out is already stale, exactly like a real at-least-once dup.
  EXPECT_TRUE(sqs_.Delete(agent_, "q", first.value()->receipt).IsNotFound());
  auto second = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(second.value().has_value());
  EXPECT_EQ(second.value()->body, "task");
  EXPECT_EQ(second.value()->delivery_count, 2);
  EXPECT_EQ(meter_.usage().sqs_redeliveries, 1u);
}

FaultPlan AllDelaysPlan() {
  FaultPlan plan;
  plan.sqs.delay_probability = 1.0;
  plan.sqs.max_delay = 5 * kMicrosPerSecond;
  return plan;
}

class DelayingQueueTest : public FaultedQueueTest {
 protected:
  DelayingQueueTest() : FaultedQueueTest(AllDelaysPlan()) {}
};

TEST_F(DelayingQueueTest, DelayedMessageBecomesVisibleLater) {
  ASSERT_TRUE(sqs_.Send(agent_, "q", "slow").ok());
  auto hidden = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(hidden.ok());
  EXPECT_FALSE(hidden.value().has_value());
  auto visible_at = sqs_.NextDeliverableAt("q");
  ASSERT_TRUE(visible_at.has_value());
  EXPECT_GT(*visible_at, agent_.now());
  EXPECT_LE(*visible_at, agent_.now() + 5 * kMicrosPerSecond);
  agent_.AdvanceTo(*visible_at);
  auto msg = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(msg.value().has_value());
  EXPECT_EQ(msg.value()->body, "slow");
  EXPECT_EQ(msg.value()->delivery_count, 1);  // a delay is not a redelivery
  EXPECT_EQ(meter_.usage().sqs_redeliveries, 0u);
}

TEST_F(QueueServiceTest, EveryApiCallBillsOneRequest) {
  ASSERT_TRUE(sqs_.Send(agent_, "q", "x").ok());
  auto msg = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(sqs_.RenewLease(agent_, "q", msg.value()->receipt).ok());
  ASSERT_TRUE(sqs_.Delete(agent_, "q", msg.value()->receipt).ok());
  EXPECT_EQ(meter_.usage().sqs_requests, 4u);
  EXPECT_EQ(agent_.now(), 4'000);  // 4 requests x 1 ms
}

}  // namespace
}  // namespace webdex::cloud
