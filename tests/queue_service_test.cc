#include <gtest/gtest.h>

#include "cloud/queue_service.h"

namespace webdex::cloud {
namespace {

class TestAgent : public SimAgent {};

class QueueServiceTest : public ::testing::Test {
 protected:
  QueueServiceTest() : meter_(Pricing()), sqs_(Config(), &meter_) {
    EXPECT_TRUE(sqs_.CreateQueue("q").ok());
  }

  static QueueServiceConfig Config() {
    QueueServiceConfig config;
    config.request_latency = 1'000;
    config.visibility_timeout = 60 * kMicrosPerSecond;
    return config;
  }

  UsageMeter meter_;
  QueueService sqs_;
  TestAgent agent_;
};

TEST_F(QueueServiceTest, SendReceiveDelete) {
  ASSERT_TRUE(sqs_.Send(agent_, "q", "hello").ok());
  auto msg = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(msg.ok());
  ASSERT_TRUE(msg.value().has_value());
  EXPECT_EQ(msg.value()->body, "hello");
  EXPECT_EQ(msg.value()->delivery_count, 1);
  ASSERT_TRUE(sqs_.Delete(agent_, "q", msg.value()->receipt).ok());
  EXPECT_TRUE(sqs_.Drained("q"));
}

TEST_F(QueueServiceTest, ReceiveFromEmptyQueueReturnsNulloptButBills) {
  auto msg = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(msg.ok());
  EXPECT_FALSE(msg.value().has_value());
  EXPECT_EQ(meter_.usage().sqs_requests, 1u);
}

TEST_F(QueueServiceTest, UnknownQueueFails) {
  EXPECT_TRUE(sqs_.Send(agent_, "nope", "x").IsNotFound());
  EXPECT_TRUE(sqs_.Receive(agent_, "nope").status().IsNotFound());
}

TEST_F(QueueServiceTest, InFlightMessageIsInvisible) {
  ASSERT_TRUE(sqs_.Send(agent_, "q", "only").ok());
  auto first = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(first.value().has_value());
  auto second = sqs_.Receive(agent_, "q");
  EXPECT_FALSE(second.value().has_value());
  EXPECT_FALSE(sqs_.Drained("q"));
}

TEST_F(QueueServiceTest, ExpiredLeaseRedelivers) {
  ASSERT_TRUE(sqs_.Send(agent_, "q", "task").ok());
  auto first = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(first.value().has_value());
  // Simulated worker crash: no delete, time passes beyond the timeout.
  agent_.Advance(61 * kMicrosPerSecond);
  auto second = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(second.value().has_value());
  EXPECT_EQ(second.value()->body, "task");
  EXPECT_EQ(second.value()->delivery_count, 2);
  // The stale first receipt can no longer acknowledge the message.
  EXPECT_TRUE(sqs_.Delete(agent_, "q", first.value()->receipt).IsNotFound());
  EXPECT_TRUE(sqs_.Delete(agent_, "q", second.value()->receipt).ok());
}

TEST_F(QueueServiceTest, RenewLeaseExtendsVisibility) {
  ASSERT_TRUE(sqs_.Send(agent_, "q", "task").ok());
  auto msg = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(msg.value().has_value());
  agent_.Advance(50 * kMicrosPerSecond);
  ASSERT_TRUE(sqs_.RenewLease(agent_, "q", msg.value()->receipt).ok());
  agent_.Advance(50 * kMicrosPerSecond);  // 100 s total, lease renewed at 50
  auto other = sqs_.Receive(agent_, "q");
  EXPECT_FALSE(other.value().has_value());  // still leased
  EXPECT_TRUE(sqs_.Delete(agent_, "q", msg.value()->receipt).ok());
}

TEST_F(QueueServiceTest, RenewAfterExpiryFails) {
  ASSERT_TRUE(sqs_.Send(agent_, "q", "task").ok());
  auto msg = sqs_.Receive(agent_, "q");
  agent_.Advance(61 * kMicrosPerSecond);
  EXPECT_TRUE(sqs_.RenewLease(agent_, "q", msg.value()->receipt).IsNotFound());
}

TEST_F(QueueServiceTest, FifoAmongVisibleMessages) {
  ASSERT_TRUE(sqs_.Send(agent_, "q", "a").ok());
  ASSERT_TRUE(sqs_.Send(agent_, "q", "b").ok());
  auto first = sqs_.Receive(agent_, "q");
  auto second = sqs_.Receive(agent_, "q");
  EXPECT_EQ(first.value()->body, "a");
  EXPECT_EQ(second.value()->body, "b");
}

TEST_F(QueueServiceTest, NextDeliverableAtReportsLease) {
  EXPECT_FALSE(sqs_.NextDeliverableAt("q").has_value());
  ASSERT_TRUE(sqs_.Send(agent_, "q", "x").ok());
  auto visible = sqs_.NextDeliverableAt("q");
  ASSERT_TRUE(visible.has_value());
  EXPECT_LE(*visible, agent_.now());
  auto msg = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(msg.value().has_value());
  visible = sqs_.NextDeliverableAt("q");
  ASSERT_TRUE(visible.has_value());
  EXPECT_EQ(*visible, agent_.now() + 60 * kMicrosPerSecond);
}

TEST_F(QueueServiceTest, CountTracksUndeleted) {
  EXPECT_EQ(sqs_.Count("q"), 0u);
  ASSERT_TRUE(sqs_.Send(agent_, "q", "a").ok());
  ASSERT_TRUE(sqs_.Send(agent_, "q", "b").ok());
  EXPECT_EQ(sqs_.Count("q"), 2u);
  auto msg = sqs_.Receive(agent_, "q");
  EXPECT_EQ(sqs_.Count("q"), 2u);  // in flight still counts
  ASSERT_TRUE(sqs_.Delete(agent_, "q", msg.value()->receipt).ok());
  EXPECT_EQ(sqs_.Count("q"), 1u);
}

TEST_F(QueueServiceTest, EveryApiCallBillsOneRequest) {
  ASSERT_TRUE(sqs_.Send(agent_, "q", "x").ok());
  auto msg = sqs_.Receive(agent_, "q");
  ASSERT_TRUE(sqs_.RenewLease(agent_, "q", msg.value()->receipt).ok());
  ASSERT_TRUE(sqs_.Delete(agent_, "q", msg.value()->receipt).ok());
  EXPECT_EQ(meter_.usage().sqs_requests, 4u);
  EXPECT_EQ(agent_.now(), 4'000);  // 4 requests x 1 ms
}

}  // namespace
}  // namespace webdex::cloud
