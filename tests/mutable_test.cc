// Chaos-equivalence contract of the mutable corpus (docs/MUTABILITY.md):
// any interleaving of upserts, deletes and compaction — under a seeded
// FaultPlan of transient service faults, duplicate/delayed deliveries
// and instance crashes, including a *planned* mid-compaction crash with
// a snapshot-v3 save/restore in the middle — must converge to index
// tables and a document bucket byte-identical to a from-scratch build of
// the final corpus, answering queries identically, at a strictly higher
// bill than the fault-free incremental run.  And as everywhere else in
// the simulator, host parallelism is wall-clock only: serial and
// host-parallel mutable chaos runs are bit-identical.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "cloud/cloud_env.h"
#include "cloud/snapshot.h"
#include "common/strings.h"
#include "engine/warehouse.h"
#include "xmark/xmark_generator.h"

namespace webdex::engine {
namespace {

using index::StrategyKind;

constexpr int kNumDocs = 8;

/// Indexed query whose answer set crosses the mutated documents.  The
/// convergence checks deliberately use an *indexed* query: a degraded
/// scan path orders candidates by the (converged) registry either way,
/// and rows are bit-identical by the engine's degradation contract.
const char* kQuery = "//item[/name:val]";

std::string DocUri(int doc) { return StrFormat("xmark-%06d.xml", doc); }

/// Content of document `doc` at mutation `version`: every version is a
/// fresh deterministic corpus (same URIs, different text), so an upsert
/// genuinely replaces what the index must answer from.
std::string DocText(int doc, int version) {
  xmark::GeneratorConfig config;
  config.num_documents = kNumDocs;
  config.entities_per_document = 6;
  config.seed += static_cast<uint64_t>(version) * 1000003ull;
  return xmark::XmarkGenerator(config).Generate(doc).text;
}

struct Step {
  bool is_delete = false;
  int doc = 0;
  int version = 0;  // content version for upserts
};

/// Two mutation batches derived deterministically from `seed`, plus the
/// final corpus they leave behind (doc -> version; absent = deleted).
struct Schedule {
  std::vector<Step> first;
  std::vector<Step> second;
  std::map<int, int> final_docs;
  int deletes = 0;
};

Schedule MakeSchedule(uint64_t seed) {
  Schedule schedule;
  // Self-contained LCG: the schedule is a pure function of the seed.
  uint64_t x = seed * 2862933555777941757ull + 3037000493ull;
  const auto next = [&x]() {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return x >> 33;
  };
  std::map<int, int> alive;  // doc -> latest version
  for (int d = 0; d < kNumDocs; ++d) alive[d] = 0;
  int version = 0;
  const auto upsert = [&](std::vector<Step>* batch, int doc) {
    alive[doc] = ++version;
    batch->push_back(Step{false, doc, version});
  };
  const auto random_step = [&](std::vector<Step>* batch) {
    const int doc = static_cast<int>(next() % kNumDocs);
    if (alive.count(doc) > 0 && next() % 3 == 0) {
      alive.erase(doc);
      batch->push_back(Step{true, doc, 0});
      schedule.deletes += 1;
    } else {
      upsert(batch, doc);  // fresh content; revives a deleted doc
    }
  };
  // Each batch opens with two upserts of distinct documents so the final
  // compaction always has at least two URIs of work — enough for the
  // planned crash at the second URI boundary to leave a resumable tail.
  upsert(&schedule.first, 0);
  upsert(&schedule.first, 1);
  random_step(&schedule.first);
  random_step(&schedule.first);
  upsert(&schedule.second, 2);
  upsert(&schedule.second, 3);
  random_step(&schedule.second);
  random_step(&schedule.second);
  schedule.final_docs = alive;
  return schedule;
}

void ApplyBatch(Warehouse& warehouse, const std::vector<Step>& batch) {
  for (const Step& step : batch) {
    if (step.is_delete) {
      ASSERT_TRUE(warehouse.DeleteDocument(DocUri(step.doc)).ok());
    } else {
      ASSERT_TRUE(
          warehouse
              .UpsertDocument(DocUri(step.doc), DocText(step.doc, step.version))
              .ok());
    }
  }
}

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Everything two runs must agree on (state) or be ordered on (cost).
struct Fingerprint {
  std::vector<std::string> index_dump;
  std::vector<std::string> data_dump;  // data-bucket objects
  std::vector<std::vector<std::string>> rows;
  double dollars = 0;
  uint64_t faulted_requests = 0;
  uint64_t retried_requests = 0;
  uint64_t tombstones_written = 0;
  uint64_t compact_gc_items = 0;
  bool crashed_pass = false;
  std::string resume_cursor;
  uint64_t resumed_documents = 0;
};

void CaptureState(cloud::CloudEnv& env, Warehouse& warehouse,
                  Fingerprint* fp) {
  warehouse.index_store().ForEachItem(
      [fp](const std::string& table, const cloud::Item& item) {
        std::string line = table + "|" + item.hash_key + "|" + item.range_key;
        for (const auto& [name, values] : item.attrs) {
          line += "|" + name + "=";
          for (const auto& value : values) line += value + ",";
        }
        fp->index_dump.push_back(std::move(line));
      });
  const std::string bucket = warehouse.config().data_bucket;
  env.s3().ForEachObject([fp, &bucket](const std::string& b,
                                       const std::string& key,
                                       const std::string& data) {
    if (b != bucket) return;
    fp->data_dump.push_back(StrFormat(
        "%s|%zu|%016llx", key.c_str(), data.size(),
        static_cast<unsigned long long>(Fnv1a(data))));
  });
}

void AccumulateUsage(cloud::CloudEnv& env, Fingerprint* fp) {
  const cloud::Usage& usage = env.meter().usage();
  fp->faulted_requests += usage.faulted_requests;
  fp->retried_requests += usage.retried_requests;
  fp->tombstones_written += usage.tombstones_written;
  fp->compact_gc_items += usage.compact_gc_items;
}

/// The moderately hostile cloud of chaos_test, plus plan-driven crashes
/// at the legacy engine crash points.  The mid-compaction crash stays at
/// probability 0 here: the *planned* one comes from the test hook, so
/// every schedule crashes exactly once, deterministically.
cloud::FaultPlan MutableChaosPlan() {
  cloud::FaultPlan plan;
  plan.seed = 7;
  plan.s3.error_probability = 0.05;
  plan.s3.throttle_share = 0.3;
  plan.dynamodb.error_probability = 0.05;
  plan.dynamodb.throttle_share = 0.7;
  plan.dynamodb.unprocessed_probability = 0.15;
  plan.sqs.error_probability = 0.04;
  plan.sqs.duplicate_probability = 0.06;
  plan.sqs.delay_probability = 0.2;
  plan.sqs.max_delay = 2 * cloud::kMicrosPerSecond;
  plan.crash.before_delete_probability = 0.03;
  plan.crash.between_batch_put_pages_probability = 0.03;
  return plan;
}

struct RunOptions {
  StrategyKind strategy;
  uint64_t schedule_seed = 0;
  bool faulted = false;
  int host_threads = 1;
};

/// The incremental lifecycle under test: build the base corpus, apply
/// the first mutation batch, GC-compact, queue the second batch *around*
/// another GC pass (mutations in flight while the compactor runs), index,
/// then fully compact.  The faulted variant runs it all under
/// MutableChaosPlan and cuts the full compaction short with a planned
/// crash, saves a v3 snapshot, restores it into a fresh CloudEnv, and
/// resumes from the durable cursor.
Fingerprint RunIncremental(const RunOptions& opt) {
  const Schedule schedule = MakeSchedule(opt.schedule_seed);
  cloud::CloudConfig cloud_config;
  if (opt.faulted) cloud_config.faults = MutableChaosPlan();
  auto env = std::make_unique<cloud::CloudEnv>(cloud_config);
  WarehouseConfig config;
  config.strategy = opt.strategy;
  config.num_instances = 2;
  config.host_threads = opt.host_threads;
  auto armed = std::make_shared<bool>(false);
  auto boundaries = std::make_shared<int>(0);
  auto crashes_remaining = std::make_shared<int>(opt.faulted ? 1 : 0);
  config.crash_plan = [armed, boundaries, crashes_remaining](
                          cloud::CrashPoint point, int, const std::string&) {
    if (point != cloud::CrashPoint::kMidCompaction) return false;
    if (!*armed || *crashes_remaining == 0) return false;
    if (++*boundaries < 2) return false;  // let the first URI complete
    --*crashes_remaining;
    return true;
  };
  auto warehouse = std::make_unique<Warehouse>(env.get(), config);
  EXPECT_TRUE(warehouse->Setup().ok());
  for (int d = 0; d < kNumDocs; ++d) {
    EXPECT_TRUE(warehouse->SubmitDocument(DocUri(d), DocText(d, 0)).ok());
  }
  EXPECT_TRUE(warehouse->RunIndexers().ok());
  ApplyBatch(*warehouse, schedule.first);
  EXPECT_TRUE(warehouse->RunIndexers().ok());
  EXPECT_TRUE(warehouse->Compact(/*full=*/false).ok());
  ApplyBatch(*warehouse, schedule.second);
  // Interleaved maintenance: this GC pass runs while the second batch is
  // queued but not yet indexed.
  EXPECT_TRUE(warehouse->Compact(/*full=*/false).ok());
  EXPECT_TRUE(warehouse->RunIndexers().ok());

  Fingerprint fp;
  *armed = true;
  auto pass = warehouse->Compact(/*full=*/true);
  EXPECT_TRUE(pass.ok()) << pass.status().ToString();
  if (!pass.ok()) return fp;
  if (opt.faulted) {
    EXPECT_TRUE(pass.value().crashed);
    fp.crashed_pass = pass.value().crashed;
    fp.resume_cursor = env->maintenance().compact_cursor;
    // The crash killed the front end mid-maintenance: persist the cloud
    // (v3 carries the compaction cursor and generation watermark), bill
    // the dead deployment, and bring up a fresh facade on the restored
    // state.
    const std::string snapshot = cloud::SerializeSnapshot(*env);
    fp.dollars += env->meter().ComputeBill().total();
    AccumulateUsage(*env, &fp);
    auto restored = std::make_unique<cloud::CloudEnv>(cloud_config);
    EXPECT_TRUE(cloud::RestoreSnapshot(snapshot, restored.get()).ok());
    WarehouseConfig attach_config = config;
    attach_config.crash_plan = nullptr;
    auto attached = std::make_unique<Warehouse>(restored.get(), attach_config);
    EXPECT_TRUE(attached->AttachToExistingCloud().ok());
    auto resumed = attached->Compact(/*full=*/true);
    EXPECT_TRUE(resumed.ok()) << resumed.status().ToString();
    if (resumed.ok()) {
      EXPECT_FALSE(resumed.value().crashed);
      fp.resumed_documents = resumed.value().documents_checked;
    }
    env = std::move(restored);
    warehouse = std::move(attached);
  } else {
    EXPECT_FALSE(pass.value().crashed);
  }
  // Converged: cursor cleared, no mutated generations left, index back
  // to the canonical static layout.
  EXPECT_TRUE(env->maintenance().compact_cursor.empty());
  EXPECT_TRUE(warehouse->GenerationSnapshot()->empty());
  CaptureState(*env, *warehouse, &fp);
  auto outcome = warehouse->ExecuteQuery(kQuery);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  if (outcome.ok()) fp.rows = outcome.value().result.rows;
  fp.dollars += env->meter().ComputeBill().total();
  AccumulateUsage(*env, &fp);
  return fp;
}

/// A from-scratch build of the schedule's *final* corpus: the oracle the
/// incremental runs must match byte for byte.
Fingerprint BuildFromScratch(StrategyKind strategy, const Schedule& schedule) {
  auto env = std::make_unique<cloud::CloudEnv>(cloud::CloudConfig());
  WarehouseConfig config;
  config.strategy = strategy;
  config.num_instances = 2;
  config.host_threads = 1;
  Warehouse warehouse(env.get(), config);
  EXPECT_TRUE(warehouse.Setup().ok());
  for (const auto& [doc, version] : schedule.final_docs) {
    EXPECT_TRUE(
        warehouse.SubmitDocument(DocUri(doc), DocText(doc, version)).ok());
  }
  EXPECT_TRUE(warehouse.RunIndexers().ok());
  Fingerprint fp;
  CaptureState(*env, warehouse, &fp);
  auto outcome = warehouse.ExecuteQuery(kQuery);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  if (outcome.ok()) fp.rows = outcome.value().result.rows;
  fp.dollars = env->meter().ComputeBill().total();
  return fp;
}

/// (strategy, schedule seed): three randomized mutation schedules per
/// strategy.
class MutableChaosTest
    : public ::testing::TestWithParam<std::tuple<StrategyKind, uint64_t>> {
 protected:
  StrategyKind strategy() const { return std::get<0>(GetParam()); }
  uint64_t schedule_seed() const { return std::get<1>(GetParam()); }
};

// The headline contract: fault-free and faulted incremental histories
// both land exactly on the from-scratch build of the final corpus —
// index tables, document bucket and query answers — and the faulted
// history pays strictly more for the privilege.
TEST_P(MutableChaosTest, ChaosMutationsConvergeToFreshBuild) {
  const Schedule schedule = MakeSchedule(schedule_seed());
  const Fingerprint fresh = BuildFromScratch(strategy(), schedule);
  const Fingerprint clean =
      RunIncremental({strategy(), schedule_seed(), /*faulted=*/false, 1});
  const Fingerprint faulted =
      RunIncremental({strategy(), schedule_seed(), /*faulted=*/true, 1});

  // The chaos actually bit: transient faults fired, retries happened,
  // the planned mid-compaction crash cut the pass short after at least
  // one completed URI, and the restored deployment finished the rest.
  EXPECT_GT(faulted.faulted_requests, 0u);
  EXPECT_GT(faulted.retried_requests, 0u);
  EXPECT_TRUE(faulted.crashed_pass);
  EXPECT_FALSE(faulted.resume_cursor.empty());
  EXPECT_GE(faulted.resumed_documents, 1u);
  EXPECT_GE(faulted.tombstones_written,
            static_cast<uint64_t>(schedule.deletes));
  EXPECT_GT(faulted.compact_gc_items, 0u);

  // Convergence, byte for byte.
  ASSERT_FALSE(fresh.index_dump.empty());
  EXPECT_EQ(clean.index_dump, fresh.index_dump);
  EXPECT_EQ(faulted.index_dump, fresh.index_dump);
  EXPECT_EQ(clean.data_dump, fresh.data_dump);
  EXPECT_EQ(faulted.data_dump, fresh.data_dump);
  ASSERT_FALSE(fresh.rows.empty());
  EXPECT_EQ(clean.rows, fresh.rows);
  EXPECT_EQ(faulted.rows, fresh.rows);

  // Recovery is paid for, never profited from.
  EXPECT_GT(faulted.dollars, clean.dollars);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAndSchedules, MutableChaosTest,
    ::testing::Combine(::testing::ValuesIn(index::AllStrategyKinds()),
                       ::testing::Values(101u, 202u, 303u)),
    [](const ::testing::TestParamInfo<std::tuple<StrategyKind, uint64_t>>&
           info) {
      return std::string(index::StrategyKindName(std::get<0>(info.param))) +
             "_Schedule" + std::to_string(std::get<1>(info.param));
    });

/// Host parallelism must stay wall-clock-only through the whole mutable
/// lifecycle, crash, snapshot and resume included.
class MutableParallelTest : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(MutableParallelTest, SerialAndParallelMutableChaosRunsAreBitIdentical) {
  const Fingerprint serial =
      RunIncremental({GetParam(), 101u, /*faulted=*/true, /*host_threads=*/1});
  const Fingerprint parallel =
      RunIncremental({GetParam(), 101u, /*faulted=*/true, /*host_threads=*/8});
  EXPECT_EQ(serial.index_dump, parallel.index_dump);
  EXPECT_EQ(serial.data_dump, parallel.data_dump);
  EXPECT_EQ(serial.rows, parallel.rows);
  EXPECT_DOUBLE_EQ(serial.dollars, parallel.dollars);
  EXPECT_EQ(serial.faulted_requests, parallel.faulted_requests);
  EXPECT_EQ(serial.retried_requests, parallel.retried_requests);
  EXPECT_EQ(serial.tombstones_written, parallel.tombstones_written);
  EXPECT_EQ(serial.compact_gc_items, parallel.compact_gc_items);
  EXPECT_EQ(serial.resume_cursor, parallel.resume_cursor);
  EXPECT_EQ(serial.resumed_documents, parallel.resumed_documents);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, MutableParallelTest,
                         ::testing::ValuesIn(index::AllStrategyKinds()),
                         [](const ::testing::TestParamInfo<StrategyKind>&
                                info) {
                           return std::string(
                               index::StrategyKindName(info.param));
                         });

}  // namespace
}  // namespace webdex::engine
