#include <gtest/gtest.h>

#include <cmath>

#include "cost/advisor.h"
#include "xmark/xmark_generator.h"

namespace webdex::cost {
namespace {

AdvisorInput MakeInput() {
  AdvisorInput input;
  xmark::GeneratorConfig config;
  config.num_documents = 12;
  config.entities_per_document = 6;
  xmark::XmarkGenerator generator(config);
  for (const auto& doc : generator.GenerateAll()) {
    input.sample_documents.emplace_back(doc.uri, doc.text);
  }
  input.expected_documents = 1200;  // 100x the sample
  input.workload = {
      "//item[/name:val, /mailbox/mail]",
      "//person[/name:val, /address/city='Paris']",
      "//open_auction[/reserve:val, /bidder/increase]",
  };
  input.workload_runs_per_month = 50;
  return input;
}

TEST(AdvisorTest, RejectsDegenerateInput) {
  AdvisorInput empty;
  empty.expected_documents = 10;
  EXPECT_TRUE(AdviseStrategy(empty).status().IsInvalidArgument());

  AdvisorInput no_scale = MakeInput();
  no_scale.expected_documents = 0;
  EXPECT_TRUE(AdviseStrategy(no_scale).status().IsInvalidArgument());
}

TEST(AdvisorTest, ProducesEstimateForEveryStrategy) {
  auto report = AdviseStrategy(MakeInput());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report.value().estimates.size(),
            index::AllStrategyKinds().size());
  for (const auto& estimate : report.value().estimates) {
    EXPECT_GT(estimate.build_cost, 0) << index::StrategyKindName(estimate.kind);
    EXPECT_GT(estimate.monthly_storage_cost, 0);
    EXPECT_GT(estimate.workload_cost, 0);
    EXPECT_GT(estimate.workload_seconds, 0);
  }
  EXPECT_GT(report.value().no_index_workload_cost, 0);
}

TEST(AdvisorTest, RecommendsIndexingForHeavyWorkloads) {
  auto report = AdviseStrategy(MakeInput());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().recommend_indexing);
  // The recommended strategy is one that beats the no-index baseline.
  bool found = false;
  for (const auto& estimate : report.value().estimates) {
    if (estimate.kind == report.value().recommended) {
      found = true;
      EXPECT_LT(estimate.monthly_total,
                report.value().no_index_monthly_total);
    }
  }
  EXPECT_TRUE(found);
}

TEST(AdvisorTest, IndexedWorkloadsBeatNoIndex) {
  auto report = AdviseStrategy(MakeInput());
  ASSERT_TRUE(report.ok());
  for (const auto& estimate : report.value().estimates) {
    EXPECT_LT(estimate.workload_cost, report.value().no_index_workload_cost)
        << index::StrategyKindName(estimate.kind);
  }
}

TEST(AdvisorTest, BuildCostOrderingMatchesTable6) {
  // Table 6: LU cheapest to build, 2LUPI most expensive.
  auto report = AdviseStrategy(MakeInput());
  ASSERT_TRUE(report.ok());
  double lu = 0, two_lupi = 0, lup = 0, lui = 0;
  for (const auto& estimate : report.value().estimates) {
    switch (estimate.kind) {
      case index::StrategyKind::kLU: lu = estimate.build_cost; break;
      case index::StrategyKind::kLUP: lup = estimate.build_cost; break;
      case index::StrategyKind::kLUI: lui = estimate.build_cost; break;
      case index::StrategyKind::k2LUPI: two_lupi = estimate.build_cost; break;
    }
  }
  EXPECT_LT(lu, lup);
  EXPECT_LT(lu, lui);
  EXPECT_GT(two_lupi, lup);
  EXPECT_GT(two_lupi, lui);
}

TEST(AdvisorTest, AmortizationRunsPositiveAndFinite) {
  auto report = AdviseStrategy(MakeInput());
  ASSERT_TRUE(report.ok());
  for (const auto& estimate : report.value().estimates) {
    EXPECT_GT(estimate.amortization_runs, 0)
        << index::StrategyKindName(estimate.kind);
  }
}

TEST(AdvisorTest, ReportRendersAllRows) {
  auto report = AdviseStrategy(MakeInput());
  ASSERT_TRUE(report.ok());
  const std::string text = report.value().ToString();
  for (const char* name : {"LU", "LUP", "LUI", "2LUPI", "none",
                           "recommendation"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

// Brownout advisor (docs/FAULTS.md): dollar break-even between retrying
// a browned-out index and answering now from a full scan.
TEST(BrownoutAdvisorTest, BreakevenMatchesHandComputation) {
  BrownoutInput input;
  input.documents = 1000;
  input.scan_seconds = 60;
  input.lookup_get_units = 5;
  input.attempt_seconds = 0.5;
  const BrownoutAdvice advice = AdviseBrownout(input);
  const double vm_per_second =
      input.pricing.VmHour(input.instance_type) / 3600.0;
  EXPECT_DOUBLE_EQ(advice.scan_cost,
                   1000 * input.pricing.st_get + 60 * vm_per_second);
  EXPECT_DOUBLE_EQ(advice.lookup_cost, 5 * input.pricing.idx_get);
  EXPECT_DOUBLE_EQ(advice.attempt_cost, 0.5 * vm_per_second);
  EXPECT_NEAR(advice.breakeven_attempts,
              (advice.scan_cost - advice.lookup_cost) / advice.attempt_cost,
              1e-9);
  // The scan is far dearer than a few retries here: keep retrying.
  EXPECT_GT(advice.breakeven_attempts, 1);
  EXPECT_NE(advice.ToString().find("retry"), std::string::npos);
}

TEST(BrownoutAdvisorTest, FreeAttemptsNeverBreakEven) {
  BrownoutInput input;
  input.documents = 100;
  input.scan_seconds = 10;
  input.lookup_get_units = 1;
  input.attempt_seconds = 0;  // attempts cost nothing: retry forever
  const BrownoutAdvice advice = AdviseBrownout(input);
  EXPECT_TRUE(std::isinf(advice.breakeven_attempts));
}

TEST(BrownoutAdvisorTest, CheapScanMeansScanImmediately) {
  BrownoutInput input;
  input.documents = 1;  // tiny warehouse: the scan is nearly free
  input.scan_seconds = 0;
  input.lookup_get_units = 1000;
  input.attempt_seconds = 1;
  const BrownoutAdvice advice = AdviseBrownout(input);
  EXPECT_LT(advice.scan_cost, advice.lookup_cost);
  EXPECT_EQ(advice.breakeven_attempts, 0);
  EXPECT_NE(advice.ToString().find("scan immediately"), std::string::npos);
}

TEST(AdvisorTest, DeterministicReport) {
  auto a = AdviseStrategy(MakeInput());
  auto b = AdviseStrategy(MakeInput());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().ToString(), b.value().ToString());
  EXPECT_EQ(a.value().recommended, b.value().recommended);
}

}  // namespace
}  // namespace webdex::cost
