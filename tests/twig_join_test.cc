#include <gtest/gtest.h>

#include "index/entry.h"
#include "index/twig_join.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "xmark/xmark_generator.h"
#include "xml/parser.h"

namespace webdex::index {
namespace {

using xml::NodeId;

std::unique_ptr<TwigNode> Leaf(TwigAxis axis, std::string key) {
  auto node = std::make_unique<TwigNode>();
  node->axis = axis;
  node->key = std::move(key);
  return node;
}

TEST(TwigJoinTest, SingleNodeMatchesWhenAnyIdExists) {
  KeyTwig twig;
  twig.root = Leaf(TwigAxis::kDescendant, "ea");
  std::vector<NodeId> root_ids{NodeId{1, 5, 1}};
  TwigInputs inputs;
  inputs[twig.root.get()] = &root_ids;
  TwigJoinStats stats;
  EXPECT_TRUE(TwigMatch(twig, inputs, &stats));
  root_ids.clear();
  EXPECT_FALSE(TwigMatch(twig, inputs, &stats));
}

TEST(TwigJoinTest, ChildEdgeRequiresDepthPlusOne) {
  KeyTwig twig;
  twig.root = Leaf(TwigAxis::kDescendant, "ea");
  TwigNode* child = twig.root->children.emplace_back(
      Leaf(TwigAxis::kChild, "eb")).get();
  std::vector<NodeId> root_ids{NodeId{1, 10, 1}};
  // b is a grandchild: ancestor holds, parent does not.
  std::vector<NodeId> child_ids{NodeId{3, 2, 3}};
  TwigInputs inputs;
  inputs[twig.root.get()] = &root_ids;
  inputs[child] = &child_ids;
  TwigJoinStats stats;
  EXPECT_FALSE(TwigMatch(twig, inputs, &stats));
  // Now at depth 2: a proper child.
  child_ids = {NodeId{3, 2, 2}};
  EXPECT_TRUE(TwigMatch(twig, inputs, &stats));
}

TEST(TwigJoinTest, DescendantEdgeAcceptsAnyDepth) {
  KeyTwig twig;
  twig.root = Leaf(TwigAxis::kDescendant, "ea");
  TwigNode* child = twig.root->children.emplace_back(
      Leaf(TwigAxis::kDescendant, "eb")).get();
  std::vector<NodeId> root_ids{NodeId{1, 10, 1}};
  std::vector<NodeId> child_ids{NodeId{5, 4, 7}};
  TwigInputs inputs;
  inputs[twig.root.get()] = &root_ids;
  inputs[child] = &child_ids;
  TwigJoinStats stats;
  EXPECT_TRUE(TwigMatch(twig, inputs, &stats));
  // Outside the subtree (post exceeds the root's).
  child_ids = {NodeId{11, 12, 2}};
  EXPECT_FALSE(TwigMatch(twig, inputs, &stats));
}

TEST(TwigJoinTest, SelfEdgeRequiresIdenticalPosition) {
  KeyTwig twig;
  twig.root = Leaf(TwigAxis::kDescendant, "aid");
  TwigNode* word = twig.root->children.emplace_back(
      Leaf(TwigAxis::kSelf, "w1854")).get();
  std::vector<NodeId> root_ids{NodeId{2, 1, 2}};
  std::vector<NodeId> word_ids{NodeId{2, 1, 2}};
  TwigInputs inputs;
  inputs[twig.root.get()] = &root_ids;
  inputs[word] = &word_ids;
  TwigJoinStats stats;
  EXPECT_TRUE(TwigMatch(twig, inputs, &stats));
  word_ids = {NodeId{3, 2, 2}};
  EXPECT_FALSE(TwigMatch(twig, inputs, &stats));
}

TEST(TwigJoinTest, MultiBranchNeedsAllChildren) {
  // a[b, c]: one 'a' has only b, another only c -> no match; one 'a'
  // with both -> match.
  KeyTwig twig;
  twig.root = Leaf(TwigAxis::kDescendant, "ea");
  TwigNode* b = twig.root->children.emplace_back(
      Leaf(TwigAxis::kDescendant, "eb")).get();
  TwigNode* c = twig.root->children.emplace_back(
      Leaf(TwigAxis::kDescendant, "ec")).get();
  // Two a-subtrees: a1 = (1..5), a2 = (10..15).
  std::vector<NodeId> root_ids{NodeId{1, 5, 2}, NodeId{10, 15, 2}};
  std::vector<NodeId> b_ids{NodeId{2, 1, 3}};    // inside a1
  std::vector<NodeId> c_ids{NodeId{11, 11, 3}};  // inside a2
  TwigInputs inputs;
  inputs[twig.root.get()] = &root_ids;
  inputs[b] = &b_ids;
  inputs[c] = &c_ids;
  TwigJoinStats stats;
  EXPECT_FALSE(TwigMatch(twig, inputs, &stats));
  // Give a1 a c as well.
  c_ids.insert(c_ids.begin(), NodeId{3, 2, 3});
  EXPECT_TRUE(TwigMatch(twig, inputs, &stats));
}

TEST(TwigJoinTest, SatisfyingRootIdsReported) {
  KeyTwig twig;
  twig.root = Leaf(TwigAxis::kDescendant, "ea");
  TwigNode* b = twig.root->children.emplace_back(
      Leaf(TwigAxis::kChild, "eb")).get();
  std::vector<NodeId> root_ids{NodeId{1, 8, 1}, NodeId{2, 3, 2}};
  std::vector<NodeId> b_ids{NodeId{3, 1, 3}};  // child of (2,3,2),
                                               // grandchild of root
  TwigInputs inputs;
  inputs[twig.root.get()] = &root_ids;
  inputs[b] = &b_ids;
  TwigJoinStats stats;
  const auto roots = TwigSatisfyingRootIds(twig, inputs, &stats);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], (NodeId{2, 3, 2}));
  EXPECT_GT(stats.id_ops, 0u);
}

TEST(TwigJoinTest, MissingInputListMeansNoMatch) {
  KeyTwig twig;
  twig.root = Leaf(TwigAxis::kDescendant, "ea");
  twig.root->children.emplace_back(Leaf(TwigAxis::kChild, "eb"));
  std::vector<NodeId> root_ids{NodeId{1, 5, 1}};
  TwigInputs inputs;
  inputs[twig.root.get()] = &root_ids;
  TwigJoinStats stats;
  EXPECT_FALSE(TwigMatch(twig, inputs, &stats));
}

// --- Equivalence property ----------------------------------------------------
//
// For any label-only tree pattern (no predicates), the twig join over a
// document's extracted ID lists must agree exactly with the DOM
// evaluator: LUI is exact on tree patterns (paper Table 5, q1-q7).

class TwigEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(TwigEquivalence, AgreesWithEvaluatorOnXmarkDocs) {
  auto parsed = query::ParseQuery(GetParam());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const query::TreePattern& pattern = parsed.value().patterns()[0];
  const KeyTwig twig = BuildKeyTwig(pattern);
  const auto twig_nodes = twig.Nodes();

  xmark::GeneratorConfig config;
  config.num_documents = 40;
  config.entities_per_document = 8;
  xmark::XmarkGenerator generator(config);

  int matches = 0;
  for (int i = 0; i < config.num_documents; ++i) {
    const xml::Document doc = generator.GenerateDom(i);
    const DocIndex index = ExtractDocIndex(doc);
    // Materialized ID lists must outlive the join: inputs borrow them.
    std::vector<std::vector<NodeId>> id_lists;
    id_lists.reserve(twig_nodes.size());
    TwigInputs inputs;
    bool complete = true;
    for (const TwigNode* node : twig_nodes) {
      const DocIndex::Entry* entry = index.Find(node->key);
      if (entry == nullptr) {
        complete = false;
        break;
      }
      id_lists.push_back(index.IdVector(*entry));
      inputs[node] = &id_lists.back();
    }
    TwigJoinStats stats;
    const bool twig_match = complete && TwigMatch(twig, inputs, &stats);
    const bool real_match = query::Evaluator::Matches(pattern, doc);
    EXPECT_EQ(twig_match, real_match)
        << "doc " << i << " pattern " << GetParam();
    matches += real_match ? 1 : 0;
  }
  // The chosen patterns must be non-trivial on this corpus: some but not
  // all documents match.
  EXPECT_GT(matches, 0) << GetParam();
  EXPECT_LT(matches, config.num_documents) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, TwigEquivalence,
    ::testing::Values(
        // Mutated docs lack the mailbox wrapper: item/mailbox/mail is a
        // discriminating twig.
        "//item[/mailbox/mail]",
        // Path mutation moves name under description.
        "//item[/name, /payment]",
        // Optional-drop documents lose reserve/privacy.
        "//open_auction[/reserve, /privacy]",
        "//person[/address[/city], /homepage]",
        "//open_auction[/annotation/itemref]",
        "//item[/description/name]",
        "//person[/watches/watch]",
        "//closed_auction[/annotation[/happiness], /buyer]"));

}  // namespace
}  // namespace webdex::index
