// Observability contract (docs/OBSERVABILITY.md): deterministic
// log-bucketed histograms, the metric-name grammar, the virtual-time
// span tracer, and — the acceptance check of the layer — exact cost
// conservation: a traced run's rolled-up dollar cost equals the metered
// Usage delta to the cent, fault-free and under chaos with retries, and
// the canonical trace is byte-identical serial vs host_threads=8.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "cloud/cloud_env.h"
#include "cloud/trace.h"
#include "common/metrics.h"
#include "common/tracer.h"
#include "engine/warehouse.h"
#include "xmark/paintings.h"
#include "xmark/xmark_generator.h"

namespace webdex {
namespace {

using common::Histogram;
using common::MetricRegistry;
using common::Tracer;
using common::TraceSpan;
using common::ValidMetricName;

// --- Histogram: buckets, merge, quantiles --------------------------------

TEST(HistogramTest, BucketIndexIsLogBase2WithInclusiveUpperBounds) {
  // Bucket 0 collects v <= 2^-31 (zero and negatives included).
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-3.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(std::exp2(-31.0)), 0);
  // Bucket i in [1, 63] collects (2^(i-32), 2^(i-31)]: exact powers of
  // two land on their bucket's inclusive upper bound.
  EXPECT_EQ(Histogram::BucketIndex(1.0), 31);
  EXPECT_EQ(Histogram::BucketIndex(1.5), 32);
  EXPECT_EQ(Histogram::BucketIndex(2.0), 32);
  EXPECT_EQ(Histogram::BucketIndex(2.0 + 1e-9), 33);
  // Overflow clamps to the last bucket.
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(31), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(32), 2.0);
}

TEST(HistogramTest, RecordTracksExactSummaryStatistics) {
  Histogram h;
  for (double v : {4.0, 1.0, 9.0, 0.5}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 14.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
  EXPECT_DOUBLE_EQ(h.mean(), 14.5 / 4);
  EXPECT_EQ(h.bucket_count(Histogram::BucketIndex(4.0)), 1u);
}

TEST(HistogramTest, MergeIsBucketwiseAdditionAndOrderIndependent) {
  Histogram a;
  Histogram b;
  Histogram all;
  for (double v : {1.0, 2.5, 1e6}) {
    a.Record(v);
    all.Record(v);
  }
  for (double v : {0.0, 3.0, 2.5}) {
    b.Record(v);
    all.Record(v);
  }
  Histogram merged;
  merged.Merge(a);
  merged.Merge(b);
  Histogram reversed;
  reversed.Merge(b);
  reversed.Merge(a);
  for (const Histogram* m : {&merged, &reversed}) {
    EXPECT_EQ(m->count(), all.count());
    EXPECT_DOUBLE_EQ(m->sum(), all.sum());
    EXPECT_DOUBLE_EQ(m->min(), all.min());
    EXPECT_DOUBLE_EQ(m->max(), all.max());
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      EXPECT_EQ(m->bucket_count(i), all.bucket_count(i)) << "bucket " << i;
    }
  }
}

TEST(HistogramTest, QuantileIsBucketBoundClampedToObservedRange) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(10.0);  // bucket (8, 16]
  h.Record(1000.0);
  // The median's bucket upper bound is 16, within [min, max].
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 16.0);
  // The top clamps to the exact observed max.
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);
  // A single-sample histogram clamps every quantile to that sample.
  Histogram single;
  single.Record(10.0);
  EXPECT_DOUBLE_EQ(single.Quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(single.Quantile(0.99), 10.0);
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
}

// --- Metric names and registry -------------------------------------------

TEST(MetricNameTest, GrammarAcceptsDottedLowercaseSegments) {
  EXPECT_TRUE(ValidMetricName("service.s3.get.latency_us"));
  EXPECT_TRUE(ValidMetricName("planner.estimate_error_ratio"));
  EXPECT_TRUE(ValidMetricName("a.b"));
  EXPECT_TRUE(ValidMetricName("a.9b"));  // later segments may start [0-9_]
  EXPECT_FALSE(ValidMetricName(""));
  EXPECT_FALSE(ValidMetricName("single_segment"));
  EXPECT_FALSE(ValidMetricName(".a"));
  EXPECT_FALSE(ValidMetricName("a."));
  EXPECT_FALSE(ValidMetricName("a..b"));
  EXPECT_FALSE(ValidMetricName("A.b"));
  EXPECT_FALSE(ValidMetricName("9a.b"));  // first segment starts [a-z]
  EXPECT_FALSE(ValidMetricName("a.b-c"));
  EXPECT_FALSE(ValidMetricName("a b.c"));
}

TEST(MetricRegistryTest, HandlesAreStableAndReadableByName) {
  MetricRegistry registry;
  common::Counter* c = registry.GetCounter("engine.test.count");
  c->Add(3);
  EXPECT_EQ(registry.GetCounter("engine.test.count"), c);
  EXPECT_EQ(registry.CounterValue("engine.test.count"), 3u);
  EXPECT_EQ(registry.CounterValue("engine.missing.count"), 0u);
  EXPECT_EQ(registry.FindCounter("engine.missing.count"), nullptr);
  registry.GetGauge("engine.test.gauge")->Set(2.5);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("engine.test.gauge"), 2.5);
  registry.GetHistogram("engine.test.latency_us")->Record(7.0);
  // Names come back sorted (map order).
  const std::vector<std::string> names = registry.Names();
  EXPECT_EQ(names, (std::vector<std::string>{
                       "engine.test.count", "engine.test.gauge",
                       "engine.test.latency_us"}));
  // Reset zeroes values but keeps registrations (and pointers).
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(registry.Names(), names);
}

TEST(MetricRegistryTest, PrometheusExpositionUsesWebdexPrefixAndBuckets) {
  MetricRegistry registry;
  registry.GetCounter("engine.query.count")->Add(2);
  registry.GetHistogram("engine.query.latency_us")->Record(3.0);
  const std::string text = registry.ToPrometheus();
  EXPECT_NE(text.find("webdex_engine_query_count 2"), std::string::npos);
  EXPECT_NE(text.find("webdex_engine_query_latency_us_bucket{le="),
            std::string::npos);
  EXPECT_NE(text.find("webdex_engine_query_latency_us_sum"),
            std::string::npos);
  EXPECT_NE(text.find("webdex_engine_query_latency_us_count 1"),
            std::string::npos);
}

TEST(MetricRegistryTest, JsonDumpIsDeterministic) {
  MetricRegistry registry;
  registry.GetCounter("b.count")->Add(1);
  registry.GetGauge("a.gauge")->Set(0.5);
  registry.GetHistogram("c.latency_us")->Record(4.0);
  const std::string once = registry.ToJson();
  EXPECT_EQ(once, registry.ToJson());
  EXPECT_NE(once.find("\"counters\""), std::string::npos);
  EXPECT_NE(once.find("\"b.count\":1"), std::string::npos);
  EXPECT_NE(once.find("\"histograms\""), std::string::npos);
}

// --- Tracer: span trees over virtual time --------------------------------

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.BeginSpan("query", 10), 0u);
  tracer.AddAttr(0, "usd", 1.0);
  tracer.EndSpan(0, 20);
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.current(), 0u);
}

TEST(TracerTest, SpansNestThroughTheExplicitStack) {
  Tracer tracer;
  tracer.set_enabled(true);
  const uint64_t root = tracer.BeginSpan("query.run", 0);
  const uint64_t child = tracer.BeginSpan("plan", 5);
  EXPECT_EQ(tracer.current(), child);
  tracer.AddAttr(child, "usd", 0.25);
  tracer.EndSpan(child, 7);
  const uint64_t sibling = tracer.BeginSpan("fetch", 7);
  tracer.EndSpan(sibling, 9);
  tracer.EndSpan(root, 10);

  ASSERT_EQ(tracer.spans().size(), 3u);
  // Ids are creation ordinals, 1-based.
  EXPECT_EQ(root, 1u);
  EXPECT_EQ(child, 2u);
  EXPECT_EQ(sibling, 3u);
  EXPECT_EQ(tracer.Find(child)->parent, root);
  EXPECT_EQ(tracer.Find(sibling)->parent, root);
  ASSERT_EQ(tracer.Roots().size(), 1u);
  EXPECT_EQ(tracer.Roots()[0]->id, root);
  EXPECT_EQ(tracer.Children(root).size(), 2u);
  EXPECT_DOUBLE_EQ(Tracer::Attr(*tracer.Find(child), "usd"), 0.25);
  EXPECT_DOUBLE_EQ(Tracer::Attr(*tracer.Find(child), "missing", -1), -1.0);
}

TEST(TracerTest, EndingAParentClosesItsOpenChildren) {
  Tracer tracer;
  tracer.set_enabled(true);
  const uint64_t root = tracer.BeginSpan("index.run", 0);
  const uint64_t leaked = tracer.BeginSpan("index.task", 3);
  tracer.EndSpan(root, 9);
  EXPECT_EQ(tracer.Find(leaked)->end_us, 9);
  EXPECT_EQ(tracer.current(), 0u);
}

TEST(TracerTest, RenderingsAreDeterministic) {
  Tracer tracer;
  tracer.set_enabled(true);
  const uint64_t root = tracer.BeginSpan("query.run", 0);
  tracer.AddAttr(root, "usd", 2e-6);
  const uint64_t child = tracer.BeginSpan("fetch", 1);
  tracer.AddAttr(child, "usd", 1.5e-6);
  tracer.EndSpan(child, 4);
  tracer.EndSpan(root, 5);
  const std::string canonical = tracer.Canonical();
  EXPECT_EQ(canonical, tracer.Canonical());
  EXPECT_NE(canonical.find("query.run"), std::string::npos);
  // One JSONL line per span.
  const std::string jsonl = tracer.ToJsonl();
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
  EXPECT_NE(jsonl.find("\"id\":1"), std::string::npos);
  EXPECT_NE(tracer.CostRollup().find("self"), std::string::npos);
  tracer.Clear();
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(MeteredSpanTest, AttributesTheExactMeteredDelta) {
  cloud::CloudEnv env;
  env.tracer().set_enabled(true);
  cloud::SimAgent agent;
  ASSERT_TRUE(env.s3().CreateBucket("b").ok());
  const cloud::Usage before = env.meter().Snapshot();
  {
    cloud::MeteredSpan span(&env.tracer(), &env.meter(), agent, "upload");
    ASSERT_TRUE(env.s3().Put(agent, "b", "k", std::string(1024, 'x')).ok());
  }
  const cloud::Usage delta = env.meter().Snapshot() - before;
  ASSERT_EQ(env.tracer().spans().size(), 1u);
  const TraceSpan& span = env.tracer().spans()[0];
  EXPECT_DOUBLE_EQ(Tracer::Attr(span, "usd"),
                   env.meter().ComputeBill(delta).total());
  EXPECT_DOUBLE_EQ(Tracer::Attr(span, "usage.s3_put_requests"), 1.0);
  EXPECT_DOUBLE_EQ(Tracer::Attr(span, "usage.s3_bytes_in"), 1024.0);
}

// --- End-to-end: cost conservation and trace determinism -----------------

using engine::IndexBackend;
using engine::Warehouse;
using engine::WarehouseConfig;
using index::StrategyKind;

std::vector<xmark::GeneratedDocument> Corpus() {
  auto docs = xmark::GeneratePaintings();
  xmark::GeneratorConfig config;
  config.num_documents = 6;
  config.entities_per_document = 5;
  for (auto& doc : xmark::XmarkGenerator(config).GenerateAll()) {
    docs.push_back(std::move(doc));
  }
  return docs;
}

const char* kQuery = "//painting[/name~'Lion', //painter/name/last:val]";

cloud::FaultPlan ChaosPlan() {
  cloud::FaultPlan plan;
  plan.seed = 7;
  plan.s3.error_probability = 0.05;
  plan.s3.throttle_share = 0.3;
  plan.dynamodb.error_probability = 0.05;
  plan.dynamodb.throttle_share = 0.7;
  plan.dynamodb.unprocessed_probability = 0.15;
  plan.sqs.error_probability = 0.04;
  plan.sqs.duplicate_probability = 0.06;
  plan.sqs.delay_probability = 0.2;
  plan.sqs.max_delay = 2 * cloud::kMicrosPerSecond;
  return plan;
}

/// Rebuilds a span's Usage delta from its `usage.<field>` attributes.
cloud::Usage UsageFromAttrs(const TraceSpan& span) {
  cloud::Usage u;
  u.ForEachField([&span](const char* name, auto* field) {
    *field = static_cast<std::remove_reference_t<decltype(*field)>>(
        Tracer::Attr(span, std::string("usage.") + name));
  });
  return u;
}

struct TracedRun {
  std::string canonical;
  double indexing_usd = 0;      // metered around RunIndexers
  double query_usd = 0;         // metered around ExecuteQuery
  double index_span_usd = 0;    // the index.run root's `usd` attribute
  double query_span_usd = 0;    // the query.run root's `usd` attribute
  cloud::Usage usage;
  std::vector<std::vector<std::string>> rows;
};

TracedRun RunTraced(const cloud::FaultPlan& plan, int host_threads) {
  cloud::CloudConfig cloud_config;
  cloud_config.faults = plan;
  auto env = std::make_unique<cloud::CloudEnv>(cloud_config);
  env->tracer().set_enabled(true);
  WarehouseConfig config;
  config.strategy = StrategyKind::k2LUPI;
  config.num_instances = 2;
  config.host_threads = host_threads;
  Warehouse warehouse(env.get(), config);
  EXPECT_TRUE(warehouse.Setup().ok());
  for (const auto& doc : Corpus()) {
    EXPECT_TRUE(warehouse.SubmitDocument(doc.uri, doc.text).ok());
  }
  TracedRun out;
  const cloud::Usage before_index = env->meter().Snapshot();
  auto report = warehouse.RunIndexers();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  out.indexing_usd =
      env->meter().ComputeBill(env->meter().Snapshot() - before_index).total();
  const cloud::Usage before_query = env->meter().Snapshot();
  auto outcome = warehouse.ExecuteQuery(kQuery);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  out.query_usd =
      env->meter().ComputeBill(env->meter().Snapshot() - before_query).total();
  if (outcome.ok()) out.rows = outcome.value().result.rows;

  const Tracer& tracer = env->tracer();
  for (const TraceSpan* root : tracer.Roots()) {
    if (root->name == "index.run") {
      out.index_span_usd = Tracer::Attr(*root, "usd");
    } else if (root->name == "query.run") {
      out.query_span_usd = Tracer::Attr(*root, "usd");
    }
  }

  // Structural cost conservation, on every span of the trace: the `usd`
  // attribute prices the span's own usage.* delta exactly, and a parent's
  // delta covers the sum of its children's (self share >= 0 per field) —
  // so any subtree's rolled-up cost is the exact metered sum.
  for (const TraceSpan& span : tracer.spans()) {
    const cloud::Usage own = UsageFromAttrs(span);
    EXPECT_DOUBLE_EQ(Tracer::Attr(span, "usd"),
                     env->meter().ComputeBill(own).total())
        << "span " << span.id << " (" << span.name << ")";
    cloud::Usage children_sum;
    for (const TraceSpan* child : tracer.Children(span.id)) {
      children_sum += UsageFromAttrs(*child);
    }
    // Per field, the parent's delta covers the sum of its children's
    // (compare in doubles: Usage fields are unsigned).
    std::map<std::string, double> child_fields;
    static_cast<const cloud::Usage&>(children_sum)
        .ForEachField([&child_fields](const char* n, auto v) {
          child_fields[n] = double(v);
        });
    own.ForEachField([&](const char* name, auto parent_value) {
      EXPECT_GE(double(parent_value) + 1e-9, child_fields[name])
          << "span " << span.id << " (" << span.name << ") field " << name;
    });
  }

  out.canonical = tracer.Canonical();
  out.usage = env->meter().usage();
  return out;
}

// The acceptance check: the traced roots' rolled-up dollars equal the
// independently metered deltas to the cent (exactly, in fact).
TEST(CostConservationTest, FaultFreeRootSpansMatchMeteredBills) {
  const TracedRun run = RunTraced(cloud::FaultPlan(), 1);
  ASSERT_FALSE(run.rows.empty());
  EXPECT_EQ(run.rows[0][0], "Delacroix");
  EXPECT_GT(run.indexing_usd, 0.0);
  EXPECT_GT(run.query_usd, 0.0);
  EXPECT_DOUBLE_EQ(run.index_span_usd, run.indexing_usd);
  EXPECT_DOUBLE_EQ(run.query_span_usd, run.query_usd);
  EXPECT_EQ(run.usage.faulted_requests, 0u);
}

// Under chaos the same equality holds — retried and faulted attempts are
// billed inside the attempt.* leaf spans, so the rollup still accounts
// for every metered cent.
TEST(CostConservationTest, ChaosRootSpansMatchMeteredBillsExactly) {
  const TracedRun run = RunTraced(ChaosPlan(), 1);
  EXPECT_GT(run.usage.faulted_requests, 0u);
  EXPECT_GT(run.usage.retried_requests, 0u);
  ASSERT_FALSE(run.rows.empty());
  EXPECT_EQ(run.rows[0][0], "Delacroix");
  EXPECT_DOUBLE_EQ(run.index_span_usd, run.indexing_usd);
  EXPECT_DOUBLE_EQ(run.query_span_usd, run.query_usd);
}

// Span ids are creation ordinals and all timestamps are virtual, so the
// canonical trace is byte-identical serial vs host-parallel — fault-free
// and under chaos.
TEST(TraceDeterminismTest, SerialAndParallelTracesAreByteIdentical) {
  const TracedRun serial = RunTraced(cloud::FaultPlan(), 1);
  const TracedRun parallel = RunTraced(cloud::FaultPlan(), 8);
  EXPECT_EQ(serial.canonical, parallel.canonical);
  EXPECT_FALSE(serial.canonical.empty());
}

TEST(TraceDeterminismTest, ChaosTracesAreByteIdenticalAcrossHostThreads) {
  const TracedRun serial = RunTraced(ChaosPlan(), 1);
  const TracedRun parallel = RunTraced(ChaosPlan(), 8);
  EXPECT_GT(serial.usage.faulted_requests, 0u);
  EXPECT_EQ(serial.canonical, parallel.canonical);
}

// The registry mirrors the meter's fault/retry/redelivery accounting and
// every registered name obeys the documented grammar.
TEST(MetricsMirrorTest, RegistryAgreesWithUsageAfterChaosRun) {
  cloud::CloudConfig cloud_config;
  cloud_config.faults = ChaosPlan();
  auto env = std::make_unique<cloud::CloudEnv>(cloud_config);
  WarehouseConfig config;
  config.strategy = StrategyKind::k2LUPI;
  config.num_instances = 2;
  Warehouse warehouse(env.get(), config);
  ASSERT_TRUE(warehouse.Setup().ok());
  for (const auto& doc : Corpus()) {
    ASSERT_TRUE(warehouse.SubmitDocument(doc.uri, doc.text).ok());
  }
  ASSERT_TRUE(warehouse.RunIndexers().ok());
  ASSERT_TRUE(warehouse.ExecuteQuery(kQuery).ok());

  const MetricRegistry& metrics = env->metrics();
  const cloud::Usage& usage = env->meter().usage();
  EXPECT_GT(usage.faulted_requests, 0u);
  EXPECT_EQ(metrics.CounterValue("cloud.faults.injected.count"),
            usage.faulted_requests);
  EXPECT_EQ(metrics.CounterValue("cloud.retry.retries.count"),
            usage.retried_requests);
  EXPECT_EQ(metrics.CounterValue("service.sqs.redeliveries.count"),
            usage.sqs_redeliveries);
  EXPECT_EQ(metrics.CounterValue("cloud.breaker.opens.count"),
            usage.breaker_opens);
  EXPECT_EQ(metrics.CounterValue("engine.query.count"), 1u);
  // Attempts = first tries + retries: at least one attempt per retry.
  EXPECT_GE(metrics.CounterValue("cloud.retry.attempts.count"),
            usage.retried_requests);
  const common::Histogram* latency =
      metrics.FindHistogram("engine.query.latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 1u);
  for (const std::string& name : metrics.Names()) {
    EXPECT_TRUE(ValidMetricName(name)) << name;
  }
}

}  // namespace
}  // namespace webdex
