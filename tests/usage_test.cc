#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cloud/cloud_env.h"
#include "cloud/usage.h"
#include "common/metrics.h"

namespace webdex::cloud {
namespace {

constexpr double kGb = 1024.0 * 1024.0 * 1024.0;

TEST(UsageTest, AccumulateAndDiff) {
  Usage a;
  a.s3_put_requests = 10;
  a.ddb_write_units = 2.5;
  a.sqs_requests = 3;
  Usage b;
  b.s3_put_requests = 4;
  b.ddb_write_units = 1.25;
  b.egress_bytes = 100;
  a += b;
  EXPECT_EQ(a.s3_put_requests, 14u);
  EXPECT_DOUBLE_EQ(a.ddb_write_units, 3.75);
  EXPECT_EQ(a.egress_bytes, 100u);
  const Usage d = a - b;
  EXPECT_EQ(d.s3_put_requests, 10u);
  EXPECT_DOUBLE_EQ(d.ddb_write_units, 2.5);
  EXPECT_EQ(d.egress_bytes, 0u);
}

TEST(UsageMeterTest, BillEachServiceAtTable3Prices) {
  UsageMeter meter{Pricing::AwsSingaporeOct2012()};
  Usage& usage = meter.mutable_usage();
  usage.s3_put_requests = 1000;   // x $0.000011
  usage.s3_get_requests = 10000;  // x $0.0000011
  usage.ddb_write_units = 50000;  // x $0.00000032
  usage.ddb_read_units = 20000;   // x $0.000000032
  usage.sqs_requests = 100000;    // x $0.000001
  usage.egress_bytes = static_cast<uint64_t>(kGb);  // x $0.19

  const Bill bill = meter.ComputeBill();
  EXPECT_DOUBLE_EQ(bill.s3, 1000 * 0.000011 + 10000 * 0.0000011);
  EXPECT_DOUBLE_EQ(bill.dynamodb, 50000 * 0.00000032 + 20000 * 0.000000032);
  EXPECT_DOUBLE_EQ(bill.sqs, 100000 * 0.000001);
  EXPECT_NEAR(bill.egress, 0.19, 1e-9);
  EXPECT_DOUBLE_EQ(bill.total(), bill.s3 + bill.dynamodb + bill.sqs +
                                     bill.egress + bill.ec2 + bill.simpledb);
}

TEST(UsageMeterTest, VmTimeBilledPerTypeAtHourlyRates) {
  UsageMeter meter{Pricing::AwsSingaporeOct2012()};
  meter.AddVmTime(InstanceType::kLarge, kMicrosPerHour);        // $0.34
  meter.AddVmTime(InstanceType::kExtraLarge, kMicrosPerHour / 2);  // $0.34
  const Bill bill = meter.ComputeBill();
  EXPECT_NEAR(bill.ec2, 0.34 + 0.68 * 0.5, 1e-9);
}

TEST(UsageMeterTest, SimpledbBoxHoursBilled) {
  UsageMeter meter{Pricing::AwsSingaporeOct2012()};
  meter.mutable_usage().sdb_box_hours = 2.0;
  EXPECT_NEAR(meter.ComputeBill().simpledb, 2.0 * 0.154, 1e-12);
}

TEST(UsageMeterTest, SnapshotDiffBillsOnlyTheDelta) {
  UsageMeter meter{Pricing::AwsSingaporeOct2012()};
  meter.mutable_usage().sqs_requests = 10;
  const Usage snapshot = meter.Snapshot();
  meter.mutable_usage().sqs_requests = 25;
  const Bill delta = meter.ComputeBill(meter.usage() - snapshot);
  EXPECT_DOUBLE_EQ(delta.sqs, 15 * 0.000001);
}

TEST(UsageMeterTest, ResetClearsEverything) {
  UsageMeter meter{Pricing()};
  meter.mutable_usage().s3_put_requests = 5;
  meter.Reset();
  EXPECT_EQ(meter.usage().s3_put_requests, 0u);
  EXPECT_DOUBLE_EQ(meter.ComputeBill().total(), 0.0);
}

TEST(BillTest, ArithmeticAndRendering) {
  Bill a;
  a.s3 = 1;
  a.ec2 = 2;
  Bill b;
  b.s3 = 0.25;
  b.egress = 0.5;
  Bill d = a - b;
  EXPECT_DOUBLE_EQ(d.s3, 0.75);
  EXPECT_DOUBLE_EQ(d.egress, -0.5);
  d += b;
  EXPECT_DOUBLE_EQ(d.s3, 1.0);
  const std::string text = a.ToString();
  EXPECT_NE(text.find("EC2"), std::string::npos);
  EXPECT_NE(text.find("TOTAL"), std::string::npos);
  // SimpleDB line only appears when the service was used.
  EXPECT_EQ(text.find("SimpleDB"), std::string::npos);
}

// WEBDEX_USAGE_FIELDS must enumerate every field of Usage: all fields
// are 8 bytes wide (uint64_t / double / Micros), so a field added to the
// struct but missing from the X-macro shows up as a size mismatch here.
TEST(UsageFieldsTest, FieldListCoversWholeStruct) {
  static_assert(Usage::kFieldCount * 8 == sizeof(Usage),
                "WEBDEX_USAGE_FIELDS is missing a Usage field");
  EXPECT_EQ(Usage::kFieldCount * 8, static_cast<int>(sizeof(Usage)));
}

TEST(UsageFieldsTest, ConstVisitorSeesEveryFieldOnce) {
  Usage u;
  u.s3_put_requests = 7;
  u.ddb_write_units = 2.5;
  u.vm_micros_large = 123;
  std::set<std::string> names;
  int count = 0;
  double total = 0;
  static_cast<const Usage&>(u).ForEachField(
      [&](const char* name, auto value) {
        names.insert(name);
        ++count;
        total += static_cast<double>(value);
      });
  EXPECT_EQ(count, Usage::kFieldCount);
  EXPECT_EQ(static_cast<int>(names.size()), Usage::kFieldCount);
  EXPECT_EQ(names.count("s3_put_requests"), 1u);
  EXPECT_EQ(names.count("ddb_write_units"), 1u);
  EXPECT_EQ(names.count("egress_bytes"), 1u);
  EXPECT_DOUBLE_EQ(total, 7 + 2.5 + 123);
}

TEST(UsageFieldsTest, MutableVisitorReachesEveryField) {
  Usage u;
  u.ForEachField([](const char*, auto* field) { *field += 1; });
  // Every field was writable through the visitor; summing via the const
  // visitor proves each of the kFieldCount fields now holds 1.
  double total = 0;
  static_cast<const Usage&>(u).ForEachField(
      [&](const char*, auto value) { total += static_cast<double>(value); });
  EXPECT_DOUBLE_EQ(total, static_cast<double>(Usage::kFieldCount));
}

// Usage stays the billing source of truth; the registry's `usage.<field>`
// gauges are a published mirror.  Cross-check the two after real metered
// traffic so a drifting mirror (stale publish, wrong field name, lossy
// cast) fails loudly.
TEST(UsageMetricsMirrorTest, GaugesMatchMeterAfterPublish) {
  CloudEnv env;
  SimAgent agent;
  ASSERT_TRUE(env.s3().CreateBucket("bucket").ok());
  ASSERT_TRUE(env.s3().Put(agent, "bucket", "key", std::string(2048, 'x')).ok());
  ASSERT_TRUE(env.s3().Get(agent, "bucket", "key").ok());
  env.meter().AddVmTime(InstanceType::kLarge, kMicrosPerHour);
  env.meter().AddEgress(512);

  env.PublishUsageMetrics();
  int checked = 0;
  env.meter().usage().ForEachField([&](const char* name, auto value) {
    const std::string gauge = std::string("usage.") + name;
    EXPECT_DOUBLE_EQ(env.metrics().GaugeValue(gauge),
                     static_cast<double>(value))
        << gauge;
    ++checked;
  });
  EXPECT_EQ(checked, Usage::kFieldCount);
  // Sanity: the traffic above actually moved the counters being mirrored.
  EXPECT_GT(env.metrics().GaugeValue("usage.s3_put_requests"), 0.0);
  EXPECT_GT(env.metrics().GaugeValue("usage.vm_micros_large"), 0.0);

  // Republishing after more traffic overwrites, not accumulates.
  ASSERT_TRUE(env.s3().Get(agent, "bucket", "key").ok());
  env.PublishUsageMetrics();
  EXPECT_DOUBLE_EQ(env.metrics().GaugeValue("usage.s3_get_requests"),
                   static_cast<double>(env.meter().usage().s3_get_requests));
}

TEST(PricingTest, InstanceTypeNamesAndRates) {
  EXPECT_STREQ(InstanceTypeName(InstanceType::kLarge), "L");
  EXPECT_STREQ(InstanceTypeName(InstanceType::kExtraLarge), "XL");
  const Pricing p;
  EXPECT_DOUBLE_EQ(p.VmHour(InstanceType::kLarge), 0.34);
  EXPECT_DOUBLE_EQ(p.VmHour(InstanceType::kExtraLarge), 0.68);
}

}  // namespace
}  // namespace webdex::cloud
