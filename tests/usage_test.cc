#include <gtest/gtest.h>

#include "cloud/usage.h"

namespace webdex::cloud {
namespace {

constexpr double kGb = 1024.0 * 1024.0 * 1024.0;

TEST(UsageTest, AccumulateAndDiff) {
  Usage a;
  a.s3_put_requests = 10;
  a.ddb_write_units = 2.5;
  a.sqs_requests = 3;
  Usage b;
  b.s3_put_requests = 4;
  b.ddb_write_units = 1.25;
  b.egress_bytes = 100;
  a += b;
  EXPECT_EQ(a.s3_put_requests, 14u);
  EXPECT_DOUBLE_EQ(a.ddb_write_units, 3.75);
  EXPECT_EQ(a.egress_bytes, 100u);
  const Usage d = a - b;
  EXPECT_EQ(d.s3_put_requests, 10u);
  EXPECT_DOUBLE_EQ(d.ddb_write_units, 2.5);
  EXPECT_EQ(d.egress_bytes, 0u);
}

TEST(UsageMeterTest, BillEachServiceAtTable3Prices) {
  UsageMeter meter{Pricing::AwsSingaporeOct2012()};
  Usage& usage = meter.mutable_usage();
  usage.s3_put_requests = 1000;   // x $0.000011
  usage.s3_get_requests = 10000;  // x $0.0000011
  usage.ddb_write_units = 50000;  // x $0.00000032
  usage.ddb_read_units = 20000;   // x $0.000000032
  usage.sqs_requests = 100000;    // x $0.000001
  usage.egress_bytes = static_cast<uint64_t>(kGb);  // x $0.19

  const Bill bill = meter.ComputeBill();
  EXPECT_DOUBLE_EQ(bill.s3, 1000 * 0.000011 + 10000 * 0.0000011);
  EXPECT_DOUBLE_EQ(bill.dynamodb, 50000 * 0.00000032 + 20000 * 0.000000032);
  EXPECT_DOUBLE_EQ(bill.sqs, 100000 * 0.000001);
  EXPECT_NEAR(bill.egress, 0.19, 1e-9);
  EXPECT_DOUBLE_EQ(bill.total(), bill.s3 + bill.dynamodb + bill.sqs +
                                     bill.egress + bill.ec2 + bill.simpledb);
}

TEST(UsageMeterTest, VmTimeBilledPerTypeAtHourlyRates) {
  UsageMeter meter{Pricing::AwsSingaporeOct2012()};
  meter.AddVmTime(InstanceType::kLarge, kMicrosPerHour);        // $0.34
  meter.AddVmTime(InstanceType::kExtraLarge, kMicrosPerHour / 2);  // $0.34
  const Bill bill = meter.ComputeBill();
  EXPECT_NEAR(bill.ec2, 0.34 + 0.68 * 0.5, 1e-9);
}

TEST(UsageMeterTest, SimpledbBoxHoursBilled) {
  UsageMeter meter{Pricing::AwsSingaporeOct2012()};
  meter.mutable_usage().sdb_box_hours = 2.0;
  EXPECT_NEAR(meter.ComputeBill().simpledb, 2.0 * 0.154, 1e-12);
}

TEST(UsageMeterTest, SnapshotDiffBillsOnlyTheDelta) {
  UsageMeter meter{Pricing::AwsSingaporeOct2012()};
  meter.mutable_usage().sqs_requests = 10;
  const Usage snapshot = meter.Snapshot();
  meter.mutable_usage().sqs_requests = 25;
  const Bill delta = meter.ComputeBill(meter.usage() - snapshot);
  EXPECT_DOUBLE_EQ(delta.sqs, 15 * 0.000001);
}

TEST(UsageMeterTest, ResetClearsEverything) {
  UsageMeter meter{Pricing()};
  meter.mutable_usage().s3_put_requests = 5;
  meter.Reset();
  EXPECT_EQ(meter.usage().s3_put_requests, 0u);
  EXPECT_DOUBLE_EQ(meter.ComputeBill().total(), 0.0);
}

TEST(BillTest, ArithmeticAndRendering) {
  Bill a;
  a.s3 = 1;
  a.ec2 = 2;
  Bill b;
  b.s3 = 0.25;
  b.egress = 0.5;
  Bill d = a - b;
  EXPECT_DOUBLE_EQ(d.s3, 0.75);
  EXPECT_DOUBLE_EQ(d.egress, -0.5);
  d += b;
  EXPECT_DOUBLE_EQ(d.s3, 1.0);
  const std::string text = a.ToString();
  EXPECT_NE(text.find("EC2"), std::string::npos);
  EXPECT_NE(text.find("TOTAL"), std::string::npos);
  // SimpleDB line only appears when the service was used.
  EXPECT_EQ(text.find("SimpleDB"), std::string::npos);
}

TEST(PricingTest, InstanceTypeNamesAndRates) {
  EXPECT_STREQ(InstanceTypeName(InstanceType::kLarge), "L");
  EXPECT_STREQ(InstanceTypeName(InstanceType::kExtraLarge), "XL");
  const Pricing p;
  EXPECT_DOUBLE_EQ(p.VmHour(InstanceType::kLarge), 0.34);
  EXPECT_DOUBLE_EQ(p.VmHour(InstanceType::kExtraLarge), 0.68);
}

}  // namespace
}  // namespace webdex::cloud
